// HTTP n-tier example: the same instability and remedy over real
// loopback HTTP. Boots db → app servers → proxy twice — once with the
// stock mod_jk behaviour (total_request + original get_endpoint) and
// once with the paper's remedies (current_load + modified
// get_endpoint) — injects a millibottleneck on one app server mid-run,
// and compares the latency tails.
//
//	go run ./examples/http-ntier
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"millibalance/internal/httpcluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "http-ntier:", err)
		os.Exit(1)
	}
}

func run() error {
	type outcome struct {
		label string
		stats *httpcluster.LoadStats
	}
	var outcomes []outcome
	for _, combo := range []struct {
		label string
		pol   httpcluster.Policy
		mech  httpcluster.Mechanism
	}{
		{"stock (total_request + original)", httpcluster.PolicyTotalRequest, httpcluster.MechanismOriginal},
		{"remedied (current_load + modified)", httpcluster.PolicyCurrentLoad, httpcluster.MechanismModified},
	} {
		stats, err := measure(combo.pol, combo.mech)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, outcome{combo.label, stats})
	}

	fmt.Printf("\n%-36s %8s %10s %10s %10s %8s\n", "configuration", "requests", "p50", "p99", "max", "≥300ms")
	for _, o := range outcomes {
		fmt.Printf("%-36s %8d %10v %10v %10v %8d\n",
			o.label, o.stats.Total(),
			o.stats.Quantile(0.5).Round(100*time.Microsecond),
			o.stats.Quantile(0.99).Round(time.Millisecond),
			o.stats.Max().Round(time.Millisecond),
			o.stats.CountOver(300*time.Millisecond))
	}
	fmt.Println("\nduring the 400ms stall, the stock balancer keeps choosing the frozen")
	fmt.Println("backend (its cumulative lb_value stays lowest) and its workers pile up")
	fmt.Println("inside get_endpoint; the remedied balancer routes around it immediately.")
	return nil
}

func measure(policy httpcluster.Policy, mech httpcluster.Mechanism) (*httpcluster.LoadStats, error) {
	db, err := httpcluster.StartDBServer(200 * time.Microsecond)
	if err != nil {
		return nil, err
	}
	defer func() { _ = db.Close() }()

	var apps []*httpcluster.AppServer
	var backends []*httpcluster.Backend
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("app%d", i+1)
		app, err := httpcluster.StartAppServer(httpcluster.AppServerConfig{
			Name:        name,
			Workers:     64,
			ServiceTime: 2 * time.Millisecond,
			DBURL:       db.URL(),
			DBQueries:   1,
		})
		if err != nil {
			return nil, err
		}
		defer func() { _ = app.Close() }()
		apps = append(apps, app)
		backends = append(backends, httpcluster.NewBackend(name, app.URL(), 4))
	}
	proxy, err := httpcluster.StartProxy(httpcluster.ProxyConfig{
		Workers: 128, Policy: policy, Mechanism: mech,
	}, backends)
	if err != nil {
		return nil, err
	}
	defer func() { _ = proxy.Close() }()

	fmt.Printf("%v + %v: driving 24 clients for 2.5s, stalling app1 at t=0.8s for 400ms\n",
		policy, mech)
	timer := time.AfterFunc(800*time.Millisecond, func() { apps[0].Stall(400 * time.Millisecond) })
	defer timer.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2500*time.Millisecond)
	defer cancel()
	return httpcluster.RunLoad(ctx, proxy.URL(), httpcluster.LoadGenConfig{
		Clients:   24,
		ThinkTime: 10 * time.Millisecond,
	}, 300*time.Millisecond), nil
}

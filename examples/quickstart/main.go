// Quickstart: build a millibottleneck-aware load balancer, dispatch a
// few requests through it in simulated time, and print the balancer's
// view of its backends.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"millibalance/internal/core"
	"millibalance/internal/lb"
	"millibalance/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Everything happens in deterministic virtual time.
	eng := sim.NewEngine(42, 43)

	// The paper's recommended configuration: rank backends by in-flight
	// requests (current_load) and fail fast on exhausted endpoint pools
	// (modified get_endpoint).
	balancer, err := core.NewRecommended(eng, []core.BackendSpec{
		{Name: "app1", Endpoints: 4},
		{Name: "app2", Endpoints: 4},
	})
	if err != nil {
		return err
	}

	// A fake backend fleet: app1 takes 5 ms per request, app2 takes
	// 2 ms — except that at t=100ms, app1 suffers a 300 ms
	// millibottleneck and stops completing anything it holds.
	serviceTime := map[string]sim.Time{
		"app1": 5 * time.Millisecond,
		"app2": 2 * time.Millisecond,
	}
	app1StallUntil := sim.Time(0)
	eng.Schedule(100*time.Millisecond, func() {
		fmt.Printf("t=%-6v millibottleneck: app1 frozen for 300ms\n", eng.Now())
		app1StallUntil = eng.Now() + 300*time.Millisecond
	})

	served := map[string]int{}
	submit := func(id int) {
		balancer.Dispatch(lb.RequestInfo{RequestBytes: 300, ResponseBytes: 8 << 10},
			func(c *lb.Candidate, done func()) {
				finish := serviceTime[c.Name()]
				if c.Name() == "app1" && eng.Now() < app1StallUntil {
					finish += app1StallUntil - eng.Now() // frozen until the stall lifts
				}
				eng.Schedule(finish, func() {
					served[c.Name()]++
					done()
				})
			},
			func() {
				fmt.Printf("t=%-6v request %d rejected: no backend available\n", eng.Now(), id)
			})
	}

	// Issue one request every 10 ms for half a second.
	for i := 0; i < 50; i++ {
		i := i
		eng.Schedule(sim.Time(i)*10*time.Millisecond, func() { submit(i) })
	}
	eng.Run(time.Second)

	fmt.Println("\nfinal balancer state:")
	for _, snap := range balancer.Snapshot() {
		fmt.Printf("  %-5s served=%-3d lb_value=%.0f state=%v\n",
			snap.Name, served[snap.Name], snap.LBValue, snap.State)
	}
	fmt.Println("\napp2 absorbed the load while app1 was frozen — the")
	fmt.Println("current_load policy saw app1's in-flight count rise and")
	fmt.Println("stopped choosing it, without any explicit failure detection.")
	return nil
}

// Policy comparison: run the full simulated n-tier testbed (4 web, 4
// app, 1 db, RUBBoS-like workload, dirty-page-flush millibottlenecks)
// under every policy/mechanism combination and print a Table I-style
// comparison. This is the paper's headline experiment on a smaller
// duration so it finishes in seconds.
//
//	go run ./examples/policy-comparison
package main

import (
	"fmt"
	"time"

	"millibalance/internal/cluster"
)

func main() {
	combos := []struct {
		label     string
		policy    string
		mechanism string
	}{
		{"original total_request", "total_request", "original_get_endpoint"},
		{"original total_traffic", "total_traffic", "original_get_endpoint"},
		{"current_load (policy remedy)", "current_load", "original_get_endpoint"},
		{"total_request + modified get_endpoint", "total_request", "modified_get_endpoint"},
		{"total_traffic + modified get_endpoint", "total_traffic", "modified_get_endpoint"},
		{"current_load + modified get_endpoint", "current_load", "modified_get_endpoint"},
	}

	fmt.Println("policy/mechanism comparison under millibottlenecks (20s virtual per row)")
	fmt.Printf("%-40s %10s %12s %8s %8s\n", "configuration", "requests", "mean RT", "%VLRT", "%<10ms")

	var origMean, remedyMean time.Duration
	for _, combo := range combos {
		cfg := cluster.PaperConfig()
		cfg.Policy = combo.policy
		cfg.Mechanism = combo.mechanism
		cfg.Duration = 20 * time.Second
		res := cluster.Run(cfg)
		r := res.Responses
		fmt.Printf("%-40s %10d %12v %7.2f%% %7.2f%%\n",
			combo.label, r.Total(), r.Mean().Round(10*time.Microsecond),
			r.VLRTPercent(), r.NormalPercent())
		switch {
		case combo.policy == "total_request" && combo.mechanism == "original_get_endpoint":
			origMean = r.Mean()
		case combo.policy == "current_load" && combo.mechanism == "original_get_endpoint":
			remedyMean = r.Mean()
		}
	}
	if remedyMean > 0 {
		fmt.Printf("\ncurrent_load improves mean response time %.1fx over the original total_request\n",
			float64(origMean)/float64(remedyMean))
		fmt.Println("(the paper reports 12x on its Emulab testbed)")
	}
}

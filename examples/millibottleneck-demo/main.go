// Millibottleneck demo: reproduce the paper's Section III causal chain
// on the single-chain topology (1 web / 1 app / 1 db) and walk through
// the diagnosis: dirty pages accumulate → a flush saturates the disk
// (iowait) → the CPU stalls for ~200 ms → queues spike → the accept
// queue overflows → dropped connections retransmit after 1 s → VLRT
// requests appear — all while average utilization stays moderate.
//
//	go run ./examples/millibottleneck-demo
package main

import (
	"fmt"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/core"
	"millibalance/internal/mbneck"
)

func main() {
	cfg := cluster.SingleChainConfig()
	cfg.Duration = 30 * time.Second
	fmt.Printf("running %d clients against 1 web / 1 app / 1 db for %v (virtual)...\n\n",
		cfg.Clients, cfg.Duration)
	res := cluster.Run(cfg)

	r := res.Responses
	fmt.Printf("requests: %d total, mean RT %v, %d VLRT (>1s), %d dropped connections\n",
		r.Total(), r.Mean().Round(10*time.Microsecond), r.VLRTCount(), res.Drops)

	// Step 1: dirty pages and flushes on the app server.
	app := res.Apps[0]
	wbPeakIdx, wbPeak := app.DirtyBytes.PeakWindow()
	fmt.Printf("\n[1] dirty pages peak at %.1f MiB (t=%v) before each flush\n",
		wbPeak/(1<<20), app.DirtyBytes.Start(wbPeakIdx))

	// Step 2: iowait saturation windows.
	ioSpans := mbneck.DetectSaturations(app.IOWait, 95)
	fmt.Printf("[2] %d iowait saturation windows (flushes writing to disk)\n", len(ioSpans))

	// Step 3: transient CPU saturations — the millibottlenecks.
	diag := core.Diagnose([]core.ServerSeries{
		{Name: app.Name, Util: app.CPU.Series(), Queue: app.Queue},
		{Name: res.Webs[0].Name, Util: res.Webs[0].CPU.Series(), Queue: res.Webs[0].Queue},
	}, r.VLRTWindows(), core.DiagnoseConfig{})
	for _, d := range diag {
		fmt.Printf("[3] %s: %d millibottlenecks", d.Server, len(d.Report.Saturations))
		for i, s := range d.Report.Saturations {
			if i >= 4 {
				fmt.Printf(" …")
				break
			}
			fmt.Printf(" [%.1fs, %v]", s.Start.Seconds(), s.Duration())
		}
		fmt.Println()
	}

	// Step 4: queue spikes correlate with the saturations.
	fmt.Printf("[4] web-queue ↔ web-CPU peak correlation: r=%.2f\n",
		mbneck.CorrelatePeaks(res.Webs[0].Queue, res.Webs[0].CPU.Series()))

	// Step 5: attribution of VLRT windows to the millibottlenecks.
	var all []mbneck.Span
	for _, d := range diag {
		all = append(all, d.Report.Saturations...)
	}
	attr := mbneck.AttributeEvents(r.VLRTWindows(), all, 2500*time.Millisecond)
	fmt.Printf("[5] %.0f%% of VLRT windows attributed to millibottlenecks\n", attr*100)

	// Step 6: yet the averages look healthy.
	fmt.Printf("[6] average CPU: web %.1f%%, app %.1f%%, db %.1f%% — the paradox the\n",
		res.Webs[0].CPU.Average(), app.CPU.Average(), res.DB.CPU.Average())
	fmt.Println("    paper highlights: second-level monitoring would see nothing wrong.")

	// Bonus: the response-time distribution's retransmission clusters.
	hist := r.Histogram()
	fmt.Println("\nresponse-time clusters (dropped connections retransmit after 1s):")
	for _, center := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		n := hist.CountAtOrAbove(center-200*time.Millisecond) - hist.CountAtOrAbove(center+200*time.Millisecond)
		fmt.Printf("  ~%v: %d requests\n", center, n)
	}
}

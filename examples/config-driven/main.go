// Config-driven experiment: write an experiment definition to JSON,
// load it back, run it, and export the access log — the workflow for
// sharing reproducible experiment setups. The JSON is human-editable
// (durations like "30s"), so a colleague can tweak the flush interval
// or the policy and re-run.
//
//	go run ./examples/config-driven
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/config"
	"millibalance/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "config-driven:", err)
		os.Exit(1)
	}
}

func run() error {
	// Start from the small topology, customize it, and serialize.
	cfg := cluster.MiniConfig()
	cfg.Policy = "current_load"
	cfg.Duration = 8 * time.Second
	cfg.TraceCapacity = 200000

	var buf bytes.Buffer
	if err := config.Save(&buf, cfg); err != nil {
		return err
	}
	fmt.Println("experiment definition (what you would commit to a repo):")
	fmt.Println(indent(buf.String(), "  "))

	// A collaborator loads and runs the exact same experiment.
	loaded, err := config.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	res := cluster.Run(loaded)
	r := res.Responses
	fmt.Printf("run: %d requests, mean RT %v, %.2f%% VLRT, %d drops\n",
		r.Total(), r.Mean().Round(10*time.Microsecond), r.VLRTPercent(), res.Drops)

	// The access log supports the paper's log-based analyses.
	entries := res.Trace.Entries()
	fmt.Printf("\naccess log: %d entries; per-web backend spread (0 = perfectly even):\n", len(entries))
	for web, spread := range trace.SpreadByWeb(entries) {
		fmt.Printf("  %s: %.1f%%\n", web, spread*100)
	}
	fmt.Println("\nslowest interactions by mean response time:")
	for i, st := range trace.ByInteraction(entries) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-24s n=%-6d mean=%-10v max=%v\n",
			st.Interaction, st.Count, st.Mean.Round(10*time.Microsecond), st.Max.Round(time.Millisecond))
	}
	return nil
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}

// Benchmark guard for the observability layer's zero-cost-when-disabled
// claim: instrumented code pays only nil checks when no capacities are
// configured, so the "disabled" sub-benchmark must stay within noise of
// the pre-observability hot path. The "enabled" twin runs the identical
// cluster with span tracing, the event log and the online detectors all
// armed, making the cost of turning everything on directly comparable.
package millibalance_test

import (
	"testing"
	"time"

	"millibalance/internal/cluster"
)

func BenchmarkTracingDisabledOverhead(b *testing.B) {
	base := cluster.MiniConfig()
	base.Duration = 5 * time.Second
	run := func(b *testing.B, enabled bool) {
		for i := 0; i < b.N; i++ {
			cfg := base
			if enabled {
				cfg.TraceCapacity = 1 << 20
				cfg.SpanCapacity = 1 << 20
				cfg.EventCapacity = 1 << 20
			}
			res := cluster.Run(cfg)
			if res.Responses.Total() == 0 {
				b.Fatal("no requests completed")
			}
			b.ReportMetric(float64(res.Responses.Total()), "requests")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/run")
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

package main

import "testing"

func TestRunConfigPrintout(t *testing.T) {
	if err := run([]string{"-config"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

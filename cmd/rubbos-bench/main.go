// Command rubbos-bench reproduces the paper's Table I: the six
// policy/mechanism combinations compared on total requests, average
// response time, %VLRT (>1 s) and %normal (<10 ms) under the RUBBoS-like
// workload with dirty-page-flush millibottlenecks.
//
//	rubbos-bench                 # 30 s virtual runs (1/6 of the paper's 180 s)
//	rubbos-bench -scale 1        # full paper duration
//	rubbos-bench -config         # print the testbed configuration (Tables II/III)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rubbos-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rubbos-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0/6, "fraction of the paper's 180s duration to run")
	seed := fs.Uint64("seed", 0, "override random seed")
	showConfig := fs.Bool("config", false, "print the testbed configuration and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showConfig {
		printConfig()
		return nil
	}
	start := time.Now()
	res := experiments.RunTableI(experiments.Options{DurationScale: *scale, Seed: *seed})
	fmt.Println("Table I — policy/mechanism comparison under millibottlenecks")
	fmt.Printf("(virtual duration %.0fs per row, wall %v total)\n\n",
		180**scale, time.Since(start).Round(time.Millisecond))
	fmt.Print(res.Render())
	return nil
}

func printConfig() {
	cfg := cluster.PaperConfig()
	fmt.Println("Testbed configuration (paper Tables II/III equivalents)")
	fmt.Printf("topology:        %d web, %d app, 1 db; %d closed-loop clients\n",
		cfg.NumWeb, cfg.NumApp, cfg.Clients)
	fmt.Printf("think time:      %v (exponential)\n", cfg.ThinkTime)
	fmt.Printf("web tier:        %d cores, MaxClients %d, backlog %d, mod_jk pool %d\n",
		cfg.WebCores, cfg.WebWorkers, cfg.WebBacklog, cfg.ConnPoolSize)
	fmt.Printf("app tier:        %d cores, maxThreads %d, db connections %d\n",
		cfg.AppCores, cfg.AppWorkers, cfg.DBConns)
	fmt.Printf("db tier:         %d cores, %d workers\n", cfg.DBCores, cfg.DBWorkers)
	fmt.Printf("writeback:       every %v, disk %.0f MiB/s, stall cap %v, slow-flush p=%.2f ×%.0f\n",
		cfg.AppWriteback.Interval, cfg.AppWriteback.Disk.WriteRate/(1<<20),
		cfg.AppWriteback.MaxStall, cfg.AppWriteback.SlowFlushProb, cfg.AppWriteback.SlowFlushFactor)
	fmt.Printf("link latency:    %v one-way\n", cfg.LinkLatency)
	fmt.Printf("retransmission:  1s schedule ×3 (TCP drop retry)\n")
}

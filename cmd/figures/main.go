// Command figures regenerates the data behind each figure of the
// paper's evaluation section. Every figure prints a findings summary; -tsv
// additionally emits the raw windowed series as tab-separated values for
// plotting.
//
//	figures -fig 4                # findings for Figure 4
//	figures -fig 2 -tsv           # Figure 2 series as TSV
//	figures -all                  # findings for every figure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"millibalance/internal/experiments"
)

// figure describes one reproducible figure.
type figure struct {
	id    int
	title string
	run   func(experiments.Options, io.Writer, bool)
}

func figureTable() []figure {
	return []figure{
		{1, "point-in-time RT without millibottlenecks", func(o experiments.Options, w io.Writer, tsv bool) {
			res := experiments.RunFigure1(o)
			fmt.Fprint(w, res.Render())
			if tsv {
				fmt.Fprint(w, experiments.RenderTSV(res.PointInTimeRT))
			}
		}},
		{2, "millibottleneck causal chain (1 web / 1 app / 1 db)", func(o experiments.Options, w io.Writer, tsv bool) {
			res := experiments.RunFigure2(o)
			fmt.Fprint(w, res.Render())
			if tsv {
				fmt.Fprint(w, experiments.RenderTSV(
					res.VLRTPerWindow, res.WebQueue, res.AppQueue, res.DBQueue,
					res.WebCPU, res.WebIOWait, res.WebDirty,
					res.AppCPU, res.AppIOWait, res.AppDirty))
			}
		}},
		{3, "point-in-time RT fluctuations, first 10 s", func(o experiments.Options, w io.Writer, tsv bool) {
			res := experiments.RunFigure3(o)
			fmt.Fprint(w, res.Render())
			if tsv {
				fmt.Fprint(w, experiments.RenderTSV(res.TotalRequestRT, res.TotalTrafficRT))
			}
		}},
		{4, "response-time distribution with 1/2/3 s clusters", func(o experiments.Options, w io.Writer, tsv bool) {
			res := experiments.RunFigure4(o)
			fmt.Fprint(w, res.Render())
			if tsv {
				fmt.Fprintln(w, "# total_request")
				fmt.Fprint(w, experiments.RenderHist(res.TotalRequestHist))
				fmt.Fprintln(w, "# total_traffic")
				fmt.Fprint(w, experiments.RenderHist(res.TotalTrafficHist))
			}
		}},
		{5, "average CPU per server", func(o experiments.Options, w io.Writer, _ bool) {
			fmt.Fprint(w, experiments.RunFigure5(o).Render())
		}},
		{6, "total_request instability close-up", runInstability(experiments.RunFigure6)},
		{7, "total_traffic instability close-up", runInstability(experiments.RunFigure7)},
		{8, "tier queues with modified get_endpoint", runQueues(experiments.RunFigure8)},
		{9, "modified get_endpoint close-up", runInstability(experiments.RunFigure9)},
		{10, "total_request lb_values close-up", runLBValues(experiments.RunFigure10)},
		{11, "total_traffic lb_values close-up", runLBValues(experiments.RunFigure11)},
		{12, "tier queues with current_load", runQueues(experiments.RunFigure12)},
		{13, "current_load close-up", runInstability(experiments.RunFigure13)},
		{14, "observability layer on the zoom scenario", func(o experiments.Options, w io.Writer, tsv bool) {
			res := experiments.RunObservability(o)
			fmt.Fprint(w, res.Render())
			if tsv {
				fmt.Fprint(w, experiments.RenderTSV(res.LBSeries...))
			}
		}},
		{15, "Table IV: adaptive control plane vs static anchors", func(o experiments.Options, w io.Writer, _ bool) {
			fmt.Fprint(w, experiments.RunTableIV(o).Render())
		}},
		{16, "telemetry causal chains under scripted freezes", func(o experiments.Options, w io.Writer, _ bool) {
			fmt.Fprint(w, experiments.RunFigure16(o).Render())
		}},
		{17, "prequal probing vs the paper's arms across fault shapes", func(o experiments.Options, w io.Writer, _ bool) {
			fmt.Fprint(w, experiments.RunFig17(o).Render())
		}},
		{18, "admission control (codel+gradient) vs the full remedy across fault shapes", func(o experiments.Options, w io.Writer, _ bool) {
			fmt.Fprint(w, experiments.RunFig18(o).Render())
		}},
	}
}

func runInstability(f func(experiments.Options) experiments.InstabilityResult) func(experiments.Options, io.Writer, bool) {
	return func(o experiments.Options, w io.Writer, tsv bool) {
		res := f(o)
		fmt.Fprint(w, res.Render())
		if tsv {
			series := append([]experiments.SeriesDump{res.VLRTPerWindow, res.StalledAppCPU}, res.Web1Assign...)
			fmt.Fprint(w, experiments.RenderTSV(series...))
		}
	}
}

func runLBValues(f func(experiments.Options) experiments.LBValueResult) func(experiments.Options, io.Writer, bool) {
	return func(o experiments.Options, w io.Writer, tsv bool) {
		res := f(o)
		fmt.Fprint(w, res.Render())
		if tsv {
			series := append(append([]experiments.SeriesDump{}, res.AppQueues...), res.LBSeries...)
			fmt.Fprint(w, experiments.RenderTSV(series...))
		}
	}
}

func runQueues(f func(experiments.Options) experiments.QueueComparisonResult) func(experiments.Options, io.Writer, bool) {
	return func(o experiments.Options, w io.Writer, tsv bool) {
		res := f(o)
		fmt.Fprint(w, res.Render())
		if tsv {
			fmt.Fprint(w, experiments.RenderTSV(res.WebTier, res.AppTier, res.DBTier))
		}
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure number to regenerate (see -list)")
	all := fs.Bool("all", false, "regenerate every figure")
	list := fs.Bool("list", false, "list figure ids with one-line descriptions")
	report := fs.Bool("report", false, "run the complete evaluation and emit a markdown report")
	tsv := fs.Bool("tsv", false, "emit raw windowed series as TSV")
	outDir := fs.String("out", "", "write each figure's output to <dir>/figNN.txt instead of stdout")
	scale := fs.Float64("scale", 1.0/6, "fraction of the paper's duration for full-run figures")
	seed := fs.Uint64("seed", 0, "override random seed")
	par := fs.Int("parallel", 0, "max concurrent simulation runs per figure (0 = GOMAXPROCS, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := experiments.Options{DurationScale: *scale, Seed: *seed, Parallel: *par}
	if *report {
		fmt.Fprint(out, experiments.RunAll(opt).Markdown())
		return nil
	}
	figs := figureTable()
	sort.Slice(figs, func(i, j int) bool { return figs[i].id < figs[j].id })

	if *list {
		fmt.Fprint(out, renderFigureList(figs))
		return nil
	}

	emit := func(f figure) error {
		if *outDir == "" {
			f.run(opt, out, *tsv)
			return nil
		}
		path := filepath.Join(*outDir, fmt.Sprintf("fig%02d.txt", f.id))
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		f.run(opt, file, *tsv)
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "figure %d -> %s\n", f.id, path)
		return nil
	}

	if *all {
		for _, f := range figs {
			fmt.Fprintf(out, "=== Figure %d: %s ===\n", f.id, f.title)
			if err := emit(f); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	for _, f := range figs {
		if f.id == *fig {
			return emit(f)
		}
	}
	return fmt.Errorf("unknown figure %d; available figures:\n%s", *fig, renderFigureList(figs))
}

// renderFigureList prints each figure id with its one-line description —
// the -list output and the body of the unknown-figure error.
func renderFigureList(figs []figure) string {
	var b strings.Builder
	for _, f := range figs {
		fmt.Fprintf(&b, "  %2d  %s\n", f.id, f.title)
	}
	return b.String()
}

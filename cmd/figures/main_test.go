package main

import (
	"os"
	"strings"
	"testing"
)

func TestFigureTableCoversAllEighteen(t *testing.T) {
	figs := figureTable()
	if len(figs) != 18 {
		t.Fatalf("%d figures registered", len(figs))
	}
	seen := map[int]bool{}
	for _, f := range figs {
		if f.id < 1 || f.id > 18 || seen[f.id] {
			t.Fatalf("bad or duplicate figure id %d", f.id)
		}
		seen[f.id] = true
		if f.title == "" || f.run == nil {
			t.Fatalf("figure %d incomplete", f.id)
		}
	}
}

// TestListFigures pins the -list contract: every registered figure id
// appears with its description, and nothing is simulated.
func TestListFigures(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, f := range figureTable() {
		if !strings.Contains(got, f.title) {
			t.Fatalf("-list missing figure %d (%q):\n%s", f.id, f.title, got)
		}
	}
}

func TestRunSingleFigureWithTSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "1", "-scale", "0.02", "-tsv"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Figure 1") || !strings.Contains(got, "t_sec\trt_ms") {
		t.Fatalf("output:\n%s", got)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-fig", "99"}, &out)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	// The error lists the valid ids so a typo is self-correcting.
	if !strings.Contains(err.Error(), "18") || !strings.Contains(err.Error(), "admission control") {
		t.Fatalf("unknown-figure error does not list figures: %v", err)
	}
	if err := run([]string{}, &out); err == nil {
		t.Fatal("no figure selected but no error")
	}
}

func TestRunWritesToOutDir(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-fig", "1", "-scale", "0.02", "-tsv", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig01.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "t_sec") {
		t.Fatalf("fig01.txt missing TSV: %.80s", data)
	}
}

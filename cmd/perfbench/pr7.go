package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"
	"time"

	"millibalance/internal/httpcluster"
	"millibalance/internal/probe"
)

// PR7Report is the BENCH_PR7.json schema: the probing subsystem's
// overhead evidence. Dispatch compares the prequal balancer hot path
// against the current_load baseline (prequal must be 0 allocs/op — the
// CI gate), Pool holds the probe-pool microbenchmarks the dispatch
// path is built on.
type PR7Report struct {
	Schema string `json:"schema"`
	Host   struct {
		Cores      int    `json:"cores"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Dispatch struct {
		Prequal     EngineBench `json:"prequal"`
		CurrentLoad EngineBench `json:"current_load"`
		OverheadPct float64     `json:"overhead_pct"`
	} `json:"dispatch"`
	Pool struct {
		Observe EngineBench `json:"observe"`
		Pick    EngineBench `json:"pick"`
	} `json:"pool"`
}

// runPR7 measures the prequal dispatch overhead evidence and writes
// the report.
func runPR7(out string, stdout io.Writer) error {
	var rep PR7Report
	rep.Schema = "millibalance-bench-pr7/1"
	rep.Host.Cores = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Host.GoVersion = runtime.Version()

	fmt.Fprintln(stdout, "probe pool microbenchmarks...")
	rep.Pool.Observe = benchPoolObserve()
	rep.Pool.Pick = benchPoolPick()

	fmt.Fprintln(stdout, "dispatch hot path, prequal vs current_load...")
	rep.Dispatch.Prequal = benchPrequalDispatch(true)
	rep.Dispatch.CurrentLoad = benchPrequalDispatch(false)
	if rep.Dispatch.Prequal.AllocsPerOp != 0 {
		return fmt.Errorf("prequal dispatch allocates %d/op, want 0",
			rep.Dispatch.Prequal.AllocsPerOp)
	}
	if rep.Dispatch.CurrentLoad.NsPerOp > 0 {
		rep.Dispatch.OverheadPct = 100 * (rep.Dispatch.Prequal.NsPerOp -
			rep.Dispatch.CurrentLoad.NsPerOp) / rep.Dispatch.CurrentLoad.NsPerOp
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (prequal dispatch %d allocs/op, %.1f%% over current_load)\n",
		out, rep.Dispatch.Prequal.AllocsPerOp, rep.Dispatch.OverheadPct)
	return nil
}

// steadyPools builds pools whose samples never expire, isolating the
// selection path from probing I/O — the same shape as the
// BenchmarkPrequalDispatchOverhead fixture in internal/httpcluster.
func steadyPools(names ...string) *probe.Pools {
	start := time.Now()
	pools := probe.NewPools(probe.Config{TTL: time.Hour, ReuseBudget: 1 << 30},
		func() time.Duration { return time.Since(start) })
	for i, name := range names {
		pools.Observe(name, float64(i+1), time.Duration(i+1)*time.Millisecond)
	}
	return pools
}

// benchPrequalDispatch measures a balancer acquire/release round trip
// under prequal (pools attached) or the current_load baseline.
func benchPrequalDispatch(prequal bool) EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		backends := []*httpcluster.Backend{
			httpcluster.NewBackend("a", "u", 64),
			httpcluster.NewBackend("b", "u", 64),
		}
		policy := httpcluster.PolicyCurrentLoad
		if prequal {
			policy = httpcluster.PolicyPrequal
		}
		bal := httpcluster.NewBalancer(policy, httpcluster.MechanismModified,
			backends, httpcluster.Config{Sweeps: 1})
		if prequal {
			bal.SetProbePools(steadyPools("a", "b"), nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rel, err := bal.Acquire(128)
			if err != nil {
				b.Fatal(err)
			}
			rel.Done(256)
		}
	}))
}

// benchPoolObserve measures one sample insertion into a full pool —
// eviction included, the steady state of a live prober.
func benchPoolObserve() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		pools := steadyPools("a")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pools.Observe("a", float64(i%8), time.Millisecond)
		}
	}))
}

// benchPoolPick measures the hot/cold selection over a three-backend
// candidate set with fresh samples.
func benchPoolPick() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		pools := steadyPools("a", "b", "c")
		names := []string{"a", "b", "c"}
		rng := rand.New(rand.NewPCG(3, 5))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pools.Pick(names, rng) < 0 {
				b.Fatal("empty pick")
			}
		}
	}))
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/httpcluster"
	"millibalance/internal/telemetry"
)

// pr6OverheadBudgetPct is the acceptance budget for 50 ms sub-second
// sampling: arming the telemetry layer may cost at most this much
// simulated-run throughput.
const pr6OverheadBudgetPct = 5.0

// PR6Report is the BENCH_PR6.json schema: the telemetry layer's
// overhead evidence. Ring holds the seqlock ring microbenchmarks,
// Dispatch the balancer hot path with the sampler off and on (off must
// be 0 allocs/op), and Sim the end-to-end throughput comparison against
// the budget.
type PR6Report struct {
	Schema string `json:"schema"`
	Host   struct {
		Cores      int    `json:"cores"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Ring struct {
		Append       EngineBench `json:"append"`
		SamplerCycle EngineBench `json:"sampler_cycle"`
	} `json:"ring"`
	Dispatch struct {
		Disabled EngineBench `json:"disabled"`
		Enabled  EngineBench `json:"enabled"`
	} `json:"dispatch"`
	Sim struct {
		Duration    string  `json:"duration"`
		IntervalMs  int     `json:"interval_ms"`
		Runs        int     `json:"runs"`
		DisabledSec float64 `json:"disabled_sec"`
		EnabledSec  float64 `json:"enabled_sec"`
		OverheadPct float64 `json:"overhead_pct"`
		BudgetPct   float64 `json:"budget_pct"`
	} `json:"sim"`
}

// runPR6 measures the telemetry overhead evidence and writes the
// report.
func runPR6(out string, stdout io.Writer) error {
	var rep PR6Report
	rep.Schema = "millibalance-bench-pr6/1"
	rep.Host.Cores = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Host.GoVersion = runtime.Version()

	fmt.Fprintln(stdout, "ring microbenchmarks...")
	rep.Ring.Append = benchRingAppend()
	rep.Ring.SamplerCycle = benchSamplerCycle()

	fmt.Fprintln(stdout, "dispatch hot path, sampler off then on...")
	rep.Dispatch.Disabled = benchDispatch(false)
	rep.Dispatch.Enabled = benchDispatch(true)
	if rep.Dispatch.Disabled.AllocsPerOp != 0 {
		return fmt.Errorf("telemetry-disabled dispatch allocates %d/op, want 0",
			rep.Dispatch.Disabled.AllocsPerOp)
	}

	const simDuration = 20 * time.Second
	const simRuns = 4
	fmt.Fprintf(stdout, "simulated throughput ±50ms sampling (%v × best of %d, interleaved)...\n", simDuration, simRuns)
	rep.Sim.Duration = simDuration.String()
	rep.Sim.IntervalMs = 50
	rep.Sim.Runs = simRuns
	rep.Sim.DisabledSec, rep.Sim.EnabledSec = simWallPair(simDuration, simRuns)
	rep.Sim.BudgetPct = pr6OverheadBudgetPct
	if rep.Sim.DisabledSec > 0 {
		rep.Sim.OverheadPct = 100 * (rep.Sim.EnabledSec - rep.Sim.DisabledSec) / rep.Sim.DisabledSec
	}
	if rep.Sim.OverheadPct > pr6OverheadBudgetPct {
		return fmt.Errorf("telemetry sampling overhead %.2f%% exceeds the %.0f%% budget",
			rep.Sim.OverheadPct, pr6OverheadBudgetPct)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (dispatch disabled %d allocs/op, sampling overhead %.2f%% of %.0f%% budget)\n",
		out, rep.Dispatch.Disabled.AllocsPerOp, rep.Sim.OverheadPct, rep.Sim.BudgetPct)
	return nil
}

// benchRingAppend mirrors TestRingAppendZeroAlloc's subject: one
// seqlock ring append per op.
func benchRingAppend() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		r := telemetry.NewRing(4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Append(time.Duration(i), float64(i))
		}
	}))
}

// benchSamplerCycle measures one full gauge-sweep sample over a
// realistic track count (the paper topology arms ~21).
func benchSamplerCycle() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		tl := telemetry.NewTimeline(telemetry.Config{})
		s := telemetry.NewSampler(tl)
		for i := 0; i < 21; i++ {
			s.Register(fmt.Sprintf("srv%d", i/3), "sig", func() float64 { return 1 })
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Sample(time.Duration(i))
		}
	}))
}

// benchDispatch mirrors BenchmarkTelemetryDisabledOverhead in
// internal/httpcluster: a balancer acquire/release round trip, with an
// optional live wall sampler reading the backends' gauges.
func benchDispatch(enabled bool) EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		backends := []*httpcluster.Backend{
			httpcluster.NewBackend("a", "u", 64),
			httpcluster.NewBackend("b", "u", 64),
		}
		bal := httpcluster.NewBalancer(httpcluster.PolicyCurrentLoad, httpcluster.MechanismModified,
			backends, httpcluster.Config{Sweeps: 1})
		if enabled {
			s := telemetry.NewWallSampler("bench", telemetry.Config{})
			for _, be := range backends {
				be := be
				s.Register(be.Name(), telemetry.SignalInFlight, func() float64 { return float64(be.InFlight()) })
				s.Register(be.Name(), telemetry.SignalCompleted, func() float64 { return float64(be.Completed()) })
			}
			s.Start()
			defer s.Stop()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rel, err := bal.Acquire(128)
			if err != nil {
				b.Fatal(err)
			}
			rel.Done(256)
		}
	}))
}

// simWallPair runs the paper's baseline scenario n times per arm,
// strictly alternating disabled/enabled runs, and returns each arm's
// fastest wall clock. Interleaving matters more than the run count:
// hosts drift (thermal throttling, background GC), and running one arm
// en bloc after the other would charge the drift to whichever arm went
// second. The minimum per arm is then the least-perturbed run of each.
func simWallPair(d time.Duration, n int) (disabled, enabled float64) {
	oneRun := func(armed bool) float64 {
		cfg := cluster.BaselineConfig()
		cfg.Duration = d
		if armed {
			cfg.Telemetry = &telemetry.Config{}
		}
		start := time.Now()
		cluster.Run(cfg)
		return time.Since(start).Seconds()
	}
	oneRun(false) // warm-up: page in code and let the heap size settle
	for i := 0; i < n; i++ {
		if w := oneRun(false); disabled == 0 || w < disabled {
			disabled = w
		}
		if w := oneRun(true); enabled == 0 || w < enabled {
			enabled = w
		}
	}
	return disabled, enabled
}

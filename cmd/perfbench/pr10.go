package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"millibalance/internal/admission"
	"millibalance/internal/httpcluster"
)

// PR10Report is the BENCH_PR10.json schema: the overload-control plane's
// cost evidence. Gate measures the bare admission gate's acquire/release
// round trip (the simulator substrate's whole hot path). Proxy measures
// the wall-clock worker-acquire path through a live proxy three ways —
// the pre-admission reference shape, the plane disabled (nil config),
// and the plane armed with the full gradient+codel arm — with the
// disabled-vs-reference ratio gated so requests that opted out of
// admission control keep paying nothing for it.
type PR10Report struct {
	Schema string `json:"schema"`
	Host   struct {
		Cores      int    `json:"cores"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Gate struct {
		GradientCoDel EngineBench `json:"gradient_codel"`
		FixedShed     EngineBench `json:"fixed_shed"`
	} `json:"gate"`
	Proxy struct {
		Reference           EngineBench `json:"reference_no_gate"`
		Disabled            EngineBench `json:"admission_disabled"`
		DisabledOverheadPct float64     `json:"disabled_overhead_pct"`
		Admitted            EngineBench `json:"admission_admitted"`
		AdmittedOverheadPct float64     `json:"admitted_overhead_pct"`
	} `json:"proxy"`
}

// runPR10 measures the admission-plane evidence, enforces the in-process
// gates (0 allocs/op on every admitted arm, disabled-path overhead
// within 5% of the pre-admission reference), and writes the report.
func runPR10(out string, stdout io.Writer) error {
	var rep PR10Report
	rep.Schema = "millibalance-bench-pr10/1"
	rep.Host.Cores = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Host.GoVersion = runtime.Version()

	fmt.Fprintln(stdout, "admission gate round trips, gradient+codel and fixed-shed...")
	rep.Gate.GradientCoDel = best3(func() EngineBench {
		return benchGateRoundTrip(admission.Config{
			Limiter: admission.LimiterGradient, CoDel: true, LIFO: true,
		})
	})
	rep.Gate.FixedShed = best3(func() EngineBench {
		return benchGateRoundTrip(*admission.FixedShed(time.Second))
	})

	fmt.Fprintln(stdout, "proxy worker-acquire, reference vs disabled vs admitted...")
	disabled, err := httpcluster.StartProxy(proxyBenchConfig(nil),
		[]*httpcluster.Backend{httpcluster.NewBackend("a", "u", 64)})
	if err != nil {
		return err
	}
	defer func() { _ = disabled.Close() }()
	admitted, err := httpcluster.StartProxy(proxyBenchConfig(&admission.Config{
		Limiter: admission.LimiterGradient, CoDel: true, LIFO: true,
	}), []*httpcluster.Backend{httpcluster.NewBackend("a", "u", 64)})
	if err != nil {
		return err
	}
	defer func() { _ = admitted.Close() }()

	rep.Proxy.Reference, rep.Proxy.Disabled, rep.Proxy.DisabledOverheadPct =
		benchPaired(benchReferenceAcquire, func() EngineBench { return benchProxyAcquire(disabled) })
	_, rep.Proxy.Admitted, rep.Proxy.AdmittedOverheadPct =
		benchPaired(func() EngineBench { return benchProxyAcquire(disabled) },
			func() EngineBench { return benchProxyAcquire(admitted) })

	// In-process gates — fail the run (and CI) rather than record a
	// regression as if it were evidence.
	if rep.Gate.GradientCoDel.AllocsPerOp != 0 || rep.Gate.FixedShed.AllocsPerOp != 0 {
		return fmt.Errorf("gate round trip allocates (gradient+codel %d, fixed-shed %d allocs/op), want 0",
			rep.Gate.GradientCoDel.AllocsPerOp, rep.Gate.FixedShed.AllocsPerOp)
	}
	if rep.Proxy.Admitted.AllocsPerOp != 0 || rep.Proxy.Disabled.AllocsPerOp != 0 {
		return fmt.Errorf("proxy acquire allocates (admitted %d, disabled %d allocs/op), want 0",
			rep.Proxy.Admitted.AllocsPerOp, rep.Proxy.Disabled.AllocsPerOp)
	}
	if rep.Proxy.DisabledOverheadPct > 5 {
		return fmt.Errorf("disabled-path overhead %.1f%% over the pre-admission reference, gate is 5%%",
			rep.Proxy.DisabledOverheadPct)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (gate %.1f ns/op, disabled path +%.1f%%, admitted path +%.1f%% at 0 allocs/op)\n",
		out, rep.Gate.GradientCoDel.NsPerOp, rep.Proxy.DisabledOverheadPct,
		rep.Proxy.AdmittedOverheadPct)
	return nil
}

// proxyBenchConfig is the minimal proxy the acquire benchmarks run
// against: no telemetry, no tracing, no resilience — just the worker
// pool and, optionally, the admission plane under test.
func proxyBenchConfig(acfg *admission.Config) httpcluster.ProxyConfig {
	return httpcluster.ProxyConfig{
		Workers:   64,
		Policy:    httpcluster.PolicyCurrentLoad,
		Mechanism: httpcluster.MechanismModified,
		LB:        httpcluster.Config{Sweeps: 1},
		Admission: acfg,
	}
}

// benchPaired measures base and with back to back three times and
// reports the median of the paired ratios — same rationale as the PR8
// dispatch pair: time-correlated host noise cancels inside a pair but
// not between independently-taken minima. The returned arms are the ones
// from the median pair so the JSON numbers reproduce the gated ratio.
func benchPaired(base, with func() EngineBench) (bb, wb EngineBench, overheadPct float64) {
	type pair struct {
		base, with EngineBench
		ratio      float64
	}
	pairs := make([]pair, 0, 3)
	for i := 0; i < 3; i++ {
		b := base()
		w := with()
		pairs = append(pairs, pair{base: b, with: w, ratio: w.NsPerOp / b.NsPerOp})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].ratio < pairs[j].ratio })
	med := pairs[1]
	return med.base, med.with, 100 * (med.ratio - 1)
}

// benchGateRoundTrip measures one uncontended TryAcquire/Release round
// trip — the entire per-request admission cost on the simulator
// substrate, and the fast path of the wall-clock plane.
func benchGateRoundTrip(cfg admission.Config) EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		g := admission.NewGate(cfg, 64)
		epoch := time.Now()
		g.SetClock(func() time.Duration { return time.Since(epoch) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !g.TryAcquire(admission.Interactive) {
				b.Fatal("uncontended admit refused")
			}
			g.Release(time.Since(epoch), time.Millisecond, true)
		}
	}))
}

// refPool reproduces the pre-admission worker-acquire shape: the
// handler called into acquireWorker (a real method call, nonblocking
// select, one nil-pointer branch for the old resilience timer) and
// released the slot on the way out. The methods are pinned noinline
// because the proxy's are too large to inline — letting the compiler
// flatten the reference would charge the admission plane for call
// overhead the old code also paid.
type refPool struct {
	workers chan struct{}
	resil   *time.Timer // stand-in for the old nil-resilience branch
}

//go:noinline
func (r *refPool) acquire() bool {
	select {
	case r.workers <- struct{}{}:
		return true
	default:
	}
	if r.resil != nil {
		return false
	}
	r.workers <- struct{}{}
	return true
}

//go:noinline
func (r *refPool) roundTrip() bool {
	if !r.acquire() {
		return false
	}
	<-r.workers
	return true
}

// benchReferenceAcquire measures the pre-admission fast path so the
// disabled-path gate compares the nil-gate branch against the shape it
// replaced, in the same process.
func benchReferenceAcquire() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		ref := &refPool{workers: make(chan struct{}, 64)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !ref.roundTrip() {
				b.Fatal("reference acquire refused")
			}
		}
	}))
}

// benchProxyAcquire measures the live proxy's worker acquire/release
// round trip through whatever admission path it was configured with.
func benchProxyAcquire(p *httpcluster.Proxy) EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !p.AdmitRoundTrip() {
				b.Fatal("admit refused on an idle proxy")
			}
		}
	}))
}

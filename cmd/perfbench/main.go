// Command perfbench measures the simulator's hot paths and writes a
// machine-readable benchmark report (BENCH_PR3.json). It drives the
// same operations as the go-test benchmarks in internal/sim through
// testing.Benchmark, then times a full Table I reproduction twice —
// sequentially and through the parallel harness — so the engine-level
// allocation work and the experiment-level fan-out are recorded side by
// side with the host's core count.
//
//	perfbench                      # writes BENCH_PR3.json
//	perfbench -out - -scale 0.05   # print to stdout, faster Table I
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/experiments"
	"millibalance/internal/parallel"
	"millibalance/internal/sim"
)

// EngineBench is one engine microbenchmark measurement.
type EngineBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// baseline freezes the pre-overhaul engine (container/heap dispatch,
// one heap allocation per scheduled timer) measured on the same
// benchmark bodies, so every regeneration of the report compares the
// current engine against the same reference point.
var baseline = map[string]EngineBench{
	"schedule_fire":           {NsPerOp: 76.46, BytesPerOp: 32, AllocsPerOp: 1},
	"schedule_fire_depth_512": {NsPerOp: 252.9, BytesPerOp: 32, AllocsPerOp: 1},
	"timer_reuse":             {NsPerOp: 72.71, BytesPerOp: 32, AllocsPerOp: 1},
}

// Report is the BENCH_PR3.json schema; EXPERIMENTS.md documents it.
type Report struct {
	Schema string `json:"schema"`
	Host   struct {
		Cores      int    `json:"cores"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Engine struct {
		Baseline          map[string]EngineBench `json:"baseline"`
		Current           map[string]EngineBench `json:"current"`
		AllocReductionPct float64                `json:"alloc_reduction_pct"`
		EventsPerSec      float64                `json:"events_per_sec"`
	} `json:"engine"`
	TableI struct {
		DurationScale float64 `json:"duration_scale"`
		SequentialSec float64 `json:"sequential_sec"`
		ParallelSec   float64 `json:"parallel_sec"`
		Workers       int     `json:"workers"`
		Speedup       float64 `json:"speedup"`
	} `json:"table_i"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("perfbench", flag.ContinueOnError)
	out := fs.String("out", "", "output path, or - for stdout (default BENCH_PR3.json; BENCH_PR6.json with -pr6, BENCH_PR7.json with -pr7)")
	scale := fs.Float64("scale", 1.0/12, "Table I duration scale for the wall-clock comparison")
	pr6 := fs.Bool("pr6", false, "measure the telemetry layer instead: ring/dispatch overhead and ±50ms-sampling throughput (BENCH_PR6.json)")
	pr7 := fs.Bool("pr7", false, "measure the probing subsystem instead: prequal dispatch overhead and probe-pool microbenchmarks (BENCH_PR7.json)")
	pr8 := fs.Bool("pr8", false, "measure the contention-free dispatch path instead: sequential + parallel arms, mutex reference, contention profile (BENCH_PR8.json)")
	pr10 := fs.Bool("pr10", false, "measure the admission plane instead: gate round trips plus proxy acquire with the plane off/disabled/armed (BENCH_PR10.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pr10 {
		if *out == "" {
			*out = "BENCH_PR10.json"
		}
		return runPR10(*out, stdout)
	}
	if *pr8 {
		if *out == "" {
			*out = "BENCH_PR8.json"
		}
		return runPR8(*out, stdout)
	}
	if *pr6 {
		if *out == "" {
			*out = "BENCH_PR6.json"
		}
		return runPR6(*out, stdout)
	}
	if *pr7 {
		if *out == "" {
			*out = "BENCH_PR7.json"
		}
		return runPR7(*out, stdout)
	}
	if *out == "" {
		*out = "BENCH_PR3.json"
	}

	var rep Report
	rep.Schema = "millibalance-bench/1"
	rep.Host.Cores = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Host.GoVersion = runtime.Version()

	fmt.Fprintln(stdout, "engine microbenchmarks...")
	rep.Engine.Baseline = baseline
	rep.Engine.Current = map[string]EngineBench{
		"schedule_fire":           benchScheduleFire(),
		"schedule_fire_depth_512": benchScheduleFireDepth(),
		"timer_reuse":             benchTimerReuse(),
	}
	base := baseline["schedule_fire"].AllocsPerOp
	cur := rep.Engine.Current["schedule_fire"].AllocsPerOp
	if base > 0 {
		rep.Engine.AllocReductionPct = 100 * float64(base-cur) / float64(base)
	}

	fmt.Fprintln(stdout, "cluster events/sec...")
	rep.Engine.EventsPerSec = measureEventsPerSec(*scale)

	fmt.Fprintf(stdout, "Table I wall clock (scale %.4f), sequential then parallel...\n", *scale)
	seqOpt := experiments.Options{DurationScale: *scale, Parallel: 1}
	parOpt := experiments.Options{DurationScale: *scale}
	start := time.Now()
	experiments.RunTableI(seqOpt)
	rep.TableI.SequentialSec = time.Since(start).Seconds()
	start = time.Now()
	experiments.RunTableI(parOpt)
	rep.TableI.ParallelSec = time.Since(start).Seconds()
	rep.TableI.DurationScale = *scale
	rep.TableI.Workers = parallel.Workers(parOpt.Parallel)
	if rep.TableI.ParallelSec > 0 {
		rep.TableI.Speedup = rep.TableI.SequentialSec / rep.TableI.ParallelSec
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (alloc reduction %.0f%%, Table I speedup %.2fx on %d workers)\n",
		*out, rep.Engine.AllocReductionPct, rep.TableI.Speedup, rep.TableI.Workers)
	return nil
}

func toBench(r testing.BenchmarkResult) EngineBench {
	return EngineBench{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchScheduleFire mirrors BenchmarkEngineScheduleFire: one
// schedule-then-dispatch round trip per op against an empty heap.
func benchScheduleFire() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1, 2)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(time.Microsecond, fn)
			e.Step()
		}
	}))
}

// benchScheduleFireDepth mirrors BenchmarkEngineScheduleFireDepth: the
// same round trip with 512 standing timers keeping the heap deep.
func benchScheduleFireDepth() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1, 2)
		fn := func() {}
		for i := 0; i < 512; i++ {
			e.Schedule(time.Hour, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(time.Microsecond, fn)
			e.Step()
		}
	}))
}

// benchTimerReuse mirrors BenchmarkEngineTimerReuse: schedule then stop,
// exercising the free-list recycle path without dispatch.
func benchTimerReuse() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1, 2)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tm := e.Schedule(time.Microsecond, fn)
			e.Stop(tm)
		}
	}))
}

// measureEventsPerSec runs one paper-topology simulation and reports
// dispatched engine events per wall-clock second.
func measureEventsPerSec(scale float64) float64 {
	cfg := cluster.PaperConfig().Scale(1, scale)
	c := cluster.New(cfg)
	start := time.Now()
	c.Run()
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		return 0
	}
	return float64(c.Eng.Fired()) / wall
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"millibalance/internal/httpcluster"
)

// PR8Report is the BENCH_PR8.json schema: the contention-free dispatch
// evidence. Dispatch repeats the PR7 sequential pair on the atomic-
// snapshot path and adds the frozen mutex reference measured in the
// same process, so the regression gate compares two numbers from the
// same machine instead of trusting another host's nanoseconds. Scaling
// holds the parallel dispatch arms at GOMAXPROCS 1/2/4 with the mutex
// contention counters the Go runtime collected during the widest arm.
type PR8Report struct {
	Schema string `json:"schema"`
	Host   struct {
		Cores      int    `json:"cores"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Dispatch struct {
		CurrentLoad    EngineBench `json:"current_load"`
		Prequal        EngineBench `json:"prequal"`
		OverheadPct    float64     `json:"overhead_pct"`
		Reference      EngineBench `json:"reference_mutex"`
		VsReferencePct float64     `json:"vs_reference_pct"`
	} `json:"dispatch"`
	Scaling struct {
		NsPerOpByCPU map[string]float64 `json:"ns_per_op_by_cpu"`
		Speedup4x    float64            `json:"speedup_4x"`
		Gated        bool               `json:"gated"`
		Contention   struct {
			Events int64 `json:"events"`
			Cycles int64 `json:"cycles"`
		} `json:"contention"`
	} `json:"scaling"`
	LoadStats struct {
		Record EngineBench `json:"record"`
	} `json:"load_stats"`
}

// runPR8 measures the contention-free dispatch evidence, enforces the
// in-process gates, and writes the report.
func runPR8(out string, stdout io.Writer) error {
	var rep PR8Report
	rep.Schema = "millibalance-bench-pr8/1"
	rep.Host.Cores = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Host.GoVersion = runtime.Version()

	fmt.Fprintln(stdout, "sequential dispatch, current_load and prequal...")
	rep.Dispatch.CurrentLoad, rep.Dispatch.Prequal, rep.Dispatch.OverheadPct = benchDispatchPair()

	fmt.Fprintln(stdout, "frozen mutex reference...")
	rep.Dispatch.Reference = best3(benchReferenceDispatch)
	if rep.Dispatch.Reference.NsPerOp > 0 {
		rep.Dispatch.VsReferencePct = 100 * rep.Dispatch.CurrentLoad.NsPerOp /
			rep.Dispatch.Reference.NsPerOp
	}

	fmt.Fprintln(stdout, "parallel dispatch at GOMAXPROCS 1/2/4...")
	rep.Scaling.NsPerOpByCPU = map[string]float64{}
	prev := runtime.GOMAXPROCS(0)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		withProfile := procs == 4
		res, events, cycles := benchParallelDispatch(withProfile)
		rep.Scaling.NsPerOpByCPU[fmt.Sprintf("%d", procs)] = res.NsPerOp
		if withProfile {
			rep.Scaling.Contention.Events = events
			rep.Scaling.Contention.Cycles = cycles
		}
		if res.AllocsPerOp != 0 {
			runtime.GOMAXPROCS(prev)
			return fmt.Errorf("parallel dispatch at GOMAXPROCS %d allocates %d/op, want 0",
				procs, res.AllocsPerOp)
		}
	}
	runtime.GOMAXPROCS(prev)
	if one, four := rep.Scaling.NsPerOpByCPU["1"], rep.Scaling.NsPerOpByCPU["4"]; four > 0 {
		rep.Scaling.Speedup4x = one / four
	}
	// The throughput-scaling gate only means something with real cores
	// under the arms; a single-core host timeshares all four workers.
	rep.Scaling.Gated = runtime.NumCPU() >= 4

	fmt.Fprintln(stdout, "sharded LoadStats.Record...")
	rep.LoadStats.Record = benchLoadStatsRecord()

	// In-process gates — fail the run (and CI) rather than record a
	// regression as if it were evidence.
	if rep.Dispatch.CurrentLoad.AllocsPerOp != 0 || rep.Dispatch.Prequal.AllocsPerOp != 0 {
		return fmt.Errorf("dispatch allocates (current_load %d, prequal %d allocs/op), want 0",
			rep.Dispatch.CurrentLoad.AllocsPerOp, rep.Dispatch.Prequal.AllocsPerOp)
	}
	if rep.Dispatch.OverheadPct > 30 {
		return fmt.Errorf("prequal overhead %.1f%% over current_load, gate is 30%%",
			rep.Dispatch.OverheadPct)
	}
	if rep.Dispatch.VsReferencePct > 80 {
		return fmt.Errorf("current_load at %.1f%% of the mutex reference, gate is 80%% (>=20%% faster)",
			rep.Dispatch.VsReferencePct)
	}
	if rep.Scaling.Gated && rep.Scaling.Speedup4x < 2 {
		return fmt.Errorf("GOMAXPROCS=4 speedup %.2fx on a %d-core host, gate is 2x",
			rep.Scaling.Speedup4x, runtime.NumCPU())
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (current_load %.1f ns/op = %.0f%% of mutex path, prequal +%.1f%%, 4-proc speedup %.2fx%s)\n",
		out, rep.Dispatch.CurrentLoad.NsPerOp, rep.Dispatch.VsReferencePct,
		rep.Dispatch.OverheadPct, rep.Scaling.Speedup4x,
		map[bool]string{true: "", false: " ungated"}[rep.Scaling.Gated])
	return nil
}

// best3 reruns a measurement three times and keeps the fastest — the
// minimum is the least-noise estimator of a benchmark's true cost on a
// busy CI host.
func best3(f func() EngineBench) EngineBench {
	best := f()
	for i := 0; i < 2; i++ {
		if r := f(); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}

// benchDispatchPair measures current_load and prequal back to back
// three times and gates on the median of the paired ratios. Host noise
// (CPU steal, frequency drift) is time-correlated, so two arms run in
// the same window share it and their ratio stays stable even when the
// absolute nanoseconds wander; ratios of independently-taken minima do
// not have that property. The reported arms are the ones from the
// median pair, so the JSON numbers reproduce the gated ratio.
func benchDispatchPair() (cl, pq EngineBench, overheadPct float64) {
	type pair struct {
		cl, pq EngineBench
		ratio  float64
	}
	pairs := make([]pair, 0, 3)
	for i := 0; i < 3; i++ {
		c := benchPrequalDispatch(false)
		q := benchPrequalDispatch(true)
		pairs = append(pairs, pair{cl: c, pq: q, ratio: q.NsPerOp / c.NsPerOp})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].ratio < pairs[j].ratio })
	med := pairs[1]
	return med.cl, med.pq, 100 * (med.ratio - 1)
}

// benchReferenceDispatch measures the frozen mutex path on the same
// acquire/release round trip as benchPrequalDispatch(false).
func benchReferenceDispatch() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		ref := httpcluster.NewReferenceBalancer(httpcluster.PolicyCurrentLoad,
			[]string{"a", "b"}, 64, httpcluster.Config{Sweeps: 1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rel, err := ref.Acquire(128)
			if err != nil {
				b.Fatal(err)
			}
			rel.Done(256)
		}
	}))
}

// benchParallelDispatch hammers one balancer from GOMAXPROCS-many
// goroutines via RunParallel. With profile set it also turns on the
// runtime's mutex contention sampling for the duration and returns the
// total contention events and wait cycles the balancer accumulated —
// the direct evidence that the snapshot path dispatches without
// serializing on a lock.
func benchParallelDispatch(profile bool) (EngineBench, int64, int64) {
	var events, cycles int64
	if profile {
		runtime.SetMutexProfileFraction(1)
		defer runtime.SetMutexProfileFraction(0)
	}
	res := toBench(testing.Benchmark(func(b *testing.B) {
		backends := []*httpcluster.Backend{
			httpcluster.NewBackend("a", "u", 1024),
			httpcluster.NewBackend("b", "u", 1024),
			httpcluster.NewBackend("c", "u", 1024),
			httpcluster.NewBackend("d", "u", 1024),
		}
		bal := httpcluster.NewBalancer(httpcluster.PolicyCurrentLoad,
			httpcluster.MechanismModified, backends, httpcluster.Config{Sweeps: 1})
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_, rel, err := bal.Acquire(128)
				if err != nil {
					continue
				}
				rel.Done(256)
			}
		})
	}))
	if profile {
		var recs []runtime.BlockProfileRecord
		n, ok := runtime.MutexProfile(nil)
		for !ok {
			recs = make([]runtime.BlockProfileRecord, n+32)
			n, ok = runtime.MutexProfile(recs)
		}
		for _, r := range recs[:n] {
			events += r.Count
			cycles += r.Cycles
		}
	}
	return res, events, cycles
}

// benchLoadStatsRecord measures one latency recording through the
// sharded collector, rotating clients across shards the way RunLoad's
// workers do.
func benchLoadStatsRecord() EngineBench {
	return toBench(testing.Benchmark(func(b *testing.B) {
		ls := httpcluster.NewLoadStats(50*time.Millisecond, 100*time.Millisecond, time.Second)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ls.Record(i, time.Duration(i%64)*time.Millisecond, i%97 != 0)
		}
	}))
}

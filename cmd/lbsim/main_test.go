package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunMiniQuiet(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mini", "-quiet", "-duration", "2s"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"policy=total_request", "response time:", "VLRT(>1s)=0.00%", "db  mysql1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunEveryPolicy(t *testing.T) {
	for _, policy := range []string{"total_traffic", "current_load", "two_choices"} {
		var out strings.Builder
		if err := run([]string{"-mini", "-duration", "1s", "-policy", policy, "-mechanism", "modified"}, &out); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(out.String(), "policy="+policy) {
			t.Fatalf("%s: header missing", policy)
		}
	}
}

func TestRunFlagOverrides(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mini", "-duration", "1s", "-clients", "500", "-seed", "99", "-browse-only"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "clients=500") {
		t.Fatalf("client override not applied:\n%s", out.String())
	}
}

func TestRunRejectsBadPolicy(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mini", "-policy", "bogus"}, &out); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunDumpConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mini", "-dump-config"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"policy": "total_request"`) {
		t.Fatalf("dump-config output:\n%s", out.String())
	}
}

func TestRunConfigFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/exp.json"
	var dump strings.Builder
	if err := run([]string{"-mini", "-dump-config"}, &dump); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(dump.String()), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-config-file", path, "-duration", "1s", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "clients=3000") {
		t.Fatalf("config file not applied:\n%s", out.String())
	}
}

func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/access.csv"
	var out strings.Builder
	if err := run([]string{"-mini", "-quiet", "-duration", "1s", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t_sec,id,client") {
		t.Fatalf("trace CSV header missing: %.80s", data)
	}
	if strings.Count(string(data), "\n") < 100 {
		t.Fatalf("trace CSV too short: %d lines", strings.Count(string(data), "\n"))
	}
}

func TestRunMissingConfigFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-config-file", "/nonexistent/x.json"}, &out); err == nil {
		t.Fatal("missing config file accepted")
	}
}

func TestRunStickyAndOpenLoopFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mini", "-quiet", "-duration", "1s", "-sticky", "-open-loop-rate", "500"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "requests: issued=") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunAdaptiveExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/adapt.jsonl"
	var out strings.Builder
	// -adapt-log implies -adaptive; the mini writeback stall triggers at
	// least one quarantine decision within 6 virtual seconds.
	if err := run([]string{"-mini", "-duration", "6s", "-adapt-log", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adaptive: decisions=") {
		t.Fatalf("summary missing adaptive line:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"action":"quarantine"`) {
		t.Fatalf("adapt JSONL missing quarantine decisions: %.200s", data)
	}
}

func TestRunSpansAndDecisionsExport(t *testing.T) {
	dir := t.TempDir()
	spans, events := dir+"/spans.jsonl", dir+"/events.jsonl"
	var out strings.Builder
	if err := run([]string{"-mini", "-quiet", "-duration", "1s", "-spans", spans, "-decisions", events}, &out); err != nil {
		t.Fatal(err)
	}
	spanData, err := os.ReadFile(spans)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(spanData), `"stages"`) || strings.Count(string(spanData), "\n") < 100 {
		t.Fatalf("span JSONL incomplete: %.120s", spanData)
	}
	evData, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(evData), `"kind":"decision"`) || !strings.Contains(string(evData), `"lb_value"`) {
		t.Fatalf("event JSONL incomplete: %.120s", evData)
	}
	if !strings.Contains(out.String(), "spans: ") || !strings.Contains(out.String(), "events: ") {
		t.Fatalf("summary missing export lines:\n%s", out.String())
	}
}

// Command lbsim runs one n-tier load-balancing experiment and prints a
// summary: throughput, response-time statistics, VLRT/normal shares,
// drop counts and per-server load. It is the generic driver; use
// cmd/rubbos-bench for the paper's Table I and cmd/figures for figure
// series.
//
// Examples:
//
//	lbsim -policy total_request -mechanism original -duration 30s
//	lbsim -policy current_load -scale 0.2 -quiet
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/admission"
	"millibalance/internal/cluster"
	"millibalance/internal/config"
	"millibalance/internal/lb"
	"millibalance/internal/parallel"
	"millibalance/internal/resource"
	"millibalance/internal/stats"
	"millibalance/internal/telemetry"
)

// runReplicas executes n copies of the config differing only in seed,
// fanned out across the parallel harness, and prints one line per seed
// (in seed order, regardless of completion order) plus the cross-seed
// mean and standard deviation of the headline metrics.
func runReplicas(out io.Writer, cfg cluster.Config, n, workers int) error {
	base := cfg.Seed1
	start := time.Now()
	results := parallel.Map(workers, n, func(i int) *cluster.Results {
		c := cfg
		c.Seed1 = base + uint64(i)
		return cluster.Run(c)
	})
	elapsed := time.Since(start)

	fmt.Fprintf(out, "policy=%s mechanism=%s clients=%d duration=%v seeds=%d parallel=%d (wall %v)\n",
		cfg.Policy, cfg.Mechanism, cfg.Clients, cfg.Duration, n,
		parallel.Workers(workers), elapsed.Round(time.Millisecond))
	var meanMs, vlrtPct stats.Online
	for i, res := range results {
		r := res.Responses
		ms := float64(r.Mean().Microseconds()) / 1000
		meanMs.Add(ms)
		vlrtPct.Add(r.VLRTPercent())
		fmt.Fprintf(out, "seed=%-8d requests=%-8d meanRT=%9.2fms VLRT=%5.2f%% drops=%d\n",
			base+uint64(i), r.Total(), ms, r.VLRTPercent(), res.Drops)
	}
	fmt.Fprintf(out, "across seeds: meanRT=%.2fms (sd %.2f) VLRT=%.2f%% (sd %.2f)\n",
		meanMs.Mean(), meanMs.StdDev(), vlrtPct.Mean(), vlrtPct.StdDev())
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lbsim", flag.ContinueOnError)
	policy := fs.String("policy", "total_request",
		"load balancing policy: "+strings.Join(lb.PolicyNames(), ", "))
	mechanism := fs.String("mechanism", "original",
		"get_endpoint mechanism: original or modified")
	duration := fs.Duration("duration", 30*time.Second, "virtual run duration")
	clients := fs.Int("clients", 0, "override client count (0 = config default)")
	scale := fs.Float64("scale", 1.0, "client-count scale factor")
	seed := fs.Uint64("seed", 0, "override random seed (0 = config default)")
	quiet := fs.Bool("quiet", false, "disable millibottlenecks (baseline environment)")
	mini := fs.Bool("mini", false, "use the small test topology instead of the paper topology")
	browse := fs.Bool("browse-only", false, "use the browse-only mix")
	configFile := fs.String("config-file", "", "load the experiment from a JSON config file")
	dumpConfig := fs.Bool("dump-config", false, "print the effective config as JSON and exit")
	traceFile := fs.String("trace", "", "write the per-request access log as CSV to this file")
	spansFile := fs.String("spans", "", "write request-lifecycle spans as JSONL to this file (enables span tracing)")
	decisionsFile := fs.String("decisions", "", "write balancer decision/state/detector events as JSONL to this file (enables the event log and online detectors)")
	timelineFile := fs.String("timeline", "", "write the 50 ms per-tier resource timeline as JSONL to this file (enables the telemetry sampler)")
	adaptive := fs.Bool("adaptive", false, "arm the millibottleneck-aware adaptive control plane")
	admSpec := fs.String("admission", "", "arm the web-tier admission plane: + joined tokens from static[:n], aimd, gradient, codel, lifo (e.g. gradient+codel+lifo)")
	adaptLog := fs.String("adapt-log", "", "write controller decisions as JSONL to this file (implies -adaptive)")
	sticky := fs.Bool("sticky", false, "enable mod_jk sticky sessions")
	openLoop := fs.Float64("open-loop-rate", 0, "use Poisson arrivals at this rate (req/s) instead of closed-loop clients")
	seeds := fs.Int("seeds", 1, "run this many seed replicas (seed, seed+1, ...) and aggregate")
	par := fs.Int("parallel", 0, "max concurrent runs for -seeds (0 = GOMAXPROCS, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := cluster.PaperConfig()
	if *mini {
		cfg = cluster.MiniConfig()
	}
	if *configFile != "" {
		f, err := os.Open(*configFile)
		if err != nil {
			return err
		}
		cfg, err = config.Load(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
	}
	cfg.Policy = *policy
	cfg.Mechanism = *mechanism
	cfg.Duration = *duration
	cfg.BrowseOnly = *browse
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *scale != 1.0 {
		cfg = cfg.Scale(*scale, 1)
	}
	if *seed != 0 {
		cfg.Seed1 = *seed
	}
	if *quiet {
		cfg.AppWriteback = resource.DisabledWritebackConfig()
		cfg.WebWriteback = resource.DisabledWritebackConfig()
	}
	if *sticky {
		cfg.LB.StickySessions = true
	}
	if *openLoop > 0 {
		cfg.OpenLoopRate = *openLoop
	}
	if *adaptive || *adaptLog != "" {
		if cfg.Adaptive == nil {
			cfg.Adaptive = &adapt.Config{}
		}
	}
	if *admSpec != "" {
		acfg, err := admission.ParseSpec(*admSpec)
		if err != nil {
			return err
		}
		cfg.Admission = acfg
	}
	if *traceFile != "" && cfg.TraceCapacity == 0 {
		cfg.TraceCapacity = 4 << 20 // plenty for any run this CLI drives
	}
	if *spansFile != "" && cfg.SpanCapacity == 0 {
		cfg.SpanCapacity = 4 << 20
	}
	if *decisionsFile != "" && cfg.EventCapacity == 0 {
		cfg.EventCapacity = 4 << 20
	}
	if *timelineFile != "" && cfg.Telemetry == nil {
		cfg.Telemetry = &telemetry.Config{}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if *dumpConfig {
		return config.Save(out, cfg)
	}
	if *seeds > 1 {
		if *traceFile != "" || *spansFile != "" || *decisionsFile != "" || *adaptLog != "" || *timelineFile != "" {
			return fmt.Errorf("-seeds does not combine with trace/span/decision/timeline export")
		}
		return runReplicas(out, cfg, *seeds, *par)
	}

	// Create the export files before the run: a typo'd path should fail
	// immediately, not after a possibly minutes-long simulation.
	var traceOut, spansOut, decisionsOut, adaptOut, timelineOut *os.File
	for _, e := range []struct {
		path string
		dst  **os.File
	}{{*traceFile, &traceOut}, {*spansFile, &spansOut}, {*decisionsFile, &decisionsOut}, {*adaptLog, &adaptOut}, {*timelineFile, &timelineOut}} {
		if e.path == "" {
			continue
		}
		f, err := os.Create(e.path)
		if err != nil {
			return err
		}
		*e.dst = f
	}

	start := time.Now()
	res := cluster.Run(cfg)
	elapsed := time.Since(start)

	if traceOut != nil {
		if err := res.Trace.WriteCSV(traceOut); err != nil {
			_ = traceOut.Close()
			return err
		}
		if err := traceOut.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "access log: %d entries written to %s (%d truncated)\n",
			res.Trace.Len(), *traceFile, res.Trace.Truncated())
	}
	if spansOut != nil {
		if err := res.Spans.WriteJSONL(spansOut); err != nil {
			_ = spansOut.Close()
			return err
		}
		if err := spansOut.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "spans: %d written to %s (%d overwritten)\n",
			res.Spans.Len(), *spansFile, res.Spans.Overwritten())
	}
	if decisionsOut != nil {
		if err := res.Events.WriteJSONL(decisionsOut); err != nil {
			_ = decisionsOut.Close()
			return err
		}
		if err := decisionsOut.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "events: %d written to %s (%d overwritten)\n",
			res.Events.Len(), *decisionsFile, res.Events.Overwritten())
	}
	if adaptOut != nil {
		if err := res.Adapt.WriteJSONL(adaptOut); err != nil {
			_ = adaptOut.Close()
			return err
		}
		if err := adaptOut.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "adapt decisions: %d written to %s (%d overwritten)\n",
			res.Adapt.Len(), *adaptLog, res.Adapt.Overwritten())
	}
	if timelineOut != nil {
		if err := res.Timeline.WriteJSONL(timelineOut); err != nil {
			_ = timelineOut.Close()
			return err
		}
		if err := timelineOut.Close(); err != nil {
			return err
		}
		points := 0
		for _, tr := range res.Timeline.Tracks() {
			points += tr.Len()
		}
		fmt.Fprintf(out, "timeline: %d tracks (%d points) written to %s\n",
			len(res.Timeline.Tracks()), points, *timelineFile)
	}

	r := res.Responses
	fmt.Fprintf(out, "policy=%s mechanism=%s clients=%d duration=%v (wall %v)\n",
		cfg.Policy, cfg.Mechanism, cfg.Clients, cfg.Duration, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "requests: issued=%d completed=%d failed=%d drops=%d retransmits=%d give-ups=%d rejects=%d\n",
		res.Issued, r.Total(), r.Failures(), res.Drops, res.Retransmits, res.GiveUps, res.Rejects)
	fmt.Fprintf(out, "response time: mean=%v p50=%v p99=%v p99.9=%v max=%v\n",
		r.Mean().Round(10*time.Microsecond), r.Quantile(0.5).Round(10*time.Microsecond),
		r.Quantile(0.99).Round(10*time.Microsecond), r.Quantile(0.999).Round(10*time.Microsecond),
		r.Histogram().Max().Round(time.Millisecond))
	fmt.Fprintf(out, "shares: VLRT(>1s)=%.2f%% normal(<10ms)=%.2f%%\n", r.VLRTPercent(), r.NormalPercent())
	if cfg.Admission != nil {
		fmt.Fprintf(out, "admission: sheds=%d", res.AdmissionSheds)
		for _, st := range res.Admission {
			fmt.Fprintf(out, " [%s limit=%d admitted=%d dropped=%d]", st.Limiter, st.Limit, st.Admitted, st.Dropped)
		}
		fmt.Fprintln(out)
	}
	if cfg.Adaptive != nil {
		st := res.AdaptState
		fmt.Fprintf(out, "adaptive: decisions=%d quarantines=%d readmits=%d swaps=%d fallbacks=%d final policy=%s mechanism=%s quarantined=%d\n",
			st.Decisions,
			res.Adapt.Count(adapt.ActionQuarantine), res.Adapt.Count(adapt.ActionReadmit),
			res.Adapt.Count(adapt.ActionSwapMechanism)+res.Adapt.Count(adapt.ActionSwapPolicy),
			res.Adapt.Count(adapt.ActionFallback),
			st.Policy, st.Mechanism, len(st.Quarantined))
	}
	for _, st := range res.Webs {
		_, peak := st.Queue.PeakWindow()
		fmt.Fprintf(out, "web %-9s served=%-8d avgCPU=%5.1f%% queuePeak=%.0f\n", st.Name, st.Served, st.CPU.Average(), peak)
	}
	for _, st := range res.Apps {
		_, peak := st.Queue.PeakWindow()
		fmt.Fprintf(out, "app %-9s served=%-8d avgCPU=%5.1f%% queuePeak=%.0f\n", st.Name, st.Served, st.CPU.Average(), peak)
	}
	fmt.Fprintf(out, "db  %-9s served=%-8d avgCPU=%5.1f%%\n", res.DB.Name, res.DB.Served, res.DB.CPU.Average())
	return nil
}

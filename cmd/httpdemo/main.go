// Command httpdemo demonstrates the paper's instability over real
// loopback HTTP: it boots a database stub, application servers and a
// web-tier proxy, drives closed-loop clients, injects a millibottleneck
// (a stall) on one application server mid-run, and prints the latency
// profile. Run it once per configuration to compare:
//
//	httpdemo -policy total_request -mechanism original
//	httpdemo -policy current_load  -mechanism modified
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/httpcluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "httpdemo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("httpdemo", flag.ContinueOnError)
	policyName := fs.String("policy", "total_request", "total_request, total_traffic or current_load")
	mechName := fs.String("mechanism", "original", "original or modified")
	apps := fs.Int("apps", 2, "application servers")
	clients := fs.Int("clients", 24, "closed-loop clients")
	duration := fs.Duration("duration", 3*time.Second, "load duration")
	stallAt := fs.Duration("stall-at", time.Second, "when to inject the millibottleneck")
	stallFor := fs.Duration("stall-for", 400*time.Millisecond, "millibottleneck length")
	endpoints := fs.Int("endpoints", 4, "proxy endpoint pool per backend")
	obsOn := fs.Bool("obs", false, "arm span tracing and the balancer event log (GET /admin/trace and /admin/events on the proxy)")
	adaptive := fs.Bool("adaptive", false, "arm the adaptive control plane (GET /admin/adapt and /admin/adapt/decisions; implies -obs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := httpcluster.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	mech, err := httpcluster.ParseMechanism(*mechName)
	if err != nil {
		return err
	}

	db, err := httpcluster.StartDBServer(200 * time.Microsecond)
	if err != nil {
		return err
	}
	defer func() { _ = db.Close() }()

	var appServers []*httpcluster.AppServer
	var backends []*httpcluster.Backend
	for i := 0; i < *apps; i++ {
		name := fmt.Sprintf("app%d", i+1)
		app, err := httpcluster.StartAppServer(httpcluster.AppServerConfig{
			Name:        name,
			Workers:     64,
			ServiceTime: 2 * time.Millisecond,
			DBURL:       db.URL(),
			DBQueries:   1,
		})
		if err != nil {
			return err
		}
		defer func() { _ = app.Close() }()
		appServers = append(appServers, app)
		backends = append(backends, httpcluster.NewBackend(name, app.URL(), *endpoints))
	}

	pcfg := httpcluster.ProxyConfig{
		Workers:   128,
		Policy:    policy,
		Mechanism: mech,
	}
	if *obsOn || *adaptive {
		pcfg.SpanCapacity = 1 << 16
		pcfg.EventCapacity = 1 << 17
	}
	if *adaptive {
		pcfg.Adapt = &adapt.Config{}
	}
	proxy, err := httpcluster.StartProxy(pcfg, backends)
	if err != nil {
		return err
	}
	defer func() { _ = proxy.Close() }()

	fmt.Printf("3-tier loopback cluster: proxy %s → %d app servers → db %s\n",
		proxy.URL(), *apps, db.URL())
	if *obsOn || *adaptive {
		fmt.Printf("observability: GET %s/admin/trace and %s/admin/events (JSONL)\n",
			proxy.URL(), proxy.URL())
	}
	if *adaptive {
		fmt.Printf("adaptive: GET %s/admin/adapt (state) and %s/admin/adapt/decisions (JSONL)\n",
			proxy.URL(), proxy.URL())
	}
	fmt.Printf("policy=%s mechanism=%s; stalling app1 for %v at t=%v\n",
		policy, mech, *stallFor, *stallAt)

	timer := time.AfterFunc(*stallAt, func() {
		fmt.Printf("!! millibottleneck: app1 frozen for %v\n", *stallFor)
		appServers[0].Stall(*stallFor)
	})
	defer timer.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	stats := httpcluster.RunLoad(ctx, proxy.URL(), httpcluster.LoadGenConfig{
		Clients:   *clients,
		ThinkTime: 10 * time.Millisecond,
	}, 100*time.Millisecond, 300*time.Millisecond)

	fmt.Printf("\nrequests: %d total, %d failed, %d rejected by the balancer\n",
		stats.Total(), stats.Failures(), proxy.Balancer().Rejects())
	fmt.Printf("latency: mean=%v p50=%v p90=%v p99=%v max=%v\n",
		stats.Mean().Round(time.Microsecond*100), stats.Quantile(0.5).Round(time.Microsecond*100),
		stats.Quantile(0.9).Round(time.Microsecond*100), stats.Quantile(0.99).Round(time.Microsecond*100),
		stats.Max().Round(time.Millisecond))
	fmt.Printf("slow requests: ≥100ms: %d, ≥300ms: %d\n",
		stats.CountOver(100*time.Millisecond), stats.CountOver(300*time.Millisecond))
	for _, be := range proxy.Balancer().Backends() {
		fmt.Printf("backend %s: dispatched=%d completed=%d lb_value=%.0f state=%v\n",
			be.Name(), be.Dispatched(), be.Completed(), be.LBValue(), be.State())
	}
	if *adaptive {
		st := proxy.Adapt().State()
		fmt.Printf("adaptive: decisions=%d policy=%s mechanism=%s quarantined=%d fallback=%v\n",
			st.Decisions, st.Policy, st.Mechanism, len(st.Quarantined), st.Fallback)
	}
	fmt.Println("\nlatency timeline (mean/max ms per 100ms window):")
	tl := stats.Timeline()
	for i := 0; i < tl.Len(); i++ {
		w := tl.At(i)
		if w.Count == 0 {
			continue
		}
		fmt.Printf("  t=%4.1fs  n=%-4d mean=%7.1f  max=%7.1f\n",
			tl.Start(i).Seconds(), w.Count, w.Mean(), w.Max)
	}
	return nil
}

// Command httpdemo demonstrates the paper's instability over real
// loopback HTTP: it boots a database stub, application servers and a
// web-tier proxy, drives closed-loop clients, injects a millibottleneck
// (a stall) on one application server mid-run, and prints the latency
// profile. Run it once per configuration to compare:
//
//	httpdemo -policy total_request -mechanism original
//	httpdemo -policy current_load  -mechanism modified
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/admission"
	"millibalance/internal/faults"
	"millibalance/internal/httpcluster"
	"millibalance/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "httpdemo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("httpdemo", flag.ContinueOnError)
	policyName := fs.String("policy", "total_request",
		"load balancing policy: "+strings.Join(httpcluster.PolicyNames(), ", "))
	mechName := fs.String("mechanism", "original", "original or modified")
	apps := fs.Int("apps", 2, "application servers")
	clients := fs.Int("clients", 24, "closed-loop clients")
	duration := fs.Duration("duration", 3*time.Second, "load duration")
	stallAt := fs.Duration("stall-at", time.Second, "when to inject the millibottleneck")
	stallFor := fs.Duration("stall-for", 400*time.Millisecond, "millibottleneck length")
	endpoints := fs.Int("endpoints", 4, "proxy endpoint pool per backend")
	obsOn := fs.Bool("obs", false, "arm span tracing and the balancer event log (GET /admin/trace and /admin/events on the proxy)")
	adaptive := fs.Bool("adaptive", false, "arm the adaptive control plane (GET /admin/adapt and /admin/adapt/decisions; implies -obs)")
	faultSpec := fs.String("faults", "", "fault scenario, e.g. 'freeze:periodic:interval=1s:duration=300ms:target=app1,netloss:oneshot:interval=2s:duration=500ms' (replaces the single scripted stall; implies -obs)")
	resilient := fs.Bool("resilience", false, "arm the proxy resilience layer: attempt deadlines, budgeted retries, fast-fail shedding")
	admSpec := fs.String("admission", "", "arm the proxy admission plane (GET /admin/admission): + joined tokens from static[:n], aimd, gradient, codel, lifo")
	telemetryOn := fs.Bool("telemetry", false, "arm the 50 ms telemetry sampler (GET /metrics and /admin/timeline on the proxy)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := httpcluster.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	mech, err := httpcluster.ParseMechanism(*mechName)
	if err != nil {
		return err
	}
	var specs []faults.Spec
	if *faultSpec != "" {
		if specs, err = faults.ParseScenario(*faultSpec); err != nil {
			return err
		}
	}

	db, err := httpcluster.StartDBServer(200 * time.Microsecond)
	if err != nil {
		return err
	}
	defer func() { _ = db.Close() }()

	var appServers []*httpcluster.AppServer
	var backends []*httpcluster.Backend
	for i := 0; i < *apps; i++ {
		name := fmt.Sprintf("app%d", i+1)
		app, err := httpcluster.StartAppServer(httpcluster.AppServerConfig{
			Name:        name,
			Workers:     64,
			ServiceTime: 2 * time.Millisecond,
			DBURL:       db.URL(),
			DBQueries:   1,
		})
		if err != nil {
			return err
		}
		defer func() { _ = app.Close() }()
		appServers = append(appServers, app)
		backends = append(backends, httpcluster.NewBackend(name, app.URL(), *endpoints))
	}

	pcfg := httpcluster.ProxyConfig{
		Workers:   128,
		Policy:    policy,
		Mechanism: mech,
	}
	if *obsOn || *adaptive || len(specs) > 0 {
		pcfg.SpanCapacity = 1 << 16
		pcfg.EventCapacity = 1 << 17
	}
	if *adaptive {
		pcfg.Adapt = &adapt.Config{}
	}
	if *resilient {
		pcfg.Resilience = &httpcluster.Resilience{}
	}
	if *admSpec != "" {
		acfg, err := admission.ParseSpec(*admSpec)
		if err != nil {
			return err
		}
		pcfg.Admission = acfg
	}
	if *telemetryOn {
		pcfg.Telemetry = &telemetry.Config{}
	}
	if *pprofAddr != "" {
		stopProf, err := servePprof(*pprofAddr)
		if err != nil {
			return err
		}
		defer stopProf()
	}
	var transport *faults.Transport
	if len(specs) > 0 {
		transport = faults.NewTransport(nil, 1)
		pcfg.Transport = transport
	}
	proxy, err := httpcluster.StartProxy(pcfg, backends)
	if err != nil {
		return err
	}
	defer func() { _ = proxy.Close() }()

	injectors, err := buildInjectors(specs, appServers, transport)
	if err != nil {
		return err
	}

	fmt.Printf("3-tier loopback cluster: proxy %s → %d app servers → db %s\n",
		proxy.URL(), *apps, db.URL())
	if *obsOn || *adaptive {
		fmt.Printf("observability: GET %s/admin/trace and %s/admin/events (JSONL)\n",
			proxy.URL(), proxy.URL())
	}
	if *adaptive {
		fmt.Printf("adaptive: GET %s/admin/adapt (state) and %s/admin/adapt/decisions (JSONL)\n",
			proxy.URL(), proxy.URL())
	}
	if *telemetryOn {
		fmt.Printf("telemetry: GET %s/metrics (Prometheus) and %s/admin/timeline (JSONL)\n",
			proxy.URL(), proxy.URL())
	}
	if proxy.Admission() != nil {
		fmt.Printf("admission: GET %s/admin/admission (JSONL gate snapshot + limit history)\n",
			proxy.URL())
	}
	if len(injectors) > 0 {
		fmt.Printf("policy=%s mechanism=%s resilience=%v; fault scenario: %s\n",
			policy, mech, *resilient, *faultSpec)
		for _, inj := range injectors {
			inj.Arm(proxy.Events(), proxy.Epoch())
			inj.Start()
			defer inj.Stop()
		}
	} else {
		fmt.Printf("policy=%s mechanism=%s; stalling app1 for %v at t=%v\n",
			policy, mech, *stallFor, *stallAt)
		timer := time.AfterFunc(*stallAt, func() {
			fmt.Printf("!! millibottleneck: app1 frozen for %v\n", *stallFor)
			appServers[0].Stall(*stallFor)
		})
		defer timer.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	stats := httpcluster.RunLoad(ctx, proxy.URL(), httpcluster.LoadGenConfig{
		Clients:   *clients,
		ThinkTime: 10 * time.Millisecond,
	}, 100*time.Millisecond, 300*time.Millisecond)

	fmt.Printf("\nrequests: %d total, %d failed, %d rejected by the balancer\n",
		stats.Total(), stats.Failures(), proxy.Balancer().Rejects())
	if len(injectors) > 0 || *resilient {
		for _, inj := range injectors {
			fmt.Printf("fault %s on %s: %d windows\n", inj.Name(), inj.Shape().Target(), inj.Fired())
		}
		fmt.Printf("resilience: shed=%d retries=%d\n", proxy.Shed(), proxy.Retries())
	}
	fmt.Printf("latency: mean=%v p50=%v p90=%v p99=%v max=%v\n",
		stats.Mean().Round(time.Microsecond*100), stats.Quantile(0.5).Round(time.Microsecond*100),
		stats.Quantile(0.9).Round(time.Microsecond*100), stats.Quantile(0.99).Round(time.Microsecond*100),
		stats.Max().Round(time.Millisecond))
	fmt.Printf("slow requests: ≥100ms: %d, ≥300ms: %d\n",
		stats.CountOver(100*time.Millisecond), stats.CountOver(300*time.Millisecond))
	for _, be := range proxy.Balancer().Backends() {
		fmt.Printf("backend %s: dispatched=%d completed=%d lb_value=%.0f state=%v\n",
			be.Name(), be.Dispatched(), be.Completed(), be.LBValue(), be.State())
	}
	if *adaptive {
		st := proxy.Adapt().State()
		fmt.Printf("adaptive: decisions=%d policy=%s mechanism=%s quarantined=%d fallback=%v\n",
			st.Decisions, st.Policy, st.Mechanism, len(st.Quarantined), st.Fallback)
	}
	if g := proxy.Admission(); g != nil {
		st := g.Stats()
		fmt.Printf("admission: limiter=%s limit=%d admitted=%d dropped=%d (priority=%d queue_full=%d max_wait=%d codel=%d)\n",
			st.Limiter, st.Limit, st.Admitted, st.Dropped,
			st.DropsPriority, st.DropsQueueFull, st.DropsMaxWait, st.DropsCoDel)
	}
	fmt.Println("\nlatency timeline (mean/max ms per 100ms window):")
	tl := stats.Timeline()
	for i := 0; i < tl.Len(); i++ {
		w := tl.At(i)
		if w.Count == 0 {
			continue
		}
		fmt.Printf("  t=%4.1fs  n=%-4d mean=%7.1f  max=%7.1f\n",
			tl.Start(i).Seconds(), w.Count, w.Mean(), w.Max)
	}
	return nil
}

// servePprof serves the net/http/pprof handlers on their own listener,
// registered on a private mux so the profiling surface only exists when
// asked for — the default-mux side effect of importing net/http/pprof
// is deliberately not relied on.
func servePprof(addr string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("pprof: http://%s/debug/pprof/\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}

// buildInjectors resolves parsed fault specs against the live tier:
// each spec's target names an app server (default: the first), and the
// network shapes degrade that server's host on the proxy's transport.
func buildInjectors(specs []faults.Spec, apps []*httpcluster.AppServer, tr *faults.Transport) ([]*faults.Injector, error) {
	byName := make(map[string]*httpcluster.AppServer, len(apps))
	for _, app := range apps {
		byName[app.Name()] = app
	}
	var out []*faults.Injector
	for _, spec := range specs {
		target := spec.Target
		if target == "" {
			target = apps[0].Name()
		}
		app, ok := byName[target]
		if !ok {
			return nil, fmt.Errorf("fault target %q: no such app server", target)
		}
		var shape faults.Shape
		switch spec.ShapeKind {
		case "freeze":
			shape = faults.Freeze{Name: app.Name(), S: app}
		case "gc_pause":
			shape = faults.GCPause{Name: app.Name(), S: app}
		case "slow":
			shape = faults.Slow{Name: app.Name(), D: app, Extra: spec.Delay}
		case "crash":
			shape = faults.Crash{Name: app.Name(), R: app}
		case "netdelay", "netloss":
			shape = faults.NetDegrade{
				T:       tr,
				Host:    strings.TrimPrefix(app.URL(), "http://"),
				Latency: spec.Latency,
				Loss:    spec.Loss,
			}
		default:
			return nil, fmt.Errorf("fault shape %q not supported by httpdemo", spec.ShapeKind)
		}
		out = append(out, spec.Bind(shape))
	}
	return out, nil
}

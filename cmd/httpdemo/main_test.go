package main

import "testing"

func TestRunShortDemo(t *testing.T) {
	err := run([]string{
		"-duration", "400ms",
		"-stall-at", "100ms",
		"-stall-for", "100ms",
		"-clients", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunShortDemoAdaptive(t *testing.T) {
	err := run([]string{
		"-duration", "400ms",
		"-stall-at", "100ms",
		"-stall-for", "100ms",
		"-clients", "4",
		"-adaptive",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestRunRejectsBadMechanism(t *testing.T) {
	if err := run([]string{"-mechanism", "bogus"}); err == nil {
		t.Fatal("bad mechanism accepted")
	}
}

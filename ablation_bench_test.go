// Ablation benchmarks for the design choices DESIGN.md calls out: how
// the instability scales with the endpoint pool size, the accept
// backlog, the millibottleneck duration, the retransmission schedule,
// the balancer's sweep budget, and the policy choice (including the
// extension policies). Each sub-benchmark runs one paper-topology
// configuration and reports mean response time and VLRT share.
package millibalance_test

import (
	"fmt"
	"testing"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/lb"
	"millibalance/internal/mbneck"
	"millibalance/internal/netmodel"
)

// ablationConfig is the common starting point: the paper topology under
// the original total_request policy for a shorter 15 s window.
func ablationConfig() cluster.Config {
	cfg := cluster.PaperConfig()
	cfg.Duration = 15 * time.Second
	return cfg
}

func reportRun(b *testing.B, res *cluster.Results) {
	b.Helper()
	b.ReportMetric(float64(res.Responses.Mean().Microseconds())/1000, "mean_ms")
	b.ReportMetric(res.Responses.VLRTPercent(), "vlrt_pct")
	b.ReportMetric(float64(res.Drops), "drops")
}

func BenchmarkAblationConnPoolSize(b *testing.B) {
	for _, pool := range []int{10, 25, 50, 100} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.ConnPoolSize = pool
				reportRun(b, cluster.Run(cfg))
			}
		})
	}
}

func BenchmarkAblationAcceptBacklog(b *testing.B) {
	for _, backlog := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("backlog=%d", backlog), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.WebBacklog = backlog
				reportRun(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationStallDuration scripts one stall of each length on an
// otherwise quiet cluster and reports the VLRT fallout — where does a
// "millibottleneck" start mattering?
func BenchmarkAblationStallDuration(b *testing.B) {
	for _, stall := range []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond,
	} {
		b.Run(fmt.Sprintf("stall=%v", stall), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cluster.BaselineConfig()
				cfg.Duration = 12 * time.Second
				c := cluster.New(cfg)
				inj := mbneck.NewScriptedStalls(c.Eng, "ablation", c.Apps[0].CPU(),
					[]mbneck.StallEvent{{At: 5 * time.Second, Duration: stall}})
				inj.Start()
				res := c.Run()
				b.ReportMetric(float64(res.Responses.VLRTCount()), "vlrt_total")
				b.ReportMetric(float64(res.Drops), "drops")
				_, appPeak := res.AppTierQueue.PeakWindow()
				b.ReportMetric(appPeak, "app_queue_peak")
			}
		})
	}
}

func BenchmarkAblationRetransmitSchedule(b *testing.B) {
	schedules := []struct {
		name     string
		schedule netmodel.RetransmitSchedule
	}{
		{"1s_x3", netmodel.RetransmitSchedule{time.Second, time.Second, time.Second}},
		{"exp_1s_2s_4s", netmodel.RetransmitSchedule{time.Second, 2 * time.Second, 4 * time.Second}},
		{"fast_200ms_x5", netmodel.RetransmitSchedule{
			200 * time.Millisecond, 200 * time.Millisecond, 200 * time.Millisecond,
			200 * time.Millisecond, 200 * time.Millisecond}},
	}
	for _, s := range schedules {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Retransmit = s.schedule
				res := cluster.Run(cfg)
				reportRun(b, res)
				b.ReportMetric(float64(res.GiveUps), "give_ups")
			}
		})
	}
}

// BenchmarkAblationSweeps contrasts failing a request after one sweep
// (fast 503s) against mod_jk's re-sweeping (delayed but successful).
func BenchmarkAblationSweeps(b *testing.B) {
	for _, sweeps := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("sweeps=%d", sweeps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.LB = lb.Config{Sweeps: sweeps}
				res := cluster.Run(cfg)
				reportRun(b, res)
				b.ReportMetric(float64(res.Responses.Failures()), "error_responses")
			}
		})
	}
}

// BenchmarkAblationPolicies compares every policy (paper + extensions)
// under the original mechanism with natural millibottlenecks.
func BenchmarkAblationPolicies(b *testing.B) {
	for _, policy := range lb.PolicyNames() {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Policy = policy
				if policy == "recent_request" {
					cfg.LB = lb.Config{MaintainInterval: 200 * time.Millisecond}
				}
				reportRun(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationFlushInterval varies the writeback interval: longer
// intervals mean rarer but bigger flushes (the dirty backlog grows),
// the paper's explanation for why its baseline remedy (600 s interval +
// large allowance) works only when the allowance also grows.
func BenchmarkAblationFlushInterval(b *testing.B) {
	for _, interval := range []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second} {
		b.Run(fmt.Sprintf("interval=%v", interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.AppWriteback.Interval = interval
				reportRun(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationMix contrasts the browse-only and read/write
// interaction mixes (RUBBoS ships both) under the original policy.
func BenchmarkAblationMix(b *testing.B) {
	for _, browse := range []bool{false, true} {
		name := "read_write"
		if browse {
			name = "browse_only"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.BrowseOnly = browse
				reportRun(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationStickySessions quantifies the interaction of session
// affinity with the instability: sticky sessions bypass the policy for
// bound clients, so even current_load cannot steer a pinned session away
// from its millibottlenecked backend (it only re-routes on endpoint-pool
// exhaustion).
func BenchmarkAblationStickySessions(b *testing.B) {
	for _, sticky := range []bool{false, true} {
		for _, policy := range []string{"total_request", "current_load"} {
			name := fmt.Sprintf("%s/sticky=%v", policy, sticky)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := ablationConfig()
					cfg.Policy = policy
					cfg.LB = lb.Config{StickySessions: sticky}
					reportRun(b, cluster.Run(cfg))
				}
			})
		}
	}
}

// BenchmarkAblationLoadLevel sweeps the offered load (client count):
// the paper's phenomenon appears at moderate utilization and worsens
// with load, but never requires saturation.
func BenchmarkAblationLoadLevel(b *testing.B) {
	for _, clients := range []int{35000, 70000, 105000} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Clients = clients
				reportRun(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationTierWidth sweeps the application-tier width: with
// more backends, each millibottleneck idles a smaller capacity share,
// but the funneling instability still concentrates every new request on
// the one stalled server.
func BenchmarkAblationTierWidth(b *testing.B) {
	for _, apps := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("apps=%d", apps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.NumApp = apps
				reportRun(b, cluster.Run(cfg))
			}
		})
	}
}

// BenchmarkAblationArrivalModel contrasts the closed-loop client
// population (arrivals throttle while requests queue) with an open-loop
// Poisson process at the same average rate (arrivals keep coming while
// the system is wedged) — the workload-model sensitivity of the
// instability.
func BenchmarkAblationArrivalModel(b *testing.B) {
	b.Run("closed_loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reportRun(b, cluster.Run(ablationConfig()))
		}
	})
	b.Run("open_loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := ablationConfig()
			cfg.OpenLoopRate = 10000 // the closed loop's average rate
			reportRun(b, cluster.Run(cfg))
		}
	})
}

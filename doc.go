// Package millibalance reproduces "Limitations of Load Balancing
// Mechanisms for N-Tier Systems in the Presence of Millibottlenecks"
// (Zhu et al., ICDCS 2017) as a Go library: a deterministic n-tier
// simulation testbed, the mod_jk-style load balancer with the paper's
// policies and get_endpoint mechanisms, dirty-page-flush millibottleneck
// injection and detection, a real-HTTP loopback twin, and an experiment
// harness that regenerates every table and figure of the evaluation.
//
// See README.md for a tour and DESIGN.md for the system inventory; the
// benchmarks in bench_test.go regenerate the paper's results:
//
//	go test -bench=. -benchmem
package millibalance

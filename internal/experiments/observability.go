package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/mbneck"
	"millibalance/internal/metrics"
	"millibalance/internal/obs"
	"millibalance/internal/trace"
)

// ObservabilityResult is the "Figure 14" companion experiment: the zoom
// scenario of Figs. 6/10 re-run with the observability layer enabled,
// demonstrating that the layer alone recovers the paper's three
// diagnostic findings — per-request VLRT decomposition (Section III),
// the lb_value signature (Figs. 10–11) rebuilt from the balancer
// decision log with no sampler involved, and online millibottleneck
// detection within one sampling interval of the stall.
type ObservabilityResult struct {
	Policy    string
	Mechanism string

	// --- span decomposition of VLRT requests ---
	VLRTCount int
	// Decomposition aggregates the VLRT entries' stage breakdowns.
	Decomposition trace.Decomposition
	// RetransmitDominantShare is the fraction of VLRT requests whose
	// largest timeline stage is the retransmit wait — the paper's
	// attribution of the long tail to dropped SYNs.
	RetransmitDominantShare float64

	// --- lb_value signature from decision events alone ---
	LBSeries []SeriesDump // per-candidate, rebuilt via obs.LBValueSeries
	// StalledIsMinDuringStall and StalledGrowsMostInRecovery are the
	// Figs. 10–11 findings recomputed purely from web 1's decision
	// events: the stalled candidate's lb_value frozen at the minimum
	// mid-stall, then growing fastest while the backlog drains.
	StalledIsMinDuringStall    bool
	StalledGrowsMostInRecovery bool
	DecisionCount              int
	StateTransitions           int

	// --- online detection ---
	// OnsetLatency is the delay from the scripted stall's start to the
	// online detector's mb_onset event for the stalled server (negative
	// when no onset was emitted).
	OnsetLatency time.Duration
	// DetectedStart/DetectedEnd bound the millibottleneck event
	// overlapping the stall (zero when none was emitted).
	DetectedStart, DetectedEnd time.Duration
	// QueuePeak is the correlated queue peak attached to the detection.
	QueuePeak float64
}

// RunObservability executes the zoom scenario (total_request +
// original_get_endpoint, one scripted 250 ms stall on tomcat1) with
// span tracing, the event log and the online detectors enabled.
func RunObservability(opt Options) ObservabilityResult {
	cfg := cluster.BaselineConfig() // writeback disabled everywhere
	cfg.Policy = "total_request"
	cfg.Mechanism = "original_get_endpoint"
	cfg.Duration = zoomDuration
	cfg.TraceCapacity = 1 << 20
	cfg.SpanCapacity = 1 << 20
	cfg.EventCapacity = 1 << 20
	if opt.Seed != 0 {
		cfg.Seed1 = opt.Seed
	}
	c := cluster.New(cfg)
	inj := mbneck.NewScriptedStalls(c.Eng, "zoom", c.Apps[0].CPU(), []mbneck.StallEvent{
		{At: zoomStallAt, Duration: zoomStallDur},
	})
	inj.Start()
	res := c.Run()

	out := ObservabilityResult{Policy: cfg.Policy, Mechanism: cfg.Mechanism}

	// Span decomposition of the VLRT population.
	var vlrt []trace.Entry
	for _, e := range res.Trace.Entries() {
		if e.ResponseTime >= metrics.VLRTThreshold {
			vlrt = append(vlrt, e)
		}
	}
	out.VLRTCount = len(vlrt)
	out.Decomposition = trace.Decompose(vlrt)
	out.RetransmitDominantShare = out.Decomposition.DominantShare(obs.StageRetransmitWait)

	// The Figs. 10–11 signature from web 1's decision log alone. During
	// phase 2 every web worker is stuck inside get_endpoint and decisions
	// cease, so the table is reconstructed as "last value seen at or
	// before t" — exactly the frozen lb_value the paper's red line shows.
	events := res.Events.Events()
	web1 := res.Webs[0].Name
	var decisions []obs.Event
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindDecision:
			out.DecisionCount++
			if ev.Source == web1 {
				decisions = append(decisions, ev)
			}
		case obs.KindState:
			out.StateTransitions++
		}
	}
	lbSeries := obs.LBValueSeries(decisions, 50*time.Millisecond)
	lbNames := make([]string, 0, len(lbSeries))
	for name := range lbSeries {
		lbNames = append(lbNames, name)
	}
	sort.Strings(lbNames)
	for _, name := range lbNames {
		out.LBSeries = append(out.LBSeries, dumpMeans("lb_"+name, lbSeries[name]))
	}
	stalled := c.Apps[0].Name()
	valueAt := func(name string, t time.Duration) float64 {
		last := 0.0
		for _, ev := range decisions {
			if ev.T > t {
				break
			}
			for _, cand := range ev.Candidates {
				if cand.Name == name {
					last = cand.LBValue
				}
			}
		}
		return last
	}
	names := make([]string, 0, len(c.Apps))
	for _, a := range c.Apps {
		names = append(names, a.Name())
	}
	midStall := zoomStallAt + 150*time.Millisecond
	out.StalledIsMinDuringStall = true
	for _, name := range names[1:] {
		if valueAt(stalled, midStall) > valueAt(name, midStall) {
			out.StalledIsMinDuringStall = false
		}
	}
	recoverFrom, recoverTo := zoomStallAt+zoomStallDur, zoomStallAt+zoomStallDur+time.Second
	growth := func(name string) float64 { return valueAt(name, recoverTo) - valueAt(name, recoverFrom) }
	out.StalledGrowsMostInRecovery = true
	for _, name := range names[1:] {
		if growth(stalled) <= growth(name) {
			out.StalledGrowsMostInRecovery = false
		}
	}

	// Online detection of the scripted stall.
	out.OnsetLatency = -1
	for _, ev := range events {
		if ev.Source != stalled {
			continue
		}
		switch ev.Kind {
		case obs.KindOnset:
			if out.OnsetLatency < 0 && ev.T >= zoomStallAt {
				out.OnsetLatency = ev.T - zoomStallAt
			}
		case obs.KindMillibottleneck:
			if ev.SpanStart < zoomStallAt+zoomStallDur && ev.SpanEnd > zoomStallAt {
				out.DetectedStart, out.DetectedEnd = ev.SpanStart, ev.SpanEnd
				out.QueuePeak = ev.QueuePeak
			}
		}
	}
	return out
}

// Render summarizes the observability findings.
func (r ObservabilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability close-up — policy=%s mechanism=%s (stall on tomcat1 at %.2fs for %v)\n",
		r.Policy, r.Mechanism, zoomStallAt.Seconds(), zoomStallDur)
	fmt.Fprintf(&b, "VLRT requests: %d; decomposition coverage mean=%.3f min=%.3f; retransmit-dominant share=%.0f%%\n",
		r.VLRTCount, r.Decomposition.MeanCoverage, r.Decomposition.MinCoverage, r.RetransmitDominantShare*100)
	fmt.Fprintf(&b, "decision events: %d (web1 lb_value table per dispatch); state transitions: %d\n",
		r.DecisionCount, r.StateTransitions)
	fmt.Fprintf(&b, "from decision log alone: stalled lowest during stall: %v; stalled grows most during recovery: %v\n",
		r.StalledIsMinDuringStall, r.StalledGrowsMostInRecovery)
	fmt.Fprintf(&b, "online detection: onset latency=%v; span=[%.3fs–%.3fs]; queue peak=%.0f\n",
		r.OnsetLatency, r.DetectedStart.Seconds(), r.DetectedEnd.Seconds(), r.QueuePeak)
	return b.String()
}

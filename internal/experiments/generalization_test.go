package experiments

import (
	"strings"
	"testing"
)

func TestGeneralizationRemediesHelpEveryCause(t *testing.T) {
	if testing.Short() {
		t.Skip("eight paper-scale runs")
	}
	res := RunGeneralization(testOpt)
	if len(res.Causes) != 4 {
		t.Fatalf("causes = %d", len(res.Causes))
	}
	for _, c := range res.Causes {
		if c.OriginalVLRTPct == 0 && c.OriginalDrops == 0 {
			t.Fatalf("%s: original run shows no disturbance at all", c.Cause)
		}
		if c.RemedyMeanMs >= c.OriginalMeanMs {
			t.Fatalf("%s: remedy mean %.2fms not below original %.2fms",
				c.Cause, c.RemedyMeanMs, c.OriginalMeanMs)
		}
		if c.RemedyVLRTPct > c.OriginalVLRTPct {
			t.Fatalf("%s: remedy VLRT %.2f%% above original %.2f%%",
				c.Cause, c.RemedyVLRTPct, c.OriginalVLRTPct)
		}
	}
	// The injected causes actually injected something.
	for _, name := range []string{"gc_pause", "vm_colocation"} {
		if c := res.Cause(name); c.InjectedStallCnt == 0 {
			t.Fatalf("%s: no stalls injected", name)
		}
	}
	if res.Cause("nonexistent") != nil {
		t.Fatal("unknown cause resolved")
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestReportMarkdown(t *testing.T) {
	// Assemble a report from zero-valued results: Markdown must render
	// every section without running anything.
	var r Report
	md := r.Markdown()
	for _, want := range []string{
		"# Evaluation report", "## Table I", "## Figure 4", "## Figure 8",
		"## Figures 10/11", "## Generalization",
	} {
		if !containsStr(md, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

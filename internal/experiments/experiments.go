// Package experiments contains one named, reproducible experiment for
// every table and figure in the paper's evaluation. Each Run* function
// assembles the right cluster configuration, executes it, and returns a
// typed result carrying both the raw series (for CSV export via
// cmd/figures) and the derived findings the paper's narrative rests on
// (for assertions in tests and for EXPERIMENTS.md). The benchmark
// harness in the repository root drives the same functions.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/parallel"
	"millibalance/internal/stats"
)

// Options tunes experiment scale without touching fidelity-critical
// parameters: the topology and per-server sizing always stay at paper
// scale; only the measured duration shrinks.
type Options struct {
	// DurationScale multiplies the paper's 180 s run length. The
	// default 1/6 (30 s) keeps every phenomenon (flushes recur every
	// 5 s) while making a full table reproduction take seconds of wall
	// time per row. Use 1.0 to match the paper's duration.
	DurationScale float64
	// Seed overrides the default seed when non-zero.
	Seed uint64
	// Parallel bounds how many independent cluster runs an experiment
	// may execute concurrently: 0 (or negative) means GOMAXPROCS, 1
	// forces the sequential path. Each run owns its engine and shares
	// nothing, and results are collected by configuration index, so the
	// output is byte-identical at every setting.
	Parallel int
}

// workers resolves the Parallel knob for the fan-out harness.
func (o Options) workers() int { return parallel.Workers(o.Parallel) }

func (o Options) apply(cfg cluster.Config) cluster.Config {
	scale := o.DurationScale
	if scale <= 0 {
		scale = 1.0 / 6
	}
	cfg = cfg.Scale(1, scale)
	if o.Seed != 0 {
		cfg.Seed1 = o.Seed
	}
	return cfg
}

// SeriesDump is one named windowed series prepared for rendering.
type SeriesDump struct {
	Name   string
	Window time.Duration
	// Values are per-window aggregates (means for gauges, counts for
	// events) from time zero.
	Values []float64
}

// dumpMeans extracts per-window means.
func dumpMeans(name string, s *stats.Series) SeriesDump {
	return SeriesDump{Name: name, Window: s.Width(), Values: s.Means()}
}

// dumpCounts extracts per-window event counts.
func dumpCounts(name string, s *stats.Series) SeriesDump {
	counts := s.Counts()
	vals := make([]float64, len(counts))
	for i, c := range counts {
		vals[i] = float64(c)
	}
	return SeriesDump{Name: name, Window: s.Width(), Values: vals}
}

// dumpMaxes extracts per-window maxima (queue-length plots use the
// peak within each window, as the paper's fine-grained monitor does).
func dumpMaxes(name string, s *stats.Series) SeriesDump {
	return SeriesDump{Name: name, Window: s.Width(), Values: s.Maxes()}
}

// RenderTSV renders the series column-wise as tab-separated text with a
// leading time column in seconds, over the common prefix length.
func RenderTSV(series ...SeriesDump) string {
	if len(series) == 0 {
		return ""
	}
	n := 0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	var b strings.Builder
	b.WriteString("t_sec")
	for _, s := range series {
		b.WriteByte('\t')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%.3f", float64(i)*series[0].Window.Seconds())
		for _, s := range series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			fmt.Fprintf(&b, "\t%.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// window bounds a zoomed interval, in absolute run time.
type window struct {
	from, to time.Duration
}

func (w window) String() string {
	return fmt.Sprintf("[%.2fs–%.2fs]", w.from.Seconds(), w.to.Seconds())
}

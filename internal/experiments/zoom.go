package experiments

import (
	"fmt"
	"strings"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/mbneck"
	"millibalance/internal/stats"
)

// The zoom experiments reproduce the paper's controlled close-ups of one
// millibottleneck (Fig. 6, 7, 9, 10, 11, 13): the run disables the
// background writeback noise and injects a single scripted stall on
// tomcat1 at a known instant, so the four phases of the instability are
// exactly measurable.
const (
	zoomDuration = 12 * time.Second
	zoomStallAt  = 5300 * time.Millisecond
	zoomStallDur = 250 * time.Millisecond
)

// zoomPhases are the analysis windows around the stall, mirroring the
// paper's phase decomposition of Fig. 6c:
//
//	phase 1 — before the millibottleneck (even distribution)
//	phase 2 — early in the stall, once the stalled candidate's frozen
//	          lb_value captures every routing decision (under the
//	          original policies all choices land on it; shortly after,
//	          every web worker is stuck inside get_endpoint and routing
//	          decisions cease entirely until the timeout)
//	phase 3 — the recovering period right after the stall (originals
//	          compensate away from the stalled candidate)
//	phase 4 — back to normal
func zoomPhases() [4]window {
	return [4]window{
		{from: zoomStallAt - 500*time.Millisecond, to: zoomStallAt},
		{from: zoomStallAt + 50*time.Millisecond, to: zoomStallAt + 100*time.Millisecond},
		{from: zoomStallAt + zoomStallDur + 50*time.Millisecond, to: zoomStallAt + zoomStallDur + 150*time.Millisecond},
		{from: zoomStallAt + 2*time.Second, to: zoomStallAt + 4*time.Second},
	}
}

// runStallZoom executes the controlled scenario.
func runStallZoom(opt Options, policy, mechanism string) *cluster.Results {
	cfg := cluster.BaselineConfig() // writeback disabled everywhere
	cfg.Policy = policy
	cfg.Mechanism = mechanism
	cfg.Duration = zoomDuration
	if opt.Seed != 0 {
		cfg.Seed1 = opt.Seed
	}
	c := cluster.New(cfg)
	inj := mbneck.NewScriptedStalls(c.Eng, "zoom", c.Apps[0].CPU(), []mbneck.StallEvent{
		{At: zoomStallAt, Duration: zoomStallDur},
	})
	inj.Start()
	return c.Run()
}

// InstabilityResult is the Fig. 6/7 (and 9b/13b) close-up: VLRT windows,
// the stalled server's fine-grained CPU, and web server 1's
// routing-decision distribution with per-phase shares to the stalled
// candidate.
type InstabilityResult struct {
	Policy    string
	Mechanism string

	VLRTPerWindow SeriesDump   // (a)
	StalledAppCPU SeriesDump   // (b)
	Web1Assign    []SeriesDump // (c) per-candidate routing decisions

	Phases [4]window
	// StalledShare is web1's routing share to tomcat1 in each phase.
	StalledShare [4]float64
	// StalledQueuePeak and HealthyQueuePeak are the app-tier per-server
	// queue peaks during the stall window.
	StalledQueuePeak float64
	HealthyQueuePeak float64
	// VLRTTotal counts VLRT requests over the whole zoom run.
	VLRTTotal uint64
}

func runInstability(opt Options, policy, mechanism string) InstabilityResult {
	res := runStallZoom(opt, policy, mechanism)
	phases := zoomPhases()

	// Phase 2 is adaptive: the last 50 ms window inside the stall that
	// still contains routing decisions. total_traffic freezes the
	// stalled candidate at the minimum instantly, total_request after
	// one spreading round; shortly after either, every worker is stuck
	// inside get_endpoint and decisions cease, so the last active
	// window is the converged regime the paper's phase 2 shows.
	width := 50 * time.Millisecond
	for from := zoomStallAt + zoomStallDur - width; from >= zoomStallAt; from -= width {
		total := 0.0
		for _, name := range res.Assign[0].Keys() {
			s := res.Assign[0].Series(name)
			total += float64(s.At(int(from / s.Width())).Count)
		}
		if total > 0 {
			phases[1] = window{from: from, to: from + width}
			break
		}
	}

	var shares [4]float64
	for i, ph := range phases {
		shares[i] = res.Assign[0].Share("tomcat1", ph.from, ph.to)
	}
	var assigns []SeriesDump
	for _, name := range res.Assign[0].Keys() {
		assigns = append(assigns, dumpCounts("assign_"+name, res.Assign[0].Series(name)))
	}
	stallWin := window{from: zoomStallAt, to: zoomStallAt + zoomStallDur}
	peakIn := func(s *stats.Series) float64 {
		peak := 0.0
		lo, hi := int(stallWin.from/s.Width()), int(stallWin.to/s.Width())
		for i := lo; i < hi; i++ {
			if v := s.At(i).Max; v > peak {
				peak = v
			}
		}
		return peak
	}
	healthyPeak := 0.0
	for _, st := range res.Apps[1:] {
		if p := peakIn(st.Queue); p > healthyPeak {
			healthyPeak = p
		}
	}
	return InstabilityResult{
		Policy:           policy,
		Mechanism:        mechanism,
		VLRTPerWindow:    dumpCounts("vlrt_per_50ms", res.Responses.VLRTWindows()),
		StalledAppCPU:    dumpMeans("tomcat1_cpu_pct", res.Apps[0].CPU.Series()),
		Web1Assign:       assigns,
		Phases:           phases,
		StalledShare:     shares,
		StalledQueuePeak: peakIn(res.Apps[0].Queue),
		HealthyQueuePeak: healthyPeak,
		VLRTTotal:        res.Responses.VLRTCount(),
	}
}

// RunFigure6 is the total_request instability close-up.
func RunFigure6(opt Options) InstabilityResult {
	return runInstability(opt, "total_request", "original_get_endpoint")
}

// RunFigure7 is the total_traffic instability close-up.
func RunFigure7(opt Options) InstabilityResult {
	return runInstability(opt, "total_traffic", "original_get_endpoint")
}

// RunFigure9 is the modified-get_endpoint close-up: the stalled
// candidate is skipped as soon as its pool exhausts.
func RunFigure9(opt Options) InstabilityResult {
	return runInstability(opt, "total_request", "modified_get_endpoint")
}

// RunFigure13 is the current_load close-up: the stalled candidate is
// avoided by rank alone.
func RunFigure13(opt Options) InstabilityResult {
	return runInstability(opt, "current_load", "original_get_endpoint")
}

// Render summarizes the phase shares.
func (r InstabilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Zoom close-up — policy=%s mechanism=%s (stall on tomcat1 at %.2fs for %v)\n",
		r.Policy, r.Mechanism, zoomStallAt.Seconds(), zoomStallDur)
	names := [4]string{"phase1 pre", "phase2 stall", "phase3 recovery", "phase4 normal"}
	for i := range r.Phases {
		fmt.Fprintf(&b, "%-16s %v share-to-stalled=%.0f%%\n", names[i], r.Phases[i], r.StalledShare[i]*100)
	}
	fmt.Fprintf(&b, "queue peaks during stall: stalled=%.0f healthy(max)=%.0f; VLRT total=%d\n",
		r.StalledQueuePeak, r.HealthyQueuePeak, r.VLRTTotal)
	return b.String()
}

// LBValueResult is the Fig. 10/11 close-up: the per-candidate lb_value
// series of web server 1 around the stall, showing the stalled
// candidate's value frozen at the minimum during the stall and spiking
// to the maximum during recovery (for cumulative policies).
type LBValueResult struct {
	Policy string

	AppQueues []SeriesDump // (a) per-app queue series
	LBSeries  []SeriesDump // (b) per-candidate lb_value (web 1)

	// StalledIsMinDuringStall reports whether tomcat1 held the minimum
	// lb_value among candidates mid-stall (ties count: under
	// total_request the frozen values sit within one lb_mult — the
	// paper's "one lower" red line).
	StalledIsMinDuringStall bool
	// StalledIsMaxDuringRecovery reports whether, in some window within
	// a second of the stall ending, tomcat1's lb_value grows faster
	// than every other candidate's — the backlog and catch-up
	// dispatches draining into it (the paper's red peak in phase 3).
	StalledIsMaxDuringRecovery bool
}

func runLBValues(opt Options, policy string) LBValueResult {
	res := runStallZoom(opt, policy, "original_get_endpoint")
	perApp := res.LBValues[0]

	var queues, lbs []SeriesDump
	for _, st := range res.Apps {
		queues = append(queues, dumpMaxes("queue_"+st.Name, st.Queue))
	}
	appNames := make([]string, 0, len(res.Apps))
	for _, st := range res.Apps {
		appNames = append(appNames, st.Name)
		lbs = append(lbs, dumpMeans("lb_"+st.Name, perApp[st.Name]))
	}

	// Mid-stall comparison: the stalled candidate's lb_value must be the
	// minimum (ties included — under total_request the values freeze
	// within one lb_mult of each other, the paper's "one lower" line).
	midStall := int((zoomStallAt + 150*time.Millisecond) / perApp["tomcat1"].Width())
	isMin := true
	for _, name := range appNames[1:] {
		if perApp["tomcat1"].At(midStall).Mean() > perApp[name].At(midStall).Mean() {
			isMin = false
		}
	}
	// Recovery spike: somewhere within a second of the stall ending,
	// the stalled candidate's per-window lb_value growth is the
	// largest — the backlog draining into it (the paper's red peak).
	isMax := false
	w := perApp["tomcat1"].Width()
	lo := int((zoomStallAt + zoomStallDur) / w)
	hi := int((zoomStallAt + zoomStallDur + time.Second) / w)
	growthAt := func(s *stats.Series, i int) float64 {
		return s.At(i).Max - s.At(i-1).Max
	}
	for i := lo + 1; i <= hi; i++ {
		best := true
		for _, name := range appNames[1:] {
			if growthAt(perApp["tomcat1"], i) <= growthAt(perApp[name], i) {
				best = false
				break
			}
		}
		if best {
			isMax = true
			break
		}
	}
	return LBValueResult{
		Policy:                     policy,
		AppQueues:                  queues,
		LBSeries:                   lbs,
		StalledIsMinDuringStall:    isMin,
		StalledIsMaxDuringRecovery: isMax,
	}
}

// RunFigure10 is the total_request lb_value close-up.
func RunFigure10(opt Options) LBValueResult { return runLBValues(opt, "total_request") }

// RunFigure11 is the total_traffic lb_value close-up.
func RunFigure11(opt Options) LBValueResult { return runLBValues(opt, "total_traffic") }

// Render summarizes the lb_value findings.
func (r LBValueResult) Render() string {
	return fmt.Sprintf("lb_value close-up — policy=%s\nstalled lowest during stall: %v; stalled grows most during recovery: %v\n",
		r.Policy, r.StalledIsMinDuringStall, r.StalledIsMaxDuringRecovery)
}

package experiments

import (
	"fmt"
	"strings"

	"millibalance/internal/cluster"
	"millibalance/internal/parallel"
)

// QueueComparisonResult is the Fig. 8 / Fig. 12 reproduction: per-tier
// queue series under a remedy, compared against the original
// total_request run's queues. The paper reports the mechanism remedy
// cutting queued requests by ~75%.
type QueueComparisonResult struct {
	Policy    string
	Mechanism string

	WebTier SeriesDump
	AppTier SeriesDump
	DBTier  SeriesDump

	// Peaks of the remedy run.
	WebTierPeak float64
	AppTierPeak float64
	// OriginalWebTierPeak/OriginalAppTierPeak are the original
	// total_request run's peaks for comparison.
	OriginalWebTierPeak float64
	OriginalAppTierPeak float64
}

// runQueueComparison runs the remedy config and the original
// total_request config under natural (writeback-driven)
// millibottlenecks.
func runQueueComparison(opt Options, policy, mechanism string) QueueComparisonResult {
	var remedy, original *cluster.Results
	parallel.All(opt.workers(),
		func() { remedy = runPaperWith(opt, policy, mechanism) },
		func() { original = runPaperWith(opt, "total_request", "original_get_endpoint") },
	)

	_, webPeak := remedy.WebTierQueue.PeakWindow()
	_, appPeak := remedy.AppTierQueue.PeakWindow()
	_, origWebPeak := original.WebTierQueue.PeakWindow()
	_, origAppPeak := original.AppTierQueue.PeakWindow()
	return QueueComparisonResult{
		Policy:              policy,
		Mechanism:           mechanism,
		WebTier:             dumpMaxes("web_tier_queue", remedy.WebTierQueue),
		AppTier:             dumpMaxes("app_tier_queue", remedy.AppTierQueue),
		DBTier:              dumpMaxes("db_tier_queue", remedy.DBTierQueue),
		WebTierPeak:         webPeak,
		AppTierPeak:         appPeak,
		OriginalWebTierPeak: origWebPeak,
		OriginalAppTierPeak: origAppPeak,
	}
}

// RunFigure8 compares total_request with the modified get_endpoint
// against the original (the paper's "reduced the queued requests by
// 75%").
func RunFigure8(opt Options) QueueComparisonResult {
	return runQueueComparison(opt, "total_request", "modified_get_endpoint")
}

// RunFigure12 compares current_load against the original total_request:
// barely any huge spike remains in the app tier.
func RunFigure12(opt Options) QueueComparisonResult {
	return runQueueComparison(opt, "current_load", "original_get_endpoint")
}

// QueueReductionPct reports how much the remedy shrank the combined
// web+app tier queue peak, in percent.
func (r QueueComparisonResult) QueueReductionPct() float64 {
	orig := r.OriginalWebTierPeak + r.OriginalAppTierPeak
	remedy := r.WebTierPeak + r.AppTierPeak
	if orig == 0 {
		return 0
	}
	return 100 * (1 - remedy/orig)
}

// Render summarizes the queue comparison.
func (r QueueComparisonResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Queue comparison — policy=%s mechanism=%s\n", r.Policy, r.Mechanism)
	fmt.Fprintf(&b, "remedy peaks: web=%.0f app=%.0f; original peaks: web=%.0f app=%.0f; reduction=%.0f%%\n",
		r.WebTierPeak, r.AppTierPeak, r.OriginalWebTierPeak, r.OriginalAppTierPeak, r.QueueReductionPct())
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/mbneck"
)

// Figure1Result is the millibottleneck-free baseline of Section II-B:
// point-in-time response time under total_request with all writeback
// disabled.
type Figure1Result struct {
	// PointInTimeRT is the per-50 ms mean response time in ms.
	PointInTimeRT SeriesDump
	TotalRequests uint64
	AvgRTMillis   float64
	VLRTCount     uint64
	// MaxWindowRTMillis is the worst per-window mean — the plot's
	// visual "stability" claim.
	MaxWindowRTMillis float64
	// AppShareSpread is the relative spread of per-app served counts
	// (the even-distribution validation of Section II-B).
	AppShareSpread float64
}

// RunFigure1 executes the baseline experiment.
func RunFigure1(opt Options) Figure1Result {
	cfg := opt.apply(cluster.BaselineConfig())
	res := cluster.Run(cfg)
	r := res.Responses

	maxWin := 0.0
	pit := r.PointInTime()
	for i := 0; i < pit.Len(); i++ {
		if m := pit.At(i).Mean(); m > maxWin {
			maxWin = m
		}
	}
	var minServed, maxServed uint64
	for i, st := range res.Apps {
		if i == 0 || st.Served < minServed {
			minServed = st.Served
		}
		if st.Served > maxServed {
			maxServed = st.Served
		}
	}
	spread := 0.0
	if maxServed > 0 {
		spread = float64(maxServed-minServed) / float64(maxServed)
	}
	return Figure1Result{
		PointInTimeRT:     dumpMeans("rt_ms", pit),
		TotalRequests:     r.Total(),
		AvgRTMillis:       float64(r.Mean().Microseconds()) / 1000,
		VLRTCount:         r.VLRTCount(),
		MaxWindowRTMillis: maxWin,
		AppShareSpread:    spread,
	}
}

// Render summarizes the baseline findings.
func (f Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — baseline without millibottlenecks (total_request)\n")
	fmt.Fprintf(&b, "total=%d avgRT=%.2fms VLRT=%d maxWindowRT=%.2fms appSpread=%.1f%%\n",
		f.TotalRequests, f.AvgRTMillis, f.VLRTCount, f.MaxWindowRTMillis, f.AppShareSpread*100)
	return b.String()
}

// Figure2Result is the Section III-B causal chain on the single-chain
// topology (1 web / 1 app / 1 db) with millibottlenecks armed on both
// web and app servers: VLRT windows, per-tier queues, web CPU, iowait
// and dirty pages, plus the detector's attribution of VLRT windows to
// transient saturations.
type Figure2Result struct {
	VLRTPerWindow SeriesDump // (a)
	WebQueue      SeriesDump // (b)
	AppQueue      SeriesDump // (b)
	DBQueue       SeriesDump // (b)
	WebCPU        SeriesDump // (c)
	WebIOWait     SeriesDump // (d)
	WebDirty      SeriesDump // (e)
	AppCPU        SeriesDump
	AppIOWait     SeriesDump
	AppDirty      SeriesDump

	VLRTTotal uint64
	// Saturations are the detected millibottleneck spans (web + app).
	Saturations []mbneck.Span
	// Attribution is the fraction of VLRT windows explained by the
	// saturations (with retransmission-delay tolerance).
	Attribution float64
	// QueueCPUPearson correlates the web queue peaks with web CPU
	// saturation windows.
	QueueCPUPearson float64
	// PushBackObserved reports whether a web-tier queue peak coincides
	// with an app-tier queue peak — the paper's queue-amplification
	// ("push-back wave") signature in Fig. 2b.
	PushBackObserved bool
	// IODirtyDrops reports whether every iowait span coincides with a
	// dirty-page drop — the Fig. 2d/2e correlation.
	IODirtyDrops bool
}

// RunFigure2 executes the causal-chain experiment.
func RunFigure2(opt Options) Figure2Result {
	cfg := opt.apply(cluster.SingleChainConfig())
	res := cluster.Run(cfg)
	web, app := res.Webs[0], res.Apps[0]

	var spans []mbneck.Span
	for _, st := range []*cluster.ServerStats{web, app} {
		spans = append(spans, mbneck.FilterMillibottlenecks(
			mbneck.DetectSaturations(st.CPU.Series(), 95),
			50*time.Millisecond, 2*time.Second)...)
	}
	attr := mbneck.AttributeEvents(res.Responses.VLRTWindows(), spans, 2500*time.Millisecond)

	// Check each iowait span sees the dirty-page count decrease.
	ioDirty := true
	for _, st := range []*cluster.ServerStats{web, app} {
		for _, span := range mbneck.DetectSaturations(st.IOWait, 95) {
			lo := int(span.Start / st.DirtyBytes.Width())
			hi := int(span.End / st.DirtyBytes.Width())
			before := st.DirtyBytes.At(lo).Max
			after := st.DirtyBytes.At(hi).Min
			if hi > lo && after >= before {
				ioDirty = false
			}
		}
	}

	// Push-back wave: an app-queue peak whose window overlaps a
	// web-queue peak (within one retransmission-free drain, ±150 ms).
	pushBack := false
	webPeaks := mbneck.FindQueuePeaks(web.Queue, 3, 20)
	for _, ap := range mbneck.FindQueuePeaks(app.Queue, 3, 20) {
		for _, wp := range webPeaks {
			delta := ap.Start - wp.Start
			if delta < 0 {
				delta = -delta
			}
			if delta <= 150*time.Millisecond {
				pushBack = true
			}
		}
	}

	return Figure2Result{
		VLRTPerWindow:    dumpCounts("vlrt_per_50ms", res.Responses.VLRTWindows()),
		WebQueue:         dumpMaxes("web_queue", web.Queue),
		AppQueue:         dumpMaxes("app_queue", app.Queue),
		DBQueue:          dumpMaxes("db_queue", res.DB.Queue),
		WebCPU:           dumpMeans("web_cpu_pct", web.CPU.Series()),
		WebIOWait:        dumpMeans("web_iowait_pct", web.IOWait),
		WebDirty:         dumpMeans("web_dirty_bytes", web.DirtyBytes),
		AppCPU:           dumpMeans("app_cpu_pct", app.CPU.Series()),
		AppIOWait:        dumpMeans("app_iowait_pct", app.IOWait),
		AppDirty:         dumpMeans("app_dirty_bytes", app.DirtyBytes),
		VLRTTotal:        res.Responses.VLRTCount(),
		Saturations:      spans,
		Attribution:      attr,
		QueueCPUPearson:  mbneck.CorrelatePeaks(web.Queue, web.CPU.Series()),
		IODirtyDrops:     ioDirty,
		PushBackObserved: pushBack,
	}
}

// Render summarizes the causal-chain findings.
func (f Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — millibottleneck causal chain (1 web / 1 app / 1 db)\n")
	fmt.Fprintf(&b, "VLRT=%d saturations=%d attribution=%.0f%% queue~cpu r=%.2f dirty-drops-on-iowait=%v push-back-wave=%v\n",
		f.VLRTTotal, len(f.Saturations), f.Attribution*100, f.QueueCPUPearson, f.IODirtyDrops, f.PushBackObserved)
	return b.String()
}

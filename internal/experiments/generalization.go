package experiments

import (
	"fmt"
	"strings"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/mbneck"
	"millibalance/internal/parallel"
	"millibalance/internal/workload"
)

// The generalization experiment backs the paper's concluding claim:
// "Other load balancers in N-tier systems can take advantage of our
// remedies to shorten the latency tail caused by scheduling instability
// when facing millibottlenecks caused by other resource shortage."
// It exercises every millibottleneck cause the paper catalogs — dirty-
// page flushing, Java GC pauses, VM-colocation interference and bursty
// workloads — under the stock balancer and under the remedies.

// CauseResult compares original versus remedied balancing for one
// millibottleneck cause.
type CauseResult struct {
	Cause            string
	OriginalMeanMs   float64
	RemedyMeanMs     float64
	OriginalVLRTPct  float64
	RemedyVLRTPct    float64
	OriginalDrops    uint64
	RemedyDrops      uint64
	ImprovementX     float64
	InjectedStallCnt int
}

// GeneralizationResult aggregates all causes.
type GeneralizationResult struct {
	Causes []CauseResult
}

// injectorFor arms cause-specific millibottleneck sources on a built
// cluster and returns a stall counter.
func injectorFor(cause string, c *cluster.Cluster) func() int {
	switch cause {
	case "gc_pause":
		// Full-GC-like pauses: clocked per server, slightly jittered.
		var injs []*mbneck.PeriodicStalls
		for i, app := range c.Apps {
			inj := mbneck.NewPeriodicStalls(c.Eng, fmt.Sprintf("gc-%d", i), app.CPU(),
				4*time.Second, 180*time.Millisecond, 0.3)
			inj.Start()
			injs = append(injs, inj)
		}
		return func() int {
			total := 0
			for _, inj := range injs {
				total += inj.Stalls()
			}
			return total
		}
	case "vm_colocation":
		// Noisy-neighbour interference: random stalls.
		var injs []*mbneck.RandomStalls
		for i, app := range c.Apps {
			inj := mbneck.NewRandomStalls(c.Eng, fmt.Sprintf("vm-%d", i), app.CPU(),
				5*time.Second, 150*time.Millisecond)
			inj.Start()
			injs = append(injs, inj)
		}
		return func() int {
			total := 0
			for _, inj := range injs {
				total += inj.Stalls()
			}
			return total
		}
	default:
		return func() int { return 0 }
	}
}

// causeConfig returns the base config for a cause (before policy and
// mechanism are chosen).
func causeConfig(opt Options, cause string) cluster.Config {
	switch cause {
	case "dirty_page_flush":
		return opt.apply(cluster.PaperConfig())
	case "bursty_workload":
		cfg := opt.apply(cluster.BaselineConfig())
		cfg.Burst = &workload.BurstConfig{
			Period:    3 * time.Second,
			DutyCycle: 0.1,
			Factor:    7,
		}
		return cfg
	default: // gc_pause, vm_colocation: quiet writeback, injected stalls
		return opt.apply(cluster.BaselineConfig())
	}
}

// GeneralizationCauses lists the exercised causes.
func GeneralizationCauses() []string {
	return []string{"dirty_page_flush", "gc_pause", "vm_colocation", "bursty_workload"}
}

// RunGeneralization runs every cause under the stock configuration
// (total_request + original get_endpoint) and the full remedy
// (current_load + modified get_endpoint). The 4 causes × 2 variants
// flatten into 8 independent runs for the parallel harness; even index
// = original, odd = remedy of cause i/2.
func RunGeneralization(opt Options) GeneralizationResult {
	causes := GeneralizationCauses()
	type runOut struct {
		res    *cluster.Results
		stalls int
	}
	runs := parallel.Map(opt.workers(), 2*len(causes), func(i int) runOut {
		cfg := causeConfig(opt, causes[i/2])
		if i%2 == 0 {
			cfg.Policy, cfg.Mechanism = "total_request", "original_get_endpoint"
		} else {
			cfg.Policy, cfg.Mechanism = "current_load", "modified_get_endpoint"
		}
		c := cluster.New(cfg)
		stalls := injectorFor(causes[i/2], c)
		res := c.Run()
		return runOut{res, stalls()}
	})

	var out GeneralizationResult
	for i, cause := range causes {
		orig, remedy := runs[2*i], runs[2*i+1]
		cr := CauseResult{
			Cause:            cause,
			OriginalMeanMs:   float64(orig.res.Responses.Mean().Microseconds()) / 1000,
			RemedyMeanMs:     float64(remedy.res.Responses.Mean().Microseconds()) / 1000,
			OriginalVLRTPct:  orig.res.Responses.VLRTPercent(),
			RemedyVLRTPct:    remedy.res.Responses.VLRTPercent(),
			OriginalDrops:    orig.res.Drops,
			RemedyDrops:      remedy.res.Drops,
			InjectedStallCnt: orig.stalls,
		}
		if cr.RemedyMeanMs > 0 {
			cr.ImprovementX = cr.OriginalMeanMs / cr.RemedyMeanMs
		}
		out.Causes = append(out.Causes, cr)
	}
	return out
}

// Cause returns the result for a cause name, or nil.
func (g GeneralizationResult) Cause(name string) *CauseResult {
	for i := range g.Causes {
		if g.Causes[i].Cause == name {
			return &g.Causes[i]
		}
	}
	return nil
}

// Render prints the comparison table.
func (g GeneralizationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Generalization — remedies vs. millibottleneck causes\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %10s %10s %8s\n",
		"cause", "orig mean", "remedy mean", "orig VLRT", "rem VLRT", "improve")
	for _, c := range g.Causes {
		fmt.Fprintf(&b, "%-18s %10.2fms %10.2fms %9.2f%% %9.2f%% %7.1fx\n",
			c.Cause, c.OriginalMeanMs, c.RemedyMeanMs,
			c.OriginalVLRTPct, c.RemedyVLRTPct, c.ImprovementX)
	}
	return b.String()
}

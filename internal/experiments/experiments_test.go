package experiments

import (
	"strings"
	"testing"
	"time"

	"millibalance/internal/metrics"
)

// testOpt keeps experiment tests fast: 15 s virtual runs still contain
// three flush cycles per application server.
var testOpt = Options{DurationScale: 1.0 / 12}

func TestRenderTSV(t *testing.T) {
	a := SeriesDump{Name: "a", Window: 50 * time.Millisecond, Values: []float64{1, 2}}
	b := SeriesDump{Name: "b", Window: 50 * time.Millisecond, Values: []float64{3}}
	got := RenderTSV(a, b)
	want := "t_sec\ta\tb\n0.000\t1.000\t3.000\n0.050\t2.000\t0.000\n"
	if got != want {
		t.Fatalf("RenderTSV:\n%q\nwant\n%q", got, want)
	}
	if RenderTSV() != "" {
		t.Fatal("empty RenderTSV not empty")
	}
}

func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("six paper-scale runs")
	}
	res := RunTableI(testOpt)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	origTR := res.Row("total_request", "original_get_endpoint")
	origTT := res.Row("total_traffic", "original_get_endpoint")
	cur := res.Row("current_load", "original_get_endpoint")
	modTR := res.Row("total_request", "modified_get_endpoint")
	modTT := res.Row("total_traffic", "modified_get_endpoint")
	curMod := res.Row("current_load", "modified_get_endpoint")
	for name, row := range map[string]*TableIRow{
		"origTR": origTR, "origTT": origTT, "cur": cur,
		"modTR": modTR, "modTT": modTT, "curMod": curMod,
	} {
		if row == nil {
			t.Fatalf("missing row %s", name)
		}
		if row.TotalRequests < 100000 {
			t.Fatalf("%s: only %d requests", name, row.TotalRequests)
		}
	}

	// The paper's ordering: original policies suffer heavy VLRT shares
	// and inflated means; every remedy collapses both.
	for _, orig := range []*TableIRow{origTR, origTT} {
		if orig.VLRTPct < 2 {
			t.Fatalf("original %s VLRT %.2f%% — instability did not reproduce", orig.Policy, orig.VLRTPct)
		}
		for _, remedy := range []*TableIRow{cur, modTR, modTT, curMod} {
			if remedy.AvgRTMillis*3 > orig.AvgRTMillis {
				t.Fatalf("remedy %s/%s mean %.2fms not well below original %s %.2fms",
					remedy.Policy, remedy.Mechanism, remedy.AvgRTMillis, orig.Policy, orig.AvgRTMillis)
			}
			if remedy.VLRTPct > orig.VLRTPct/4 {
				t.Fatalf("remedy %s/%s VLRT %.2f%% vs original %.2f%%",
					remedy.Policy, remedy.Mechanism, remedy.VLRTPct, orig.VLRTPct)
			}
		}
	}
	// Headline factor: paper reports 12x; require at least 5x and allow
	// the simulator to exceed it.
	if f := res.ImprovementFactor(); f < 5 {
		t.Fatalf("improvement factor %.1fx, want ≥5x", f)
	}
	// current_load with the modified mechanism gains nothing further
	// over plain current_load (both remedies achieve the same goal).
	if curMod.AvgRTMillis > 2*cur.AvgRTMillis {
		t.Fatalf("current_load+modified %.2fms much worse than current_load %.2fms",
			curMod.AvgRTMillis, cur.AvgRTMillis)
	}
	if !strings.Contains(res.Render(), "improvement factor") {
		t.Fatal("Render missing summary")
	}
}

func TestFigure1Baseline(t *testing.T) {
	res := RunFigure1(testOpt)
	if res.VLRTCount > res.TotalRequests/100000+2 {
		t.Fatalf("baseline VLRT = %d of %d", res.VLRTCount, res.TotalRequests)
	}
	if res.AvgRTMillis > 10 {
		t.Fatalf("baseline avg RT %.2fms", res.AvgRTMillis)
	}
	if res.MaxWindowRTMillis > 50 {
		t.Fatalf("baseline worst window %.2fms — not the paper's flat line", res.MaxWindowRTMillis)
	}
	if res.AppShareSpread > 0.05 {
		t.Fatalf("app share spread %.1f%% — distribution not even", res.AppShareSpread*100)
	}
	if len(res.PointInTimeRT.Values) == 0 {
		t.Fatal("empty point-in-time series")
	}
}

func TestFigure2CausalChain(t *testing.T) {
	res := RunFigure2(testOpt)
	if res.VLRTTotal == 0 {
		t.Fatal("single-chain run produced no VLRT requests")
	}
	if len(res.Saturations) == 0 {
		t.Fatal("no millibottleneck saturations detected")
	}
	if res.Attribution < 0.9 {
		t.Fatalf("VLRT attribution %.0f%%", res.Attribution*100)
	}
	if !res.IODirtyDrops {
		t.Fatal("iowait spans without dirty-page drops")
	}
	if !res.PushBackObserved {
		t.Fatal("no push-back wave: app-tier queue peaks never coincide with web-tier peaks")
	}
	for _, d := range []SeriesDump{res.VLRTPerWindow, res.WebQueue, res.AppQueue, res.AppCPU, res.AppDirty} {
		if len(d.Values) == 0 {
			t.Fatalf("series %s empty", d.Name)
		}
	}
}

func TestFigure3Fluctuations(t *testing.T) {
	if testing.Short() {
		t.Skip("two paper-scale runs")
	}
	res := RunFigure3(testOpt)
	if res.PeakWindowRTMillis < 200 {
		t.Fatalf("peak windowed RT %.0fms — no fluctuations", res.PeakWindowRTMillis)
	}
	if res.FluctuationRatio < 20 {
		t.Fatalf("peak/median ratio %.0fx — fluctuations too mild", res.FluctuationRatio)
	}
	wantLen := int(10 * time.Second / (50 * time.Millisecond))
	if len(res.TotalRequestRT.Values) != wantLen {
		t.Fatalf("series not cut to 10s: %d windows", len(res.TotalRequestRT.Values))
	}
}

func TestFigure4Clusters(t *testing.T) {
	if testing.Short() {
		t.Skip("two paper-scale runs")
	}
	res := RunFigure4(testOpt)
	if res.ClusterCounts[0] == 0 {
		t.Fatal("no VLRT cluster at ~1s")
	}
	if res.ClusterCounts[2] > res.ClusterCounts[0] {
		t.Fatalf("3s cluster (%d) larger than 1s cluster (%d)", res.ClusterCounts[2], res.ClusterCounts[0])
	}
	if len(res.TotalRequestHist) == 0 || len(res.TotalTrafficHist) == 0 {
		t.Fatal("missing histograms")
	}
	if !strings.Contains(RenderHist(res.TotalRequestHist), "lower_ms") {
		t.Fatal("RenderHist missing header")
	}
}

func TestFigure5ModerateUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("two paper-scale runs")
	}
	res := RunFigure5(testOpt)
	if res.MaxAverage >= 60 {
		t.Fatalf("busiest server averages %.1f%% — paper's point is <50%%", res.MaxAverage)
	}
	if res.MaxAverage < 10 {
		t.Fatalf("busiest server averages %.1f%% — system nearly idle", res.MaxAverage)
	}
	if len(res.TotalRequest) != 9 { // 4 web + 4 app + 1 db
		t.Fatalf("per-server map has %d entries", len(res.TotalRequest))
	}
}

func TestFigure6TotalRequestInstability(t *testing.T) {
	res := RunFigure6(testOpt)
	assertPhases(t, res, true)
}

func TestFigure7TotalTrafficInstability(t *testing.T) {
	res := RunFigure7(testOpt)
	assertPhases(t, res, true)
}

// assertPhases checks the four-phase pattern; pileUp selects the
// original-behaviour expectations versus the remedy expectations.
func assertPhases(t *testing.T, res InstabilityResult, pileUp bool) {
	t.Helper()
	if res.StalledShare[0] < 0.15 || res.StalledShare[0] > 0.35 {
		t.Fatalf("phase 1 share %.2f, want ≈0.25 (even)", res.StalledShare[0])
	}
	if pileUp {
		if res.StalledShare[1] < 0.9 {
			t.Fatalf("phase 2 share %.2f — instability did not route everything to the stalled server", res.StalledShare[1])
		}
		if res.StalledQueuePeak < 2*res.HealthyQueuePeak {
			t.Fatalf("stalled queue peak %.0f not dominating healthy %.0f", res.StalledQueuePeak, res.HealthyQueuePeak)
		}
		// Phase 3: the funneling ends right after the stall — the share
		// to the recovered candidate drops from ~100% back toward (or
		// below) its fair share while the backlog drains.
		if res.StalledShare[2] > 0.6 {
			t.Fatalf("phase 3 (recovery) share %.2f — funneling did not end", res.StalledShare[2])
		}
	} else {
		if res.StalledShare[1] > 0.2 {
			t.Fatalf("phase 2 share %.2f — remedy still routed to the stalled server", res.StalledShare[1])
		}
		// Remedies legitimately catch up into the recovered candidate
		// in phase 3 (its cumulative lb_value lags), so no phase-3
		// bound applies.
	}
	if res.StalledShare[3] < 0.15 || res.StalledShare[3] > 0.35 {
		t.Fatalf("phase 4 share %.2f, want back to ≈0.25", res.StalledShare[3])
	}
	if res.Render() == "" {
		t.Fatal("empty Render")
	}
}

func TestFigure9ModifiedMechanismAvoidsStalled(t *testing.T) {
	res := RunFigure9(testOpt)
	assertPhases(t, res, false)
	if res.VLRTTotal > 50 {
		t.Fatalf("modified mechanism still produced %d VLRT requests", res.VLRTTotal)
	}
}

func TestFigure13CurrentLoadAvoidsStalled(t *testing.T) {
	res := RunFigure13(testOpt)
	assertPhases(t, res, false)
	// Fig. 13a: the stalled server's queue spike stays small (<40 in
	// the paper); ours is bounded by the in-flight at stall onset.
	if res.StalledQueuePeak > 60 {
		t.Fatalf("current_load stalled queue peak %.0f — should stay small", res.StalledQueuePeak)
	}
}

func TestFigure10TotalRequestLBValues(t *testing.T) {
	res := RunFigure10(testOpt)
	if !res.StalledIsMinDuringStall {
		t.Fatal("stalled candidate's lb_value not the minimum during the stall")
	}
	if !res.StalledIsMaxDuringRecovery {
		t.Fatal("stalled candidate's lb_value not growing fastest during recovery")
	}
	if len(res.LBSeries) != 4 || len(res.AppQueues) != 4 {
		t.Fatalf("series counts %d/%d", len(res.LBSeries), len(res.AppQueues))
	}
}

func TestFigure11TotalTrafficLBValues(t *testing.T) {
	res := RunFigure11(testOpt)
	if !res.StalledIsMinDuringStall {
		t.Fatal("stalled candidate's lb_value not the minimum during the stall")
	}
}

func TestFigure8QueueReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("two paper-scale runs")
	}
	res := RunFigure8(testOpt)
	if res.QueueReductionPct() < 50 {
		t.Fatalf("modified get_endpoint reduced queues by only %.0f%% (paper: 75%%)", res.QueueReductionPct())
	}
}

func TestFigure12CurrentLoadQueues(t *testing.T) {
	if testing.Short() {
		t.Skip("two paper-scale runs")
	}
	res := RunFigure12(testOpt)
	if res.AppTierPeak > res.OriginalAppTierPeak/2 {
		t.Fatalf("current_load app-tier queue peak %.0f vs original %.0f — spikes should disappear",
			res.AppTierPeak, res.OriginalAppTierPeak)
	}
}

// TestObservabilityZoom checks the observability layer's acceptance
// criteria on the zoom scenario: the span decomposition accounts for
// (essentially all of) every VLRT request with the retransmit wait
// dominant, the Figs. 10–11 lb_value signature is recovered from the
// decision log alone, and the online detector flags the scripted 250 ms
// stall within one window plus one sampling interval.
func TestObservabilityZoom(t *testing.T) {
	res := RunObservability(testOpt)
	if res.VLRTCount == 0 {
		t.Fatal("zoom run produced no VLRT requests")
	}
	if res.Decomposition.Count != res.VLRTCount {
		t.Fatalf("only %d/%d VLRT entries carried a breakdown", res.Decomposition.Count, res.VLRTCount)
	}
	if res.Decomposition.MinCoverage < 0.9 {
		t.Fatalf("VLRT decomposition min coverage %.3f, want ≥0.9", res.Decomposition.MinCoverage)
	}
	if res.RetransmitDominantShare < 0.9 {
		t.Fatalf("retransmit wait dominates only %.0f%% of VLRT requests", res.RetransmitDominantShare*100)
	}
	if res.DecisionCount == 0 || len(res.LBSeries) != 4 {
		t.Fatalf("decision log incomplete: %d decisions, %d lb series", res.DecisionCount, len(res.LBSeries))
	}
	if !res.StalledIsMinDuringStall {
		t.Fatal("decision log: stalled candidate's lb_value not the minimum during the stall")
	}
	if !res.StalledGrowsMostInRecovery {
		t.Fatal("decision log: stalled candidate's lb_value not growing fastest during recovery")
	}
	maxLatency := metrics.Window + 10*time.Millisecond // one window + one sampling interval
	if res.OnsetLatency < 0 || res.OnsetLatency > maxLatency {
		t.Fatalf("online onset latency %v, want within (0, %v]", res.OnsetLatency, maxLatency)
	}
	if res.DetectedEnd <= res.DetectedStart {
		t.Fatalf("no millibottleneck event overlapping the stall (span [%v, %v])", res.DetectedStart, res.DetectedEnd)
	}
	if res.Render() == "" {
		t.Fatal("empty Render")
	}
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/parallel"
	"millibalance/internal/stats"
)

// runPaperWith runs the paper topology with the given policy/mechanism.
func runPaperWith(opt Options, policy, mechanism string) *cluster.Results {
	cfg := opt.apply(cluster.PaperConfig())
	cfg.Policy = policy
	cfg.Mechanism = mechanism
	return cluster.Run(cfg)
}

// Figure3Result is the point-in-time response time of the first ten
// seconds under total_request and total_traffic with millibottlenecks
// present: large fluctuations instead of the baseline's flat line.
type Figure3Result struct {
	TotalRequestRT SeriesDump
	TotalTrafficRT SeriesDump
	// PeakWindowRTMillis is the worst windowed mean across both runs.
	PeakWindowRTMillis float64
	// BaselinePeakMillis is Figure 1's equivalent for contrast.
	FluctuationRatio float64
}

// runPaperPair runs both original policies side by side on the harness.
func runPaperPair(opt Options) (tr, tt *cluster.Results) {
	parallel.All(opt.workers(),
		func() { tr = runPaperWith(opt, "total_request", "original_get_endpoint") },
		func() { tt = runPaperWith(opt, "total_traffic", "original_get_endpoint") },
	)
	return tr, tt
}

// RunFigure3 executes both policy runs and extracts the first 10 s.
func RunFigure3(opt Options) Figure3Result {
	tr, tt := runPaperPair(opt)

	cut := func(s *stats.Series) SeriesDump {
		d := dumpMeans("rt_ms", s)
		maxWin := int(10 * time.Second / s.Width())
		if len(d.Values) > maxWin {
			d.Values = d.Values[:maxWin]
		}
		return d
	}
	a := cut(tr.Responses.PointInTime())
	a.Name = "total_request_rt_ms"
	b := cut(tt.Responses.PointInTime())
	b.Name = "total_traffic_rt_ms"

	peak, median := 0.0, []float64{}
	for _, d := range []SeriesDump{a, b} {
		for _, v := range d.Values {
			if v > peak {
				peak = v
			}
			if v > 0 {
				median = append(median, v)
			}
		}
	}
	ratio := 0.0
	if m := stats.ExactQuantile(median, 0.5); m > 0 {
		ratio = peak / m
	}
	return Figure3Result{
		TotalRequestRT:     a,
		TotalTrafficRT:     b,
		PeakWindowRTMillis: peak,
		FluctuationRatio:   ratio,
	}
}

// Render summarizes the fluctuation findings.
func (f Figure3Result) Render() string {
	return fmt.Sprintf("Figure 3 — point-in-time RT, first 10s\npeakWindowRT=%.0fms peak/median=%.0fx\n",
		f.PeakWindowRTMillis, f.FluctuationRatio)
}

// Figure4Result is the response-time frequency distribution under both
// original policies, exhibiting VLRT clusters near 1 s, 2 s and 3 s.
type Figure4Result struct {
	// Buckets maps policy name to (lower-bound-ms, count) pairs.
	TotalRequestHist []HistBucket
	TotalTrafficHist []HistBucket
	// ClusterCounts counts requests within ±200 ms of 1 s, 2 s, 3 s for
	// the total_request run.
	ClusterCounts [3]uint64
}

// HistBucket is one response-time histogram bucket.
type HistBucket struct {
	LowerMillis float64
	UpperMillis float64
	Count       uint64
}

// RunFigure4 executes both policy runs and extracts the distributions.
func RunFigure4(opt Options) Figure4Result {
	tr, tt := runPaperPair(opt)

	collect := func(res *cluster.Results) []HistBucket {
		var out []HistBucket
		for _, b := range res.Responses.Histogram().Buckets() {
			out = append(out, HistBucket{
				LowerMillis: float64(b.Lower.Microseconds()) / 1000,
				UpperMillis: float64(b.Upper.Microseconds()) / 1000,
				Count:       b.Count,
			})
		}
		return out
	}
	var clusters [3]uint64
	hist := tr.Responses.Histogram()
	for i, center := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		clusters[i] = hist.CountAtOrAbove(center-200*time.Millisecond) -
			hist.CountAtOrAbove(center+200*time.Millisecond)
	}
	return Figure4Result{
		TotalRequestHist: collect(tr),
		TotalTrafficHist: collect(tt),
		ClusterCounts:    clusters,
	}
}

// Render summarizes the cluster findings.
func (f Figure4Result) Render() string {
	return fmt.Sprintf("Figure 4 — RT distribution\nVLRT clusters: ~1s:%d ~2s:%d ~3s:%d\n",
		f.ClusterCounts[0], f.ClusterCounts[1], f.ClusterCounts[2])
}

// RenderHist renders a histogram as TSV.
func RenderHist(buckets []HistBucket) string {
	var b strings.Builder
	b.WriteString("lower_ms\tupper_ms\tcount\n")
	for _, h := range buckets {
		fmt.Fprintf(&b, "%.3f\t%.3f\t%d\n", h.LowerMillis, h.UpperMillis, h.Count)
	}
	return b.String()
}

// Figure5Result is the average CPU utilization per component server
// under both original policies: every server stays at moderate (<50%)
// utilization even though VLRT requests abound.
type Figure5Result struct {
	// PerServer maps server name to average CPU percent, per policy.
	TotalRequest map[string]float64
	TotalTraffic map[string]float64
	// MaxAverage is the busiest server's average across both policies.
	MaxAverage float64
}

// RunFigure5 executes both policy runs and collects per-server averages.
func RunFigure5(opt Options) Figure5Result {
	collect := func(res *cluster.Results) map[string]float64 {
		out := map[string]float64{}
		for _, st := range res.Webs {
			out[st.Name] = st.CPU.Average()
		}
		for _, st := range res.Apps {
			out[st.Name] = st.CPU.Average()
		}
		out[res.DB.Name] = res.DB.CPU.Average()
		return out
	}
	trRes, ttRes := runPaperPair(opt)
	tr, tt := collect(trRes), collect(ttRes)
	maxAvg := 0.0
	for _, m := range []map[string]float64{tr, tt} {
		for _, v := range m {
			if v > maxAvg {
				maxAvg = v
			}
		}
	}
	return Figure5Result{TotalRequest: tr, TotalTraffic: tt, MaxAverage: maxAvg}
}

// Render prints the per-server averages.
func (f Figure5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — average CPU per server (max %.1f%%)\n", f.MaxAverage)
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "server", "total_request", "total_traffic")
	for name, v := range f.TotalRequest {
		fmt.Fprintf(&b, "%-10s %13.1f%% %13.1f%%\n", name, v, f.TotalTraffic[name])
	}
	return b.String()
}

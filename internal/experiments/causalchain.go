package experiments

import (
	"fmt"
	"strings"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/mbneck"
	"millibalance/internal/telemetry"
)

// The causal-chain experiment ("Figure 16") exercises the telemetry
// layer end to end: the writeback-freeze scenario — recurring scripted
// CPU stalls on tomcat1, the simulator's equivalent of the PR 4 freeze
// fault shape — runs with the 50 ms timeline sampler and the event log
// armed, then the correlation engine explains every VLRT cluster the
// run produced. The paper does this by eyeballing Figs. 6–7; here it is
// a ranked table, and the acceptance bar is that the injected tier is
// the #1 causal chain for at least 90 % of clusters.
const (
	chainStallFirst    = 4 * time.Second
	chainStallEvery    = 3 * time.Second
	chainStallCount    = 8
	chainStallDuration = 250 * time.Millisecond
	// chainClusterGap joins VLRT windows into clusters; one retransmit
	// schedule step apart still counts as the same incident.
	chainClusterGap = 500 * time.Millisecond
)

// chainDuration covers every stall plus drain time.
const chainDuration = chainStallFirst + time.Duration(chainStallCount)*chainStallEvery

// ChainReport is one cluster's verdict in exportable form.
type ChainReport struct {
	Cluster telemetry.VLRTCluster `json:"cluster"`
	Root    telemetry.Link        `json:"root"`
	// Hit reports whether the top-ranked link names the injected tier.
	Hit bool `json:"hit"`
}

// CausalChainResult is the Figure 16 output.
type CausalChainResult struct {
	Policy    string
	Mechanism string
	// Injected names the server the stalls were scripted on.
	Injected string
	// Clusters is how many VLRT clusters the run produced.
	Clusters int
	// Reports holds one ranked verdict per cluster.
	Reports []ChainReport
	// TopShare is the fraction of clusters whose #1 causal chain names
	// the injected tier — the acceptance metric (≥ 0.9).
	TopShare float64
	// OnlineChains is how many causal chains the online correlator
	// emitted during the run (one per detector confirmation).
	OnlineChains int
	// OnlineTopShare is TopShare for the online chains.
	OnlineTopShare float64
	// VLRTTotal counts VLRT requests over the run.
	VLRTTotal uint64
}

// RunFigure16 executes the causal-chain experiment.
func RunFigure16(opt Options) CausalChainResult {
	cfg := cluster.BaselineConfig() // writeback noise off: stalls are scripted
	cfg.Policy = "total_request"
	cfg.Mechanism = "original_get_endpoint"
	cfg.Duration = chainDuration
	cfg.EventCapacity = 1 << 20
	cfg.Telemetry = &telemetry.Config{}
	if opt.Seed != 0 {
		cfg.Seed1 = opt.Seed
	}
	c := cluster.New(cfg)
	injected := c.Apps[0].Name()
	stalls := make([]mbneck.StallEvent, 0, chainStallCount)
	for i := 0; i < chainStallCount; i++ {
		stalls = append(stalls, mbneck.StallEvent{
			At:       chainStallFirst + time.Duration(i)*chainStallEvery,
			Duration: chainStallDuration,
		})
	}
	inj := mbneck.NewScriptedStalls(c.Eng, "fig16", c.Apps[0].CPU(), stalls)
	inj.Start()
	res := c.Run()

	out := CausalChainResult{
		Policy:    cfg.Policy,
		Mechanism: cfg.Mechanism,
		Injected:  injected,
		VLRTTotal: res.Responses.VLRTCount(),
	}

	clusters := telemetry.ClustersFromSeries(res.Responses.VLRTWindows(), chainClusterGap)
	chains := telemetry.Correlate(res.Timeline.Tracks(), clusters, telemetry.CorrelateConfig{})
	out.Clusters = len(clusters)
	hits := 0
	for _, ch := range chains {
		rep := ChainReport{Cluster: ch.Cluster}
		if root, ok := ch.Root(); ok {
			rep.Root = root
			rep.Hit = root.Source == injected
		}
		if rep.Hit {
			hits++
		}
		out.Reports = append(out.Reports, rep)
	}
	if out.Clusters > 0 {
		out.TopShare = float64(hits) / float64(out.Clusters)
	}

	out.OnlineChains = len(res.Chains)
	onlineHits := 0
	for _, ch := range res.Chains {
		if root, ok := ch.Root(); ok && root.Source == injected {
			onlineHits++
		}
	}
	if out.OnlineChains > 0 {
		out.OnlineTopShare = float64(onlineHits) / float64(out.OnlineChains)
	}
	return out
}

// Render prints the ranked causal-chain table.
func (r CausalChainResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Causal chains — policy=%s mechanism=%s (%d scripted %v stalls on %s every %v)\n",
		r.Policy, r.Mechanism, chainStallCount, chainStallDuration, r.Injected, chainStallEvery)
	fmt.Fprintf(&b, "%-20s %-8s %-26s %8s %8s %8s  %s\n",
		"cluster", "vlrt", "#1 causal chain", "onset", "z", "lag", "verdict")
	for _, rep := range r.Reports {
		verdict := "MISS"
		if rep.Hit {
			verdict = "hit"
		}
		span := fmt.Sprintf("%.2fs-%.2fs", rep.Cluster.Start.Seconds(), rep.Cluster.End.Seconds())
		root := rep.Root.Source + "/" + rep.Root.Signal
		if rep.Root.Source == "" {
			root, verdict = "(none)", "MISS"
		}
		fmt.Fprintf(&b, "%-20s %-8d %-26s %7.2fs %8.1f %7.2fs  %s\n",
			span, rep.Cluster.Count, root, rep.Root.Onset.Seconds(), rep.Root.Z, rep.Root.Lag.Seconds(), verdict)
	}
	fmt.Fprintf(&b, "offline: %d clusters, injected-tier-first share=%.0f%% (acceptance: >=90%%)\n",
		r.Clusters, r.TopShare*100)
	fmt.Fprintf(&b, "online: %d detector-triggered chains, injected-tier-first share=%.0f%%; VLRT total=%d\n",
		r.OnlineChains, r.OnlineTopShare*100, r.VLRTTotal)
	return b.String()
}

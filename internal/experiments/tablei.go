package experiments

import (
	"fmt"
	"strings"

	"millibalance/internal/cluster"
	"millibalance/internal/parallel"
)

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Label         string
	Policy        string
	Mechanism     string
	TotalRequests uint64
	AvgRTMillis   float64
	VLRTPct       float64
	NormalPct     float64
	Drops         uint64
}

// TableIResult reproduces Table I: the six policy/mechanism combinations
// compared on total requests, average response time, %VLRT and %normal.
type TableIResult struct {
	Rows []TableIRow
}

// tableICombos lists the paper's six rows in order.
var tableICombos = []struct {
	label     string
	policy    string
	mechanism string
}{
	{"Original total_request", "total_request", "original_get_endpoint"},
	{"Original total_traffic", "total_traffic", "original_get_endpoint"},
	{"Current_load", "current_load", "original_get_endpoint"},
	{"Total_request with modified get_endpoint", "total_request", "modified_get_endpoint"},
	{"Total_traffic with modified get_endpoint", "total_traffic", "modified_get_endpoint"},
	{"Current_load with modified get_endpoint", "current_load", "modified_get_endpoint"},
}

// RunTableI executes all six Table I configurations, fanned out across
// the parallel harness; rows come back in the paper's order regardless
// of which run finishes first.
func RunTableI(opt Options) TableIResult {
	rows := parallel.Map(opt.workers(), len(tableICombos), func(i int) TableIRow {
		combo := tableICombos[i]
		cfg := opt.apply(cluster.PaperConfig())
		cfg.Policy = combo.policy
		cfg.Mechanism = combo.mechanism
		res := cluster.Run(cfg)
		r := res.Responses
		return TableIRow{
			Label:         combo.label,
			Policy:        combo.policy,
			Mechanism:     combo.mechanism,
			TotalRequests: r.Total(),
			AvgRTMillis:   float64(r.Mean().Microseconds()) / 1000,
			VLRTPct:       r.VLRTPercent(),
			NormalPct:     r.NormalPercent(),
			Drops:         res.Drops,
		}
	})
	return TableIResult{Rows: rows}
}

// Row returns the row with the given policy and mechanism, or nil.
func (t TableIResult) Row(policy, mechanism string) *TableIRow {
	for i := range t.Rows {
		if t.Rows[i].Policy == policy && t.Rows[i].Mechanism == mechanism {
			return &t.Rows[i]
		}
	}
	return nil
}

// ImprovementFactor returns the mean-response-time ratio of the original
// total_request policy over the current_load remedy — the paper's
// headline "factor of 12".
func (t TableIResult) ImprovementFactor() float64 {
	orig := t.Row("total_request", "original_get_endpoint")
	cur := t.Row("current_load", "original_get_endpoint")
	if orig == nil || cur == nil || cur.AvgRTMillis == 0 {
		return 0
	}
	return orig.AvgRTMillis / cur.AvgRTMillis
}

// Render prints the table in the paper's layout.
func (t TableIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %12s %10s %10s\n",
		"Policy", "#Total Req", "Avg RT (ms)", "%VLRT", "%<10ms")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-44s %14d %12.2f %9.2f%% %9.2f%%\n",
			r.Label, r.TotalRequests, r.AvgRTMillis, r.VLRTPct, r.NormalPct)
	}
	fmt.Fprintf(&b, "\nimprovement factor (original total_request / current_load): %.1fx\n",
		t.ImprovementFactor())
	return b.String()
}

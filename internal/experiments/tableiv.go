package experiments

import (
	"fmt"
	"strings"

	"millibalance/internal/adapt"
	"millibalance/internal/cluster"
	"millibalance/internal/parallel"
)

// Table IV — the adaptive control plane's report card. The paper's
// Table I compares statically configured policy/mechanism combinations;
// this table asks the question the control plane exists to answer: can
// a system that STARTS in the worst static configuration
// (total_request + original get_endpoint) and adapts online approach
// the best static configuration (current_load), across the same
// millibottleneck causes the generalization study uses? Each injector
// runs three ways: the two static anchors and adaptive-from-worst.

// TableIVMode names one column group of Table IV.
type TableIVMode string

const (
	// ModeStaticTotalRequest is the worst static anchor.
	ModeStaticTotalRequest TableIVMode = "static_total_request"
	// ModeStaticCurrentLoad is the best static anchor.
	ModeStaticCurrentLoad TableIVMode = "static_current_load"
	// ModeAdaptive starts from total_request + original get_endpoint
	// with the adaptive controller armed.
	ModeAdaptive TableIVMode = "adaptive"
)

// TableIVRow is one injector × mode measurement.
type TableIVRow struct {
	Injector string
	Mode     TableIVMode
	// Policy and Mechanism the run ENDED on (differs from the start
	// under adaptation).
	Policy    string
	Mechanism string

	TotalRequests uint64
	AvgRTMillis   float64
	VLRTPct       float64
	Rejects       uint64

	// Controller activity (adaptive mode only).
	Quarantines int
	Readmits    int
	Swaps       int
	Fallbacks   int
	// Decisions keeps the adaptive run's full decision log for JSONL
	// export and round-trip checks (nil for static rows).
	Decisions *adapt.DecisionLog
}

// TableIVResult holds the 3 injectors × 3 modes grid.
type TableIVResult struct {
	Rows []TableIVRow
}

// TableIVInjectors lists the exercised millibottleneck causes: the
// paper's dirty-page flushes plus the two injected causes the adaptive
// controller has no special knowledge of.
func TableIVInjectors() []string {
	return []string{"dirty_page_flush", "gc_pause", "bursty_workload"}
}

// RunTableIV executes the grid: the 3 injectors × 3 modes arms are laid
// out in row order and fanned out across the parallel harness.
func RunTableIV(opt Options) TableIVResult {
	type arm struct {
		injector string
		mode     TableIVMode
	}
	var arms []arm
	for _, injector := range TableIVInjectors() {
		for _, mode := range []TableIVMode{ModeStaticTotalRequest, ModeStaticCurrentLoad, ModeAdaptive} {
			arms = append(arms, arm{injector, mode})
		}
	}
	rows := parallel.Map(opt.workers(), len(arms), func(i int) TableIVRow {
		injector, mode := arms[i].injector, arms[i].mode
		cfg := causeConfig(opt, injector)
		switch mode {
		case ModeStaticCurrentLoad:
			cfg.Policy = "current_load"
			cfg.Mechanism = "original_get_endpoint"
		default: // both start from the worst static configuration
			cfg.Policy = "total_request"
			cfg.Mechanism = "original_get_endpoint"
		}
		if mode == ModeAdaptive {
			cfg.Adaptive = &adapt.Config{}
		}
		c := cluster.New(cfg)
		injectorFor(injector, c)
		res := c.Run()

		row := TableIVRow{
			Injector:      injector,
			Mode:          mode,
			Policy:        cfg.Policy,
			Mechanism:     cfg.Mechanism,
			TotalRequests: res.Responses.Total(),
			AvgRTMillis:   float64(res.Responses.Mean().Microseconds()) / 1000,
			VLRTPct:       res.Responses.VLRTPercent(),
			Rejects:       res.Rejects,
		}
		if mode == ModeAdaptive && res.Adapt != nil {
			row.Policy = res.AdaptState.Policy
			row.Mechanism = res.AdaptState.Mechanism
			row.Quarantines = res.Adapt.Count(adapt.ActionQuarantine)
			row.Readmits = res.Adapt.Count(adapt.ActionReadmit)
			row.Swaps = res.Adapt.Count(adapt.ActionSwapMechanism) +
				res.Adapt.Count(adapt.ActionSwapPolicy)
			row.Fallbacks = res.Adapt.Count(adapt.ActionFallback)
			row.Decisions = res.Adapt
		}
		return row
	})
	return TableIVResult{Rows: rows}
}

// Row returns the row for an injector and mode, or nil.
func (t TableIVResult) Row(injector string, mode TableIVMode) *TableIVRow {
	for i := range t.Rows {
		if t.Rows[i].Injector == injector && t.Rows[i].Mode == mode {
			return &t.Rows[i]
		}
	}
	return nil
}

// AdaptiveWithinFactor reports whether the adaptive run's average RT
// and %VLRT both land within the given factor of the static
// current_load anchor for the injector — the Table IV acceptance
// criterion (factor 2 under dirty_page_flush).
func (t TableIVResult) AdaptiveWithinFactor(injector string, factor float64) bool {
	ad := t.Row(injector, ModeAdaptive)
	cl := t.Row(injector, ModeStaticCurrentLoad)
	if ad == nil || cl == nil {
		return false
	}
	rtOK := ad.AvgRTMillis <= cl.AvgRTMillis*factor
	// A zero-VLRT anchor would make any residue fail a pure ratio; use
	// an absolute floor of one VLRT per thousand requests alongside it.
	vlrtOK := ad.VLRTPct <= cl.VLRTPct*factor || ad.VLRTPct <= 0.1
	return rtOK && vlrtOK
}

// AdaptiveImproves reports whether adaptation beat the static
// total_request configuration it started from, on both average RT and
// %VLRT, for the injector.
func (t TableIVResult) AdaptiveImproves(injector string) bool {
	ad := t.Row(injector, ModeAdaptive)
	tr := t.Row(injector, ModeStaticTotalRequest)
	if ad == nil || tr == nil {
		return false
	}
	return ad.AvgRTMillis < tr.AvgRTMillis && ad.VLRTPct <= tr.VLRTPct
}

// Render prints the grid.
func (t TableIVResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — static anchors vs adaptive-from-worst, per millibottleneck cause\n")
	fmt.Fprintf(&b, "%-18s %-22s %10s %12s %9s %8s %22s\n",
		"injector", "mode", "#req", "avg RT (ms)", "%VLRT", "rejects", "controller activity")
	for _, r := range t.Rows {
		activity := "-"
		if r.Mode == ModeAdaptive {
			activity = fmt.Sprintf("q=%d r=%d s=%d f=%d",
				r.Quarantines, r.Readmits, r.Swaps, r.Fallbacks)
		}
		fmt.Fprintf(&b, "%-18s %-22s %10d %12.2f %8.2f%% %8d %22s\n",
			r.Injector, string(r.Mode), r.TotalRequests, r.AvgRTMillis,
			r.VLRTPct, r.Rejects, activity)
	}
	for _, injector := range TableIVInjectors() {
		fmt.Fprintf(&b, "\n%s: adaptive within 2x of current_load: %v; improves on total_request: %v",
			injector, t.AdaptiveWithinFactor(injector, 2), t.AdaptiveImproves(injector))
	}
	b.WriteString("\n")
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
)

// Report bundles every experiment's result from one complete evaluation
// pass — the programmatic form of EXPERIMENTS.md.
type Report struct {
	Options Options

	TableI         TableIResult
	Fig1           Figure1Result
	Fig2           Figure2Result
	Fig3           Figure3Result
	Fig4           Figure4Result
	Fig5           Figure5Result
	Fig6           InstabilityResult
	Fig7           InstabilityResult
	Fig8           QueueComparisonResult
	Fig9           InstabilityResult
	Fig10          LBValueResult
	Fig11          LBValueResult
	Fig12          QueueComparisonResult
	Fig13          InstabilityResult
	Generalization GeneralizationResult
	TableIV        TableIVResult
}

// RunAll executes the complete evaluation. At the default options this
// is ~30 paper-scale runs (a few minutes of wall time).
func RunAll(opt Options) Report {
	return Report{
		Options:        opt,
		TableI:         RunTableI(opt),
		Fig1:           RunFigure1(opt),
		Fig2:           RunFigure2(opt),
		Fig3:           RunFigure3(opt),
		Fig4:           RunFigure4(opt),
		Fig5:           RunFigure5(opt),
		Fig6:           RunFigure6(opt),
		Fig7:           RunFigure7(opt),
		Fig8:           RunFigure8(opt),
		Fig9:           RunFigure9(opt),
		Fig10:          RunFigure10(opt),
		Fig11:          RunFigure11(opt),
		Fig12:          RunFigure12(opt),
		Fig13:          RunFigure13(opt),
		Generalization: RunGeneralization(opt),
		TableIV:        RunTableIV(opt),
	}
}

// Markdown renders the report for humans — the measured side of
// EXPERIMENTS.md, regenerated from scratch.
func (r Report) Markdown() string {
	var b strings.Builder
	scale := r.Options.DurationScale
	if scale <= 0 {
		scale = 1.0 / 6
	}
	fmt.Fprintf(&b, "# Evaluation report (duration scale %.3f of the paper's 180 s)\n\n", scale)

	fmt.Fprintf(&b, "## Table I\n\n```\n%s```\n\n", r.TableI.Render())

	fmt.Fprintf(&b, "## Figure 1 — baseline\n\n")
	fmt.Fprintf(&b, "- total requests: %d, mean RT %.2f ms, VLRT %d, worst window %.2f ms, app spread %.1f%%\n\n",
		r.Fig1.TotalRequests, r.Fig1.AvgRTMillis, r.Fig1.VLRTCount,
		r.Fig1.MaxWindowRTMillis, r.Fig1.AppShareSpread*100)

	fmt.Fprintf(&b, "## Figure 2 — causal chain\n\n")
	fmt.Fprintf(&b, "- VLRT %d; %d millibottlenecks detected; %.0f%% of VLRT windows attributed; queue↔CPU r=%.2f; dirty-page drops on every iowait span: %v\n\n",
		r.Fig2.VLRTTotal, len(r.Fig2.Saturations), r.Fig2.Attribution*100,
		r.Fig2.QueueCPUPearson, r.Fig2.IODirtyDrops)

	fmt.Fprintf(&b, "## Figure 3 — fluctuations\n\n")
	fmt.Fprintf(&b, "- peak windowed RT %.0f ms (%.0f× the median window)\n\n",
		r.Fig3.PeakWindowRTMillis, r.Fig3.FluctuationRatio)

	fmt.Fprintf(&b, "## Figure 4 — RT distribution\n\n")
	fmt.Fprintf(&b, "- VLRT clusters: ~1 s: %d, ~2 s: %d, ~3 s: %d\n\n",
		r.Fig4.ClusterCounts[0], r.Fig4.ClusterCounts[1], r.Fig4.ClusterCounts[2])

	fmt.Fprintf(&b, "## Figure 5 — average CPU\n\n")
	fmt.Fprintf(&b, "- busiest server averages %.1f%% (moderate utilization throughout)\n\n", r.Fig5.MaxAverage)

	writePhases := func(title string, res InstabilityResult) {
		fmt.Fprintf(&b, "## %s (%s + %s)\n\n", title, res.Policy, res.Mechanism)
		fmt.Fprintf(&b, "- share to the stalled server by phase: pre %.0f%%, stall %.0f%%, recovery %.0f%%, normal %.0f%%\n",
			res.StalledShare[0]*100, res.StalledShare[1]*100, res.StalledShare[2]*100, res.StalledShare[3]*100)
		fmt.Fprintf(&b, "- queue peaks during the stall: stalled %.0f vs healthy %.0f; VLRT %d\n\n",
			res.StalledQueuePeak, res.HealthyQueuePeak, res.VLRTTotal)
	}
	writePhases("Figure 6 — instability close-up", r.Fig6)
	writePhases("Figure 7 — instability close-up", r.Fig7)

	fmt.Fprintf(&b, "## Figure 8 — queue reduction (modified get_endpoint)\n\n")
	fmt.Fprintf(&b, "- web+app tier queue peaks: original %.0f/%.0f → remedy %.0f/%.0f (−%.0f%%)\n\n",
		r.Fig8.OriginalWebTierPeak, r.Fig8.OriginalAppTierPeak,
		r.Fig8.WebTierPeak, r.Fig8.AppTierPeak, r.Fig8.QueueReductionPct())

	writePhases("Figure 9 — remedy close-up", r.Fig9)

	fmt.Fprintf(&b, "## Figures 10/11 — lb_value signature\n\n")
	fmt.Fprintf(&b, "- total_request: stalled lowest during stall %v, recovery spike %v\n",
		r.Fig10.StalledIsMinDuringStall, r.Fig10.StalledIsMaxDuringRecovery)
	fmt.Fprintf(&b, "- total_traffic: stalled lowest during stall %v, recovery spike %v\n\n",
		r.Fig11.StalledIsMinDuringStall, r.Fig11.StalledIsMaxDuringRecovery)

	fmt.Fprintf(&b, "## Figure 12 — queue reduction (current_load)\n\n")
	fmt.Fprintf(&b, "- web+app tier queue peaks: original %.0f/%.0f → remedy %.0f/%.0f (−%.0f%%)\n\n",
		r.Fig12.OriginalWebTierPeak, r.Fig12.OriginalAppTierPeak,
		r.Fig12.WebTierPeak, r.Fig12.AppTierPeak, r.Fig12.QueueReductionPct())

	writePhases("Figure 13 — remedy close-up", r.Fig13)

	fmt.Fprintf(&b, "## Generalization across millibottleneck causes\n\n```\n%s```\n\n", r.Generalization.Render())

	fmt.Fprintf(&b, "## Table IV — adaptive control plane\n\n```\n%s```\n", r.TableIV.Render())
	return b.String()
}

package experiments

import "testing"

// TestFig17PrequalMatchesRemedy is the PR acceptance criterion: across
// all five fault shapes, the prequal arm — probing policy over the
// ORIGINAL blocking get_endpoint — must keep its %VLRT within 2x of the
// full remedy arm (current_load + modified get_endpoint). Probing alone
// closes most of the gap the mechanism remedy exists to close.
func TestFig17PrequalMatchesRemedy(t *testing.T) {
	if testing.Short() {
		t.Skip("fifteen paper-scale runs")
	}
	res := RunFig17(testOpt)
	if len(res.Rows) != 15 {
		t.Fatalf("got %d rows, want 15", len(res.Rows))
	}
	for _, shape := range Fig17Shapes() {
		pq := res.Row(shape, Fig17Prequal)
		rm := res.Row(shape, Fig17Remedy)
		if pq == nil || rm == nil {
			t.Fatalf("%s: missing arm rows", shape)
		}
		if pq.TotalRequests == 0 {
			t.Fatalf("%s: prequal arm completed no requests", shape)
		}
		if !res.PrequalWithinFactor(shape, 2) {
			t.Errorf("%s: prequal VLRT %.2f%% not within 2x of remedy %.2f%%\n%s",
				shape, pq.VLRTPct, rm.VLRTPct, res.Render())
		}
	}
	// The injected shapes must actually fire (freeze relies on the
	// native writeback daemons instead of an injector).
	for _, shape := range []string{"gc_pause", "slow", "crash", "netloss"} {
		if row := res.Row(shape, Fig17Prequal); row.InjectedStalls == 0 {
			t.Errorf("%s: injector never fired", shape)
		}
	}
}

func TestFig17DeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism digests are slow")
	}
	seqAndPar(t, "Fig17", func(o Options) []string {
		res := RunFig17(o)
		return []string{res.Render()}
	})
}

package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"millibalance/internal/adapt"
)

func TestTableIVAdaptiveAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("nine paper-scale runs")
	}
	res := RunTableIV(testOpt)
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 3 injectors x 3 modes", len(res.Rows))
	}

	// The headline criterion: starting from the worst static
	// configuration, the controller recovers to within 2x of the best
	// static anchor under the paper's own millibottleneck cause.
	if !res.AdaptiveWithinFactor("dirty_page_flush", 2) {
		ad := res.Row("dirty_page_flush", ModeAdaptive)
		cl := res.Row("dirty_page_flush", ModeStaticCurrentLoad)
		t.Fatalf("adaptive %.2fms/%.2f%% not within 2x of current_load %.2fms/%.2f%%",
			ad.AvgRTMillis, ad.VLRTPct, cl.AvgRTMillis, cl.VLRTPct)
	}
	// And it must improve on the configuration it started from, for
	// every cause — including the two it has no special knowledge of.
	for _, injector := range TableIVInjectors() {
		if !res.AdaptiveImproves(injector) {
			ad := res.Row(injector, ModeAdaptive)
			tr := res.Row(injector, ModeStaticTotalRequest)
			t.Fatalf("%s: adaptive %.2fms/%.2f%% does not improve on total_request %.2fms/%.2f%%",
				injector, ad.AvgRTMillis, ad.VLRTPct, tr.AvgRTMillis, tr.VLRTPct)
		}
	}

	// The adaptive flush run must actually have adapted: quarantines
	// fired and the ladder reached the policy swap.
	ad := res.Row("dirty_page_flush", ModeAdaptive)
	if ad.Quarantines == 0 || ad.Swaps == 0 {
		t.Fatalf("flush adaptation inactive: q=%d s=%d", ad.Quarantines, ad.Swaps)
	}
	if ad.Policy != "current_load" {
		t.Fatalf("flush run ended on policy %q, want current_load", ad.Policy)
	}

	// Controller decisions round-trip through the JSONL export.
	if ad.Decisions == nil || ad.Decisions.Len() == 0 {
		t.Fatal("adaptive row carries no decision log")
	}
	var buf bytes.Buffer
	if err := ad.Decisions.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := adapt.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ad.Decisions.Decisions(), out) {
		t.Fatal("decision log JSONL round trip mismatch")
	}

	render := res.Render()
	for _, want := range []string{"adaptive", "static_current_load", "within 2x"} {
		if !strings.Contains(render, want) {
			t.Fatalf("render missing %q:\n%s", want, render)
		}
	}
}

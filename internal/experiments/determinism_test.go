package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"millibalance/internal/cluster"
	"millibalance/internal/parallel"
)

// The parallel harness must be invisible in the results: every multi-run
// experiment fans independent engines out across goroutines and collects
// rows by configuration index, so the rendered output — response-time
// series, drop counts, controller activity, all of it — has to be
// byte-identical between Parallel=1 (the sequential path) and any
// worker count. These tests digest both renderings and compare hashes.

// digest hashes the full rendered output of an experiment, including
// the raw windowed series where the result type exposes them.
func digest(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// detOpt trades phenomenon fidelity for speed: determinism does not
// care whether a flush cycle completes, only that the event order
// replays exactly, so these runs are much shorter than testOpt.
var detOpt = Options{DurationScale: 1.0 / 60}

func seqAndPar(t *testing.T, name string, run func(Options) []string) {
	t.Helper()
	seq := detOpt
	seq.Parallel = 1
	par := detOpt
	par.Parallel = 4
	a := digest(run(seq)...)
	b := digest(run(par)...)
	if a != b {
		t.Fatalf("%s: parallel harness changed the results: sequential digest %s, parallel digest %s", name, a, b)
	}
}

func TestTableIDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism digests are slow")
	}
	seqAndPar(t, "TableI", func(o Options) []string {
		res := RunTableI(o)
		return []string{res.Render()}
	})
}

func TestTableIVDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism digests are slow")
	}
	seqAndPar(t, "TableIV", func(o Options) []string {
		res := RunTableIV(o)
		parts := []string{res.Render()}
		// The decision logs are part of the result; fold them in too.
		for _, row := range res.Rows {
			if row.Decisions != nil {
				for _, d := range row.Decisions.Decisions() {
					parts = append(parts, fmt.Sprintf("%v", d))
				}
			}
		}
		return parts
	})
}

func TestGeneralizationDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism digests are slow")
	}
	seqAndPar(t, "Generalization", func(o Options) []string {
		res := RunGeneralization(o)
		return []string{res.Render()}
	})
}

func TestFiguresDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism digests are slow")
	}
	seqAndPar(t, "Figure3", func(o Options) []string {
		res := RunFigure3(o)
		return []string{res.Render(), RenderTSV(res.TotalRequestRT, res.TotalTrafficRT)}
	})
	seqAndPar(t, "Figure4", func(o Options) []string {
		res := RunFigure4(o)
		return []string{res.Render(), RenderHist(res.TotalRequestHist), RenderHist(res.TotalTrafficHist)}
	})
	seqAndPar(t, "Figure5", func(o Options) []string {
		res := RunFigure5(o)
		// Render ranges over a map; digest the entries in a fixed order
		// instead.
		var parts []string
		for _, m := range []map[string]float64{res.TotalRequest, res.TotalTraffic} {
			for _, name := range sortedKeys(m) {
				parts = append(parts, fmt.Sprintf("%s=%.6f\n", name, m[name]))
			}
		}
		return parts
	})
	seqAndPar(t, "Figure8", func(o Options) []string {
		res := RunFigure8(o)
		return []string{res.Render(), RenderTSV(res.WebTier, res.AppTier, res.DBTier)}
	})
	seqAndPar(t, "Figure12", func(o Options) []string {
		res := RunFigure12(o)
		return []string{res.Render(), RenderTSV(res.WebTier, res.AppTier, res.DBTier)}
	})
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestParallelHarnessRaceSmoke runs concurrent mini-cluster simulations
// through the harness. It stays enabled under -short so the CI race
// step always exercises cross-goroutine engine execution.
func TestParallelHarnessRaceSmoke(t *testing.T) {
	totals := parallel.Map(4, 4, func(i int) uint64 {
		cfg := cluster.MiniConfig()
		cfg.Duration = 2 * cfg.SampleInterval * 100
		cfg.Seed1 = uint64(i + 1)
		return cluster.Run(cfg).Responses.Total()
	})
	for i, n := range totals {
		if n == 0 {
			t.Fatalf("mini run %d completed no requests", i)
		}
	}
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"millibalance/internal/admission"
	"millibalance/internal/cluster"
	"millibalance/internal/parallel"
)

// Figure 18 — overload control as the complement of load balancing. The
// paper's conclusion is that balancing policies alone cannot fully
// remedy millibottleneck-induced VLRT: by the time any counter moves,
// the queues are already amplified. The admission plane
// (internal/admission) attacks the amplification itself — bound what
// enters, judge the waiting time, shed the rest. This figure keeps the
// paper's WORST configuration (total_request over the original blocking
// get_endpoint) and asks how much of the full remedy's VLRT reduction
// admission control alone recovers, across the same five fault shapes
// as Figure 17 plus a fault-free shape that prices the plane's goodput
// cost when nothing is wrong.

// Fig18Arm names one column group of Figure 18.
type Fig18Arm string

const (
	// Fig18None is the paper's worst configuration with no admission
	// control — the queue-amplification baseline.
	Fig18None Fig18Arm = "no_admission"
	// Fig18Fixed adds the historical fixed bounded-wait shed (static
	// limit at the worker-pool size, 1 s MaxWait).
	Fig18Fixed Fig18Arm = "fixed_shed"
	// Fig18CoDel adds the full plane: gradient limiter, CoDel on the
	// pre-dispatch wait, LIFO under overload.
	Fig18CoDel Fig18Arm = "codel_gradient"
	// Fig18Remedy is the reference row: the paper's full
	// policy+mechanism remedy with no admission control, the bar the
	// codel arm is judged against.
	Fig18Remedy Fig18Arm = "remedy_reference"
)

// Fig18Row is one fault shape × arm measurement.
type Fig18Row struct {
	Shape     string
	Arm       Fig18Arm
	Policy    string
	Mechanism string
	Admission string

	TotalRequests  uint64
	Goodput        uint64 // successfully answered requests
	AvgRTMillis    float64
	VLRTCount      uint64
	VLRTPct        float64
	Sheds          uint64
	InjectedStalls int
}

// Fig18Result holds the (5 fault shapes + no-fault) × 4 arms grid.
type Fig18Result struct {
	Rows []Fig18Row
}

// Fig18Shapes is Fig17Shapes plus the fault-free control shape.
func Fig18Shapes() []string {
	return append([]string{"none"}, Fig17Shapes()...)
}

// fig18Admission returns the arm's admission config (nil = disabled).
func fig18Admission(a Fig18Arm) (*admission.Config, string) {
	switch a {
	case Fig18Fixed:
		return &admission.Config{Limiter: admission.LimiterStatic}, "static+maxwait"
	case Fig18CoDel:
		// MaxWait sits well below the 1 s VLRT threshold: a shed must be
		// a fast failure the client can retry, not a request that burned
		// its whole latency budget waiting to be refused. (The fixed arm
		// keeps the historical 1 s bound on purpose — the comparison
		// shows what that costs.)
		return &admission.Config{
			Limiter: admission.LimiterGradient,
			CoDel:   true,
			LIFO:    true,
			MaxWait: 400 * time.Millisecond,
		}, "codel+gradient+lifo"
	default:
		return nil, "off"
	}
}

// RunFig18 executes the grid, fanned out across the parallel harness.
func RunFig18(opt Options) Fig18Result {
	type cell struct {
		shape string
		arm   Fig18Arm
	}
	var cells []cell
	for _, shape := range Fig18Shapes() {
		for _, a := range []Fig18Arm{Fig18None, Fig18Fixed, Fig18CoDel, Fig18Remedy} {
			cells = append(cells, cell{shape, a})
		}
	}
	rows := parallel.Map(opt.workers(), len(cells), func(i int) Fig18Row {
		shape, a := cells[i].shape, cells[i].arm
		var cfg cluster.Config
		if shape == "none" {
			cfg = opt.apply(cluster.BaselineConfig())
		} else {
			cfg = fig17Config(opt, shape)
		}
		if a == Fig18Remedy {
			cfg.Policy, cfg.Mechanism = "current_load", "modified_get_endpoint"
		} else {
			cfg.Policy, cfg.Mechanism = "total_request", "original_get_endpoint"
		}
		acfg, spec := fig18Admission(a)
		cfg.Admission = acfg
		c := cluster.New(cfg)
		stalls := func() int { return 0 }
		if shape != "none" {
			stalls = fig17Injector(shape, c, cfg.Duration)
		}
		res := c.Run()
		return Fig18Row{
			Shape:          shape,
			Arm:            a,
			Policy:         cfg.Policy,
			Mechanism:      cfg.Mechanism,
			Admission:      spec,
			TotalRequests:  res.Responses.Total(),
			Goodput:        res.Responses.Total() - res.Responses.Failures(),
			AvgRTMillis:    float64(res.Responses.Mean().Microseconds()) / 1000,
			VLRTCount:      res.Responses.VLRTCount(),
			VLRTPct:        res.Responses.VLRTPercent(),
			Sheds:          res.AdmissionSheds,
			InjectedStalls: stalls(),
		}
	})
	return Fig18Result{Rows: rows}
}

// Row returns the row for a shape and arm, or nil.
func (f Fig18Result) Row(shape string, arm Fig18Arm) *Fig18Row {
	for i := range f.Rows {
		if f.Rows[i].Shape == shape && f.Rows[i].Arm == arm {
			return &f.Rows[i]
		}
	}
	return nil
}

// CoDelWithinFactor reports whether the codel+gradient arm bounds its
// VLRT count within factor× the full remedy's for the shape — the
// Figure 18 acceptance criterion (factor 2), with the same absolute
// %VLRT floor as Figure 17 so a zero-VLRT remedy cannot fail a residue
// of one per thousand.
func (f Fig18Result) CoDelWithinFactor(shape string, factor float64) bool {
	cd := f.Row(shape, Fig18CoDel)
	rm := f.Row(shape, Fig18Remedy)
	if cd == nil || rm == nil {
		return false
	}
	return float64(cd.VLRTCount) <= float64(rm.VLRTCount)*factor || cd.VLRTPct <= 0.1
}

// CoDelImproves reports whether the codel arm beat the unprotected
// baseline it shares a policy and mechanism with, on %VLRT.
func (f Fig18Result) CoDelImproves(shape string) bool {
	cd := f.Row(shape, Fig18CoDel)
	no := f.Row(shape, Fig18None)
	if cd == nil || no == nil {
		return false
	}
	return cd.VLRTPct <= no.VLRTPct
}

// GoodputWithin reports whether the codel arm's fault-free goodput
// stays within lossFrac of the no-admission baseline — the price of
// running the plane when nothing is wrong.
func (f Fig18Result) GoodputWithin(lossFrac float64) bool {
	cd := f.Row("none", Fig18CoDel)
	no := f.Row("none", Fig18None)
	if cd == nil || no == nil || no.Goodput == 0 {
		return false
	}
	return float64(cd.Goodput) >= float64(no.Goodput)*(1-lossFrac)
}

// Render prints the grid.
func (f Fig18Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 18 — admission control on the paper's worst arm vs the full remedy, per fault shape\n")
	fmt.Fprintf(&b, "%-9s %-17s %-14s %-22s %-20s %9s %9s %12s %7s %9s %7s %7s\n",
		"shape", "arm", "policy", "mechanism", "admission",
		"#req", "goodput", "avg RT (ms)", "#VLRT", "%VLRT", "sheds", "stalls")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-9s %-17s %-14s %-22s %-20s %9d %9d %12.2f %7d %8.2f%% %7d %7d\n",
			r.Shape, string(r.Arm), r.Policy, r.Mechanism, r.Admission,
			r.TotalRequests, r.Goodput, r.AvgRTMillis, r.VLRTCount, r.VLRTPct,
			r.Sheds, r.InjectedStalls)
	}
	for _, shape := range Fig18Shapes() {
		if shape == "none" {
			continue
		}
		fmt.Fprintf(&b, "\n%s: codel+gradient within 2x of remedy VLRT: %v; improves on no_admission: %v",
			shape, f.CoDelWithinFactor(shape, 2), f.CoDelImproves(shape))
	}
	fmt.Fprintf(&b, "\nfault-free goodput within 5%% of no_admission: %v\n", f.GoodputWithin(0.05))
	return b.String()
}

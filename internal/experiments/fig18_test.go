package experiments

import "testing"

// TestFig18AdmissionBoundsVLRT is the PR acceptance criterion: across
// all five fault shapes, the codel+gradient arm — admission control on
// the paper's WORST policy/mechanism pair — must bound its VLRT count
// within 2x of the full remedy arm, and must not cost more than 5% of
// goodput on the fault-free shape.
func TestFig18AdmissionBoundsVLRT(t *testing.T) {
	if testing.Short() {
		t.Skip("twenty-four paper-scale runs")
	}
	res := RunFig18(testOpt)
	if want := len(Fig18Shapes()) * 4; len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
	for _, shape := range Fig17Shapes() {
		cd := res.Row(shape, Fig18CoDel)
		rm := res.Row(shape, Fig18Remedy)
		if cd == nil || rm == nil {
			t.Fatalf("%s: missing arm rows", shape)
		}
		if cd.TotalRequests == 0 {
			t.Fatalf("%s: codel arm completed no requests", shape)
		}
		if !res.CoDelWithinFactor(shape, 2) {
			t.Errorf("%s: codel VLRT count %d (%.2f%%) not within 2x of remedy %d\n%s",
				shape, cd.VLRTCount, cd.VLRTPct, rm.VLRTCount, res.Render())
		}
		if !res.CoDelImproves(shape) {
			t.Errorf("%s: codel arm did not improve on the unprotected baseline\n%s",
				shape, res.Render())
		}
	}
	if !res.GoodputWithin(0.05) {
		t.Errorf("fault-free goodput fell more than 5%% under admission\n%s", res.Render())
	}
	// The plane must actually have worked for a living on the stall
	// shapes — zero sheds would mean the arm never engaged.
	engaged := false
	for _, shape := range Fig17Shapes() {
		if res.Row(shape, Fig18CoDel).Sheds > 0 {
			engaged = true
		}
	}
	if !engaged {
		t.Error("codel arm recorded no sheds on any fault shape")
	}
}

func TestFig18DeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism digests are slow")
	}
	seqAndPar(t, "Fig18", func(o Options) []string {
		res := RunFig18(o)
		return []string{res.Render()}
	})
}

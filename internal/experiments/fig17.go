package experiments

import (
	"fmt"
	"strings"

	"millibalance/internal/cluster"
	"millibalance/internal/mbneck"
	"millibalance/internal/parallel"
	"millibalance/internal/sim"
)

// Figure 17 — the probing subsystem's report card. The paper's counter
// policies fail under millibottlenecks because the stalled backend
// stops generating the events they count; the mechanism remedy
// (modified get_endpoint) sidesteps that by failing fast. Prequal
// (internal/probe + the prequal policy) attacks the same failure from
// the signal side: asynchronous probes decouple evidence from dispatch,
// and a stalled backend ages out of the probe pools instead of
// attracting traffic. This figure asks whether that signal-side fix
// alone — while still running the ORIGINAL blocking get_endpoint — can
// match the full remedy, across the same five fault shapes the
// wall-clock chaos suite (internal/faults, PR 4) exercises. Each shape
// runs three ways: the worst static arm, the full remedy, and prequal
// on the original mechanism.

// Fig17Arm names one column group of Figure 17.
type Fig17Arm string

const (
	// Fig17Original is the paper's worst configuration: total_request
	// over the original blocking get_endpoint.
	Fig17Original Fig17Arm = "original_total_request"
	// Fig17Remedy is the paper's full remedy: current_load over the
	// modified fail-fast get_endpoint.
	Fig17Remedy Fig17Arm = "remedy_current_load"
	// Fig17Prequal is probing-only: the prequal policy over the
	// ORIGINAL blocking get_endpoint — no mechanism remedy at all.
	Fig17Prequal Fig17Arm = "prequal_original_mech"
)

// Fig17Row is one fault shape × arm measurement.
type Fig17Row struct {
	Shape     string
	Arm       Fig17Arm
	Policy    string
	Mechanism string

	TotalRequests  uint64
	AvgRTMillis    float64
	VLRTPct        float64
	Rejects        uint64
	InjectedStalls int
}

// Fig17Result holds the 5 shapes × 3 arms grid.
type Fig17Result struct {
	Rows []Fig17Row
}

// Fig17Shapes lists the exercised fault shapes — the sim analogues of
// the wall-clock chaos suite's five: the native dirty-page freeze,
// clocked GC pauses, sustained slow response, crash-length outages and
// lossy-network retransmission storms (modelled as frequent brief
// stalls, the queue signature loss produces upstream).
func Fig17Shapes() []string {
	return []string{"freeze", "gc_pause", "slow", "crash", "netloss"}
}

// fig17Config returns the base config for a shape, before the arm's
// policy and mechanism are chosen. Only freeze uses the native
// writeback millibottleneck; the other shapes inject over the quiet
// baseline so each run isolates one cause.
func fig17Config(opt Options, shape string) cluster.Config {
	if shape == "freeze" {
		return opt.apply(cluster.PaperConfig())
	}
	return opt.apply(cluster.BaselineConfig())
}

// fig17Injector arms the shape's stall source on a built cluster and
// returns a fired-stall counter. Durations derive from the run length
// so scaled CI runs keep the same relative shape.
func fig17Injector(shape string, c *cluster.Cluster, duration sim.Time) func() int {
	switch shape {
	case "gc_pause":
		return injectorFor("gc_pause", c)
	case "slow":
		// A stream of sub-TTL stalls on one server: never long enough to
		// trip staleness exclusion on its own, just a persistently slow
		// backend — the shape probes must expose through latency.
		inj := mbneck.NewPeriodicStalls(c.Eng, "slow-app1", c.Apps[0].CPU(),
			duration/25, duration/250, 0.2)
		inj.Start()
		return inj.Stalls
	case "crash":
		// Two crash-length outages on one server, placed at fixed
		// fractions of the run.
		inj := mbneck.NewScriptedStalls(c.Eng, "crash-app1", c.Apps[0].CPU(), []mbneck.StallEvent{
			{At: duration / 4, Duration: duration / 10},
			{At: duration * 3 / 5, Duration: duration / 10},
		})
		inj.Start()
		return inj.Fired
	case "netloss":
		// Loss-and-retransmit waves: random, brief, frequent freezes.
		inj := mbneck.NewRandomStalls(c.Eng, "netloss-app1", c.Apps[0].CPU(),
			duration/40, duration/300)
		inj.Start()
		return inj.Stalls
	default: // freeze: the native writeback daemons are the injector
		return func() int { return 0 }
	}
}

// RunFig17 executes the grid: 5 shapes × 3 arms, fanned out across the
// parallel harness and collected by index.
func RunFig17(opt Options) Fig17Result {
	type arm struct {
		shape string
		arm   Fig17Arm
	}
	var arms []arm
	for _, shape := range Fig17Shapes() {
		for _, a := range []Fig17Arm{Fig17Original, Fig17Remedy, Fig17Prequal} {
			arms = append(arms, arm{shape, a})
		}
	}
	rows := parallel.Map(opt.workers(), len(arms), func(i int) Fig17Row {
		shape, a := arms[i].shape, arms[i].arm
		cfg := fig17Config(opt, shape)
		switch a {
		case Fig17Remedy:
			cfg.Policy, cfg.Mechanism = "current_load", "modified_get_endpoint"
		case Fig17Prequal:
			cfg.Policy, cfg.Mechanism = "prequal", "original_get_endpoint"
		default:
			cfg.Policy, cfg.Mechanism = "total_request", "original_get_endpoint"
		}
		c := cluster.New(cfg)
		stalls := fig17Injector(shape, c, cfg.Duration)
		res := c.Run()
		return Fig17Row{
			Shape:          shape,
			Arm:            a,
			Policy:         cfg.Policy,
			Mechanism:      cfg.Mechanism,
			TotalRequests:  res.Responses.Total(),
			AvgRTMillis:    float64(res.Responses.Mean().Microseconds()) / 1000,
			VLRTPct:        res.Responses.VLRTPercent(),
			Rejects:        res.Rejects,
			InjectedStalls: stalls(),
		}
	})
	return Fig17Result{Rows: rows}
}

// Row returns the row for a shape and arm, or nil.
func (f Fig17Result) Row(shape string, arm Fig17Arm) *Fig17Row {
	for i := range f.Rows {
		if f.Rows[i].Shape == shape && f.Rows[i].Arm == arm {
			return &f.Rows[i]
		}
	}
	return nil
}

// PrequalWithinFactor reports whether the prequal arm's %VLRT lands
// within the given factor of the full remedy's for the shape — the
// Figure 17 acceptance criterion (factor 2), with the same absolute
// floor Table IV uses so a zero-VLRT remedy cannot fail a residue of
// one per thousand.
func (f Fig17Result) PrequalWithinFactor(shape string, factor float64) bool {
	pq := f.Row(shape, Fig17Prequal)
	rm := f.Row(shape, Fig17Remedy)
	if pq == nil || rm == nil {
		return false
	}
	return pq.VLRTPct <= rm.VLRTPct*factor || pq.VLRTPct <= 0.1
}

// PrequalImproves reports whether prequal beat the original arm it
// shares a mechanism with, on both average RT and %VLRT.
func (f Fig17Result) PrequalImproves(shape string) bool {
	pq := f.Row(shape, Fig17Prequal)
	or := f.Row(shape, Fig17Original)
	if pq == nil || or == nil {
		return false
	}
	return pq.AvgRTMillis <= or.AvgRTMillis && pq.VLRTPct <= or.VLRTPct
}

// Render prints the grid.
func (f Fig17Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 17 — prequal (probing, original mechanism) vs the paper's arms, per fault shape\n")
	fmt.Fprintf(&b, "%-10s %-24s %-14s %-22s %10s %12s %9s %8s %7s\n",
		"shape", "arm", "policy", "mechanism", "#req", "avg RT (ms)", "%VLRT", "rejects", "stalls")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-10s %-24s %-14s %-22s %10d %12.2f %8.2f%% %8d %7d\n",
			r.Shape, string(r.Arm), r.Policy, r.Mechanism,
			r.TotalRequests, r.AvgRTMillis, r.VLRTPct, r.Rejects, r.InjectedStalls)
	}
	for _, shape := range Fig17Shapes() {
		fmt.Fprintf(&b, "\n%s: prequal within 2x of remedy VLRT: %v; improves on original: %v",
			shape, f.PrequalWithinFactor(shape, 2), f.PrequalImproves(shape))
	}
	b.WriteString("\n")
	return b.String()
}

package experiments

import (
	"strings"
	"testing"
)

// TestFigure16CausalChains is the acceptance gate for the correlation
// engine: under the writeback-freeze scenario the injected tier must be
// the #1 causal chain for at least 90 % of VLRT clusters.
func TestFigure16CausalChains(t *testing.T) {
	r := RunFigure16(Options{})
	if r.Clusters < 4 {
		t.Fatalf("only %d VLRT clusters — the scenario should produce one per stall (8 stalls)", r.Clusters)
	}
	if r.TopShare < 0.9 {
		t.Fatalf("injected tier ranked #1 for %.0f%% of %d clusters, want >= 90%%:\n%s",
			r.TopShare*100, r.Clusters, r.Render())
	}
	if r.OnlineChains == 0 {
		t.Fatal("online correlator emitted no chains despite detector confirmations")
	}
	if r.OnlineTopShare < 0.9 {
		t.Fatalf("online chains named the injected tier for %.0f%% of %d, want >= 90%%",
			r.OnlineTopShare*100, r.OnlineChains)
	}
	out := r.Render()
	for _, want := range []string{"Causal chains", "tomcat1", "hit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

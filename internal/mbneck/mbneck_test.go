package mbneck

import (
	"testing"
	"time"

	"millibalance/internal/sim"
	"millibalance/internal/stats"
)

// recorder implements Stallable and logs stall calls.
type recorder struct {
	eng    *sim.Engine
	stalls []StallEvent
}

func (r *recorder) Stall(d sim.Time) {
	r.stalls = append(r.stalls, StallEvent{At: r.eng.Now(), Duration: d})
}

func TestPeriodicStallsFireOnInterval(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	rec := &recorder{eng: eng}
	inj := NewPeriodicStalls(eng, "gc", rec, time.Second, 100*time.Millisecond, 0)
	inj.Start()
	eng.Run(3500 * time.Millisecond)
	if len(rec.stalls) != 3 {
		t.Fatalf("stalls = %v, want 3", rec.stalls)
	}
	for i, s := range rec.stalls {
		if s.At != sim.Time(i+1)*time.Second || s.Duration != 100*time.Millisecond {
			t.Fatalf("stall %d = %+v", i, s)
		}
	}
	if inj.Stalls() != 3 || inj.Name() != "gc" {
		t.Fatalf("Stalls=%d Name=%q", inj.Stalls(), inj.Name())
	}
}

func TestPeriodicStallsStop(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	rec := &recorder{eng: eng}
	inj := NewPeriodicStalls(eng, "gc", rec, time.Second, 50*time.Millisecond, 0)
	inj.Start()
	eng.Run(1500 * time.Millisecond)
	inj.Stop()
	eng.Run(10 * time.Second)
	if len(rec.stalls) != 1 {
		t.Fatalf("stalls after Stop = %d", len(rec.stalls))
	}
}

func TestPeriodicStallsJitterBounds(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	rec := &recorder{eng: eng}
	inj := NewPeriodicStalls(eng, "gc", rec, time.Second, 100*time.Millisecond, 0.2)
	inj.Start()
	eng.Run(30 * time.Second)
	if len(rec.stalls) < 20 {
		t.Fatalf("only %d stalls", len(rec.stalls))
	}
	for _, s := range rec.stalls {
		if s.Duration < 80*time.Millisecond || s.Duration > 120*time.Millisecond {
			t.Fatalf("jittered duration %v out of ±20%%", s.Duration)
		}
	}
}

func TestPeriodicStallsValidation(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil target", func() { NewPeriodicStalls(eng, "x", nil, 1, 1, 0) })
	mustPanic("zero interval", func() { NewPeriodicStalls(eng, "x", &recorder{eng: eng}, 0, 1, 0) })
	mustPanic("double start", func() {
		i := NewPeriodicStalls(eng, "x", &recorder{eng: eng}, 1, 1, 0)
		i.Start()
		i.Start()
	})
}

func TestRandomStallsStatistics(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	rec := &recorder{eng: eng}
	inj := NewRandomStalls(eng, "vm", rec, time.Second, 100*time.Millisecond)
	inj.Start()
	eng.Run(200 * time.Second)
	n := len(rec.stalls)
	if n < 150 || n > 260 {
		t.Fatalf("stall count %d for mean interval 1s over 200s", n)
	}
	var sum time.Duration
	for _, s := range rec.stalls {
		sum += s.Duration
	}
	mean := sum / time.Duration(n)
	if mean < 80*time.Millisecond || mean > 125*time.Millisecond {
		t.Fatalf("mean stall duration %v, want ~100ms", mean)
	}
	inj.Stop()
}

func TestScriptedStallsExactPlayback(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	rec := &recorder{eng: eng}
	script := []StallEvent{
		{At: 500 * time.Millisecond, Duration: 120 * time.Millisecond},
		{At: 2 * time.Second, Duration: 80 * time.Millisecond},
	}
	inj := NewScriptedStalls(eng, "scripted", rec, script)
	inj.Start()
	eng.Run(5 * time.Second)
	if len(rec.stalls) != 2 {
		t.Fatalf("stalls = %v", rec.stalls)
	}
	for i := range script {
		if rec.stalls[i] != script[i] {
			t.Fatalf("stall %d = %+v, want %+v", i, rec.stalls[i], script[i])
		}
	}
	if inj.Fired() != 2 {
		t.Fatalf("Fired = %d", inj.Fired())
	}
}

func TestScriptedStallsStopCancelsRemaining(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	rec := &recorder{eng: eng}
	inj := NewScriptedStalls(eng, "scripted", rec, []StallEvent{
		{At: time.Second, Duration: time.Millisecond},
		{At: 10 * time.Second, Duration: time.Millisecond},
	})
	inj.Start()
	eng.Run(2 * time.Second)
	inj.Stop()
	eng.Run(20 * time.Second)
	if len(rec.stalls) != 1 {
		t.Fatalf("stalls = %d after Stop", len(rec.stalls))
	}
}

func TestScriptedStallsCopiesEvents(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	rec := &recorder{eng: eng}
	script := []StallEvent{{At: time.Second, Duration: 50 * time.Millisecond}}
	inj := NewScriptedStalls(eng, "scripted", rec, script)
	script[0].Duration = time.Hour // must not affect the injector
	inj.Start()
	eng.Run(2 * time.Second)
	if rec.stalls[0].Duration != 50*time.Millisecond {
		t.Fatal("ScriptedStalls did not copy its event slice")
	}
}

func satSeries(values []float64) *stats.Series {
	s := stats.NewSeries(50 * time.Millisecond)
	for i, v := range values {
		s.Add(time.Duration(i)*50*time.Millisecond, v)
	}
	return s
}

func TestDetectSaturations(t *testing.T) {
	// Windows: 40,50,100,100,60,100,40
	s := satSeries([]float64{40, 50, 100, 100, 60, 100, 40})
	spans := DetectSaturations(s, 95)
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Start != 100*time.Millisecond || spans[0].End != 200*time.Millisecond {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Start != 250*time.Millisecond || spans[1].End != 300*time.Millisecond {
		t.Fatalf("span 1 = %+v", spans[1])
	}
}

func TestDetectSaturationsOpenEnded(t *testing.T) {
	s := satSeries([]float64{40, 100, 100})
	spans := DetectSaturations(s, 95)
	if len(spans) != 1 || spans[0].End != 150*time.Millisecond {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestFilterMillibottlenecks(t *testing.T) {
	spans := []Span{
		{Start: 0, End: 50 * time.Millisecond},               // exactly min
		{Start: 0, End: 500 * time.Millisecond},              // in range
		{Start: 0, End: 5 * time.Second},                     // too long: conventional bottleneck
		{Start: 0, End: 10 * time.Millisecond},               // too short
		{Start: time.Second, End: time.Second + time.Second}, // exactly max
	}
	got := FilterMillibottlenecks(spans, 50*time.Millisecond, time.Second)
	if len(got) != 3 {
		t.Fatalf("filtered = %+v", got)
	}
}

func TestFindQueuePeaks(t *testing.T) {
	// Mostly small queues with one huge spike.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 5
	}
	vals[40] = 800
	peaks := FindQueuePeaks(satSeries(vals), 3, 10)
	if len(peaks) != 1 {
		t.Fatalf("peaks = %+v", peaks)
	}
	if peaks[0].Start != 2*time.Second || peaks[0].Len != 800 {
		t.Fatalf("peak = %+v", peaks[0])
	}
}

func TestFindQueuePeaksFloorSuppressesNoise(t *testing.T) {
	// Tiny values with tiny variance must not produce peaks below the
	// absolute floor.
	vals := []float64{0, 1, 0, 1, 2, 0, 1}
	if peaks := FindQueuePeaks(satSeries(vals), 1, 10); len(peaks) != 0 {
		t.Fatalf("noise produced peaks: %+v", peaks)
	}
}

func TestFindQueuePeaksEmpty(t *testing.T) {
	if peaks := FindQueuePeaks(stats.NewSeries(time.Millisecond), 3, 10); peaks != nil {
		t.Fatalf("empty series peaks = %v", peaks)
	}
}

func TestAttributeEvents(t *testing.T) {
	vlrt := stats.NewSeries(50 * time.Millisecond)
	vlrt.Incr(120 * time.Millisecond) // overlaps the span below
	vlrt.Incr(900 * time.Millisecond) // does not
	spans := []Span{{Start: 100 * time.Millisecond, End: 200 * time.Millisecond}}
	if got := AttributeEvents(vlrt, spans, 0); got != 0.5 {
		t.Fatalf("attribution = %v, want 0.5", got)
	}
	// With a generous tolerance both windows attribute.
	if got := AttributeEvents(vlrt, spans, time.Second); got != 1 {
		t.Fatalf("attribution with tolerance = %v, want 1", got)
	}
	if got := AttributeEvents(stats.NewSeries(vlrt.Width()), spans, 0); got != 0 {
		t.Fatalf("empty attribution = %v", got)
	}
}

func TestSpanOverlaps(t *testing.T) {
	s := Span{Start: 100 * time.Millisecond, End: 200 * time.Millisecond}
	if !s.Overlaps(150*time.Millisecond, 160*time.Millisecond, 0) {
		t.Fatal("contained interval does not overlap")
	}
	if s.Overlaps(300*time.Millisecond, 400*time.Millisecond, 0) {
		t.Fatal("disjoint interval overlaps")
	}
	if !s.Overlaps(300*time.Millisecond, 400*time.Millisecond, 150*time.Millisecond) {
		t.Fatal("tolerance not applied")
	}
	if s.Duration() != 100*time.Millisecond {
		t.Fatalf("Duration = %v", s.Duration())
	}
}

func TestCorrelatePeaks(t *testing.T) {
	a := satSeries([]float64{1, 1, 50, 1, 1, 40, 1})
	b := satSeries([]float64{2, 2, 60, 2, 2, 55, 2})
	if r := CorrelatePeaks(a, b); r < 0.9 {
		t.Fatalf("correlation = %v for co-moving peaks", r)
	}
	c := satSeries([]float64{50, 1, 1, 1, 50, 1, 1})
	if r := CorrelatePeaks(a, c); r > 0.5 {
		t.Fatalf("correlation = %v for unrelated peaks", r)
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	utilVals := make([]float64, 40)
	queueVals := make([]float64, 40)
	for i := range utilVals {
		utilVals[i] = 40
		queueVals[i] = 5
	}
	utilVals[1], utilVals[2] = 100, 100
	queueVals[1], queueVals[2] = 400, 500
	util := satSeries(utilVals)
	queue := satSeries(queueVals)
	vlrt := stats.NewSeries(50 * time.Millisecond)
	vlrt.Incr(80 * time.Millisecond)
	rep := Analyze(util, queue, vlrt, 95, 50*time.Millisecond, time.Second, 50*time.Millisecond)
	if len(rep.Saturations) != 1 {
		t.Fatalf("saturations = %+v", rep.Saturations)
	}
	if len(rep.QueuePeaks) == 0 {
		t.Fatalf("no queue peaks found")
	}
	if rep.VLRTAttribution != 1 {
		t.Fatalf("attribution = %v", rep.VLRTAttribution)
	}
}

func TestMergeSpans(t *testing.T) {
	spans := []Span{
		{Start: 500 * time.Millisecond, End: 600 * time.Millisecond},
		{Start: 100 * time.Millisecond, End: 200 * time.Millisecond},
		{Start: 180 * time.Millisecond, End: 250 * time.Millisecond}, // overlaps first
		{Start: 260 * time.Millisecond, End: 300 * time.Millisecond}, // within slack
	}
	got := MergeSpans(spans, 20*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("merged = %+v", got)
	}
	if got[0].Start != 100*time.Millisecond || got[0].End != 300*time.Millisecond {
		t.Fatalf("merged[0] = %+v", got[0])
	}
	if got[1].Start != 500*time.Millisecond {
		t.Fatalf("merged[1] = %+v", got[1])
	}
	if MergeSpans(nil, 0) != nil {
		t.Fatal("nil input not nil output")
	}
	// Input untouched.
	if spans[0].Start != 500*time.Millisecond {
		t.Fatal("input mutated")
	}
}

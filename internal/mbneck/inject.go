// Package mbneck provides millibottleneck tooling on both sides of the
// experiment: injectors that create transient full-saturation windows
// from the causes the paper catalogs (dirty-page flushing lives in
// internal/resource as the writeback daemon; this package adds Java GC,
// DVFS, VM-colocation and scripted stalls), and a detector implementing
// the paper's diagnosis methodology — find sub-second 100%-utilization
// windows and correlate them with queue peaks and VLRT windows.
package mbneck

import (
	"millibalance/internal/sim"
)

// Stallable is a resource whose progress can be frozen for a window —
// *resource.CPU satisfies it.
type Stallable interface {
	Stall(d sim.Time)
}

// Injector is a source of millibottlenecks that can be armed and
// disarmed.
type Injector interface {
	// Name identifies the injector in configs and reports.
	Name() string
	// Start arms the injector.
	Start()
	// Stop disarms it; an in-progress stall runs out naturally.
	Stop()
}

// PeriodicStalls stalls the target on a fixed period, modelling
// clocked causes: full Java garbage collections and DVFS power-state
// transitions (the paper's other VLRT sources). The paper's hardware
// DVFS slows the clock rather than halting it; a short full stall is the
// closest equivalent our frozen-progress CPU model exposes, and produces
// the same queue signature.
type PeriodicStalls struct {
	eng    *sim.Engine
	name   string
	target Stallable
	// Interval separates stall starts; Duration is each stall's length;
	// Jitter (0..1) randomizes both uniformly.
	Interval sim.Time
	Duration sim.Time
	Jitter   float64

	timer  sim.Timer
	armed  bool
	stalls int
}

// NewPeriodicStalls returns a periodic injector.
func NewPeriodicStalls(eng *sim.Engine, name string, target Stallable, interval, duration sim.Time, jitter float64) *PeriodicStalls {
	if target == nil {
		panic("mbneck: nil stall target")
	}
	if interval <= 0 || duration <= 0 {
		panic("mbneck: PeriodicStalls requires positive interval and duration")
	}
	return &PeriodicStalls{eng: eng, name: name, target: target, Interval: interval, Duration: duration, Jitter: jitter}
}

// Name implements Injector.
func (p *PeriodicStalls) Name() string { return p.name }

// Stalls reports how many stalls have fired.
func (p *PeriodicStalls) Stalls() int { return p.stalls }

// Start implements Injector.
func (p *PeriodicStalls) Start() {
	if p.armed {
		panic("mbneck: Start called twice")
	}
	p.armed = true
	p.arm()
}

func (p *PeriodicStalls) arm() {
	p.timer = p.eng.Schedule(p.eng.Jitter(p.Interval, p.Jitter), func() {
		p.stalls++
		p.target.Stall(p.eng.Jitter(p.Duration, p.Jitter))
		p.arm()
	})
}

// Stop implements Injector.
func (p *PeriodicStalls) Stop() {
	p.eng.Stop(p.timer)
	p.timer = sim.Timer{}
}

// RandomStalls stalls the target with exponential inter-arrivals and
// exponential durations, modelling VM-colocation interference (a noisy
// neighbour bursting onto the shared cores) and other unscheduled
// causes.
type RandomStalls struct {
	eng          *sim.Engine
	name         string
	target       Stallable
	MeanInterval sim.Time
	MeanDuration sim.Time

	timer  sim.Timer
	armed  bool
	stalls int
}

// NewRandomStalls returns a random injector.
func NewRandomStalls(eng *sim.Engine, name string, target Stallable, meanInterval, meanDuration sim.Time) *RandomStalls {
	if target == nil {
		panic("mbneck: nil stall target")
	}
	if meanInterval <= 0 || meanDuration <= 0 {
		panic("mbneck: RandomStalls requires positive means")
	}
	return &RandomStalls{eng: eng, name: name, target: target, MeanInterval: meanInterval, MeanDuration: meanDuration}
}

// Name implements Injector.
func (r *RandomStalls) Name() string { return r.name }

// Stalls reports how many stalls have fired.
func (r *RandomStalls) Stalls() int { return r.stalls }

// Start implements Injector.
func (r *RandomStalls) Start() {
	if r.armed {
		panic("mbneck: Start called twice")
	}
	r.armed = true
	r.arm()
}

func (r *RandomStalls) arm() {
	r.timer = r.eng.Schedule(r.eng.Exponential(r.MeanInterval), func() {
		r.stalls++
		r.target.Stall(r.eng.Exponential(r.MeanDuration))
		r.arm()
	})
}

// Stop implements Injector.
func (r *RandomStalls) Stop() {
	r.eng.Stop(r.timer)
	r.timer = sim.Timer{}
}

// StallEvent is one scripted stall.
type StallEvent struct {
	At       sim.Time
	Duration sim.Time
}

// ScriptedStalls plays back an exact stall schedule — the controlled
// scenario used by the zoomed-in experiments (Fig. 6/7/9/10/11/13 zoom
// into a window around one known millibottleneck).
type ScriptedStalls struct {
	eng    *sim.Engine
	name   string
	target Stallable
	events []StallEvent
	timers []sim.Timer
	fired  int
}

// NewScriptedStalls returns a scripted injector; the events are copied.
func NewScriptedStalls(eng *sim.Engine, name string, target Stallable, events []StallEvent) *ScriptedStalls {
	if target == nil {
		panic("mbneck: nil stall target")
	}
	copied := make([]StallEvent, len(events))
	copy(copied, events)
	return &ScriptedStalls{eng: eng, name: name, target: target, events: copied}
}

// Name implements Injector.
func (s *ScriptedStalls) Name() string { return s.name }

// Fired reports how many scripted stalls have fired.
func (s *ScriptedStalls) Fired() int { return s.fired }

// Start implements Injector.
func (s *ScriptedStalls) Start() {
	if s.timers != nil {
		panic("mbneck: Start called twice")
	}
	s.timers = make([]sim.Timer, 0, len(s.events))
	for _, ev := range s.events {
		ev := ev
		s.timers = append(s.timers, s.eng.At(ev.At, func() {
			s.fired++
			s.target.Stall(ev.Duration)
		}))
	}
}

// Stop implements Injector.
func (s *ScriptedStalls) Stop() {
	for _, tm := range s.timers {
		s.eng.Stop(tm)
	}
	s.timers = nil
}

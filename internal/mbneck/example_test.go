package mbneck_test

import (
	"fmt"
	"time"

	"millibalance/internal/mbneck"
	"millibalance/internal/stats"
)

func ExampleDetectSaturations() {
	// A CPU utilization series sampled in 50ms windows: healthy at 40%
	// except one 150ms full saturation — a millibottleneck.
	util := stats.NewSeries(50 * time.Millisecond)
	for i := 0; i < 20; i++ {
		v := 40.0
		if i >= 6 && i <= 8 {
			v = 100
		}
		util.Add(time.Duration(i)*50*time.Millisecond, v)
	}
	spans := mbneck.FilterMillibottlenecks(
		mbneck.DetectSaturations(util, 95),
		50*time.Millisecond, time.Second)
	for _, s := range spans {
		fmt.Printf("millibottleneck at %v lasting %v\n", s.Start, s.Duration())
	}
	// Output:
	// millibottleneck at 300ms lasting 150ms
}

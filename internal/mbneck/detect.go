package mbneck

import (
	"sort"
	"time"

	"millibalance/internal/stats"
)

// Span is a contiguous interval of saturated windows in a sampled
// series.
type Span struct {
	Start time.Duration
	End   time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Overlaps reports whether the span intersects [from, to) extended by
// tolerance on both sides.
func (s Span) Overlaps(from, to, tolerance time.Duration) bool {
	return s.Start <= to+tolerance && s.End >= from-tolerance
}

// DetectSaturations returns the spans of consecutive windows whose mean
// value reaches threshold — applied to a CPU-utilization series with
// threshold ≈95 this finds the transient saturations of Fig. 2c/6b.
func DetectSaturations(series *stats.Series, threshold float64) []Span {
	var spans []Span
	open := false
	var start time.Duration
	for i := 0; i < series.Len(); i++ {
		w := series.At(i)
		saturated := w.Count > 0 && w.Mean() >= threshold
		switch {
		case saturated && !open:
			open = true
			start = series.Start(i)
		case !saturated && open:
			open = false
			spans = append(spans, Span{Start: start, End: series.Start(i)})
		}
	}
	if open {
		spans = append(spans, Span{Start: start, End: series.Start(series.Len())})
	}
	return spans
}

// FilterMillibottlenecks keeps only spans in the millibottleneck range:
// longer than minDur (to drop single-sample noise) and shorter than
// maxDur (a longer saturation is a conventional bottleneck, not a
// millibottleneck).
func FilterMillibottlenecks(spans []Span, minDur, maxDur time.Duration) []Span {
	var out []Span
	for _, s := range spans {
		d := s.Duration()
		if d >= minDur && d <= maxDur {
			out = append(out, s)
		}
	}
	return out
}

// QueuePeak is a window whose queue length stands out from the series
// baseline.
type QueuePeak struct {
	Start time.Duration
	Len   float64
}

// FindQueuePeaks returns windows whose maximum exceeds
// mean + k×stddev of the per-window maxima (and an absolute floor),
// the paper's "large spikes in the queue length graph".
func FindQueuePeaks(series *stats.Series, k, floor float64) []QueuePeak {
	var o stats.Online
	for i := 0; i < series.Len(); i++ {
		if w := series.At(i); w.Count > 0 {
			o.Add(w.Max)
		}
	}
	if o.N() == 0 {
		return nil
	}
	threshold := o.Mean() + k*o.StdDev()
	if threshold < floor {
		threshold = floor
	}
	var peaks []QueuePeak
	for i := 0; i < series.Len(); i++ {
		w := series.At(i)
		if w.Count > 0 && w.Max > threshold {
			peaks = append(peaks, QueuePeak{Start: series.Start(i), Len: w.Max})
		}
	}
	return peaks
}

// AttributeEvents reports the fraction of non-empty event windows (e.g.
// VLRT requests per 50 ms) that overlap any of the given saturation
// spans, each extended by tolerance — the paper's correlation step
// linking VLRT clusters to millibottlenecks.
func AttributeEvents(events *stats.Series, spans []Span, tolerance time.Duration) float64 {
	total, attributed := 0, 0
	for i := 0; i < events.Len(); i++ {
		if events.At(i).Count == 0 {
			continue
		}
		total++
		from := events.Start(i)
		to := from + events.Width()
		for _, s := range spans {
			if s.Overlaps(from, to, tolerance) {
				attributed++
				break
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(attributed) / float64(total)
}

// CorrelatePeaks returns the Pearson correlation between two series'
// per-window maxima over their common prefix — used to link queue peaks
// across tiers (the push-back wave of Fig. 2b) and queue peaks to CPU
// saturation.
func CorrelatePeaks(a, b *stats.Series) float64 {
	return stats.Pearson(a.Maxes(), b.Maxes())
}

// Report summarizes a detection pass over one server.
type Report struct {
	// Saturations are the detected millibottleneck spans.
	Saturations []Span
	// QueuePeaks are the outstanding queue windows.
	QueuePeaks []QueuePeak
	// VLRTAttribution is the fraction of VLRT windows overlapping a
	// saturation span.
	VLRTAttribution float64
}

// Analyze runs the full per-server methodology: detect transient CPU
// saturations, find queue peaks, and attribute VLRT windows to the
// saturations.
func Analyze(util, queue, vlrt *stats.Series, satThreshold float64, minDur, maxDur, tolerance time.Duration) Report {
	sats := FilterMillibottlenecks(DetectSaturations(util, satThreshold), minDur, maxDur)
	return Report{
		Saturations:     sats,
		QueuePeaks:      FindQueuePeaks(queue, 3, 10),
		VLRTAttribution: AttributeEvents(vlrt, sats, tolerance),
	}
}

// MergeSpans unions overlapping or adjacent spans (gap ≤ slack) from an
// arbitrary list, returning them sorted by start time. Use it to fold
// per-server saturation spans into cluster-wide millibottleneck windows.
func MergeSpans(spans []Span, slack time.Duration) []Span {
	if len(spans) == 0 {
		return nil
	}
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []Span{sorted[0]}
	for _, s := range sorted[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End+slack {
			if s.End > last.End {
				last.End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"millibalance/internal/stats"
)

// Event kinds recorded in an EventLog.
const (
	// KindDecision is one balancer dispatch: the chosen backend plus
	// every candidate's lb_value and state at decision time (the
	// Figs. 10–11 table, captured per decision instead of sampled).
	KindDecision = "decision"
	// KindState is one candidate state transition of the balancer's
	// 3-state machine (Available/Busy/Error).
	KindState = "state"
	// KindReject is a dispatch the balancer gave up on (no endpoint
	// within the mechanism's budget).
	KindReject = "reject"
	// KindOnset is emitted by the online detector the moment the first
	// saturated window of a (potential) millibottleneck is confirmed.
	KindOnset = "mb_onset"
	// KindMillibottleneck is emitted when a saturation span closes
	// inside the millibottleneck duration band, with the queue-peak
	// correlation attached.
	KindMillibottleneck = "millibottleneck"
	// KindFaultStart marks the opening of one injected fault window
	// (internal/faults): Source is the injector, Backend the target,
	// Fault the shape kind and Window the window length.
	KindFaultStart = "fault_start"
	// KindFaultEnd marks the close of that window.
	KindFaultEnd = "fault_end"
	// KindShed is a request fast-failed with 503 at the proxy door
	// because the worker pool stayed saturated past the shed budget —
	// the resilience layer's alternative to piling blocked goroutines.
	KindShed = "shed"
	// KindRetry is one resilience-layer retry hop after an upstream
	// failure (each hop spends one global retry-budget token).
	KindRetry = "retry"
	// KindAdmissionDrop is a request shed by the overload-control
	// plane (internal/admission): Reason carries why (priority,
	// queue_full, max_wait, codel) and Class the request's priority
	// class.
	KindAdmissionDrop = "admission_drop"
)

// CandidateView is one balancer candidate's load-balancing state as
// seen at a single decision.
type CandidateView struct {
	Name          string  `json:"name"`
	LBValue       float64 `json:"lb_value"`
	State         string  `json:"state"`
	InFlight      int     `json:"in_flight"`
	FreeEndpoints int     `json:"free_endpoints"`

	// Probe fields record the freshest probe-pool sample the prequal
	// policy saw for this candidate at decision time; absent for
	// non-probing policies and for candidates whose pool aged out.
	ProbeInFlight  float64 `json:"probe_in_flight,omitempty"`
	ProbeLatencyMs float64 `json:"probe_latency_ms,omitempty"`
	ProbeAgeMs     float64 `json:"probe_age_ms,omitempty"`
	ProbeFresh     bool    `json:"probe_fresh,omitempty"`
}

// Event is one observability event. Kind determines which optional
// fields are populated.
type Event struct {
	T    time.Duration `json:"t"`
	Kind string        `json:"kind"`
	// Source names the emitter: the balancer's host for decision /
	// state / reject events, the monitored server for detector events.
	Source string `json:"source,omitempty"`

	// Decision fields.
	Chosen     string          `json:"chosen,omitempty"`
	Candidates []CandidateView `json:"candidates,omitempty"`

	// State-transition fields.
	Backend string `json:"backend,omitempty"`
	From    string `json:"from,omitempty"`
	To      string `json:"to,omitempty"`

	// Detector fields.
	SpanStart   time.Duration `json:"span_start,omitempty"`
	SpanEnd     time.Duration `json:"span_end,omitempty"`
	QueuePeak   float64       `json:"queue_peak,omitempty"`
	QueuePeakAt time.Duration `json:"queue_peak_at,omitempty"`

	// Fault-injection fields.
	Fault  string        `json:"fault,omitempty"`
	Window time.Duration `json:"window,omitempty"`

	// Admission-drop fields.
	Reason string `json:"reason,omitempty"`
	Class  string `json:"class,omitempty"`
}

// EventLog collects events into a bounded ring, overwriting the oldest
// when full. All methods are safe for concurrent use and nil-safe.
type EventLog struct {
	mu        sync.Mutex
	capacity  int
	ring      []Event
	next      int
	full      bool
	appended  uint64
	overwrote uint64
	hook      func(Event)
}

// NewEventLog returns a log bounded at capacity events (minimum one).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{capacity: capacity}
}

// Append records an event. Nil-safe.
func (l *EventLog) Append(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.appended++
	if len(l.ring) < l.capacity {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % l.capacity
		l.full = true
		l.overwrote++
	}
	hook := l.hook
	l.mu.Unlock()
	if hook != nil {
		hook(ev)
	}
}

// SetAppendHook registers a single callback invoked after every Append,
// outside the log's lock — the subscription point for online consumers
// such as the adaptive control plane, which may react by appending
// further events or actuating the balancer. Nil-safe.
func (l *EventLog) SetAppendHook(hook func(Event)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.hook = hook
	l.mu.Unlock()
}

// Len reports stored events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Appended reports the lifetime event count.
func (l *EventLog) Appended() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Overwritten reports events evicted by the ring bound.
func (l *EventLog) Overwritten() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overwrote
}

// Events returns the stored events oldest-first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if l.full {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
		return out
	}
	return append(out, l.ring...)
}

// Kind returns the stored events of one kind, oldest-first.
func (l *EventLog) Kind(kind string) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL writes the stored events oldest-first as JSON Lines.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range l.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: encode event: %w", err)
		}
	}
	return nil
}

// LBValueSeries rebuilds per-candidate lb_value time series from
// decision events alone — the Figs. 10–11 curves, with no sampler
// involved. Each decision contributes every candidate's lb_value at
// the decision's time.
func LBValueSeries(events []Event, width time.Duration) map[string]*stats.Series {
	out := make(map[string]*stats.Series)
	for _, ev := range events {
		if ev.Kind != KindDecision {
			continue
		}
		for _, c := range ev.Candidates {
			s := out[c.Name]
			if s == nil {
				s = stats.NewSeries(width)
				out[c.Name] = s
			}
			s.Add(ev.T, c.LBValue)
		}
	}
	return out
}

package obs

import (
	"sync"
	"testing"
	"time"
)

// Ring wraparound stress under concurrent append/snapshot, run with
// -race in CI. Both rings copy elements by value while holding their
// mutex, so a snapshot taken mid-wraparound must still be a contiguous
// oldest-first run of the appended sequence — no tears (reordered
// elements) and no gaps (elements skipped while the write cursor laps
// the reader). The tests pin that invariant by encoding a sequence
// number into each element and checking every snapshot is consecutive;
// any torn window shows up as a sequence jump, and any unsynchronized
// access shows up as a race report.

// checkContiguous fails if seq is not a strictly +1 run.
func checkContiguous(t *testing.T, what string, seq []uint64) {
	t.Helper()
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1]+1 {
			t.Fatalf("%s: torn snapshot: element %d has seq %d after %d (want %d)",
				what, i, seq[i], seq[i-1], seq[i-1]+1)
		}
	}
}

func TestEventLogWraparoundConcurrentSnapshots(t *testing.T) {
	const capacity = 64
	const appends = 50_000
	l := NewEventLog(capacity)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := l.Events()
				if len(evs) > capacity {
					t.Errorf("snapshot has %d events, capacity %d", len(evs), capacity)
					return
				}
				seq := make([]uint64, len(evs))
				for i, ev := range evs {
					seq[i] = uint64(ev.T)
				}
				checkContiguous(t, "events", seq)
			}
		}()
	}

	// The appender wraps the 64-slot ring ~780 times while snapshots
	// run, so reads land on every cursor position.
	for i := 1; i <= appends; i++ {
		l.Append(Event{T: time.Duration(i), Kind: KindDecision})
	}
	close(stop)
	wg.Wait()

	if got := l.Appended(); got != appends {
		t.Fatalf("Appended() = %d, want %d", got, appends)
	}
	if got := l.Overwritten(); got != appends-capacity {
		t.Fatalf("Overwritten() = %d, want %d", got, appends-capacity)
	}
	final := l.Events()
	if len(final) != capacity {
		t.Fatalf("final snapshot has %d events, want %d", len(final), capacity)
	}
	if first := uint64(final[0].T); first != appends-capacity+1 {
		t.Fatalf("final snapshot starts at seq %d, want %d", first, appends-capacity+1)
	}
}

func TestTracerWraparoundConcurrentSnapshots(t *testing.T) {
	const capacity = 64
	const finishes = 50_000
	tr := NewTracer(capacity)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				spans := tr.Spans()
				seq := make([]uint64, len(spans))
				for i, sp := range spans {
					seq[i] = sp.RequestID
					// A recorded span must be complete: Finish stamps
					// EndAt before the ring copy, so a zero end on a
					// nonzero start is a torn element.
					if sp.EndAt < sp.StartAt {
						t.Errorf("span %d torn: EndAt %v < StartAt %v", sp.RequestID, sp.EndAt, sp.StartAt)
						return
					}
				}
				checkContiguous(t, "spans", seq)
			}
		}()
	}

	for i := 1; i <= finishes; i++ {
		sp := tr.Start(uint64(i), time.Duration(i))
		sp.Enter(StageWebThread, time.Duration(i))
		tr.Finish(sp, time.Duration(i)+time.Microsecond, true)
	}
	close(stop)
	wg.Wait()

	if got := tr.Finished(); got != finishes {
		t.Fatalf("Finished() = %d, want %d", got, finishes)
	}
	final := tr.Spans()
	if len(final) != capacity {
		t.Fatalf("final snapshot has %d spans, want %d", len(final), capacity)
	}
	if first := final[0].RequestID; first != finishes-capacity+1 {
		t.Fatalf("final snapshot starts at id %d, want %d", first, finishes-capacity+1)
	}
}

// Package obs is the observability layer: request-lifecycle span
// tracing, the balancer decision log, and online millibottleneck
// detection.
//
// The paper's diagnostic method is exactly this kind of instrumentation:
// it decomposes each very-long-response-time (VLRT) request into
// retransmission waits and queue amplification by correlating
// fine-grained per-tier measurements (Section III), and it explains the
// load-balancer instability by reading the lb_value table at decision
// time (Figs. 10–11). This package makes both first-class signals
// recorded while the run progresses, instead of aggregates assembled
// afterwards:
//
//   - Span: one request's timeline decomposed into typed stages
//     (retransmit wait, web accept-queue wait, web CPU, get_endpoint
//     sleep/retry, app accept-queue wait, app thread, DB call,
//     stall-frozen time). Tracer collects completed spans in a bounded
//     ring.
//   - Event / EventLog: every balancer routing decision with each
//     candidate's lb_value and 3-state-machine state at decision time,
//     every candidate state transition, and every online detection.
//   - Detector: a streaming version of mbneck.Analyze that consumes
//     utilization and queue samples as they are taken and emits
//     detection events while the millibottleneck is still fresh.
//
// Every entry point is nil-safe: a nil *Span, *Tracer or *EventLog
// turns the corresponding call into a no-op, so instrumented code pays
// only a nil check when observability is disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Stage is one typed stage of a request's lifecycle timeline.
type Stage int

const (
	// StageRetransmitWait is the client-side wait between a dropped
	// connection attempt and the attempt that was admitted (or the
	// give-up) — the paper's source of the 1/2/3 s VLRT clusters.
	StageRetransmitWait Stage = iota
	// StageWebAcceptQueue is time spent in the web server's accept
	// backlog waiting for a worker thread.
	StageWebAcceptQueue
	// StageWebCPU is the web server's CPU processing (including run-queue
	// wait, excluding stall-frozen time).
	StageWebCPU
	// StageGetEndpoint is time inside the balancer's endpoint
	// acquisition: mechanism sleeps/retries and inter-sweep pauses.
	StageGetEndpoint
	// StageLink is inter-tier network transit.
	StageLink
	// StageAppAcceptQueue is the wait for an application-server servlet
	// thread.
	StageAppAcceptQueue
	// StageAppThread is the application server's CPU processing
	// (including run-queue wait, excluding DB calls and stall-frozen
	// time).
	StageAppThread
	// StageDBCall is the database phase: connection-pool wait, link
	// transit and query service.
	StageDBCall
	// StageStallFrozen is progress frozen by writeback (or injected)
	// stall windows while the request held a CPU burst.
	StageStallFrozen
	// StageWebThread is web worker-thread occupancy, from acquiring the
	// worker to responding. It OVERLAPS the downstream stages (the
	// worker stays held across get_endpoint and the app/db round trip)
	// and is therefore excluded from the timeline sum; it exists because
	// worker occupancy is how queue amplification reaches the web tier.
	StageWebThread

	numStages
)

// stageNames are the JSON/report names, index-aligned with the Stage
// constants.
var stageNames = [numStages]string{
	"retransmit_wait",
	"web_accept_queue",
	"web_cpu",
	"get_endpoint",
	"link",
	"app_accept_queue",
	"app_thread",
	"db_call",
	"stall_frozen",
	"web_thread",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("Stage(%d)", int(s))
	}
	return stageNames[s]
}

// TimelineStages lists the non-overlapping stages, in request-lifecycle
// order. Their durations partition the request's response time (up to
// instrumentation gaps), so summing them decomposes a VLRT request the
// way the paper's Section III analysis does.
func TimelineStages() []Stage {
	return []Stage{
		StageRetransmitWait, StageWebAcceptQueue, StageWebCPU,
		StageGetEndpoint, StageLink, StageAppAcceptQueue,
		StageAppThread, StageDBCall, StageStallFrozen,
	}
}

// Span is one request's recorded lifecycle. The zero value is unusable;
// spans are created by Tracer.Start. A span is owned by the single
// request flowing through the system and must not be shared across
// requests; Tracer.Finish copies it into the ring under the tracer's
// lock.
type Span struct {
	// RequestID identifies the request.
	RequestID uint64
	// StartAt and EndAt bound the request in run time.
	StartAt, EndAt time.Duration
	// OK mirrors the request outcome.
	OK bool

	durs   [numStages]time.Duration
	openAt [numStages]time.Duration
	opened [numStages]bool
}

// Enter marks the start of a stage at now. Entering an already-open
// stage is a no-op (the first entry wins). Nil-safe.
func (s *Span) Enter(st Stage, now time.Duration) {
	if s == nil || s.opened[st] {
		return
	}
	s.opened[st] = true
	s.openAt[st] = now
}

// Exit closes an open stage at now, accumulating the elapsed time.
// Exiting a stage that is not open is a no-op. Nil-safe.
func (s *Span) Exit(st Stage, now time.Duration) {
	if s == nil || !s.opened[st] {
		return
	}
	s.opened[st] = false
	if d := now - s.openAt[st]; d > 0 {
		s.durs[st] += d
	}
}

// Add accumulates d directly into a stage, for durations known without
// an open/close pair (link hops, stall-frozen attribution). Nil-safe.
func (s *Span) Add(st Stage, d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.durs[st] += d
}

// Duration returns the accumulated time in a stage.
func (s *Span) Duration(st Stage) time.Duration {
	if s == nil {
		return 0
	}
	return s.durs[st]
}

// ResponseTime returns the span's total lifetime.
func (s *Span) ResponseTime() time.Duration { return s.EndAt - s.StartAt }

// Breakdown is the per-stage decomposition in exportable form. Zero
// stages are omitted from JSON.
type Breakdown struct {
	RetransmitWait time.Duration `json:"retransmit_wait,omitempty"`
	WebAcceptQueue time.Duration `json:"web_accept_queue,omitempty"`
	WebCPU         time.Duration `json:"web_cpu,omitempty"`
	GetEndpoint    time.Duration `json:"get_endpoint,omitempty"`
	Link           time.Duration `json:"link,omitempty"`
	AppAcceptQueue time.Duration `json:"app_accept_queue,omitempty"`
	AppThread      time.Duration `json:"app_thread,omitempty"`
	DBCall         time.Duration `json:"db_call,omitempty"`
	StallFrozen    time.Duration `json:"stall_frozen,omitempty"`
	WebThread      time.Duration `json:"web_thread,omitempty"`
}

// Breakdown extracts the span's stage durations.
func (s *Span) Breakdown() Breakdown {
	if s == nil {
		return Breakdown{}
	}
	return Breakdown{
		RetransmitWait: s.durs[StageRetransmitWait],
		WebAcceptQueue: s.durs[StageWebAcceptQueue],
		WebCPU:         s.durs[StageWebCPU],
		GetEndpoint:    s.durs[StageGetEndpoint],
		Link:           s.durs[StageLink],
		AppAcceptQueue: s.durs[StageAppAcceptQueue],
		AppThread:      s.durs[StageAppThread],
		DBCall:         s.durs[StageDBCall],
		StallFrozen:    s.durs[StageStallFrozen],
		WebThread:      s.durs[StageWebThread],
	}
}

// Get returns the breakdown's duration for a timeline stage.
func (b Breakdown) Get(st Stage) time.Duration {
	switch st {
	case StageRetransmitWait:
		return b.RetransmitWait
	case StageWebAcceptQueue:
		return b.WebAcceptQueue
	case StageWebCPU:
		return b.WebCPU
	case StageGetEndpoint:
		return b.GetEndpoint
	case StageLink:
		return b.Link
	case StageAppAcceptQueue:
		return b.AppAcceptQueue
	case StageAppThread:
		return b.AppThread
	case StageDBCall:
		return b.DBCall
	case StageStallFrozen:
		return b.StallFrozen
	case StageWebThread:
		return b.WebThread
	default:
		return 0
	}
}

// TimelineSum returns the sum of the non-overlapping timeline stages —
// the part of the response time the decomposition accounts for.
func (b Breakdown) TimelineSum() time.Duration {
	var sum time.Duration
	for _, st := range TimelineStages() {
		sum += b.Get(st)
	}
	return sum
}

// Dominant returns the largest timeline stage and its duration.
func (b Breakdown) Dominant() (Stage, time.Duration) {
	best, bestD := StageRetransmitWait, time.Duration(-1)
	for _, st := range TimelineStages() {
		if d := b.Get(st); d > bestD {
			best, bestD = st, d
		}
	}
	return best, bestD
}

// Coverage reports what fraction of rt the timeline stages account for
// (zero when rt is zero).
func (b Breakdown) Coverage(rt time.Duration) float64 {
	if rt <= 0 {
		return 0
	}
	return float64(b.TimelineSum()) / float64(rt)
}

// spanRecord is the JSONL wire form of a completed span.
type spanRecord struct {
	ID     uint64        `json:"id"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	OK     bool          `json:"ok"`
	Stages Breakdown     `json:"stages"`
}

// Tracer collects completed spans into a bounded ring: when the
// capacity is reached the oldest spans are overwritten, so a live
// system keeps the most recent history. All methods are safe for
// concurrent use and nil-safe.
type Tracer struct {
	mu        sync.Mutex
	capacity  int
	ring      []Span
	next      int
	full      bool
	started   uint64
	finished  uint64
	overwrote uint64
}

// NewTracer returns a tracer bounded at capacity spans (minimum one).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity}
}

// Start opens a span for a request at now. It returns nil when the
// tracer is nil, so disabled tracing costs callers only nil checks.
func (t *Tracer) Start(id uint64, now time.Duration) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.started++
	t.mu.Unlock()
	return &Span{RequestID: id, StartAt: now}
}

// Finish closes any stages still open, stamps the end time and outcome,
// and records the span into the ring. Nil tracer or span is a no-op.
func (t *Tracer) Finish(sp *Span, now time.Duration, ok bool) {
	if t == nil || sp == nil {
		return
	}
	for st := Stage(0); st < numStages; st++ {
		sp.Exit(st, now)
	}
	sp.EndAt = now
	sp.OK = ok
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished++
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, *sp)
		return
	}
	t.ring[t.next] = *sp
	t.next = (t.next + 1) % t.capacity
	t.full = true
	t.overwrote++
}

// Len reports stored spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Started and Finished report lifetime counters.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// Finished reports how many spans completed (recorded or overwritten).
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished
}

// Overwritten reports spans evicted by the ring bound.
func (t *Tracer) Overwritten() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overwrote
}

// Spans returns the stored spans oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
		return out
	}
	return append(out, t.ring...)
}

// WriteJSONL writes the stored spans oldest-first as JSON Lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range t.Spans() {
		rec := spanRecord{ID: sp.RequestID, Start: sp.StartAt, End: sp.EndAt, OK: sp.OK, Stages: sp.Breakdown()}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: encode span: %w", err)
		}
	}
	return nil
}

package obs

import (
	"sync"
	"time"

	"millibalance/internal/mbneck"
	"millibalance/internal/stats"
)

// DetectorConfig parameterizes an online Detector. The defaults mirror
// the offline analysis used by the experiment harness
// (mbneck.DetectSaturations at 95 % over 50 ms windows, millibottleneck
// band 50 ms – 2 s, queue peaks at mean + 3σ with floor 10).
type DetectorConfig struct {
	// Window is the aggregation window width.
	Window time.Duration
	// SatThreshold is the utilization mean (percent) at or above which
	// a window counts as saturated.
	SatThreshold float64
	// MinDuration / MaxDuration bound the millibottleneck band: shorter
	// spans are sampling noise, longer ones conventional bottlenecks.
	MinDuration time.Duration
	MaxDuration time.Duration
	// QueueK and QueueFloor define queue peaks: a window whose queue
	// maximum exceeds max(mean + QueueK×stddev, QueueFloor) of the
	// maxima seen so far.
	QueueK     float64
	QueueFloor float64
	// Tolerance bounds how far back a queue peak may lie and still be
	// correlated with a closing saturation span.
	Tolerance time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Window <= 0 {
		c.Window = 50 * time.Millisecond
	}
	if c.SatThreshold == 0 {
		c.SatThreshold = 95
	}
	if c.MinDuration == 0 {
		c.MinDuration = 50 * time.Millisecond
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = 2 * time.Second
	}
	if c.QueueK == 0 {
		c.QueueK = 3
	}
	if c.QueueFloor == 0 {
		c.QueueFloor = 10
	}
	if c.Tolerance == 0 {
		c.Tolerance = 2500 * time.Millisecond
	}
	return c
}

// queuePeakMark is a detected queue peak kept for span correlation.
type queuePeakMark struct {
	start time.Duration
	max   float64
}

// Detector is the streaming counterpart of mbneck's offline analysis:
// it consumes utilization and queue samples while the run progresses
// and emits KindOnset / KindMillibottleneck events into an EventLog as
// the evidence arrives, instead of waiting for the run to finish.
//
// Saturation-span detection reproduces the offline pipeline exactly:
// feeding the same (t, value) utilization samples to ObserveUtil that a
// stats.Series received through Add yields — after Finish — the same
// spans as
//
//	mbneck.FilterMillibottlenecks(
//	    mbneck.DetectSaturations(series, SatThreshold),
//	    MinDuration, MaxDuration)
//
// provided sample times are non-decreasing (they are: the pollers
// sample on a monotone schedule). A window is evaluated once the first
// sample of a later window arrives, so detection lags the physical
// onset by at most one window plus one sampling interval.
//
// Queue peaks necessarily differ from the offline FindQueuePeaks in
// baseline: offline uses the whole run's mean + k·σ, a streaming
// detector only knows the past, so the baseline is the running mean +
// k·σ of per-window maxima finalized so far. Peaks are kept for
// Tolerance and attached to the millibottleneck event that closes
// nearest to them.
//
// All methods are safe for concurrent use and nil-safe.
type Detector struct {
	mu     sync.Mutex
	cfg    DetectorConfig
	source string
	log    *EventLog

	// Utilization window under accumulation.
	started bool
	cur     int
	count   uint64
	sum     float64

	// Open saturation span.
	open      bool
	openStart time.Duration

	spans []mbneck.Span

	// Queue window under accumulation + running baseline.
	qStarted bool
	qCur     int
	qCount   uint64
	qMax     float64
	qStats   stats.Online
	qPeaks   []queuePeakMark
}

// NewDetector returns a streaming detector for one monitored source
// (server name), emitting events into log (which may be nil to only
// collect spans). Zero config fields take the offline-analysis
// defaults.
func NewDetector(source string, cfg DetectorConfig, log *EventLog) *Detector {
	return &Detector{cfg: cfg.withDefaults(), source: source, log: log}
}

// ObserveUtil feeds one utilization sample (percent) taken at t.
// Nil-safe.
func (d *Detector) ObserveUtil(t time.Duration, v float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if t < 0 {
		t = 0
	}
	idx := int(t / d.cfg.Window)
	if !d.started {
		d.started = true
		d.cur = idx
	}
	if idx < d.cur {
		// Late sample: fold into the window under accumulation rather
		// than rewriting finalized history.
		idx = d.cur
	}
	for d.cur < idx {
		d.finalizeWindow(t)
		d.cur++
	}
	d.count++
	d.sum += v
}

// finalizeWindow evaluates the window under accumulation (d.cur) and
// resets the accumulator. now is the sample time that supplied the
// evidence, used as the emitted event's timestamp. Callers hold d.mu.
func (d *Detector) finalizeWindow(now time.Duration) {
	saturated := d.count > 0 && d.sum/float64(d.count) >= d.cfg.SatThreshold
	start := time.Duration(d.cur) * d.cfg.Window
	switch {
	case saturated && !d.open:
		d.open = true
		d.openStart = start
		d.log.Append(Event{T: now, Kind: KindOnset, Source: d.source, SpanStart: start})
	case !saturated && d.open:
		d.open = false
		d.closeSpan(mbneck.Span{Start: d.openStart, End: start}, now)
	}
	d.count, d.sum = 0, 0
}

// closeSpan applies the millibottleneck duration band and, when the
// span qualifies, records it and emits the detection event with the
// nearest recent queue peak attached. Callers hold d.mu.
func (d *Detector) closeSpan(sp mbneck.Span, now time.Duration) {
	if dur := sp.Duration(); dur < d.cfg.MinDuration || dur > d.cfg.MaxDuration {
		return
	}
	d.spans = append(d.spans, sp)
	ev := Event{T: now, Kind: KindMillibottleneck, Source: d.source, SpanStart: sp.Start, SpanEnd: sp.End}
	if pk, ok := d.nearestPeak(sp); ok {
		ev.QueuePeak = pk.max
		ev.QueuePeakAt = pk.start
	}
	d.log.Append(ev)
}

// nearestPeak finds the retained queue peak closest to the span, if any
// lies within Tolerance of it. Callers hold d.mu.
func (d *Detector) nearestPeak(sp mbneck.Span) (queuePeakMark, bool) {
	best, bestDist := queuePeakMark{}, time.Duration(-1)
	for _, pk := range d.qPeaks {
		var dist time.Duration
		switch {
		case pk.start < sp.Start:
			dist = sp.Start - pk.start
		case pk.start > sp.End:
			dist = pk.start - sp.End
		}
		if dist <= d.cfg.Tolerance && (bestDist < 0 || dist < bestDist) {
			best, bestDist = pk, dist
		}
	}
	return best, bestDist >= 0
}

// ObserveQueue feeds one queue-length sample taken at t. Nil-safe.
func (d *Detector) ObserveQueue(t time.Duration, v float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if t < 0 {
		t = 0
	}
	idx := int(t / d.cfg.Window)
	if !d.qStarted {
		d.qStarted = true
		d.qCur = idx
	}
	if idx < d.qCur {
		idx = d.qCur
	}
	for d.qCur < idx {
		d.finalizeQueueWindow()
		d.qCur++
	}
	d.qCount++
	if v > d.qMax || d.qCount == 1 {
		d.qMax = v
	}
}

// finalizeQueueWindow closes the queue window under accumulation,
// testing it against the running peak baseline. Callers hold d.mu.
func (d *Detector) finalizeQueueWindow() {
	if d.qCount > 0 {
		threshold := d.qStats.Mean() + d.cfg.QueueK*d.qStats.StdDev()
		if threshold < d.cfg.QueueFloor {
			threshold = d.cfg.QueueFloor
		}
		start := time.Duration(d.qCur) * d.cfg.Window
		if d.qStats.N() > 0 && d.qMax > threshold {
			d.qPeaks = append(d.qPeaks, queuePeakMark{start: start, max: d.qMax})
			// Prune peaks too old to ever correlate again.
			cutoff := start - 2*d.cfg.Tolerance
			for len(d.qPeaks) > 0 && d.qPeaks[0].start < cutoff {
				d.qPeaks = d.qPeaks[1:]
			}
		}
		d.qStats.Add(d.qMax)
	}
	d.qCount, d.qMax = 0, 0
}

// Finish flushes the windows still under accumulation and closes a
// trailing open span at the start of the window following the last
// sampled one — exactly where the offline DetectSaturations closes it
// (series.Start(series.Len())). Call once when sampling ends; further
// samples after Finish are not supported. Nil-safe.
func (d *Detector) Finish() {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.qStarted {
		d.finalizeQueueWindow()
	}
	if !d.started {
		return
	}
	end := time.Duration(d.cur+1) * d.cfg.Window
	d.finalizeWindow(end)
	if d.open {
		d.open = false
		d.closeSpan(mbneck.Span{Start: d.openStart, End: end}, end)
	}
}

// Saturations returns the millibottleneck spans detected so far,
// oldest-first. Nil-safe.
func (d *Detector) Saturations() []mbneck.Span {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]mbneck.Span, len(d.spans))
	copy(out, d.spans)
	return out
}

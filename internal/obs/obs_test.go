package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"millibalance/internal/mbneck"
	"millibalance/internal/stats"
)

func TestSpanStagesAndBreakdown(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start(42, 0)
	if sp == nil {
		t.Fatal("Start returned nil span")
	}
	sp.Enter(StageRetransmitWait, 100*time.Millisecond)
	sp.Exit(StageRetransmitWait, 1100*time.Millisecond)
	sp.Enter(StageWebThread, 1100*time.Millisecond)
	sp.Add(StageWebCPU, 5*time.Millisecond)
	sp.Add(StageLink, 2*time.Millisecond)
	sp.Enter(StageDBCall, 1110*time.Millisecond)
	sp.Exit(StageDBCall, 1150*time.Millisecond)
	tr.Finish(sp, 1200*time.Millisecond, true)

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	got := spans[0]
	if got.RequestID != 42 || !got.OK || got.ResponseTime() != 1200*time.Millisecond {
		t.Fatalf("span header: %+v", got)
	}
	b := got.Breakdown()
	if b.RetransmitWait != time.Second {
		t.Fatalf("retransmit wait %v", b.RetransmitWait)
	}
	// Finish closes stages still open: web thread ran 1100→1200 ms.
	if b.WebThread != 100*time.Millisecond {
		t.Fatalf("web thread %v", b.WebThread)
	}
	wantSum := time.Second + 5*time.Millisecond + 2*time.Millisecond + 40*time.Millisecond
	if b.TimelineSum() != wantSum {
		t.Fatalf("timeline sum %v, want %v (web thread must be excluded)", b.TimelineSum(), wantSum)
	}
	if st, d := b.Dominant(); st != StageRetransmitWait || d != time.Second {
		t.Fatalf("dominant %v/%v", st, d)
	}
	if cov := b.Coverage(got.ResponseTime()); cov < 0.87 || cov > 0.88 {
		t.Fatalf("coverage %.3f", cov)
	}
}

func TestSpanEnterExitEdgeCases(t *testing.T) {
	sp := &Span{}
	sp.Exit(StageDBCall, time.Second) // exit without enter: no-op
	if sp.Duration(StageDBCall) != 0 {
		t.Fatal("exit without enter recorded time")
	}
	sp.Enter(StageDBCall, 10*time.Millisecond)
	sp.Enter(StageDBCall, 50*time.Millisecond) // re-enter: first wins
	sp.Exit(StageDBCall, 30*time.Millisecond)
	if sp.Duration(StageDBCall) != 20*time.Millisecond {
		t.Fatalf("db call %v", sp.Duration(StageDBCall))
	}
	sp.Add(StageLink, -time.Second) // negative add: no-op
	if sp.Duration(StageLink) != 0 {
		t.Fatal("negative Add recorded time")
	}

	var nilSpan *Span
	nilSpan.Enter(StageWebCPU, 0)
	nilSpan.Exit(StageWebCPU, time.Second)
	nilSpan.Add(StageWebCPU, time.Second)
	if nilSpan.Duration(StageWebCPU) != 0 || nilSpan.Breakdown() != (Breakdown{}) {
		t.Fatal("nil span not inert")
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for st := Stage(0); st < numStages; st++ {
		name := st.String()
		if name == "" || seen[name] {
			t.Fatalf("stage %d name %q duplicated or empty", st, name)
		}
		seen[name] = true
	}
	if Stage(99).String() != "Stage(99)" {
		t.Fatalf("out-of-range name %q", Stage(99).String())
	}
	if n := len(TimelineStages()); n != int(numStages)-1 {
		t.Fatalf("timeline stages %d, want all but web_thread (%d)", n, int(numStages)-1)
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		sp := tr.Start(uint64(i), time.Duration(i)*time.Second)
		tr.Finish(sp, time.Duration(i+1)*time.Second, true)
	}
	if tr.Len() != 3 || tr.Started() != 5 || tr.Finished() != 5 || tr.Overwritten() != 2 {
		t.Fatalf("counters: len=%d started=%d finished=%d overwritten=%d",
			tr.Len(), tr.Started(), tr.Finished(), tr.Overwritten())
	}
	ids := []uint64{}
	for _, sp := range tr.Spans() {
		ids = append(ids, sp.RequestID)
	}
	if !reflect.DeepEqual(ids, []uint64{2, 3, 4}) {
		t.Fatalf("ring keeps most recent, got %v", ids)
	}

	var nilTr *Tracer
	if nilTr.Start(1, 0) != nil {
		t.Fatal("nil tracer returned a span")
	}
	nilTr.Finish(nil, 0, true)
	if nilTr.Len() != 0 || nilTr.Spans() != nil || nilTr.Overwritten() != 0 {
		t.Fatal("nil tracer not inert")
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start(7, 100*time.Millisecond)
	sp.Add(StageWebCPU, 5*time.Millisecond)
	tr.Finish(sp, 200*time.Millisecond, false)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		ID     uint64        `json:"id"`
		Start  time.Duration `json:"start"`
		End    time.Duration `json:"end"`
		OK     bool          `json:"ok"`
		Stages Breakdown     `json:"stages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("decode %q: %v", buf.String(), err)
	}
	if rec.ID != 7 || rec.OK || rec.Stages.WebCPU != 5*time.Millisecond {
		t.Fatalf("record %+v", rec)
	}
}

func TestEventLogRingAndFilter(t *testing.T) {
	log := NewEventLog(3)
	log.Append(Event{T: 1, Kind: KindDecision, Chosen: "a"})
	log.Append(Event{T: 2, Kind: KindState, Backend: "a", From: "available", To: "busy"})
	log.Append(Event{T: 3, Kind: KindDecision, Chosen: "b"})
	log.Append(Event{T: 4, Kind: KindDecision, Chosen: "c"})
	if log.Len() != 3 || log.Appended() != 4 || log.Overwritten() != 1 {
		t.Fatalf("counters: len=%d appended=%d overwritten=%d", log.Len(), log.Appended(), log.Overwritten())
	}
	evs := log.Events()
	if evs[0].Kind != KindState || evs[2].Chosen != "c" {
		t.Fatalf("order: %+v", evs)
	}
	if got := log.Kind(KindDecision); len(got) != 2 || got[0].Chosen != "b" {
		t.Fatalf("filter: %+v", got)
	}

	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("jsonl lines %d", lines)
	}

	var nilLog *EventLog
	nilLog.Append(Event{})
	if nilLog.Len() != 0 || nilLog.Events() != nil {
		t.Fatal("nil log not inert")
	}
}

func TestLBValueSeries(t *testing.T) {
	events := []Event{
		{T: 10 * time.Millisecond, Kind: KindDecision, Chosen: "a", Candidates: []CandidateView{
			{Name: "a", LBValue: 1}, {Name: "b", LBValue: 2},
		}},
		{T: 60 * time.Millisecond, Kind: KindDecision, Chosen: "b", Candidates: []CandidateView{
			{Name: "a", LBValue: 3}, {Name: "b", LBValue: 4},
		}},
		{T: 70 * time.Millisecond, Kind: KindState}, // ignored
	}
	series := LBValueSeries(events, 50*time.Millisecond)
	if len(series) != 2 {
		t.Fatalf("candidates %d", len(series))
	}
	if m := series["a"].At(0).Mean(); m != 1 {
		t.Fatalf("a window 0 mean %v", m)
	}
	if m := series["b"].At(1).Mean(); m != 4 {
		t.Fatalf("b window 1 mean %v", m)
	}
}

// feedDetector pushes identical samples into both the offline series
// and the online detector.
func feedDetector(d *Detector, series *stats.Series, t time.Duration, v float64) {
	series.Add(t, v)
	d.ObserveUtil(t, v)
}

func TestDetectorMatchesOfflineOnSyntheticSeries(t *testing.T) {
	// Deterministic pseudo-random utilization with injected saturation
	// plateaus of varied lengths: shorter than MinDuration (rejected),
	// inside the band (kept), longer than MaxDuration (rejected), and a
	// trailing open saturation (closed by Finish, exactly like the
	// offline Start(Len()) close).
	const (
		window    = 50 * time.Millisecond
		sample    = 10 * time.Millisecond
		threshold = 95.0
		minDur    = 50 * time.Millisecond
		maxDur    = 2 * time.Second
	)
	rng := rand.New(rand.NewSource(20170529))
	plateaus := []mbneck.Span{
		{Start: 1 * time.Second, End: 1*time.Second + 30*time.Millisecond}, // sub-window blip
		{Start: 3 * time.Second, End: 3*time.Second + 250*time.Millisecond},
		{Start: 5 * time.Second, End: 8 * time.Second}, // conventional bottleneck
		{Start: 10 * time.Second, End: 10*time.Second + 100*time.Millisecond},
		{Start: 11900 * time.Millisecond, End: 12100 * time.Millisecond}, // trailing, cut by run end
	}
	saturatedAt := func(at time.Duration) bool {
		for _, p := range plateaus {
			if at >= p.Start && at < p.End {
				return true
			}
		}
		return false
	}

	series := stats.NewSeries(window)
	det := NewDetector("web1", DetectorConfig{
		Window: window, SatThreshold: threshold,
		MinDuration: minDur, MaxDuration: maxDur,
	}, nil)
	for at := time.Duration(0); at < 12*time.Second; at += sample {
		util := 20 + 50*rng.Float64()
		if saturatedAt(at) {
			util = 97 + 3*rng.Float64()
		}
		feedDetector(det, series, at, util)
	}
	det.Finish()

	offline := mbneck.FilterMillibottlenecks(
		mbneck.DetectSaturations(series, threshold), minDur, maxDur)
	online := det.Saturations()
	if len(offline) == 0 {
		t.Fatal("offline analysis found nothing — synthetic series broken")
	}
	if !reflect.DeepEqual(online, offline) {
		t.Fatalf("online %v != offline %v", online, offline)
	}
}

func TestDetectorMatchesOfflineWithGaps(t *testing.T) {
	// Sampling gaps: offline reads skipped windows as empty
	// (non-saturated); the streaming detector must finalize them the
	// same way, including closing a span that a gap interrupts.
	const window = 50 * time.Millisecond
	series := stats.NewSeries(window)
	det := NewDetector("app1", DetectorConfig{Window: window, MaxDuration: 2 * time.Second}, nil)

	for _, s := range []struct {
		at time.Duration
		v  float64
	}{
		{0, 40}, {60 * time.Millisecond, 99}, {110 * time.Millisecond, 99},
		// gap: windows [150,300) unobserved → span must close at 150 ms
		{310 * time.Millisecond, 99}, {360 * time.Millisecond, 20},
	} {
		feedDetector(det, series, s.at, s.v)
	}
	det.Finish()

	offline := mbneck.FilterMillibottlenecks(
		mbneck.DetectSaturations(series, 95), 50*time.Millisecond, 2*time.Second)
	if !reflect.DeepEqual(det.Saturations(), offline) {
		t.Fatalf("online %v != offline %v", det.Saturations(), offline)
	}
	want := []mbneck.Span{
		{Start: 50 * time.Millisecond, End: 150 * time.Millisecond},
		{Start: 300 * time.Millisecond, End: 350 * time.Millisecond},
	}
	if !reflect.DeepEqual(offline, want) {
		t.Fatalf("offline spans %v, want %v", offline, want)
	}
}

func TestDetectorEventsAndQueueCorrelation(t *testing.T) {
	const (
		window = 50 * time.Millisecond
		sample = 10 * time.Millisecond
	)
	log := NewEventLog(64)
	det := NewDetector("tomcat1", DetectorConfig{Window: window}, log)

	stall := mbneck.Span{Start: 2 * time.Second, End: 2250 * time.Millisecond}
	for at := time.Duration(0); at < 4*time.Second; at += sample {
		util := 30.0
		queue := 2.0
		if at >= stall.Start && at < stall.End {
			util = 100
			queue = 40
		}
		det.ObserveUtil(at, util)
		det.ObserveQueue(at, queue)
	}
	det.Finish()

	onsets := log.Kind(KindOnset)
	if len(onsets) != 1 {
		t.Fatalf("onsets %d: %+v", len(onsets), onsets)
	}
	// The first saturated window [2.0,2.05) is confirmed by the first
	// sample of the next window: within one window + one sampling
	// interval of the physical onset.
	if lag := onsets[0].T - stall.Start; lag <= 0 || lag > window+sample {
		t.Fatalf("onset lag %v", lag)
	}
	if onsets[0].SpanStart != stall.Start {
		t.Fatalf("onset span start %v", onsets[0].SpanStart)
	}

	mbs := log.Kind(KindMillibottleneck)
	if len(mbs) != 1 {
		t.Fatalf("millibottleneck events %d: %+v", len(mbs), mbs)
	}
	ev := mbs[0]
	if ev.SpanStart != stall.Start || ev.SpanEnd != stall.End {
		t.Fatalf("event span [%v,%v]", ev.SpanStart, ev.SpanEnd)
	}
	if ev.QueuePeak != 40 {
		t.Fatalf("queue peak %v not correlated", ev.QueuePeak)
	}
	if ev.QueuePeakAt < stall.Start-window || ev.QueuePeakAt > stall.End {
		t.Fatalf("queue peak at %v", ev.QueuePeakAt)
	}

	var nilDet *Detector
	nilDet.ObserveUtil(0, 1)
	nilDet.ObserveQueue(0, 1)
	nilDet.Finish()
	if nilDet.Saturations() != nil {
		t.Fatal("nil detector not inert")
	}
}

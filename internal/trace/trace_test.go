package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleEntries() []Entry {
	return []Entry{
		{Time: 100 * time.Millisecond, RequestID: 1, ClientID: 0, Interaction: "ViewStory",
			Web: "apache1", Backend: "tomcat1", OK: true, ResponseTime: 2 * time.Millisecond},
		{Time: 150 * time.Millisecond, RequestID: 2, ClientID: 1, Interaction: "ViewStory",
			Web: "apache1", Backend: "tomcat2", OK: true, ResponseTime: 4 * time.Millisecond},
		{Time: 200 * time.Millisecond, RequestID: 3, ClientID: 2, Interaction: "StoreComment",
			Web: "apache2", Backend: "tomcat1", OK: true, ResponseTime: 1100 * time.Millisecond, Retransmits: 1},
		{Time: 900 * time.Millisecond, RequestID: 4, ClientID: 3, Interaction: "SearchForm",
			OK: false, ResponseTime: 3 * time.Second, Retransmits: 3},
	}
}

func TestLogAppendAndCapacity(t *testing.T) {
	l := NewLog(2)
	for _, e := range sampleEntries() {
		l.Append(e)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Truncated() != 2 {
		t.Fatalf("Truncated = %d", l.Truncated())
	}
	if l.Entries()[0].RequestID != 1 {
		t.Fatal("kept wrong entries")
	}
}

func TestNewLogMinimumCapacity(t *testing.T) {
	l := NewLog(-5)
	l.Append(Entry{})
	l.Append(Entry{})
	if l.Len() != 1 || l.Truncated() != 1 {
		t.Fatalf("Len=%d Truncated=%d", l.Len(), l.Truncated())
	}
}

func TestWriteCSV(t *testing.T) {
	l := NewLog(10)
	for _, e := range sampleEntries() {
		l.Append(e)
	}
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_sec,id,client") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "apache1") || !strings.Contains(lines[1], "tomcat1") {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.Contains(lines[3], "1100.000") {
		t.Fatalf("rt_ms missing: %q", lines[3])
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	l := NewLog(10)
	for _, e := range sampleEntries() {
		l.Append(e)
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var got []Entry
	for dec.More() {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if len(got) != 4 {
		t.Fatalf("decoded %d entries", len(got))
	}
	if got[2] != sampleEntries()[2] {
		t.Fatalf("round trip mismatch: %+v", got[2])
	}
}

func TestFilterWindow(t *testing.T) {
	entries := sampleEntries()
	got := FilterWindow(entries, 120*time.Millisecond, 300*time.Millisecond)
	if len(got) != 2 || got[0].RequestID != 2 || got[1].RequestID != 3 {
		t.Fatalf("filtered %+v", got)
	}
}

func TestDistributionByBackend(t *testing.T) {
	dist := DistributionByBackend(sampleEntries())
	if dist["tomcat1"] != 2 || dist["tomcat2"] != 1 {
		t.Fatalf("dist = %v", dist)
	}
	if _, ok := dist[""]; ok {
		t.Fatal("empty backend counted")
	}
}

func TestDistributionByWebAndBackend(t *testing.T) {
	dist := DistributionByWebAndBackend(sampleEntries())
	if dist["apache1"]["tomcat1"] != 1 || dist["apache1"]["tomcat2"] != 1 || dist["apache2"]["tomcat1"] != 1 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestSpreadByWeb(t *testing.T) {
	entries := []Entry{
		{Web: "w", Backend: "a"}, {Web: "w", Backend: "a"},
		{Web: "w", Backend: "a"}, {Web: "w", Backend: "a"},
		{Web: "w", Backend: "b"}, {Web: "w", Backend: "b"},
	}
	spread := SpreadByWeb(entries)
	if got := spread["w"]; got != 0.5 {
		t.Fatalf("spread = %v, want 0.5 (4 vs 2)", got)
	}
	even := SpreadByWeb([]Entry{{Web: "w", Backend: "a"}, {Web: "w", Backend: "b"}})
	if even["w"] != 0 {
		t.Fatalf("even spread = %v", even["w"])
	}
}

func TestByInteraction(t *testing.T) {
	stats := ByInteraction(sampleEntries())
	if len(stats) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Interaction != "SearchForm" || stats[0].Mean != 3*time.Second {
		t.Fatalf("slowest first: %+v", stats[0])
	}
	for _, s := range stats {
		if s.Interaction == "ViewStory" {
			if s.Count != 2 || s.Mean != 3*time.Millisecond || s.Max != 4*time.Millisecond {
				t.Fatalf("ViewStory = %+v", s)
			}
		}
	}
}

func TestSlowest(t *testing.T) {
	top := Slowest(sampleEntries(), 2)
	if len(top) != 2 || top[0].RequestID != 4 || top[1].RequestID != 3 {
		t.Fatalf("Slowest = %+v", top)
	}
	all := Slowest(sampleEntries(), 99)
	if len(all) != 4 {
		t.Fatalf("Slowest(99) = %d entries", len(all))
	}
	// Input order untouched.
	if sampleEntries()[0].RequestID != 1 {
		t.Fatal("input mutated")
	}
}

func TestVLRTBackends(t *testing.T) {
	got := VLRTBackends(sampleEntries(), time.Second)
	if got["tomcat1"] != 1 {
		t.Fatalf("tomcat1 VLRT = %d", got["tomcat1"])
	}
	if got["(dropped)"] != 1 {
		t.Fatalf("dropped VLRT = %d", got["(dropped)"])
	}
}

package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"millibalance/internal/obs"
)

// randomEntry builds an arbitrary entry; about half carry a stage
// breakdown, mirroring mixed traced/untraced logs.
func randomEntry(rng *rand.Rand, id uint64) Entry {
	interactions := []string{"ViewStory", "StoreComment", "SearchForm", ""}
	e := Entry{
		Time:         time.Duration(rng.Int63n(int64(180 * time.Second))),
		RequestID:    id,
		ClientID:     rng.Intn(70000),
		Interaction:  interactions[rng.Intn(len(interactions))],
		OK:           rng.Intn(4) != 0,
		ResponseTime: time.Duration(rng.Int63n(int64(4 * time.Second))),
		Retransmits:  rng.Intn(4),
	}
	if rng.Intn(3) != 0 {
		e.Web = "apache1"
		e.Backend = "tomcat2"
	}
	if rng.Intn(2) == 0 {
		d := func() time.Duration { return time.Duration(rng.Int63n(int64(time.Second))) }
		e.Stages = &obs.Breakdown{
			RetransmitWait: d(),
			WebAcceptQueue: d(),
			WebCPU:         d(),
			GetEndpoint:    d(),
			Link:           d(),
			AppAcceptQueue: d(),
			AppThread:      d(),
			DBCall:         d(),
			StallFrozen:    d(),
			WebThread:      d(),
		}
	}
	return e
}

// TestJSONLRoundTripProperty: for arbitrary logs, WriteJSONL followed
// by ReadJSONL reproduces exactly the stored entries — including the
// optional stage breakdowns and the keep-first truncation behaviour
// when the log overflows its capacity.
func TestJSONLRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1204))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.Intn(40)
		n := rng.Intn(60) // sometimes below capacity, sometimes far above
		l := NewLog(capacity)
		var all []Entry
		for i := 0; i < n; i++ {
			e := randomEntry(rng, uint64(i+1))
			all = append(all, e)
			l.Append(e)
		}

		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}

		want := all
		if n > capacity {
			want = all[:capacity] // bounded log keeps the first entries
			if l.Truncated() != uint64(n-capacity) {
				t.Fatalf("trial %d: truncated %d, want %d", trial, l.Truncated(), n-capacity)
			}
		} else if l.Truncated() != 0 {
			t.Fatalf("trial %d: truncated %d on non-overflowing log", trial, l.Truncated())
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d entries back, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("trial %d entry %d:\n got %+v (stages %+v)\nwant %+v (stages %+v)",
					trial, i, got[i], got[i].Stages, want[i], want[i].Stages)
			}
		}
	}
}

func TestReadJSONLSkipsBlankAndRejectsMalformed(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader("\n{\"id\":7,\"t\":0,\"client\":0,\"interaction\":\"x\",\"ok\":true,\"rt\":5}\n\n"))
	if err != nil || len(got) != 1 || got[0].RequestID != 7 {
		t.Fatalf("got %+v, err %v", got, err)
	}
	if _, err := ReadJSONL(strings.NewReader("{\"id\":1}\nnot json\n")); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error = %v", err)
	}
}

func TestDecompose(t *testing.T) {
	entries := []Entry{
		{RequestID: 1, ResponseTime: 1000 * time.Millisecond, Stages: &obs.Breakdown{
			RetransmitWait: 900 * time.Millisecond, WebCPU: 50 * time.Millisecond,
			DBCall: 50 * time.Millisecond, WebThread: 100 * time.Millisecond}},
		{RequestID: 2, ResponseTime: 100 * time.Millisecond, Stages: &obs.Breakdown{
			WebCPU: 10 * time.Millisecond, DBCall: 80 * time.Millisecond}},
		{RequestID: 3, ResponseTime: 10 * time.Millisecond}, // untraced
	}
	d := Decompose(entries)
	if d.Count != 2 {
		t.Fatalf("count %d", d.Count)
	}
	if d.Totals.RetransmitWait != 900*time.Millisecond || d.Totals.DBCall != 130*time.Millisecond {
		t.Fatalf("totals %+v", d.Totals)
	}
	if d.Totals.WebThread != 100*time.Millisecond {
		t.Fatalf("web thread total %v", d.Totals.WebThread)
	}
	if d.DominantCounts["retransmit_wait"] != 1 || d.DominantCounts["db_call"] != 1 {
		t.Fatalf("dominant %+v", d.DominantCounts)
	}
	if got := d.DominantShare(obs.StageRetransmitWait); got != 0.5 {
		t.Fatalf("dominant share %.2f", got)
	}
	if d.MinCoverage != 0.9 || d.MeanCoverage != 0.95 {
		t.Fatalf("coverage mean=%.3f min=%.3f", d.MeanCoverage, d.MinCoverage)
	}
	empty := Decompose(nil)
	if empty.Count != 0 || empty.DominantShare(obs.StageDBCall) != 0 {
		t.Fatalf("empty decomposition %+v", empty)
	}
}

package trace_test

import (
	"os"
	"time"

	"millibalance/internal/trace"
)

func ExampleLog_WriteCSV() {
	log := trace.NewLog(10)
	log.Append(trace.Entry{
		Time: 100 * time.Millisecond, RequestID: 1, Interaction: "ViewStory",
		Web: "apache1", Backend: "tomcat2", OK: true, ResponseTime: 3 * time.Millisecond,
	})
	_ = log.WriteCSV(os.Stdout)
	// Output:
	// t_sec,id,client,interaction,web,backend,ok,rt_ms,retransmits
	// 0.100000,1,0,ViewStory,apache1,tomcat2,true,3.000,0
}

// Package trace implements the access-log side of the paper's
// methodology. The paper verifies its load balancers by analyzing the
// Apache and Tomcat logs — which web server handled each request, which
// application server it was forwarded to, and how long it took. This
// package collects the equivalent per-request entries from an
// experiment, exports them as CSV or JSON Lines, and provides the
// analyses the paper performs on them: per-web-server workload
// distribution across backends, per-interaction latency, and slow-
// request extraction.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"millibalance/internal/obs"
)

// Entry is one access-log line: a completed (or failed) client request.
type Entry struct {
	// Time is the completion instant in virtual time.
	Time time.Duration `json:"t"`
	// RequestID is the client-side request identifier.
	RequestID uint64 `json:"id"`
	// ClientID identifies the issuing client.
	ClientID int `json:"client"`
	// Interaction is the RUBBoS interaction name.
	Interaction string `json:"interaction"`
	// Web and Backend identify the servers that handled the request;
	// both are empty for requests that never reached the web tier
	// (dropped until the retransmission schedule ran out).
	Web     string `json:"web,omitempty"`
	Backend string `json:"backend,omitempty"`
	// OK reports whether a successful response was returned.
	OK bool `json:"ok"`
	// ResponseTime is the client-observed latency.
	ResponseTime time.Duration `json:"rt"`
	// Retransmits counts dropped connection attempts.
	Retransmits int `json:"retx,omitempty"`
	// Stages is the per-stage latency decomposition recorded by the
	// observability layer; nil when span tracing was disabled. Exported
	// in JSONL only — the CSV schema is unchanged.
	Stages *obs.Breakdown `json:"stages,omitempty"`
}

// Log is a bounded in-memory access log. When the capacity is reached,
// further entries are counted but not stored, so a runaway experiment
// cannot exhaust memory. The zero value is unusable; construct with
// NewLog.
type Log struct {
	capacity int
	entries  []Entry
	dropped  uint64
}

// NewLog returns a log bounded at capacity entries (minimum one).
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{capacity: capacity}
}

// Append records one entry (or counts it as truncated past capacity).
func (l *Log) Append(e Entry) {
	if len(l.entries) >= l.capacity {
		l.dropped++
		return
	}
	l.entries = append(l.entries, e)
}

// Len reports stored entries.
func (l *Log) Len() int { return len(l.entries) }

// Truncated reports entries discarded because the log was full.
func (l *Log) Truncated() uint64 { return l.dropped }

// Entries returns the stored entries (shared slice; treat as
// read-only).
func (l *Log) Entries() []Entry { return l.entries }

// WriteCSV writes the log as CSV with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t_sec,id,client,interaction,web,backend,ok,rt_ms,retransmits\n"); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, e := range l.entries {
		row := fmt.Sprintf("%.6f,%d,%d,%s,%s,%s,%s,%.3f,%d\n",
			e.Time.Seconds(), e.RequestID, e.ClientID, e.Interaction,
			e.Web, e.Backend, strconv.FormatBool(e.OK),
			float64(e.ResponseTime)/float64(time.Millisecond), e.Retransmits)
		if _, err := io.WriteString(w, row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	return nil
}

// WriteJSONL writes the log as JSON Lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.entries {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode entry: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses entries written by WriteJSONL. Blank lines are
// skipped; a malformed line aborts with an error naming its position.
func ReadJSONL(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var out []Entry
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}

// FilterWindow returns the entries completing within [from, to).
func FilterWindow(entries []Entry, from, to time.Duration) []Entry {
	var out []Entry
	for _, e := range entries {
		if e.Time >= from && e.Time < to {
			out = append(out, e)
		}
	}
	return out
}

// DistributionByBackend counts entries per backend — the log-derived
// workload distribution the paper plots.
func DistributionByBackend(entries []Entry) map[string]int {
	out := map[string]int{}
	for _, e := range entries {
		if e.Backend != "" {
			out[e.Backend]++
		}
	}
	return out
}

// DistributionByWebAndBackend counts entries per (web, backend) pair —
// the paper's Section II-B validation that every web server spreads its
// load evenly.
func DistributionByWebAndBackend(entries []Entry) map[string]map[string]int {
	out := map[string]map[string]int{}
	for _, e := range entries {
		if e.Web == "" || e.Backend == "" {
			continue
		}
		m, ok := out[e.Web]
		if !ok {
			m = map[string]int{}
			out[e.Web] = m
		}
		m[e.Backend]++
	}
	return out
}

// SpreadByWeb reports, per web server, the relative spread of its
// backend shares: (max - min) / max of the per-backend counts. Zero
// means perfectly even.
func SpreadByWeb(entries []Entry) map[string]float64 {
	out := map[string]float64{}
	for web, perBackend := range DistributionByWebAndBackend(entries) {
		first := true
		var minC, maxC int
		for _, c := range perBackend {
			if first {
				minC, maxC = c, c
				first = false
				continue
			}
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		if maxC > 0 {
			out[web] = float64(maxC-minC) / float64(maxC)
		}
	}
	return out
}

// InteractionStats aggregates latency per interaction.
type InteractionStats struct {
	Interaction string
	Count       int
	Mean        time.Duration
	Max         time.Duration
}

// ByInteraction aggregates entries per interaction name, sorted by
// descending mean latency.
func ByInteraction(entries []Entry) []InteractionStats {
	type acc struct {
		n   int
		sum time.Duration
		max time.Duration
	}
	accs := map[string]*acc{}
	for _, e := range entries {
		a, ok := accs[e.Interaction]
		if !ok {
			a = &acc{}
			accs[e.Interaction] = a
		}
		a.n++
		a.sum += e.ResponseTime
		if e.ResponseTime > a.max {
			a.max = e.ResponseTime
		}
	}
	out := make([]InteractionStats, 0, len(accs))
	for name, a := range accs {
		out = append(out, InteractionStats{
			Interaction: name,
			Count:       a.n,
			Mean:        a.sum / time.Duration(a.n),
			Max:         a.max,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mean != out[j].Mean {
			return out[i].Mean > out[j].Mean
		}
		return out[i].Interaction < out[j].Interaction
	})
	return out
}

// Slowest returns the n slowest entries, slowest first.
func Slowest(entries []Entry, n int) []Entry {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ResponseTime > sorted[j].ResponseTime })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// VLRTBackends counts, per backend, how many VLRT (≥ threshold) entries
// it served — pointing the finger at the server behind the long tail.
func VLRTBackends(entries []Entry, threshold time.Duration) map[string]int {
	out := map[string]int{}
	for _, e := range entries {
		if e.ResponseTime >= threshold {
			key := e.Backend
			if key == "" {
				key = "(dropped)"
			}
			out[key]++
		}
	}
	return out
}

// Decomposition aggregates the per-stage latency breakdowns of a set of
// entries — the paper's Section III attribution (retransmit waits vs.
// queueing vs. service), computed per request instead of inferred from
// aggregate series.
type Decomposition struct {
	// Count is how many entries carried a stage breakdown.
	Count int
	// Totals sums each stage's duration across those entries.
	Totals obs.Breakdown
	// DominantCounts counts, per stage name, how many entries that
	// stage dominated (largest timeline stage).
	DominantCounts map[string]int
	// MeanCoverage and MinCoverage summarize what fraction of each
	// entry's response time the timeline stages account for.
	MeanCoverage float64
	MinCoverage  float64
}

// DominantShare reports the fraction of decomposed entries dominated by
// the given stage.
func (d Decomposition) DominantShare(st obs.Stage) float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.DominantCounts[st.String()]) / float64(d.Count)
}

// Decompose analyzes the entries that carry a stage breakdown; entries
// without one (tracing disabled, or imported from an untraced run) are
// ignored.
func Decompose(entries []Entry) Decomposition {
	d := Decomposition{DominantCounts: map[string]int{}}
	var coverageSum float64
	for _, e := range entries {
		if e.Stages == nil {
			continue
		}
		d.Count++
		b := *e.Stages
		for _, st := range obs.TimelineStages() {
			addStage(&d.Totals, st, b.Get(st))
		}
		d.Totals.WebThread += b.WebThread
		dom, _ := b.Dominant()
		d.DominantCounts[dom.String()]++
		cov := b.Coverage(e.ResponseTime)
		coverageSum += cov
		if d.Count == 1 || cov < d.MinCoverage {
			d.MinCoverage = cov
		}
	}
	if d.Count > 0 {
		d.MeanCoverage = coverageSum / float64(d.Count)
	}
	return d
}

// addStage accumulates one stage duration into a breakdown.
func addStage(b *obs.Breakdown, st obs.Stage, dur time.Duration) {
	switch st {
	case obs.StageRetransmitWait:
		b.RetransmitWait += dur
	case obs.StageWebAcceptQueue:
		b.WebAcceptQueue += dur
	case obs.StageWebCPU:
		b.WebCPU += dur
	case obs.StageGetEndpoint:
		b.GetEndpoint += dur
	case obs.StageLink:
		b.Link += dur
	case obs.StageAppAcceptQueue:
		b.AppAcceptQueue += dur
	case obs.StageAppThread:
		b.AppThread += dur
	case obs.StageDBCall:
		b.DBCall += dur
	case obs.StageStallFrozen:
		b.StallFrozen += dur
	case obs.StageWebThread:
		b.WebThread += dur
	}
}

package adapt

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"millibalance/internal/obs"
)

// fakeActuator records actions; safe for concurrent use.
type fakeActuator struct {
	mu          sync.Mutex
	backends    []string
	policy      string
	mechanism   string
	quarantined map[string]bool
	probes      map[string]int
}

func newFakeActuator(backends ...string) *fakeActuator {
	return &fakeActuator{
		backends:    backends,
		quarantined: make(map[string]bool),
		probes:      make(map[string]int),
	}
}

func (f *fakeActuator) Backends() []string { return f.backends }

func (f *fakeActuator) SetPolicy(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policy = name
}

func (f *fakeActuator) SetMechanism(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mechanism = name
}

func (f *fakeActuator) SetQuarantine(backend string, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.quarantined[backend] = on
}

func (f *fakeActuator) ArmProbe(backend string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.probes[backend]++
}

func (f *fakeActuator) quarantinedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, on := range f.quarantined {
		if on {
			n++
		}
	}
	return n
}

func testConfig() Config {
	return Config{
		BasePolicy:    "total_request",
		BaseMechanism: "original_get_endpoint",
	}
}

func onset(t time.Duration, backend string) obs.Event {
	return obs.Event{T: t, Kind: obs.KindOnset, Source: backend}
}

func TestQuarantineAndProbeReadmission(t *testing.T) {
	act := newFakeActuator("app1", "app2")
	c := NewController(testConfig(), act)

	c.OnEvent(onset(time.Second, "app1"))
	if !act.quarantined["app1"] {
		t.Fatal("app1 not quarantined after onset")
	}
	// Second onset for the same backend is idempotent.
	c.OnEvent(onset(time.Second+time.Millisecond, "app1"))
	if got := c.Log().Count(ActionQuarantine); got != 1 {
		t.Fatalf("quarantine decisions = %d, want 1", got)
	}

	// The tick after the probe interval arms a probe.
	c.Tick(1200 * time.Millisecond)
	c.Tick(1300 * time.Millisecond)
	if act.probes["app1"] == 0 {
		t.Fatal("no probe armed after the probe interval")
	}

	// A good probe while the saturation span is still open must NOT
	// re-admit: it merely landed in a gap between micro-stalls.
	c.OnProbe(1250*time.Millisecond, "app1", 50*time.Millisecond, true)
	if !act.quarantined["app1"] {
		t.Fatal("probe re-admitted while the detector span was still open")
	}

	// Span closes, then an in-budget probe re-admits.
	c.OnEvent(obs.Event{T: 1280 * time.Millisecond, Kind: obs.KindMillibottleneck, Source: "app1"})
	c.OnProbe(1300*time.Millisecond, "app1", 50*time.Millisecond, true)
	if act.quarantined["app1"] {
		t.Fatal("app1 still quarantined after a good probe")
	}
	if got := c.Log().Count(ActionReadmit); got != 1 {
		t.Fatalf("readmit decisions = %d, want 1", got)
	}
}

func TestSlowProbeDoesNotReadmit(t *testing.T) {
	act := newFakeActuator("app1", "app2")
	c := NewController(testConfig(), act)
	c.OnEvent(onset(time.Second, "app1"))
	c.OnProbe(1500*time.Millisecond, "app1", 2*time.Second, true) // over budget
	if !act.quarantined["app1"] {
		t.Fatal("over-budget probe lifted the quarantine")
	}
	c.OnProbe(1600*time.Millisecond, "app1", 0, false) // failed probe
	if !act.quarantined["app1"] {
		t.Fatal("failed probe lifted the quarantine")
	}
}

func TestMaxQuarantineParole(t *testing.T) {
	cfg := testConfig()
	cfg.MaxQuarantine = 2 * time.Second
	act := newFakeActuator("app1", "app2")
	c := NewController(cfg, act)
	c.OnEvent(onset(time.Second, "app1"))
	c.Tick(2900 * time.Millisecond)
	if !act.quarantined["app1"] {
		t.Fatal("paroled too early")
	}
	c.Tick(3100 * time.Millisecond)
	if act.quarantined["app1"] {
		t.Fatal("parole bound did not re-admit")
	}
}

func TestGuardrailNeverQuarantinesAll(t *testing.T) {
	act := newFakeActuator("app1", "app2", "app3")
	c := NewController(testConfig(), act)
	c.OnEvent(onset(time.Second, "app1"))
	c.OnEvent(onset(time.Second, "app2"))
	if got := act.quarantinedCount(); got != 2 {
		t.Fatalf("quarantined = %d, want 2", got)
	}
	// The last healthy backend looks stalled too → fallback, all lifted.
	c.OnEvent(onset(time.Second, "app3"))
	if got := act.quarantinedCount(); got != 0 {
		t.Fatalf("quarantined after fallback = %d, want 0", got)
	}
	if act.policy != "round_robin" {
		t.Fatalf("fallback policy = %q, want round_robin", act.policy)
	}
	if c.Log().Count(ActionFallback) != 1 {
		t.Fatal("no fallback decision recorded")
	}
	st := c.State()
	if !st.Fallback || st.Policy != "round_robin" {
		t.Fatalf("state = %+v, want fallback round_robin", st)
	}
}

func TestFallbackExitRestoresPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.MinDwell = 500 * time.Millisecond
	cfg.ClearDwell = 500 * time.Millisecond
	act := newFakeActuator("app1", "app2")
	c := NewController(cfg, act)
	c.OnEvent(onset(time.Second, "app1"))
	c.OnEvent(onset(time.Second, "app2")) // fallback
	if act.policy != "round_robin" {
		t.Fatalf("policy = %q, want round_robin", act.policy)
	}
	// Quiet ticks: clear must hold for MinDwell past the last shift.
	for now := 1100 * time.Millisecond; now <= 3*time.Second; now += 100 * time.Millisecond {
		c.Tick(now)
	}
	if act.policy != "total_request" {
		t.Fatalf("policy after fallback exit = %q, want total_request", act.policy)
	}
	if c.Log().Count(ActionFallbackExit) != 1 {
		t.Fatal("no fallback_exit decision recorded")
	}
}

// feedBad pushes a window's worth of VLRT outcomes.
func feedBad(c *Controller, now time.Duration, n int) {
	for i := 0; i < n; i++ {
		c.OnOutcome(now, 2*time.Second, true)
	}
}

// feedGood pushes fast outcomes.
func feedGood(c *Controller, now time.Duration, n int) {
	for i := 0; i < n; i++ {
		c.OnOutcome(now, 3*time.Millisecond, true)
	}
}

func TestHotSwapEscalationAndHysteresis(t *testing.T) {
	cfg := testConfig()
	cfg.MinDwell = 400 * time.Millisecond
	act := newFakeActuator("app1", "app2")
	c := NewController(cfg, act)

	// Warm-up tick history so lastShift=0 dwell is satisfied.
	now := 500 * time.Millisecond
	feedBad(c, now, 50)
	c.Tick(now)
	if act.mechanism != "modified_get_endpoint" {
		t.Fatalf("mechanism = %q, want modified_get_endpoint after first trip", act.mechanism)
	}
	if act.policy != "" {
		t.Fatalf("policy swapped on the same tick as the mechanism (dwell violated): %q", act.policy)
	}

	// Still tripping inside the dwell window: no second swap.
	now += 100 * time.Millisecond
	feedBad(c, now, 50)
	c.Tick(now)
	if act.policy != "" {
		t.Fatal("policy swapped before MinDwell elapsed")
	}

	// Past the dwell and still tripping: escalate to the policy swap.
	now += 400 * time.Millisecond
	feedBad(c, now, 50)
	c.Tick(now)
	if act.policy != "current_load" {
		t.Fatalf("policy = %q, want current_load after second trip", act.policy)
	}
	if c.Log().Count(ActionSwapMechanism) != 1 || c.Log().Count(ActionSwapPolicy) != 1 {
		t.Fatalf("swap decisions = %d/%d, want 1/1",
			c.Log().Count(ActionSwapMechanism), c.Log().Count(ActionSwapPolicy))
	}

	// Sustained clear de-escalates one rung at a time, newest first.
	for i := 0; i < 60; i++ {
		now += 100 * time.Millisecond
		feedGood(c, now, 30)
		c.Tick(now)
	}
	if act.policy != "total_request" || act.mechanism != "original_get_endpoint" {
		t.Fatalf("after sustained clear: policy=%q mechanism=%q, want base config",
			act.policy, act.mechanism)
	}
	if c.Log().Count(ActionRevertPolicy) != 1 || c.Log().Count(ActionRevertMechanism) != 1 {
		t.Fatal("missing revert decisions")
	}
	// Revert order: policy (rung 2) before mechanism (rung 1).
	var revertOrder []string
	for _, d := range c.Log().Decisions() {
		if d.Action == ActionRevertPolicy || d.Action == ActionRevertMechanism {
			revertOrder = append(revertOrder, d.Action)
		}
	}
	if len(revertOrder) != 2 || revertOrder[0] != ActionRevertPolicy {
		t.Fatalf("revert order = %v", revertOrder)
	}
}

func TestRejectRateTrips(t *testing.T) {
	cfg := testConfig()
	cfg.MinDwell = 100 * time.Millisecond
	act := newFakeActuator("app1", "app2")
	c := NewController(cfg, act)
	for i := 0; i < 10; i++ {
		c.OnEvent(obs.Event{T: 200 * time.Millisecond, Kind: obs.KindReject, Source: "apache1"})
	}
	c.Tick(200 * time.Millisecond)
	if act.mechanism != "modified_get_endpoint" {
		t.Fatalf("reject burst did not trip the swap (mechanism=%q)", act.mechanism)
	}
}

func TestBorderlineRateHoldsState(t *testing.T) {
	// Between clear and trip: neither escalate nor de-escalate.
	cfg := testConfig()
	cfg.MinDwell = 100 * time.Millisecond
	cfg.Window = 100 * time.Millisecond // one bucket: each tick sees only its own feeds
	act := newFakeActuator("app1", "app2")
	c := NewController(cfg, act)
	now := 200 * time.Millisecond
	feedBad(c, now, 50)
	c.Tick(now)
	if act.mechanism != "modified_get_endpoint" {
		t.Fatal("setup: first trip missing")
	}
	// ~1% bad: above clear (0.5%), below trip (2%).
	for i := 0; i < 50; i++ {
		now += 100 * time.Millisecond
		feedGood(c, now, 99)
		c.OnOutcome(now, 2*time.Second, true)
		c.Tick(now)
	}
	if act.mechanism != "modified_get_endpoint" {
		t.Fatal("borderline rate reverted the swap (hysteresis violated)")
	}
	if c.Log().Count(ActionSwapPolicy) != 0 {
		t.Fatal("borderline rate escalated")
	}
}

func TestDecisionLogJSONLRoundTrip(t *testing.T) {
	log := NewDecisionLog(16)
	in := []Decision{
		{T: time.Second, Action: ActionQuarantine, Backend: "tomcat1", Reason: "mb_onset", VLRTRate: 0.031, Level: 0},
		{T: 1200 * time.Millisecond, Action: ActionProbe, Backend: "tomcat1", Reason: "interval"},
		{T: 1400 * time.Millisecond, Action: ActionReadmit, Backend: "tomcat1", Reason: "probe_ok"},
		{T: 2 * time.Second, Action: ActionSwapMechanism, Policy: "total_request",
			Mechanism: "modified_get_endpoint", Reason: "trip", VLRTRate: 0.05, RejectRate: 3.5, Level: 1},
	}
	for _, d := range in {
		log.Append(d)
	}
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDecisionLogRingBound(t *testing.T) {
	log := NewDecisionLog(4)
	for i := 0; i < 10; i++ {
		log.Append(Decision{T: time.Duration(i), Action: ActionProbe})
	}
	if log.Len() != 4 || log.Appended() != 10 || log.Overwritten() != 6 {
		t.Fatalf("len=%d appended=%d overwrote=%d", log.Len(), log.Appended(), log.Overwritten())
	}
	ds := log.Decisions()
	if ds[0].T != 6 || ds[3].T != 9 {
		t.Fatalf("ring order wrong: %+v", ds)
	}
}

// Package adapt is the millibottleneck-aware adaptive control plane: a
// closed-loop controller that subscribes to the observability signals
// of internal/obs (online detector onsets/confirmations, reject and
// state events) plus per-request outcomes, and applies graded
// remediation to a running balancer through an Actuator:
//
//  1. Quarantine/drain — a backend whose online detector reports a
//     saturation onset is weighted out of the rotation; single probe
//     requests are let through periodically and the backend is
//     re-admitted once it answers them within an RT budget (or
//     unconditionally after a parole interval, which bounds starvation).
//  2. Hot-swap — when the windowed VLRT/failure fraction or the reject
//     rate trips a threshold, the controller escalates the balancer
//     configuration toward the paper's remedies at runtime (mechanism
//     first, then policy), and reverts step by step once the signals
//     stay below the clear thresholds. The hysteresis is fast-attack,
//     slow-release: trip and clear use separate thresholds, a short
//     dwell gates successive escalations, and a much longer ClearDwell
//     — during which the detectors must also stay silent — gates each
//     revert, so millibottleneck-scale noise cannot make the
//     controller flap and recurring flush cycles cannot bait it into
//     reverting between bursts.
//
// Guardrails: at most N−1 backends are ever quarantined, and if the
// last healthy backend is detected as stalled too, the controller lifts
// every quarantine and falls back to the information-free round_robin
// policy so requests keep draining.
//
// The controller is substrate-agnostic: internal/cluster steps it on
// virtual-time events inside the deterministic simulation, and
// internal/httpcluster drives the identical controller from a
// wall-clock goroutine.
package adapt

import (
	"sync"
	"time"

	"millibalance/internal/obs"
)

// Actuator is the balancer-side surface the controller acts on. All
// methods must be safe to call from the controller's signal handlers
// and must not call back into the controller.
type Actuator interface {
	// Backends lists the backend names the controller may quarantine.
	Backends() []string
	// SetPolicy hot-swaps the balancing policy by name.
	SetPolicy(name string)
	// SetMechanism hot-swaps the get_endpoint mechanism by name.
	SetMechanism(name string)
	// SetQuarantine drains (true) or re-admits (false) one backend.
	SetQuarantine(backend string, on bool)
	// ArmProbe lets one probe request through to a quarantined backend.
	ArmProbe(backend string)
}

// LimitActuator is the optional overload-control surface. Actuators
// that also front an admission gate (internal/admission) implement it;
// the controller then tightens the gate's concurrency limit on every
// escalation — load shedding buys headroom while the swap takes hold —
// and relaxes it once the ladder has fully unwound. TightenLimit
// reports whether a gate was present, so substrates without admission
// armed produce no tighten/relax decisions.
type LimitActuator interface {
	TightenLimit(on bool) bool
}

// Config tunes the controller. Zero values take the documented
// defaults; BasePolicy and BaseMechanism are filled by the substrate
// wiring with the balancer's starting configuration.
type Config struct {
	// Tick is the controller step period (default 100 ms).
	Tick time.Duration
	// Window is the sliding window over which VLRT and reject rates are
	// computed (default 1 s, rounded up to a whole number of ticks).
	Window time.Duration

	// --- quarantine/drain ---

	// DisableQuarantine turns the per-backend drain action off, leaving
	// only the hot-swap remediation.
	DisableQuarantine bool
	// ProbeInterval spaces probe requests to a quarantined backend
	// (default 200 ms).
	ProbeInterval time.Duration
	// ProbeRTBudget is the response-time budget a probe must meet for
	// the backend to count as recovered (default 300 ms).
	ProbeRTBudget time.Duration
	// ReadmitAfter is how many consecutive in-budget probes lift a
	// quarantine (default 1).
	ReadmitAfter int
	// MaxQuarantine is the parole bound: a backend still quarantined
	// this long is re-admitted unconditionally, which makes eventual
	// re-admission independent of probe outcomes (default 10 s).
	MaxQuarantine time.Duration
	// FlapWindow is the flap-damping horizon: a backend whose detector
	// re-fires within this long of its last re-admission is flapping —
	// a flush-style millibottleneck built from bursts of micro-stalls,
	// where each burst pause answers probes in budget and each
	// re-admission re-exposes the tier to a fresh pile-up. Every flap
	// extends the minimum re-quarantine hold by one ProbeInterval, so
	// the backend must stay responsive across the whole burst train
	// before it rejoins the rotation. The parole bound still caps the
	// total hold, so liveness is unaffected (default 1 s).
	FlapWindow time.Duration

	// --- hot-swap hysteresis ---

	// VLRTThreshold classifies an outcome as very long (default 1 s);
	// failed outcomes always count as bad.
	VLRTThreshold time.Duration
	// VLRTTrip and VLRTClear bound the windowed bad-outcome fraction:
	// at or above VLRTTrip the controller escalates, and only at or
	// below VLRTClear may it de-escalate (defaults 0.02 / 0.005).
	VLRTTrip  float64
	VLRTClear float64
	// RejectTrip and RejectClear bound the windowed balancer reject
	// rate in rejects per second (defaults 2 / 0.25).
	RejectTrip  float64
	RejectClear float64
	// MinSamples is the minimum windowed outcome count before the VLRT
	// fraction is trusted to trip (default 20).
	MinSamples int
	// OnsetTrip is the leading-indicator trip: when the windowed count
	// of detector onsets reaches it, each further onset applies one
	// remediation rung immediately, bypassing the dwell. VLRT evidence
	// inherently lags a millibottleneck by the VLRT threshold itself
	// (a very long request only counts once it completes), so a
	// controller that waits for it eats one full flush cycle per rung;
	// recurring onsets prove per-backend quarantine is not containing
	// the regime and justify escalating ahead of the outcome signal
	// (default 2; set negative to disable).
	OnsetTrip int
	// MinDwell is the minimum time between reconfigurations (default
	// 2 s).
	MinDwell time.Duration
	// ClearDwell is the slow-release side of the hysteresis: the clear
	// condition must hold this long — with no detector onset anywhere
	// in the tier for just as long — before one rung is reverted.
	// Millibottlenecks demand sub-second attack but leisurely release:
	// reverting while flushes still recur re-exposes the tier to a
	// fresh pile-up per cycle, so restoration waits until the
	// millibottlenecks themselves have stopped, not merely until the
	// remedy has suppressed their symptoms (default 5× MinDwell).
	ClearDwell time.Duration

	// --- targets ---

	// PolicyTarget and MechanismTarget are the escalation remedies
	// (defaults current_load / modified_get_endpoint).
	PolicyTarget    string
	MechanismTarget string
	// FallbackPolicy engages when every candidate looks stalled
	// (default round_robin).
	FallbackPolicy string
	// BasePolicy and BaseMechanism are the balancer's starting
	// configuration, restored on de-escalation. The substrate wiring
	// fills them from its own config when empty.
	BasePolicy    string
	BaseMechanism string

	// LogCapacity bounds the decision log ring (default 4096).
	LogCapacity int
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 200 * time.Millisecond
	}
	if c.ProbeRTBudget <= 0 {
		c.ProbeRTBudget = 300 * time.Millisecond
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 1
	}
	if c.MaxQuarantine <= 0 {
		c.MaxQuarantine = 10 * time.Second
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = time.Second
	}
	if c.VLRTThreshold <= 0 {
		c.VLRTThreshold = time.Second
	}
	if c.VLRTTrip <= 0 {
		c.VLRTTrip = 0.02
	}
	if c.VLRTClear <= 0 {
		c.VLRTClear = 0.005
	}
	if c.RejectTrip <= 0 {
		c.RejectTrip = 2
	}
	if c.RejectClear <= 0 {
		c.RejectClear = 0.25
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.OnsetTrip == 0 {
		c.OnsetTrip = 2
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 2 * time.Second
	}
	if c.ClearDwell <= 0 {
		c.ClearDwell = 5 * c.MinDwell
	}
	if c.PolicyTarget == "" {
		c.PolicyTarget = "current_load"
	}
	if c.MechanismTarget == "" {
		c.MechanismTarget = "modified_get_endpoint"
	}
	if c.FallbackPolicy == "" {
		c.FallbackPolicy = "round_robin"
	}
	if c.LogCapacity <= 0 {
		c.LogCapacity = 4096
	}
	return c
}

// step is one rung of the escalation ladder.
type step struct {
	policy bool // true: swap policy; false: swap mechanism
	target string
	base   string
}

type backendState struct {
	quarantined bool
	since       time.Duration
	lastProbe   time.Duration
	goodProbes  int
	lastReadmit time.Duration
	flaps       int  // consecutive onset-shortly-after-readmit cycles
	spanOpen    bool // detector saturation span currently open
}

type rateBucket struct {
	outcomes int
	bad      int
	rejects  int
	onsets   int
}

// State is a point-in-time controller snapshot (the /admin/adapt
// payload).
type State struct {
	Level       int      `json:"level"`
	Tightened   bool     `json:"tightened,omitempty"`
	Fallback    bool     `json:"fallback"`
	Policy      string   `json:"policy"`
	Mechanism   string   `json:"mechanism"`
	Quarantined []string `json:"quarantined"`
	VLRTRate    float64  `json:"vlrt_rate"`
	RejectRate  float64  `json:"reject_rate"`
	Decisions   uint64   `json:"decisions"`
}

// Controller is the closed-loop adaptive controller. All methods are
// safe for concurrent use; in the deterministic simulation they are
// driven single-threaded on virtual-time events.
type Controller struct {
	mu  sync.Mutex
	cfg Config
	act Actuator
	log *DecisionLog

	order    []string
	backends map[string]*backendState

	steps      []step
	level      int // rungs of c.steps applied
	tightened  bool
	fallback   bool
	policy     string
	mechanism  string
	lastShift  time.Duration
	lastOnset  time.Duration
	clearArmed bool
	clearSince time.Duration

	buckets []rateBucket
	cur     int
}

// NewController builds a controller over the actuator's backends. The
// controller takes no actions until signals arrive.
func NewController(cfg Config, act Actuator) *Controller {
	if act == nil {
		panic("adapt: NewController with nil actuator")
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:       cfg,
		act:       act,
		log:       NewDecisionLog(cfg.LogCapacity),
		backends:  make(map[string]*backendState),
		policy:    cfg.BasePolicy,
		mechanism: cfg.BaseMechanism,
	}
	for _, name := range act.Backends() {
		c.order = append(c.order, name)
		c.backends[name] = &backendState{}
	}
	if cfg.MechanismTarget != cfg.BaseMechanism {
		c.steps = append(c.steps, step{policy: false, target: cfg.MechanismTarget, base: cfg.BaseMechanism})
	}
	if cfg.PolicyTarget != cfg.BasePolicy {
		c.steps = append(c.steps, step{policy: true, target: cfg.PolicyTarget, base: cfg.BasePolicy})
	}
	nb := int((cfg.Window + cfg.Tick - 1) / cfg.Tick)
	if nb < 1 {
		nb = 1
	}
	c.buckets = make([]rateBucket, nb)
	return c
}

// TickInterval returns the configured controller step period.
func (c *Controller) TickInterval() time.Duration { return c.cfg.Tick }

// Log exposes the decision log.
func (c *Controller) Log() *DecisionLog { return c.log }

// State snapshots the controller.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := State{
		Level:     c.level,
		Tightened: c.tightened,
		Fallback:  c.fallback,
		Policy:    c.policy,
		Mechanism: c.mechanism,
		Decisions: c.log.Appended(),
	}
	st.VLRTRate, st.RejectRate, _ = c.rates()
	for _, name := range c.order {
		if c.backends[name].quarantined {
			st.Quarantined = append(st.Quarantined, name)
		}
	}
	return st
}

// OnEvent consumes one observability event (the EventLog append hook).
// Detector onsets trigger quarantine, detector confirmations trigger an
// immediate probe of the (now recovered) backend, and rejects feed the
// reject-rate window.
func (c *Controller) OnEvent(ev obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case obs.KindOnset:
		// Onsets block de-escalation even when no quarantine follows:
		// the tier is only quiet once the detectors are.
		if ev.T > c.lastOnset {
			c.lastOnset = ev.T
		}
		c.buckets[c.cur].onsets++
		if bs := c.backends[ev.Source]; bs != nil {
			bs.spanOpen = true
		}
		c.onsetLocked(ev.T, ev.Source)
		if c.cfg.OnsetTrip > 0 && c.windowOnsets() >= c.cfg.OnsetTrip {
			c.escalateLocked(ev.T, "onset_storm")
		}
	case obs.KindMillibottleneck:
		// The saturation span closed: the stalled backend is likely
		// responsive again, so probe it right away instead of waiting
		// out the probe interval.
		bs := c.backends[ev.Source]
		if bs != nil {
			bs.spanOpen = false
		}
		if bs != nil && bs.quarantined {
			bs.lastProbe = ev.T
			c.act.ArmProbe(ev.Source)
			c.record(Decision{T: ev.T, Action: ActionProbe, Backend: ev.Source, Reason: "mb_end"})
		}
	case obs.KindReject:
		c.buckets[c.cur].rejects++
	}
}

// OnOutcome consumes one request outcome.
func (c *Controller) OnOutcome(now time.Duration, rt time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets[c.cur].outcomes++
	if !ok || rt >= c.cfg.VLRTThreshold {
		c.buckets[c.cur].bad++
	}
}

// OnRejects consumes a batch of n balancer rejects (for substrates that
// poll counters instead of streaming reject events).
func (c *Controller) OnRejects(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets[c.cur].rejects += n
}

// OnProbe consumes one probe outcome for a quarantined backend.
func (c *Controller) OnProbe(now time.Duration, backend string, rt time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bs := c.backends[backend]
	if bs == nil || !bs.quarantined {
		return
	}
	if ok && rt <= c.cfg.ProbeRTBudget {
		bs.goodProbes++
		// While the detector's saturation span is still open the backend
		// is mid-millibottleneck no matter what one probe says — a flush
		// is a train of micro-stalls, and a probe landing in a gap
		// between them is not evidence of recovery. Flap damping
		// additionally holds a flapping backend one extra ProbeInterval
		// per flap (time-based, because substrates may run one probe per
		// balancer and report several outcomes for a single arm). The
		// parole bound still caps the total hold.
		hold := time.Duration(bs.flaps) * c.cfg.ProbeInterval
		if bs.goodProbes >= c.cfg.ReadmitAfter && !bs.spanOpen && now-bs.since >= hold {
			c.readmitLocked(now, backend, "probe_ok")
		}
		return
	}
	bs.goodProbes = 0
}

// Tick advances the controller one step: quarantine maintenance (probe
// scheduling and the parole bound), hysteresis evaluation, and window
// rotation. The substrate calls it every TickInterval.
func (c *Controller) Tick(now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()

	for _, name := range c.order {
		bs := c.backends[name]
		if !bs.quarantined {
			continue
		}
		if now-bs.since >= c.cfg.MaxQuarantine {
			c.readmitLocked(now, name, "max_quarantine")
			continue
		}
		if now-bs.lastProbe >= c.cfg.ProbeInterval {
			bs.lastProbe = now
			c.act.ArmProbe(name)
			c.record(Decision{T: now, Action: ActionProbe, Backend: name, Reason: "interval"})
		}
	}

	vlrtRate, rejectRate, outcomes := c.rates()
	trip := (outcomes >= c.cfg.MinSamples && vlrtRate >= c.cfg.VLRTTrip) ||
		rejectRate >= c.cfg.RejectTrip
	clear := vlrtRate <= c.cfg.VLRTClear && rejectRate <= c.cfg.RejectClear
	switch {
	case trip:
		c.clearArmed = false
		if now-c.lastShift >= c.cfg.MinDwell {
			c.escalateLocked(now, "trip")
		}
	case clear:
		if !c.clearArmed {
			c.clearArmed = true
			c.clearSince = now
		} else if now-c.clearSince >= c.cfg.ClearDwell && now-c.lastShift >= c.cfg.MinDwell &&
			now-c.lastOnset >= c.cfg.ClearDwell {
			// Slow release: revert only once the rates have stayed clear
			// AND the detectors have been silent for the full ClearDwell.
			// A remedy that is merely masking recurring millibottlenecks
			// keeps the rates clear while onsets continue; reverting then
			// would re-expose the tier once per flush cycle.
			c.deescalateLocked(now, vlrtRate, rejectRate)
		}
	default:
		c.clearArmed = false
	}

	c.cur = (c.cur + 1) % len(c.buckets)
	c.buckets[c.cur] = rateBucket{}
}

// rates sums the window buckets; the caller holds c.mu.
func (c *Controller) rates() (vlrtRate, rejectRate float64, outcomes int) {
	bad, rejects := 0, 0
	for _, b := range c.buckets {
		outcomes += b.outcomes
		bad += b.bad
		rejects += b.rejects
	}
	if outcomes > 0 {
		vlrtRate = float64(bad) / float64(outcomes)
	}
	windowSec := (time.Duration(len(c.buckets)) * c.cfg.Tick).Seconds()
	rejectRate = float64(rejects) / windowSec
	return vlrtRate, rejectRate, outcomes
}

// onsetLocked handles a detector onset for one backend.
func (c *Controller) onsetLocked(now time.Duration, name string) {
	if c.cfg.DisableQuarantine || c.fallback {
		return
	}
	bs := c.backends[name]
	if bs == nil || bs.quarantined {
		return
	}
	quarantined := 0
	for _, other := range c.backends {
		if other.quarantined {
			quarantined++
		}
	}
	if quarantined >= len(c.order)-1 {
		// The last healthy backend looks stalled too: draining it would
		// leave nowhere to route. Lift every quarantine and fall back to
		// round_robin so requests keep draining somewhere.
		c.enterFallbackLocked(now)
		return
	}
	if bs.lastReadmit > 0 && now-bs.lastReadmit <= c.cfg.FlapWindow {
		bs.flaps++
	} else {
		bs.flaps = 0
	}
	bs.quarantined = true
	bs.since, bs.lastProbe, bs.goodProbes = now, now, 0
	c.act.SetQuarantine(name, true)
	vlrt, rej, _ := c.rates()
	c.record(Decision{T: now, Action: ActionQuarantine, Backend: name,
		Reason: "mb_onset", VLRTRate: vlrt, RejectRate: rej, Level: c.level})
	// Tier-wide stall reflex: a strict majority of backends stalled at
	// once means every dispatch path risks the original mechanism's
	// polling pile-up — the paper's amplifier. The mechanism rung is
	// cheap and reversible, so apply it immediately instead of waiting
	// for the VLRT window to fill and the dwell to pass (by then the
	// millibottleneck is over and the damage done).
	if 2*(quarantined+1) > len(c.order) {
		c.ensureFailFastLocked(now, "tier_stall")
	}
}

// ensureFailFastLocked applies the pending mechanism rung right away,
// bypassing the dwell gate. A no-op when the next rung is a policy swap
// or the ladder is exhausted.
func (c *Controller) ensureFailFastLocked(now time.Duration, reason string) {
	if c.level >= len(c.steps) || c.steps[c.level].policy {
		return
	}
	s := c.steps[c.level]
	c.level++
	c.mechanism = s.target
	c.act.SetMechanism(s.target)
	c.lastShift = now
	vlrt, rej, _ := c.rates()
	c.record(Decision{T: now, Action: ActionSwapMechanism, Policy: c.policy,
		Mechanism: c.mechanism, Reason: reason, VLRTRate: vlrt, RejectRate: rej, Level: c.level})
	c.setTightenLocked(now, true, reason)
}

// readmitLocked lifts one quarantine.
func (c *Controller) readmitLocked(now time.Duration, name, reason string) {
	bs := c.backends[name]
	bs.quarantined = false
	bs.goodProbes = 0
	bs.lastReadmit = now
	c.act.SetQuarantine(name, false)
	c.record(Decision{T: now, Action: ActionReadmit, Backend: name, Reason: reason, Level: c.level})
}

// enterFallbackLocked lifts every quarantine and swaps to the fallback
// policy.
func (c *Controller) enterFallbackLocked(now time.Duration) {
	// Everything is stalled: polling any backend holds workers for the
	// full acquire window, so make sure the fail-fast mechanism is in
	// before opening the floodgates.
	c.ensureFailFastLocked(now, "all_backends_stalled")
	for _, name := range c.order {
		bs := c.backends[name]
		if bs.quarantined {
			bs.quarantined = false
			bs.goodProbes = 0
			c.act.SetQuarantine(name, false)
		}
	}
	c.fallback = true
	c.policy = c.cfg.FallbackPolicy
	c.act.SetPolicy(c.cfg.FallbackPolicy)
	c.lastShift = now
	c.clearArmed = false
	vlrt, rej, _ := c.rates()
	c.record(Decision{T: now, Action: ActionFallback, Policy: c.policy,
		Mechanism: c.mechanism, Reason: "all_backends_stalled",
		VLRTRate: vlrt, RejectRate: rej, Level: c.level})
}

// windowOnsets sums the detector onsets across the window buckets; the
// caller holds c.mu.
func (c *Controller) windowOnsets() int {
	n := 0
	for _, b := range c.buckets {
		n += b.onsets
	}
	return n
}

// setTightenLocked drives the optional admission-gate squeeze. Only
// actuators implementing LimitActuator over a live gate record the
// transition; state is edge-triggered so repeated escalations do not
// stack halvings.
func (c *Controller) setTightenLocked(now time.Duration, on bool, reason string) {
	if c.tightened == on {
		return
	}
	la, ok := c.act.(LimitActuator)
	if !ok || !la.TightenLimit(on) {
		return
	}
	c.tightened = on
	action := ActionTightenLimit
	if !on {
		action = ActionRelaxLimit
	}
	c.record(Decision{T: now, Action: action, Reason: reason, Level: c.level})
}

// escalateLocked applies the next remediation rung.
func (c *Controller) escalateLocked(now time.Duration, reason string) {
	if c.fallback {
		return
	}
	// Tighten admission with the first rung (and keep the squeeze on an
	// exhausted ladder): shedding at the door buys the tier headroom
	// while the swap takes effect.
	c.setTightenLocked(now, true, reason)
	if c.level >= len(c.steps) {
		return
	}
	s := c.steps[c.level]
	c.level++
	action := ActionSwapMechanism
	if s.policy {
		c.policy = s.target
		c.act.SetPolicy(s.target)
		action = ActionSwapPolicy
	} else {
		c.mechanism = s.target
		c.act.SetMechanism(s.target)
	}
	c.lastShift = now
	vlrt, rej, _ := c.rates()
	c.record(Decision{T: now, Action: action, Policy: c.policy,
		Mechanism: c.mechanism, Reason: reason, VLRTRate: vlrt, RejectRate: rej, Level: c.level})
}

// deescalateLocked exits the fallback or undoes the most recent rung.
func (c *Controller) deescalateLocked(now time.Duration, vlrt, rej float64) {
	if c.fallback {
		c.fallback = false
		c.policy = c.cfg.BasePolicy
		for _, s := range c.steps[:c.level] {
			if s.policy {
				c.policy = s.target
			}
		}
		c.act.SetPolicy(c.policy)
		c.lastShift = now
		c.clearArmed = false
		c.record(Decision{T: now, Action: ActionFallbackExit, Policy: c.policy,
			Mechanism: c.mechanism, Reason: "clear", VLRTRate: vlrt, RejectRate: rej, Level: c.level})
		return
	}
	if c.level == 0 {
		return
	}
	c.level--
	s := c.steps[c.level]
	action := ActionRevertMechanism
	if s.policy {
		c.policy = s.base
		c.act.SetPolicy(s.base)
		action = ActionRevertPolicy
	} else {
		c.mechanism = s.base
		c.act.SetMechanism(s.base)
	}
	c.lastShift = now
	c.clearArmed = false
	c.record(Decision{T: now, Action: action, Policy: c.policy,
		Mechanism: c.mechanism, Reason: "clear", VLRTRate: vlrt, RejectRate: rej, Level: c.level})
	// Relax the admission squeeze only once the ladder is fully unwound
	// — the slow-release side of the hysteresis applies to shedding too.
	if c.level == 0 {
		c.setTightenLocked(now, false, "clear")
	}
}

func (c *Controller) record(d Decision) { c.log.Append(d) }

package adapt

import (
	"time"

	"millibalance/internal/obs"
)

// BackendSample is one tick's worth of per-backend balancer counters,
// the raw material stall synthesis works from. Substrates without an
// online millibottleneck detector (the wall-clock proxy) read these off
// their balancer — or off an armed telemetry timeline, which records
// the same gauges — and feed them to a StallWatch.
type BackendSample struct {
	// Completed is the cumulative completion count.
	Completed uint64
	// InFlight is the number of dispatched-but-uncompleted requests.
	InFlight int
	// FreeEndpoints is the number of idle endpoint-pool tokens.
	FreeEndpoints int
}

// stalled reports whether the sample shows the paper's stall signature:
// the endpoint pool is exhausted, work is in flight, and nothing
// completed since the previous observation.
func (s BackendSample) stalled(prevCompleted uint64) bool {
	return s.Completed == prevCompleted && s.FreeEndpoints == 0 && s.InFlight > 0
}

// stallState is the per-backend edge-detection state.
type stallState struct {
	completed uint64
	stalled   bool
	since     time.Duration
}

// StallWatch synthesizes detector onset/confirmation events from
// balancer counters, for substrates that lack the simulator's online
// millibottleneck detectors. A backend whose endpoint pool is exhausted
// with requests in flight and zero completions across an observation is
// stalled in exactly the sense the paper's detectors flag; the watch
// edge-detects that condition and emits obs.KindOnset when a backend
// enters it and obs.KindMillibottleneck (with the stall's span) when it
// leaves. Not safe for concurrent use; observe from one goroutine.
type StallWatch struct {
	state map[string]*stallState
}

// NewStallWatch returns an empty watch; backends are tracked lazily on
// first observation.
func NewStallWatch() *StallWatch {
	return &StallWatch{state: map[string]*stallState{}}
}

// Observe records one backend observation at time now. When the
// backend's stall state changes it returns the event to emit and
// fire=true; otherwise fire is false. The first observation of a
// backend only establishes its completion baseline: "zero completions
// across an interval" needs two samples, and judging the first one
// would flag every backend whose very first requests outlive a tick —
// a startup transient, not a millibottleneck.
func (w *StallWatch) Observe(now time.Duration, backend string, s BackendSample) (ev obs.Event, fire bool) {
	st, ok := w.state[backend]
	if !ok {
		w.state[backend] = &stallState{completed: s.Completed}
		return obs.Event{}, false
	}
	stalled := s.stalled(st.completed)
	st.completed = s.Completed
	switch {
	case stalled && !st.stalled:
		st.stalled = true
		st.since = now
		return obs.Event{T: now, Kind: obs.KindOnset, Source: backend}, true
	case !stalled && st.stalled:
		st.stalled = false
		return obs.Event{
			T: now, Kind: obs.KindMillibottleneck, Source: backend,
			SpanStart: st.since, SpanEnd: now,
		}, true
	}
	return obs.Event{}, false
}

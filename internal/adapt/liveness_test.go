package adapt

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"millibalance/internal/obs"
)

// TestQuarantineLiveness is the starvation property test: whatever
// detector event sequence the controller sees — onsets at arbitrary
// times, probes that always fail, probes that never run — every
// quarantined backend is re-admitted within MaxQuarantine of its last
// quarantine, because the parole bound in Tick does not depend on probe
// outcomes. The test drives randomized adversarial schedules and then a
// quiet period one parole interval long, and asserts nothing is left
// quarantined.
func TestQuarantineLiveness(t *testing.T) {
	backends := []string{"tomcat1", "tomcat2", "tomcat3", "tomcat4"}
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, seed^0xdead))
			cfg := testConfig()
			cfg.MaxQuarantine = 2 * time.Second
			act := newFakeActuator(backends...)
			c := NewController(cfg, act)

			// Adversarial phase: random onsets, confirmations, rejects,
			// outcomes and failing probes, with the controller ticking
			// throughout.
			now := time.Duration(0)
			for i := 0; i < 400; i++ {
				now += time.Duration(rng.IntN(50)+1) * time.Millisecond
				b := backends[rng.IntN(len(backends))]
				switch rng.IntN(6) {
				case 0:
					c.OnEvent(obs.Event{T: now, Kind: obs.KindOnset, Source: b})
				case 1:
					c.OnEvent(obs.Event{T: now, Kind: obs.KindMillibottleneck, Source: b,
						SpanStart: now - 200*time.Millisecond, SpanEnd: now})
				case 2:
					c.OnEvent(obs.Event{T: now, Kind: obs.KindReject, Source: "apache1"})
				case 3:
					c.OnOutcome(now, time.Duration(rng.IntN(3000))*time.Millisecond, rng.IntN(2) == 0)
				case 4:
					// Probes always fail: re-admission must not rely on them.
					c.OnProbe(now, b, 0, false)
				case 5:
					c.Tick(now)
				}
			}

			// Quiet phase: only ticks, for one full parole interval past
			// the last possible quarantine.
			deadline := now + cfg.MaxQuarantine + 200*time.Millisecond
			for now < deadline {
				now += 100 * time.Millisecond
				c.Tick(now)
			}

			st := c.State()
			if len(st.Quarantined) != 0 {
				t.Fatalf("backends still quarantined after parole: %v", st.Quarantined)
			}
			for _, b := range backends {
				act.mu.Lock()
				on := act.quarantined[b]
				act.mu.Unlock()
				if on {
					t.Fatalf("actuator still has %s quarantined", b)
				}
			}
			// Invariant held throughout: never more than N−1 quarantined.
			maxQ := 0
			cur := map[string]bool{}
			for _, d := range c.Log().Decisions() {
				switch d.Action {
				case ActionQuarantine:
					cur[d.Backend] = true
				case ActionReadmit:
					delete(cur, d.Backend)
				case ActionFallback:
					cur = map[string]bool{}
				}
				if len(cur) > maxQ {
					maxQ = len(cur)
				}
			}
			if maxQ > len(backends)-1 {
				t.Fatalf("quarantined %d of %d backends", maxQ, len(backends))
			}
		})
	}
}

package adapt

import (
	"testing"
	"time"

	"millibalance/internal/obs"
)

func TestStallWatchEdgeDetection(t *testing.T) {
	w := NewStallWatch()
	tick := 20 * time.Millisecond

	// First observation only baselines, even when it looks stalled:
	// zero completions with a full pool is indistinguishable from
	// startup until a second sample shows no progress.
	ev, fire := w.Observe(tick, "app1", BackendSample{Completed: 0, InFlight: 4, FreeEndpoints: 0})
	if fire {
		t.Fatalf("first observation fired %+v, want baseline only", ev)
	}

	// Second observation with no progress: onset.
	ev, fire = w.Observe(2*tick, "app1", BackendSample{Completed: 0, InFlight: 4, FreeEndpoints: 0})
	if !fire || ev.Kind != obs.KindOnset {
		t.Fatalf("stalled sample -> (%+v, %v), want KindOnset", ev, fire)
	}
	if ev.Source != "app1" || ev.T != 2*tick {
		t.Fatalf("onset event %+v, want source app1 at %v", ev, 2*tick)
	}

	// Still stalled: no repeat onset.
	if _, fire = w.Observe(3*tick, "app1", BackendSample{Completed: 0, InFlight: 4, FreeEndpoints: 0}); fire {
		t.Fatal("repeated stalled sample fired again")
	}

	// Progress resumes: confirmation spanning the whole stall.
	ev, fire = w.Observe(4*tick, "app1", BackendSample{Completed: 7, InFlight: 1, FreeEndpoints: 3})
	if !fire || ev.Kind != obs.KindMillibottleneck {
		t.Fatalf("recovery sample -> (%+v, %v), want KindMillibottleneck", ev, fire)
	}
	if ev.SpanStart != 2*tick || ev.SpanEnd != 4*tick {
		t.Fatalf("confirmation span [%v, %v], want [%v, %v]", ev.SpanStart, ev.SpanEnd, 2*tick, 4*tick)
	}

	// Healthy samples never fire, whatever the pool looks like.
	for i, s := range []BackendSample{
		{Completed: 8, InFlight: 4, FreeEndpoints: 0}, // busy but progressing
		{Completed: 8, InFlight: 0, FreeEndpoints: 4}, // idle
		{Completed: 8, InFlight: 2, FreeEndpoints: 2}, // pool not exhausted
	} {
		if ev, fire := w.Observe(time.Duration(5+i)*tick, "app1", s); fire {
			t.Fatalf("healthy sample %d fired %+v", i, ev)
		}
	}
}

func TestStallWatchTracksBackendsIndependently(t *testing.T) {
	w := NewStallWatch()
	stalled := BackendSample{Completed: 3, InFlight: 2, FreeEndpoints: 0}
	healthy := BackendSample{Completed: 9, InFlight: 1, FreeEndpoints: 3}

	w.Observe(time.Millisecond, "app1", stalled)
	w.Observe(time.Millisecond, "app2", BackendSample{Completed: 5, InFlight: 0, FreeEndpoints: 4})

	ev, fire := w.Observe(2*time.Millisecond, "app1", stalled)
	if !fire || ev.Kind != obs.KindOnset || ev.Source != "app1" {
		t.Fatalf("app1 stall -> (%+v, %v), want onset for app1", ev, fire)
	}
	if ev, fire := w.Observe(2*time.Millisecond, "app2", healthy); fire {
		t.Fatalf("healthy app2 fired %+v", ev)
	}
}

package adapt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Decision actions recorded by the controller.
const (
	// ActionQuarantine drains a detected-stalled backend.
	ActionQuarantine = "quarantine"
	// ActionProbe arms one probe request toward a quarantined backend.
	ActionProbe = "probe"
	// ActionReadmit lifts a quarantine (probe success or parole).
	ActionReadmit = "readmit"
	// ActionSwapMechanism hot-swaps the get_endpoint mechanism to the
	// remedy target.
	ActionSwapMechanism = "swap_mechanism"
	// ActionSwapPolicy hot-swaps the balancing policy to the remedy
	// target.
	ActionSwapPolicy = "swap_policy"
	// ActionRevertMechanism and ActionRevertPolicy undo the swaps after
	// a sustained clear period.
	ActionRevertMechanism = "revert_mechanism"
	ActionRevertPolicy    = "revert_policy"
	// ActionFallback switches to the information-free fallback policy
	// because every candidate looks stalled.
	ActionFallback = "fallback"
	// ActionFallbackExit leaves the fallback once the system clears.
	ActionFallbackExit = "fallback_exit"
	// ActionTightenLimit halves the admission gate's concurrency limit
	// and blocks adaptive growth alongside an escalation rung;
	// ActionRelaxLimit restores it once the ladder fully unwinds. Only
	// recorded when the actuator fronts an admission gate.
	ActionTightenLimit = "tighten_limit"
	ActionRelaxLimit   = "relax_limit"
)

// Decision is one controller action, with the signal levels that
// triggered it.
type Decision struct {
	T      time.Duration `json:"t"`
	Action string        `json:"action"`
	// Backend names the target of quarantine/probe/readmit actions.
	Backend string `json:"backend,omitempty"`
	// Policy and Mechanism are the active names after the action.
	Policy    string `json:"policy,omitempty"`
	Mechanism string `json:"mechanism,omitempty"`
	// Reason is a short machine-readable trigger tag.
	Reason string `json:"reason,omitempty"`
	// VLRTRate is the windowed fraction of bad (VLRT or failed)
	// outcomes; RejectRate is windowed rejects per second.
	VLRTRate   float64 `json:"vlrt_rate,omitempty"`
	RejectRate float64 `json:"reject_rate,omitempty"`
	// Level is the remediation level after the action.
	Level int `json:"level,omitempty"`
}

// DecisionLog collects controller decisions into a bounded ring,
// overwriting the oldest when full. Safe for concurrent use; nil-safe.
type DecisionLog struct {
	mu        sync.Mutex
	capacity  int
	ring      []Decision
	next      int
	full      bool
	appended  uint64
	overwrote uint64
}

// NewDecisionLog returns a log bounded at capacity decisions (minimum
// one).
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity < 1 {
		capacity = 1
	}
	return &DecisionLog{capacity: capacity}
}

// Append records a decision. Nil-safe.
func (l *DecisionLog) Append(d Decision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appended++
	if len(l.ring) < l.capacity {
		l.ring = append(l.ring, d)
		return
	}
	l.ring[l.next] = d
	l.next = (l.next + 1) % l.capacity
	l.full = true
	l.overwrote++
}

// Len reports stored decisions.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Appended reports the lifetime decision count.
func (l *DecisionLog) Appended() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Overwritten reports decisions evicted by the ring bound.
func (l *DecisionLog) Overwritten() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overwrote
}

// Decisions returns the stored decisions oldest-first.
func (l *DecisionLog) Decisions() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, 0, len(l.ring))
	if l.full {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
		return out
	}
	return append(out, l.ring...)
}

// Count reports stored decisions with the given action.
func (l *DecisionLog) Count(action string) int {
	n := 0
	for _, d := range l.Decisions() {
		if d.Action == action {
			n++
		}
	}
	return n
}

// WriteJSONL writes the stored decisions oldest-first as JSON Lines.
func (l *DecisionLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, d := range l.Decisions() {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("adapt: encode decision: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses decisions from a JSON Lines stream, the inverse of
// WriteJSONL.
func ReadJSONL(r io.Reader) ([]Decision, error) {
	var out []Decision
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var d Decision
		if err := json.Unmarshal(line, &d); err != nil {
			return nil, fmt.Errorf("adapt: decode decision: %w", err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("adapt: read decisions: %w", err)
	}
	return out, nil
}

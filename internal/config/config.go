// Package config serializes experiment configurations as human-editable
// JSON: durations are written as Go duration strings ("30s", "100ms")
// rather than nanosecond integers, and every field maps one-to-one onto
// cluster.Config. It backs the CLI tools' -config-file flags.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/netmodel"
	"millibalance/internal/resource"
	"millibalance/internal/workload"
)

// Duration marshals as a Go duration string.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler, accepting both duration
// strings and plain nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var asString string
	if err := json.Unmarshal(data, &asString); err == nil {
		parsed, err := time.ParseDuration(asString)
		if err != nil {
			return fmt.Errorf("config: bad duration %q: %w", asString, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var asInt int64
	if err := json.Unmarshal(data, &asInt); err != nil {
		return fmt.Errorf("config: duration must be a string like \"100ms\" or nanoseconds: %s", data)
	}
	*d = Duration(asInt)
	return nil
}

// Writeback mirrors resource.WritebackConfig.
type Writeback struct {
	Interval        Duration `json:"interval"`
	Phase           Duration `json:"phase,omitempty"`
	DirtyThreshold  int64    `json:"dirty_threshold,omitempty"`
	DiskWriteRate   float64  `json:"disk_write_rate"`
	MaxStall        Duration `json:"max_stall,omitempty"`
	SlowFlushProb   float64  `json:"slow_flush_prob,omitempty"`
	SlowFlushFactor float64  `json:"slow_flush_factor,omitempty"`
}

func (w Writeback) toResource() resource.WritebackConfig {
	return resource.WritebackConfig{
		Interval:        time.Duration(w.Interval),
		Phase:           time.Duration(w.Phase),
		DirtyThreshold:  w.DirtyThreshold,
		Disk:            resource.Disk{WriteRate: w.DiskWriteRate},
		MaxStall:        time.Duration(w.MaxStall),
		SlowFlushProb:   w.SlowFlushProb,
		SlowFlushFactor: w.SlowFlushFactor,
	}
}

func writebackFrom(w resource.WritebackConfig) Writeback {
	return Writeback{
		Interval:        Duration(w.Interval),
		Phase:           Duration(w.Phase),
		DirtyThreshold:  w.DirtyThreshold,
		DiskWriteRate:   w.Disk.WriteRate,
		MaxStall:        Duration(w.MaxStall),
		SlowFlushProb:   w.SlowFlushProb,
		SlowFlushFactor: w.SlowFlushFactor,
	}
}

// Burst mirrors workload.BurstConfig.
type Burst struct {
	Period    Duration `json:"period"`
	DutyCycle float64  `json:"duty_cycle"`
	Factor    float64  `json:"factor"`
}

// Balancer mirrors lb.Config.
type Balancer struct {
	BusyRecovery     Duration `json:"busy_recovery,omitempty"`
	ErrorThreshold   int      `json:"error_threshold,omitempty"`
	ErrorAfter       Duration `json:"error_after,omitempty"`
	ErrorRecovery    Duration `json:"error_recovery,omitempty"`
	MaxAttempts      int      `json:"max_attempts,omitempty"`
	Sweeps           int      `json:"sweeps,omitempty"`
	SweepPause       Duration `json:"sweep_pause,omitempty"`
	MaintainInterval Duration `json:"maintain_interval,omitempty"`
	StickySessions   bool     `json:"sticky_sessions,omitempty"`
}

// Experiment is the JSON shape of cluster.Config.
type Experiment struct {
	Seed1      uint64   `json:"seed1,omitempty"`
	Seed2      uint64   `json:"seed2,omitempty"`
	Duration   Duration `json:"duration"`
	Clients    int      `json:"clients"`
	ThinkTime  Duration `json:"think_time"`
	BrowseOnly bool     `json:"browse_only,omitempty"`
	Burst      *Burst   `json:"burst,omitempty"`
	// OpenLoopRate switches to Poisson arrivals at this rate (req/s).
	OpenLoopRate float64 `json:"open_loop_rate,omitempty"`

	NumWeb    int      `json:"num_web"`
	NumApp    int      `json:"num_app"`
	Policy    string   `json:"policy"`
	Mechanism string   `json:"mechanism"`
	LB        Balancer `json:"lb,omitempty"`

	WebCores     int       `json:"web_cores"`
	WebWorkers   int       `json:"web_workers"`
	WebBacklog   int       `json:"web_backlog"`
	ConnPoolSize int       `json:"conn_pool_size"`
	WebLogBytes  int64     `json:"web_log_bytes,omitempty"`
	WebWriteback Writeback `json:"web_writeback"`

	AppCores     int       `json:"app_cores"`
	AppWorkers   int       `json:"app_workers"`
	DBConns      int       `json:"db_conns"`
	AppWriteback Writeback `json:"app_writeback"`

	DBCores   int `json:"db_cores"`
	DBWorkers int `json:"db_workers"`

	LinkLatency    Duration   `json:"link_latency,omitempty"`
	Retransmit     []Duration `json:"retransmit,omitempty"`
	SampleInterval Duration   `json:"sample_interval,omitempty"`
	TraceCapacity  int        `json:"trace_capacity,omitempty"`
}

// ToCluster converts to a cluster.Config (not yet validated).
func (e Experiment) ToCluster() cluster.Config {
	cfg := cluster.Config{
		Seed1:      e.Seed1,
		Seed2:      e.Seed2,
		Duration:   time.Duration(e.Duration),
		Clients:    e.Clients,
		ThinkTime:  time.Duration(e.ThinkTime),
		BrowseOnly: e.BrowseOnly,

		OpenLoopRate: e.OpenLoopRate,

		NumWeb:    e.NumWeb,
		NumApp:    e.NumApp,
		Policy:    e.Policy,
		Mechanism: e.Mechanism,

		WebCores:     e.WebCores,
		WebWorkers:   e.WebWorkers,
		WebBacklog:   e.WebBacklog,
		ConnPoolSize: e.ConnPoolSize,
		WebLogBytes:  e.WebLogBytes,
		WebWriteback: e.WebWriteback.toResource(),

		AppCores:     e.AppCores,
		AppWorkers:   e.AppWorkers,
		DBConns:      e.DBConns,
		AppWriteback: e.AppWriteback.toResource(),

		DBCores:   e.DBCores,
		DBWorkers: e.DBWorkers,

		LinkLatency:    time.Duration(e.LinkLatency),
		SampleInterval: time.Duration(e.SampleInterval),
		TraceCapacity:  e.TraceCapacity,
	}
	cfg.LB.BusyRecovery = time.Duration(e.LB.BusyRecovery)
	cfg.LB.ErrorThreshold = e.LB.ErrorThreshold
	cfg.LB.ErrorAfter = time.Duration(e.LB.ErrorAfter)
	cfg.LB.ErrorRecovery = time.Duration(e.LB.ErrorRecovery)
	cfg.LB.MaxAttempts = e.LB.MaxAttempts
	cfg.LB.Sweeps = e.LB.Sweeps
	cfg.LB.SweepPause = time.Duration(e.LB.SweepPause)
	cfg.LB.MaintainInterval = time.Duration(e.LB.MaintainInterval)
	cfg.LB.StickySessions = e.LB.StickySessions
	if e.Burst != nil {
		cfg.Burst = &workload.BurstConfig{
			Period:    time.Duration(e.Burst.Period),
			DutyCycle: e.Burst.DutyCycle,
			Factor:    e.Burst.Factor,
		}
	}
	if len(e.Retransmit) > 0 {
		sched := make(netmodel.RetransmitSchedule, len(e.Retransmit))
		for i, d := range e.Retransmit {
			sched[i] = time.Duration(d)
		}
		cfg.Retransmit = sched
	}
	return cfg
}

// FromCluster converts a cluster.Config to its JSON shape.
func FromCluster(cfg cluster.Config) Experiment {
	e := Experiment{
		Seed1:      cfg.Seed1,
		Seed2:      cfg.Seed2,
		Duration:   Duration(cfg.Duration),
		Clients:    cfg.Clients,
		ThinkTime:  Duration(cfg.ThinkTime),
		BrowseOnly: cfg.BrowseOnly,

		OpenLoopRate: cfg.OpenLoopRate,

		NumWeb:    cfg.NumWeb,
		NumApp:    cfg.NumApp,
		Policy:    cfg.Policy,
		Mechanism: cfg.Mechanism,

		WebCores:     cfg.WebCores,
		WebWorkers:   cfg.WebWorkers,
		WebBacklog:   cfg.WebBacklog,
		ConnPoolSize: cfg.ConnPoolSize,
		WebLogBytes:  cfg.WebLogBytes,
		WebWriteback: writebackFrom(cfg.WebWriteback),

		AppCores:     cfg.AppCores,
		AppWorkers:   cfg.AppWorkers,
		DBConns:      cfg.DBConns,
		AppWriteback: writebackFrom(cfg.AppWriteback),

		DBCores:   cfg.DBCores,
		DBWorkers: cfg.DBWorkers,

		LinkLatency:    Duration(cfg.LinkLatency),
		SampleInterval: Duration(cfg.SampleInterval),
		TraceCapacity:  cfg.TraceCapacity,
	}
	e.LB = Balancer{
		BusyRecovery:     Duration(cfg.LB.BusyRecovery),
		ErrorThreshold:   cfg.LB.ErrorThreshold,
		ErrorAfter:       Duration(cfg.LB.ErrorAfter),
		ErrorRecovery:    Duration(cfg.LB.ErrorRecovery),
		MaxAttempts:      cfg.LB.MaxAttempts,
		Sweeps:           cfg.LB.Sweeps,
		SweepPause:       Duration(cfg.LB.SweepPause),
		MaintainInterval: Duration(cfg.LB.MaintainInterval),
		StickySessions:   cfg.LB.StickySessions,
	}
	if cfg.Burst != nil {
		e.Burst = &Burst{
			Period:    Duration(cfg.Burst.Period),
			DutyCycle: cfg.Burst.DutyCycle,
			Factor:    cfg.Burst.Factor,
		}
	}
	for _, d := range cfg.Retransmit {
		e.Retransmit = append(e.Retransmit, Duration(d))
	}
	return e
}

// Load reads a JSON experiment, converts it and validates the result.
func Load(r io.Reader) (cluster.Config, error) {
	var e Experiment
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return cluster.Config{}, fmt.Errorf("config: decode: %w", err)
	}
	cfg := e.ToCluster()
	if err := cfg.Validate(); err != nil {
		return cluster.Config{}, err
	}
	return cfg, nil
}

// Save writes the config as indented JSON.
func Save(w io.Writer, cfg cluster.Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(FromCluster(cfg)); err != nil {
		return fmt.Errorf("config: encode: %w", err)
	}
	return nil
}

package config

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"millibalance/internal/cluster"
	"millibalance/internal/netmodel"
	"millibalance/internal/workload"
)

func TestDurationMarshalsAsString(t *testing.T) {
	out, err := json.Marshal(Duration(1500 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"1.5s"` {
		t.Fatalf("marshalled %s", out)
	}
}

func TestDurationUnmarshalForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"250ms"`), &d); err != nil || d != Duration(250*time.Millisecond) {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1000000`), &d); err != nil || d != Duration(time.Millisecond) {
		t.Fatalf("int form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"nonsense"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
	if err := json.Unmarshal([]byte(`{"x":1}`), &d); err == nil {
		t.Fatal("object accepted as duration")
	}
}

func TestRoundTripPaperConfig(t *testing.T) {
	for _, cfg := range []cluster.Config{
		cluster.PaperConfig(),
		cluster.MiniConfig(),
		cluster.SingleChainConfig(),
	} {
		var buf bytes.Buffer
		if err := Save(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(got, cfg) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cfg)
		}
	}
}

func TestRoundTripWithBurstAndRetransmit(t *testing.T) {
	cfg := cluster.MiniConfig()
	cfg.Burst = &workload.BurstConfig{Period: 2 * time.Second, DutyCycle: 0.25, Factor: 3}
	cfg.Retransmit = netmodel.RetransmitSchedule{time.Second, 2 * time.Second}
	cfg.TraceCapacity = 1000
	cfg.LB.MaintainInterval = 200 * time.Millisecond

	var buf bytes.Buffer
	if err := Save(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"period": "2s"`) {
		t.Fatalf("burst not serialized readably:\n%s", buf.String())
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cfg) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cfg)
	}
}

func TestSaveIsHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, cluster.PaperConfig()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`"think_time": "7s"`,
		`"policy": "total_request"`,
		`"conn_pool_size": 25`,
		`"interval": "5s"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("saved JSON missing %q:\n%s", want, s)
		}
	}
}

func TestLoadValidates(t *testing.T) {
	// A structurally valid config with an invalid policy must fail
	// validation, not pass silently.
	e := FromCluster(cluster.MiniConfig())
	e.Policy = "bogus"
	raw, _ := json.Marshal(e)
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"clients": 10, "typo_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadedConfigRuns(t *testing.T) {
	cfg := cluster.MiniConfig()
	cfg.Duration = 2 * time.Second
	var buf bytes.Buffer
	if err := Save(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Run(loaded)
	if res.Responses.Total() == 0 {
		t.Fatal("loaded config ran no requests")
	}
	// Determinism carries through serialization.
	direct := cluster.Run(cfg)
	if direct.Responses.Total() != res.Responses.Total() {
		t.Fatalf("serialized run diverged: %d vs %d",
			res.Responses.Total(), direct.Responses.Total())
	}
}

func TestRoundTripStickySessions(t *testing.T) {
	cfg := cluster.MiniConfig()
	cfg.LB.StickySessions = true
	var buf bytes.Buffer
	if err := Save(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"sticky_sessions": true`) {
		t.Fatalf("sticky_sessions not serialized:\n%s", buf.String())
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.LB.StickySessions {
		t.Fatal("sticky_sessions lost in round trip")
	}
}

// Package telemetry is the repo's milliScope-style fine-grained
// monitoring layer: per-tier resource timelines sampled at a sub-second
// interval (50 ms by default, the paper's plotting granularity) into
// preallocated lock-free rings, plus the cross-tier correlation engine
// that aligns those timelines against VLRT clusters and ranks causal
// chains — the programmatic version of the paper's Figures 6–7
// methodology.
//
// The same Timeline/Track model serves both substrates. The simulator
// samples deterministic signals (queue lengths, busy fraction, frozen
// flags, dirty bytes) off the virtual clock, so replays stay
// byte-identical; the wall-clock substrate samples real process signals
// (goroutines, GC pause totals via runtime/metrics, heap bytes,
// per-backend in-flight and pool occupancy) from a background goroutine.
// Either way each ring has exactly one writer, which is what lets
// Append stay a handful of atomic stores with zero allocation while
// exporters read concurrently.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Canonical signal names. Sources are entity names (server, backend or
// process); signals are what was measured there. Keeping the vocabulary
// shared between substrates is what makes the correlation engine and
// the export surfaces substrate-agnostic.
const (
	// SignalQueueDepth is requests inside a server: waiting plus in
	// service (the paper's queue plots).
	SignalQueueDepth = "queue_depth"
	// SignalBusyFrac is the busy-core fraction over the sampling
	// interval, 0..1.
	SignalBusyFrac = "busy_frac"
	// SignalFrozen is 1 while the entity's CPU is stall-frozen
	// (writeback flush, injected freeze), else 0.
	SignalFrozen = "frozen"
	// SignalDirtyBytes is the writeback daemon's dirty-page backlog.
	SignalDirtyBytes = "dirty_bytes"
	// SignalConnPoolInUse is occupied connection-pool slots (the app
	// tier's DB pool, or a proxy backend's endpoint pool).
	SignalConnPoolInUse = "conn_pool_in_use"
	// SignalInFlight is dispatched-but-uncompleted requests on a
	// backend.
	SignalInFlight = "in_flight"
	// SignalPoolFree is free endpoint-pool slots on a backend.
	SignalPoolFree = "pool_free"
	// SignalCompleted is the lifetime completed-request counter of a
	// backend (a monotone counter sampled as a gauge; consumers diff
	// adjacent points for progress).
	SignalCompleted = "completed_total"
	// SignalAcceptWait is requests blocked waiting for a worker slot —
	// the accept-queue wait of the wall-clock proxy.
	SignalAcceptWait = "accept_wait"
	// SignalWorkersBusy is occupied proxy worker slots.
	SignalWorkersBusy = "workers_busy"
	// SignalGoroutines is the process goroutine count.
	SignalGoroutines = "goroutines"
	// SignalGCPauseTotal is the cumulative GC pause total in seconds,
	// estimated from runtime/metrics pause histograms.
	SignalGCPauseTotal = "gc_pause_total_seconds"
	// SignalHeapBytes is live heap object bytes.
	SignalHeapBytes = "heap_bytes"
	// SignalProbePoolDepth is the probing subsystem's non-stale sample
	// count for a backend — zero while the backend sits on its probes.
	SignalProbePoolDepth = "probe_pool_depth"
	// SignalProbeStalenessMs is the age of the backend's freshest probe
	// sample in milliseconds, or -1 when the pool is empty/aged out —
	// the signal that shows a frozen backend dropping out of prequal's
	// consideration.
	SignalProbeStalenessMs = "probe_staleness_ms"
	// SignalAdmitLimit is the admission gate's current concurrency
	// limit — the trace of the adaptive limiter tracking a stall.
	SignalAdmitLimit = "admission_limit"
	// SignalAdmitInFlight is admitted-but-unreleased requests at the
	// admission gate.
	SignalAdmitInFlight = "admission_in_flight"
	// SignalAdmitQueue is requests waiting in the admission gate's
	// pre-dispatch queue.
	SignalAdmitQueue = "admission_queue"
	// SignalAdmitDropRate is admission sheds per second over the
	// sampling window.
	SignalAdmitDropRate = "admission_drop_rate"
)

// Config sizes a timeline.
type Config struct {
	// Interval is the sampling interval. Default 50 ms — fine enough to
	// see millibottlenecks, the whole point of the layer.
	Interval time.Duration
	// Capacity is the per-track ring capacity. Default 4096 samples
	// (~3.4 minutes at 50 ms).
	Capacity int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	return c
}

// Track is one (source, signal) timeline backed by its own ring.
type Track struct {
	source string
	signal string
	ring   *Ring
}

// Source names the sampled entity.
func (t *Track) Source() string { return t.source }

// Signal names what was sampled.
func (t *Track) Signal() string { return t.signal }

// Append publishes one sample; single-writer, zero-alloc.
func (t *Track) Append(at time.Duration, v float64) { t.ring.Append(at, v) }

// Snapshot appends the track's stored points, oldest first, to dst.
func (t *Track) Snapshot(dst []Point) []Point { return t.ring.Snapshot(dst) }

// Latest returns the most recent point.
func (t *Track) Latest() (Point, bool) { return t.ring.Latest() }

// Len reports stored points.
func (t *Track) Len() int { return t.ring.Len() }

// Timeline is a set of tracks sharing one sampling interval and ring
// capacity. Tracks are registered during setup; sampling and reading
// may then proceed concurrently. All methods are nil-safe so disabled
// telemetry costs a nil check, nothing more.
type Timeline struct {
	cfg Config

	mu     sync.RWMutex
	tracks []*Track
	index  map[trackKey]*Track
}

type trackKey struct{ source, signal string }

// NewTimeline returns an empty timeline with defaults applied.
func NewTimeline(cfg Config) *Timeline {
	cfg = cfg.withDefaults()
	return &Timeline{cfg: cfg, index: make(map[trackKey]*Track)}
}

// Interval reports the sampling interval.
func (tl *Timeline) Interval() time.Duration {
	if tl == nil {
		return 0
	}
	return tl.cfg.Interval
}

// AddTrack registers (or returns the existing) track for the pair.
func (tl *Timeline) AddTrack(source, signal string) *Track {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	key := trackKey{source, signal}
	if t, ok := tl.index[key]; ok {
		return t
	}
	t := &Track{source: source, signal: signal, ring: NewRing(tl.cfg.Capacity)}
	tl.tracks = append(tl.tracks, t)
	tl.index[key] = t
	return t
}

// Tracks returns the registered tracks in registration order.
func (tl *Timeline) Tracks() []*Track {
	if tl == nil {
		return nil
	}
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	out := make([]*Track, len(tl.tracks))
	copy(out, tl.tracks)
	return out
}

// Lookup returns the track for the pair, or nil.
func (tl *Timeline) Lookup(source, signal string) *Track {
	if tl == nil {
		return nil
	}
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	return tl.index[trackKey{source, signal}]
}

// Signals returns the distinct signal names across tracks, sorted — the
// grouping the Prometheus exporter needs for its TYPE headers.
func (tl *Timeline) Signals() []string {
	if tl == nil {
		return nil
	}
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for _, t := range tl.tracks {
		if !seen[t.signal] {
			seen[t.signal] = true
			out = append(out, t.signal)
		}
	}
	sort.Strings(out)
	return out
}

// timelineLine is the JSONL export row.
type timelineLine struct {
	Source string        `json:"source"`
	Signal string        `json:"signal"`
	T      time.Duration `json:"t"`
	V      float64       `json:"v"`
}

// WriteJSONL writes every track's stored points as JSON Lines, one
// point per line, tracks in registration order, points oldest first.
// Nil-safe (writes nothing).
func (tl *Timeline) WriteJSONL(w io.Writer) error {
	if tl == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	var buf []Point
	for _, t := range tl.Tracks() {
		buf = t.Snapshot(buf[:0])
		for _, p := range buf {
			if err := enc.Encode(timelineLine{Source: t.Source(), Signal: t.Signal(), T: p.T, V: p.V}); err != nil {
				return fmt.Errorf("telemetry: encode point: %w", err)
			}
		}
	}
	return nil
}

// Sampler drives a fixed set of gauges into their tracks. It owns the
// write side of every registered track (the single-writer contract),
// so whoever calls Sample must do so from one goroutine — the sim
// engine thread or the wall sampler's ticker goroutine.
type Sampler struct {
	tl     *Timeline
	gauges []gauge
}

type gauge struct {
	track *Track
	read  func() float64
}

// NewSampler returns a sampler feeding the timeline.
func NewSampler(tl *Timeline) *Sampler {
	if tl == nil {
		return nil
	}
	return &Sampler{tl: tl}
}

// Register adds a gauge: read is called on every Sample and its value
// appended to the (source, signal) track. Nil-safe.
func (s *Sampler) Register(source, signal string, read func() float64) {
	if s == nil || read == nil {
		return
	}
	s.gauges = append(s.gauges, gauge{track: s.tl.AddTrack(source, signal), read: read})
}

// Sample reads every gauge and appends one point per track, all
// timestamped at. Zero allocations. Nil-safe.
func (s *Sampler) Sample(at time.Duration) {
	if s == nil {
		return
	}
	for i := range s.gauges {
		s.gauges[i].track.Append(at, s.gauges[i].read())
	}
}

// Timeline exposes the timeline being fed.
func (s *Sampler) Timeline() *Timeline {
	if s == nil {
		return nil
	}
	return s.tl
}

package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Point is one timestamped sample in a resource timeline. T is the
// offset from the timeline's epoch (virtual time in the simulator, time
// since sampler start in the wall-clock substrate).
type Point struct {
	T time.Duration `json:"t"`
	V float64       `json:"v"`
}

// slot is one ring cell, published with a per-slot sequence word. The
// sequence carries the sample's generation, not just an odd/even parity
// bit: after sample index i lands in the slot, seq == 2*(i+1); while
// the writer is mid-update, seq is odd. A reader that wants index i can
// therefore tell apart "torn" (odd), "stale" (an older generation) and
// "already overwritten" (a newer generation) with one load, and skip
// the slot instead of returning garbage.
type slot struct {
	seq atomic.Uint64
	t   atomic.Int64
	v   atomic.Uint64 // math.Float64bits
}

// Ring is a preallocated single-writer, many-reader ring of samples.
// Append never allocates and never blocks; Snapshot and Latest are
// wait-free and never observe a torn sample. The single-writer
// restriction is structural: each sampler goroutine owns the rings it
// feeds, so no write-side coordination is needed and the hot path is a
// handful of atomic stores.
type Ring struct {
	slots []slot
	head  atomic.Uint64 // lifetime count of published samples
}

// NewRing returns a ring holding the last capacity samples (minimum
// one). All memory is allocated up front.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]slot, capacity)}
}

// Cap reports the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Head reports the lifetime number of published samples. Sample indices
// [max(0, Head-Cap), Head) are addressable; older ones were overwritten.
func (r *Ring) Head() uint64 { return r.head.Load() }

// Len reports the number of samples currently stored.
func (r *Ring) Len() int {
	h := r.head.Load()
	if c := uint64(len(r.slots)); h > c {
		return int(c)
	}
	return int(h)
}

// Append publishes one sample. It must only be called from the ring's
// single writer goroutine. It performs no allocation.
func (r *Ring) Append(t time.Duration, v float64) {
	i := r.head.Load()
	s := &r.slots[i%uint64(len(r.slots))]
	s.seq.Store(2*i + 1) // odd: mid-update, readers skip
	s.t.Store(int64(t))
	s.v.Store(math.Float64bits(v))
	s.seq.Store(2 * (i + 1)) // even: generation i published
	r.head.Store(i + 1)
}

// load reads sample index i, reporting whether the slot still held that
// generation for the whole read.
func (r *Ring) load(i uint64) (Point, bool) {
	s := &r.slots[i%uint64(len(r.slots))]
	want := 2 * (i + 1)
	if s.seq.Load() != want {
		return Point{}, false
	}
	p := Point{T: time.Duration(s.t.Load()), V: math.Float64frombits(s.v.Load())}
	if s.seq.Load() != want {
		return Point{}, false
	}
	return p, true
}

// Snapshot appends the stored samples, oldest first, to dst and returns
// the extended slice. Samples overwritten mid-scan are skipped rather
// than returned torn, so a snapshot taken while the writer runs is a
// consistent (possibly slightly shorter) window. Pass a reused dst to
// avoid allocation.
func (r *Ring) Snapshot(dst []Point) []Point {
	h := r.head.Load()
	lo := uint64(0)
	if c := uint64(len(r.slots)); h > c {
		lo = h - c
	}
	for i := lo; i < h; i++ {
		if p, ok := r.load(i); ok {
			dst = append(dst, p)
		}
	}
	return dst
}

// Latest returns the most recent sample, or ok=false when the ring is
// empty (or the newest slots were all mid-overwrite, which a reader can
// treat the same way).
func (r *Ring) Latest() (Point, bool) {
	h := r.head.Load()
	lo := uint64(0)
	if c := uint64(len(r.slots)); h > c {
		lo = h - c
	}
	for i := h; i > lo; i-- {
		if p, ok := r.load(i - 1); ok {
			return p, true
		}
	}
	return Point{}, false
}

package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestRingAppendSnapshot(t *testing.T) {
	r := NewRing(4)
	if _, ok := r.Latest(); ok {
		t.Fatal("Latest on empty ring reported a point")
	}
	if got := r.Snapshot(nil); len(got) != 0 {
		t.Fatalf("Snapshot on empty ring = %v", got)
	}
	for i := 0; i < 3; i++ {
		r.Append(time.Duration(i)*time.Millisecond, float64(i))
	}
	got := r.Snapshot(nil)
	if len(got) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(got))
	}
	for i, p := range got {
		if p.T != time.Duration(i)*time.Millisecond || p.V != float64(i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	if p, ok := r.Latest(); !ok || p.V != 2 {
		t.Fatalf("Latest = %+v ok=%v, want V=2", p, ok)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(time.Duration(i), float64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Head() != 10 {
		t.Fatalf("Head = %d, want 10", r.Head())
	}
	got := r.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(got))
	}
	for i, p := range got {
		want := float64(6 + i) // samples 6..9 survive
		if p.V != want {
			t.Fatalf("point %d = %+v, want V=%g", i, p, want)
		}
	}
	if p, ok := r.Latest(); !ok || p.V != 9 {
		t.Fatalf("Latest = %+v ok=%v, want V=9", p, ok)
	}
}

func TestRingSnapshotReusesBuffer(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 8; i++ {
		r.Append(time.Duration(i), float64(i))
	}
	buf := make([]Point, 0, 8)
	got := r.Snapshot(buf)
	if len(got) != 8 || cap(got) != 8 {
		t.Fatalf("Snapshot len=%d cap=%d, want 8/8", len(got), cap(got))
	}
}

// TestRingAppendZeroAlloc pins the sampler hot path at zero
// allocations; the CI telemetry smoke runs it by name.
func TestRingAppendZeroAlloc(t *testing.T) {
	r := NewRing(64)
	n := 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.Append(time.Duration(n), float64(n))
		n++
	})
	if allocs != 0 {
		t.Fatalf("Ring.Append allocates %.1f per op, want 0", allocs)
	}
	tl := NewTimeline(Config{Capacity: 64})
	s := NewSampler(tl)
	v := 0.0
	s.Register("srv", SignalQueueDepth, func() float64 { return v })
	s.Register("srv", SignalBusyFrac, func() float64 { return v / 2 })
	allocs = testing.AllocsPerRun(1000, func() {
		v++
		s.Sample(time.Duration(v))
	})
	if allocs != 0 {
		t.Fatalf("Sampler.Sample allocates %.1f per op, want 0", allocs)
	}
}

// TestRingConcurrentReaders hammers one writer against several
// snapshot/latest readers under -race: readers must never observe a
// torn sample — every point they see must satisfy the writer's
// invariant V == float64(T).
func TestRingConcurrentReaders(t *testing.T) {
	r := NewRing(32)
	const total = 200_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Point
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				last := time.Duration(-1)
				for _, p := range buf {
					if p.V != float64(p.T) {
						t.Errorf("torn point: %+v", p)
						return
					}
					if p.T <= last {
						t.Errorf("out-of-order snapshot: %v after %v", p.T, last)
						return
					}
					last = p.T
				}
				if p, ok := r.Latest(); ok && p.V != float64(p.T) {
					t.Errorf("torn latest: %+v", p)
					return
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		r.Append(time.Duration(i), float64(i))
	}
	close(stop)
	wg.Wait()
}

package telemetry

import (
	"sort"
	"sync"
	"time"

	"millibalance/internal/obs"
	"millibalance/internal/stats"
)

// VLRTCluster is one burst of very-long-response-time requests, bounded
// by the completion times of its members — the paper's unit of damage
// (Fig. 2a/6a/7a spikes), and the thing the correlation engine explains.
type VLRTCluster struct {
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	Count int           `json:"count"`
}

// ClustersFromSeries groups the non-empty windows of a VLRT-per-window
// series (metrics.ResponseRecorder.VLRTWindows) into clusters, joining
// windows separated by at most gap.
func ClustersFromSeries(s *stats.Series, gap time.Duration) []VLRTCluster {
	if s == nil {
		return nil
	}
	var out []VLRTCluster
	for i := 0; i < s.Len(); i++ {
		w := s.At(i)
		if w.Count == 0 {
			continue
		}
		start, end := s.Start(i), s.Start(i)+s.Width()
		if n := len(out); n > 0 && start-out[n-1].End <= gap {
			out[n-1].End = end
			out[n-1].Count += int(w.Count)
			continue
		}
		out = append(out, VLRTCluster{Start: start, End: end, Count: int(w.Count)})
	}
	return out
}

// ClusterSpans groups finished spans whose response time meets the
// threshold into clusters by completion-time adjacency — the same
// clustering as ClustersFromSeries but driven straight off the PR 1
// span stream.
func ClusterSpans(spans []obs.Span, threshold, gap time.Duration) []VLRTCluster {
	var times []time.Duration
	for i := range spans {
		if spans[i].ResponseTime() >= threshold {
			times = append(times, spans[i].EndAt)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	var out []VLRTCluster
	for _, t := range times {
		if n := len(out); n > 0 && t-out[n-1].End <= gap {
			out[n-1].End = t
			out[n-1].Count++
			continue
		}
		out = append(out, VLRTCluster{Start: t, End: t, Count: 1})
	}
	return out
}

// Link is one ranked causal-chain entry: a resource spike on (Source,
// Signal) inside the cluster's lookback window, scored by how anomalous
// the spike is against the track's own baseline (Z), how much of the
// window stayed elevated (Overlap) and how far the spike precedes the
// cluster (Lag).
type Link struct {
	Source string `json:"source"`
	Signal string `json:"signal"`

	// Peak is the spike value, observed at PeakAt.
	Peak   float64       `json:"peak"`
	PeakAt time.Duration `json:"peak_at"`
	// Onset is when the spike began: the start of the contiguous
	// elevated run of samples containing the peak. Links are ranked by
	// onset — a causal chain is a propagation sequence, and the paper's
	// Fig. 6 reading identifies the root as the tier whose resource
	// deviated first, not hardest: queue spillover makes neighbours
	// spike harder in absolute terms moments later, and every tier's
	// signals are on incommensurable scales, but the order in which
	// strong anomalies appeared is scale-free. The MinZ bar exists to
	// keep weak jitter out of this ordering.
	Onset time.Duration `json:"onset"`
	// Baseline and Sigma are the track's robust whole-run centre and
	// scale: median and 1.4826×MAD. Robust statistics matter here — a
	// tier that stalls every few seconds would inflate its own mean and
	// standard deviation with its spikes and then look unremarkable
	// against them, exactly inverting the ranking; the median ignores
	// the spikes and keeps the repeat offender anomalous.
	Baseline float64 `json:"baseline"`
	Sigma    float64 `json:"sigma"`
	// Z is the spike's z-score against that baseline.
	Z float64 `json:"z"`
	// Lag is cluster start minus spike time: positive means the spike
	// preceded the VLRT burst, the causal direction.
	Lag time.Duration `json:"lag"`
	// Overlap is the elevated fraction of the lookback window, 0..1.
	Overlap float64 `json:"overlap"`
	// Dominance is this source's excursion (peak minus baseline)
	// relative to the largest excursion any source showed on the same
	// signal in the same window, 0..1. A tier that stalls every few
	// seconds has an inflated self-baseline σ and hence a modest
	// z-score, while its neighbours' small spillover wiggles look wildly
	// anomalous against their quiet baselines; comparing peers on the
	// same signal — the way the paper reads Fig. 6 — undoes that
	// inversion.
	Dominance float64 `json:"dominance"`
	// Score is the ranking key: Z weighted by overlap, lag direction and
	// peer dominance.
	Score float64 `json:"score"`
}

// Chain is the ranked causal-chain report for one VLRT cluster.
type Chain struct {
	Cluster VLRTCluster `json:"cluster"`
	Links   []Link      `json:"links"`
}

// Root returns the top-ranked link — the earliest strong spike, the
// chain's inferred root cause — or ok=false for an empty chain.
func (c Chain) Root() (Link, bool) {
	if len(c.Links) == 0 {
		return Link{}, false
	}
	return c.Links[0], true
}

// CorrelateConfig tunes the correlation engine.
type CorrelateConfig struct {
	// Window is the lookback before a cluster's start in which a
	// resource spike counts as a candidate cause. Default 2.5 s — wide
	// enough to reach back across one TCP retransmission (the paper's
	// dominant VLRT mechanism puts the stall 1–3 s before the cluster).
	Window time.Duration
	// MinZ is the minimum robust z-score for a spike to enter a chain.
	// Default 8: against a median/MAD baseline genuine millibottleneck
	// excursions score in the tens to hundreds while ordinary load
	// jitter stays in single digits, and the bar must separate the two
	// because link ranking is by onset — admit jitter and any
	// coincidental pre-stall flutter would claim the root slot.
	MinZ float64
	// MaxLinks caps the links per chain. Default 5.
	MaxLinks int
}

func (c CorrelateConfig) withDefaults() CorrelateConfig {
	if c.Window <= 0 {
		c.Window = 2500 * time.Millisecond
	}
	if c.MinZ <= 0 {
		c.MinZ = 8
	}
	if c.MaxLinks <= 0 {
		c.MaxLinks = 5
	}
	return c
}

// Correlate aligns the tracks against the VLRT clusters and returns one
// ranked chain per cluster — the programmatic Figures 6–7: "which
// tier's resource spiked just before this burst of very long requests,
// and how hard".
func Correlate(tracks []*Track, clusters []VLRTCluster, cfg CorrelateConfig) []Chain {
	cfg = cfg.withDefaults()
	chains := make([]Chain, len(clusters))
	for i, cl := range clusters {
		chains[i].Cluster = cl
	}
	var buf []Point
	for _, tr := range tracks {
		if tr == nil {
			continue
		}
		buf = tr.Snapshot(buf[:0])
		if len(buf) < 2 {
			continue
		}
		mean, sigma, ok := robustBaseline(buf)
		if !ok {
			continue // flat track: nothing ever spiked here
		}
		for i := range chains {
			if link, ok := scoreTrack(tr, buf, mean, sigma, chains[i].Cluster, cfg); ok {
				chains[i].Links = append(chains[i].Links, link)
			}
		}
	}
	for i := range chains {
		links := chains[i].Links
		// Peer dominance: within one (cluster, signal) group, scale each
		// link's score by its excursion relative to the group's largest.
		maxExc := make(map[string]float64, len(links))
		for _, l := range links {
			if exc := l.Peak - l.Baseline; exc > maxExc[l.Signal] {
				maxExc[l.Signal] = exc
			}
		}
		for j := range links {
			l := &links[j]
			l.Dominance = 1
			if top := maxExc[l.Signal]; top > 0 {
				l.Dominance = (l.Peak - l.Baseline) / top
			}
			l.Score *= l.Dominance
		}
		// Causal order: earliest spike onset first (onsets are
		// sample-aligned, so simultaneous discoveries compare equal),
		// breaking ties by score.
		sort.SliceStable(links, func(a, b int) bool {
			if links[a].Onset != links[b].Onset {
				return links[a].Onset < links[b].Onset
			}
			return links[a].Score > links[b].Score
		})
		if len(links) > cfg.MaxLinks {
			chains[i].Links = links[:cfg.MaxLinks]
		}
	}
	return chains
}

// robustBaseline estimates a track's quiet-time centre and scale as
// median and 1.4826×MAD. A zero MAD (binary or mostly-constant signals,
// e.g. the frozen flag) falls back to a floor of 5 % of the track's
// range, so rare excursions on such signals still get a finite, large
// z-score. ok is false for perfectly flat tracks.
func robustBaseline(pts []Point) (center, scale float64, ok bool) {
	vals := make([]float64, len(pts))
	lo, hi := pts[0].V, pts[0].V
	for i, p := range pts {
		vals[i] = p.V
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	if hi == lo {
		return 0, 0, false
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	for i, v := range vals {
		vals[i] = v - median
		if vals[i] < 0 {
			vals[i] = -vals[i]
		}
	}
	sort.Float64s(vals)
	scale = 1.4826 * vals[len(vals)/2]
	if scale == 0 {
		scale = 0.05 * (hi - lo)
	}
	return median, scale, true
}

// scoreTrack scores one track against one cluster's lookback window.
func scoreTrack(tr *Track, pts []Point, mean, sigma float64, cl VLRTCluster, cfg CorrelateConfig) (Link, bool) {
	from, to := cl.Start-cfg.Window, cl.End
	var (
		peak    float64
		peakAt  time.Duration
		peakIdx int
		inWin   int
		raised  int
		found   bool
	)
	// The elevation threshold is halfway between baseline and the MinZ
	// bar: low enough to measure spike width, high enough to ignore
	// baseline jitter.
	elevated := mean + cfg.MinZ*sigma/2
	for i, p := range pts {
		if p.T < from || p.T > to {
			continue
		}
		inWin++
		if p.V > elevated {
			raised++
		}
		if !found || p.V > peak {
			peak, peakAt, peakIdx, found = p.V, p.T, i, true
		}
	}
	if !found || inWin == 0 {
		return Link{}, false
	}
	// Spike onset: walk back from the peak while samples stay elevated.
	onset := peakAt
	for i := peakIdx; i >= 0 && pts[i].V > elevated; i-- {
		onset = pts[i].T
	}
	z := (peak - mean) / sigma
	if z < cfg.MinZ {
		return Link{}, false
	}
	lag := cl.Start - peakAt
	overlap := float64(raised) / float64(inWin)
	// Causes precede effects: a spike at or before the cluster start
	// keeps its full score; one that only appears after the burst began
	// is discounted toward half weight (it may be damage, not cause).
	lagWeight := 1.0
	if lag < 0 {
		span := float64(cl.End - cl.Start + cfg.Window)
		if span > 0 {
			frac := float64(-lag) / span
			if frac > 1 {
				frac = 1
			}
			lagWeight = 1 - frac/2
		}
	}
	return Link{
		Source:   tr.Source(),
		Signal:   tr.Signal(),
		Peak:     peak,
		PeakAt:   peakAt,
		Onset:    onset,
		Baseline: mean,
		Sigma:    sigma,
		Z:        z,
		Lag:      lag,
		Overlap:  overlap,
		Score:    z * (0.5 + 0.5*overlap) * lagWeight,
	}, true
}

// Correlator is the online face of the engine: wired to the PR 1 event
// stream, it runs a correlation pass the moment the streaming detector
// closes a millibottleneck span, against the live rings — so operators
// get ranked causal chains during the run, not only from post-mortem
// analysis.
type Correlator struct {
	tl  *Timeline
	cfg CorrelateConfig

	mu     sync.Mutex
	chains []Chain
}

// NewCorrelator returns a correlator over the timeline. Nil-safe to
// use with a nil timeline (every method no-ops).
func NewCorrelator(tl *Timeline, cfg CorrelateConfig) *Correlator {
	if tl == nil {
		return nil
	}
	return &Correlator{tl: tl, cfg: cfg.withDefaults()}
}

// OnEvent consumes the observability event stream; millibottleneck
// confirmations trigger a correlation pass over the saturation span.
// Nil-safe.
func (c *Correlator) OnEvent(ev obs.Event) {
	if c == nil || ev.Kind != obs.KindMillibottleneck {
		return
	}
	cluster := VLRTCluster{Start: ev.SpanStart, End: ev.SpanEnd, Count: 1}
	chains := Correlate(c.tl.Tracks(), []VLRTCluster{cluster}, c.cfg)
	c.mu.Lock()
	c.chains = append(c.chains, chains...)
	c.mu.Unlock()
}

// Chains returns the chains emitted so far, oldest first. Nil-safe.
func (c *Correlator) Chains() []Chain {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Chain, len(c.chains))
	copy(out, c.chains)
	return out
}

package telemetry

import (
	"math"
	"runtime/metrics"
	"time"
)

// runtime/metrics names sampled by the wall sampler. The pause metric
// moved under /sched in newer runtimes; both spellings are probed at
// construction and whichever the runtime supports is used.
const (
	metricGoroutines = "/sched/goroutines:goroutines"
	metricHeapBytes  = "/memory/classes/heap/objects:bytes"
	metricPausesNew  = "/sched/pauses/total/gc:seconds"
	metricPausesOld  = "/gc/pauses:seconds"
)

// WallSampler samples real process signals on a background goroutine at
// the timeline interval: runtime signals through runtime/metrics plus
// any gauges the host registers (per-backend in-flight, pool occupancy,
// worker saturation). Timestamps are offsets from Start, so wall
// timelines align with a run's epoch the way sim timelines align with
// virtual time zero.
type WallSampler struct {
	tl      *Timeline
	sampler *Sampler

	runtimeSamples []metrics.Sample
	grTrack        *Track // goroutine count
	heapTrack      *Track // heap object bytes
	pauseTrack     *Track // cumulative GC pause seconds (histogram estimate)
	pauseIdx       int    // index into runtimeSamples, -1 when unsupported

	epoch time.Time
	stop  chan struct{}
	done  chan struct{}
}

// NewWallSampler returns a sampler for the process, with the runtime
// signals registered under the given source name. Start must be called
// to begin sampling.
func NewWallSampler(source string, cfg Config) *WallSampler {
	tl := NewTimeline(cfg)
	w := &WallSampler{
		tl:       tl,
		sampler:  NewSampler(tl),
		pauseIdx: -1,
	}
	w.grTrack = tl.AddTrack(source, SignalGoroutines)
	w.heapTrack = tl.AddTrack(source, SignalHeapBytes)
	w.runtimeSamples = []metrics.Sample{
		{Name: metricGoroutines},
		{Name: metricHeapBytes},
	}
	if name, ok := supportedPauseMetric(); ok {
		w.pauseTrack = tl.AddTrack(source, SignalGCPauseTotal)
		w.runtimeSamples = append(w.runtimeSamples, metrics.Sample{Name: name})
		w.pauseIdx = len(w.runtimeSamples) - 1
	}
	return w
}

// supportedPauseMetric probes which GC pause histogram this runtime
// exposes.
func supportedPauseMetric() (string, bool) {
	for _, name := range []string{metricPausesNew, metricPausesOld} {
		probe := []metrics.Sample{{Name: name}}
		metrics.Read(probe)
		if probe[0].Value.Kind() == metrics.KindFloat64Histogram {
			return name, true
		}
	}
	return "", false
}

// Register adds a host gauge sampled alongside the runtime signals. It
// must be called before Start. Nil-safe.
func (w *WallSampler) Register(source, signal string, read func() float64) {
	if w == nil {
		return
	}
	w.sampler.Register(source, signal, read)
}

// Timeline exposes the timeline being fed. Nil-safe.
func (w *WallSampler) Timeline() *Timeline {
	if w == nil {
		return nil
	}
	return w.tl
}

// Start launches the sampling goroutine. It may be called once.
func (w *WallSampler) Start() {
	if w == nil {
		return
	}
	if w.stop != nil {
		panic("telemetry: WallSampler.Start called twice")
	}
	w.epoch = time.Now()
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.run()
}

// Stop halts sampling and waits for the goroutine to exit. Safe to call
// once after Start; nil-safe and a no-op when never started.
func (w *WallSampler) Stop() {
	if w == nil || w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
	w.stop = nil
}

func (w *WallSampler) run() {
	defer close(w.done)
	ticker := time.NewTicker(w.tl.Interval())
	defer ticker.Stop()
	w.sampleOnce() // an immediate first point, so short runs still export
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.sampleOnce()
		}
	}
}

func (w *WallSampler) sampleOnce() {
	at := time.Since(w.epoch)
	metrics.Read(w.runtimeSamples)
	w.grTrack.Append(at, float64(w.runtimeSamples[0].Value.Uint64()))
	w.heapTrack.Append(at, float64(w.runtimeSamples[1].Value.Uint64()))
	if w.pauseIdx >= 0 {
		w.pauseTrack.Append(at, histogramSum(w.runtimeSamples[w.pauseIdx].Value.Float64Histogram()))
	}
	w.sampler.Sample(at)
}

// histogramSum estimates the cumulative sum of a runtime/metrics
// histogram from bucket midpoints — the standard estimate for GC pause
// totals, since the runtime exports pause durations only as a
// distribution. Unbounded edge buckets fall back to their finite edge.
func histogramSum(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var sum float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		sum += mid * float64(count)
	}
	return sum
}

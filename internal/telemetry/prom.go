package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4), hand-rolled: the export
// surface needs exactly gauges and counters with one label, which is a
// page of code against pulling in a client library.

// PromLabel is one name="value" pair.
type PromLabel struct{ Name, Value string }

// WritePromHeader writes the # HELP / # TYPE preamble for a metric.
func WritePromHeader(w io.Writer, name, help, typ string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ); err != nil {
		return err
	}
	return nil
}

// WritePromSample writes one sample line with optional labels.
func WritePromSample(w io.Writer, name string, labels []PromLabel, v float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	if _, err := fmt.Fprintf(w, "%s %g\n", sb.String(), v); err != nil {
		return err
	}
	return nil
}

// WriteProm exports the latest point of every track as Prometheus
// gauges named prefix_<signal>{source="..."}, grouped per signal under
// one TYPE header. Monotone signals (completed_total, GC pause total)
// are typed counter. Nil-safe (writes nothing).
func (tl *Timeline) WriteProm(w io.Writer, prefix string) error {
	if tl == nil {
		return nil
	}
	bySignal := make(map[string][]*Track)
	for _, t := range tl.Tracks() {
		bySignal[t.Signal()] = append(bySignal[t.Signal()], t)
	}
	signals := make([]string, 0, len(bySignal))
	for sig := range bySignal {
		signals = append(signals, sig)
	}
	sort.Strings(signals)
	for _, sig := range signals {
		name := prefix + "_" + sanitizeMetricName(sig)
		typ := "gauge"
		if sig == SignalCompleted || sig == SignalGCPauseTotal {
			typ = "counter"
		}
		if err := WritePromHeader(w, name, "latest "+sig+" sample from the telemetry timeline", typ); err != nil {
			return err
		}
		for _, t := range bySignal[sig] {
			p, ok := t.Latest()
			if !ok {
				continue
			}
			if err := WritePromSample(w, name, []PromLabel{{Name: "source", Value: t.Source()}}, p.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// sanitizeMetricName maps a signal name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:].
func sanitizeMetricName(s string) string {
	var sb strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

package telemetry

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"millibalance/internal/obs"
	"millibalance/internal/stats"
)

func TestClustersFromSeries(t *testing.T) {
	s := stats.NewSeries(50 * time.Millisecond)
	// Two bursts: windows 10–11 and window 40.
	s.Incr(500 * time.Millisecond)
	s.Incr(510 * time.Millisecond)
	s.Incr(560 * time.Millisecond)
	s.Incr(2 * time.Second)
	got := ClustersFromSeries(s, 100*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("clusters = %+v, want 2", got)
	}
	if got[0].Start != 500*time.Millisecond || got[0].End != 600*time.Millisecond || got[0].Count != 3 {
		t.Fatalf("cluster 0 = %+v", got[0])
	}
	if got[1].Start != 2*time.Second || got[1].Count != 1 {
		t.Fatalf("cluster 1 = %+v", got[1])
	}
	// A generous gap joins them.
	if joined := ClustersFromSeries(s, 2*time.Second); len(joined) != 1 || joined[0].Count != 4 {
		t.Fatalf("joined = %+v, want one cluster of 4", joined)
	}
}

func TestClusterSpans(t *testing.T) {
	spans := []obs.Span{
		{StartAt: 0, EndAt: 1200 * time.Millisecond},                      // VLRT
		{StartAt: 100 * time.Millisecond, EndAt: 150 * time.Millisecond},  // fast
		{StartAt: 200 * time.Millisecond, EndAt: 1300 * time.Millisecond}, // VLRT
		{StartAt: 4 * time.Second, EndAt: 5500 * time.Millisecond},        // VLRT, far away
	}
	got := ClusterSpans(spans, time.Second, 500*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("clusters = %+v, want 2", got)
	}
	if got[0].Count != 2 || got[0].Start != 1200*time.Millisecond || got[0].End != 1300*time.Millisecond {
		t.Fatalf("cluster 0 = %+v", got[0])
	}
}

// synthetic two-tier scenario: the "app" queue spikes 1 s before the
// VLRT cluster, the "web" queue spikes mildly after the cluster began.
func syntheticTracks() []*Track {
	tl := NewTimeline(Config{Interval: 50 * time.Millisecond, Capacity: 512})
	app := tl.AddTrack("tomcat1", SignalQueueDepth)
	frozen := tl.AddTrack("tomcat1", SignalFrozen)
	web := tl.AddTrack("apache1", SignalQueueDepth)
	flat := tl.AddTrack("mysql1", SignalQueueDepth)
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		appQ, fr, webQ := 3.0, 0.0, 2.0
		// Stall on the app server between 4.0 s and 4.3 s.
		if at >= 4*time.Second && at < 4300*time.Millisecond {
			appQ, fr = 180, 1
		}
		// The web tier feels it after the cluster starts (damage).
		if at >= 5200*time.Millisecond && at < 5500*time.Millisecond {
			webQ = 40
		}
		app.Append(at, appQ)
		frozen.Append(at, fr)
		web.Append(at, webQ)
		flat.Append(at, 1)
	}
	return tl.Tracks()
}

func TestCorrelateRanksPrecedingSpikeFirst(t *testing.T) {
	tracks := syntheticTracks()
	clusters := []VLRTCluster{{Start: 5100 * time.Millisecond, End: 5300 * time.Millisecond, Count: 12}}
	chains := Correlate(tracks, clusters, CorrelateConfig{})
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	root, ok := chains[0].Root()
	if !ok {
		t.Fatal("no links in chain")
	}
	if root.Source != "tomcat1" {
		t.Fatalf("root = %s/%s (score %.1f), want tomcat1", root.Source, root.Signal, root.Score)
	}
	if root.Lag <= 0 {
		t.Fatalf("root lag = %v, want positive (spike precedes cluster)", root.Lag)
	}
	// The flat mysql track must not appear at all.
	for _, l := range chains[0].Links {
		if l.Source == "mysql1" {
			t.Fatalf("flat track reported as a cause: %+v", l)
		}
	}
	// The web spike is damage after onset: present but ranked below both
	// tomcat1 signals.
	if len(chains[0].Links) >= 2 && chains[0].Links[1].Source == "apache1" {
		t.Fatalf("apache1 outranked a tomcat1 signal: %+v", chains[0].Links)
	}
}

func TestCorrelateMinZFiltersQuietTracks(t *testing.T) {
	tracks := syntheticTracks()
	clusters := []VLRTCluster{{Start: 15 * time.Second, End: 15100 * time.Millisecond, Count: 1}}
	// Window far from any spike: the lookback holds only baseline, so no
	// link should clear MinZ.
	chains := Correlate(tracks, clusters, CorrelateConfig{Window: 500 * time.Millisecond})
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	if len(chains[0].Links) != 0 {
		t.Fatalf("quiet window produced links: %+v", chains[0].Links)
	}
}

func TestCorrelatorOnEvent(t *testing.T) {
	tl := NewTimeline(Config{Interval: 50 * time.Millisecond, Capacity: 512})
	tr := tl.AddTrack("tomcat1", SignalQueueDepth)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		v := 2.0
		if at >= 2*time.Second && at < 2200*time.Millisecond {
			v = 90
		}
		tr.Append(at, v)
	}
	c := NewCorrelator(tl, CorrelateConfig{})
	c.OnEvent(obs.Event{Kind: obs.KindDecision}) // ignored
	c.OnEvent(obs.Event{
		Kind:      obs.KindMillibottleneck,
		Source:    "tomcat1",
		SpanStart: 2 * time.Second,
		SpanEnd:   2200 * time.Millisecond,
	})
	chains := c.Chains()
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	if root, ok := chains[0].Root(); !ok || root.Source != "tomcat1" {
		t.Fatalf("root = %+v ok=%v", chains[0].Links, ok)
	}
	// Nil-safety.
	var nilC *Correlator
	nilC.OnEvent(obs.Event{Kind: obs.KindMillibottleneck})
	if nilC.Chains() != nil {
		t.Fatal("nil correlator returned chains")
	}
}

func TestTimelineWriteJSONLAndProm(t *testing.T) {
	tl := NewTimeline(Config{Capacity: 8})
	q := tl.AddTrack("tomcat1", SignalQueueDepth)
	done := tl.AddTrack("tomcat1", SignalCompleted)
	q.Append(50*time.Millisecond, 7)
	done.Append(50*time.Millisecond, 41)

	var jb strings.Builder
	if err := tl.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	wantLine := `{"source":"tomcat1","signal":"queue_depth","t":50000000,"v":7}`
	if !strings.Contains(jb.String(), wantLine) {
		t.Fatalf("JSONL missing %s:\n%s", wantLine, jb.String())
	}

	var pb strings.Builder
	if err := tl.WriteProm(&pb, "millibalance"); err != nil {
		t.Fatal(err)
	}
	out := pb.String()
	for _, want := range []string{
		"# TYPE millibalance_queue_depth gauge",
		`millibalance_queue_depth{source="tomcat1"} 7`,
		"# TYPE millibalance_completed_total counter",
		`millibalance_completed_total{source="tomcat1"} 41`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Nil-safety of the export surfaces.
	var nilTL *Timeline
	if err := nilTL.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if err := nilTL.WriteProm(&pb, "x"); err != nil {
		t.Fatal(err)
	}
}

func TestWallSamplerRuntimeSignals(t *testing.T) {
	w := NewWallSampler("proxy", Config{Interval: 5 * time.Millisecond, Capacity: 128})
	var inFlight atomic.Int64
	w.Register("backend1", SignalInFlight, func() float64 { return float64(inFlight.Load()) })
	// Pin a visible amount of live heap: right after a collection the
	// heap-objects gauge can read ~0, so give it something it must see.
	ballast := make([]byte, 1<<20)
	defer runtime.KeepAlive(ballast)
	w.Start()
	time.Sleep(30 * time.Millisecond)
	inFlight.Store(3)
	time.Sleep(30 * time.Millisecond)
	w.Stop()

	tl := w.Timeline()
	gr := tl.Lookup("proxy", SignalGoroutines)
	if gr == nil || gr.Len() == 0 {
		t.Fatal("no goroutine samples recorded")
	}
	if p, ok := gr.Latest(); !ok || p.V < 1 {
		t.Fatalf("goroutines latest = %+v ok=%v", p, ok)
	}
	// The heap-objects gauge can legitimately dip on a sample that
	// lands mid-GC, so require a positive reading somewhere in the run
	// rather than on the final point; the ballast guarantees one exists.
	heap := tl.Lookup("proxy", SignalHeapBytes)
	heapSeen := false
	for _, p := range heap.Snapshot(nil) {
		if p.V >= float64(len(ballast)) {
			heapSeen = true
			break
		}
	}
	if !heapSeen {
		t.Fatalf("no heap sample saw the %d-byte ballast in %d points", len(ballast), heap.Len())
	}
	bi := tl.Lookup("backend1", SignalInFlight)
	if p, ok := bi.Latest(); !ok || p.V != 3 {
		t.Fatalf("backend in_flight latest = %+v ok=%v, want 3", p, ok)
	}
	// Stop again is a no-op; nil-safety.
	w.Stop()
	var nilW *WallSampler
	nilW.Start()
	nilW.Stop()
	nilW.Register("x", "y", func() float64 { return 0 })
}

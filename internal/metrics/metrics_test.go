package metrics

import (
	"testing"
	"time"

	"millibalance/internal/resource"
	"millibalance/internal/sim"
	"millibalance/internal/workload"
)

func TestResponseRecorderCounters(t *testing.T) {
	r := NewResponseRecorder()
	// 90 fast, 5 medium, 5 VLRT.
	for i := 0; i < 90; i++ {
		r.Record(0, workload.Outcome{OK: true, ResponseTime: 3 * time.Millisecond})
	}
	for i := 0; i < 5; i++ {
		r.Record(0, workload.Outcome{OK: true, ResponseTime: 100 * time.Millisecond})
	}
	for i := 0; i < 5; i++ {
		r.Record(0, workload.Outcome{OK: true, ResponseTime: 1100 * time.Millisecond, Retransmits: 1})
	}
	if r.Total() != 100 {
		t.Fatalf("Total = %d", r.Total())
	}
	if r.VLRTCount() != 5 || r.VLRTPercent() != 5 {
		t.Fatalf("VLRT = %d (%v%%)", r.VLRTCount(), r.VLRTPercent())
	}
	if r.NormalPercent() != 90 {
		t.Fatalf("NormalPercent = %v", r.NormalPercent())
	}
	if r.Retransmits() != 5 {
		t.Fatalf("Retransmits = %d", r.Retransmits())
	}
	wantMean := (90*3 + 5*100 + 5*1100) * time.Millisecond / 100
	if r.Mean() != wantMean {
		t.Fatalf("Mean = %v, want %v", r.Mean(), wantMean)
	}
}

func TestResponseRecorderExactThresholds(t *testing.T) {
	r := NewResponseRecorder()
	r.Record(0, workload.Outcome{OK: true, ResponseTime: time.Second})             // exactly 1s → VLRT
	r.Record(0, workload.Outcome{OK: true, ResponseTime: 10 * time.Millisecond})   // exactly 10ms → not normal
	r.Record(0, workload.Outcome{OK: true, ResponseTime: 10*time.Millisecond - 1}) // just under → normal
	if r.VLRTCount() != 1 {
		t.Fatalf("VLRTCount = %d", r.VLRTCount())
	}
	if got := r.NormalPercent(); got < 33.3 || got > 33.4 {
		t.Fatalf("NormalPercent = %v", got)
	}
}

func TestResponseRecorderFailures(t *testing.T) {
	r := NewResponseRecorder()
	r.Record(0, workload.Outcome{OK: false, ResponseTime: 5 * time.Millisecond})
	if r.Failures() != 1 || r.Total() != 1 {
		t.Fatalf("Failures=%d Total=%d", r.Failures(), r.Total())
	}
}

func TestResponseRecorderSeries(t *testing.T) {
	r := NewResponseRecorder()
	r.Record(20*time.Millisecond, workload.Outcome{OK: true, ResponseTime: 2 * time.Millisecond})
	r.Record(70*time.Millisecond, workload.Outcome{OK: true, ResponseTime: 2 * time.Second})
	pit := r.PointInTime()
	if pit.At(0).Count != 1 || pit.At(0).Mean() != 2 {
		t.Fatalf("window 0 = %+v", pit.At(0))
	}
	if pit.At(1).Mean() != 2000 {
		t.Fatalf("window 1 mean = %v ms", pit.At(1).Mean())
	}
	vlrt := r.VLRTWindows()
	if vlrt.At(0).Count != 0 || vlrt.At(1).Count != 1 {
		t.Fatalf("vlrt windows = %v", vlrt.Counts())
	}
}

func TestPollerTicks(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	p := NewPoller(eng, 10*time.Millisecond)
	var at []sim.Time
	p.Add(func(now sim.Time) { at = append(at, now) })
	p.Start()
	eng.Run(35 * time.Millisecond)
	if len(at) != 3 {
		t.Fatalf("ticks at %v, want 3", at)
	}
	if at[0] != 10*time.Millisecond || at[2] != 30*time.Millisecond {
		t.Fatalf("ticks at %v", at)
	}
}

func TestPollerStop(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	p := NewPoller(eng, 10*time.Millisecond)
	n := 0
	p.Add(func(sim.Time) { n++ })
	p.Start()
	eng.Run(25 * time.Millisecond)
	p.Stop()
	eng.Run(100 * time.Millisecond)
	if n != 2 {
		t.Fatalf("ticks after Stop: %d", n)
	}
}

func TestPollerValidations(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero interval did not panic")
			}
		}()
		NewPoller(eng, 0)
	}()
	p := NewPoller(eng, time.Millisecond)
	p.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	p.Start()
}

func TestCPUUtilSampler(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cpu := resource.NewCPU(eng, 2)
	s := NewCPUUtilSampler(cpu)
	// One core busy for the whole first 50ms window → 50% on 2 cores.
	cpu.Submit(50*time.Millisecond, func() {})
	p := NewPoller(eng, Window)
	p.Add(s.Sample)
	p.Start()
	eng.Run(100 * time.Millisecond)
	if got := s.Series().At(0).Mean(); got != 50 {
		t.Fatalf("window 0 util = %v%%, want 50", got)
	}
	if got := s.Series().At(1).Mean(); got != 0 {
		t.Fatalf("window 1 util = %v%%, want 0", got)
	}
	if avg := s.Average(); avg != 25 {
		t.Fatalf("Average = %v, want 25", avg)
	}
}

func TestCPUUtilSamplerSaturationDuringStall(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cpu := resource.NewCPU(eng, 4)
	s := NewCPUUtilSampler(cpu)
	eng.Schedule(0, func() { cpu.Stall(50 * time.Millisecond) })
	p := NewPoller(eng, Window)
	p.Add(s.Sample)
	p.Start()
	eng.Run(50 * time.Millisecond)
	if got := s.Series().At(0).Mean(); got != 100 {
		t.Fatalf("stalled window util = %v%%, want 100", got)
	}
}

func TestGaugeSampler(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	v := 0.0
	g := NewGaugeSampler(func() float64 { return v })
	p := NewPoller(eng, 10*time.Millisecond)
	p.Add(g.Sample)
	p.Start()
	eng.Schedule(25*time.Millisecond, func() { v = 42 })
	eng.Run(60 * time.Millisecond)
	w := g.Series().At(0)
	if w.Max != 42 || w.Min != 0 {
		t.Fatalf("window = %+v", w)
	}
}

func TestGaugeSamplerNilReadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGaugeSampler(nil)
}

func TestDistributionRecorder(t *testing.T) {
	d := NewDistributionRecorder()
	for i := 0; i < 8; i++ {
		d.Incr("app1", 10*time.Millisecond)
	}
	d.Incr("app2", 10*time.Millisecond)
	d.Incr("app2", 60*time.Millisecond)
	keys := d.Keys()
	if len(keys) != 2 || keys[0] != "app1" || keys[1] != "app2" {
		t.Fatalf("Keys = %v", keys)
	}
	if d.Series("app1").At(0).Count != 8 {
		t.Fatalf("app1 window 0 = %d", d.Series("app1").At(0).Count)
	}
	if d.Series("missing") != nil {
		t.Fatal("missing key returned a series")
	}
}

func TestDistributionShare(t *testing.T) {
	d := NewDistributionRecorder()
	for i := 0; i < 9; i++ {
		d.Incr("app1", 10*time.Millisecond)
	}
	d.Incr("app2", 10*time.Millisecond)
	if got := d.Share("app1", 0, 50*time.Millisecond); got != 0.9 {
		t.Fatalf("Share = %v, want 0.9", got)
	}
	if got := d.Share("app1", 100*time.Millisecond, 200*time.Millisecond); got != 0 {
		t.Fatalf("Share in empty range = %v", got)
	}
}

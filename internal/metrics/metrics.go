// Package metrics implements the paper's measurement apparatus: exact
// response-time accounting (average, VLRT share, sub-10 ms share),
// point-in-time response-time series, 50 ms-window VLRT counts, and
// periodic fine-grained samplers for queue lengths, CPU utilization,
// iowait, dirty pages, lb_values and per-backend dispatch distribution.
package metrics

import (
	"time"

	"millibalance/internal/resource"
	"millibalance/internal/sim"
	"millibalance/internal/stats"
	"millibalance/internal/workload"
)

// Window is the paper's fine-grained plotting granularity.
const Window = 50 * time.Millisecond

// Thresholds from the paper's Table I.
const (
	// VLRTThreshold classifies very-long-response-time requests.
	VLRTThreshold = time.Second
	// NormalThreshold classifies "normal" fast requests.
	NormalThreshold = 10 * time.Millisecond
)

// ResponseRecorder accumulates per-request outcomes: exact threshold
// counters for Table I, a log-bucketed histogram for Fig. 4, the
// point-in-time response-time series of Fig. 1/3, and the VLRT-per-window
// series of Fig. 2a/6a/7a.
type ResponseRecorder struct {
	hist        stats.Histogram
	total       uint64
	vlrt        uint64
	normal      uint64
	failures    uint64
	retransmits uint64
	pointInTime *stats.Series
	vlrtSeries  *stats.Series
}

// NewResponseRecorder returns an empty recorder using the standard 50 ms
// window.
func NewResponseRecorder() *ResponseRecorder {
	return NewResponseRecorderHorizon(0)
}

// NewResponseRecorderHorizon is NewResponseRecorder with the series
// buffers preallocated for a run of the given expected duration.
func NewResponseRecorderHorizon(horizon time.Duration) *ResponseRecorder {
	return &ResponseRecorder{
		pointInTime: stats.NewSeriesHorizon(Window, horizon),
		vlrtSeries:  stats.NewSeriesHorizon(Window, horizon),
	}
}

// Record accounts one outcome observed at virtual time now.
func (r *ResponseRecorder) Record(now sim.Time, o workload.Outcome) {
	r.total++
	r.retransmits += uint64(o.Retransmits)
	if !o.OK {
		r.failures++
	}
	rt := o.ResponseTime
	r.hist.Record(rt)
	r.pointInTime.Add(now, stats.DurationToMillis(rt))
	if rt >= VLRTThreshold {
		r.vlrt++
		r.vlrtSeries.Incr(now)
	}
	if rt < NormalThreshold {
		r.normal++
	}
}

// Total reports the number of recorded requests.
func (r *ResponseRecorder) Total() uint64 { return r.total }

// Failures reports requests that finished with an error.
func (r *ResponseRecorder) Failures() uint64 { return r.failures }

// Retransmits reports the total connection retries observed.
func (r *ResponseRecorder) Retransmits() uint64 { return r.retransmits }

// Mean reports the exact mean response time.
func (r *ResponseRecorder) Mean() time.Duration { return r.hist.Mean() }

// Quantile proxies the underlying histogram.
func (r *ResponseRecorder) Quantile(q float64) time.Duration { return r.hist.Quantile(q) }

// VLRTCount reports requests at or above the VLRT threshold.
func (r *ResponseRecorder) VLRTCount() uint64 { return r.vlrt }

// VLRTPercent reports the VLRT share in percent.
func (r *ResponseRecorder) VLRTPercent() float64 { return r.percent(r.vlrt) }

// NormalPercent reports the sub-10 ms share in percent.
func (r *ResponseRecorder) NormalPercent() float64 { return r.percent(r.normal) }

func (r *ResponseRecorder) percent(n uint64) float64 {
	if r.total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.total)
}

// Histogram exposes the response-time distribution (Fig. 4).
func (r *ResponseRecorder) Histogram() *stats.Histogram { return &r.hist }

// PointInTime exposes the per-window response-time series in
// milliseconds (Fig. 1 and Fig. 3 plot its per-window means/maxima).
func (r *ResponseRecorder) PointInTime() *stats.Series { return r.pointInTime }

// VLRTWindows exposes the VLRT-count-per-window series (Fig. 2a, 6a,
// 7a).
func (r *ResponseRecorder) VLRTWindows() *stats.Series { return r.vlrtSeries }

// Poller invokes registered sample functions at a fixed virtual-time
// interval, driving the gauge samplers below.
type Poller struct {
	eng      *sim.Engine
	interval sim.Time
	fns      []func(now sim.Time)
	timer    sim.Timer
	started  bool
}

// NewPoller returns a poller with the given sampling interval.
func NewPoller(eng *sim.Engine, interval sim.Time) *Poller {
	if interval <= 0 {
		panic("metrics: NewPoller requires a positive interval")
	}
	return &Poller{eng: eng, interval: interval}
}

// Add registers a sample function.
func (p *Poller) Add(fn func(now sim.Time)) { p.fns = append(p.fns, fn) }

// Start arms the periodic sampling. It may be called once.
func (p *Poller) Start() {
	if p.started {
		panic("metrics: Poller.Start called twice")
	}
	p.started = true
	p.tick()
}

func (p *Poller) tick() {
	p.timer = p.eng.Schedule(p.interval, func() {
		now := p.eng.Now()
		for _, fn := range p.fns {
			fn(now)
		}
		p.tick()
	})
}

// Stop disarms the poller.
func (p *Poller) Stop() {
	p.eng.Stop(p.timer)
	p.timer = sim.Timer{}
}

// CPUUtilSampler converts a CPU's busy-core-time integral into a
// windowed utilization series in percent (Fig. 2c, 5, 6b).
type CPUUtilSampler struct {
	cpu      *resource.CPU
	series   *stats.Series
	lastBusy sim.Time
	lastAt   sim.Time
	online   stats.Online

	// OnSample, when set, receives every (time, utilization) observation
	// exactly as it enters the series — the tap that feeds an online
	// millibottleneck detector the identical stream the offline analysis
	// reads back from Series.
	OnSample func(t sim.Time, util float64)
}

// NewCPUUtilSampler returns a sampler over the CPU using the standard
// window.
func NewCPUUtilSampler(cpu *resource.CPU) *CPUUtilSampler {
	return NewCPUUtilSamplerHorizon(cpu, 0)
}

// NewCPUUtilSamplerHorizon is NewCPUUtilSampler with the series buffer
// preallocated for a run of the given expected duration.
func NewCPUUtilSamplerHorizon(cpu *resource.CPU, horizon time.Duration) *CPUUtilSampler {
	return &CPUUtilSampler{cpu: cpu, series: stats.NewSeriesHorizon(Window, horizon)}
}

// Sample records utilization since the previous sample.
func (s *CPUUtilSampler) Sample(now sim.Time) {
	busy := s.cpu.BusyCoreTime()
	span := now - s.lastAt
	if span <= 0 {
		return
	}
	util := 100 * float64(busy-s.lastBusy) / (float64(span) * float64(s.cpu.Cores()))
	if util > 100 {
		util = 100
	}
	// Attribute the measured span to the window it covers, not to the
	// boundary instant the sample fires at.
	s.series.Add(s.lastAt, util)
	if s.OnSample != nil {
		s.OnSample(s.lastAt, util)
	}
	s.online.Add(util)
	s.lastBusy = busy
	s.lastAt = now
}

// Series exposes the utilization series in percent.
func (s *CPUUtilSampler) Series() *stats.Series { return s.series }

// Average reports the mean sampled utilization in percent (Fig. 5).
func (s *CPUUtilSampler) Average() float64 { return s.online.Mean() }

// GaugeSampler records an arbitrary gauge (queue length, dirty bytes,
// iowait) into a windowed series.
type GaugeSampler struct {
	read   func() float64
	series *stats.Series
}

// NewGaugeSampler returns a sampler over the given read function.
func NewGaugeSampler(read func() float64) *GaugeSampler {
	return NewGaugeSamplerHorizon(read, 0)
}

// NewGaugeSamplerHorizon is NewGaugeSampler with the series buffer
// preallocated for a run of the given expected duration.
func NewGaugeSamplerHorizon(read func() float64, horizon time.Duration) *GaugeSampler {
	if read == nil {
		panic("metrics: NewGaugeSampler with nil read")
	}
	return &GaugeSampler{read: read, series: stats.NewSeriesHorizon(Window, horizon)}
}

// Sample reads the gauge.
func (g *GaugeSampler) Sample(now sim.Time) { g.series.Add(now, g.read()) }

// Series exposes the sampled series.
func (g *GaugeSampler) Series() *stats.Series { return g.series }

// DistributionRecorder counts per-key events per window — the
// workload-distribution plots (Fig. 6c, 7c, 9b, 13b) use it with one key
// per application server, fed by the balancer's dispatch hook.
type DistributionRecorder struct {
	byKey   map[string]*stats.Series
	keys    []string
	horizon time.Duration
}

// NewDistributionRecorder returns an empty recorder.
func NewDistributionRecorder() *DistributionRecorder {
	return NewDistributionRecorderHorizon(0)
}

// NewDistributionRecorderHorizon is NewDistributionRecorder with each
// per-key series preallocated for a run of the given expected duration.
func NewDistributionRecorderHorizon(horizon time.Duration) *DistributionRecorder {
	return &DistributionRecorder{byKey: map[string]*stats.Series{}, horizon: horizon}
}

// Incr counts one event for key at time now.
func (d *DistributionRecorder) Incr(key string, now sim.Time) {
	s, ok := d.byKey[key]
	if !ok {
		s = stats.NewSeriesHorizon(Window, d.horizon)
		d.byKey[key] = s
		d.keys = append(d.keys, key)
	}
	s.Incr(now)
}

// Keys lists the recorded keys in first-seen order.
func (d *DistributionRecorder) Keys() []string {
	out := make([]string, len(d.keys))
	copy(out, d.keys)
	return out
}

// Series returns the series for key (nil when the key never occurred).
func (d *DistributionRecorder) Series(key string) *stats.Series { return d.byKey[key] }

// Share returns the fraction of all events between from and to that
// belong to key. It returns 0 when no events fall in the range.
func (d *DistributionRecorder) Share(key string, from, to sim.Time) float64 {
	var keyCount, total uint64
	for k, s := range d.byKey {
		lo := int(from / s.Width())
		hi := int((to + s.Width() - 1) / s.Width())
		for i := lo; i < hi; i++ {
			c := s.At(i).Count
			total += c
			if k == key {
				keyCount += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(keyCount) / float64(total)
}

package core_test

import (
	"fmt"
	"time"

	"millibalance/internal/core"
	"millibalance/internal/lb"
	"millibalance/internal/sim"
)

func ExampleNewRecommended() {
	eng := sim.NewEngine(1, 2)
	balancer, err := core.NewRecommended(eng, []core.BackendSpec{
		{Name: "app1", Endpoints: 4},
		{Name: "app2", Endpoints: 4},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Dispatch two requests; the fake backends respond after 1ms.
	for i := 0; i < 2; i++ {
		balancer.Dispatch(lb.RequestInfo{},
			func(c *lb.Candidate, done func()) {
				fmt.Println("dispatched to", c.Name())
				eng.Schedule(time.Millisecond, done)
			},
			func() { fmt.Println("rejected") })
	}
	eng.Run(time.Second)
	// Output:
	// dispatched to app1
	// dispatched to app2
}

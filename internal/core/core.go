// Package core is the library's front door: it assembles
// millibottleneck-aware load balancers from named policies and
// mechanisms, exposes the paper's recommended and stock configurations,
// and bundles the diagnosis pipeline that attributes very-long-response-
// time (VLRT) requests to transient resource saturations.
//
// The underlying pieces remain importable individually:
//
//	internal/lb        — policies (Algorithms 2–4), get_endpoint
//	                     mechanisms (Algorithm 1 and the remedy), and
//	                     the 3-state balancer
//	internal/cluster   — the simulated n-tier testbed
//	internal/mbneck    — millibottleneck injectors and detection
//	internal/httpcluster — the same balancing algorithms over real
//	                     loopback HTTP
package core

import (
	"fmt"
	"time"

	"millibalance/internal/lb"
	"millibalance/internal/mbneck"
	"millibalance/internal/sim"
	"millibalance/internal/stats"
)

// BackendSpec names one application server and sizes the balancer-local
// endpoint (connection) pool to it.
type BackendSpec struct {
	// Name identifies the backend.
	Name string
	// Endpoints is the connection pool size (mod_jk uses 25).
	Endpoints int
	// Weight is mod_jk's lbfactor: a weight-2 backend receives twice a
	// weight-1 backend's traffic. Zero means one.
	Weight float64
}

// NewBalancer builds a balancer from a policy name ("total_request",
// "total_traffic", "current_load") and mechanism name ("original" /
// "original_get_endpoint", "modified" / "modified_get_endpoint") over
// the given backends.
func NewBalancer(eng *sim.Engine, policy, mechanism string, backends []BackendSpec, cfg lb.Config) (*lb.Balancer, error) {
	if eng == nil {
		return nil, fmt.Errorf("core: nil engine")
	}
	p, ok := lb.PolicyByName(policy)
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (have %v)", policy, lb.PolicyNames())
	}
	m, ok := lb.MechanismByName(mechanism, eng)
	if !ok {
		return nil, fmt.Errorf("core: unknown mechanism %q (have %v)", mechanism, lb.MechanismNames())
	}
	cands, err := candidates(backends)
	if err != nil {
		return nil, err
	}
	return lb.New(eng, p, m, cands, cfg), nil
}

// NewRecommended returns the paper's remedy configuration: the
// current_load policy (rank by in-flight requests) with the modified
// fail-fast get_endpoint. This combination avoids the scheduling
// instability at both the policy and the mechanism level.
func NewRecommended(eng *sim.Engine, backends []BackendSpec) (*lb.Balancer, error) {
	return NewBalancer(eng, "current_load", "modified_get_endpoint", backends, lb.Config{})
}

// NewClassic returns the stock mod_jk behaviour the paper diagnoses:
// the total_request policy with the original polling get_endpoint.
// Use it as the baseline when reproducing the instability.
func NewClassic(eng *sim.Engine, backends []BackendSpec) (*lb.Balancer, error) {
	return NewBalancer(eng, "total_request", "original_get_endpoint", backends, lb.Config{})
}

func candidates(backends []BackendSpec) ([]*lb.Candidate, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("core: no backends")
	}
	out := make([]*lb.Candidate, 0, len(backends))
	seen := make(map[string]bool, len(backends))
	for _, b := range backends {
		if b.Name == "" {
			return nil, fmt.Errorf("core: backend with empty name")
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("core: duplicate backend %q", b.Name)
		}
		seen[b.Name] = true
		endpoints := b.Endpoints
		if endpoints <= 0 {
			endpoints = 25 // mod_jk connection_pool_size default scale
		}
		cand := lb.NewCandidate(b.Name, sim.NewPool(endpoints))
		if b.Weight > 0 {
			cand.SetWeight(b.Weight)
		}
		out = append(out, cand)
	}
	return out, nil
}

// Diagnosis is the per-server outcome of the millibottleneck analysis.
type Diagnosis struct {
	// Server names the analyzed server.
	Server string
	// Report carries detected saturations, queue peaks and the VLRT
	// attribution fraction.
	Report mbneck.Report
}

// DiagnoseConfig tunes the detection pass; zero values pick the paper's
// operating points.
type DiagnoseConfig struct {
	// SaturationPct is the utilization threshold treated as saturated
	// (default 95).
	SaturationPct float64
	// MinDuration/MaxDuration bound the millibottleneck length
	// (defaults 50 ms and 2 s).
	MinDuration time.Duration
	MaxDuration time.Duration
	// Tolerance extends saturation spans when matching VLRT windows
	// (default 2.5 s, covering one TCP retransmission plus drain).
	Tolerance time.Duration
}

func (c DiagnoseConfig) withDefaults() DiagnoseConfig {
	if c.SaturationPct <= 0 {
		c.SaturationPct = 95
	}
	if c.MinDuration <= 0 {
		c.MinDuration = 50 * time.Millisecond
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = 2 * time.Second
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 2500 * time.Millisecond
	}
	return c
}

// ServerSeries is one server's sampled utilization and queue series.
type ServerSeries struct {
	Name  string
	Util  *stats.Series
	Queue *stats.Series
}

// Diagnose runs the paper's methodology over per-server series and the
// cluster-wide VLRT window series: detect transient saturations on each
// server, find its queue peaks, and attribute VLRT windows to the
// saturations.
func Diagnose(servers []ServerSeries, vlrt *stats.Series, cfg DiagnoseConfig) []Diagnosis {
	cfg = cfg.withDefaults()
	out := make([]Diagnosis, 0, len(servers))
	for _, s := range servers {
		out = append(out, Diagnosis{
			Server: s.Name,
			Report: mbneck.Analyze(s.Util, s.Queue, vlrt,
				cfg.SaturationPct, cfg.MinDuration, cfg.MaxDuration, cfg.Tolerance),
		})
	}
	return out
}

package core

import (
	"strings"
	"testing"
	"time"

	"millibalance/internal/lb"
	"millibalance/internal/sim"
	"millibalance/internal/stats"
)

func specs(n int) []BackendSpec {
	out := make([]BackendSpec, n)
	for i := range out {
		out[i] = BackendSpec{Name: "app" + string(rune('1'+i)), Endpoints: 5}
	}
	return out
}

func TestNewBalancerAllCombos(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	for _, policy := range lb.PolicyNames() {
		for _, mech := range lb.MechanismNames() {
			b, err := NewBalancer(eng, policy, mech, specs(4), lb.Config{})
			if err != nil {
				t.Fatalf("%s/%s: %v", policy, mech, err)
			}
			if b.Policy().Name() != policy || b.Mechanism().Name() != mech {
				t.Fatalf("wrong wiring: %s/%s", b.Policy().Name(), b.Mechanism().Name())
			}
			if len(b.Candidates()) != 4 {
				t.Fatalf("candidates = %d", len(b.Candidates()))
			}
		}
	}
}

func TestNewBalancerAliases(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	b, err := NewBalancer(eng, "current_load", "modified", specs(2), lb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Mechanism().Name() != "modified_get_endpoint" {
		t.Fatalf("alias resolved to %s", b.Mechanism().Name())
	}
}

func TestNewBalancerErrors(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"nil engine", func() error {
			_, err := NewBalancer(nil, "current_load", "modified", specs(1), lb.Config{})
			return err
		}},
		{"bad policy", func() error {
			_, err := NewBalancer(eng, "nope", "modified", specs(1), lb.Config{})
			return err
		}},
		{"bad mechanism", func() error {
			_, err := NewBalancer(eng, "current_load", "nope", specs(1), lb.Config{})
			return err
		}},
		{"no backends", func() error {
			_, err := NewBalancer(eng, "current_load", "modified", nil, lb.Config{})
			return err
		}},
		{"empty name", func() error {
			_, err := NewBalancer(eng, "current_load", "modified", []BackendSpec{{}}, lb.Config{})
			return err
		}},
		{"duplicate name", func() error {
			_, err := NewBalancer(eng, "current_load", "modified",
				[]BackendSpec{{Name: "a"}, {Name: "a"}}, lb.Config{})
			return err
		}},
	}
	for _, tc := range cases {
		if tc.fn() == nil {
			t.Fatalf("%s: no error", tc.name)
		}
	}
}

func TestDefaultEndpointPool(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	b, err := NewBalancer(eng, "current_load", "modified", []BackendSpec{{Name: "a"}}, lb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if free := b.Candidates()[0].FreeEndpoints(); free != 25 {
		t.Fatalf("default endpoint pool = %d, want 25", free)
	}
}

func TestRecommendedAndClassic(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	rec, err := NewRecommended(eng, specs(2))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy().Name() != "current_load" || rec.Mechanism().Name() != "modified_get_endpoint" {
		t.Fatalf("recommended = %s/%s", rec.Policy().Name(), rec.Mechanism().Name())
	}
	classic, err := NewClassic(eng, specs(2))
	if err != nil {
		t.Fatal(err)
	}
	if classic.Policy().Name() != "total_request" || classic.Mechanism().Name() != "original_get_endpoint" {
		t.Fatalf("classic = %s/%s", classic.Policy().Name(), classic.Mechanism().Name())
	}
}

func TestRecommendedBalancerDispatches(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	b, err := NewRecommended(eng, specs(2))
	if err != nil {
		t.Fatal(err)
	}
	dispatched := 0
	b.Dispatch(lb.RequestInfo{}, func(_ *lb.Candidate, done func()) {
		dispatched++
		done()
	}, func() { t.Fatal("rejected") })
	if dispatched != 1 {
		t.Fatalf("dispatched = %d", dispatched)
	}
}

func TestDiagnose(t *testing.T) {
	mk := func(vals []float64) *stats.Series {
		s := stats.NewSeries(50 * time.Millisecond)
		for i, v := range vals {
			s.Add(time.Duration(i)*50*time.Millisecond, v)
		}
		return s
	}
	util := make([]float64, 40)
	queue := make([]float64, 40)
	for i := range util {
		util[i], queue[i] = 30, 3
	}
	util[10], util[11] = 100, 100
	queue[10], queue[11] = 300, 400
	vlrt := stats.NewSeries(50 * time.Millisecond)
	vlrt.Incr(520 * time.Millisecond)

	diags := Diagnose([]ServerSeries{
		{Name: "tomcat1", Util: mk(util), Queue: mk(queue)},
		{Name: "tomcat2", Util: mk(make([]float64, 40)), Queue: mk(make([]float64, 40))},
	}, vlrt, DiagnoseConfig{})

	if len(diags) != 2 {
		t.Fatalf("diagnoses = %d", len(diags))
	}
	if len(diags[0].Report.Saturations) != 1 {
		t.Fatalf("tomcat1 saturations = %+v", diags[0].Report.Saturations)
	}
	if diags[0].Report.VLRTAttribution != 1 {
		t.Fatalf("tomcat1 attribution = %v", diags[0].Report.VLRTAttribution)
	}
	if len(diags[1].Report.Saturations) != 0 {
		t.Fatalf("tomcat2 saturations = %+v", diags[1].Report.Saturations)
	}
}

func TestDiagnoseConfigDefaults(t *testing.T) {
	cfg := DiagnoseConfig{}.withDefaults()
	if cfg.SaturationPct != 95 || cfg.MinDuration != 50*time.Millisecond ||
		cfg.MaxDuration != 2*time.Second || cfg.Tolerance != 2500*time.Millisecond {
		t.Fatalf("defaults = %+v", cfg)
	}
	custom := DiagnoseConfig{SaturationPct: 80}.withDefaults()
	if custom.SaturationPct != 80 {
		t.Fatal("custom threshold overridden")
	}
}

func TestBackendNamesInErrors(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	_, err := NewBalancer(eng, "bogus", "modified", specs(1), lb.Config{})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error %v does not name the bad policy", err)
	}
}

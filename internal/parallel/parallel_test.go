package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("Map over zero items = %v, want nil", got)
	}
	if got := Map(4, -3, func(i int) int { return i }); got != nil {
		t.Fatalf("Map over negative count = %v, want nil", got)
	}
}

// One worker must execute inline on the calling goroutine in index
// order — the sequential debug path.
func TestMapSingleWorkerIsSequentialInline(t *testing.T) {
	var order []int
	Map(1, 10, func(i int) int {
		order = append(order, i) // safe only if single-goroutine
		return i
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential path ran out of order: %v", order)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	Map(workers, 64, func(i int) struct{} {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, bound is %d", p, workers)
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "boom at 7") {
			t.Fatalf("panic value %v does not carry the original message", r)
		}
	}()
	Map(4, 32, func(i int) int {
		if i == 7 {
			panic("boom at 7")
		}
		return i
	})
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	maxprocs := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != maxprocs {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, maxprocs)
	}
	if got := Workers(-2); got != maxprocs {
		t.Fatalf("Workers(-2) = %d, want GOMAXPROCS %d", got, maxprocs)
	}
}

func TestAllRunsEveryFunc(t *testing.T) {
	var a, b, c int
	All(4,
		func() { a = 1 },
		func() { b = 2 },
		func() { c = 3 },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("All left work undone: %d %d %d", a, b, c)
	}
	All(4) // no funcs: must not block or panic
}

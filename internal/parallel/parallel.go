// Package parallel is the bounded-worker fan-out harness behind the
// experiment suite. Every table and figure of the paper's evaluation
// executes N independent cluster.Run configurations; each sim.Engine is
// single-threaded and shares no state with any other, so those runs are
// embarrassingly parallel. The harness dispatches them across a bounded
// set of goroutines and collects results by input index, making the
// output byte-identical to the sequential order no matter how the runs
// interleave.
//
// A worker count of 1 bypasses goroutines entirely and executes in index
// order on the calling goroutine — the sequential debug path — so
// `-parallel 1` reproduces the exact pre-harness behaviour.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values above zero are used
// as-is; zero and negative values mean GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) across at most Workers(workers)
// goroutines and returns the n results indexed by input, independent of
// completion order. Work is handed out through an atomic counter, so
// lightly skewed item costs still pack tightly onto the worker pool.
//
// A panic in any fn is captured and re-raised on the calling goroutine
// once the remaining workers have drained, preserving the sequential
// path's failure semantics.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  atomic.Bool
		panicMsg  string
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicMsg = fmt.Sprintf("parallel: worker panic: %v\n%s", r, debug.Stack())
						panicked.Store(true)
					})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicMsg)
	}
	return out
}

// All runs the given functions concurrently on at most Workers(workers)
// goroutines and returns when every one has finished — the fan-out shape
// for a fixed set of differently-typed runs (e.g. "original" and
// "remedy" executed side by side, each writing its own captured
// variable).
func All(workers int, fns ...func()) {
	Map(workers, len(fns), func(i int) struct{} {
		fns[i]()
		return struct{}{}
	})
}

package queueing

import (
	"math"
	"testing"
	"time"

	"millibalance/internal/resource"
	"millibalance/internal/sim"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func TestErlangCKnownValues(t *testing.T) {
	// Textbook values: c=1 reduces to rho; c=2, a=1 → 1/3.
	if got := ErlangC(1, 0.5); !approx(got, 0.5, 1e-9) {
		t.Fatalf("ErlangC(1, 0.5) = %v", got)
	}
	if got := ErlangC(2, 1); !approx(got, 1.0/3, 1e-9) {
		t.Fatalf("ErlangC(2, 1) = %v", got)
	}
	// Heavier system: c=5, a=4 (rho=0.8): known ≈ 0.5541.
	if got := ErlangC(5, 4); !approx(got, 0.5541, 1e-3) {
		t.Fatalf("ErlangC(5, 4) = %v", got)
	}
}

func TestErlangCEdges(t *testing.T) {
	if got := ErlangC(2, 0); got != 0 {
		t.Fatalf("no load = %v", got)
	}
	if got := ErlangC(2, 2); got != 1 {
		t.Fatalf("saturated = %v", got)
	}
	if got := ErlangC(0, 1); !math.IsNaN(got) {
		t.Fatalf("invalid servers = %v", got)
	}
}

func TestMeanWaitAndResponse(t *testing.T) {
	// M/M/1 with λ=0.5, μ=1: W = ρ/(μ−λ) = 1, response 2.
	if got := MeanWait(1, 0.5, 1); !approx(got, 1, 1e-9) {
		t.Fatalf("MeanWait = %v", got)
	}
	if got := MeanResponse(1, 0.5, 1); !approx(got, 2, 1e-9) {
		t.Fatalf("MeanResponse = %v", got)
	}
	if got := MM1MeanResponse(0.5, 1); !approx(got, 2, 1e-9) {
		t.Fatalf("MM1MeanResponse = %v", got)
	}
	if got := MM1MeanQueueLength(0.5, 1); !approx(got, 1, 1e-9) {
		t.Fatalf("MM1MeanQueueLength = %v", got)
	}
	if !math.IsInf(MeanWait(1, 2, 1), 1) {
		t.Fatal("overload not infinite")
	}
}

// TestSimulatorMatchesMM1 validates the discrete-event engine and the
// CPU model against theory: Poisson arrivals into a single-core CPU
// with exponential service must reproduce the M/M/1 mean response time
// within sampling error.
func TestSimulatorMatchesMM1(t *testing.T) {
	eng := sim.NewEngine(11, 13)
	cpu := resource.NewCPU(eng, 1)

	const (
		mu     = 1000.0 // services per second → mean service 1ms
		lambda = 600.0  // arrivals per second → rho = 0.6
		n      = 60000
	)
	meanService := sim.Seconds(1 / mu)
	meanGap := sim.Seconds(1 / lambda)

	var total time.Duration
	completed := 0
	var arrive func(i int)
	arrive = func(i int) {
		if i >= n {
			return
		}
		start := eng.Now()
		cpu.Submit(eng.Exponential(meanService), func() {
			total += eng.Now() - start
			completed++
		})
		eng.Schedule(eng.Exponential(meanGap), func() { arrive(i + 1) })
	}
	eng.Schedule(0, func() { arrive(0) })
	eng.Run(10 * time.Hour)

	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
	got := (total / time.Duration(n)).Seconds()
	want := MM1MeanResponse(lambda, mu) // 1/(1000-600) = 2.5ms
	if !approx(got, want, 0.05) {
		t.Fatalf("simulated M/M/1 mean response %.4fs, theory %.4fs", got, want)
	}
}

// TestSimulatorMatchesMMc repeats the validation for a 4-core CPU
// (M/M/4).
func TestSimulatorMatchesMMc(t *testing.T) {
	eng := sim.NewEngine(17, 19)
	const c = 4
	cpu := resource.NewCPU(eng, c)

	const (
		mu     = 500.0  // per-server service rate (2ms mean service)
		lambda = 1600.0 // rho = 0.8
		n      = 80000
	)
	meanService := sim.Seconds(1 / mu)
	meanGap := sim.Seconds(1 / lambda)

	var total time.Duration
	completed := 0
	var arrive func(i int)
	arrive = func(i int) {
		if i >= n {
			return
		}
		start := eng.Now()
		cpu.Submit(eng.Exponential(meanService), func() {
			total += eng.Now() - start
			completed++
		})
		eng.Schedule(eng.Exponential(meanGap), func() { arrive(i + 1) })
	}
	eng.Schedule(0, func() { arrive(0) })
	eng.Run(10 * time.Hour)

	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
	got := (total / time.Duration(n)).Seconds()
	want := MeanResponse(c, lambda, mu)
	if !approx(got, want, 0.05) {
		t.Fatalf("simulated M/M/%d mean response %.5fs, theory %.5fs", c, got, want)
	}
}

// TestSimulatorMatchesTheoryUnderPoolLimit validates the worker-pool
// path too: a sim.Pool of c tokens in front of an infinite-core CPU is
// the same M/M/c station.
func TestSimulatorMatchesTheoryUnderPoolLimit(t *testing.T) {
	eng := sim.NewEngine(23, 29)
	const c = 2
	pool := sim.NewPool(c)

	const (
		mu     = 200.0 // 5ms mean service
		lambda = 280.0 // rho = 0.7
		n      = 50000
	)
	meanService := sim.Seconds(1 / mu)
	meanGap := sim.Seconds(1 / lambda)

	var total time.Duration
	completed := 0
	var arrive func(i int)
	arrive = func(i int) {
		if i >= n {
			return
		}
		start := eng.Now()
		pool.Acquire(func() {
			eng.Schedule(eng.Exponential(meanService), func() {
				total += eng.Now() - start
				completed++
				pool.Release()
			})
		})
		eng.Schedule(eng.Exponential(meanGap), func() { arrive(i + 1) })
	}
	eng.Schedule(0, func() { arrive(0) })
	eng.Run(10 * time.Hour)

	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
	got := (total / time.Duration(n)).Seconds()
	want := MeanResponse(c, lambda, mu)
	if !approx(got, want, 0.05) {
		t.Fatalf("pool-limited station mean response %.5fs, theory %.5fs", got, want)
	}
}

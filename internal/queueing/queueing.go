// Package queueing provides closed-form M/M/c results. The test suite
// uses them to validate the simulator's queueing behaviour against
// theory: a simulated station with Poisson arrivals and exponential
// service must reproduce the analytic waiting times before any of the
// paper's conclusions drawn from it can be trusted.
package queueing

import (
	"math"
)

// ErlangC returns the probability that an arriving customer must wait
// in an M/M/c system with offered load a = λ/μ (in Erlangs) and c
// servers. It returns 1 for an overloaded system (a >= c) and NaN for
// invalid inputs.
func ErlangC(c int, a float64) float64 {
	if c < 1 || a < 0 {
		return math.NaN()
	}
	if a == 0 {
		return 0
	}
	if a >= float64(c) {
		return 1
	}
	// Iteratively: inv_{k} built from the Erlang-B recursion, then the
	// Erlang-C correction.
	b := 1.0 // Erlang B with 0 servers
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho + rho*b)
}

// MeanWait returns the expected queueing delay (time waiting for a
// server, excluding service) in an M/M/c system with arrival rate
// lambda and per-server service rate mu, both in the same time unit.
// It returns +Inf for an overloaded system.
func MeanWait(c int, lambda, mu float64) float64 {
	if c < 1 || lambda < 0 || mu <= 0 {
		return math.NaN()
	}
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	pw := ErlangC(c, a)
	return pw / (float64(c)*mu - lambda)
}

// MeanResponse returns the expected total response time (wait plus
// service) in an M/M/c system.
func MeanResponse(c int, lambda, mu float64) float64 {
	w := MeanWait(c, lambda, mu)
	if math.IsNaN(w) || math.IsInf(w, 1) {
		return w
	}
	return w + 1/mu
}

// MM1MeanResponse is the single-server special case: 1/(μ−λ).
func MM1MeanResponse(lambda, mu float64) float64 {
	if mu <= lambda {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1MeanQueueLength is the expected number in an M/M/1 system:
// ρ/(1−ρ).
func MM1MeanQueueLength(lambda, mu float64) float64 {
	if mu <= lambda {
		return math.Inf(1)
	}
	rho := lambda / mu
	return rho / (1 - rho)
}

package server

import (
	"millibalance/internal/obs"
	"millibalance/internal/resource"
	"millibalance/internal/sim"
	"millibalance/internal/workload"
)

// AppConfig configures an application (Tomcat-like) server.
type AppConfig struct {
	// Name identifies the server in metrics.
	Name string
	// Cores is the CPU core count.
	Cores int
	// Workers is the servlet thread pool size (Tomcat maxThreads; 210
	// in the paper's configuration).
	Workers int
	// DBConns is the connection pool to the database (48 in the
	// paper's configuration).
	DBConns int
	// LinkLatency is the one-way latency to the database tier.
	LinkLatency sim.Time
	// Writeback configures the page-cache writeback daemon that flushes
	// this server's access/servlet logs — the paper's millibottleneck
	// source.
	Writeback resource.WritebackConfig
}

// App is the application tier server. Each request occupies a servlet
// thread, runs a CPU burst, issues its interaction's database queries,
// runs a response-serialization burst, appends to the access logs
// (dirtying pages) and returns. A writeback flush stalls the CPU,
// freezing burst progress — requests keep arriving and occupying threads
// while nothing completes, which is what exhausts the web tier's
// endpoint pools during a millibottleneck.
type App struct {
	eng     *sim.Engine
	name    string
	cpu     *resource.CPU
	workers *sim.Pool
	wb      *resource.Writeback
	queries *queryRunner
	served  uint64
}

// NewApp returns an application server wired to the given database.
func NewApp(eng *sim.Engine, cfg AppConfig, db *DB) *App {
	if db == nil {
		panic("server: NewApp with nil DB")
	}
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.DBConns < 1 {
		cfg.DBConns = 1
	}
	a := &App{
		eng:     eng,
		name:    cfg.Name,
		cpu:     resource.NewCPU(eng, cfg.Cores),
		workers: sim.NewPool(cfg.Workers),
	}
	a.wb = resource.NewWriteback(eng, cfg.Writeback, a.cpu.Stall)
	a.wb.Start()
	a.queries = &queryRunner{eng: eng, db: db, conns: sim.NewPool(cfg.DBConns), link: cfg.LinkLatency}
	return a
}

// Name returns the server name.
func (a *App) Name() string { return a.name }

// CPU exposes the CPU for metrics sampling and stall injection.
func (a *App) CPU() *resource.CPU { return a.cpu }

// Writeback exposes the writeback daemon for metrics (dirty-page series,
// flush events) and configuration checks.
func (a *App) Writeback() *resource.Writeback { return a.wb }

// Served reports the number of completed requests.
func (a *App) Served() uint64 { return a.served }

// QueuedRequests reports requests inside the server: waiting for a
// servlet thread plus in service.
func (a *App) QueuedRequests() int { return a.workers.Waiting() + a.workers.InUse() }

// DBConnsInUse reports occupied database connection-pool slots — the
// app tier's connection-pool-occupancy telemetry signal.
func (a *App) DBConnsInUse() int { return a.queries.conns.InUse() }

// Handle processes one interaction and calls done when the response is
// ready to travel back. The servlet demand is split 70/30 around the
// database phase so that a mid-request stall also freezes response
// serialization. sp, when non-nil, receives the request's app-tier
// stages: the servlet-thread wait, the CPU bursts (split into worked
// and stall-frozen time) and the database phase.
func (a *App) Handle(it *workload.Interaction, sp *obs.Span, done func()) {
	if it == nil || done == nil {
		panic("server: App.Handle with nil interaction or done")
	}
	sp.Enter(obs.StageAppAcceptQueue, a.eng.Now())
	a.workers.Acquire(func() {
		sp.Exit(obs.StageAppAcceptQueue, a.eng.Now())
		demand := sampleDemand(a.eng, it.AppDemand)
		pre := demand * 7 / 10
		post := demand - pre
		a.burst(sp, pre, func() {
			sp.Enter(obs.StageDBCall, a.eng.Now())
			a.queries.run(it, func() {
				sp.Exit(obs.StageDBCall, a.eng.Now())
				a.burst(sp, post, func() {
					a.wb.AddDirty(it.LogBytes)
					a.served++
					a.workers.Release()
					done()
				})
			})
		})
	})
}

// burst runs one CPU burst, attributing its wall time to the span:
// worked time (run-queue wait + demand) to StageAppThread and frozen
// time to StageStallFrozen. Without a span it takes the untraced path.
func (a *App) burst(sp *obs.Span, demand sim.Time, next func()) {
	if sp == nil {
		a.cpu.Submit(demand, next)
		return
	}
	start := a.eng.Now()
	a.cpu.SubmitTraced(demand, func(_, frozen sim.Time) {
		sp.Add(obs.StageAppThread, a.eng.Now()-start-frozen)
		sp.Add(obs.StageStallFrozen, frozen)
		next()
	})
}

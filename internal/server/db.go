// Package server models the three tier-server types of the paper's
// testbed in virtual time: a web server (Apache httpd + mod_jk), an
// application server (Tomcat) and a database server (MySQL). Each owns a
// multi-core CPU, a worker-thread pool and — where relevant — an accept
// queue, downstream connection pools and a page-cache writeback daemon
// whose flushes produce millibottlenecks.
package server

import (
	"millibalance/internal/resource"
	"millibalance/internal/sim"
	"millibalance/internal/workload"
)

// sampleDemand draws an actual CPU demand around the interaction's mean:
// uniform within ±50%, which keeps tier means stable while providing
// enough dispersion for realistic queueing.
func sampleDemand(eng *sim.Engine, mean sim.Time) sim.Time {
	return eng.Jitter(mean, 0.5)
}

// DBConfig configures a database server.
type DBConfig struct {
	// Name identifies the server in metrics.
	Name string
	// Cores is the CPU core count.
	Cores int
	// Workers bounds concurrently processed queries (thread pool).
	Workers int
}

// DB is the database tier server. Queries occupy a worker thread and a
// CPU burst; in the paper's experiments MySQL is never the bottleneck.
type DB struct {
	eng     *sim.Engine
	name    string
	cpu     *resource.CPU
	workers *sim.Pool
	served  uint64
}

// NewDB returns a database server.
func NewDB(eng *sim.Engine, cfg DBConfig) *DB {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &DB{
		eng:     eng,
		name:    cfg.Name,
		cpu:     resource.NewCPU(eng, cfg.Cores),
		workers: sim.NewPool(cfg.Workers),
	}
}

// Name returns the server name.
func (d *DB) Name() string { return d.name }

// CPU exposes the CPU for metrics sampling and stall injection.
func (d *DB) CPU() *resource.CPU { return d.cpu }

// Served reports the number of completed queries.
func (d *DB) Served() uint64 { return d.served }

// QueuedRequests reports queries inside the server: waiting for a thread
// plus in service — the per-tier queue metric of the paper's Fig. 2b.
func (d *DB) QueuedRequests() int { return d.workers.Waiting() + d.workers.InUse() }

// Query executes one query with the given mean CPU demand and calls done
// when it completes.
func (d *DB) Query(meanDemand sim.Time, done func()) {
	if done == nil {
		panic("server: DB.Query with nil done")
	}
	d.workers.Acquire(func() {
		d.cpu.Submit(sampleDemand(d.eng, meanDemand), func() {
			d.served++
			d.workers.Release()
			done()
		})
	})
}

// queryRunner sequences an interaction's DB round trips over a
// connection pool and a link; shared by App.
type queryRunner struct {
	eng   *sim.Engine
	db    *DB
	conns *sim.Pool
	link  sim.Time
}

// run performs n sequential queries of the interaction and then calls
// done. Zero queries call done synchronously.
func (q *queryRunner) run(it *workload.Interaction, done func()) {
	remaining := it.DBQueries
	var next func()
	next = func() {
		if remaining == 0 {
			done()
			return
		}
		remaining--
		q.conns.Acquire(func() {
			q.eng.Schedule(q.link, func() { // request to DB
				q.db.Query(it.DBDemand, func() {
					q.eng.Schedule(q.link, func() { // response back
						q.conns.Release()
						next()
					})
				})
			})
		})
	}
	next()
}

package server

import (
	"millibalance/internal/lb"
	"millibalance/internal/netmodel"
	"millibalance/internal/obs"
	"millibalance/internal/resource"
	"millibalance/internal/sim"
	"millibalance/internal/workload"
)

// WebConfig configures a web (Apache-like) server.
type WebConfig struct {
	// Name identifies the server in metrics.
	Name string
	// Cores is the CPU core count.
	Cores int
	// Workers is the worker-thread limit (Apache MaxClients; 200 in the
	// paper's configuration).
	Workers int
	// AcceptBacklog is the listen queue capacity; connections arriving
	// with a full backlog are dropped and retransmitted by the client.
	AcceptBacklog int
	// ConnPoolSize is the endpoint pool per application server (mod_jk
	// connection_pool_size; 25 in the paper's configuration).
	ConnPoolSize int
	// Policy and Mechanism select the balancer behaviour; LB tunes the
	// 3-state machine.
	Policy    lb.Policy
	Mechanism lb.Mechanism
	LB        lb.Config
	// LinkLatency is the one-way latency to the application tier.
	LinkLatency sim.Time
	// LogBytesPerRequest is appended to the web server's own access log
	// per response; flushed by Writeback (the Apache-side
	// millibottleneck source of Fig. 2).
	LogBytesPerRequest int64
	// Writeback configures the web server's writeback daemon.
	Writeback resource.WritebackConfig
}

// Web is the web tier server: it accepts client connections into a
// bounded backlog, runs each request on a worker thread, and forwards it
// to an application server chosen by its private mod_jk-style balancer.
// The worker thread stays occupied until the response (or rejection)
// goes back to the client — including any time the original get_endpoint
// mechanism spends polling a stalled backend, which is how queue
// amplification reaches this tier.
type Web struct {
	eng      *sim.Engine
	name     string
	cpu      *resource.CPU
	workers  *sim.Pool
	listener *netmodel.Listener
	balancer *lb.Balancer
	apps     map[string]*App
	wb       *resource.Writeback
	link     sim.Time
	logBytes int64

	served uint64
	errors uint64
}

// NewWeb returns a web server balancing across the given application
// servers.
func NewWeb(eng *sim.Engine, cfg WebConfig, apps []*App) *Web {
	if len(apps) == 0 {
		panic("server: NewWeb with no application servers")
	}
	if cfg.Policy == nil || cfg.Mechanism == nil {
		panic("server: NewWeb with nil policy or mechanism")
	}
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.ConnPoolSize < 1 {
		cfg.ConnPoolSize = 1
	}
	w := &Web{
		eng:      eng,
		name:     cfg.Name,
		cpu:      resource.NewCPU(eng, cfg.Cores),
		workers:  sim.NewPool(cfg.Workers),
		listener: netmodel.NewListener(cfg.AcceptBacklog),
		apps:     make(map[string]*App, len(apps)),
		link:     cfg.LinkLatency,
		logBytes: cfg.LogBytesPerRequest,
	}
	w.wb = resource.NewWriteback(eng, cfg.Writeback, w.cpu.Stall)
	w.wb.Start()
	cands := make([]*lb.Candidate, 0, len(apps))
	for _, a := range apps {
		w.apps[a.Name()] = a
		cands = append(cands, lb.NewCandidate(a.Name(), sim.NewPool(cfg.ConnPoolSize)))
	}
	w.balancer = lb.New(eng, cfg.Policy, cfg.Mechanism, cands, cfg.LB)
	return w
}

// Name returns the server name.
func (w *Web) Name() string { return w.name }

// CPU exposes the CPU for metrics sampling and stall injection.
func (w *Web) CPU() *resource.CPU { return w.cpu }

// Writeback exposes the writeback daemon.
func (w *Web) Writeback() *resource.Writeback { return w.wb }

// Balancer exposes the balancer for metrics (lb_value snapshots,
// dispatch-distribution hooks).
func (w *Web) Balancer() *lb.Balancer { return w.balancer }

// Served reports successfully answered requests.
func (w *Web) Served() uint64 { return w.served }

// Errors reports requests answered with an error (all backends
// unavailable).
func (w *Web) Errors() uint64 { return w.errors }

// Drops reports connections dropped at the accept queue.
func (w *Web) Drops() uint64 { return w.listener.Drops() }

// QueuedRequests reports requests inside the server: waiting in the
// accept backlog plus held by worker threads.
func (w *Web) QueuedRequests() int { return w.listener.Len() + w.workers.InUse() }

// BacklogLen reports connections waiting in the accept queue.
func (w *Web) BacklogLen() int { return w.listener.Len() }

// ActiveWorkers reports worker threads currently occupied.
func (w *Web) ActiveWorkers() int { return w.workers.InUse() }

// TryAccept admits a client request. It reports false when the accept
// queue overflows, in which case the caller (the client's transport)
// retransmits on its schedule.
func (w *Web) TryAccept(req *workload.Request) bool {
	if w.workers.TryAcquire() {
		w.handle(req)
		return true
	}
	if w.listener.Offer(func() { w.handle(req) }) {
		req.Span.Enter(obs.StageWebAcceptQueue, w.eng.Now())
		return true
	}
	return false
}

// handle runs with a worker token held.
func (w *Web) handle(req *workload.Request) {
	sp := req.Span
	sp.Exit(obs.StageWebAcceptQueue, w.eng.Now())
	sp.Enter(obs.StageWebThread, w.eng.Now())
	it := req.Interaction
	afterCPU := func() {
		info := lb.RequestInfo{
			RequestBytes:  it.RequestBytes,
			ResponseBytes: it.ResponseBytes,
			// Session identity (ignored unless the balancer has sticky
			// sessions enabled); +1 keeps client 0 distinguishable from
			// "no session".
			SessionID: uint64(req.ClientID) + 1,
			Span:      sp,
		}
		w.balancer.Dispatch(info,
			func(c *lb.Candidate, done func()) {
				req.Backend = c.Name()
				app := w.apps[c.Name()]
				sp.Add(obs.StageLink, 2*w.link) // forward + response hops
				w.eng.Schedule(w.link, func() { // forward to the app tier
					app.Handle(it, sp, func() {
						w.eng.Schedule(w.link, func() { // response back
							done()
							w.respond(req, true)
						})
					})
				})
			},
			func() { w.respond(req, false) })
	}
	demand := sampleDemand(w.eng, it.WebDemand)
	if sp == nil {
		w.cpu.Submit(demand, afterCPU)
		return
	}
	start := w.eng.Now()
	w.cpu.SubmitTraced(demand, func(_, frozen sim.Time) {
		sp.Add(obs.StageWebCPU, w.eng.Now()-start-frozen)
		sp.Add(obs.StageStallFrozen, frozen)
		afterCPU()
	})
}

// respond finishes the request toward the client and frees (or hands
// over) the worker thread.
func (w *Web) respond(req *workload.Request, ok bool) {
	req.Span.Exit(obs.StageWebThread, w.eng.Now())
	req.Web = w.name
	if ok {
		w.served++
	} else {
		w.errors++
	}
	if w.logBytes > 0 {
		w.wb.AddDirty(w.logBytes)
	}
	req.Finish(workload.Outcome{
		OK:           ok,
		ResponseTime: w.eng.Now() - req.IssuedAt,
		Retransmits:  req.Retransmits,
	})
	// Hand the worker token to the oldest backlogged connection, if
	// any; otherwise release it.
	if !w.listener.Accept() {
		w.workers.Release()
	}
}

package server

import (
	"millibalance/internal/admission"
	"millibalance/internal/lb"
	"millibalance/internal/netmodel"
	"millibalance/internal/obs"
	"millibalance/internal/resource"
	"millibalance/internal/sim"
	"millibalance/internal/workload"
)

// WebConfig configures a web (Apache-like) server.
type WebConfig struct {
	// Name identifies the server in metrics.
	Name string
	// Cores is the CPU core count.
	Cores int
	// Workers is the worker-thread limit (Apache MaxClients; 200 in the
	// paper's configuration).
	Workers int
	// AcceptBacklog is the listen queue capacity; connections arriving
	// with a full backlog are dropped and retransmitted by the client.
	AcceptBacklog int
	// ConnPoolSize is the endpoint pool per application server (mod_jk
	// connection_pool_size; 25 in the paper's configuration).
	ConnPoolSize int
	// Policy and Mechanism select the balancer behaviour; LB tunes the
	// 3-state machine.
	Policy    lb.Policy
	Mechanism lb.Mechanism
	LB        lb.Config
	// LinkLatency is the one-way latency to the application tier.
	LinkLatency sim.Time
	// LogBytesPerRequest is appended to the web server's own access log
	// per response; flushed by Writeback (the Apache-side
	// millibottleneck source of Fig. 2).
	LogBytesPerRequest int64
	// Writeback configures the web server's writeback daemon.
	Writeback resource.WritebackConfig
	// Admission, when non-nil, puts an overload-control gate in front
	// of the worker pool: requests pass its concurrency limiter before
	// competing for workers, wait in a bounded CoDel-judged queue when
	// the limit is reached, and are shed (an error response, not a
	// dropped SYN — the client does not retransmit) when the plane
	// refuses them. All gate activity runs on the engine clock.
	Admission *admission.Gate
	// Classify assigns each request a priority class when admission is
	// armed; nil classifies everything Interactive.
	Classify func(*workload.Request) admission.Class
}

// Web is the web tier server: it accepts client connections into a
// bounded backlog, runs each request on a worker thread, and forwards it
// to an application server chosen by its private mod_jk-style balancer.
// The worker thread stays occupied until the response (or rejection)
// goes back to the client — including any time the original get_endpoint
// mechanism spends polling a stalled backend, which is how queue
// amplification reaches this tier.
type Web struct {
	eng      *sim.Engine
	name     string
	cpu      *resource.CPU
	workers  *sim.Pool
	listener *netmodel.Listener
	balancer *lb.Balancer
	apps     map[string]*App
	wb       *resource.Writeback
	link     sim.Time
	logBytes int64
	adm      *admission.Gate
	admQ     *admission.Queue
	classify func(*workload.Request) admission.Class

	served uint64
	errors uint64
	sheds  uint64
}

// NewWeb returns a web server balancing across the given application
// servers.
func NewWeb(eng *sim.Engine, cfg WebConfig, apps []*App) *Web {
	if len(apps) == 0 {
		panic("server: NewWeb with no application servers")
	}
	if cfg.Policy == nil || cfg.Mechanism == nil {
		panic("server: NewWeb with nil policy or mechanism")
	}
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.ConnPoolSize < 1 {
		cfg.ConnPoolSize = 1
	}
	w := &Web{
		eng:      eng,
		name:     cfg.Name,
		cpu:      resource.NewCPU(eng, cfg.Cores),
		workers:  sim.NewPool(cfg.Workers),
		listener: netmodel.NewListener(cfg.AcceptBacklog),
		apps:     make(map[string]*App, len(apps)),
		link:     cfg.LinkLatency,
		logBytes: cfg.LogBytesPerRequest,
	}
	w.wb = resource.NewWriteback(eng, cfg.Writeback, w.cpu.Stall)
	w.wb.Start()
	if cfg.Admission != nil {
		w.adm = cfg.Admission
		w.admQ = admission.NewQueue(w.adm, eng.Now, func(d sim.Time, fn func()) { eng.Schedule(d, fn) })
		w.classify = cfg.Classify
		if w.classify == nil {
			w.classify = func(*workload.Request) admission.Class { return admission.Interactive }
		}
	}
	cands := make([]*lb.Candidate, 0, len(apps))
	for _, a := range apps {
		w.apps[a.Name()] = a
		cands = append(cands, lb.NewCandidate(a.Name(), sim.NewPool(cfg.ConnPoolSize)))
	}
	w.balancer = lb.New(eng, cfg.Policy, cfg.Mechanism, cands, cfg.LB)
	return w
}

// Name returns the server name.
func (w *Web) Name() string { return w.name }

// CPU exposes the CPU for metrics sampling and stall injection.
func (w *Web) CPU() *resource.CPU { return w.cpu }

// Writeback exposes the writeback daemon.
func (w *Web) Writeback() *resource.Writeback { return w.wb }

// Balancer exposes the balancer for metrics (lb_value snapshots,
// dispatch-distribution hooks).
func (w *Web) Balancer() *lb.Balancer { return w.balancer }

// Served reports successfully answered requests.
func (w *Web) Served() uint64 { return w.served }

// Errors reports requests answered with an error (all backends
// unavailable).
func (w *Web) Errors() uint64 { return w.errors }

// Drops reports connections dropped at the accept queue.
func (w *Web) Drops() uint64 { return w.listener.Drops() }

// Admission exposes the overload-control gate (nil when disabled).
func (w *Web) Admission() *admission.Gate { return w.adm }

// AdmissionSheds reports requests refused by the admission plane.
func (w *Web) AdmissionSheds() uint64 { return w.sheds }

// QueuedRequests reports requests inside the server: waiting in the
// accept backlog plus held by worker threads.
func (w *Web) QueuedRequests() int { return w.listener.Len() + w.workers.InUse() }

// BacklogLen reports connections waiting in the accept queue.
func (w *Web) BacklogLen() int { return w.listener.Len() }

// ActiveWorkers reports worker threads currently occupied.
func (w *Web) ActiveWorkers() int { return w.workers.InUse() }

// TryAccept admits a client request. It reports false when the accept
// queue overflows, in which case the caller (the client's transport)
// retransmits on its schedule. With admission armed, the overload gate
// runs first: refused requests are shed with an error response (they
// report true — an explicit refusal, not a dropped SYN).
func (w *Web) TryAccept(req *workload.Request) bool {
	if w.adm == nil {
		return w.accept(req)
	}
	cls := w.classify(req)
	if w.adm.TryAcquire(cls) {
		if w.accept(req) {
			req.AdmittedAt = w.eng.Now()
			return true
		}
		w.adm.Cancel()
		return false
	}
	now := w.eng.Now()
	if cls == admission.Background {
		// Background never queues: no headroom means shed now.
		w.adm.Drop(now, cls, admission.ReasonPriority)
		w.shed(req)
		return true
	}
	if w.admQ.Push(cls, func(admitted bool) { w.resumeQueued(req, admitted) }) {
		req.Span.Enter(obs.StageWebAcceptQueue, now)
		return true
	}
	w.adm.Drop(now, cls, admission.ReasonQueueFull)
	w.shed(req)
	return true
}

// accept places a request on a worker or the accept backlog — the
// admission-free path.
func (w *Web) accept(req *workload.Request) bool {
	if w.workers.TryAcquire() {
		w.handle(req)
		return true
	}
	if w.listener.Offer(func() { w.handle(req) }) {
		req.Span.Enter(obs.StageWebAcceptQueue, w.eng.Now())
		return true
	}
	return false
}

// resumeQueued completes an admission-queue wait: the queue either
// handed the request a concurrency slot or shed it (MaxWait or CoDel,
// already recorded by the queue).
func (w *Web) resumeQueued(req *workload.Request, admitted bool) {
	if !admitted {
		w.shed(req)
		return
	}
	req.AdmittedAt = w.eng.Now()
	if !w.accept(req) {
		// Workers and backlog both full even though the limiter let us
		// through — shed rather than queue a second time.
		w.adm.Cancel()
		w.adm.Drop(w.eng.Now(), admission.Interactive, admission.ReasonQueueFull)
		w.shed(req)
	}
}

// shed answers a request the admission plane refused. The refusal is
// an immediate error response; the finish is deferred one engine event
// so the caller's span bookkeeping (retransmit-wait exit) lands first.
func (w *Web) shed(req *workload.Request) {
	w.sheds++
	req.Span.Exit(obs.StageWebAcceptQueue, w.eng.Now())
	w.eng.Schedule(0, func() {
		req.Web = w.name
		req.Finish(workload.Outcome{
			OK:           false,
			ResponseTime: w.eng.Now() - req.IssuedAt,
			Retransmits:  req.Retransmits,
		})
	})
}

// handle runs with a worker token held.
func (w *Web) handle(req *workload.Request) {
	sp := req.Span
	sp.Exit(obs.StageWebAcceptQueue, w.eng.Now())
	sp.Enter(obs.StageWebThread, w.eng.Now())
	it := req.Interaction
	afterCPU := func() {
		info := lb.RequestInfo{
			RequestBytes:  it.RequestBytes,
			ResponseBytes: it.ResponseBytes,
			// Session identity (ignored unless the balancer has sticky
			// sessions enabled); +1 keeps client 0 distinguishable from
			// "no session".
			SessionID: uint64(req.ClientID) + 1,
			Span:      sp,
		}
		w.balancer.Dispatch(info,
			func(c *lb.Candidate, done func()) {
				req.Backend = c.Name()
				app := w.apps[c.Name()]
				sp.Add(obs.StageLink, 2*w.link) // forward + response hops
				w.eng.Schedule(w.link, func() { // forward to the app tier
					app.Handle(it, sp, func() {
						w.eng.Schedule(w.link, func() { // response back
							done()
							w.respond(req, true)
						})
					})
				})
			},
			func() { w.respond(req, false) })
	}
	demand := sampleDemand(w.eng, it.WebDemand)
	if sp == nil {
		w.cpu.Submit(demand, afterCPU)
		return
	}
	start := w.eng.Now()
	w.cpu.SubmitTraced(demand, func(_, frozen sim.Time) {
		sp.Add(obs.StageWebCPU, w.eng.Now()-start-frozen)
		sp.Add(obs.StageStallFrozen, frozen)
		afterCPU()
	})
}

// respond finishes the request toward the client and frees (or hands
// over) the worker thread.
func (w *Web) respond(req *workload.Request, ok bool) {
	req.Span.Exit(obs.StageWebThread, w.eng.Now())
	req.Web = w.name
	if ok {
		w.served++
	} else {
		w.errors++
	}
	if w.logBytes > 0 {
		w.wb.AddDirty(w.logBytes)
	}
	req.Finish(workload.Outcome{
		OK:           ok,
		ResponseTime: w.eng.Now() - req.IssuedAt,
		Retransmits:  req.Retransmits,
	})
	// Hand the worker token to the oldest backlogged connection, if
	// any; otherwise release it.
	if !w.listener.Accept() {
		w.workers.Release()
	}
	// Free the admission slot last, after the worker handoff, so a
	// drained waiter finds the worker (or the backlog head) already
	// settled; the release feeds the observed admit→respond time to
	// the adaptive limiter.
	if w.adm != nil {
		w.adm.Release(w.eng.Now(), w.eng.Now()-req.AdmittedAt, ok)
	}
}

package server

import (
	"testing"
	"testing/quick"
	"time"

	"millibalance/internal/lb"
	"millibalance/internal/resource"
	"millibalance/internal/sim"
	"millibalance/internal/workload"
)

func testInteraction() *workload.Interaction {
	return &workload.Interaction{
		Name:          "TestInteraction",
		WebDemand:     100 * time.Microsecond,
		AppDemand:     time.Millisecond,
		DBQueries:     2,
		DBDemand:      100 * time.Microsecond,
		RequestBytes:  300,
		ResponseBytes: 1000,
		LogBytes:      800,
	}
}

func quietWriteback() resource.WritebackConfig {
	return resource.DisabledWritebackConfig()
}

func newTestDB(eng *sim.Engine) *DB {
	return NewDB(eng, DBConfig{Name: "db1", Cores: 8, Workers: 64})
}

func newTestApp(eng *sim.Engine, name string, db *DB) *App {
	return NewApp(eng, AppConfig{
		Name:      name,
		Cores:     8,
		Workers:   210,
		DBConns:   48,
		Writeback: quietWriteback(),
	}, db)
}

func TestDBQueryCompletes(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	var doneAt sim.Time = -1
	db.Query(100*time.Microsecond, func() { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt <= 0 || doneAt > time.Millisecond {
		t.Fatalf("query completed at %v", doneAt)
	}
	if db.Served() != 1 {
		t.Fatalf("Served = %d", db.Served())
	}
}

func TestDBWorkerLimitQueues(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := NewDB(eng, DBConfig{Name: "db1", Cores: 1, Workers: 2})
	for i := 0; i < 5; i++ {
		db.Query(time.Millisecond, func() {})
	}
	if db.QueuedRequests() != 5 {
		t.Fatalf("QueuedRequests = %d, want 5", db.QueuedRequests())
	}
	eng.Run(time.Second)
	if db.QueuedRequests() != 0 || db.Served() != 5 {
		t.Fatalf("after drain: queued=%d served=%d", db.QueuedRequests(), db.Served())
	}
}

func TestDBNilDonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	eng := sim.NewEngine(1, 2)
	newTestDB(eng).Query(time.Millisecond, nil)
}

func TestAppHandleRunsQueriesAndLogs(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	app := newTestApp(eng, "app1", db)
	var doneAt sim.Time = -1
	app.Handle(testInteraction(), nil, func() { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt <= 0 {
		t.Fatal("request did not complete")
	}
	if db.Served() != 2 {
		t.Fatalf("db served %d queries, want 2", db.Served())
	}
	if app.Served() != 1 {
		t.Fatalf("app served %d", app.Served())
	}
	if app.Writeback().TotalDirtied() != 800 {
		t.Fatalf("dirtied %d bytes, want 800", app.Writeback().TotalDirtied())
	}
}

func TestAppZeroQueriesInteraction(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	app := newTestApp(eng, "app1", db)
	it := testInteraction()
	it.DBQueries = 0
	completed := false
	app.Handle(it, nil, func() { completed = true })
	eng.Run(time.Second)
	if !completed {
		t.Fatal("zero-query interaction did not complete")
	}
	if db.Served() != 0 {
		t.Fatalf("db served %d", db.Served())
	}
}

func TestAppWorkerLimit(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	app := NewApp(eng, AppConfig{Name: "app1", Cores: 8, Workers: 3, DBConns: 8, Writeback: quietWriteback()}, db)
	for i := 0; i < 10; i++ {
		app.Handle(testInteraction(), nil, func() {})
	}
	if app.QueuedRequests() != 10 {
		t.Fatalf("QueuedRequests = %d", app.QueuedRequests())
	}
	eng.Run(time.Second)
	if app.Served() != 10 {
		t.Fatalf("Served = %d", app.Served())
	}
}

func TestAppStallFreezesCompletions(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	app := newTestApp(eng, "app1", db)
	completions := 0
	// Stall the CPU for 200ms right away, then submit work.
	app.CPU().Stall(200 * time.Millisecond)
	for i := 0; i < 5; i++ {
		app.Handle(testInteraction(), nil, func() { completions++ })
	}
	eng.Run(150 * time.Millisecond)
	if completions != 0 {
		t.Fatalf("%d requests completed during the stall", completions)
	}
	eng.Run(time.Second)
	if completions != 5 {
		t.Fatalf("completions = %d after stall", completions)
	}
}

func TestAppWritebackFlushCausesStall(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	app := NewApp(eng, AppConfig{
		Name: "app1", Cores: 8, Workers: 210, DBConns: 48,
		Writeback: resource.WritebackConfig{
			Interval: 100 * time.Millisecond,
			Disk:     resource.Disk{WriteRate: 1 << 20},
		},
	}, db)
	// Dirty 200 KiB of logs quickly, then observe a stall after the
	// writeback interval.
	it := testInteraction()
	it.LogBytes = 200 << 10
	app.Handle(it, nil, func() {})
	eng.Run(90 * time.Millisecond)
	if app.CPU().Stalled() {
		t.Fatal("stalled before the writeback interval")
	}
	eng.Run(110 * time.Millisecond)
	if !app.CPU().Stalled() {
		t.Fatal("no stall after flush began")
	}
	if app.Writeback().Flushes() != 1 {
		t.Fatalf("Flushes = %d", app.Writeback().Flushes())
	}
}

func newTestWeb(eng *sim.Engine, name string, policy lb.Policy, mech lb.Mechanism, apps []*App) *Web {
	return NewWeb(eng, WebConfig{
		Name:          name,
		Cores:         8,
		Workers:       200,
		AcceptBacklog: 128,
		ConnPoolSize:  25,
		Policy:        policy,
		Mechanism:     mech,
		Writeback:     quietWriteback(),
	}, apps)
}

func TestWebEndToEnd(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	apps := []*App{newTestApp(eng, "app1", db), newTestApp(eng, "app2", db)}
	web := newTestWeb(eng, "web1", lb.TotalRequest{}, lb.NewModifiedGetEndpoint(), apps)

	var outcomes []workload.Outcome
	g := workload.NewGroup(eng, 20, workload.ClientConfig{
		ThinkTime: 50 * time.Millisecond,
		Mix:       workload.BrowseOnlyMix(),
		OnOutcome: func(_ *workload.Request, o workload.Outcome) { outcomes = append(outcomes, o) },
	}, func(req *workload.Request) {
		if !web.TryAccept(req) {
			req.Finish(workload.Outcome{OK: false, ResponseTime: eng.Now() - req.IssuedAt})
		}
	})
	g.Start()
	eng.Run(5 * time.Second)

	if len(outcomes) < 500 {
		t.Fatalf("only %d outcomes", len(outcomes))
	}
	okCount := 0
	for _, o := range outcomes {
		if o.OK {
			okCount++
			if o.ResponseTime <= 0 || o.ResponseTime > 100*time.Millisecond {
				t.Fatalf("implausible response time %v", o.ResponseTime)
			}
		}
	}
	if okCount != len(outcomes) {
		t.Fatalf("%d/%d requests failed in a healthy cluster", len(outcomes)-okCount, len(outcomes))
	}
	if web.Served() != uint64(okCount) {
		t.Fatalf("web.Served=%d, outcomes ok=%d", web.Served(), okCount)
	}
	// Both apps should have served a roughly even share.
	a, b := apps[0].Served(), apps[1].Served()
	if a == 0 || b == 0 {
		t.Fatalf("uneven distribution: %d vs %d", a, b)
	}
	diff := float64(a) - float64(b)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(a+b) > 0.05 {
		t.Fatalf("distribution skew: %d vs %d", a, b)
	}
}

func TestWebDropsWhenBacklogFull(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	apps := []*App{newTestApp(eng, "app1", db)}
	web := NewWeb(eng, WebConfig{
		Name: "web1", Cores: 1, Workers: 1, AcceptBacklog: 2, ConnPoolSize: 5,
		Policy: lb.TotalRequest{}, Mechanism: lb.NewModifiedGetEndpoint(),
		Writeback: quietWriteback(),
	}, apps)
	// Freeze the web CPU so the single worker never finishes.
	web.CPU().Stall(10 * time.Second)
	admitted := 0
	for i := 0; i < 10; i++ {
		req := &workload.Request{Interaction: testInteraction(), IssuedAt: eng.Now()}
		if web.TryAccept(req) {
			admitted++
		}
	}
	// 1 on the worker + 2 in the backlog.
	if admitted != 3 {
		t.Fatalf("admitted = %d, want 3", admitted)
	}
	if web.Drops() != 7 {
		t.Fatalf("Drops = %d, want 7", web.Drops())
	}
	if web.BacklogLen() != 2 || web.ActiveWorkers() != 1 {
		t.Fatalf("backlog=%d active=%d", web.BacklogLen(), web.ActiveWorkers())
	}
	if web.QueuedRequests() != 3 {
		t.Fatalf("QueuedRequests = %d", web.QueuedRequests())
	}
}

func TestWebErrorResponseWhenAllBackendsExhausted(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	apps := []*App{newTestApp(eng, "app1", db)}
	web := NewWeb(eng, WebConfig{
		Name: "web1", Cores: 8, Workers: 50, AcceptBacklog: 64, ConnPoolSize: 1,
		Policy: lb.TotalRequest{}, Mechanism: lb.NewModifiedGetEndpoint(),
		Writeback: quietWriteback(),
	}, apps)
	// Stall the app forever so its one endpoint never frees.
	apps[0].CPU().Stall(time.Hour)

	var failures int
	done := func(o workload.Outcome) {
		if !o.OK {
			failures++
		}
	}
	g := workload.NewGroup(eng, 5, workload.ClientConfig{
		ThinkTime: 20 * time.Millisecond,
		Mix:       workload.BrowseOnlyMix(),
		OnOutcome: func(_ *workload.Request, o workload.Outcome) { done(o) },
	}, func(req *workload.Request) {
		if !web.TryAccept(req) {
			req.Finish(workload.Outcome{OK: false})
		}
	})
	g.Start()
	eng.Run(2 * time.Second)
	if failures == 0 {
		t.Fatal("no error responses with all backends exhausted")
	}
	if web.Errors() == 0 {
		t.Fatal("web.Errors() = 0")
	}
}

func TestWebWorkerHandoffToBacklog(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	apps := []*App{newTestApp(eng, "app1", db)}
	web := NewWeb(eng, WebConfig{
		Name: "web1", Cores: 8, Workers: 1, AcceptBacklog: 8, ConnPoolSize: 5,
		Policy: lb.TotalRequest{}, Mechanism: lb.NewModifiedGetEndpoint(),
		Writeback: quietWriteback(),
	}, apps)
	completed := 0
	g := workload.NewGroup(eng, 4, workload.ClientConfig{
		ThinkTime: time.Millisecond,
		Mix:       workload.BrowseOnlyMix(),
		OnOutcome: func(_ *workload.Request, o workload.Outcome) {
			if o.OK {
				completed++
			}
		},
	}, func(req *workload.Request) {
		if !web.TryAccept(req) {
			req.Finish(workload.Outcome{OK: false})
		}
	})
	g.Start()
	eng.Run(2 * time.Second)
	if completed < 100 {
		t.Fatalf("single-worker web served only %d; backlog handoff broken?", completed)
	}
	if web.QueuedRequests() > 5 {
		t.Fatalf("residual queue %d", web.QueuedRequests())
	}
}

func TestWebValidations(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	db := newTestDB(eng)
	apps := []*App{newTestApp(eng, "app1", db)}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("no apps", func() {
		NewWeb(eng, WebConfig{Policy: lb.TotalRequest{}, Mechanism: lb.NewModifiedGetEndpoint()}, nil)
	})
	mustPanic("nil policy", func() {
		NewWeb(eng, WebConfig{Mechanism: lb.NewModifiedGetEndpoint()}, apps)
	})
	mustPanic("nil app db", func() { NewApp(eng, AppConfig{}, nil) })
	mustPanic("nil handle args", func() {
		newTestApp(eng, "appX", db).Handle(nil, nil, func() {})
	})
}

// Property: requests are conserved through the full web→app→db chain
// for any workload that fits the run horizon — served responses plus
// error responses plus drops equal the admitted attempts.
func TestQuickWebConservation(t *testing.T) {
	f := func(arrivalsRaw []uint8, seed uint64) bool {
		eng := sim.NewEngine(seed, seed^0xabcdef)
		db := NewDB(eng, DBConfig{Name: "db1", Cores: 4, Workers: 16})
		apps := []*App{
			NewApp(eng, AppConfig{Name: "a1", Cores: 4, Workers: 32, DBConns: 16, Writeback: quietWriteback()}, db),
			NewApp(eng, AppConfig{Name: "a2", Cores: 4, Workers: 32, DBConns: 16, Writeback: quietWriteback()}, db),
		}
		web := NewWeb(eng, WebConfig{
			Name: "w1", Cores: 4, Workers: 16, AcceptBacklog: 8, ConnPoolSize: 8,
			Policy: lb.TotalRequest{}, Mechanism: lb.NewModifiedGetEndpoint(),
			Writeback: quietWriteback(),
		}, apps)

		var admitted, dropped, finished uint64
		for i, gap := range arrivalsRaw {
			at := sim.Time(i) * sim.Time(gap%50) * 100 * time.Microsecond
			eng.At(at, func() {
				req := workload.NewRequest(uint64(i), 0, testInteraction(), eng.Now(),
					func(workload.Outcome) { finished++ })
				if web.TryAccept(req) {
					admitted++
				} else {
					dropped++
					req.Finish(workload.Outcome{OK: false})
				}
			})
		}
		eng.Run(time.Hour)
		if uint64(len(arrivalsRaw)) != admitted+dropped {
			return false
		}
		// Everything admitted finished through the web path; every drop
		// finished through the caller; nothing finished twice (Finish
		// would have panicked).
		return web.Served()+web.Errors() == admitted && finished == admitted+dropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package lb

import (
	"math/rand/v2"

	"millibalance/internal/probe"
)

// ProbeViewer is an optional Policy extension: policies backed by
// probe pools expose the freshest sample per candidate so snapshots and
// decision-log events can record the probe values each choice saw.
type ProbeViewer interface {
	ProbeView(name string) (probe.Sample, bool)
}

// Prequal is the probing policy (Wydrowski et al., arXiv:2312.10172)
// adapted to the mod_jk two-level scheduler: selection consults only
// the asynchronous probe pools — sample d candidates, classify them hot
// or cold by the in-flight quantile of the fresh probes, dispatch to
// the cold candidate with the lowest estimated latency, else the one
// with the lowest probed in-flight count. It never reads the cumulative
// counters that invert under millibottlenecks: a frozen backend stops
// answering probes, its pooled samples age past the staleness TTL, and
// it silently drops out of selection — no mechanism remedy required.
//
// The lb_value bookkeeping mirrors current_load (in-flight) so
// snapshots, decision events and the no-fresh-data fallback ranking
// stay meaningful, but a healthy probe pool overrides it entirely.
type Prequal struct {
	pools *probe.Pools
	seed  func()
	// names backs the Pick call with the eligible candidates' names,
	// reused across dispatches to keep the hot path allocation-free.
	names []string
}

// NewPrequal returns a prequal policy reading the given pools. A nil
// pools is legal — PolicyByName cannot know the substrate's prober —
// and makes the policy behave exactly like current_load with randomized
// d-sampling off (pure min-lb_value fallback) until AttachPools runs.
func NewPrequal(pools *probe.Pools) *Prequal { return &Prequal{pools: pools} }

// AttachPools connects the policy to a substrate's probe pools.
func (p *Prequal) AttachPools(pools *probe.Pools) { p.pools = pools }

// Pools returns the attached pools (nil when detached).
func (p *Prequal) Pools() *probe.Pools { return p.pools }

// SetSeedHook registers the reseeding action SeedPools runs on a
// runtime swap-in — typically pool clear plus an immediate probe round
// from the substrate's prober.
func (p *Prequal) SetSeedHook(fn func()) { p.seed = fn }

// Name implements Policy.
func (p *Prequal) Name() string { return "prequal" }

// OnDispatch implements Policy (current_load-style bookkeeping).
func (p *Prequal) OnDispatch(c *Candidate, _ RequestInfo) { c.lbValue += c.scaled(LBMult) }

// OnComplete implements Policy.
func (p *Prequal) OnComplete(c *Candidate, _ RequestInfo) {
	if c.lbValue >= c.scaled(LBMult) {
		c.lbValue -= c.scaled(LBMult)
	} else {
		c.lbValue = 0
	}
}

// Reseed implements Reseeder: in-flight, matching the bookkeeping.
func (p *Prequal) Reseed(c *Candidate) float64 { return c.scaled(float64(c.inFlight) * LBMult) }

// SeedPools implements PoolSeeder: runs the registered seed hook, or
// just clears the pools so stale pre-swap samples cannot steer the
// first post-swap decisions.
func (p *Prequal) SeedPools() {
	if p.seed != nil {
		p.seed()
		return
	}
	if p.pools != nil {
		p.pools.Clear()
	}
}

// Choose implements Chooser: the probe-pool hot/cold selection, falling
// back to the min-lb_value scan (= lowest in-flight under this
// policy's bookkeeping) when no sampled candidate has fresh probes.
func (p *Prequal) Choose(eligible []*Candidate, rng *rand.Rand) *Candidate {
	if p.pools != nil {
		names := p.names[:0]
		for _, c := range eligible {
			names = append(names, c.name)
		}
		p.names = names
		if i := p.pools.Pick(names, rng); i >= 0 {
			return eligible[i]
		}
	}
	best := eligible[0]
	for _, c := range eligible[1:] {
		if c.lbValue < best.lbValue {
			best = c
		}
	}
	return best
}

// ProbeView implements ProbeViewer for decision-log enrichment.
func (p *Prequal) ProbeView(name string) (probe.Sample, bool) {
	if p.pools == nil {
		return probe.Sample{}, false
	}
	return p.pools.Peek(name)
}

package lb

import (
	"time"

	"millibalance/internal/obs"
	"millibalance/internal/sim"
)

// Config tunes the 3-state machine around the policy and mechanism.
type Config struct {
	// BusyRecovery is how long a candidate stays Busy before being
	// probed again (default 100 ms). A completed response readmits it
	// immediately.
	BusyRecovery sim.Time
	// ErrorThreshold is the number of consecutive endpoint-acquisition
	// failures that escalate Busy to Error (default 3, mirroring
	// mod_jk's retry ladder).
	ErrorThreshold int
	// ErrorAfter additionally requires the consecutive failures to span
	// at least this long before escalating (default 2 s). Millibottle-
	// necks last tens to hundreds of milliseconds and can fail dozens
	// of concurrent acquisitions at once; only failures that persist
	// well beyond that horizon indicate a genuinely failed server.
	ErrorAfter sim.Time
	// ErrorRecovery is how long an Error candidate is excluded before
	// being tentatively readmitted (default 10 s).
	ErrorRecovery sim.Time
	// MaxAttempts bounds how many distinct candidates one sweep may
	// try (default: all of them). A sweep never retries a candidate it
	// already failed on.
	MaxAttempts int
	// Sweeps is how many full candidate sweeps a dispatch makes before
	// rejecting (mod_jk's balancer-level retries; default 3). The
	// caller's worker thread stays occupied across sweeps.
	Sweeps int
	// SweepPause separates consecutive sweeps (default 100 ms).
	SweepPause sim.Time
	// MaintainInterval runs the policy's Maintain hook (if it
	// implements Maintainer) on every candidate at this period —
	// mod_jk's global maintain, which decays lb_values. Zero disables
	// maintenance.
	MaintainInterval sim.Time
	// StickySessions pins each session (RequestInfo.SessionID) to the
	// backend it first landed on, overriding the policy unless that
	// backend is in Error or already failed this dispatch — mod_jk's
	// sticky_session behaviour.
	StickySessions bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults(candidates int) Config {
	if c.BusyRecovery <= 0 {
		c.BusyRecovery = 100 * time.Millisecond
	}
	if c.ErrorThreshold <= 0 {
		c.ErrorThreshold = 3
	}
	if c.ErrorAfter <= 0 {
		c.ErrorAfter = 2 * time.Second
	}
	if c.ErrorRecovery <= 0 {
		c.ErrorRecovery = 10 * time.Second
	}
	if c.MaxAttempts <= 0 || c.MaxAttempts > candidates {
		c.MaxAttempts = candidates
	}
	if c.Sweeps <= 0 {
		c.Sweeps = 3
	}
	if c.SweepPause <= 0 {
		c.SweepPause = 100 * time.Millisecond
	}
	return c
}

// Balancer is the lower level of the two-level scheduler: it picks the
// Available candidate with the lowest lb_value, runs the configured
// endpoint-acquisition mechanism, and maintains the 3-state machine.
// One balancer instance lives in each web-tier server (each Apache runs
// its own mod_jk with private endpoint pools and lb_values).
type Balancer struct {
	eng    *sim.Engine
	policy Policy
	mech   Mechanism
	cfg    Config
	cands  []*Candidate

	rejects    uint64
	sessions   map[uint64]*Candidate
	onAssign   func(*Candidate)
	onDispatch func(*Candidate)
	onReject   func()
	onState    func(c *Candidate, from, to State)
	onProbe    func(c *Candidate, rt sim.Time, ok bool)

	maintainOn bool
	// scratch backs the eligible-candidate list handed to Chooser
	// policies, reused across dispatches to keep the ranking loop
	// allocation-free.
	scratch []*Candidate
}

// triedSet tracks the candidates a dispatch already failed on. Candidate
// sets are tiny (the paper's testbed has four application servers), so a
// slice with a linear scan beats a map and costs at most one allocation
// per failing dispatch instead of one per map insert.
type triedSet []*Candidate

func (t triedSet) has(c *Candidate) bool {
	for _, x := range t {
		if x == c {
			return true
		}
	}
	return false
}

// New returns a balancer over the candidates. Policy, mechanism and at
// least one candidate are required.
func New(eng *sim.Engine, policy Policy, mech Mechanism, cands []*Candidate, cfg Config) *Balancer {
	if policy == nil || mech == nil {
		panic("lb: New with nil policy or mechanism")
	}
	if len(cands) == 0 {
		panic("lb: New with no candidates")
	}
	copied := make([]*Candidate, len(cands))
	copy(copied, cands)
	if _, ok := policy.(Maintainer); ok && cfg.MaintainInterval <= 0 {
		// A maintaining policy is meaningless without maintenance; use
		// a sub-second default so the decay reacts within a few
		// millibottleneck lifetimes.
		cfg.MaintainInterval = 500 * time.Millisecond
	}
	b := &Balancer{
		eng:    eng,
		policy: policy,
		mech:   mech,
		cfg:    cfg.withDefaults(len(cands)),
		cands:  copied,
	}
	if _, ok := policy.(Maintainer); ok {
		b.startMaintain()
	}
	return b
}

// startMaintain arms the recurring maintenance tick. The tick checks the
// *current* policy on every firing, so a runtime SetPolicy swap into or
// out of a maintaining policy needs no timer surgery.
func (b *Balancer) startMaintain() {
	if b.cfg.MaintainInterval <= 0 || b.maintainOn {
		return
	}
	b.maintainOn = true
	var tick func()
	tick = func() {
		if m, ok := b.policy.(Maintainer); ok {
			for _, c := range b.cands {
				m.Maintain(c)
			}
		}
		b.eng.Schedule(b.cfg.MaintainInterval, tick)
	}
	b.eng.Schedule(b.cfg.MaintainInterval, tick)
}

// Policy returns the active policy.
func (b *Balancer) Policy() Policy { return b.policy }

// Mechanism returns the active mechanism.
func (b *Balancer) Mechanism() Mechanism { return b.mech }

// Candidates returns the candidate list (shared, not a copy — callers
// must not mutate it).
func (b *Balancer) Candidates() []*Candidate { return b.cands }

// Rejects reports how many dispatches failed on every attempt.
func (b *Balancer) Rejects() uint64 { return b.rejects }

// SetAssignHook registers a hook invoked every time the scheduler
// chooses a candidate — including choices whose endpoint acquisition is
// still polling or eventually fails. The paper's workload-distribution
// plots (Fig. 6c, 7c, 9b, 13b) count requests by this routing decision,
// which is what makes the pile-up on a stalled candidate visible while
// the stuck workers are still inside get_endpoint.
func (b *Balancer) SetAssignHook(hook func(*Candidate)) { b.onAssign = hook }

// SetDispatchHook registers a hook invoked at each successful dispatch
// (endpoint acquired and request actually sent).
func (b *Balancer) SetDispatchHook(hook func(*Candidate)) { b.onDispatch = hook }

// SetRejectHook registers a hook invoked when a dispatch is rejected.
func (b *Balancer) SetRejectHook(hook func()) { b.onReject = hook }

// SetStateHook registers a hook invoked on every candidate state
// transition of the 3-state machine (Available/Busy/Error), including
// the timed Busy and Error recoveries — the raw material of the
// decision log's state events.
func (b *Balancer) SetStateHook(hook func(c *Candidate, from, to State)) { b.onState = hook }

// Snapshot copies every candidate's balancer-visible state.
func (b *Balancer) Snapshot() []Snapshot {
	return b.AppendSnapshot(nil)
}

// AppendSnapshot appends every candidate's balancer-visible state to dst
// and returns the extended slice. Periodic samplers pass a reused buffer
// to keep the per-tick snapshot allocation-free. When the active policy
// exposes probe-pool samples (ProbeViewer), each snapshot carries the
// probe values a dispatch at this instant would have seen.
func (b *Balancer) AppendSnapshot(dst []Snapshot) []Snapshot {
	pv, hasPV := b.policy.(ProbeViewer)
	for _, c := range b.cands {
		s := c.snapshot()
		if hasPV {
			if smp, ok := pv.ProbeView(c.name); ok {
				s.ProbeInFlight = smp.InFlight
				s.ProbeLatency = smp.Latency
				s.ProbeAge = smp.Age
				s.ProbeFresh = true
			}
		}
		dst = append(dst, s)
	}
	return dst
}

// Dispatch picks a candidate, acquires an endpoint through the mechanism
// and calls send(c, done) with the chosen candidate; the caller forwards
// the request and must invoke done exactly once when the response
// returns. When every attempt fails, reject runs instead. The caller's
// worker thread is considered occupied until send or reject fires —
// exactly the occupancy that lets the original mechanism propagate queue
// amplification into the web tier.
func (b *Balancer) Dispatch(info RequestInfo, send func(c *Candidate, done func()), reject func()) {
	if send == nil || reject == nil {
		panic("lb: Dispatch with nil callback")
	}
	info.Span.Enter(obs.StageGetEndpoint, b.eng.Now())
	b.attempt(info, send, reject, nil, 1)
}

func (b *Balancer) attempt(info RequestInfo, send func(*Candidate, func()), reject func(), tried triedSet, sweep int) {
	c := b.sessionCandidate(info.SessionID, tried)
	if c == nil {
		c = b.choose(tried)
	}
	if c == nil {
		b.nextSweep(info, send, reject, sweep)
		return
	}
	if b.onAssign != nil {
		b.onAssign(c)
	}
	b.mech.Acquire(c, func(ok bool) {
		if !ok {
			if c.probeArmed {
				// The armed probe could not even get an endpoint: report a
				// failed probe instead of dispatching it elsewhere.
				c.probeArmed = false
				if b.onProbe != nil {
					b.onProbe(c, 0, false)
				}
			}
			b.noteFailure(c)
			if tried == nil {
				tried = make(triedSet, 0, len(b.cands))
			}
			tried = append(tried, c)
			if len(tried) >= b.cfg.MaxAttempts {
				b.nextSweep(info, send, reject, sweep)
				return
			}
			b.attempt(info, send, reject, tried, sweep)
			return
		}
		b.dispatchTo(c, info, send)
	})
}

// nextSweep pauses and re-sweeps the full candidate set, or rejects when
// the sweep budget is spent.
func (b *Balancer) nextSweep(info RequestInfo, send func(*Candidate, func()), reject func(), sweep int) {
	if sweep >= b.cfg.Sweeps {
		info.Span.Exit(obs.StageGetEndpoint, b.eng.Now())
		b.doReject(reject)
		return
	}
	b.eng.Schedule(b.cfg.SweepPause, func() {
		b.attempt(info, send, reject, nil, sweep+1)
	})
}

func (b *Balancer) dispatchTo(c *Candidate, info RequestInfo, send func(*Candidate, func())) {
	info.Span.Exit(obs.StageGetEndpoint, b.eng.Now())
	c.consecFails = 0
	if c.state != StateAvailable {
		// Returning an endpoint proves the candidate responsive again.
		b.setAvailable(c)
	}
	b.policy.OnDispatch(c, info)
	if b.cfg.StickySessions {
		b.bindSession(info.SessionID, c)
	}
	c.dispatched++
	c.inFlight++
	if c.probeArmed {
		c.probeArmed = false
		c.probing = true
		c.probeStart = b.eng.Now()
	}
	if b.onDispatch != nil {
		b.onDispatch(c)
	}
	finished := false
	send(c, func() {
		if finished {
			panic("lb: request completion invoked twice")
		}
		finished = true
		c.inFlight--
		c.completed++
		c.traffic += info.RequestBytes + info.ResponseBytes
		b.policy.OnComplete(c, info)
		c.releaseEndpoint()
		c.consecFails = 0
		if c.state != StateAvailable {
			b.setAvailable(c)
		}
		if c.probing {
			c.probing = false
			if b.onProbe != nil {
				b.onProbe(c, b.eng.Now()-c.probeStart, true)
			}
		}
	})
}

func (b *Balancer) doReject(reject func()) {
	b.rejects++
	if b.onReject != nil {
		b.onReject()
	}
	reject()
}

// choose implements the lower-level scheduler: the Available candidate
// with the lowest lb_value; if none is Available, the Busy candidate with
// the lowest lb_value is retried (paper Section IV-A, step 3). Error
// candidates and candidates this dispatch already failed on are
// excluded. Ties break toward the earliest candidate, matching mod_jk's
// first-found scan.
func (b *Balancer) choose(tried triedSet) *Candidate {
	if c := b.lowest(StateAvailable, tried); c != nil {
		return c
	}
	return b.lowest(StateBusy, tried)
}

func (b *Balancer) lowest(s State, tried triedSet) *Candidate {
	// A quarantined candidate is invisible to the scheduler until the
	// control plane arms a probe; the armed probe makes it eligible for
	// exactly one dispatch.
	skip := func(c *Candidate) bool {
		return c.state != s || tried.has(c) || (c.quarantined && !c.probeArmed)
	}
	if chooser, ok := b.policy.(Chooser); ok {
		eligible := b.scratch[:0]
		for _, c := range b.cands {
			if !skip(c) {
				eligible = append(eligible, c)
			}
		}
		b.scratch = eligible
		if len(eligible) == 0 {
			return nil
		}
		return chooser.Choose(eligible, b.eng.Rand())
	}
	var best *Candidate
	for _, c := range b.cands {
		if skip(c) {
			continue
		}
		if best == nil || c.lbValue < best.lbValue {
			best = c
		}
	}
	return best
}

// noteFailure records an endpoint-acquisition failure: Available → Busy,
// and — when the consecutive failures both exceed the count threshold
// and span longer than any millibottleneck could — Error.
func (b *Balancer) noteFailure(c *Candidate) {
	if c.consecFails == 0 {
		c.firstFailAt = b.eng.Now()
	}
	c.consecFails++
	if c.consecFails >= b.cfg.ErrorThreshold && b.eng.Now()-c.firstFailAt >= b.cfg.ErrorAfter {
		b.setError(c)
		return
	}
	if c.state == StateAvailable {
		b.setBusy(c)
	}
}

// transition moves a candidate to a new state, notifying the state
// hook when the state actually changes.
func (b *Balancer) transition(c *Candidate, to State) {
	from := c.state
	if from == to {
		return
	}
	c.state = to
	if b.onState != nil {
		b.onState(c, from, to)
	}
}

func (b *Balancer) setBusy(c *Candidate) {
	b.transition(c, StateBusy)
	b.stopTimers(c)
	c.busyTimer = b.eng.Schedule(b.cfg.BusyRecovery, func() {
		c.busyTimer = sim.Timer{}
		if c.state == StateBusy {
			b.transition(c, StateAvailable)
		}
	})
}

func (b *Balancer) setError(c *Candidate) {
	b.transition(c, StateError)
	b.stopTimers(c)
	c.errorTimer = b.eng.Schedule(b.cfg.ErrorRecovery, func() {
		c.errorTimer = sim.Timer{}
		if c.state == StateError {
			b.transition(c, StateAvailable)
			c.consecFails = 0
		}
	})
}

func (b *Balancer) setAvailable(c *Candidate) {
	b.transition(c, StateAvailable)
	b.stopTimers(c)
}

func (b *Balancer) stopTimers(c *Candidate) {
	b.eng.Stop(c.busyTimer)
	c.busyTimer = sim.Timer{}
	b.eng.Stop(c.errorTimer)
	c.errorTimer = sim.Timer{}
}

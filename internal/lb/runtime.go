package lb

import (
	"time"

	"millibalance/internal/sim"
)

// Runtime reconfiguration — the actuation surface of the adaptive
// control plane (internal/adapt). A balancer normally keeps its policy
// and mechanism for life, as mod_jk does; these entry points let a
// controller hot-swap either mid-run and drain/re-admit individual
// candidates without losing the bookkeeping a swap must preserve:
// in-flight counts, dispatch/completion totals and cumulative traffic
// all survive, and each candidate's lb_value is reseeded from them so
// the incoming policy starts from the state it would have accumulated
// itself (in particular, current_load's invariant lb_value == in-flight
// holds immediately after swapping in).

// Reseeder is implemented by every built-in policy: Reseed returns the
// lb_value the policy would have accumulated for the candidate's
// current counters, used when the policy is swapped in at runtime.
type Reseeder interface {
	Reseed(c *Candidate) float64
}

// PoolSeeder is an optional Policy extension: policies backed by an
// external sample store (prequal's probe pools) reseed it when swapped
// in at runtime, so stale pre-swap samples cannot steer the first
// post-swap decisions.
type PoolSeeder interface {
	SeedPools()
}

// SetPolicy swaps the upper-level policy at runtime, reseeding every
// candidate's lb_value via the policy's Reseeder (policies without one
// keep the previous values). Swapping in a Maintainer arms the
// maintenance tick if it is not already running; swapping in a
// PoolSeeder reseeds its sample store.
func (b *Balancer) SetPolicy(p Policy) {
	if p == nil {
		panic("lb: SetPolicy with nil policy")
	}
	b.policy = p
	if r, ok := p.(Reseeder); ok {
		for _, c := range b.cands {
			c.lbValue = r.Reseed(c)
		}
	}
	if ps, ok := p.(PoolSeeder); ok {
		ps.SeedPools()
	}
	if _, ok := p.(Maintainer); ok {
		if b.cfg.MaintainInterval <= 0 {
			b.cfg.MaintainInterval = 500 * time.Millisecond
		}
		b.startMaintain()
	}
}

// SetMechanism swaps the endpoint-acquisition mechanism at runtime.
// Acquisitions already in flight finish under the old mechanism; the
// next dispatch uses the new one.
func (b *Balancer) SetMechanism(m Mechanism) {
	if m == nil {
		panic("lb: SetMechanism with nil mechanism")
	}
	b.mech = m
}

// Cumulative marks policies whose lb_value grows monotonically for the
// life of the run (total_request, total_traffic). A candidate
// re-admitted from quarantine under such a policy must re-enter at the
// tier's maximum lb_value — mod_jk's recovery seeding — or its frozen,
// now-minimal value attracts the entire tier's traffic in one wave (the
// recovery spike of the paper's Figs. 10–11, self-inflicted).
type Cumulative interface {
	Cumulative()
}

// SetQuarantined drains (or re-admits) a candidate: while quarantined
// it is skipped by the scheduler and by sticky sessions, except for
// single probe requests armed via ArmProbe. Lifting the quarantine also
// disarms any pending probe and, under a Cumulative policy, applies
// mod_jk recovery seeding.
func (b *Balancer) SetQuarantined(c *Candidate, q bool) {
	c.quarantined = q
	if !q {
		c.probeArmed = false
		if _, ok := b.policy.(Cumulative); ok {
			for _, o := range b.cands {
				if o.lbValue > c.lbValue {
					c.lbValue = o.lbValue
				}
			}
		}
	}
}

// ArmProbe lets exactly one request through to a quarantined candidate.
// The probe hook reports how the probe went: rt is the probe's response
// time on success, and ok=false means the probe could not even acquire
// an endpoint. Arming is a no-op when the candidate is not quarantined
// or a probe is already in flight.
func (b *Balancer) ArmProbe(c *Candidate) {
	if c.quarantined && !c.probing {
		c.probeArmed = true
	}
}

// SetProbeHook registers the probe outcome callback.
func (b *Balancer) SetProbeHook(hook func(c *Candidate, rt sim.Time, ok bool)) {
	b.onProbe = hook
}

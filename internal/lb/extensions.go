package lb

import (
	"math/rand/v2"
)

// This file contains policies beyond the paper's three: the
// recent_request policy implements the paper's closing suggestion of
// "adding the consideration of recent utilization changes" by decaying
// the cumulative counter (mod_jk's own worker.maintain does the same,
// halving lb_values every maintain interval), and two_choices is the
// classic power-of-two-choices baseline for comparison.

// Maintainer is an optional Policy extension: when the balancer's
// MaintainInterval is set, Maintain runs for every candidate at each
// maintenance tick (mod_jk's global maintain).
type Maintainer interface {
	Maintain(c *Candidate)
}

// Chooser is an optional Policy extension overriding the lower-level
// scheduler's min-lb_value selection. Choose picks among the eligible
// candidates (all in the same state, never empty).
type Chooser interface {
	Choose(eligible []*Candidate, rng *rand.Rand) *Candidate
}

// RecentRequest ranks candidates by a *decaying* request counter:
// dispatches increment the lb_value and each maintenance tick halves
// it, so the ranking reflects recent — not lifetime — utilization. With
// a sub-second maintain interval a stalled candidate's frozen counter
// loses its misleading advantage within a few ticks, softening the
// instability without tracking in-flight state.
type RecentRequest struct{}

// Name implements Policy.
func (RecentRequest) Name() string { return "recent_request" }

// OnDispatch implements Policy.
func (RecentRequest) OnDispatch(c *Candidate, _ RequestInfo) { c.lbValue += LBMult }

// OnComplete implements Policy.
func (RecentRequest) OnComplete(*Candidate, RequestInfo) {}

// Maintain implements Maintainer: the mod_jk halving decay.
func (RecentRequest) Maintain(c *Candidate) { c.lbValue /= 2 }

// Reseed implements Reseeder: the decayed counter cannot be
// reconstructed from lifetime totals, so the in-flight count serves as
// the recent-utilization estimate a fresh decay starts from.
func (RecentRequest) Reseed(c *Candidate) float64 { return float64(c.inFlight) * LBMult }

// TwoChoices is the power-of-two-choices baseline: sample two eligible
// candidates uniformly and dispatch to the one with fewer in-flight
// requests. Its lb_value bookkeeping equals current_load so snapshots
// stay meaningful, but selection is randomized, which bounds herd
// behaviour when many balancers share the same view.
type TwoChoices struct{}

// Name implements Policy.
func (TwoChoices) Name() string { return "two_choices" }

// OnDispatch implements Policy.
func (TwoChoices) OnDispatch(c *Candidate, _ RequestInfo) { c.lbValue += LBMult }

// OnComplete implements Policy.
func (TwoChoices) OnComplete(c *Candidate, _ RequestInfo) {
	if c.lbValue >= LBMult {
		c.lbValue -= LBMult
	} else {
		c.lbValue = 0
	}
}

// Reseed implements Reseeder: in-flight, matching the current_load-style
// bookkeeping above.
func (TwoChoices) Reseed(c *Candidate) float64 { return float64(c.inFlight) * LBMult }

// Choose implements Chooser.
func (TwoChoices) Choose(eligible []*Candidate, rng *rand.Rand) *Candidate {
	if len(eligible) == 1 {
		return eligible[0]
	}
	i := rng.IntN(len(eligible))
	j := rng.IntN(len(eligible) - 1)
	if j >= i {
		j++
	}
	a, b := eligible[i], eligible[j]
	if b.lbValue < a.lbValue {
		return b
	}
	return a
}

// RandomPolicy dispatches uniformly at random among eligible
// candidates — the no-information baseline.
type RandomPolicy struct{}

// Name implements Policy.
func (RandomPolicy) Name() string { return "random" }

// OnDispatch implements Policy.
func (RandomPolicy) OnDispatch(c *Candidate, _ RequestInfo) { c.lbValue += LBMult }

// OnComplete implements Policy.
func (RandomPolicy) OnComplete(c *Candidate, _ RequestInfo) {
	if c.lbValue >= LBMult {
		c.lbValue -= LBMult
	} else {
		c.lbValue = 0
	}
}

// Reseed implements Reseeder: in-flight, matching the current_load-style
// bookkeeping above.
func (RandomPolicy) Reseed(c *Candidate) float64 { return float64(c.inFlight) * LBMult }

// Choose implements Chooser.
func (RandomPolicy) Choose(eligible []*Candidate, rng *rand.Rand) *Candidate {
	return eligible[rng.IntN(len(eligible))]
}

// RoundRobin cycles through the eligible candidates in order — the
// information-free fallback the adaptive control plane engages when
// every candidate looks stalled and load-dependent lb_values carry no
// signal. The lb_value bookkeeping equals current_load so snapshots and
// decision events stay meaningful, but selection ignores the values.
type RoundRobin struct {
	next uint64
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "round_robin" }

// OnDispatch implements Policy.
func (*RoundRobin) OnDispatch(c *Candidate, _ RequestInfo) { c.lbValue += LBMult }

// OnComplete implements Policy.
func (*RoundRobin) OnComplete(c *Candidate, _ RequestInfo) {
	if c.lbValue >= LBMult {
		c.lbValue -= LBMult
	} else {
		c.lbValue = 0
	}
}

// Reseed implements Reseeder: in-flight, matching the bookkeeping above.
func (*RoundRobin) Reseed(c *Candidate) float64 { return float64(c.inFlight) * LBMult }

// Choose implements Chooser. The cursor is reduced modulo the eligible
// count on every advance rather than free-running: a raw counter skips
// or repeats candidates at the 2^64 wrap whenever the count does not
// divide 2^64 (the same wraparound bias fixed in
// internal/httpcluster's sync_rrCursor). For a constant-size eligible
// set the selection sequence is identical to the free-running version.
func (r *RoundRobin) Choose(eligible []*Candidate, _ *rand.Rand) *Candidate {
	idx := r.next % uint64(len(eligible))
	r.next = idx + 1
	return eligible[idx]
}

package lb

import (
	"testing"
	"time"

	"millibalance/internal/sim"
)

func TestExtensionPoliciesResolve(t *testing.T) {
	for _, name := range []string{"recent_request", "two_choices", "random", "round_robin"} {
		p, ok := PolicyByName(name)
		if !ok || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, ok)
		}
	}
	if len(PolicyNames()) != 8 {
		t.Fatalf("PolicyNames = %v", PolicyNames())
	}
}

func TestRecentRequestDecay(t *testing.T) {
	c := newCand("app1", 10)
	p := RecentRequest{}
	for i := 0; i < 8; i++ {
		p.OnDispatch(c, RequestInfo{})
	}
	if c.LBValue() != 8 {
		t.Fatalf("lb = %v", c.LBValue())
	}
	p.Maintain(c)
	if c.LBValue() != 4 {
		t.Fatalf("lb after maintain = %v", c.LBValue())
	}
	p.OnComplete(c, RequestInfo{})
	if c.LBValue() != 4 {
		t.Fatal("completion changed recent_request lb_value")
	}
}

func TestBalancerRunsMaintainLoop(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{newCand("app1", 10), newCand("app2", 10)}
	bal := New(eng, RecentRequest{}, NewModifiedGetEndpoint(), cands,
		Config{MaintainInterval: 100 * time.Millisecond})
	// Dispatch 8 to app1 directly via the policy to set a known value.
	cands[0].lbValue = 8
	eng.Run(250 * time.Millisecond) // two maintain ticks
	if cands[0].LBValue() != 2 {
		t.Fatalf("lb after two ticks = %v, want 2", cands[0].LBValue())
	}
	_ = bal
}

func TestMaintainerGetsDefaultInterval(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{newCand("app1", 10)}
	cands[0].lbValue = 8
	New(eng, RecentRequest{}, NewModifiedGetEndpoint(), cands, Config{})
	eng.Run(time.Second) // default 500ms → two ticks
	if cands[0].LBValue() != 2 {
		t.Fatalf("lb = %v after default maintenance, want 2", cands[0].LBValue())
	}
}

func TestNonMaintainerPolicyHasNoMaintenance(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{newCand("app1", 10)}
	cands[0].lbValue = 8
	New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands, Config{MaintainInterval: 100 * time.Millisecond})
	eng.Run(time.Second)
	if cands[0].LBValue() != 8 {
		t.Fatalf("total_request lb decayed to %v", cands[0].LBValue())
	}
}

func TestRecentRequestRecoversFromStalledAdvantage(t *testing.T) {
	// After a stall freezes a candidate's counter at the minimum,
	// decay pulls everyone toward zero, so the stalled candidate's
	// misleading advantage shrinks with every tick.
	eng := sim.NewEngine(1, 2)
	stalled := newCand("stalled", 10)
	healthy := newCand("healthy", 10)
	New(eng, RecentRequest{}, NewModifiedGetEndpoint(), []*Candidate{stalled, healthy},
		Config{MaintainInterval: 100 * time.Millisecond})
	stalled.lbValue = 10
	healthy.lbValue = 50 // grew while stalled was frozen
	eng.Run(time.Second)
	if gap := healthy.LBValue() - stalled.LBValue(); gap > 1 {
		t.Fatalf("advantage gap still %v after decay", gap)
	}
}

func TestTwoChoicesPrefersLessLoaded(t *testing.T) {
	eng := sim.NewEngine(9, 9)
	a := newCand("a", 100)
	b := newCand("b", 100)
	a.lbValue = 50 // heavily loaded
	p := TwoChoices{}
	picksB := 0
	for i := 0; i < 200; i++ {
		if p.Choose([]*Candidate{a, b}, eng.Rand()) == b {
			picksB++
		}
	}
	// With two candidates, both are always sampled; b always wins.
	if picksB != 200 {
		t.Fatalf("two_choices picked the loaded candidate %d times", 200-picksB)
	}
}

func TestTwoChoicesSamplesDistinct(t *testing.T) {
	eng := sim.NewEngine(3, 4)
	cands := []*Candidate{newCand("a", 10), newCand("b", 10), newCand("c", 10), newCand("d", 10)}
	cands[0].lbValue = 100
	p := TwoChoices{}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[p.Choose(cands, eng.Rand()).Name()]++
	}
	// The loaded candidate only wins when sampled against itself —
	// impossible with distinct sampling — or when both samples are it.
	if counts["a"] != 0 {
		t.Fatalf("loaded candidate chosen %d times", counts["a"])
	}
	for _, n := range []string{"b", "c", "d"} {
		if counts[n] == 0 {
			t.Fatalf("candidate %s never chosen: %v", n, counts)
		}
	}
}

func TestTwoChoicesSingleEligible(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a := newCand("a", 10)
	if got := (TwoChoices{}).Choose([]*Candidate{a}, eng.Rand()); got != a {
		t.Fatal("single eligible not returned")
	}
}

func TestRandomPolicyUniform(t *testing.T) {
	eng := sim.NewEngine(5, 6)
	cands := []*Candidate{newCand("a", 10), newCand("b", 10), newCand("c", 10)}
	p := RandomPolicy{}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[p.Choose(cands, eng.Rand()).Name()]++
	}
	for name, c := range counts {
		frac := float64(c) / n
		if frac < 0.30 || frac > 0.37 {
			t.Fatalf("%s frequency %.3f, want ~1/3", name, frac)
		}
	}
}

func TestChooserPolicyDrivesBalancerSelection(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{newCand("a", 100), newCand("b", 100)}
	bal := New(eng, RandomPolicy{}, NewModifiedGetEndpoint(), cands, Config{})
	dispatched := map[string]int{}
	for i := 0; i < 400; i++ {
		bal.Dispatch(RequestInfo{}, func(c *Candidate, done func()) {
			dispatched[c.Name()]++
			done()
		}, func() { t.Fatal("rejected") })
	}
	if dispatched["a"] == 0 || dispatched["b"] == 0 {
		t.Fatalf("random selection degenerate: %v", dispatched)
	}
}

func TestTwoChoicesAvoidsStalledUnderLoad(t *testing.T) {
	// Like current_load, two_choices tracks in-flight counts, so a
	// stalled candidate (accumulating in-flight) loses every sampled
	// comparison.
	eng := sim.NewEngine(1, 2)
	stalled := NewCandidate("stalled", sim.NewPool(50))
	healthy := NewCandidate("healthy", sim.NewPool(50))
	bal := New(eng, TwoChoices{}, NewModifiedGetEndpoint(), []*Candidate{stalled, healthy}, Config{})
	dispatched := map[string]int{}
	send := func(c *Candidate, done func()) {
		dispatched[c.Name()]++
		if c.Name() == "healthy" {
			eng.Schedule(time.Millisecond, done)
		}
	}
	for i := 0; i < 60; i++ {
		eng.Schedule(sim.Time(i)*5*time.Millisecond, func() {
			bal.Dispatch(RequestInfo{}, send, func() {})
		})
	}
	eng.Run(time.Second)
	if dispatched["stalled"] > 10 {
		t.Fatalf("two_choices kept feeding the stalled candidate: %v", dispatched)
	}
}

func TestRoundRobinCursorWrap(t *testing.T) {
	// Regression for the free-running cursor: with the cursor at
	// MaxUint64 and 3 eligible candidates, the old `v % n` advance
	// picked index 0 (2^64-1 mod 3 = 0), wrapped the counter to 0, and
	// picked index 0 again — a repeat every candidate count that does
	// not divide 2^64. The modulo-reduced advance never repeats or
	// skips.
	eligible := []*Candidate{newCand("a", 1), newCand("b", 1), newCand("c", 1)}
	r := &RoundRobin{next: ^uint64(0)}
	var got []string
	for i := 0; i < 6; i++ {
		got = append(got, r.Choose(eligible, nil).Name())
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrap sequence %v, want %v", got, want)
		}
	}
}

// Package lb implements the paper's core subject: the mod_jk-style
// two-level load balancer that web-tier servers use to pick an
// application server.
//
// The upper level is a Policy (Algorithms 2–4 in the paper) that
// maintains a per-candidate lb_value; the lower level picks the candidate
// with the lowest lb_value among those in the Available state. Endpoint
// acquisition — getting a free connection to the chosen candidate — is a
// Mechanism: the original Algorithm 1 polls with 100 ms sleeps for up to
// 300 ms while holding the caller's worker thread, and the paper's remedy
// fails fast and marks the candidate Busy.
//
// The paper's 3-state machine (Available, Busy, Error) is implemented in
// Balancer: candidates that fail to return an endpoint become Busy, and
// repeated consecutive failures escalate to Error.
package lb

import (
	"fmt"

	"millibalance/internal/sim"
)

// State is a candidate's scheduling state in the paper's 3-state machine.
type State int

const (
	// StateAvailable means the candidate is assumed able to process
	// requests.
	StateAvailable State = iota + 1
	// StateBusy means the candidate recently failed to return an
	// endpoint; it is skipped while Available candidates exist.
	StateBusy
	// StateError means the candidate exceeded the consecutive-failure
	// threshold and is excluded until the error-recovery interval
	// passes.
	StateError
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateAvailable:
		return "available"
	case StateBusy:
		return "busy"
	case StateError:
		return "error"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Candidate is one application server as a single balancer sees it: the
// balancer-local connection pool to that server (mod_jk's endpoint
// cache), the policy's lb_value, and the 3-state machine state.
type Candidate struct {
	name string
	pool *sim.Pool

	lbValue     float64
	weight      float64
	state       State
	consecFails int
	firstFailAt sim.Time
	inFlight    int
	dispatched  uint64
	completed   uint64
	traffic     int64

	// Quarantine (the adaptive control plane's drain action): a
	// quarantined candidate is skipped by the scheduler unless a probe
	// has been armed, in which case exactly one request is let through
	// to measure whether the candidate recovered.
	quarantined bool
	probeArmed  bool
	probing     bool
	probeStart  sim.Time

	busyTimer  sim.Timer
	errorTimer sim.Timer
}

// NewCandidate returns a candidate backed by the given endpoint pool
// (the balancer's connection pool to that backend; 25 in the paper's
// configuration).
func NewCandidate(name string, pool *sim.Pool) *Candidate {
	if pool == nil {
		panic("lb: NewCandidate with nil pool")
	}
	return &Candidate{name: name, pool: pool, state: StateAvailable}
}

// Name returns the candidate's name.
func (c *Candidate) Name() string { return c.name }

// LBValue returns the policy's current lb_value for this candidate.
func (c *Candidate) LBValue() float64 { return c.lbValue }

// State returns the candidate's scheduling state.
func (c *Candidate) State() State { return c.state }

// InFlight reports requests dispatched but not yet completed through this
// balancer.
func (c *Candidate) InFlight() int { return c.inFlight }

// Dispatched reports the cumulative dispatch count.
func (c *Candidate) Dispatched() uint64 { return c.dispatched }

// Completed reports the cumulative completion count.
func (c *Candidate) Completed() uint64 { return c.completed }

// FreeEndpoints reports free connections in the endpoint pool.
func (c *Candidate) FreeEndpoints() int { return c.pool.Free() }

// Traffic reports the cumulative bytes exchanged through this balancer
// (request plus response sizes of completed dispatches) — the
// total_traffic accounting basis, kept under every policy so a runtime
// swap can reseed the lb_value consistently.
func (c *Candidate) Traffic() int64 { return c.traffic }

// Quarantined reports whether the adaptive control plane has drained
// this candidate.
func (c *Candidate) Quarantined() bool { return c.quarantined }

// tryEndpoint attempts to take one endpoint, reporting success.
func (c *Candidate) tryEndpoint() bool { return c.pool.TryAcquire() }

// releaseEndpoint returns one endpoint.
func (c *Candidate) releaseEndpoint() { c.pool.Release() }

// Snapshot is a point-in-time copy of a candidate's balancer-visible
// state, taken by the metrics samplers (the paper instruments mod_jk the
// same way to plot Fig. 10b/11b).
type Snapshot struct {
	Name          string
	LBValue       float64
	Weight        float64
	State         State
	InFlight      int
	Dispatched    uint64
	Completed     uint64
	FreeEndpoints int
	Quarantined   bool

	// Probe* mirror the freshest probe-pool sample when the active
	// policy exposes one (ProbeViewer); ProbeFresh is false — and the
	// other fields zero — for every other policy or when the backend's
	// pool has aged out.
	ProbeInFlight float64
	ProbeLatency  sim.Time
	ProbeAge      sim.Time
	ProbeFresh    bool
}

func (c *Candidate) snapshot() Snapshot {
	return Snapshot{
		Name:          c.name,
		LBValue:       c.lbValue,
		Weight:        c.Weight(),
		State:         c.state,
		InFlight:      c.inFlight,
		Dispatched:    c.dispatched,
		Completed:     c.completed,
		FreeEndpoints: c.pool.Free(),
		Quarantined:   c.quarantined,
	}
}

package lb

import (
	"fmt"
	"math"
	"testing"
	"time"

	"millibalance/internal/sim"
)

// expectedReseed computes, from a candidate's preserved counters, the
// lb_value each policy's Reseeder must produce. Kept as an independent
// oracle (not calling Reseed itself) so the table test would catch a
// policy whose Reseed diverges from its own bookkeeping.
func expectedReseed(policy string, c *Candidate) float64 {
	switch policy {
	case "total_request":
		return float64(c.Dispatched()) * LBMult / c.Weight()
	case "total_traffic":
		return float64(c.Traffic()) * LBMult / c.Weight()
	case "current_load", "prequal":
		// prequal's bookkeeping mirrors current_load: weight-scaled
		// in-flight, so the fallback ranking stays meaningful.
		return float64(c.InFlight()) * LBMult / c.Weight()
	default:
		// recent_request, two_choices, random, round_robin: in-flight
		// bookkeeping without weight scaling.
		return float64(c.InFlight()) * LBMult
	}
}

// TestSetPolicyAllPairs swaps between every policy pair at runtime and
// checks that the counters survive and every candidate's lb_value is
// reseeded to exactly what the incoming policy would have accumulated.
func TestSetPolicyAllPairs(t *testing.T) {
	names := PolicyNames()
	for _, from := range names {
		for _, to := range names {
			from, to := from, to
			t.Run(fmt.Sprintf("%s_to_%s", from, to), func(t *testing.T) {
				fp, ok := PolicyByName(from)
				if !ok {
					t.Fatalf("unknown policy %q", from)
				}
				h := newHarness(t, fp, NewModifiedGetEndpoint(), 10, "app1", "app2")
				h.bal.Candidates()[1].SetWeight(2)

				// Build asymmetric state: 6 dispatches with traffic,
				// complete some so dispatched != in-flight != traffic.
				for i := 0; i < 6; i++ {
					h.submit(RequestInfo{RequestBytes: 100, ResponseBytes: 300})
				}
				h.completeOne("app1")
				h.completeOne("app2")
				h.completeOne("app2")

				tp, ok := PolicyByName(to)
				if !ok {
					t.Fatalf("unknown policy %q", to)
				}
				h.bal.SetPolicy(tp)

				var total uint64
				for _, c := range h.bal.Candidates() {
					total += c.Dispatched()
					if c.InFlight() != int(c.Dispatched()-c.Completed()) {
						t.Fatalf("%s: in-flight %d != dispatched-completed %d",
							c.Name(), c.InFlight(), c.Dispatched()-c.Completed())
					}
					want := expectedReseed(to, c)
					if math.Abs(c.LBValue()-want) > 1e-9 {
						t.Fatalf("%s: lb_value after %s→%s swap = %v, want %v (dispatched=%d inflight=%d traffic=%d weight=%v)",
							c.Name(), from, to, c.LBValue(), want,
							c.Dispatched(), c.InFlight(), c.Traffic(), c.Weight())
					}
				}

				if total != 6 {
					t.Fatalf("dispatch counters lost across swap: total %d, want 6", total)
				}

				// The balancer must keep working under the new policy.
				h.submit(RequestInfo{})
				if h.rejected != 0 {
					t.Fatalf("dispatch rejected after %s→%s swap", from, to)
				}
			})
		}
	}
}

// TestSetPolicyCurrentLoadInvariant pins the invariant the adaptive
// controller relies on: immediately after swapping in current_load,
// lb_value == in-flight for every candidate, and completions drain it
// back to zero with no residue from the old policy's accounting.
func TestSetPolicyCurrentLoadInvariant(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 10, "app1", "app2")
	for i := 0; i < 8; i++ {
		h.submit(RequestInfo{RequestBytes: 1000})
	}
	h.completeOne("app1")

	h.bal.SetPolicy(CurrentLoad{})
	for _, c := range h.bal.Candidates() {
		if got, want := c.LBValue(), float64(c.InFlight()); got != want {
			t.Fatalf("%s: lb_value %v != in-flight %v right after swap", c.Name(), got, want)
		}
	}
	// Drain everything: lb_value must hit exactly zero.
	for _, n := range []string{"app1", "app2"} {
		for len(h.pending[n]) > 0 {
			h.completeOne(n)
		}
	}
	for _, c := range h.bal.Candidates() {
		if c.LBValue() != 0 || c.InFlight() != 0 {
			t.Fatalf("%s: lb_value=%v in-flight=%d after drain, want 0/0", c.Name(), c.LBValue(), c.InFlight())
		}
	}
}

// TestSetPolicyArmsMaintainer swaps from a non-Maintainer to
// recent_request on a balancer built with no MaintainInterval and checks
// the decay tick starts running.
func TestSetPolicyArmsMaintainer(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{NewCandidate("app1", sim.NewPool(10))}
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands, Config{})
	bal.Dispatch(RequestInfo{}, func(c *Candidate, done func()) {}, func() {})

	bal.SetPolicy(RecentRequest{})
	cands[0].lbValue = 8
	eng.Run(2 * time.Second) // default 500ms interval → several halvings
	if got := cands[0].LBValue(); got >= 8 {
		t.Fatalf("lb_value %v did not decay — maintain tick not armed by SetPolicy", got)
	}
}

// TestSetMechanismAtRuntime swaps modified→original and verifies the next
// acquisition uses the polling mechanism: with the pool exhausted, the
// modified mechanism would fail fast and reject, while the original one
// parks the worker and wins the endpoint once a completion frees it.
func TestSetMechanismAtRuntime(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{NewCandidate("app1", sim.NewPool(1))}
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands, Config{Sweeps: 1})

	dispatched := 0
	rejected := 0
	var finish func()
	send := func(c *Candidate, done func()) { dispatched++; finish = done }
	submit := func() { bal.Dispatch(RequestInfo{}, send, func() { rejected++ }) }

	submit() // holds the only endpoint
	if dispatched != 1 {
		t.Fatalf("setup dispatch failed")
	}

	bal.SetMechanism(NewOriginalGetEndpoint(eng))
	submit() // pool exhausted: must poll, not reject
	if rejected != 0 {
		t.Fatalf("rejected under original mechanism — swap did not take effect")
	}
	// Free the endpoint; the parked poller should claim it.
	eng.Schedule(50*time.Millisecond, func() { finish() })
	eng.Run(time.Second)
	if dispatched != 2 {
		t.Fatalf("dispatched %d, want 2 (poller should win the freed endpoint)", dispatched)
	}
}

// TestQuarantineExcludesCandidate verifies a quarantined candidate gets
// no traffic even when its lb_value is minimal, and re-admission
// restores it.
func TestQuarantineExcludesCandidate(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 10, "app1", "app2")
	c1 := h.bal.Candidates()[0]
	h.bal.SetQuarantined(c1, true)
	if !c1.Quarantined() {
		t.Fatalf("candidate not marked quarantined")
	}
	for i := 0; i < 10; i++ {
		h.submit(RequestInfo{})
	}
	if h.dispatched["app1"] != 0 {
		t.Fatalf("quarantined app1 received %d requests", h.dispatched["app1"])
	}
	if h.dispatched["app2"] != 10 {
		t.Fatalf("app2 received %d of 10", h.dispatched["app2"])
	}

	h.bal.SetQuarantined(c1, false)
	h.submit(RequestInfo{})
	if h.dispatched["app1"] != 1 {
		t.Fatalf("re-admitted app1 still starved (dist=%v)", h.dispatched)
	}
}

// TestArmProbeDispatchesExactlyOne verifies the probe path: an armed
// probe makes the quarantined candidate eligible for exactly one
// request, the probe hook fires with the measured RT on completion, and
// without re-arming no further traffic reaches it.
func TestArmProbeDispatchesExactlyOne(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{
		NewCandidate("app1", sim.NewPool(10)),
		NewCandidate("app2", sim.NewPool(10)),
	}
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands, Config{})

	type probe struct {
		name string
		rt   sim.Time
		ok   bool
	}
	var probes []probe
	bal.SetProbeHook(func(c *Candidate, rt sim.Time, ok bool) {
		probes = append(probes, probe{c.Name(), rt, ok})
	})

	dispatched := map[string]int{}
	send := func(c *Candidate, done func()) {
		dispatched[c.Name()]++
		eng.Schedule(70*time.Millisecond, done)
	}
	submit := func() { bal.Dispatch(RequestInfo{}, send, func() {}) }

	bal.SetQuarantined(cands[0], true)
	bal.ArmProbe(cands[0])

	// The armed candidate has the minimal lb_value, so the next dispatch
	// is the probe; subsequent ones must avoid it again.
	for i := 0; i < 5; i++ {
		submit()
	}
	if dispatched["app1"] != 1 {
		t.Fatalf("probe-armed app1 got %d requests, want exactly 1", dispatched["app1"])
	}
	eng.Run(time.Second)
	if len(probes) != 1 {
		t.Fatalf("probe hook fired %d times, want 1", len(probes))
	}
	if p := probes[0]; p.name != "app1" || !p.ok || p.rt != 70*time.Millisecond {
		t.Fatalf("probe = %+v, want app1 ok rt=70ms", probes[0])
	}
}

// TestArmProbeFailureReportsNotOK verifies an armed probe whose endpoint
// acquisition fails reports ok=false so the controller resets its
// re-admission count.
func TestArmProbeFailureReportsNotOK(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{
		NewCandidate("app1", sim.NewPool(1)),
		NewCandidate("app2", sim.NewPool(10)),
	}
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands, Config{Sweeps: 1})

	var probes []bool
	bal.SetProbeHook(func(c *Candidate, rt sim.Time, ok bool) { probes = append(probes, ok) })

	// Exhaust app1's pool, then quarantine it (the in-flight request
	// never completes — a stalled backend).
	bal.Dispatch(RequestInfo{}, func(c *Candidate, done func()) {}, func() {})
	bal.SetQuarantined(cands[0], true)
	bal.ArmProbe(cands[0])

	// The probe runs when app1 wins the min-lb_value scan; raise app2's
	// so the next dispatch attempts the stalled candidate first.
	cands[1].lbValue = 5
	bal.Dispatch(RequestInfo{}, func(c *Candidate, done func()) {}, func() {})
	if len(probes) != 1 || probes[0] {
		t.Fatalf("probes = %v, want one failed probe", probes)
	}
}

// TestSetQuarantinedLiftDisarmsProbe: lifting quarantine clears a
// pending probe arm so a stale probe result cannot fire later.
func TestSetQuarantinedLiftDisarmsProbe(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 10, "app1", "app2")
	c1 := h.bal.Candidates()[0]
	fired := 0
	h.bal.SetProbeHook(func(*Candidate, sim.Time, bool) { fired++ })

	h.bal.SetQuarantined(c1, true)
	h.bal.ArmProbe(c1)
	h.bal.SetQuarantined(c1, false)
	for i := 0; i < 4; i++ {
		h.submit(RequestInfo{})
		h.completeOne("app1")
		h.completeOne("app2")
	}
	if fired != 0 {
		t.Fatalf("probe hook fired %d times after quarantine lift", fired)
	}
}

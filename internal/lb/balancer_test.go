package lb

import (
	"testing"
	"testing/quick"
	"time"

	"millibalance/internal/sim"
)

// harness wires a balancer over fake backends whose completion behaviour
// the test controls.
type harness struct {
	eng *sim.Engine
	bal *Balancer
	// pending holds completion callbacks by candidate name.
	pending map[string][]func()
	// dispatched counts by candidate name.
	dispatched map[string]int
	rejected   int
}

func newHarness(t *testing.T, policy Policy, mech Mechanism, endpoints int, names ...string) *harness {
	t.Helper()
	eng := sim.NewEngine(1, 2)
	if m, ok := mech.(*OriginalGetEndpoint); ok && m.eng == nil {
		m.eng = eng
	}
	var cands []*Candidate
	for _, n := range names {
		cands = append(cands, NewCandidate(n, sim.NewPool(endpoints)))
	}
	h := &harness{
		eng:        eng,
		pending:    map[string][]func(){},
		dispatched: map[string]int{},
	}
	// Single-sweep config keeps rejection behaviour synchronous for the
	// unit tests (sweep retries get dedicated tests below), and a tiny
	// ErrorAfter lets the escalation tests reach Error without waiting
	// out the production 2 s failure-span gate.
	h.bal = New(eng, policy, mech, cands, Config{Sweeps: 1, ErrorAfter: time.Nanosecond})
	return h
}

// submit dispatches one request; the backend completes only when the test
// calls completeOne.
func (h *harness) submit(info RequestInfo) {
	h.bal.Dispatch(info,
		func(c *Candidate, done func()) {
			h.dispatched[c.Name()]++
			h.pending[c.Name()] = append(h.pending[c.Name()], done)
		},
		func() { h.rejected++ })
}

// completeOne finishes the oldest in-flight request on the named backend.
func (h *harness) completeOne(name string) {
	q := h.pending[name]
	if len(q) == 0 {
		return
	}
	done := q[0]
	h.pending[name] = q[1:]
	done()
}

func origMech(eng *sim.Engine) *OriginalGetEndpoint { return NewOriginalGetEndpoint(eng) }

func TestBalancerRoundRobinUnderTotalRequest(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 10, "app1", "app2", "app3", "app4")
	for i := 0; i < 40; i++ {
		h.submit(RequestInfo{})
		// Complete everything immediately: stable state.
		for _, n := range []string{"app1", "app2", "app3", "app4"} {
			h.completeOne(n)
		}
	}
	for n, got := range h.dispatched {
		if got != 10 {
			t.Fatalf("%s dispatched %d, want even 10 (dist=%v)", n, got, h.dispatched)
		}
	}
}

func TestBalancerPicksLowestLBValue(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 10, "app1", "app2")
	h.bal.Candidates()[0].lbValue = 5
	h.submit(RequestInfo{})
	if h.dispatched["app2"] != 1 {
		t.Fatalf("dispatched to %v, want app2 (lower lb_value)", h.dispatched)
	}
}

func TestBalancerSkipsBusyCandidate(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 1, "app1", "app2")
	// Exhaust app1's endpoint pool so the next dispatch to it fails.
	h.submit(RequestInfo{}) // goes to app1, holds its only endpoint
	h.submit(RequestInfo{}) // app2
	h.completeOne("app2")
	// app1 now has lb 1, app2 has 1. Tie → app1 chosen → acquire fails
	// (pool empty) → Busy → retry lands on app2.
	h.submit(RequestInfo{})
	if h.dispatched["app2"] != 2 {
		t.Fatalf("dist=%v, want second request on app2", h.dispatched)
	}
	if h.bal.Candidates()[0].State() != StateBusy {
		t.Fatalf("app1 state = %v, want busy", h.bal.Candidates()[0].State())
	}
}

func TestBusyRecoversAfterInterval(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 1, "app1", "app2")
	h.submit(RequestInfo{}) // app1 holds endpoint
	h.submit(RequestInfo{}) // app2 holds endpoint... also exhausts app2
	h.submit(RequestInfo{}) // both exhausted → app1 busy, app2 busy → retries → reject eventually
	c1 := h.bal.Candidates()[0]
	if c1.State() != StateBusy {
		t.Fatalf("app1 = %v, want busy", c1.State())
	}
	h.eng.Run(150 * time.Millisecond) // default BusyRecovery is 100ms
	if c1.State() != StateAvailable {
		t.Fatalf("app1 = %v after recovery interval, want available", c1.State())
	}
}

func TestCompletionReadmitsBusyImmediately(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 1, "app1", "app2")
	h.submit(RequestInfo{}) // app1
	h.submit(RequestInfo{}) // app2
	h.submit(RequestInfo{}) // fails everywhere; both busy
	c1 := h.bal.Candidates()[0]
	if c1.State() != StateBusy {
		t.Fatalf("app1 = %v", c1.State())
	}
	h.completeOne("app1")
	if c1.State() != StateAvailable {
		t.Fatalf("app1 = %v after completion, want available", c1.State())
	}
	if c1.FreeEndpoints() != 1 {
		t.Fatalf("endpoint not released: free=%d", c1.FreeEndpoints())
	}
}

func TestErrorEscalationAndRecovery(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 1, "app1", "app2")
	c1 := h.bal.Candidates()[0]
	h.submit(RequestInfo{}) // app1 holds its endpoint forever
	// Each later submit that ties or undercuts on lb_value picks app1,
	// fails, marks it Busy, and retries app2. Busy recovery readmits
	// app1 between rounds without resetting its consecutive-failure
	// count, so repeated rounds reach the error threshold (3).
	for i := 0; i < 5; i++ {
		h.submit(RequestInfo{})
		h.completeOne("app2")
		h.eng.Run(h.eng.Now() + 150*time.Millisecond)
	}
	if c1.State() != StateError {
		t.Fatalf("app1 = %v after repeated failures, want error", c1.State())
	}
	// While in Error, dispatches must not consider app1 even via the
	// busy-retry path.
	before := h.dispatched["app1"]
	h.submit(RequestInfo{})
	h.completeOne("app2")
	if h.dispatched["app1"] != before {
		t.Fatal("error candidate was dispatched to")
	}
	// Error recovery (default 10s) readmits it.
	h.eng.Run(h.eng.Now() + 11*time.Second)
	if c1.State() != StateAvailable {
		t.Fatalf("app1 = %v after error recovery, want available", c1.State())
	}
}

func TestRejectWhenAllCandidatesExhausted(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 1, "app1", "app2")
	h.submit(RequestInfo{})
	h.submit(RequestInfo{})
	h.submit(RequestInfo{}) // nothing free anywhere
	if h.rejected != 1 {
		t.Fatalf("rejected = %d, want 1", h.rejected)
	}
	if h.bal.Rejects() != 1 {
		t.Fatalf("Rejects() = %d", h.bal.Rejects())
	}
}

func TestRejectWhenEverythingInError(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{NewCandidate("app1", sim.NewPool(1))}
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands,
		Config{ErrorThreshold: 2, ErrorAfter: time.Nanosecond, Sweeps: 1})
	cands[0].tryEndpoint() // exhaust
	rejected := 0
	bal.Dispatch(RequestInfo{}, func(*Candidate, func()) {}, func() { rejected++ })
	eng.Run(time.Millisecond) // give the failure span some width
	bal.Dispatch(RequestInfo{}, func(*Candidate, func()) {}, func() { rejected++ })
	if cands[0].State() != StateError {
		t.Fatalf("state = %v, want error after persistent failures", cands[0].State())
	}
	bal.Dispatch(RequestInfo{}, func(*Candidate, func()) {}, func() { rejected++ })
	if rejected != 3 {
		t.Fatalf("rejected = %d, want 3", rejected)
	}
}

func TestDispatchHookFires(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 5, "app1", "app2")
	var hooked []string
	h.bal.SetDispatchHook(func(c *Candidate) { hooked = append(hooked, c.Name()) })
	h.submit(RequestInfo{})
	h.submit(RequestInfo{})
	if len(hooked) != 2 {
		t.Fatalf("hook fired %d times", len(hooked))
	}
}

func TestRejectHookFires(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 1, "app1")
	hooked := 0
	h.bal.SetRejectHook(func() { hooked++ })
	h.submit(RequestInfo{})
	h.submit(RequestInfo{})
	if hooked != 1 {
		t.Fatalf("reject hook fired %d times", hooked)
	}
}

func TestDoubleCompletionPanics(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{NewCandidate("app1", sim.NewPool(2))}
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands, Config{})
	var done func()
	bal.Dispatch(RequestInfo{}, func(_ *Candidate, d func()) { done = d }, func() {})
	done()
	defer func() {
		if recover() == nil {
			t.Fatal("double completion did not panic")
		}
	}()
	done()
}

func TestSnapshotContents(t *testing.T) {
	h := newHarness(t, CurrentLoad{}, NewModifiedGetEndpoint(), 3, "app1", "app2")
	h.submit(RequestInfo{})
	snaps := h.bal.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot count = %d", len(snaps))
	}
	if snaps[0].Name != "app1" || snaps[0].InFlight != 1 || snaps[0].LBValue != 1 ||
		snaps[0].Dispatched != 1 || snaps[0].FreeEndpoints != 2 {
		t.Fatalf("snapshot = %+v", snaps[0])
	}
	if snaps[1].InFlight != 0 || snaps[1].State != StateAvailable {
		t.Fatalf("idle snapshot = %+v", snaps[1])
	}
}

func TestNewValidations(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{newCand("a", 1)}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil policy", func() { New(eng, nil, NewModifiedGetEndpoint(), cands, Config{}) })
	mustPanic("nil mechanism", func() { New(eng, TotalRequest{}, nil, cands, Config{}) })
	mustPanic("no candidates", func() { New(eng, TotalRequest{}, NewModifiedGetEndpoint(), nil, Config{}) })
	mustPanic("nil send", func() {
		b := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands, Config{})
		b.Dispatch(RequestInfo{}, nil, func() {})
	})
}

// TestInstabilityPileUpWithOriginalMechanism reproduces the paper's core
// finding at the unit level: under total_request with the original
// get_endpoint, once a stalled candidate's endpoint pool is exhausted,
// every new dispatch keeps choosing it (its lb_value is frozen at the
// minimum while the state stays Available) and piles up inside the
// 300 ms polling window, starving the healthy candidate.
func TestInstabilityPileUpWithOriginalMechanism(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	stalled := NewCandidate("stalled", sim.NewPool(2))
	healthy := NewCandidate("healthy", sim.NewPool(100))
	bal := New(eng, TotalRequest{}, NewOriginalGetEndpoint(eng), []*Candidate{stalled, healthy}, Config{})

	dispatched := map[string]int{}
	// The stalled backend never completes; the healthy one completes in
	// 1ms of virtual time.
	send := func(c *Candidate, done func()) {
		dispatched[c.Name()]++
		if c.Name() == "healthy" {
			eng.Schedule(time.Millisecond, done)
		}
	}
	submit := func() { bal.Dispatch(RequestInfo{}, send, func() {}) }

	// Issue one request every 10ms for 250ms — all inside the original
	// mechanism's 300ms window.
	for i := 0; i < 25; i++ {
		eng.Schedule(sim.Time(i)*10*time.Millisecond, submit)
	}
	eng.Run(250 * time.Millisecond)

	// The first two dispatches exhaust the stalled pool (tie-break picks
	// it first, then alternation). After that, every chooser sees the
	// stalled candidate with the minimal, frozen lb_value and Available
	// state, so all remaining submissions are stuck polling it.
	if dispatched["stalled"] != 2 {
		t.Fatalf("stalled dispatched %d, want its 2 pool slots", dispatched["stalled"])
	}
	if dispatched["healthy"] >= 5 {
		t.Fatalf("healthy dispatched %d during the stall — pile-up did not reproduce", dispatched["healthy"])
	}
	if stalled.State() != StateAvailable {
		t.Fatalf("stalled state = %v during the window, want available (the limitation)", stalled.State())
	}

	// After the polling windows expire, the stuck workers fail over and
	// the healthy candidate absorbs the backlog.
	eng.Run(time.Second)
	if got := dispatched["healthy"]; got != 23 {
		t.Fatalf("healthy dispatched %d after failover, want 23", got)
	}
}

// TestModifiedMechanismAvoidsPileUp verifies the mechanism remedy: the
// same scenario, but the balancer fails fast, marks the stalled candidate
// Busy, and routes every subsequent request to the healthy candidate with
// no dead time.
func TestModifiedMechanismAvoidsPileUp(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	stalled := NewCandidate("stalled", sim.NewPool(2))
	healthy := NewCandidate("healthy", sim.NewPool(100))
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), []*Candidate{stalled, healthy}, Config{})

	dispatched := map[string]int{}
	var healthyLatency []sim.Time
	send := func(c *Candidate, done func()) {
		dispatched[c.Name()]++
		if c.Name() == "healthy" {
			healthyLatency = append(healthyLatency, eng.Now())
			eng.Schedule(time.Millisecond, done)
		}
	}
	for i := 0; i < 25; i++ {
		i := i
		eng.Schedule(sim.Time(i)*10*time.Millisecond, func() {
			bal.Dispatch(RequestInfo{}, send, func() {})
		})
	}
	eng.Run(250 * time.Millisecond)

	if dispatched["stalled"] != 2 {
		t.Fatalf("stalled dispatched %d, want 2", dispatched["stalled"])
	}
	if dispatched["healthy"] != 23 {
		t.Fatalf("healthy dispatched %d during the stall, want all 23 remaining", dispatched["healthy"])
	}
	// Every healthy dispatch happened at its submission instant — no
	// polling dead time.
	for i, at := range healthyLatency {
		if at%(10*time.Millisecond) != 0 {
			t.Fatalf("healthy dispatch %d delayed to %v", i, at)
		}
	}
}

// TestCurrentLoadAvoidsStalledCandidate verifies the policy remedy: even
// with the original mechanism, current_load raises the stalled
// candidate's lb_value above the healthy one's as its in-flight requests
// accumulate, so new arrivals stop choosing it before its pool runs dry.
func TestCurrentLoadAvoidsStalledCandidate(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	stalled := NewCandidate("stalled", sim.NewPool(25))
	healthy := NewCandidate("healthy", sim.NewPool(25))
	bal := New(eng, CurrentLoad{}, NewOriginalGetEndpoint(eng), []*Candidate{stalled, healthy}, Config{})

	dispatched := map[string]int{}
	send := func(c *Candidate, done func()) {
		dispatched[c.Name()]++
		if c.Name() == "healthy" {
			eng.Schedule(time.Millisecond, done)
		}
	}
	for i := 0; i < 50; i++ {
		i := i
		eng.Schedule(sim.Time(i)*5*time.Millisecond, func() {
			bal.Dispatch(RequestInfo{}, send, func() {})
		})
	}
	eng.Run(250 * time.Millisecond)

	// current_load parks at most a couple of requests on the stalled
	// candidate (its lb_value then stays above the healthy candidate's
	// oscillating 0/1).
	if dispatched["stalled"] > 3 {
		t.Fatalf("stalled dispatched %d under current_load, want ≤3", dispatched["stalled"])
	}
	if dispatched["healthy"] < 45 {
		t.Fatalf("healthy dispatched %d, want ≥45", dispatched["healthy"])
	}
	if stalled.LBValue() <= healthy.LBValue() {
		t.Fatalf("stalled lb=%v not above healthy lb=%v", stalled.LBValue(), healthy.LBValue())
	}
}

func TestSweepRetrySucceedsWhenCapacityFrees(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	cands := []*Candidate{NewCandidate("app1", sim.NewPool(1))}
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands,
		Config{Sweeps: 3, SweepPause: 100 * time.Millisecond})

	var firstDone func()
	bal.Dispatch(RequestInfo{}, func(_ *Candidate, done func()) { firstDone = done }, func() {})

	// Second dispatch finds the pool exhausted and must re-sweep.
	var dispatchedAt sim.Time = -1
	rejected := false
	bal.Dispatch(RequestInfo{},
		func(_ *Candidate, done func()) {
			dispatchedAt = eng.Now()
			done()
		},
		func() { rejected = true })
	// Free the endpoint between sweep 1 and sweep 2.
	eng.Schedule(50*time.Millisecond, func() { firstDone() })
	eng.Run(time.Second)
	if rejected {
		t.Fatal("dispatch rejected despite capacity freeing before sweep 2")
	}
	if dispatchedAt != 100*time.Millisecond {
		t.Fatalf("dispatched at %v, want on the 100ms sweep", dispatchedAt)
	}
}

func TestSweepBudgetExhaustedRejects(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	pool := sim.NewPool(1)
	pool.TryAcquire() // hold the only endpoint forever
	cands := []*Candidate{NewCandidate("app1", pool)}
	bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands,
		Config{Sweeps: 3, SweepPause: 100 * time.Millisecond})
	var rejectedAt sim.Time = -1
	bal.Dispatch(RequestInfo{}, func(*Candidate, func()) {}, func() { rejectedAt = eng.Now() })
	eng.Run(time.Second)
	// Sweeps at 0, 100, 200ms all fail; rejection on the third sweep.
	if rejectedAt != 200*time.Millisecond {
		t.Fatalf("rejected at %v, want 200ms", rejectedAt)
	}
	if bal.Rejects() != 1 {
		t.Fatalf("Rejects = %d", bal.Rejects())
	}
}

// Property: with healthy, identical backends under total_request, the
// dispatch counts never diverge by more than one, for any request
// pattern where each request completes before the next (stable state).
func TestQuickTotalRequestFairness(t *testing.T) {
	f := func(pattern []uint8, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		eng := sim.NewEngine(31, 37)
		cands := make([]*Candidate, n)
		for i := range cands {
			cands[i] = NewCandidate(string(rune('a'+i)), sim.NewPool(4))
		}
		bal := New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands, Config{Sweeps: 1})
		counts := map[*Candidate]uint64{}
		for range pattern {
			bal.Dispatch(RequestInfo{}, func(c *Candidate, done func()) {
				counts[c]++
				done()
			}, func() { t.Error("reject in healthy cluster") })
		}
		var minC, maxC uint64
		first := true
		for _, c := range cands {
			v := counts[c]
			if first {
				minC, maxC = v, v
				first = false
			}
			if v < minC {
				minC = v
			}
			if v > maxC {
				maxC = v
			}
		}
		return maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

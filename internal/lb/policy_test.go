package lb

import (
	"testing"
	"testing/quick"

	"millibalance/internal/sim"
)

func newCand(name string, endpoints int) *Candidate {
	return NewCandidate(name, sim.NewPool(endpoints))
}

func TestTotalRequestIncrementsOnDispatchOnly(t *testing.T) {
	c := newCand("app1", 5)
	p := TotalRequest{}
	p.OnDispatch(c, RequestInfo{})
	if c.LBValue() != LBMult {
		t.Fatalf("lb_value = %v after dispatch", c.LBValue())
	}
	p.OnComplete(c, RequestInfo{})
	if c.LBValue() != LBMult {
		t.Fatalf("lb_value = %v after completion; total_request must not change on completion", c.LBValue())
	}
}

func TestTotalTrafficIncrementsOnCompletionOnly(t *testing.T) {
	c := newCand("app1", 5)
	p := TotalTraffic{}
	info := RequestInfo{RequestBytes: 300, ResponseBytes: 700}
	p.OnDispatch(c, info)
	if c.LBValue() != 0 {
		t.Fatalf("lb_value = %v after dispatch; total_traffic accounts on completion", c.LBValue())
	}
	p.OnComplete(c, info)
	if c.LBValue() != 1000*LBMult {
		t.Fatalf("lb_value = %v, want 1000", c.LBValue())
	}
}

func TestCurrentLoadTracksInFlight(t *testing.T) {
	c := newCand("app1", 5)
	p := CurrentLoad{}
	p.OnDispatch(c, RequestInfo{})
	p.OnDispatch(c, RequestInfo{})
	if c.LBValue() != 2*LBMult {
		t.Fatalf("lb_value = %v after two dispatches", c.LBValue())
	}
	p.OnComplete(c, RequestInfo{})
	if c.LBValue() != LBMult {
		t.Fatalf("lb_value = %v after one completion", c.LBValue())
	}
}

func TestCurrentLoadFloorsAtZero(t *testing.T) {
	c := newCand("app1", 5)
	p := CurrentLoad{}
	p.OnComplete(c, RequestInfo{})
	if c.LBValue() != 0 {
		t.Fatalf("lb_value = %v, want floor at 0", c.LBValue())
	}
}

// Property: under any interleaving of dispatches and completions (never
// completing more than dispatched), current_load's lb_value equals the
// in-flight count times LBMult — the paper's "current state" semantics.
func TestQuickCurrentLoadEqualsInFlight(t *testing.T) {
	f := func(ops []bool) bool {
		c := newCand("app1", 1000)
		p := CurrentLoad{}
		inFlight := 0
		for _, dispatch := range ops {
			if dispatch {
				p.OnDispatch(c, RequestInfo{})
				inFlight++
			} else if inFlight > 0 {
				p.OnComplete(c, RequestInfo{})
				inFlight--
			}
			if c.LBValue() != float64(inFlight)*LBMult {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, ok := PolicyByName(name)
		if !ok {
			t.Fatalf("PolicyByName(%q) not found", name)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, ok := PolicyByName("nonsense"); ok {
		t.Fatal("unknown policy resolved")
	}
}

func TestMechanismByName(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	for _, name := range MechanismNames() {
		m, ok := MechanismByName(name, eng)
		if !ok || m.Name() != name {
			t.Fatalf("MechanismByName(%q) = %v, %v", name, m, ok)
		}
	}
	if m, ok := MechanismByName("original", eng); !ok || m.Name() != "original_get_endpoint" {
		t.Fatal("short alias 'original' not resolved")
	}
	if m, ok := MechanismByName("modified", eng); !ok || m.Name() != "modified_get_endpoint" {
		t.Fatal("short alias 'modified' not resolved")
	}
	if _, ok := MechanismByName("nonsense", eng); ok {
		t.Fatal("unknown mechanism resolved")
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateAvailable: "available",
		StateBusy:      "busy",
		StateError:     "error",
		State(99):      "State(99)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestNewCandidateNilPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil pool did not panic")
		}
	}()
	NewCandidate("x", nil)
}

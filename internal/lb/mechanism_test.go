package lb

import (
	"testing"
	"time"

	"millibalance/internal/sim"
)

func TestOriginalAcquireImmediateSuccess(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	m := NewOriginalGetEndpoint(eng)
	c := newCand("app1", 1)
	var got bool
	m.Acquire(c, func(ok bool) { got = ok })
	if !got {
		t.Fatal("acquire with a free endpoint did not succeed synchronously")
	}
	if c.FreeEndpoints() != 0 {
		t.Fatal("endpoint not held after acquire")
	}
}

func TestOriginalAcquirePollsThenTimesOut(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	m := NewOriginalGetEndpoint(eng)
	c := newCand("app1", 1)
	c.tryEndpoint() // exhaust the pool
	var doneAt sim.Time = -1
	var result bool
	m.Acquire(c, func(ok bool) { result = ok; doneAt = eng.Now() })
	eng.Run(time.Second)
	if result {
		t.Fatal("acquire succeeded with an exhausted pool")
	}
	// Algorithm 1 with 100ms sleep / 300ms timeout: checks at 0, 100,
	// 200ms; the guard fails at 300ms.
	if doneAt != 300*time.Millisecond {
		t.Fatalf("acquire gave up at %v, want 300ms", doneAt)
	}
}

func TestOriginalAcquirePicksUpFreedEndpoint(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	m := NewOriginalGetEndpoint(eng)
	c := newCand("app1", 1)
	c.tryEndpoint()
	var doneAt sim.Time = -1
	var result bool
	m.Acquire(c, func(ok bool) { result = ok; doneAt = eng.Now() })
	// Endpoint frees at 150ms; next poll is at 200ms.
	eng.Schedule(150*time.Millisecond, func() { c.releaseEndpoint() })
	eng.Run(time.Second)
	if !result || doneAt != 200*time.Millisecond {
		t.Fatalf("acquire = %v at %v, want success at 200ms poll", result, doneAt)
	}
}

func TestOriginalAcquireBlocksCallerForFullWindow(t *testing.T) {
	// The defining mechanism limitation: the caller learns nothing for
	// the whole timeout, and the candidate's state is untouched
	// throughout — verified here by observing no state change.
	eng := sim.NewEngine(1, 2)
	m := NewOriginalGetEndpoint(eng)
	c := newCand("app1", 1)
	c.tryEndpoint()
	m.Acquire(c, func(bool) {})
	eng.Run(250 * time.Millisecond)
	if c.State() != StateAvailable {
		t.Fatalf("candidate state changed to %v during acquire wait", c.State())
	}
}

func TestOriginalAcquireCustomTiming(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	m := &OriginalGetEndpoint{Sleep: 10 * time.Millisecond, Timeout: 50 * time.Millisecond}
	// Inject engine through the exported fields path.
	m.eng = eng
	c := newCand("app1", 1)
	c.tryEndpoint()
	var doneAt sim.Time = -1
	m.Acquire(c, func(bool) { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt != 50*time.Millisecond {
		t.Fatalf("custom timeout gave up at %v, want 50ms", doneAt)
	}
}

func TestModifiedAcquireFailsFast(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	m := NewModifiedGetEndpoint()
	c := newCand("app1", 1)
	c.tryEndpoint()
	called := false
	m.Acquire(c, func(ok bool) {
		called = true
		if ok {
			t.Fatal("modified acquire succeeded with an exhausted pool")
		}
	})
	if !called {
		t.Fatal("modified acquire was not synchronous")
	}
	if eng.Pending() != 0 {
		t.Fatal("modified acquire scheduled timers")
	}
}

func TestModifiedAcquireSucceedsWithFreeEndpoint(t *testing.T) {
	m := NewModifiedGetEndpoint()
	c := newCand("app1", 2)
	got := false
	m.Acquire(c, func(ok bool) { got = ok })
	if !got || c.FreeEndpoints() != 1 {
		t.Fatalf("ok=%v free=%d", got, c.FreeEndpoints())
	}
}

func TestMechanismNamesDistinct(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	orig := NewOriginalGetEndpoint(eng)
	mod := NewModifiedGetEndpoint()
	if orig.Name() == mod.Name() {
		t.Fatal("mechanisms share a name")
	}
}

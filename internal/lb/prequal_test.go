package lb

import (
	"math/rand/v2"
	"testing"
	"time"

	"millibalance/internal/probe"
)

func prequalRNG() *rand.Rand { return rand.New(rand.NewPCG(7, 11)) }

// TestPrequalChooseColdByLatency: with fresh probes for every eligible
// candidate, selection is the pool's hot/cold rule — the cold candidate
// with the lowest probed latency wins, whatever the lb_values say.
func TestPrequalChooseColdByLatency(t *testing.T) {
	clock := time.Duration(0)
	pools := probe.NewPools(probe.Config{
		D: 3, HotQuantile: 0.5, TTL: time.Hour, ReuseBudget: 1 << 30,
	}, func() time.Duration { return clock })
	p := NewPrequal(pools)

	slow := newCand("slow-cold", 4)
	fast := newCand("fast-cold", 4)
	hot := newCand("hot", 4)
	// lb_values deliberately contradict the probes: the hot backend
	// looks idle to the counter-based fallback.
	slow.lbValue, fast.lbValue, hot.lbValue = 5*LBMult, 6*LBMult, 0
	pools.Observe("slow-cold", 1, 90*time.Millisecond)
	pools.Observe("fast-cold", 2, 3*time.Millisecond)
	pools.Observe("hot", 40, time.Millisecond)

	eligible := []*Candidate{slow, fast, hot}
	rng := prequalRNG()
	for i := 0; i < 20; i++ {
		if got := p.Choose(eligible, rng); got != fast {
			t.Fatalf("Choose #%d = %s, want fast-cold", i, got.Name())
		}
	}
}

// TestPrequalChooseFallsBackWithoutFreshProbes: a detached policy (nil
// pools) and a policy whose every sample has aged out both fall back to
// the min-lb_value scan, which under prequal's bookkeeping means lowest
// in-flight.
func TestPrequalChooseFallsBackWithoutFreshProbes(t *testing.T) {
	a, b := newCand("a", 4), newCand("b", 4)
	a.lbValue, b.lbValue = 3*LBMult, LBMult
	eligible := []*Candidate{a, b}
	rng := prequalRNG()

	detached := NewPrequal(nil)
	if got := detached.Choose(eligible, rng); got != b {
		t.Fatalf("detached Choose = %s, want b", got.Name())
	}

	clock := time.Duration(0)
	pools := probe.NewPools(probe.Config{TTL: 50 * time.Millisecond},
		func() time.Duration { return clock })
	pools.Observe("a", 0, time.Microsecond) // flattering, soon stale
	clock = time.Second
	attached := NewPrequal(pools)
	if got := attached.Choose(eligible, rng); got != b {
		t.Fatalf("stale-pool Choose = %s, want b (fallback), not the stale-flattered a", got.Name())
	}
}

// TestPrequalBookkeepingMirrorsCurrentLoad: dispatch/complete move
// lb_value like current_load so the fallback ranking and snapshots
// remain meaningful, with the same floor at zero.
func TestPrequalBookkeepingMirrorsCurrentLoad(t *testing.T) {
	c := newCand("app1", 5)
	p := NewPrequal(nil)
	p.OnDispatch(c, RequestInfo{})
	p.OnDispatch(c, RequestInfo{})
	if c.LBValue() != 2*LBMult {
		t.Fatalf("lb_value = %v after two dispatches", c.LBValue())
	}
	p.OnComplete(c, RequestInfo{})
	if c.LBValue() != LBMult {
		t.Fatalf("lb_value = %v after one completion", c.LBValue())
	}
	p.OnComplete(c, RequestInfo{})
	p.OnComplete(c, RequestInfo{})
	if c.LBValue() != 0 {
		t.Fatalf("lb_value = %v, want floor at 0", c.LBValue())
	}
}

// TestPrequalSeedPools: the PoolSeeder contract — a registered seed
// hook runs in place of the default clear; without one the pools are
// cleared so pre-swap samples cannot steer post-swap decisions.
func TestPrequalSeedPools(t *testing.T) {
	pools := probe.NewPools(probe.Config{TTL: time.Hour}, func() time.Duration { return 0 })
	pools.Observe("a", 1, time.Millisecond)
	p := NewPrequal(pools)
	p.SeedPools()
	if pools.Depth("a") != 0 {
		t.Fatal("default SeedPools did not clear the pools")
	}

	pools.Observe("a", 1, time.Millisecond)
	hooked := false
	p.SetSeedHook(func() { hooked = true })
	p.SeedPools()
	if !hooked {
		t.Fatal("seed hook not invoked")
	}
	if pools.Depth("a") != 1 {
		t.Fatal("seed hook replaced, not preceded by, the clear — pools must be the hook's job")
	}
}

// TestPrequalProbeView: the ProbeViewer extension surfaces the freshest
// pooled sample for decision-log enrichment, and reports absence for
// unknown backends or a detached policy.
func TestPrequalProbeView(t *testing.T) {
	pools := probe.NewPools(probe.Config{TTL: time.Hour}, func() time.Duration { return 0 })
	pools.Observe("a", 7, 4*time.Millisecond)
	p := NewPrequal(pools)
	smp, ok := p.ProbeView("a")
	if !ok || smp.InFlight != 7 || smp.Latency != 4*time.Millisecond {
		t.Fatalf("ProbeView = %+v,%v", smp, ok)
	}
	if _, ok := p.ProbeView("ghost"); ok {
		t.Fatal("ProbeView found a sample for an unprobed backend")
	}
	if _, ok := NewPrequal(nil).ProbeView("a"); ok {
		t.Fatal("detached ProbeView reported a sample")
	}
}

package lb

// Session affinity (mod_jk's sticky_session) and per-worker weights
// (lbfactor). Both interact with the paper's instability: a weighted
// candidate attracts proportionally more traffic, and sticky sessions
// bypass the policy entirely for bound clients — so a millibottleneck on
// a sticky backend delays its pinned sessions no matter which policy is
// active, which the sticky-session ablation bench quantifies.

// SetWeight assigns mod_jk's lbfactor: a weight-2 candidate should
// receive twice the traffic of a weight-1 candidate. Weights at or
// below zero are treated as one. Policies divide their lb_value
// increments by the weight, exactly like mod_jk's normalization.
func (c *Candidate) SetWeight(w float64) {
	if w <= 0 {
		w = 1
	}
	c.weight = w
}

// Weight returns the candidate's lbfactor (default 1).
func (c *Candidate) Weight() float64 {
	if c.weight == 0 {
		return 1
	}
	return c.weight
}

// scaled returns one lb_value increment unit normalized by weight.
func (c *Candidate) scaled(delta float64) float64 { return delta / c.Weight() }

// bindSession records a session→candidate binding.
func (b *Balancer) bindSession(session uint64, c *Candidate) {
	if session == 0 {
		return
	}
	if b.sessions == nil {
		b.sessions = make(map[uint64]*Candidate)
	}
	b.sessions[session] = c
}

// sessionCandidate returns the bound candidate for a session if it is
// currently eligible (not Error, not already tried this sweep).
func (b *Balancer) sessionCandidate(session uint64, tried triedSet) *Candidate {
	if session == 0 || !b.cfg.StickySessions {
		return nil
	}
	c, ok := b.sessions[session]
	if !ok || c.state == StateError || tried.has(c) || c.quarantined {
		return nil
	}
	return c
}

// Sessions reports the number of bound sessions.
func (b *Balancer) Sessions() int { return len(b.sessions) }

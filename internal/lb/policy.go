package lb

import "millibalance/internal/obs"

// RequestInfo carries the request attributes policies account for.
type RequestInfo struct {
	// RequestBytes and ResponseBytes are the message sizes exchanged
	// with the backend — the total_traffic policy's accounting unit
	// ("read + write sizes" in Algorithm 3).
	RequestBytes  int64
	ResponseBytes int64
	// SessionID, when non-zero and the balancer has StickySessions
	// enabled, pins the request to the backend the session first
	// landed on (mod_jk's sticky_session).
	SessionID uint64
	// Span, when non-nil, records the request's lifecycle stages; the
	// balancer charges the whole endpoint-acquisition window (mechanism
	// sleeps, retries and inter-sweep pauses) to StageGetEndpoint.
	Span *obs.Span
}

// Policy is the upper level of the two-level scheduler: it maintains each
// candidate's lb_value. The lower level (Balancer) always picks the
// Available candidate with the lowest lb_value, so a policy expresses its
// preference purely through the value updates.
type Policy interface {
	// Name identifies the policy in configs and reports.
	Name() string
	// OnDispatch runs when a request is sent to the candidate (after a
	// successful endpoint acquisition).
	OnDispatch(c *Candidate, info RequestInfo)
	// OnComplete runs when the candidate's response returns.
	OnComplete(c *Candidate, info RequestInfo)
}

// LBMult is the lb_value increment unit, matching mod_jk's lb_mult.
const LBMult = 1.0

// TotalRequest is mod_jk's default policy (Algorithm 2): rank candidates
// by the accumulated number of requests served, fewest first. The
// lb_value is incremented when the request is dispatched; completions do
// not change it. Under a millibottleneck the stalled candidate stops
// being dispatched to only while a worker is stuck inside get_endpoint —
// its lb_value stays the lowest, so every new arrival keeps choosing it
// (the paper's policy-level limitation).
type TotalRequest struct{}

// Name implements Policy.
func (TotalRequest) Name() string { return "total_request" }

// OnDispatch implements Policy.
func (TotalRequest) OnDispatch(c *Candidate, _ RequestInfo) { c.lbValue += c.scaled(LBMult) }

// OnComplete implements Policy.
func (TotalRequest) OnComplete(*Candidate, RequestInfo) {}

// Reseed implements Reseeder: the lifetime dispatch count.
func (TotalRequest) Reseed(c *Candidate) float64 { return c.scaled(float64(c.dispatched) * LBMult) }

// Cumulative marks the monotone bookkeeping for recovery seeding.
func (TotalRequest) Cumulative() {}

// TotalTraffic is mod_jk's traffic policy (Algorithm 3): rank candidates
// by the accumulated bytes exchanged, fewest first. The lb_value grows by
// the request plus response sizes when the response returns. A stalled
// candidate returns no responses, so its lb_value freezes at the minimum
// while healthy candidates' values keep growing — the same limitation,
// expressed through completions.
type TotalTraffic struct{}

// Name implements Policy.
func (TotalTraffic) Name() string { return "total_traffic" }

// OnDispatch implements Policy.
func (TotalTraffic) OnDispatch(*Candidate, RequestInfo) {}

// OnComplete implements Policy.
func (TotalTraffic) OnComplete(c *Candidate, info RequestInfo) {
	c.lbValue += c.scaled(float64(info.RequestBytes+info.ResponseBytes) * LBMult)
}

// Reseed implements Reseeder: the lifetime bytes exchanged.
func (TotalTraffic) Reseed(c *Candidate) float64 { return c.scaled(float64(c.traffic) * LBMult) }

// Cumulative marks the monotone bookkeeping for recovery seeding.
func (TotalTraffic) Cumulative() {}

// CurrentLoad is the paper's policy-level remedy (Algorithm 4): rank
// candidates by the number of requests currently being served.
// Dispatches increment the lb_value and completions decrement it (with a
// floor at zero), so a candidate that stops completing — a
// millibottleneck — accumulates the highest lb_value and stops being
// chosen, without relying on the 3-state machine.
type CurrentLoad struct{}

// Name implements Policy.
func (CurrentLoad) Name() string { return "current_load" }

// OnDispatch implements Policy.
func (CurrentLoad) OnDispatch(c *Candidate, _ RequestInfo) { c.lbValue += c.scaled(LBMult) }

// OnComplete implements Policy.
func (CurrentLoad) OnComplete(c *Candidate, _ RequestInfo) {
	if c.lbValue >= c.scaled(LBMult) {
		c.lbValue -= c.scaled(LBMult)
	} else {
		c.lbValue = 0
	}
}

// Reseed implements Reseeder: the in-flight count, which is exactly the
// value current_load's own bookkeeping would have reached — the
// invariant lb_value == in-flight (at weight 1) holds immediately after
// a runtime swap.
func (CurrentLoad) Reseed(c *Candidate) float64 { return c.scaled(float64(c.inFlight) * LBMult) }

// PolicyByName returns the policy with the given name, used by CLI flags
// and experiment configs. Beyond the paper's three policies it resolves
// the extension policies in extensions.go.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "total_request":
		return TotalRequest{}, true
	case "total_traffic":
		return TotalTraffic{}, true
	case "current_load":
		return CurrentLoad{}, true
	case "recent_request":
		return RecentRequest{}, true
	case "two_choices":
		return TwoChoices{}, true
	case "random":
		return RandomPolicy{}, true
	case "round_robin":
		return &RoundRobin{}, true
	case "prequal":
		// Detached: the substrate wiring attaches the probe pools (see
		// Prequal.AttachPools); until then selection falls back to the
		// in-flight ranking.
		return NewPrequal(nil), true
	default:
		return nil, false
	}
}

// PolicyNames lists the available policy names (the paper's three
// first, then the extensions).
func PolicyNames() []string {
	return []string{
		"total_request", "total_traffic", "current_load",
		"recent_request", "two_choices", "random", "round_robin",
		"prequal",
	}
}

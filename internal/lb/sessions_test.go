package lb

import (
	"testing"
	"time"

	"millibalance/internal/sim"
)

func TestWeightDefaultsToOne(t *testing.T) {
	c := newCand("a", 5)
	if c.Weight() != 1 {
		t.Fatalf("Weight = %v", c.Weight())
	}
	c.SetWeight(-3)
	if c.Weight() != 1 {
		t.Fatalf("negative weight = %v", c.Weight())
	}
	c.SetWeight(2)
	if c.Weight() != 2 {
		t.Fatalf("Weight = %v", c.Weight())
	}
}

func TestWeightedTotalRequestDistribution(t *testing.T) {
	// A weight-3 candidate should receive three times the traffic of a
	// weight-1 candidate under total_request.
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 100, "heavy", "light")
	h.bal.Candidates()[0].SetWeight(3)
	for i := 0; i < 400; i++ {
		h.submit(RequestInfo{})
		h.completeOne("heavy")
		h.completeOne("light")
	}
	heavy, light := h.dispatched["heavy"], h.dispatched["light"]
	ratio := float64(heavy) / float64(light)
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("heavy/light = %d/%d (ratio %.2f), want ~3", heavy, light, ratio)
	}
}

func TestWeightedCurrentLoad(t *testing.T) {
	h := newHarness(t, CurrentLoad{}, NewModifiedGetEndpoint(), 100, "heavy", "light")
	h.bal.Candidates()[0].SetWeight(2)
	// Keep everything in flight: the weighted candidate absorbs twice
	// the in-flight before its normalized lb_value matches.
	for i := 0; i < 30; i++ {
		h.submit(RequestInfo{})
	}
	heavy, light := h.dispatched["heavy"], h.dispatched["light"]
	ratio := float64(heavy) / float64(light)
	if ratio < 1.7 || ratio > 2.4 {
		t.Fatalf("heavy/light = %d/%d (ratio %.2f), want ~2", heavy, light, ratio)
	}
	// lb_value returns to zero after all completions despite scaling.
	for i := 0; i < heavy; i++ {
		h.completeOne("heavy")
	}
	if got := h.bal.Candidates()[0].LBValue(); got > 1e-9 {
		t.Fatalf("weighted current_load lb residue %v", got)
	}
}

func TestWeightInSnapshot(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 5, "a")
	h.bal.Candidates()[0].SetWeight(4)
	if got := h.bal.Snapshot()[0].Weight; got != 4 {
		t.Fatalf("snapshot weight = %v", got)
	}
}

func newStickyHarness(t *testing.T, endpoints int, names ...string) *harness {
	t.Helper()
	eng := sim.NewEngine(1, 2)
	var cands []*Candidate
	for _, n := range names {
		cands = append(cands, NewCandidate(n, sim.NewPool(endpoints)))
	}
	h := &harness{
		eng:        eng,
		pending:    map[string][]func(){},
		dispatched: map[string]int{},
	}
	h.bal = New(eng, TotalRequest{}, NewModifiedGetEndpoint(), cands,
		Config{Sweeps: 1, StickySessions: true, ErrorAfter: time.Nanosecond})
	return h
}

func (h *harness) submitSession(session uint64) {
	h.bal.Dispatch(RequestInfo{SessionID: session},
		func(c *Candidate, done func()) {
			h.dispatched[c.Name()]++
			h.pending[c.Name()] = append(h.pending[c.Name()], done)
		},
		func() { h.rejected++ })
}

func TestStickySessionPinsToFirstBackend(t *testing.T) {
	h := newStickyHarness(t, 50, "app1", "app2")
	// Session 1 lands on app1 (tie-break); all its later requests must
	// stay there even when app2's lb_value is far lower.
	h.submitSession(1)
	h.completeOne("app1")
	h.bal.Candidates()[0].lbValue = 100
	for i := 0; i < 10; i++ {
		h.submitSession(1)
		h.completeOne("app1")
	}
	if h.dispatched["app1"] != 11 || h.dispatched["app2"] != 0 {
		t.Fatalf("dist = %v, want everything pinned to app1", h.dispatched)
	}
	if h.bal.Sessions() != 1 {
		t.Fatalf("Sessions = %d", h.bal.Sessions())
	}
}

func TestStickySessionsSpreadAcrossBackends(t *testing.T) {
	h := newStickyHarness(t, 50, "app1", "app2")
	for s := uint64(1); s <= 20; s++ {
		h.submitSession(s)
		h.completeOne("app1")
		h.completeOne("app2")
	}
	if h.dispatched["app1"] == 0 || h.dispatched["app2"] == 0 {
		t.Fatalf("sticky first-bindings did not spread: %v", h.dispatched)
	}
	if h.bal.Sessions() != 20 {
		t.Fatalf("Sessions = %d", h.bal.Sessions())
	}
}

func TestStickySessionFallsBackWhenPinnedPoolExhausted(t *testing.T) {
	h := newStickyHarness(t, 1, "app1", "app2")
	h.submitSession(1) // binds to app1, holds its only endpoint
	// Next request of the same session: pinned candidate's pool is
	// exhausted → acquire fails → falls back to app2 and REBINDS.
	h.submitSession(1)
	if h.dispatched["app2"] != 1 {
		t.Fatalf("dist = %v, want fallback to app2", h.dispatched)
	}
	// Rebind means subsequent requests go to app2.
	h.completeOne("app2")
	h.submitSession(1)
	if h.dispatched["app2"] != 2 {
		t.Fatalf("dist = %v, want rebind to app2", h.dispatched)
	}
}

func TestStickySessionIgnoresErrorBackend(t *testing.T) {
	h := newStickyHarness(t, 1, "app1", "app2")
	h.submitSession(1) // binds app1, holds endpoint
	// Drive app1 to Error with persistent failures from another
	// session.
	for i := 0; i < 4; i++ {
		h.eng.Run(h.eng.Now() + 150*time.Millisecond)
		h.submitSession(2)
		h.completeOne("app2")
	}
	if h.bal.Candidates()[0].State() != StateError {
		t.Skipf("app1 = %v; error not reached in this sequence", h.bal.Candidates()[0].State())
	}
	h.completeOne("app2")
	h.submitSession(1) // pinned to app1 but it is Error → must go app2
	if h.dispatched["app1"] != 1 {
		t.Fatalf("dispatched to error backend: %v", h.dispatched)
	}
}

func TestNoStickyWithoutConfig(t *testing.T) {
	h := newHarness(t, TotalRequest{}, NewModifiedGetEndpoint(), 50, "app1", "app2")
	for i := 0; i < 10; i++ {
		h.bal.Dispatch(RequestInfo{SessionID: 1}, func(c *Candidate, done func()) {
			h.dispatched[c.Name()]++
			done()
		}, func() {})
	}
	if h.dispatched["app1"] == 10 || h.dispatched["app2"] == 10 {
		t.Fatalf("sessions pinned without StickySessions: %v", h.dispatched)
	}
	if h.bal.Sessions() != 0 {
		t.Fatalf("Sessions = %d without sticky config", h.bal.Sessions())
	}
}

func TestZeroSessionNeverPins(t *testing.T) {
	h := newStickyHarness(t, 50, "app1", "app2")
	for i := 0; i < 10; i++ {
		h.submitSession(0)
		h.completeOne("app1")
		h.completeOne("app2")
	}
	if h.bal.Sessions() != 0 {
		t.Fatalf("session 0 created bindings: %d", h.bal.Sessions())
	}
	if h.dispatched["app1"] == 0 || h.dispatched["app2"] == 0 {
		t.Fatalf("dist = %v", h.dispatched)
	}
}

package lb

import (
	"time"

	"millibalance/internal/sim"
)

// Mechanism is the endpoint-acquisition strategy: given the chosen
// candidate, obtain a free connection endpoint or report failure. The
// callback style matters: the original mechanism spends virtual time
// polling, and during that whole window it occupies the caller (a web
// server worker thread) while the candidate's balancer state stays
// untouched — the paper's mechanism-level limitation.
type Mechanism interface {
	// Name identifies the mechanism in configs and reports.
	Name() string
	// Acquire attempts to take an endpoint from c and eventually calls
	// done exactly once. On ok=true the endpoint is held; the caller
	// must arrange its release through the balancer's completion path.
	Acquire(c *Candidate, done func(ok bool))
}

// Default timing constants from mod_jk: JK_SLEEP_DEF is 100 ms and
// cache_acquire_timeout is 300 ms.
const (
	DefaultAcquireSleep   = 100 * time.Millisecond
	DefaultAcquireTimeout = 300 * time.Millisecond
)

// OriginalGetEndpoint is Algorithm 1: poll the candidate's endpoint pool,
// sleeping Sleep between checks, while retry×Sleep < Timeout. The caller
// is blocked for the whole loop and the candidate remains Available the
// entire time, so concurrent workers keep choosing the same stalled
// candidate and pile up behind it.
type OriginalGetEndpoint struct {
	eng *sim.Engine
	// Sleep is JK_SLEEP_DEF; Timeout is cache_acquire_timeout.
	Sleep   sim.Time
	Timeout sim.Time
}

// NewOriginalGetEndpoint returns the stock mechanism with mod_jk's
// default timing.
func NewOriginalGetEndpoint(eng *sim.Engine) *OriginalGetEndpoint {
	return &OriginalGetEndpoint{eng: eng, Sleep: DefaultAcquireSleep, Timeout: DefaultAcquireTimeout}
}

// Name implements Mechanism.
func (*OriginalGetEndpoint) Name() string { return "original_get_endpoint" }

// Acquire implements Mechanism.
func (m *OriginalGetEndpoint) Acquire(c *Candidate, done func(ok bool)) {
	sleep := m.Sleep
	if sleep <= 0 {
		sleep = DefaultAcquireSleep
	}
	retry := 0
	var attempt func()
	attempt = func() {
		// A candidate drained by the adaptive control plane mid-poll
		// frees its waiters at the next sweep instead of holding the
		// worker for the rest of the acquire timeout: quarantine means
		// no endpoint is coming, and every blocked worker here is one
		// less worker emptying the web accept queue (the paper's
		// amplification path from one stalled server to tier-wide
		// connection drops). Armed probes keep polling — measuring the
		// drained candidate is their whole purpose. Without quarantine
		// (static runs) this branch never triggers.
		if c.quarantined && !c.probeArmed {
			done(false)
			return
		}
		// Loop guard mirrors Algorithm 1: while retry*JK_SLEEP_DEF <
		// cache_acquire_timeout.
		if sim.Time(retry)*sleep >= m.Timeout {
			done(false)
			return
		}
		if c.tryEndpoint() {
			done(true)
			return
		}
		retry++
		m.eng.Schedule(sleep, attempt)
	}
	attempt()
}

// ModifiedGetEndpoint is the paper's mechanism-level remedy (Section
// IV-C): check once, and on failure return immediately so the balancer
// marks the candidate Busy and moves on. The conservative choice —
// treating a millibottleneck like a busy server rather than waiting it
// out — keeps decisions fast and avoids distinguishing millibottlenecks
// from permanent failures.
type ModifiedGetEndpoint struct{}

// NewModifiedGetEndpoint returns the remedy mechanism.
func NewModifiedGetEndpoint() *ModifiedGetEndpoint { return &ModifiedGetEndpoint{} }

// Name implements Mechanism.
func (*ModifiedGetEndpoint) Name() string { return "modified_get_endpoint" }

// Acquire implements Mechanism.
func (*ModifiedGetEndpoint) Acquire(c *Candidate, done func(ok bool)) {
	done(c.tryEndpoint())
}

// MechanismByName returns the mechanism with the given name. The original
// mechanism needs the engine for its virtual-time sleeps.
func MechanismByName(name string, eng *sim.Engine) (Mechanism, bool) {
	switch name {
	case "original", "original_get_endpoint":
		return NewOriginalGetEndpoint(eng), true
	case "modified", "modified_get_endpoint":
		return NewModifiedGetEndpoint(), true
	default:
		return nil, false
	}
}

// MechanismNames lists the available mechanism names.
func MechanismNames() []string {
	return []string{"original_get_endpoint", "modified_get_endpoint"}
}

//go:build checkyield

package check

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"millibalance/internal/httpcluster"
)

// The interleaving explorer — leg (b) of the harness (DESIGN.md §13).
//
// Under -tags checkyield, internal/httpcluster compiles chkYield calls
// at the lock-free points of the dispatch path (token CAS loops,
// snapshot loads, the round-robin cursor, the noteDispatch/noteComplete
// fast paths). The Explorer installs a hook at those points and
// serializes a set of worker goroutines: exactly one worker runs at a
// time, and whenever every live worker is parked at a yield site the
// explorer picks — with a seeded splitmix64 RNG — which one proceeds
// through its next segment. One Run therefore executes one specific
// interleaving of the CAS operations, chosen deterministically by the
// seed; sweeping seeds explores the schedule space, and because every
// pick point is globally quiescent (no worker mid-segment), the
// Check callback can inspect balancer state between steps — a
// linearizability-style invariant check of the token/packed-word state
// machine at every schedule point, not just at the end.

// goid parses the current goroutine's id from its stack header
// ("goroutine N [running]:"). Test-only, behind the build tag; the
// dispatch path never pays for it.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	id, err := strconv.ParseUint(string(fields[1]), 10, 64)
	if err != nil {
		panic(fmt.Sprintf("check: unparseable stack header %q", buf[:n]))
	}
	return id
}

type yieldEv struct {
	id   uint64
	site string
}

type ilWorker struct {
	idx    int
	resume chan struct{}
}

// Explorer serializes worker goroutines at the chkYield sites and
// explores step orderings with a seeded RNG.
type Explorer struct {
	// Check, when set, runs at every quiescent scheduling point (all
	// live workers parked) and aborts the run by returning an error.
	Check func() error
	// Trace records the schedule as "workerIdx:site" steps — identical
	// across runs with the same seed and the same worker set, which
	// TestInterleaveDeterministic pins.
	Trace []string

	rng     rng
	mu      sync.Mutex
	workers map[uint64]*ilWorker
	atYield chan yieldEv
	doneCh  chan uint64
	aborted atomic.Bool
}

// NewExplorer returns an explorer whose schedule choices derive from
// seed.
func NewExplorer(seed uint64) *Explorer {
	return &Explorer{rng: rng{s: seed}}
}

// hook is installed as the httpcluster yield hook for the duration of a
// Run. Goroutines that never registered (the test main, runtime
// helpers) pass through untouched.
func (e *Explorer) hook(site string) {
	if e.aborted.Load() {
		return
	}
	id := goid()
	e.mu.Lock()
	w, ok := e.workers[id]
	e.mu.Unlock()
	if !ok {
		return
	}
	e.atYield <- yieldEv{id: id, site: site}
	<-w.resume
}

// Run executes the workers under the cooperative scheduler and returns
// the first Check failure, or nil after all workers complete cleanly.
// Workers must not spawn goroutines that touch the balancer (they would
// free-run), and must terminate.
func (e *Explorer) Run(workers ...func()) error {
	e.workers = make(map[uint64]*ilWorker, len(workers))
	e.atYield = make(chan yieldEv)
	e.doneCh = make(chan uint64)
	httpcluster.SetYieldHook(e.hook)
	defer httpcluster.SetYieldHook(nil)

	for i, w := range workers {
		i, w := i, w
		go func() {
			id := goid()
			wk := &ilWorker{idx: i, resume: make(chan struct{})}
			e.mu.Lock()
			e.workers[id] = wk
			e.mu.Unlock()
			// Park at a synthetic first site so the scheduler controls
			// the worker from its very first instruction.
			e.atYield <- yieldEv{id: id, site: "start"}
			<-wk.resume
			w()
			e.doneCh <- id
		}()
	}

	blocked := map[uint64]string{}
	live := len(workers)
	for {
		// Quiesce: wait until every live worker is parked or done. At
		// most one worker is ever running, so this waits on exactly it.
		for len(blocked) < live {
			select {
			case ev := <-e.atYield:
				blocked[ev.id] = ev.site
			case id := <-e.doneCh:
				live--
				e.mu.Lock()
				delete(e.workers, id)
				e.mu.Unlock()
			}
		}
		if e.Check != nil {
			if err := e.Check(); err != nil {
				return e.abort(blocked, live, err)
			}
		}
		if live == 0 {
			return nil
		}
		// Pick the next worker by logical index so the choice — and
		// hence the whole schedule — is a pure function of the seed,
		// independent of goroutine ids and registration order.
		ids := make([]uint64, 0, len(blocked))
		for id := range blocked {
			ids = append(ids, id)
		}
		e.mu.Lock()
		sort.Slice(ids, func(a, b int) bool { return e.workers[ids[a]].idx < e.workers[ids[b]].idx })
		chosen := ids[int(e.rng.next()%uint64(len(ids)))]
		wk := e.workers[chosen]
		e.mu.Unlock()
		e.Trace = append(e.Trace, fmt.Sprintf("%d:%s", wk.idx, blocked[chosen]))
		delete(blocked, chosen)
		wk.resume <- struct{}{}
	}
}

// abort releases every parked worker to free-run to completion (the
// hook passes through once aborted) and drains their exits, so a failed
// Run leaks no goroutines.
func (e *Explorer) abort(blocked map[uint64]string, live int, err error) error {
	e.aborted.Store(true)
	e.mu.Lock()
	for id := range blocked {
		close(e.workers[id].resume)
	}
	e.mu.Unlock()
	for ; live > 0; live-- {
		<-e.doneCh
	}
	return err
}

package check

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"millibalance/internal/httpcluster"
)

// writeFailure persists a minimized failing script under
// testdata/failures/ so CI can upload it as an artifact and a developer
// can reproduce the divergence off-machine (and, once fixed, promote it
// into testdata/ as a committed regression).
func writeFailure(t *testing.T, tag string, s Script) string {
	t.Helper()
	dir := filepath.Join("testdata", "failures")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("mkdir %s: %v", dir, err)
	}
	path := filepath.Join(dir, tag+".script")
	if err := os.WriteFile(path, []byte(s.Marshal()), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	return path
}

// TestDifferentialGenerated is the acceptance gate: ≥ 10k generated
// scripts across all four deterministic policies × both mechanisms with
// zero Balancer↔ReferenceBalancer divergence. On a failure the script
// is ddmin-minimized and written under testdata/failures/ before the
// test aborts.
func TestDifferentialGenerated(t *testing.T) {
	const perCell = 1250 // × 4 policies × 2 mechanisms = 10k scripts
	mechs := []httpcluster.Mechanism{httpcluster.MechanismModified, httpcluster.MechanismOriginal}
	for pi, policy := range scriptPolicies {
		for mi, mech := range mechs {
			policy, mech := policy, mech
			cell := uint64(pi*len(mechs)+mi) << 32
			t.Run(fmt.Sprintf("%s/%s", policy, mechName(mech)), func(t *testing.T) {
				t.Parallel()
				for i := 0; i < perCell; i++ {
					seed := cell | uint64(i)
					s := Generate(seed)
					// Pin the cell's starting point so the 4×2 coverage is
					// guaranteed rather than probabilistic; the ops still
					// hot-swap both dimensions mid-script.
					s.Policy = policy
					s.Mech = mech
					if f := Run(s); f != nil {
						min := Shrink(s, func(c Script) bool { return Run(c) != nil })
						path := writeFailure(t, fmt.Sprintf("gen-%d", seed), min)
						t.Fatalf("seed %#x diverged: %v\nminimized (%d ops) written to %s:\n%s",
							seed, f, len(min.Ops), path, min.Marshal())
					}
				}
			})
		}
	}
}

// TestDifferentialCorpus replays every committed script under
// testdata/. Each file is the minimized form of a divergence or
// invariant violation this harness found — the regression suite for the
// bugs fixed in the same change that introduced the harness.
func TestDifferentialCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.script"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus scripts under testdata/")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Unmarshal(string(raw))
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if f := Run(s); f != nil {
				t.Fatalf("regression reproduced: %v", f)
			}
		})
	}
}

// TestScriptRoundTrip pins the corpus text format: Marshal∘Unmarshal is
// the identity on generated scripts, so a committed regression replays
// exactly the ops that were minimized.
func TestScriptRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		s := Generate(seed)
		parsed, err := Unmarshal(s.Marshal())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if parsed.Arm != s.Arm || parsed.Backends != s.Backends ||
			parsed.Endpoints != s.Endpoints || parsed.Policy != s.Policy ||
			parsed.Mech != s.Mech || len(parsed.Ops) != len(s.Ops) {
			t.Fatalf("seed %d: header mismatch: %+v vs %+v", seed, parsed, s)
		}
		for i := range s.Ops {
			a, b := s.Ops[i], parsed.Ops[i]
			same := a.Kind == b.Kind && a.A == b.A && a.B == b.B &&
				a.On == b.On && a.Policy == b.Policy && a.Mech == b.Mech &&
				(a.F == b.F || (a.F != a.F && b.F != b.F)) // NaN round-trips as NaN
			if !same {
				t.Fatalf("seed %d op %d: %+v vs %+v", seed, i, a, b)
			}
		}
	}
}

// TestShrinkMinimizes sanity-checks the shrinker on a synthetic
// predicate: from a 100-op script where failure only needs one specific
// op, ddmin must reduce to exactly that op.
func TestShrinkMinimizes(t *testing.T) {
	s := Generate(42)
	for len(s.Ops) < 100 {
		s.Ops = append(s.Ops, Generate(uint64(len(s.Ops))).Ops...)
	}
	s.Ops = s.Ops[:100]
	s.Ops[57] = Op{Kind: OpWeight, A: 1, F: -12345}
	fails := func(c Script) bool {
		for _, op := range c.Ops {
			if op.Kind == OpWeight && op.F == -12345 {
				return true
			}
		}
		return false
	}
	min := Shrink(s, fails)
	if len(min.Ops) != 1 || min.Ops[0].F != -12345 {
		t.Fatalf("shrunk to %d ops, want the single sentinel op: %+v", len(min.Ops), min.Ops)
	}
}

package check

import (
	"testing"

	"millibalance/internal/httpcluster"
)

// DecodeBytes derives a script directly from a byte stream — the
// go test -fuzz entry point. The mapping is total (any bytes decode to
// some valid script) so the fuzzer never wastes executions on parse
// rejections: byte 0 picks the arm, bytes 1–4 the topology and starting
// point, and each subsequent 3-byte group decodes one op.
func DecodeBytes(data []byte) Script {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	arms := []Arm{ArmSticky, ArmInstant, ArmOverflow}
	s := Script{
		Arm:       arms[int(at(0))%len(arms)],
		Backends:  1 + int(at(1))%4,
		Endpoints: 1 + int(at(2))%3,
		Policy:    scriptPolicies[int(at(3))%len(scriptPolicies)],
		Mech:      httpcluster.Mechanism(1 + int(at(4))%2),
	}
	const maxOps = 256
	for i := 5; i+2 < len(data) && len(s.Ops) < maxOps; i += 3 {
		k, a, b := data[i], int64(data[i+1]), int64(data[i+2])
		switch k % 7 {
		case 0:
			s.Ops = append(s.Ops, Op{Kind: OpAcquire, A: a*256 + b})
		case 1:
			s.Ops = append(s.Ops, Op{Kind: OpDone, A: a, B: b * 16})
		case 2:
			s.Ops = append(s.Ops, Op{Kind: OpFail, A: a})
		case 3:
			s.Ops = append(s.Ops, Op{Kind: OpSetPolicy, Policy: scriptPolicies[int(a)%len(scriptPolicies)]})
		case 4:
			s.Ops = append(s.Ops, Op{Kind: OpSetMechanism, Mech: httpcluster.Mechanism(1 + int(a)%2)})
		case 5:
			s.Ops = append(s.Ops, Op{Kind: OpQuarantine, A: a, On: b%2 == 0})
		case 6:
			s.Ops = append(s.Ops, Op{Kind: OpWeight, A: a, F: genWeights[int(b)%len(genWeights)]})
		}
	}
	return s
}

// FuzzDifferentialScript is the whole-balancer differential fuzz
// target: arbitrary bytes become a deterministic op script, the script
// replays through the lock-free Balancer and the frozen
// ReferenceBalancer in lockstep, and any divergence or invariant
// violation fails. A crash artifact's bytes reproduce the divergence
// exactly; re-encode the shrunk script with Marshal to promote it into
// testdata/.
func FuzzDifferentialScript(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 2, 0, 0})          // sticky, acquire + fail
	f.Add([]byte{2, 0, 0, 2, 0, 0, 9, 9, 2, 3, 0})          // overflow arm, acquire + fail
	f.Add([]byte{1, 3, 1, 3, 1, 6, 0, 9, 0, 1, 1, 5, 2, 0}) // instant, weight + quarantine mix
	for seed := uint64(0); seed < 8; seed++ {
		f.Add([]byte(Generate(seed).Marshal())) // structured seeds too: text bytes still decode
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := DecodeBytes(data)
		if fail := Run(s); fail != nil {
			min := Shrink(s, func(c Script) bool { return Run(c) != nil })
			t.Fatalf("divergence: %v\nminimized script:\n%s", fail, min.Marshal())
		}
	})
}

// FuzzUnmarshal hardens the corpus text format: arbitrary text either
// fails to parse or round-trips stably through Marshal ∘ Unmarshal.
func FuzzUnmarshal(f *testing.F) {
	f.Add("# millicheck script v1\narm overflow\nbackends 1\nendpoints 1\npolicy current_load\nmech modified\nacquire 460\nfail 10\n")
	f.Add("arm instant\nweight 4 +Inf\n")
	f.Add("policy prequal\n")
	f.Add("quarantine -1 on\n")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Unmarshal(text)
		if err != nil {
			return
		}
		again, err := Unmarshal(s.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshalled script failed: %v", err)
		}
		if again.Marshal() != s.Marshal() {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", s.Marshal(), again.Marshal())
		}
	})
}

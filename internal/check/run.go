package check

import (
	"fmt"
	"time"

	"millibalance/internal/httpcluster"
)

// Failure describes the first point at which a script run went wrong:
// either the two implementations diverged, or one of them broke a
// dispatch invariant. Step is the index into Script.Ops (len(Ops) means
// the post-script final-state comparison).
type Failure struct {
	Step int
	Msg  string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("step %d: %s", f.Step, f.Msg)
}

// openPair is one outstanding dispatch held by both implementations.
type openPair struct {
	rel  httpcluster.Release
	rrel httpcluster.ReferenceRelease
}

// Run replays the script against a fresh Balancer and a fresh
// ReferenceBalancer and returns the first divergence or invariant
// violation, or nil when the run is clean. Replay is single-threaded
// and deterministic: every op is applied to both implementations in
// lockstep and the observable outcome (choice, error, accumulated
// bookkeeping) is compared after each step.
func Run(s Script) *Failure {
	if s.Backends < 1 || s.Backends > MaxBackends {
		return &Failure{Step: -1, Msg: fmt.Sprintf("bad topology: %d backends", s.Backends)}
	}
	if s.Endpoints < 1 {
		return &Failure{Step: -1, Msg: "bad topology: no endpoints"}
	}
	names := backendNames[:s.Backends]
	cfg := s.Arm.Config()

	backends := make([]*httpcluster.Backend, s.Backends)
	for i, n := range names {
		backends[i] = httpcluster.NewBackend(n, "http://unused", s.Endpoints)
	}
	bal := httpcluster.NewBalancer(s.Policy, s.Mech, backends, cfg)
	ref := httpcluster.NewReferenceBalancer(s.Policy, names, s.Endpoints, cfg)

	var open []openPair
	for step, op := range s.Ops {
		switch op.Kind {
		case OpAcquire:
			be, rel, err := bal.Acquire(op.A)
			rname, rrel, rerr := ref.Acquire(op.A)
			if (err != nil) != (rerr != nil) {
				return &Failure{Step: step, Msg: fmt.Sprintf("acquire error %v, reference %v", err, rerr)}
			}
			if err == nil {
				if be.Name() != rname {
					return &Failure{Step: step, Msg: fmt.Sprintf("chose %s, reference chose %s", be.Name(), rname)}
				}
				open = append(open, openPair{rel: rel, rrel: rrel})
			}
		case OpDone:
			if len(open) == 0 {
				continue
			}
			i := int(op.A) % len(open)
			open[i].rel.Done(op.B)
			open[i].rrel.Done(op.B)
			open = append(open[:i], open[i+1:]...)
		case OpFail:
			if len(open) == 0 {
				continue
			}
			i := int(op.A) % len(open)
			open[i].rel.Fail()
			open[i].rrel.Fail()
			open = append(open[:i], open[i+1:]...)
		case OpSetPolicy:
			bal.SetPolicy(op.Policy)
			ref.SetPolicy(op.Policy)
		case OpSetMechanism:
			// The reference is mechanism-free: with Sweeps=1 and
			// nanosecond poll sleeps, a single-threaded script cannot
			// distinguish fail-fast from exhausted-pool polling, so only
			// the Balancer swaps.
			bal.SetMechanism(op.Mech)
		case OpQuarantine:
			n := names[int(op.A)%len(names)]
			bal.SetQuarantine(n, op.On)
			ref.SetQuarantine(n, op.On)
		case OpWeight:
			i := int(op.A) % len(backends)
			backends[i].SetWeight(op.F)
			ref.SetWeight(names[i], op.F)
		}
		if f := checkInvariants(step, backends, ref, s.Endpoints, len(open)); f != nil {
			return f
		}
	}
	// Drain so the final comparison sees a quiesced system.
	for _, o := range open {
		o.rel.Done(0)
		o.rrel.Done(0)
	}
	return compareFinal(len(s.Ops), bal, ref, backends, s.Endpoints)
}

// checkInvariants asserts the properties that must hold on both
// implementations after every step, independent of parity: finite
// lb_values, pool tokens within [0, capacity], and completed ≤
// dispatched. A violation on either side is a bug in that side even if
// the two sides agree.
func checkInvariants(step int, backends []*httpcluster.Backend, ref *httpcluster.ReferenceBalancer, endpoints, open int) *Failure {
	for _, be := range backends {
		if lb := be.LBValue(); !finite(lb) || lb < 0 {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s: lb_value %g not finite and non-negative", be.Name(), lb)}
		}
		if w := be.Weight(); !finite(w) || w <= 0 {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s: weight %g not finite and positive", be.Name(), w)}
		}
		if free := be.FreeEndpoints(); free < 0 || free > endpoints {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s: %d/%d free endpoint tokens", be.Name(), free, endpoints)}
		}
		if d, c := be.Dispatched(), be.Completed(); c > d {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s: completed %d > dispatched %d", be.Name(), c, d)}
		}
	}
	for _, v := range ref.Views(time.Now()) {
		if !finite(v.LBValue) || v.LBValue < 0 {
			return &Failure{Step: step, Msg: fmt.Sprintf("reference %s: lb_value %g not finite and non-negative", v.Name, v.LBValue)}
		}
		if v.Completed > v.Dispatched {
			return &Failure{Step: step, Msg: fmt.Sprintf("reference %s: completed %d > dispatched %d", v.Name, v.Completed, v.Dispatched)}
		}
	}
	return nil
}

// compareFinal checks the drained end state: reject counts, per-backend
// counters, lb_values, states and quarantine flags must agree exactly.
func compareFinal(step int, bal *httpcluster.Balancer, ref *httpcluster.ReferenceBalancer, backends []*httpcluster.Backend, endpoints int) *Failure {
	if br, rr := bal.Rejects(), ref.Rejects(); br != rr {
		return &Failure{Step: step, Msg: fmt.Sprintf("rejects %d, reference %d", br, rr)}
	}
	views := ref.Views(time.Now())
	for i, be := range backends {
		v := views[i]
		if be.Dispatched() != v.Dispatched || be.Completed() != v.Completed || be.Traffic() != v.Traffic {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s counters (%d,%d,%d), reference (%d,%d,%d)",
				be.Name(), be.Dispatched(), be.Completed(), be.Traffic(), v.Dispatched, v.Completed, v.Traffic)}
		}
		if lb := be.LBValue(); lb != v.LBValue {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s lb_value %g, reference %g", be.Name(), lb, v.LBValue)}
		}
		if st := be.State(); st != v.State {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s state %v, reference %v", be.Name(), st, v.State)}
		}
		if q := be.Quarantined(); q != v.Quarantined {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s quarantined %v, reference %v", be.Name(), q, v.Quarantined)}
		}
		if free := be.FreeEndpoints(); free != v.FreeEndpoints {
			return &Failure{Step: step, Msg: fmt.Sprintf("%s free %d, reference %d", be.Name(), free, v.FreeEndpoints)}
		}
	}
	return nil
}

//go:build !checkyield

package check

import "testing"

// The interleaving explorer needs the chkYield sites compiled into
// internal/httpcluster, which only happens under -tags checkyield
// (yield_on.go). This stub keeps the test name visible in normal runs
// and points at the invocation CI uses.
func TestInterleavings(t *testing.T) {
	t.Skip("interleaving explorer requires -tags checkyield: go test -tags checkyield ./internal/check/ (see DESIGN.md §13)")
}

//go:build checkyield

package check

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"millibalance/internal/httpcluster"
)

// ilScenario builds the contended fixture the explorer schedules: two
// backends with a single endpoint token each, so every pair of
// concurrent dispatches races on the token CAS loops, plus the balancer
// invariant check evaluated at every quiescent scheduling point.
func ilScenario() (*httpcluster.Balancer, []*httpcluster.Backend, func() error) {
	backends := []*httpcluster.Backend{
		httpcluster.NewBackend("a", "http://unused", 1),
		httpcluster.NewBackend("b", "http://unused", 1),
	}
	cfg := httpcluster.Config{
		Sweeps:         1,
		AcquireSleep:   time.Nanosecond,
		AcquireTimeout: 2 * time.Nanosecond,
		BusyRecovery:   time.Nanosecond,
		ErrorRecovery:  time.Nanosecond,
		ErrorThreshold: 2,
		ErrorAfter:     time.Hour,
	}
	bal := httpcluster.NewBalancer(httpcluster.PolicyCurrentLoad, httpcluster.MechanismModified, backends, cfg)
	check := func() error {
		for _, be := range backends {
			free := be.FreeEndpoints()
			if free < 0 || free > 1 {
				return fmt.Errorf("%s: %d free tokens outside [0,1]", be.Name(), free)
			}
			inF := be.InFlight()
			if inF < 0 {
				return fmt.Errorf("%s: negative in-flight %d", be.Name(), inF)
			}
			// A request is in flight from noteDispatch until its
			// completed increment, and it holds its endpoint token for
			// that whole window — so claimed tokens bound in-flight at
			// every quiescent point.
			if claimed := 1 - free; inF > claimed {
				return fmt.Errorf("%s: %d in flight but only %d tokens claimed", be.Name(), inF, claimed)
			}
			if lb := be.LBValue(); !finite(lb) || lb < 0 {
				return fmt.Errorf("%s: lb_value %g", be.Name(), lb)
			}
		}
		return nil
	}
	return bal, backends, check
}

// ilWorkers returns the worker set for one exploration: two dispatchers
// racing Acquire/Done/Fail against the two-token cluster while a
// control worker hot-swaps policy, quarantine and weight mid-flight.
// acquired counts successful dispatches per worker.
func ilWorkers(bal *httpcluster.Balancer, backends []*httpcluster.Backend, seed uint64, acquired []uint64) []func() {
	dispatcher := func(n int, slot int, failEvery int) func() {
		return func() {
			for i := 0; i < n; i++ {
				_, rel, err := bal.Acquire(int64(8 * (i + 1)))
				if err != nil {
					continue
				}
				acquired[slot]++
				if failEvery > 0 && i%failEvery == failEvery-1 {
					rel.Fail()
				} else {
					rel.Done(int64(16 * (i + 1)))
				}
			}
		}
	}
	control := func() {
		policies := []httpcluster.Policy{
			httpcluster.PolicyRoundRobin,
			httpcluster.PolicyTotalRequest,
			httpcluster.PolicyCurrentLoad,
		}
		bal.SetPolicy(policies[seed%uint64(len(policies))])
		bal.SetQuarantine("a", true)
		backends[1].SetWeight(2)
		bal.SetQuarantine("a", false)
		bal.SetMechanism(httpcluster.MechanismModified)
	}
	return []func(){dispatcher(3, 0, 0), dispatcher(3, 1, 2), control}
}

// explore runs one seeded schedule and returns the trace.
func explore(t *testing.T, seed uint64) []string {
	t.Helper()
	bal, backends, check := ilScenario()
	acquired := make([]uint64, 2)
	ex := NewExplorer(seed)
	ex.Check = check
	if err := ex.Run(ilWorkers(bal, backends, seed, acquired)...); err != nil {
		t.Fatalf("seed %d: invariant violated mid-schedule: %v\ntrace:\n  %s",
			seed, err, strings.Join(ex.Trace, "\n  "))
	}
	// Quiesced: conservation must hold exactly.
	var dispatched, completed uint64
	for _, be := range backends {
		if free := be.FreeEndpoints(); free != 1 {
			t.Fatalf("seed %d: %s has %d/1 tokens after drain", seed, be.Name(), free)
		}
		if inF := be.InFlight(); inF != 0 {
			t.Fatalf("seed %d: %s has %d in flight after drain", seed, be.Name(), inF)
		}
		dispatched += be.Dispatched()
		completed += be.Completed()
	}
	if dispatched != completed {
		t.Fatalf("seed %d: dispatched %d != completed %d", seed, dispatched, completed)
	}
	if want := acquired[0] + acquired[1]; dispatched != want {
		t.Fatalf("seed %d: backends dispatched %d, workers acquired %d", seed, dispatched, want)
	}
	return ex.Trace
}

// TestInterleavings sweeps seeded schedules through the contended
// fixture. Each seed fixes one interleaving of the lock-free dispatch
// path's CAS steps; the invariant check runs at every scheduling point.
func TestInterleavings(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 60
	}
	for seed := 0; seed < seeds; seed++ {
		explore(t, uint64(seed))
	}
}

// TestInterleaveDeterministic pins the property resume-and-shrink
// depend on: the same seed yields the same schedule, step for step.
func TestInterleaveDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		a := explore(t, seed)
		b := explore(t, seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: step %d diverged: %q vs %q", seed, i, a[i], b[i])
			}
		}
	}
}

// Package check is the differential-testing harness for the lock-free
// dispatch path. It drives the contention-free httpcluster.Balancer and
// the frozen mutex-era httpcluster.ReferenceBalancer through identical
// randomized op scripts and reports the first step at which they
// diverge — in choice, in error behavior, or in accumulated
// bookkeeping — plus any violation of the dispatch invariants (finite
// lb_values, pool tokens within [0, capacity], completed ≤ dispatched)
// on either implementation.
//
// The package has three legs (DESIGN.md §13):
//
//   - a seeded script generator with ddmin shrinking: a failing script
//     is minimized and written under testdata/, where it becomes a
//     committed regression replayed by TestDifferentialCorpus;
//   - native go test -fuzz targets (fuzz_test.go) that decode arbitrary
//     bytes into scripts, plus focused targets in internal/httpcluster
//     and internal/faults for the packed hot word, the atomicFloat CAS
//     math and the scenario parser;
//   - a schedule-exploring interleaving runner (interleave.go, build
//     tag "checkyield") that serializes goroutines at yield points
//     injected into the hot path and checks the observable history
//     against a sequential model.
package check

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"millibalance/internal/httpcluster"
)

// Arm selects the timing regime of a script's balancer config. All
// three pin every wall-clock-dependent decision (the Busy/Error
// recovery deadlines) to an outcome both implementations must resolve
// identically on every step, so replay is deterministic:
//
//   - ArmSticky: recovery intervals of an hour; no recovery ever fires
//     inside a run, transitions latch.
//   - ArmInstant: recovery intervals of a nanosecond; every recovery is
//     due by the next touch, transitions always heal.
//   - ArmOverflow: recovery intervals of 1<<59 ns (≈ 18 years) —
//     sticky in intent, but the interval's nanos-since-base encoding
//     exceeds the packed hot word's 59-bit deadline field. This is the
//     arm that flushed out the recoverAt truncation bug: the wrapped
//     deadline read as already-passed, so the lock-free balancer healed
//     a Busy backend instantly while the reference stayed Busy.
type Arm string

const (
	ArmSticky   Arm = "sticky"
	ArmInstant  Arm = "instant"
	ArmOverflow Arm = "overflow"
)

// Config returns the balancer config the arm pins down. Sweeps is 1 and
// the original mechanism's poll sleeps are nanoseconds, so a script
// replays in microseconds regardless of the mechanism ops it contains.
func (a Arm) Config() httpcluster.Config {
	cfg := httpcluster.Config{
		Sweeps:         1,
		ErrorThreshold: 2,
		AcquireSleep:   time.Nanosecond,
		AcquireTimeout: 2 * time.Nanosecond,
		SweepPause:     time.Nanosecond,
	}
	switch a {
	case ArmInstant:
		cfg.BusyRecovery = time.Nanosecond
		cfg.ErrorRecovery = time.Nanosecond
		cfg.ErrorAfter = time.Nanosecond
	case ArmOverflow:
		cfg.BusyRecovery = time.Duration(1 << 59)
		cfg.ErrorRecovery = time.Duration(1 << 59)
		cfg.ErrorAfter = time.Hour
	default: // ArmSticky
		cfg.BusyRecovery = time.Hour
		cfg.ErrorRecovery = time.Hour
		cfg.ErrorAfter = time.Hour
	}
	return cfg
}

// OpKind enumerates the script operations.
type OpKind int

const (
	// OpAcquire dispatches one request of A bytes; on success the pair
	// of releases joins the open list.
	OpAcquire OpKind = iota
	// OpDone completes open request A (modulo the open count) with B
	// response bytes.
	OpDone
	// OpFail unwinds open request A (modulo the open count) as an
	// upstream failure.
	OpFail
	// OpSetPolicy hot-swaps the policy.
	OpSetPolicy
	// OpSetMechanism hot-swaps the mechanism (Balancer only; the
	// reference is mechanism-free and fail-fast, which single-threaded
	// scripts cannot distinguish from the original mechanism's
	// exhausted-pool polling).
	OpSetMechanism
	// OpQuarantine drains (On) or paroles (!On) backend A.
	OpQuarantine
	// OpWeight sets backend A's lbfactor to F.
	OpWeight
)

// Op is one script step. A and B are operands whose meaning depends on
// Kind; F is OpWeight's value; On is OpQuarantine's direction; Policy
// and Mech carry the swap targets.
type Op struct {
	Kind   OpKind
	A, B   int64
	F      float64
	On     bool
	Policy httpcluster.Policy
	Mech   httpcluster.Mechanism
}

// Script is one deterministic differential run: a fixed topology, a
// timing arm, a starting policy/mechanism, and an op list.
type Script struct {
	Arm       Arm
	Backends  int
	Endpoints int
	Policy    httpcluster.Policy
	Mech      httpcluster.Mechanism
	Ops       []Op
}

// backendNames are the stable names scripts index into (modulo
// Backends).
var backendNames = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

// MaxBackends bounds a script's topology (the paper's testbed has four
// application servers; eight leaves the fuzzer headroom).
const MaxBackends = 8

// scriptPolicies are the deterministic policies scripts swap between.
// Prequal is excluded: its power-of-d sampling is random by design and
// carries no byte-parity promise (see TestDispatchParity).
var scriptPolicies = []httpcluster.Policy{
	httpcluster.PolicyTotalRequest,
	httpcluster.PolicyTotalTraffic,
	httpcluster.PolicyCurrentLoad,
	httpcluster.PolicyRoundRobin,
}

func policyName(p httpcluster.Policy) string { return p.String() }

func mechName(m httpcluster.Mechanism) string {
	if m == httpcluster.MechanismOriginal {
		return "original"
	}
	return "modified"
}

// Marshal renders the script in the line-oriented testdata format:
//
//	# millicheck script v1
//	arm overflow
//	backends 2
//	endpoints 1
//	policy current_load
//	mech modified
//	acquire 128
//	done 0 256
//	fail 0
//	setpolicy round_robin
//	setmech original
//	quarantine 1 on
//	weight 0 2.5
func (s Script) Marshal() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# millicheck script v1\n")
	fmt.Fprintf(&b, "arm %s\n", s.Arm)
	fmt.Fprintf(&b, "backends %d\n", s.Backends)
	fmt.Fprintf(&b, "endpoints %d\n", s.Endpoints)
	fmt.Fprintf(&b, "policy %s\n", policyName(s.Policy))
	fmt.Fprintf(&b, "mech %s\n", mechName(s.Mech))
	for _, op := range s.Ops {
		switch op.Kind {
		case OpAcquire:
			fmt.Fprintf(&b, "acquire %d\n", op.A)
		case OpDone:
			fmt.Fprintf(&b, "done %d %d\n", op.A, op.B)
		case OpFail:
			fmt.Fprintf(&b, "fail %d\n", op.A)
		case OpSetPolicy:
			fmt.Fprintf(&b, "setpolicy %s\n", policyName(op.Policy))
		case OpSetMechanism:
			fmt.Fprintf(&b, "setmech %s\n", mechName(op.Mech))
		case OpQuarantine:
			state := "off"
			if op.On {
				state = "on"
			}
			fmt.Fprintf(&b, "quarantine %d %s\n", op.A, state)
		case OpWeight:
			fmt.Fprintf(&b, "weight %d %s\n", op.A, strconv.FormatFloat(op.F, 'g', -1, 64))
		}
	}
	return b.String()
}

// Unmarshal parses the Marshal format. Unknown directives and malformed
// lines are errors; the caller decides whether that aborts (corpus
// replay) or skips (fuzzing).
func Unmarshal(text string) (Script, error) {
	s := Script{
		Arm:       ArmSticky,
		Backends:  4,
		Endpoints: 2,
		Policy:    httpcluster.PolicyCurrentLoad,
		Mech:      httpcluster.MechanismModified,
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		fields := strings.Fields(raw)
		bad := func(why string) (Script, error) {
			return Script{}, fmt.Errorf("check: line %d %q: %s", line, raw, why)
		}
		switch fields[0] {
		case "arm":
			if len(fields) != 2 {
				return bad("want arm <name>")
			}
			switch Arm(fields[1]) {
			case ArmSticky, ArmInstant, ArmOverflow:
				s.Arm = Arm(fields[1])
			default:
				return bad("unknown arm")
			}
		case "backends":
			n, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil || len(fields) != 2 {
				return bad("want backends <n>")
			}
			if n < 1 {
				n = 1
			}
			if n > MaxBackends {
				n = MaxBackends
			}
			s.Backends = n
		case "endpoints":
			n, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil || len(fields) != 2 {
				return bad("want endpoints <n>")
			}
			if n < 1 {
				n = 1
			}
			if n > 64 {
				n = 64
			}
			s.Endpoints = n
		case "policy", "setpolicy":
			if len(fields) != 2 {
				return bad("want one policy name")
			}
			p, err := httpcluster.ParsePolicy(fields[1])
			if err != nil || p == httpcluster.PolicyPrequal {
				return bad("not a deterministic policy")
			}
			if fields[0] == "policy" {
				s.Policy = p
			} else {
				s.Ops = append(s.Ops, Op{Kind: OpSetPolicy, Policy: p})
			}
		case "mech", "setmech":
			if len(fields) != 2 {
				return bad("want one mechanism name")
			}
			m, err := httpcluster.ParseMechanism(fields[1])
			if err != nil {
				return bad("unknown mechanism")
			}
			if fields[0] == "mech" {
				s.Mech = m
			} else {
				s.Ops = append(s.Ops, Op{Kind: OpSetMechanism, Mech: m})
			}
		case "acquire":
			if len(fields) != 2 {
				return bad("want acquire <bytes>")
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || n < 0 {
				return bad("bad byte count")
			}
			s.Ops = append(s.Ops, Op{Kind: OpAcquire, A: n})
		case "done":
			if len(fields) != 3 {
				return bad("want done <slot> <bytes>")
			}
			slot, err1 := strconv.ParseInt(fields[1], 10, 64)
			n, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil || slot < 0 || n < 0 {
				return bad("bad operands")
			}
			s.Ops = append(s.Ops, Op{Kind: OpDone, A: slot, B: n})
		case "fail":
			if len(fields) != 2 {
				return bad("want fail <slot>")
			}
			slot, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || slot < 0 {
				return bad("bad slot")
			}
			s.Ops = append(s.Ops, Op{Kind: OpFail, A: slot})
		case "quarantine":
			if len(fields) != 3 || (fields[2] != "on" && fields[2] != "off") {
				return bad("want quarantine <backend> on|off")
			}
			idx, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || idx < 0 {
				return bad("bad backend index")
			}
			s.Ops = append(s.Ops, Op{Kind: OpQuarantine, A: idx, On: fields[2] == "on"})
		case "weight":
			if len(fields) != 3 {
				return bad("want weight <backend> <value>")
			}
			idx, err1 := strconv.ParseInt(fields[1], 10, 64)
			w, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || idx < 0 {
				return bad("bad operands")
			}
			s.Ops = append(s.Ops, Op{Kind: OpWeight, A: idx, F: w})
		default:
			return bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return Script{}, fmt.Errorf("check: scan: %w", err)
	}
	return s, nil
}

// finite reports whether v is a usable float (not NaN, not ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

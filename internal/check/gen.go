package check

import (
	"math"

	"millibalance/internal/httpcluster"
)

// rng is the harness's deterministic generator: splitmix64 over a
// counter, the same finalizer the dispatch path's own seeded source
// uses, so a script seed reproduces forever and everywhere.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// genWeights are the lbfactors the generator assigns. The non-finite
// and non-positive tail exercises the write-site guards: a NaN weight
// must be rejected at SetWeight, not propagated into every subsequent
// lb_value update (the poisoning bug this harness flushed out).
var genWeights = []float64{1, 1, 1, 2, 2, 3, 0.5, 0, -1, math.NaN(), math.Inf(1)}

// Generate derives a script from a seed. Arms, topology, the starting
// policy/mechanism and the op mix are all drawn from the seed, so a
// corpus of seeds covers sticky/instant/overflow timing × all four
// deterministic policies × both mechanisms.
func Generate(seed uint64) Script {
	r := &rng{s: seed * 0x9e3779b97f4a7c15}
	arms := []Arm{ArmSticky, ArmSticky, ArmInstant, ArmInstant, ArmOverflow}
	s := Script{
		Arm:       arms[r.intn(len(arms))],
		Backends:  2 + r.intn(3),
		Endpoints: 1 + r.intn(3),
		Policy:    scriptPolicies[r.intn(len(scriptPolicies))],
		Mech:      httpcluster.Mechanism(1 + r.intn(2)),
	}
	nops := 30 + r.intn(120)
	for i := 0; i < nops; i++ {
		s.Ops = append(s.Ops, genOp(r))
	}
	return s
}

func genOp(r *rng) Op {
	switch roll := r.intn(100); {
	case roll < 45:
		return Op{Kind: OpAcquire, A: int64(r.intn(4096))}
	case roll < 65:
		return Op{Kind: OpDone, A: int64(r.intn(16)), B: int64(r.intn(8192))}
	case roll < 73:
		return Op{Kind: OpFail, A: int64(r.intn(16))}
	case roll < 81:
		return Op{Kind: OpSetPolicy, Policy: scriptPolicies[r.intn(len(scriptPolicies))]}
	case roll < 86:
		return Op{Kind: OpSetMechanism, Mech: httpcluster.Mechanism(1 + r.intn(2))}
	case roll < 94:
		return Op{Kind: OpQuarantine, A: int64(r.intn(MaxBackends)), On: r.intn(2) == 0}
	default:
		return Op{Kind: OpWeight, A: int64(r.intn(MaxBackends)), F: genWeights[r.intn(len(genWeights))]}
	}
}

// Shrink minimizes a failing script with ddmin over the op list:
// chunk-removal passes with halving granularity, repeated until no
// single op can be removed while the script keeps failing. The replay
// semantics make any subsequence valid (slot references resolve modulo
// the live open count; empty-list references are skipped), so removal
// never has to repair the remaining ops.
func Shrink(s Script, fails func(Script) bool) Script {
	if !fails(s) {
		return s
	}
	best := s
	pass := func(chunk int) bool {
		removed := false
		for start := 0; start+chunk <= len(best.Ops); {
			cand := best
			cand.Ops = append(append([]Op{}, best.Ops[:start]...), best.Ops[start+chunk:]...)
			if fails(cand) {
				best = cand
				removed = true
				continue // same start now addresses the next chunk
			}
			start += chunk
		}
		return removed
	}
	for chunk := len(best.Ops) / 2; chunk > 1; chunk /= 2 {
		pass(chunk)
	}
	for pass(1) {
	}
	// Topology passes: fewer backends and endpoints make the committed
	// regression easier to read.
	for best.Backends > 1 {
		cand := best
		cand.Backends--
		if !fails(cand) {
			break
		}
		best = cand
	}
	for best.Endpoints > 1 {
		cand := best
		cand.Endpoints--
		if !fails(cand) {
			break
		}
		best = cand
	}
	return best
}

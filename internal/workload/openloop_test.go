package workload

import (
	"math"
	"testing"
	"time"

	"millibalance/internal/sim"
)

func TestOpenLoopRate(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	served := 0
	ol := NewOpenLoop(eng, OpenLoopConfig{
		Rate: 500,
		Mix:  BrowseOnlyMix(),
	}, func(req *Request) {
		served++
		req.Finish(Outcome{OK: true})
	})
	ol.Start()
	eng.Run(20 * time.Second)
	// 500 req/s × 20s = 10000 ± statistical noise.
	got := float64(ol.Issued())
	if math.Abs(got-10000) > 400 {
		t.Fatalf("issued %v, want ~10000", got)
	}
	if served != int(ol.Issued()) {
		t.Fatalf("served %d != issued %d", served, ol.Issued())
	}
}

func TestOpenLoopDoesNotThrottleOnSlowService(t *testing.T) {
	// The defining difference from the closed loop: arrivals continue
	// even when nothing completes.
	eng := sim.NewEngine(1, 2)
	var pending []*Request
	ol := NewOpenLoop(eng, OpenLoopConfig{Rate: 100, Mix: BrowseOnlyMix()},
		func(req *Request) { pending = append(pending, req) })
	ol.Start()
	eng.Run(5 * time.Second)
	if len(pending) < 400 {
		t.Fatalf("only %d arrivals with nothing completing", len(pending))
	}
}

func TestOpenLoopClientIDsCycle(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	seen := map[int]int{}
	ol := NewOpenLoop(eng, OpenLoopConfig{Rate: 1000, Mix: BrowseOnlyMix(), Clients: 4},
		func(req *Request) {
			seen[req.ClientID]++
			req.Finish(Outcome{OK: true})
		})
	ol.Start()
	eng.Run(time.Second)
	if len(seen) != 4 {
		t.Fatalf("client ids = %v", seen)
	}
	for id, n := range seen {
		if id < 0 || id > 3 || n == 0 {
			t.Fatalf("bad cycling: %v", seen)
		}
	}
}

func TestOpenLoopOutcomeHook(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	outcomes := 0
	ol := NewOpenLoop(eng, OpenLoopConfig{
		Rate: 200,
		Mix:  BrowseOnlyMix(),
		OnOutcome: func(req *Request, o Outcome) {
			if req == nil || !o.OK {
				t.Error("bad outcome callback")
			}
			outcomes++
		},
	}, func(req *Request) { req.Finish(Outcome{OK: true}) })
	ol.Start()
	eng.Run(time.Second)
	if outcomes == 0 || uint64(outcomes) != ol.Issued() {
		t.Fatalf("outcomes %d, issued %d", outcomes, ol.Issued())
	}
}

func TestOpenLoopStop(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	ol := NewOpenLoop(eng, OpenLoopConfig{Rate: 1000, Mix: BrowseOnlyMix()},
		func(req *Request) { req.Finish(Outcome{OK: true}) })
	ol.Start()
	eng.Run(time.Second)
	ol.Stop()
	issued := ol.Issued()
	eng.Run(5 * time.Second)
	if ol.Issued() != issued {
		t.Fatalf("arrivals after Stop: %d -> %d", issued, ol.Issued())
	}
}

func TestOpenLoopValidations(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil submit", func() { NewOpenLoop(eng, OpenLoopConfig{Rate: 1, Mix: BrowseOnlyMix()}, nil) })
	mustPanic("zero rate", func() { NewOpenLoop(eng, OpenLoopConfig{Mix: BrowseOnlyMix()}, func(*Request) {}) })
	mustPanic("empty mix", func() { NewOpenLoop(eng, OpenLoopConfig{Rate: 1}, func(*Request) {}) })
	mustPanic("double start", func() {
		ol := NewOpenLoop(eng, OpenLoopConfig{Rate: 1, Mix: BrowseOnlyMix()}, func(r *Request) { r.Finish(Outcome{}) })
		ol.Start()
		ol.Start()
	})
}

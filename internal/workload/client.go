package workload

import (
	"millibalance/internal/obs"
	"millibalance/internal/sim"
)

// Outcome is the result of one request as seen by its client.
type Outcome struct {
	// OK reports whether a response was received.
	OK bool
	// ResponseTime is the client-observed latency (issue to response,
	// including retransmission delays). Meaningful also for failures,
	// where it is the time until the client gave up.
	ResponseTime sim.Time
	// Retransmits counts connection attempts beyond the first.
	Retransmits int
}

// Request is one client request travelling through the n-tier system.
type Request struct {
	// ID is unique per generator group.
	ID uint64
	// ClientID identifies the issuing client within its group.
	ClientID int
	// Interaction is the RUBBoS interaction being requested.
	Interaction *Interaction
	// IssuedAt is when the client first sent the request.
	IssuedAt sim.Time
	// Retransmits is incremented by the transport on each retry.
	Retransmits int
	// Web and Backend are filled in by the web tier as the request
	// flows — the identity an access-log line would carry. They stay
	// empty for requests that never reached a server.
	Web     string
	Backend string
	// AdmittedAt is when the web tier's admission gate admitted the
	// request (meaningful only when admission control is armed); the
	// admit→respond interval feeds the adaptive concurrency limiter.
	AdmittedAt sim.Time
	// Span, when non-nil, records the request's lifecycle stages as it
	// travels through the tiers. Nil when tracing is disabled.
	Span *obs.Span

	done     func(Outcome)
	finished bool
}

// NewRequest builds a standalone request outside a client Group, for
// tests and direct library use. done may be nil; Finish then only marks
// completion.
func NewRequest(id uint64, clientID int, it *Interaction, issuedAt sim.Time, done func(Outcome)) *Request {
	return &Request{ID: id, ClientID: clientID, Interaction: it, IssuedAt: issuedAt, done: done}
}

// Finish delivers the outcome to the client. Finishing twice panics:
// it would mean a request completed through two paths at once.
func (r *Request) Finish(o Outcome) {
	if r.finished {
		panic("workload: Request finished twice")
	}
	r.finished = true
	if r.done != nil {
		r.done(o)
	}
}

// Finished reports whether the request already completed.
func (r *Request) Finished() bool { return r.finished }

// SubmitFunc delivers a request into the system under test. The system
// must eventually call req.Finish exactly once.
type SubmitFunc func(req *Request)

// BurstConfig modulates client think times with a square wave to model
// bursty workloads (one of the paper's millibottleneck causes). During
// the first DutyCycle fraction of each Period, think times are divided
// by Factor.
type BurstConfig struct {
	Period    sim.Time
	DutyCycle float64
	Factor    float64
}

// active reports whether t falls inside a burst window.
func (b *BurstConfig) active(t sim.Time) bool {
	if b == nil || b.Period <= 0 || b.Factor <= 1 {
		return false
	}
	phase := float64(t%b.Period) / float64(b.Period)
	return phase < b.DutyCycle
}

// ClientConfig configures a closed-loop client group.
type ClientConfig struct {
	// ThinkTime is the mean exponential think time between a response
	// and the next request (RUBBoS uses ~7 s).
	ThinkTime sim.Time
	// Mix is the interaction mix to navigate.
	Mix Mix
	// Burst optionally modulates think times.
	Burst *BurstConfig
	// FollowProb is the probability of following a natural successor
	// link instead of sampling the stationary mix (default 0.5).
	FollowProb float64
	// OnOutcome, when set, observes every request outcome before the
	// client schedules its next think — the metrics layer's tap point.
	OnOutcome func(*Request, Outcome)
}

// Group is a set of closed-loop clients sharing one configuration and
// target. Each client navigates the mix independently: issue a request,
// wait for its outcome, think, repeat.
type Group struct {
	eng    *sim.Engine
	cfg    ClientConfig
	submit SubmitFunc

	clients []*client
	nextID  uint64
	issued  uint64
	stopped bool
}

type client struct {
	id  int
	nav *Navigator
}

// NewGroup creates n clients. The submit function must be non-nil; the
// mix must be non-empty.
func NewGroup(eng *sim.Engine, n int, cfg ClientConfig, submit SubmitFunc) *Group {
	if submit == nil {
		panic("workload: NewGroup with nil submit")
	}
	if len(cfg.Mix.Interactions) == 0 {
		panic("workload: NewGroup with empty mix")
	}
	if cfg.FollowProb == 0 {
		cfg.FollowProb = 0.5
	}
	g := &Group{eng: eng, cfg: cfg, submit: submit}
	byName := indexMix(cfg.Mix)
	for i := 0; i < n; i++ {
		g.clients = append(g.clients, &client{id: i, nav: newNavigator(eng, cfg.Mix, cfg.FollowProb, byName)})
	}
	return g
}

// Size returns the number of clients.
func (g *Group) Size() int { return len(g.clients) }

// Issued reports how many requests have been issued so far.
func (g *Group) Issued() uint64 { return g.issued }

// Start begins the closed loops. Clients first think (a random fraction
// of one think time, to desynchronize) and then issue their first
// request.
func (g *Group) Start() {
	for _, c := range g.clients {
		c := c
		ramp := g.eng.Uniform(0, g.thinkNow())
		g.eng.Schedule(ramp, func() { g.issue(c) })
	}
}

// Stop halts issuing; in-flight requests still complete.
func (g *Group) Stop() { g.stopped = true }

func (g *Group) thinkNow() sim.Time {
	think := g.cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	if g.cfg.Burst.active(g.eng.Now()) {
		think = sim.Time(float64(think) / g.cfg.Burst.Factor)
	}
	return think
}

func (g *Group) issue(c *client) {
	if g.stopped {
		return
	}
	g.nextID++
	g.issued++
	var req *Request
	req = &Request{
		ID:          g.nextID,
		ClientID:    c.id,
		Interaction: c.nav.Next(),
		IssuedAt:    g.eng.Now(),
		done: func(o Outcome) {
			if g.cfg.OnOutcome != nil {
				g.cfg.OnOutcome(req, o)
			}
			g.eng.Schedule(g.eng.Exponential(g.thinkNow()), func() { g.issue(c) })
		},
	}
	g.submit(req)
}

package workload

import (
	"millibalance/internal/sim"
)

// successors lists each interaction's natural next steps in the RUBBoS
// navigation graph (view a story, then its comments; open a form, then
// submit it; and so on).
var successors = map[string][]string{
	"StoriesOfTheDay":         {"ViewStory", "BrowseCategories", "OlderStories"},
	"BrowseCategories":        {"BrowseStoriesByCategory"},
	"BrowseStoriesByCategory": {"ViewStory", "OlderStories"},
	"OlderStories":            {"ViewStory"},
	"ViewStory":               {"ViewComment", "PostCommentForm", "ViewStory"},
	"ViewComment":             {"ViewComment", "PostCommentForm", "ModerateCommentForm", "ViewStory"},
	"PostCommentForm":         {"StoreComment"},
	"StoreComment":            {"ViewStory", "StoriesOfTheDay"},
	"ModerateCommentForm":     {"StoreModerateLog"},
	"StoreModerateLog":        {"ViewComment", "StoriesOfTheDay"},
	"SubmitStoryForm":         {"StoreStory"},
	"StoreStory":              {"StoriesOfTheDay"},
	"SearchForm":              {"SearchInStories", "SearchInComments", "SearchInUsers"},
	"SearchInStories":         {"ViewStory", "SearchForm"},
	"SearchInComments":        {"ViewComment", "SearchForm"},
	"SearchInUsers":           {"SearchForm", "StoriesOfTheDay"},
	"RegisterUserForm":        {"RegisterUser"},
	"RegisterUser":            {"StoriesOfTheDay"},
	"AuthorLoginForm":         {"AuthorLogin"},
	"AuthorLogin":             {"AuthorTasks"},
	"AuthorTasks":             {"ReviewStories"},
	"ReviewStories":           {"AcceptStory", "RejectStory", "ReviewStories"},
	"AcceptStory":             {"ReviewStories", "StoriesOfTheDay"},
	"RejectStory":             {"ReviewStories", "StoriesOfTheDay"},
}

// Navigator walks the interaction mix as a Markov chain: with probability
// followProb it follows one of the current interaction's natural
// successors (restricted to those present in the mix); otherwise it
// samples the mix's stationary weights. The chain therefore produces
// session-like traces while preserving the configured mix proportions in
// the long run.
type Navigator struct {
	eng        *sim.Engine
	mix        Mix
	followProb float64
	byName     map[string]int
	cur        int // -1 before the first step
}

// NewNavigator returns a navigator over the mix. followProb is clamped
// to [0, 1].
func NewNavigator(eng *sim.Engine, mix Mix, followProb float64) *Navigator {
	return newNavigator(eng, mix, followProb, indexMix(mix))
}

// indexMix builds the name index for a mix; Group builds it once and
// shares it across tens of thousands of client navigators.
func indexMix(mix Mix) map[string]int {
	byName := make(map[string]int, len(mix.Interactions))
	for i, it := range mix.Interactions {
		byName[it.Name] = i
	}
	return byName
}

func newNavigator(eng *sim.Engine, mix Mix, followProb float64, byName map[string]int) *Navigator {
	if followProb < 0 {
		followProb = 0
	}
	if followProb > 1 {
		followProb = 1
	}
	return &Navigator{eng: eng, mix: mix, followProb: followProb, byName: byName, cur: -1}
}

// Next advances the chain and returns the next interaction to issue.
func (n *Navigator) Next() *Interaction {
	next := -1
	if n.cur >= 0 && n.eng.Bernoulli(n.followProb) {
		next = n.pickSuccessor(n.mix.Interactions[n.cur].Name)
	}
	if next < 0 {
		next = n.eng.PickWeighted(n.mix.Weights)
	}
	n.cur = next
	return &n.mix.Interactions[next]
}

// pickSuccessor returns the index of a uniformly chosen natural successor
// that exists in the mix, or -1 when none do.
func (n *Navigator) pickSuccessor(name string) int {
	var candidates []int
	for _, s := range successors[name] {
		if idx, ok := n.byName[s]; ok {
			candidates = append(candidates, idx)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[n.eng.Rand().IntN(len(candidates))]
}

package workload

import (
	"math"
	"testing"
	"time"

	"millibalance/internal/sim"
)

func TestInteractionTableShape(t *testing.T) {
	if len(Interactions) != 24 {
		t.Fatalf("Interactions = %d entries, want 24 (RUBBoS servlet count)", len(Interactions))
	}
	seen := map[string]bool{}
	writes := 0
	for _, it := range Interactions {
		if it.Name == "" {
			t.Fatal("unnamed interaction")
		}
		if seen[it.Name] {
			t.Fatalf("duplicate interaction %q", it.Name)
		}
		seen[it.Name] = true
		if it.Write {
			writes++
		}
		if it.AppDemand <= 0 {
			t.Fatalf("%s has non-positive app demand", it.Name)
		}
		if it.WebDemand <= 0 {
			t.Fatalf("%s has non-positive web demand", it.Name)
		}
		if it.DBQueries < 0 || (it.DBQueries > 0) != (it.DBDemand > 0) {
			t.Fatalf("%s has inconsistent DB demand: %d queries, %v each", it.Name, it.DBQueries, it.DBDemand)
		}
		if it.RequestBytes <= 0 || it.ResponseBytes <= 0 || it.LogBytes <= 0 {
			t.Fatalf("%s has non-positive message/log sizes", it.Name)
		}
	}
	if writes != 6 {
		t.Fatalf("write interactions = %d, want 6", writes)
	}
}

func TestBrowseOnlyMixHasNoWrites(t *testing.T) {
	m := BrowseOnlyMix()
	if len(m.Interactions) == 0 {
		t.Fatal("browse-only mix is empty")
	}
	for _, it := range m.Interactions {
		if it.Write {
			t.Fatalf("browse-only mix contains write interaction %s", it.Name)
		}
	}
	if len(m.Interactions) != len(m.Weights) {
		t.Fatal("mix weights misaligned")
	}
}

func TestReadWriteMixHasModestWriteShare(t *testing.T) {
	m := ReadWriteMix()
	var total, writes float64
	for i, it := range m.Interactions {
		total += m.Weights[i]
		if it.Write {
			writes += m.Weights[i]
		}
	}
	share := writes / total
	if share < 0.05 || share > 0.20 {
		t.Fatalf("write share = %.3f, want ~10%%", share)
	}
}

func TestMeanDemandsPositive(t *testing.T) {
	web, app, db := BrowseOnlyMix().MeanDemands()
	if web <= 0 || app <= 0 || db <= 0 {
		t.Fatalf("MeanDemands = %v/%v/%v", web, app, db)
	}
	if app < web {
		t.Fatalf("app demand %v below web demand %v; app tier should dominate", app, web)
	}
}

func TestMeanDemandsEmptyMix(t *testing.T) {
	web, app, db := (Mix{}).MeanDemands()
	if web != 0 || app != 0 || db != 0 {
		t.Fatal("empty mix demands not zero")
	}
}

func TestNavigatorRespectsMixMembership(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	m := BrowseOnlyMix()
	nav := NewNavigator(eng, m, 0.7)
	member := map[string]bool{}
	for _, it := range m.Interactions {
		member[it.Name] = true
	}
	for i := 0; i < 5000; i++ {
		it := nav.Next()
		if !member[it.Name] {
			t.Fatalf("navigator left the mix: %s", it.Name)
		}
		if it.Write {
			t.Fatalf("browse-only navigation hit a write: %s", it.Name)
		}
	}
}

func TestNavigatorFollowsSuccessors(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	nav := NewNavigator(eng, ReadWriteMix(), 1.0) // always follow when possible
	follows, steps := 0, 0
	prev := nav.Next()
	for i := 0; i < 5000; i++ {
		cur := nav.Next()
		steps++
		for _, s := range successors[prev.Name] {
			if s == cur.Name {
				follows++
				break
			}
		}
		prev = cur
	}
	if frac := float64(follows) / float64(steps); frac < 0.8 {
		t.Fatalf("successor-follow fraction = %.2f with followProb=1", frac)
	}
}

func TestNavigatorZeroFollowMatchesWeights(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	m := BrowseOnlyMix()
	nav := NewNavigator(eng, m, 0)
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[nav.Next().Name]++
	}
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	for i, it := range m.Interactions {
		want := m.Weights[i] / total
		got := float64(counts[it.Name]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("%s frequency %.3f, want %.3f", it.Name, got, want)
		}
	}
}

func TestNavigatorClampsFollowProb(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	nav := NewNavigator(eng, BrowseOnlyMix(), 7)
	if nav.followProb != 1 {
		t.Fatalf("followProb = %v", nav.followProb)
	}
	nav = NewNavigator(eng, BrowseOnlyMix(), -1)
	if nav.followProb != 0 {
		t.Fatalf("followProb = %v", nav.followProb)
	}
}

func TestSuccessorNamesExist(t *testing.T) {
	names := map[string]bool{}
	for _, it := range Interactions {
		names[it.Name] = true
	}
	for from, tos := range successors {
		if !names[from] {
			t.Fatalf("successor map key %q is not an interaction", from)
		}
		for _, to := range tos {
			if !names[to] {
				t.Fatalf("successor %q of %q is not an interaction", to, from)
			}
		}
	}
}

func TestRequestFinishOnce(t *testing.T) {
	called := 0
	r := &Request{done: func(Outcome) { called++ }}
	r.Finish(Outcome{OK: true})
	if called != 1 || !r.Finished() {
		t.Fatalf("called=%d finished=%v", called, r.Finished())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double Finish did not panic")
		}
	}()
	r.Finish(Outcome{})
}

func TestGroupClosedLoop(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	completions := 0
	var submit SubmitFunc = func(req *Request) {
		// Serve instantly with a 1ms response time.
		eng.Schedule(time.Millisecond, func() {
			completions++
			req.Finish(Outcome{OK: true, ResponseTime: time.Millisecond})
		})
	}
	g := NewGroup(eng, 10, ClientConfig{ThinkTime: 100 * time.Millisecond, Mix: BrowseOnlyMix()}, submit)
	g.Start()
	eng.Run(10 * time.Second)
	// 10 clients, ~101ms per cycle, 10s → ~990 requests.
	if g.Issued() < 700 || g.Issued() > 1300 {
		t.Fatalf("Issued = %d, want ≈1000", g.Issued())
	}
	if uint64(completions) > g.Issued() {
		t.Fatalf("completions %d exceed issued %d", completions, g.Issued())
	}
}

func TestGroupClosedLoopWaitsForResponse(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	inFlight, maxInFlight := 0, 0
	var submit SubmitFunc = func(req *Request) {
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		eng.Schedule(50*time.Millisecond, func() {
			inFlight--
			req.Finish(Outcome{OK: true})
		})
	}
	g := NewGroup(eng, 5, ClientConfig{ThinkTime: time.Millisecond, Mix: BrowseOnlyMix()}, submit)
	g.Start()
	eng.Run(5 * time.Second)
	if maxInFlight > 5 {
		t.Fatalf("closed loop violated: %d in flight for 5 clients", maxInFlight)
	}
}

func TestGroupStop(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	var submit SubmitFunc = func(req *Request) {
		eng.Schedule(time.Millisecond, func() { req.Finish(Outcome{OK: true}) })
	}
	g := NewGroup(eng, 3, ClientConfig{ThinkTime: 10 * time.Millisecond, Mix: BrowseOnlyMix()}, submit)
	g.Start()
	eng.Run(time.Second)
	g.Stop()
	issued := g.Issued()
	eng.Run(5 * time.Second)
	if g.Issued() != issued {
		t.Fatalf("requests issued after Stop: %d -> %d", issued, g.Issued())
	}
}

func TestGroupUniqueRequestIDs(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	ids := map[uint64]bool{}
	var submit SubmitFunc = func(req *Request) {
		if ids[req.ID] {
			t.Fatalf("duplicate request ID %d", req.ID)
		}
		ids[req.ID] = true
		eng.Schedule(time.Millisecond, func() { req.Finish(Outcome{OK: true}) })
	}
	g := NewGroup(eng, 4, ClientConfig{ThinkTime: 5 * time.Millisecond, Mix: ReadWriteMix()}, submit)
	g.Start()
	eng.Run(time.Second)
	if len(ids) == 0 {
		t.Fatal("no requests issued")
	}
}

func TestGroupPanicsOnBadArgs(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil submit", func() {
		NewGroup(eng, 1, ClientConfig{Mix: BrowseOnlyMix()}, nil)
	})
	mustPanic("empty mix", func() {
		NewGroup(eng, 1, ClientConfig{}, func(*Request) {})
	})
}

func TestBurstIncreasesThroughput(t *testing.T) {
	run := func(burst *BurstConfig) uint64 {
		eng := sim.NewEngine(3, 4)
		var submit SubmitFunc = func(req *Request) { req.Finish(Outcome{OK: true}) }
		g := NewGroup(eng, 20, ClientConfig{
			ThinkTime: 100 * time.Millisecond,
			Mix:       BrowseOnlyMix(),
			Burst:     burst,
		}, submit)
		g.Start()
		eng.Run(20 * time.Second)
		return g.Issued()
	}
	base := run(nil)
	bursty := run(&BurstConfig{Period: 2 * time.Second, DutyCycle: 0.5, Factor: 4})
	if float64(bursty) < 1.3*float64(base) {
		t.Fatalf("bursty issued %d, base %d; burst had no effect", bursty, base)
	}
}

func TestBurstActiveWindows(t *testing.T) {
	b := &BurstConfig{Period: time.Second, DutyCycle: 0.25, Factor: 2}
	if !b.active(100 * time.Millisecond) {
		t.Fatal("burst inactive inside duty window")
	}
	if b.active(500 * time.Millisecond) {
		t.Fatal("burst active outside duty window")
	}
	if (*BurstConfig)(nil).active(0) {
		t.Fatal("nil burst active")
	}
	if (&BurstConfig{Period: time.Second, DutyCycle: 1, Factor: 1}).active(0) {
		t.Fatal("factor<=1 burst active")
	}
}

package workload

import (
	"millibalance/internal/sim"
)

// OpenLoopConfig configures a Poisson arrival process.
type OpenLoopConfig struct {
	// Rate is the mean arrival rate in requests per second.
	Rate float64
	// Mix is the interaction mix to sample.
	Mix Mix
	// FollowProb is the Markov successor-follow probability
	// (default 0.5); the open-loop generator keeps one shared
	// navigation chain.
	FollowProb float64
	// Clients is the virtual client population size used only to stamp
	// ClientID round-robin (for transport routing); it does not bound
	// concurrency. Default 1.
	Clients int
	// OnOutcome observes request outcomes.
	OnOutcome func(*Request, Outcome)
}

// OpenLoop issues requests with exponential inter-arrival times at a
// fixed mean rate, independent of completions. Unlike the closed-loop
// Group — whose clients stop issuing while their requests queue,
// throttling load exactly when the system struggles — an open-loop
// arrival process keeps pushing, which makes it the harsher (and for
// internet-facing front ends often the more realistic) workload model.
type OpenLoop struct {
	eng    *sim.Engine
	cfg    OpenLoopConfig
	submit SubmitFunc
	nav    *Navigator

	timer   sim.Timer
	started bool
	nextID  uint64
	issued  uint64
	stopped bool
}

// NewOpenLoop returns a generator; rate must be positive, the mix
// non-empty and submit non-nil.
func NewOpenLoop(eng *sim.Engine, cfg OpenLoopConfig, submit SubmitFunc) *OpenLoop {
	if submit == nil {
		panic("workload: NewOpenLoop with nil submit")
	}
	if cfg.Rate <= 0 {
		panic("workload: NewOpenLoop requires a positive rate")
	}
	if len(cfg.Mix.Interactions) == 0 {
		panic("workload: NewOpenLoop with empty mix")
	}
	if cfg.FollowProb == 0 {
		cfg.FollowProb = 0.5
	}
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	return &OpenLoop{
		eng:    eng,
		cfg:    cfg,
		submit: submit,
		nav:    NewNavigator(eng, cfg.Mix, cfg.FollowProb),
	}
}

// Issued reports how many requests have been issued.
func (o *OpenLoop) Issued() uint64 { return o.issued }

// Start begins the arrival process. It may be called once.
func (o *OpenLoop) Start() {
	if o.started {
		panic("workload: OpenLoop.Start called twice")
	}
	o.started = true
	o.arm()
}

// Stop halts arrivals; in-flight requests still complete.
func (o *OpenLoop) Stop() {
	o.stopped = true
	o.eng.Stop(o.timer)
	o.timer = sim.Timer{}
}

func (o *OpenLoop) interarrival() sim.Time {
	return o.eng.Exponential(sim.Seconds(1 / o.cfg.Rate))
}

func (o *OpenLoop) arm() {
	o.timer = o.eng.Schedule(o.interarrival(), func() {
		if o.stopped {
			return
		}
		o.issue()
		o.arm()
	})
}

func (o *OpenLoop) issue() {
	o.nextID++
	o.issued++
	var req *Request
	req = NewRequest(o.nextID, int((o.nextID-1)%uint64(o.cfg.Clients)), o.nav.Next(), o.eng.Now(),
		func(out Outcome) {
			if o.cfg.OnOutcome != nil {
				o.cfg.OnOutcome(req, out)
			}
		})
	o.submit(req)
}

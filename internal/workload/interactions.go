// Package workload models the RUBBoS bulletin-board benchmark used by
// the paper: 24 web interactions navigated by a Markov chain, issued by
// closed-loop clients with exponential think times, in browse-only and
// read/write mixes. Service demands are expressed as mean CPU bursts and
// database query counts; the server models sample around them.
package workload

import (
	"time"

	"millibalance/internal/sim"
)

// Interaction describes one RUBBoS web interaction: its resource demands
// on each tier and the message sizes the total_traffic policy accounts.
type Interaction struct {
	// Name is the servlet name.
	Name string
	// Write marks interactions that update the database (excluded from
	// the browse-only mix).
	Write bool
	// WebDemand is the mean web-tier CPU burst (parsing, proxying).
	WebDemand sim.Time
	// AppDemand is the mean application-tier CPU burst (servlet logic,
	// templating).
	AppDemand sim.Time
	// DBQueries is how many database round trips the servlet issues.
	DBQueries int
	// DBDemand is the mean database CPU burst per query.
	DBDemand sim.Time
	// RequestBytes and ResponseBytes size the messages between the web
	// and application tiers (the total_traffic policy's accounting
	// unit).
	RequestBytes  int64
	ResponseBytes int64
	// LogBytes is how much the application server appends to its
	// access/servlet logs per request — the dirty pages that the
	// writeback daemon later flushes.
	LogBytes int64
}

const (
	us = time.Microsecond
	kb = int64(1024)
)

// Interactions is the full RUBBoS-like interaction set (24 servlets).
// Demands are calibrated so the paper topology at its workload runs the
// busiest server at moderate (<50%) average CPU, as in Fig. 5, with
// end-to-end baseline response times of a few milliseconds.
var Interactions = []Interaction{
	{Name: "StoriesOfTheDay", WebDemand: 480 * us, AppDemand: 900 * us, DBQueries: 2, DBDemand: 90 * us, RequestBytes: 300, ResponseBytes: 12 * kb, LogBytes: 700},
	{Name: "RegisterUserForm", WebDemand: 320 * us, AppDemand: 300 * us, DBQueries: 0, DBDemand: 0, RequestBytes: 250, ResponseBytes: 4 * kb, LogBytes: 400},
	{Name: "RegisterUser", Write: true, WebDemand: 400 * us, AppDemand: 800 * us, DBQueries: 3, DBDemand: 120 * us, RequestBytes: 600, ResponseBytes: 3 * kb, LogBytes: 900},
	{Name: "BrowseCategories", WebDemand: 400 * us, AppDemand: 600 * us, DBQueries: 1, DBDemand: 80 * us, RequestBytes: 280, ResponseBytes: 6 * kb, LogBytes: 500},
	{Name: "BrowseStoriesByCategory", WebDemand: 480 * us, AppDemand: 1000 * us, DBQueries: 2, DBDemand: 110 * us, RequestBytes: 320, ResponseBytes: 14 * kb, LogBytes: 800},
	{Name: "OlderStories", WebDemand: 480 * us, AppDemand: 950 * us, DBQueries: 2, DBDemand: 100 * us, RequestBytes: 300, ResponseBytes: 13 * kb, LogBytes: 750},
	{Name: "ViewStory", WebDemand: 480 * us, AppDemand: 1100 * us, DBQueries: 3, DBDemand: 90 * us, RequestBytes: 310, ResponseBytes: 16 * kb, LogBytes: 850},
	{Name: "ViewComment", WebDemand: 440 * us, AppDemand: 850 * us, DBQueries: 2, DBDemand: 85 * us, RequestBytes: 300, ResponseBytes: 9 * kb, LogBytes: 650},
	{Name: "PostCommentForm", WebDemand: 360 * us, AppDemand: 400 * us, DBQueries: 1, DBDemand: 70 * us, RequestBytes: 280, ResponseBytes: 5 * kb, LogBytes: 450},
	{Name: "StoreComment", Write: true, WebDemand: 440 * us, AppDemand: 900 * us, DBQueries: 3, DBDemand: 130 * us, RequestBytes: 1200, ResponseBytes: 3 * kb, LogBytes: 1000},
	{Name: "ModerateCommentForm", WebDemand: 360 * us, AppDemand: 450 * us, DBQueries: 1, DBDemand: 75 * us, RequestBytes: 280, ResponseBytes: 5 * kb, LogBytes: 450},
	{Name: "StoreModerateLog", Write: true, WebDemand: 400 * us, AppDemand: 700 * us, DBQueries: 2, DBDemand: 110 * us, RequestBytes: 500, ResponseBytes: 2 * kb, LogBytes: 800},
	{Name: "SubmitStoryForm", WebDemand: 360 * us, AppDemand: 350 * us, DBQueries: 0, DBDemand: 0, RequestBytes: 260, ResponseBytes: 4 * kb, LogBytes: 400},
	{Name: "StoreStory", Write: true, WebDemand: 480 * us, AppDemand: 1000 * us, DBQueries: 3, DBDemand: 140 * us, RequestBytes: 2 * kb, ResponseBytes: 3 * kb, LogBytes: 1200},
	{Name: "SearchForm", WebDemand: 320 * us, AppDemand: 300 * us, DBQueries: 0, DBDemand: 0, RequestBytes: 250, ResponseBytes: 4 * kb, LogBytes: 380},
	{Name: "SearchInStories", WebDemand: 480 * us, AppDemand: 1200 * us, DBQueries: 2, DBDemand: 150 * us, RequestBytes: 350, ResponseBytes: 11 * kb, LogBytes: 800},
	{Name: "SearchInComments", WebDemand: 480 * us, AppDemand: 1150 * us, DBQueries: 2, DBDemand: 150 * us, RequestBytes: 350, ResponseBytes: 10 * kb, LogBytes: 780},
	{Name: "SearchInUsers", WebDemand: 440 * us, AppDemand: 800 * us, DBQueries: 1, DBDemand: 120 * us, RequestBytes: 340, ResponseBytes: 7 * kb, LogBytes: 600},
	{Name: "AuthorLoginForm", WebDemand: 320 * us, AppDemand: 250 * us, DBQueries: 0, DBDemand: 0, RequestBytes: 240, ResponseBytes: 3 * kb, LogBytes: 350},
	{Name: "AuthorLogin", WebDemand: 400 * us, AppDemand: 600 * us, DBQueries: 1, DBDemand: 90 * us, RequestBytes: 420, ResponseBytes: 4 * kb, LogBytes: 550},
	{Name: "AuthorTasks", WebDemand: 400 * us, AppDemand: 700 * us, DBQueries: 2, DBDemand: 90 * us, RequestBytes: 300, ResponseBytes: 8 * kb, LogBytes: 600},
	{Name: "ReviewStories", WebDemand: 440 * us, AppDemand: 900 * us, DBQueries: 2, DBDemand: 100 * us, RequestBytes: 300, ResponseBytes: 12 * kb, LogBytes: 700},
	{Name: "AcceptStory", Write: true, WebDemand: 400 * us, AppDemand: 750 * us, DBQueries: 2, DBDemand: 120 * us, RequestBytes: 450, ResponseBytes: 2 * kb, LogBytes: 850},
	{Name: "RejectStory", Write: true, WebDemand: 400 * us, AppDemand: 700 * us, DBQueries: 2, DBDemand: 110 * us, RequestBytes: 450, ResponseBytes: 2 * kb, LogBytes: 800},
}

// Mix is a weighted interaction mix. Weights need not sum to one.
type Mix struct {
	Name         string
	Interactions []Interaction
	Weights      []float64
}

// browseWeights emphasizes the Slashdot-style browsing path.
var browseWeights = map[string]float64{
	"StoriesOfTheDay":         18,
	"BrowseCategories":        8,
	"BrowseStoriesByCategory": 12,
	"OlderStories":            7,
	"ViewStory":               22,
	"ViewComment":             16,
	"SearchForm":              2,
	"SearchInStories":         4,
	"SearchInComments":        2,
	"SearchInUsers":           1,
	"AuthorLoginForm":         1,
	"AuthorLogin":             1,
	"AuthorTasks":             1,
	"ReviewStories":           2,
	"RegisterUserForm":        1,
	"PostCommentForm":         1.5,
	"ModerateCommentForm":     0.5,
	"SubmitStoryForm":         1,
}

// readWriteExtra adds the write path on top of browsing.
var readWriteExtra = map[string]float64{
	"RegisterUser":     1,
	"StoreComment":     5,
	"StoreModerateLog": 1,
	"StoreStory":       1.5,
	"AcceptStory":      0.5,
	"RejectStory":      0.5,
}

func buildMix(name string, weightsOf func(Interaction) float64) Mix {
	m := Mix{Name: name}
	for _, it := range Interactions {
		w := weightsOf(it)
		if w <= 0 {
			continue
		}
		m.Interactions = append(m.Interactions, it)
		m.Weights = append(m.Weights, w)
	}
	return m
}

// BrowseOnlyMix is RUBBoS's browsing-only workload: no write
// interactions.
func BrowseOnlyMix() Mix {
	return buildMix("browse-only", func(it Interaction) float64 {
		if it.Write {
			return 0
		}
		return browseWeights[it.Name]
	})
}

// ReadWriteMix is RUBBoS's read/write interaction mix (~10% writes).
func ReadWriteMix() Mix {
	return buildMix("read-write", func(it Interaction) float64 {
		if it.Write {
			return readWriteExtra[it.Name]
		}
		return browseWeights[it.Name]
	})
}

// MeanDemands returns the weighted mean per-tier demands of the mix, for
// capacity planning and calibration tests.
func (m Mix) MeanDemands() (web, app, db sim.Time) {
	var total float64
	var webSum, appSum, dbSum float64
	for i, it := range m.Interactions {
		w := m.Weights[i]
		total += w
		webSum += w * float64(it.WebDemand)
		appSum += w * float64(it.AppDemand)
		dbSum += w * float64(it.DBDemand) * float64(it.DBQueries)
	}
	if total == 0 {
		return 0, 0, 0
	}
	return sim.Time(webSum / total), sim.Time(appSum / total), sim.Time(dbSum / total)
}

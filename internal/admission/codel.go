package admission

import (
	"math"
	"time"
)

// codelState is the CoDel control law (Nichols & Jacobson, "Controlling
// Queue Delay") applied to the pre-dispatch wait: judge each dequeued
// request by how long it waited (its sojourn), enter a dropping state
// once sojourns have stayed above target for a full interval, and while
// dropping shed on the drop-next schedule — the gap to the next drop
// shrinks as interval/√count, so pressure ramps until sojourns recover.
//
// The state machine is substrate-agnostic: both the simulator's
// deterministic queue and the proxy's waiter handoff call onDequeue
// with their own clocks. Guarded by Gate.cmu — only requests that
// actually waited ever touch it, so the admit fast path stays
// lock-free.
type codelState struct {
	target   time.Duration
	interval time.Duration

	// firstAbove is the deadline by which sojourns must recover below
	// target before dropping starts; zero means the queue is not
	// currently above target.
	firstAbove time.Duration
	dropNext   time.Duration
	count      int
	lastCount  int
	dropping   bool
}

// onDequeue judges one dequeued request; true means drop it.
func (c *codelState) onDequeue(now, sojourn time.Duration) bool {
	if sojourn < c.target {
		// Recovered: leave the dropping state and rearm the interval.
		c.firstAbove = 0
		c.dropping = false
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.interval
		return false
	}
	if now < c.firstAbove {
		return false
	}
	// Sojourns have been above target for at least a full interval.
	if !c.dropping {
		c.dropping = true
		// Resume near the previous episode's drop cadence if it ended
		// recently; a fresh overload starts the schedule from one.
		if c.count > 2 && now-c.dropNext < 8*c.interval {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = c.controlLaw(now)
		return true
	}
	if now >= c.dropNext {
		c.count++
		c.dropNext = c.controlLaw(now)
		return true
	}
	return false
}

// controlLaw spaces the next drop at interval/√count past now.
func (c *codelState) controlLaw(now time.Duration) time.Duration {
	return now + time.Duration(float64(c.interval)/math.Sqrt(float64(c.count)))
}

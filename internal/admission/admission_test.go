package admission

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    *Config
		wantErr bool
	}{
		{spec: "", want: nil},
		{spec: "off", want: nil},
		{spec: "none", want: nil},
		{spec: "fixed", want: &Config{Limiter: LimiterStatic}},
		{spec: "static:32", want: &Config{Limiter: LimiterStatic, Limit: 32}},
		{spec: "aimd", want: &Config{Limiter: LimiterAIMD}},
		{spec: "codel+gradient", want: &Config{Limiter: LimiterGradient, CoDel: true}},
		{spec: "codel+gradient+lifo", want: &Config{Limiter: LimiterGradient, CoDel: true, LIFO: true}},
		{spec: "static:x", wantErr: true},
		{spec: "bogus", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if (got == nil) != (c.want == nil) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
			continue
		}
		if got != nil && *got != *c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, *got, *c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (&Config{Limiter: "bogus"}).Validate(); err == nil {
		t.Fatal("unknown limiter accepted")
	}
	if err := (&Config{BackgroundHeadroom: 2}).Validate(); err == nil {
		t.Fatal("headroom > 1 accepted")
	}
	if err := (&Config{MaxWait: -1}).Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Fatalf("nil config: %v", err)
	}
	if err := (&Config{Limiter: LimiterGradient, CoDel: true}).Validate(); err != nil {
		t.Fatalf("codel+gradient: %v", err)
	}
}

func TestGateLimitAndHeadroom(t *testing.T) {
	g := NewGate(Config{Limit: 10}, 64)
	if got := g.Limit(); got != 10 {
		t.Fatalf("Limit = %d, want 10", got)
	}
	// Background sees only 80% of the limit (8 slots).
	for i := 0; i < 8; i++ {
		if !g.TryAcquire(Background) {
			t.Fatalf("background acquire %d refused", i)
		}
	}
	if g.TryAcquire(Background) {
		t.Fatal("background admitted past headroom")
	}
	// Interactive still has the remaining 2 slots.
	if !g.TryAcquire(Interactive) || !g.TryAcquire(Interactive) {
		t.Fatal("interactive refused within limit")
	}
	if g.TryAcquire(Interactive) {
		t.Fatal("interactive admitted past limit")
	}
	if got := g.InFlight(); got != 10 {
		t.Fatalf("InFlight = %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		g.Release(0, time.Millisecond, true)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
	st := g.Stats()
	if st.Admitted != 10 || st.AdmittedBackground != 8 {
		t.Fatalf("Stats admitted = %d/%d, want 10/8", st.Admitted, st.AdmittedBackground)
	}
}

func TestFixedShedIsUncontendedPassThrough(t *testing.T) {
	// The Resilience delegation: a static gate at the pool size with a
	// bounded wait, no CoDel, no adaptation.
	g := NewGate(*FixedShed(750*time.Millisecond), 64)
	if g.MaxWait() != 750*time.Millisecond {
		t.Fatalf("MaxWait = %v", g.MaxWait())
	}
	if g.Limit() != 64 {
		t.Fatalf("Limit = %d, want worker-pool 64", g.Limit())
	}
	if g.CoDelEnabled() {
		t.Fatal("CoDel armed in fixed-shed mode")
	}
	for i := 0; i < 64; i++ {
		if !g.TryAcquire(Interactive) {
			t.Fatalf("acquire %d refused", i)
		}
	}
	if g.TryAcquire(Interactive) {
		t.Fatal("admitted past pool size")
	}
	// Releases never move a static limit.
	for i := 0; i < 64; i++ {
		g.Release(time.Duration(i)*time.Second, 5*time.Second, false)
	}
	if g.Limit() != 64 {
		t.Fatalf("static limit moved to %d", g.Limit())
	}
}

func TestLimiterNoneIsUnbounded(t *testing.T) {
	g := NewGate(Config{Limiter: LimiterNone}, 8)
	for i := 0; i < 1000; i++ {
		if !g.TryAcquire(Interactive) {
			t.Fatalf("acquire %d refused", i)
		}
	}
	if st := g.Stats(); st.Limit != 0 {
		t.Fatalf("unlimited gate reports limit %d", st.Limit)
	}
}

// TestCoDelDropScheduleMonotone is the drop-schedule property test:
// under persistent overload the gaps between successive drops follow
// interval/√count, so they must be non-increasing — pressure ramps
// until sojourns recover, never backs off on its own.
func TestCoDelDropScheduleMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		target := time.Duration(1+rng.IntN(80)) * time.Millisecond
		interval := target + time.Duration(1+rng.IntN(200))*time.Millisecond
		c := codelState{target: target, interval: interval}
		step := interval / 50
		if step <= 0 {
			step = time.Millisecond
		}
		var drops []time.Duration
		for now := time.Duration(0); now < 100*interval; now += step {
			// Sojourn stays far above target the whole run.
			if c.onDequeue(now, target+interval) {
				drops = append(drops, now)
			}
		}
		if len(drops) < 10 {
			t.Fatalf("trial %d (target=%v interval=%v): only %d drops", trial, target, interval, len(drops))
		}
		for i := 2; i < len(drops); i++ {
			prev := drops[i-1] - drops[i-2]
			cur := drops[i] - drops[i-1]
			// Quantized to the step size; allow one step of slack.
			if cur > prev+step {
				t.Fatalf("trial %d (target=%v interval=%v): drop gap grew %v -> %v at drop %d",
					trial, target, interval, prev, cur, i)
			}
		}
	}
}

func TestCoDelRecoveryExitsDropping(t *testing.T) {
	c := codelState{target: 50 * time.Millisecond, interval: 100 * time.Millisecond}
	now := time.Duration(0)
	dropped := false
	for ; now < time.Second; now += 10 * time.Millisecond {
		if c.onDequeue(now, 200*time.Millisecond) {
			dropped = true
		}
	}
	if !dropped || !c.dropping {
		t.Fatalf("overload did not enter dropping state (dropped=%v dropping=%v)", dropped, c.dropping)
	}
	if c.onDequeue(now, time.Millisecond) {
		t.Fatal("below-target sojourn dropped")
	}
	if c.dropping {
		t.Fatal("below-target sojourn did not exit dropping state")
	}
	// A fresh excursion must again survive a full interval first.
	if c.onDequeue(now+time.Millisecond, 200*time.Millisecond) {
		t.Fatal("dropped without a full interval above target")
	}
}

// TestGradientConvergence drives the gradient limiter against a
// synthetic closed-loop latency model — RTT inflates linearly once the
// limit exceeds the backend's capacity — and asserts the limit
// converges into the Vegas band around capacity and stays there. The
// run starts below capacity so the no-load floor is observed first,
// as it is in a real run's warm-up (a Vegas limiter that has never
// seen an uncongested RTT has no floor to steer by).
func TestGradientConvergence(t *testing.T) {
	const (
		base     = 10 * time.Millisecond
		capacity = 20
	)
	g := NewGate(Config{Limiter: LimiterGradient, Limit: 16, MaxLimit: 128}, 128)
	rtt := func(limit int) time.Duration {
		if limit <= capacity {
			return base
		}
		return base * time.Duration(limit) / capacity
	}
	var trail []int
	for now := time.Duration(0); now < 60*time.Second; now += time.Millisecond {
		if !g.TryAcquire(Interactive) {
			t.Fatalf("acquire refused at %v (limit=%d inflight=%d)", now, g.Limit(), g.InFlight())
		}
		g.Release(now, rtt(g.Limit()), true)
		if now >= 55*time.Second && now%(100*time.Millisecond) == 0 {
			trail = append(trail, g.Limit())
		}
	}
	// Equilibrium of limit = limit·(tol·base/rtt(limit)) + √limit with
	// tol=1.5 is ≈ tol·capacity + √limit ≈ 36; accept a generous band
	// that still proves the limit tracked capacity down from 100.
	for _, l := range trail {
		if l < capacity || l > 3*capacity {
			t.Fatalf("limit %d outside convergence band [%d, %d]; trail %v", l, capacity, 3*capacity, trail)
		}
	}
	if len(g.Adjustments()) == 0 {
		t.Fatal("no adjustments recorded")
	}
}

func TestGradientRecoversAfterStall(t *testing.T) {
	g := NewGate(Config{Limiter: LimiterGradient, Limit: 64, MaxLimit: 64}, 64)
	now := time.Duration(0)
	feed := func(d, rtt time.Duration) {
		for end := now + d; now < end; now += time.Millisecond {
			if g.TryAcquire(Interactive) {
				g.Release(now, rtt, true)
			}
		}
	}
	feed(5*time.Second, 5*time.Millisecond) // establish the no-load floor
	before := g.Limit()
	feed(3*time.Second, 200*time.Millisecond) // millibottleneck inflates RTT
	during := g.Limit()
	if during >= before {
		t.Fatalf("limit did not shrink under congestion: %d -> %d", before, during)
	}
	feed(30*time.Second, 5*time.Millisecond) // stall clears
	after := g.Limit()
	if after <= during {
		t.Fatalf("limit did not regrow after recovery: %d -> %d", during, after)
	}
}

func TestAIMDBackoffAndIncrease(t *testing.T) {
	g := NewGate(Config{Limiter: LimiterAIMD, Limit: 50, MaxLimit: 100}, 100)
	// One slow response per cooldown window backs the limit off.
	g.TryAcquire(Interactive)
	g.Release(time.Second, time.Second, true)
	if got := g.Limit(); got != 45 {
		t.Fatalf("limit after backoff = %d, want 45", got)
	}
	// A second breach within the cooldown window is absorbed.
	g.TryAcquire(Interactive)
	g.Release(time.Second+10*time.Millisecond, time.Second, true)
	if got := g.Limit(); got != 45 {
		t.Fatalf("limit after cooldown-absorbed breach = %d, want 45", got)
	}
	// A limit's worth of clean completions earns one slot back.
	now := 10 * time.Second
	for i := 0; i < 45; i++ {
		g.TryAcquire(Interactive)
		g.Release(now, time.Millisecond, true)
	}
	if got := g.Limit(); got != 46 {
		t.Fatalf("limit after additive increase = %d, want 46", got)
	}
}

func TestTightenHalvesAndRelaxRestores(t *testing.T) {
	g := NewGate(Config{Limit: 40}, 64)
	g.Tighten(true)
	if got := g.Limit(); got != 20 {
		t.Fatalf("tightened limit = %d, want 20", got)
	}
	if !g.Tightened() {
		t.Fatal("Tightened() false after Tighten(true)")
	}
	g.Tighten(true) // idempotent
	if got := g.Limit(); got != 20 {
		t.Fatalf("double tighten moved limit to %d", got)
	}
	g.Tighten(false)
	if got := g.Limit(); got != 40 {
		t.Fatalf("relaxed static limit = %d, want 40", got)
	}
	// Adaptive limiters are not force-restored; growth resumes instead.
	ga := NewGate(Config{Limiter: LimiterAIMD, Limit: 40, MaxLimit: 80}, 80)
	ga.Tighten(true)
	for i := 0; i < 100; i++ {
		ga.TryAcquire(Interactive)
		ga.Release(time.Duration(i)*time.Second, time.Millisecond, true)
	}
	if got := ga.Limit(); got != 20 {
		t.Fatalf("tightened aimd limit grew to %d", got)
	}
	ga.Tighten(false)
	for i := 0; i < 100; i++ {
		ga.TryAcquire(Interactive)
		ga.Release(time.Duration(100+i)*time.Second, time.Millisecond, true)
	}
	if got := ga.Limit(); got <= 20 {
		t.Fatalf("relaxed aimd limit did not regrow: %d", got)
	}
}

// fakeEngine is a minimal deterministic scheduler for Queue tests.
type fakeEngine struct {
	now    time.Duration
	events []fakeEvent
}

type fakeEvent struct {
	at time.Duration
	fn func()
}

func (e *fakeEngine) schedule(d time.Duration, fn func()) {
	e.events = append(e.events, fakeEvent{at: e.now + d, fn: fn})
}

func (e *fakeEngine) advance(to time.Duration) {
	for {
		best := -1
		for i, ev := range e.events {
			if ev.at <= to && (best < 0 || ev.at < e.events[best].at) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		ev := e.events[best]
		e.events = append(e.events[:best], e.events[best+1:]...)
		e.now = ev.at
		ev.fn()
	}
	e.now = to
}

func TestQueueHandoffAndTimeout(t *testing.T) {
	eng := &fakeEngine{}
	g := NewGate(Config{Limit: 1, MaxWait: 100 * time.Millisecond}, 1)
	q := NewQueue(g, func() time.Duration { return eng.now }, eng.schedule)

	if !g.TryAcquire(Interactive) {
		t.Fatal("first acquire refused")
	}
	var got []string
	q.Push(Interactive, func(ok bool) { got = append(got, map[bool]string{true: "a+", false: "a-"}[ok]) })
	q.Push(Interactive, func(ok bool) { got = append(got, map[bool]string{true: "b+", false: "b-"}[ok]) })
	if g.Queued() != 2 {
		t.Fatalf("Queued = %d, want 2", g.Queued())
	}
	// Release hands the slot to the oldest waiter (FIFO when calm).
	eng.advance(10 * time.Millisecond)
	g.Release(eng.now, time.Millisecond, true)
	if len(got) != 1 || got[0] != "a+" {
		t.Fatalf("after release got %v, want [a+]", got)
	}
	// The second waiter times out at MaxWait.
	eng.advance(200 * time.Millisecond)
	if len(got) != 2 || got[1] != "b-" {
		t.Fatalf("after timeout got %v, want [a+ b-]", got)
	}
	if g.Queued() != 0 {
		t.Fatalf("Queued = %d, want 0", g.Queued())
	}
	if st := g.Stats(); st.DropsMaxWait != 1 {
		t.Fatalf("DropsMaxWait = %d, want 1", st.DropsMaxWait)
	}
}

func TestQueueFullRefusesPush(t *testing.T) {
	eng := &fakeEngine{}
	g := NewGate(Config{Limit: 1, MaxQueue: 2}, 1)
	q := NewQueue(g, func() time.Duration { return eng.now }, eng.schedule)
	g.TryAcquire(Interactive)
	if !q.Push(Interactive, func(bool) {}) || !q.Push(Interactive, func(bool) {}) {
		t.Fatal("push refused below capacity")
	}
	if q.Push(Interactive, func(bool) {}) {
		t.Fatal("push accepted at capacity")
	}
}

func TestQueueLIFOUnderOverload(t *testing.T) {
	eng := &fakeEngine{}
	// MaxQueue 4 so two waiters (>= half) flip Overloaded, activating
	// LIFO; CoDel stays off so the judge never interferes.
	g := NewGate(Config{Limit: 1, LIFO: true, MaxQueue: 4, MaxWait: time.Second}, 1)
	q := NewQueue(g, func() time.Duration { return eng.now }, eng.schedule)
	g.TryAcquire(Interactive)
	var got []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		q.Push(Interactive, func(ok bool) {
			if ok {
				got = append(got, name)
			}
		})
	}
	if !g.LIFOActive() {
		t.Fatal("LIFO not active with a half-full queue")
	}
	eng.advance(time.Millisecond)
	g.Release(eng.now, time.Millisecond, true)
	if len(got) != 1 || got[0] != "c" {
		t.Fatalf("LIFO handoff got %v, want [c]", got)
	}
}

func TestQueueCoDelDropsStaleWaiters(t *testing.T) {
	eng := &fakeEngine{}
	g := NewGate(Config{
		Limit: 1, CoDel: true,
		Target: 10 * time.Millisecond, Interval: 20 * time.Millisecond,
		MaxWait: 10 * time.Second,
	}, 1)
	q := NewQueue(g, func() time.Duration { return eng.now }, eng.schedule)
	g.TryAcquire(Interactive)
	admitted, dropped := 0, 0
	resume := func(ok bool) {
		if ok {
			admitted++
			// Hold the slot briefly, then release — sojourns stay
			// above target, so CoDel keeps judging.
			eng.schedule(50*time.Millisecond, func() { g.Release(eng.now, 50*time.Millisecond, true) })
		} else {
			dropped++
		}
	}
	for i := 0; i < 40; i++ {
		q.Push(Interactive, resume)
	}
	eng.advance(time.Millisecond)
	g.Release(eng.now, time.Millisecond, true)
	eng.advance(20 * time.Second)
	if dropped == 0 {
		t.Fatalf("CoDel never dropped (admitted=%d)", admitted)
	}
	if admitted+dropped != 40 {
		t.Fatalf("resumed %d+%d of 40 waiters", admitted, dropped)
	}
	if st := g.Stats(); st.DropsCoDel == 0 {
		t.Fatal("DropsCoDel = 0")
	}
}

// TestGateHotSwapStress races dispatchers against limit churn
// (SetLimit / Tighten) — run under -race in CI, kept on in -short.
func TestGateHotSwapStress(t *testing.T) {
	g := NewGate(Config{Limiter: LimiterGradient, Limit: 32, MinLimit: 4, MaxLimit: 64, CoDel: true}, 64)
	const workers = 8
	iters := 20000
	if testing.Short() {
		iters = 5000
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				g.SetLimit(4 + i%60)
			case 1:
				g.Tighten(true)
			case 2:
				g.Tighten(false)
			case 3:
				g.JudgeSojourn(time.Duration(i)*time.Millisecond, 100*time.Millisecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cls := Interactive
			if w%3 == 0 {
				cls = Background
			}
			for i := 0; i < iters; i++ {
				if g.TryAcquire(cls) {
					g.Release(time.Duration(i)*time.Microsecond, time.Duration(i%2000)*time.Microsecond, i%7 != 0)
				} else {
					g.Drop(time.Duration(i)*time.Microsecond, cls, ReasonPriority)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after stress = %d, want 0", got)
	}
	if l := g.Limit(); l < 4 || l > 64 {
		t.Fatalf("limit %d escaped [4, 64]", l)
	}
}

// TestAdmittedPathZeroAlloc locks the acceptance criterion: the
// admitted fast path — acquire, release, limiter feed — allocates
// nothing on either substrate (both drive these exact methods).
func TestAdmittedPathZeroAlloc(t *testing.T) {
	g := NewGate(Config{Limiter: LimiterGradient, CoDel: true, Limit: 64}, 64)
	now := time.Duration(0)
	allocs := testing.AllocsPerRun(2000, func() {
		now += 50 * time.Microsecond
		if g.TryAcquire(Interactive) {
			g.Release(now, time.Millisecond, true)
		}
	})
	// The adjustment trace appends (amortized, bounded at the ring
	// cap) are the only permitted allocations; at a fixed RTT the
	// limit converges and the trace goes quiet, so demand zero.
	if allocs != 0 {
		t.Fatalf("admitted path allocates %v/op", allocs)
	}
	gs := NewGate(*FixedShed(time.Second), 64)
	allocs = testing.AllocsPerRun(2000, func() {
		if gs.TryAcquire(Interactive) {
			gs.Release(0, time.Millisecond, true)
		}
	})
	if allocs != 0 {
		t.Fatalf("fixed-shed admitted path allocates %v/op", allocs)
	}
}

func TestDropRateWindow(t *testing.T) {
	g := NewGate(Config{Limit: 1}, 1)
	for i := 0; i < 10; i++ {
		g.Drop(time.Duration(i)*time.Millisecond, Interactive, ReasonMaxWait)
	}
	if r := g.DropRate(time.Second); r != 10 {
		t.Fatalf("DropRate = %v, want 10/s", r)
	}
	if r := g.DropRate(2 * time.Second); r != 0 {
		t.Fatalf("quiet window DropRate = %v, want 0", r)
	}
}

package admission

import "time"

// Queue is the deterministic pre-dispatch wait line the simulator puts
// in front of a Gate. It is not goroutine-safe: every method runs on
// the engine thread, timestamps come from the injected clock, and
// timeouts are engine events scheduled through the injected scheduler,
// so a run replays byte-identically. (The wall-clock proxy does not
// use Queue — it parks real goroutines on channels instead; see
// internal/httpcluster.)
type Queue struct {
	g        *Gate
	now      func() time.Duration
	schedule func(d time.Duration, fn func())
	items    []*qitem
}

type qitem struct {
	enq    time.Duration
	cls    Class
	resume func(admitted bool)
	done   bool
}

// NewQueue wires a queue to its gate: the gate's release hook drains
// the queue, handing freed slots to waiters through the CoDel judge.
func NewQueue(g *Gate, now func() time.Duration, schedule func(d time.Duration, fn func())) *Queue {
	q := &Queue{g: g, now: now, schedule: schedule}
	g.SetReleaseHook(q.drain)
	return q
}

// Push parks a request waiting for admission; resume is invoked
// exactly once — admitted true when a slot was handed over, false when
// the wait timed out or CoDel dropped it (both already recorded via
// Gate.Drop). Push returns false, without consuming resume, when the
// queue is full; the caller sheds.
func (q *Queue) Push(cls Class, resume func(admitted bool)) bool {
	if len(q.items) >= q.g.MaxQueue() {
		return false
	}
	it := &qitem{enq: q.now(), cls: cls, resume: resume}
	q.items = append(q.items, it)
	q.g.EnterQueue()
	q.schedule(q.g.MaxWait(), func() { q.expire(it) })
	return true
}

// expire sheds a waiter that reached MaxWait without admission.
func (q *Queue) expire(it *qitem) {
	if it.done {
		return
	}
	it.done = true
	for i, cur := range q.items {
		if cur == it {
			q.items = append(q.items[:i], q.items[i+1:]...)
			break
		}
	}
	q.g.LeaveQueue()
	q.g.Drop(q.now(), it.cls, ReasonMaxWait)
	it.resume(false)
}

// drain runs on every gate release: while capacity is free and waiters
// remain, pop one (newest-first when LIFO-on-overload is active),
// judge its sojourn, and either hand it the slot or shed it and try
// the next.
func (q *Queue) drain() {
	for len(q.items) > 0 {
		if !q.g.TryAcquire(Interactive) {
			return
		}
		var it *qitem
		if q.g.LIFOActive() {
			it = q.items[len(q.items)-1]
			q.items = q.items[:len(q.items)-1]
		} else {
			it = q.items[0]
			q.items = q.items[1:]
		}
		it.done = true
		q.g.LeaveQueue()
		now := q.now()
		if q.g.JudgeSojourn(now, now-it.enq) {
			q.g.Cancel()
			q.g.Drop(now, it.cls, ReasonCoDel)
			it.resume(false)
			continue
		}
		it.resume(true)
		return
	}
}

// Len returns the number of waiting requests.
func (q *Queue) Len() int { return len(q.items) }

// Package admission is the overload-control plane shared by both
// substrates: the deterministic simulator (internal/cluster wires a
// Gate plus a Queue in front of every web server, driven entirely by
// the engine clock so replay stays byte-deterministic) and the
// wall-clock proxy (internal/httpcluster wires a Gate in front of its
// worker pool, with channel-based waiters).
//
// The paper's core failure mode is queue amplification: a
// millibottleneck lasting tens of milliseconds piles requests into
// upstream queues and worker pools, producing very-long-response-time
// requests long after the stall clears. Load balancing alone cannot
// fully remedy that — the complement is bounding what you admit. The
// plane is three composable mechanisms:
//
//   - an adaptive concurrency limiter (static, AIMD, or Vegas-style
//     gradient) capping how many requests may be in flight at once;
//   - a CoDel queue discipline judging the pre-dispatch wait (target
//     sojourn / interval / drop-next schedule), with an optional
//     LIFO-on-overload mode so fresh requests survive a
//     millibottleneck instead of the whole queue timing out;
//   - two-class priority shedding: background requests only get the
//     limit's headroom and never queue, so degradation is graded.
//
// The Gate's admit and release paths are lock-free (one CAS on a
// packed limit|in-flight word plus atomic counter updates) and
// allocation-free; mutexes guard only the CoDel state machine (touched
// only by requests that actually waited) and the adjustment trace.
// Every method that needs a timestamp takes it explicitly, so the
// simulator passes engine time and the proxy passes wall time since
// its epoch through the same code.
package admission

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Class is the request priority class.
type Class uint8

const (
	// Interactive requests may wait (up to MaxWait) for admission.
	Interactive Class = iota
	// Background requests are admitted only into the limit's headroom
	// and are shed immediately — never queued — when it is exhausted.
	Background

	classCount
)

// String names the class for events and logs.
func (c Class) String() string {
	if c == Background {
		return "background"
	}
	return "interactive"
}

// Reason says why a request was shed.
type Reason uint8

const (
	// ReasonPriority: a background request found no headroom.
	ReasonPriority Reason = iota
	// ReasonQueueFull: the pre-dispatch wait queue was at capacity.
	ReasonQueueFull
	// ReasonMaxWait: the request waited MaxWait without being admitted.
	ReasonMaxWait
	// ReasonCoDel: the CoDel discipline dropped the request at dequeue.
	ReasonCoDel

	reasonCount
)

// String names the reason for events and logs.
func (r Reason) String() string {
	switch r {
	case ReasonPriority:
		return "priority"
	case ReasonQueueFull:
		return "queue_full"
	case ReasonMaxWait:
		return "max_wait"
	default:
		return "codel"
	}
}

// Limiter names accepted by Config.Limiter.
const (
	LimiterStatic   = "static"
	LimiterAIMD     = "aimd"
	LimiterGradient = "gradient"
	LimiterNone     = "none"
)

// Config selects and tunes the overload-control mechanisms. The zero
// value is usable: a static limiter at the substrate's default limit
// with a one-second bounded wait and no CoDel — exactly the proxy's
// historical fixed bounded-wait shed.
type Config struct {
	// Limiter selects the concurrency limiter: "static" (default),
	// "aimd", "gradient", or "none" (no concurrency cap — queue
	// discipline only).
	Limiter string
	// Limit is the static limit and the adaptive limiters' starting
	// point. Zero lets the substrate pick (the simulator uses the web
	// worker count, the proxy its worker pool size).
	Limit int
	// MinLimit floors the adaptive limiters and Tighten. Default 4.
	MinLimit int
	// MaxLimit caps the adaptive limiters. Zero means the substrate's
	// physical concurrency (worker pool size); the limiter never grows
	// past what the pool can actually run.
	MaxLimit int

	// MaxWait bounds the pre-dispatch wait; a request still queued
	// after MaxWait is shed. Default 1s (the historical ShedAfter).
	MaxWait time.Duration
	// MaxQueue bounds how many requests may wait at once. Default 256.
	MaxQueue int

	// CoDel arms the CoDel discipline on the pre-dispatch wait.
	CoDel bool
	// Target is the acceptable standing sojourn time. Default 50ms.
	Target time.Duration
	// Interval is the CoDel control interval: sojourns must stay above
	// Target for a full Interval before dropping starts. Default 100ms.
	Interval time.Duration
	// LIFO serves the wait queue newest-first while the gate is
	// overloaded, so fresh requests (whose clients are still waiting)
	// survive a millibottleneck instead of the whole queue timing out.
	LIFO bool

	// BackgroundHeadroom is the fraction of the limit available to
	// background-class requests. Default 0.8.
	BackgroundHeadroom float64

	// AIMDBackoff is the multiplicative-decrease factor applied when a
	// request fails or breaches AIMDLatency. Default 0.9.
	AIMDBackoff float64
	// AIMDLatency is the response-time threshold treated as congestion
	// by the AIMD limiter. Default 200ms.
	AIMDLatency time.Duration

	// Smoothing is the gradient limiter's update weight. Default 0.2.
	Smoothing float64
	// RTTTolerance scales the no-load/observed RTT ratio before it
	// shrinks the gradient limit; observed RTTs within Tolerance× the
	// no-load floor are not congestion. Default 1.5.
	RTTTolerance float64
	// AdjustEvery spaces adaptive limit updates. Default = Interval.
	AdjustEvery time.Duration
}

// FixedShed is the admission configuration equivalent to the proxy's
// historical bounded-wait shed: a static concurrency gate sized to the
// worker pool, a bounded pre-dispatch wait of the given duration, and
// no CoDel. Used by the Resilience delegation so a nil Admission
// config keeps byte-identical baseline behavior.
func FixedShed(wait time.Duration) *Config {
	return &Config{Limiter: LimiterStatic, MaxWait: wait}
}

// ParseSpec builds a Config from a compact command-line spec: one or
// more '+'-joined tokens, e.g. "fixed", "codel+gradient",
// "codel+gradient+lifo", "static:32", "aimd". An empty spec or "off"
// returns nil (admission disabled).
func ParseSpec(spec string) (*Config, error) {
	spec = strings.TrimSpace(strings.ToLower(spec))
	if spec == "" || spec == "off" || spec == "none" {
		return nil, nil
	}
	cfg := &Config{}
	for _, tok := range strings.Split(spec, "+") {
		name, arg, hasArg := strings.Cut(tok, ":")
		switch name {
		case "fixed", "shed", "static":
			cfg.Limiter = LimiterStatic
			if hasArg {
				n, err := strconv.Atoi(arg)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("admission spec %q: bad limit %q", spec, arg)
				}
				cfg.Limit = n
			}
		case "aimd":
			cfg.Limiter = LimiterAIMD
		case "gradient", "vegas":
			cfg.Limiter = LimiterGradient
		case "codel":
			cfg.CoDel = true
		case "lifo":
			cfg.LIFO = true
		default:
			return nil, fmt.Errorf("admission spec %q: unknown token %q (have fixed, static[:n], aimd, gradient, codel, lifo)", spec, name)
		}
	}
	return cfg, nil
}

// Validate rejects configurations NewGate would silently misread.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	switch c.Limiter {
	case "", LimiterStatic, LimiterAIMD, LimiterGradient, LimiterNone:
	default:
		return fmt.Errorf("admission: unknown limiter %q (have static, aimd, gradient, none)", c.Limiter)
	}
	if c.Limit < 0 || c.MinLimit < 0 || c.MaxLimit < 0 || c.MaxQueue < 0 {
		return fmt.Errorf("admission: negative limit/queue bound")
	}
	if c.MaxWait < 0 || c.Target < 0 || c.Interval < 0 || c.AdjustEvery < 0 {
		return fmt.Errorf("admission: negative duration")
	}
	if c.BackgroundHeadroom < 0 || c.BackgroundHeadroom > 1 {
		return fmt.Errorf("admission: BackgroundHeadroom %v outside [0,1]", c.BackgroundHeadroom)
	}
	return nil
}

// withDefaults fills zero fields. fallbackLimit is the substrate's
// physical concurrency (worker pool size); it seeds Limit and caps
// MaxLimit so the limiter never promises concurrency the pool cannot
// run.
func (c Config) withDefaults(fallbackLimit int) Config {
	if c.Limiter == "" {
		c.Limiter = LimiterStatic
	}
	if fallbackLimit < 1 {
		fallbackLimit = 64
	}
	if c.Limit == 0 {
		c.Limit = fallbackLimit
	}
	if c.MinLimit == 0 {
		c.MinLimit = 4
	}
	if c.MaxLimit == 0 {
		c.MaxLimit = fallbackLimit
	}
	if c.MaxLimit < c.Limit {
		c.MaxLimit = c.Limit
	}
	if c.MinLimit > c.Limit {
		c.MinLimit = c.Limit
	}
	if c.MaxWait == 0 {
		c.MaxWait = time.Second
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.Target == 0 {
		c.Target = 50 * time.Millisecond
	}
	if c.Interval == 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.BackgroundHeadroom == 0 {
		c.BackgroundHeadroom = 0.8
	}
	if c.AIMDBackoff == 0 {
		c.AIMDBackoff = 0.9
	}
	if c.AIMDLatency == 0 {
		c.AIMDLatency = 200 * time.Millisecond
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.2
	}
	if c.RTTTolerance == 0 {
		c.RTTTolerance = 1.5
	}
	if c.AdjustEvery == 0 {
		c.AdjustEvery = c.Interval
	}
	return c
}

// Packed gate word: | limit : 32 | in-flight : 32 |. One atomic load
// yields a consistent (limit, in-flight) pair; admission is a single
// CAS of word → word+1, release a single decrement (in-flight > 0 is
// guaranteed by the caller contract, so the subtraction never borrows
// into the limit field).

// unlimitedLimit is the limit encoding for Limiter "none": large
// enough that in-flight can never reach it.
const unlimitedLimit = math.MaxInt32

func packWord(limit, inflight uint32) uint64 {
	return uint64(limit)<<32 | uint64(inflight)
}

// Adjustment is one recorded limit change, exposed on the proxy's
// /admin/admission endpoint and by Gate.Adjustments.
type Adjustment struct {
	T      time.Duration `json:"t"`
	Limit  int           `json:"limit"`
	Reason string        `json:"reason"`
}

// Stats is a point-in-time snapshot of a gate.
type Stats struct {
	Limiter            string `json:"limiter"`
	CoDel              bool   `json:"codel"`
	LIFO               bool   `json:"lifo,omitempty"`
	Limit              int    `json:"limit"`
	InFlight           int    `json:"in_flight"`
	Queued             int    `json:"queued"`
	Tightened          bool   `json:"tightened,omitempty"`
	Admitted           uint64 `json:"admitted"`
	AdmittedBackground uint64 `json:"admitted_background"`
	Dropped            uint64 `json:"dropped"`
	DropsPriority      uint64 `json:"drops_priority"`
	DropsQueueFull     uint64 `json:"drops_queue_full"`
	DropsMaxWait       uint64 `json:"drops_max_wait"`
	DropsCoDel         uint64 `json:"drops_codel"`
}

// adjustTraceCap bounds the adjustment ring: at the default 100ms
// adjust cadence it holds the last ~50s of limit history.
const adjustTraceCap = 512

// Gate is one admission-control instance: a lock-free concurrency
// gate, its limiter, and the CoDel judge for the pre-dispatch wait.
// TryAcquire / Cancel / Release / Drop are safe for concurrent use and
// allocation-free. The hooks (SetDropHook, SetReleaseHook, SetClock)
// must be installed before traffic starts.
type Gate struct {
	cfg          Config
	bgNum, bgDen uint32

	word     atomic.Uint64
	queued   atomic.Int64
	tight    atomic.Bool
	dropping atomic.Bool

	admitted [classCount]atomic.Uint64
	drops    [reasonCount]atomic.Uint64

	lim limiterState

	cmu sync.Mutex
	cod codelState

	tmu       sync.Mutex
	trace     []Adjustment
	traceNext int
	rateT     time.Duration
	rateN     uint64
	rate      float64

	onDrop    func(now time.Duration, cls Class, r Reason)
	onRelease func()
	clock     func() time.Duration
}

// NewGate builds a gate. fallbackLimit is the substrate's physical
// concurrency (see Config.withDefaults).
func NewGate(cfg Config, fallbackLimit int) *Gate {
	cfg = cfg.withDefaults(fallbackLimit)
	g := &Gate{cfg: cfg}
	// Background headroom as an integer fraction so the admit path
	// stays float-free: threshold = limit * bgNum / bgDen.
	g.bgNum = uint32(math.Round(cfg.BackgroundHeadroom * 1024))
	g.bgDen = 1024
	limit := uint32(cfg.Limit)
	if cfg.Limiter == LimiterNone {
		limit = unlimitedLimit
	}
	g.word.Store(packWord(limit, 0))
	g.lim.init(cfg)
	g.cod = codelState{target: cfg.Target, interval: cfg.Interval}
	return g
}

// SetDropHook installs the drop callback (event emission). Not
// concurrency-safe; install before traffic starts.
func (g *Gate) SetDropHook(fn func(now time.Duration, cls Class, r Reason)) { g.onDrop = fn }

// SetReleaseHook installs the post-release callback the wait queue
// uses to hand freed slots to waiters. Install before traffic starts.
func (g *Gate) SetReleaseHook(fn func()) { g.onRelease = fn }

// SetClock installs the timestamp source used by methods without an
// explicit now (Tighten, SetLimit). Install before traffic starts.
func (g *Gate) SetClock(fn func() time.Duration) { g.clock = fn }

func (g *Gate) now() time.Duration {
	if g.clock != nil {
		return g.clock()
	}
	return 0
}

// TryAcquire admits the request iff the class's share of the limit has
// a free slot. Lock-free and allocation-free.
func (g *Gate) TryAcquire(cls Class) bool {
	for {
		w := g.word.Load()
		limit, infl := uint32(w>>32), uint32(w)
		threshold := limit
		if cls == Background && limit != unlimitedLimit {
			threshold = uint32((uint64(limit)*uint64(g.bgNum) + uint64(g.bgDen)/2) / uint64(g.bgDen))
		}
		if infl >= threshold {
			return false
		}
		if g.word.CompareAndSwap(w, w+1) {
			g.admitted[cls].Add(1)
			return true
		}
	}
}

// Cancel undoes a TryAcquire without feeding the limiter — used when
// an already-acquired slot is revoked (CoDel drop at handoff, or the
// substrate failing to place an admitted request).
func (g *Gate) Cancel() { g.word.Add(^uint64(0)) }

// Release frees the slot and feeds the observed response time to the
// limiter. ok distinguishes successful completions from failures (the
// AIMD limiter treats failures as congestion).
func (g *Gate) Release(now time.Duration, rtt time.Duration, ok bool) {
	g.word.Add(^uint64(0))
	g.lim.observe(g, now, rtt, ok)
	if g.onRelease != nil {
		g.onRelease()
	}
}

// JudgeSojourn runs the CoDel control law for a request dequeued after
// waiting sojourn; true means drop it. A no-op (never drop) when CoDel
// is disabled.
func (g *Gate) JudgeSojourn(now, sojourn time.Duration) bool {
	if !g.cfg.CoDel {
		return false
	}
	g.cmu.Lock()
	drop := g.cod.onDequeue(now, sojourn)
	dropping := g.cod.dropping
	g.cmu.Unlock()
	g.dropping.Store(dropping)
	return drop
}

// Drop records a shed: reason counters, drop rate, and the drop hook.
func (g *Gate) Drop(now time.Duration, cls Class, r Reason) {
	g.drops[r].Add(1)
	if g.onDrop != nil {
		g.onDrop(now, cls, r)
	}
}

// EnterQueue / LeaveQueue maintain the waiting-request gauge; the
// substrate's queue implementation brackets every wait with them.
func (g *Gate) EnterQueue() { g.queued.Add(1) }

// LeaveQueue decrements the waiting-request gauge.
func (g *Gate) LeaveQueue() { g.queued.Add(-1) }

// Queued returns how many requests are waiting for admission.
func (g *Gate) Queued() int { return int(g.queued.Load()) }

// Limit returns the current concurrency limit.
func (g *Gate) Limit() int { return int(uint32(g.word.Load() >> 32)) }

// InFlight returns the number of admitted, unreleased requests.
func (g *Gate) InFlight() int { return int(uint32(g.word.Load())) }

// Tightened reports whether the adapt ladder has squeezed the gate.
func (g *Gate) Tightened() bool { return g.tight.Load() }

// Overloaded reports whether the gate is in distress: CoDel is in its
// dropping state, or the wait queue is at least half full.
func (g *Gate) Overloaded() bool {
	return g.dropping.Load() || g.queued.Load() >= int64(g.cfg.MaxQueue)/2
}

// LIFOActive reports whether the wait queue should pop newest-first
// right now (LIFO configured and the gate overloaded).
func (g *Gate) LIFOActive() bool { return g.cfg.LIFO && g.Overloaded() }

// MaxWait is the bounded pre-dispatch wait.
func (g *Gate) MaxWait() time.Duration { return g.cfg.MaxWait }

// MaxQueue is the wait-queue capacity.
func (g *Gate) MaxQueue() int { return g.cfg.MaxQueue }

// CoDelEnabled reports whether the CoDel discipline is armed.
func (g *Gate) CoDelEnabled() bool { return g.cfg.CoDel }

// SetLimit pins the limit to n (clamped to [MinLimit, MaxLimit]).
func (g *Gate) SetLimit(n int) { g.setLimit(g.now(), n, "set") }

// Tighten(true) halves the limit and blocks adaptive growth — the
// adapt ladder's response to a detected stall. Tighten(false) restores
// growth (and, for the static limiter, the configured limit).
func (g *Gate) Tighten(on bool) {
	if on {
		if !g.tight.Swap(true) {
			g.setLimit(g.now(), g.Limit()/2, "tighten")
		}
		return
	}
	if g.tight.Swap(false) {
		if g.cfg.Limiter == LimiterStatic || g.cfg.Limiter == "" {
			g.setLimit(g.now(), g.cfg.Limit, "relax")
		} else {
			g.pushAdjust(Adjustment{T: g.now(), Limit: g.Limit(), Reason: "relax"})
		}
	}
}

// setLimit clamps and publishes a new limit, recording the change.
func (g *Gate) setLimit(now time.Duration, n int, reason string) {
	if g.cfg.Limiter == LimiterNone {
		return
	}
	if n < g.cfg.MinLimit {
		n = g.cfg.MinLimit
	}
	if n > g.cfg.MaxLimit {
		n = g.cfg.MaxLimit
	}
	for {
		w := g.word.Load()
		old := int(uint32(w >> 32))
		if old == n {
			return
		}
		next := packWord(uint32(n), uint32(w))
		if g.word.CompareAndSwap(w, next) {
			g.pushAdjust(Adjustment{T: now, Limit: n, Reason: reason})
			// Growth frees capacity without a release; let waiters
			// claim the new slots.
			if n > old && g.onRelease != nil {
				g.onRelease()
			}
			return
		}
	}
}

func (g *Gate) pushAdjust(a Adjustment) {
	g.tmu.Lock()
	if len(g.trace) < adjustTraceCap {
		g.trace = append(g.trace, a)
	} else {
		g.trace[g.traceNext] = a
		g.traceNext = (g.traceNext + 1) % adjustTraceCap
	}
	g.tmu.Unlock()
}

// Adjustments returns the recorded limit changes, oldest first.
func (g *Gate) Adjustments() []Adjustment {
	g.tmu.Lock()
	defer g.tmu.Unlock()
	out := make([]Adjustment, 0, len(g.trace))
	if len(g.trace) == adjustTraceCap {
		out = append(out, g.trace[g.traceNext:]...)
		out = append(out, g.trace[:g.traceNext]...)
		return out
	}
	return append(out, g.trace...)
}

// Dropped returns the total sheds across all reasons.
func (g *Gate) Dropped() uint64 {
	var n uint64
	for i := range g.drops {
		n += g.drops[i].Load()
	}
	return n
}

// DropRate returns sheds per second over the window since its previous
// call. Single-sampler contract: only one goroutine (the telemetry
// sampler) may call it.
func (g *Gate) DropRate(now time.Duration) float64 {
	total := g.Dropped()
	g.tmu.Lock()
	defer g.tmu.Unlock()
	dt := now - g.rateT
	if dt > 0 {
		g.rate = float64(total-g.rateN) / dt.Seconds()
		g.rateT = now
		g.rateN = total
	}
	return g.rate
}

// Stats snapshots the gate.
func (g *Gate) Stats() Stats {
	w := g.word.Load()
	limit := int(uint32(w >> 32))
	if limit == unlimitedLimit {
		limit = 0
	}
	return Stats{
		Limiter:            g.cfg.Limiter,
		CoDel:              g.cfg.CoDel,
		LIFO:               g.cfg.LIFO,
		Limit:              limit,
		InFlight:           int(uint32(w)),
		Queued:             g.Queued(),
		Tightened:          g.tight.Load(),
		Admitted:           g.admitted[Interactive].Load() + g.admitted[Background].Load(),
		AdmittedBackground: g.admitted[Background].Load(),
		Dropped:            g.Dropped(),
		DropsPriority:      g.drops[ReasonPriority].Load(),
		DropsQueueFull:     g.drops[ReasonQueueFull].Load(),
		DropsMaxWait:       g.drops[ReasonMaxWait].Load(),
		DropsCoDel:         g.drops[ReasonCoDel].Load(),
	}
}

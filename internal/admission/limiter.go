package admission

import (
	"math"
	"sync/atomic"
	"time"
)

// Concurrency limiters. All three share the same shape: observe() is
// called on every release with the request's response time, folds it
// into atomic state, and occasionally claims an adjustment slot (one
// CAS) to recompute the limit. Everything is lock-free and
// allocation-free so the release path stays as cheap as the admit
// path.

type limiterMode uint8

const (
	limiterStatic limiterMode = iota
	limiterAIMD
	limiterGradient
	limiterNone
)

// ewmaAlpha weights each response-time sample into the gradient
// limiter's moving average — the same 0.2 the proxy's per-backend
// latency EWMAs use, so the two surfaces agree on smoothing.
const ewmaAlpha = 0.2

type limiterState struct {
	mode limiterMode

	// AIMD.
	backoff   float64
	latThresh int64 // nanos
	succ      atomic.Uint64
	cooldown  atomic.Int64 // no further decrease before this time (nanos)

	// Gradient (Vegas-style).
	smooth float64
	tol    float64
	every  int64         // adjustment spacing, nanos
	ewma   atomic.Uint64 // float64 bits of the RTT EWMA in nanos
	minRTT atomic.Int64  // no-load RTT floor, nanos; 0 = unset
	nextAdj atomic.Int64 // next adjustment time, nanos
}

func (l *limiterState) init(cfg Config) {
	switch cfg.Limiter {
	case LimiterAIMD:
		l.mode = limiterAIMD
	case LimiterGradient:
		l.mode = limiterGradient
	case LimiterNone:
		l.mode = limiterNone
	default:
		l.mode = limiterStatic
	}
	l.backoff = cfg.AIMDBackoff
	l.latThresh = int64(cfg.AIMDLatency)
	l.smooth = cfg.Smoothing
	l.tol = cfg.RTTTolerance
	l.every = int64(cfg.AdjustEvery)
}

// observe feeds one completed request to the limiter.
func (l *limiterState) observe(g *Gate, now, rtt time.Duration, ok bool) {
	switch l.mode {
	case limiterAIMD:
		l.observeAIMD(g, now, rtt, ok)
	case limiterGradient:
		if rtt > 0 {
			l.foldRTT(rtt)
		}
		l.adjustGradient(g, now)
	}
}

// observeAIMD: additive increase of one slot per limit's worth of
// clean completions, multiplicative decrease (at most once per
// AdjustEvery) on a failure or a response slower than AIMDLatency.
func (l *limiterState) observeAIMD(g *Gate, now, rtt time.Duration, ok bool) {
	if !ok || int64(rtt) > l.latThresh {
		l.succ.Store(0)
		until := l.cooldown.Load()
		if int64(now) >= until && l.cooldown.CompareAndSwap(until, int64(now)+l.every) {
			limit := g.Limit()
			g.setLimit(now, int(float64(limit)*l.backoff), "aimd_backoff")
		}
		return
	}
	limit := g.Limit()
	if s := l.succ.Add(1); s >= uint64(limit) {
		l.succ.Store(0)
		if !g.tight.Load() {
			g.setLimit(now, limit+1, "aimd_increase")
		}
	}
}

// foldRTT CAS-folds one sample into the EWMA and the no-load floor.
// Non-finite intermediate values are dropped, in the PR 8 atomicFloat
// style, so a poisoned sample cannot wedge the control loop.
func (l *limiterState) foldRTT(rtt time.Duration) {
	sample := float64(rtt)
	for {
		old := l.ewma.Load()
		next := sample
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*sample
		}
		if math.IsNaN(next) || math.IsInf(next, 0) {
			return
		}
		if l.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	for {
		old := l.minRTT.Load()
		if old != 0 && old <= int64(rtt) {
			return
		}
		if l.minRTT.CompareAndSwap(old, int64(rtt)) {
			return
		}
	}
}

// adjustGradient recomputes the limit at most once per AdjustEvery:
//
//	ratio    = clamp(tolerance × minRTT ⁄ ewmaRTT, 0.5, 1)
//	limit'   = (1−s)·limit + s·(limit·ratio + √limit)
//
// At no-load the ratio saturates at 1 and the √limit queue allowance
// grows the limit; when the observed RTT inflates past tolerance× the
// no-load floor the ratio shrinks it. The floor decays upward slowly —
// and only while uncongested — so it can re-track a shifted baseline
// without forgiving an ongoing stall.
func (l *limiterState) adjustGradient(g *Gate, now time.Duration) {
	next := l.nextAdj.Load()
	if int64(now) < next || !l.nextAdj.CompareAndSwap(next, int64(now)+l.every) {
		return
	}
	ew := math.Float64frombits(l.ewma.Load())
	min := l.minRTT.Load()
	if ew <= 0 || min <= 0 {
		return
	}
	limit := g.Limit()
	ratio := l.tol * float64(min) / ew
	if ratio > 1 {
		ratio = 1
	}
	if ratio < 0.5 {
		ratio = 0.5
	}
	target := float64(limit)*ratio + math.Sqrt(float64(limit))
	n := int(math.Round((1-l.smooth)*float64(limit) + l.smooth*target))
	if g.tight.Load() && n > limit {
		n = limit
	}
	if n != limit {
		g.setLimit(now, n, "gradient")
	}
	if ratio > 0.95 {
		l.minRTT.CompareAndSwap(min, min+min/64)
	}
}

package probe

import (
	"testing"
	"time"
)

// seedHandlePools fills pools for four backends with distinct in-flight
// and latency readings at clock zero.
func seedHandlePools(t *testing.T) (*Pools, *fakeClock, []string, []Handle) {
	t.Helper()
	p, clk := newTestPools(Config{TTL: time.Hour, ReuseBudget: 1 << 30, D: 3})
	names := []string{"a", "b", "c", "d"}
	for i, n := range names {
		p.Observe(n, float64(i+1), time.Duration(i+1)*time.Millisecond)
	}
	hs := make([]Handle, len(names))
	for i, n := range names {
		hs[i] = p.Handle(n)
	}
	return p, clk, names, hs
}

// TestPickHandlesMatchesPick: over a full mask, PickHandles must make
// exactly the choices Pick makes from the same rand stream — it is the
// same algorithm minus the map lookups, not a different policy.
func TestPickHandlesMatchesPick(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		p1, _, names, _ := seedHandlePools(t)
		p2, _, _, hs := seedHandlePools(t)
		r1, r2 := testRNG(), testRNG()
		for step := 0; step < trial+1; step++ {
			want := p1.Pick(names, r1)
			got := p2.PickHandles(hs, 1<<len(hs)-1, r2, 0)
			if got != want {
				t.Fatalf("trial %d step %d: PickHandles = %d, Pick = %d", trial, step, got, want)
			}
		}
	}
}

// TestPickHandlesMaskExcludes: a masked-out backend is never chosen no
// matter how attractive its samples are.
func TestPickHandlesMaskExcludes(t *testing.T) {
	p, _, _, hs := seedHandlePools(t)
	// Backend 0 ("a") has the lowest in-flight and latency — the sure
	// winner when eligible. Mask it out and it must never come back.
	rng := testRNG()
	for i := 0; i < 200; i++ {
		got := p.PickHandles(hs, 0b1110, rng, 0)
		if got == 0 {
			t.Fatalf("iteration %d: chose masked-out candidate 0", i)
		}
		if got < 0 {
			t.Fatalf("iteration %d: no choice despite fresh samples", i)
		}
	}
	if got := p.PickHandles(hs, 0, rng, 0); got != -1 {
		t.Fatalf("empty mask chose %d, want -1", got)
	}
}

// TestPickHandlesSurviveClear: Clear truncates pools but must not
// invalidate resolved handles — after reseeding, the same handles see
// the new samples.
func TestPickHandlesSurviveClear(t *testing.T) {
	p, _, names, hs := seedHandlePools(t)
	p.Clear()
	if got := p.PickHandles(hs, 1<<len(hs)-1, testRNG(), 0); got != -1 {
		t.Fatalf("PickHandles over cleared pools = %d, want -1", got)
	}
	p.Observe(names[2], 1, time.Millisecond)
	for i := 0; i < 50; i++ {
		if got := p.PickHandles(hs, 1<<len(hs)-1, testRNG(), 0); got != 2 {
			t.Fatalf("after reseed PickHandles = %d, want 2 (only fresh pool)", got)
		}
	}
}

// TestPickHandlesChargesReuse: consulted samples are charged exactly as
// Pick charges them, so the reuse budget still bounds how long one
// flattering sample can steer selection.
func TestPickHandlesChargesReuse(t *testing.T) {
	p, _ := newTestPools(Config{TTL: time.Hour, ReuseBudget: 3, D: 1})
	p.Observe("only", 1, time.Millisecond)
	hs := []Handle{p.Handle("only")}
	rng := testRNG()
	for i := 0; i < 2; i++ {
		if got := p.PickHandles(hs, 1, rng, 0); got != 0 {
			t.Fatalf("pick %d = %d, want 0", i, got)
		}
	}
	// Third consultation spends the budget; the sample is dropped and
	// the next pick finds nothing.
	if got := p.PickHandles(hs, 1, rng, 0); got != 0 {
		t.Fatalf("budget-spending pick = %d, want 0", got)
	}
	if got := p.PickHandles(hs, 1, rng, 0); got != -1 {
		t.Fatalf("post-budget pick = %d, want -1", got)
	}
}

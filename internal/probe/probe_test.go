package probe

import (
	"math/rand/v2"
	"testing"
	"time"
)

// fakeClock is a settable clock for pool tests.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func newTestPools(cfg Config) (*Pools, *fakeClock) {
	clk := &fakeClock{}
	return NewPools(cfg, clk.now), clk
}

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

// TestPoolStalenessEviction: samples older than the TTL are evicted and
// never consulted — the property that makes a frozen backend disappear
// from prequal's consideration.
func TestPoolStalenessEviction(t *testing.T) {
	p, clk := newTestPools(Config{TTL: 100 * time.Millisecond})
	p.Observe("a", 3, time.Millisecond)
	clk.t = 50 * time.Millisecond
	p.Observe("a", 4, time.Millisecond)

	if got := p.Depth("a"); got != 2 {
		t.Fatalf("Depth = %d, want 2", got)
	}
	age, ok := p.Staleness("a")
	if !ok || age != 0 {
		t.Fatalf("Staleness = %v,%v, want 0,true", age, ok)
	}

	// Past the first sample's TTL but not the second's.
	clk.t = 120 * time.Millisecond
	if got := p.Depth("a"); got != 1 {
		t.Fatalf("Depth after partial expiry = %d, want 1", got)
	}
	if smp, ok := p.Peek("a"); !ok || smp.InFlight != 4 {
		t.Fatalf("Peek after partial expiry = %+v,%v, want in-flight 4", smp, ok)
	}

	// Past both TTLs: the pool is empty and Pick must refuse to choose.
	clk.t = time.Second
	if got := p.Depth("a"); got != 0 {
		t.Fatalf("Depth after full expiry = %d, want 0", got)
	}
	if _, ok := p.Peek("a"); ok {
		t.Fatal("Peek returned a stale sample")
	}
	if got := p.Pick([]string{"a"}, testRNG()); got != -1 {
		t.Fatalf("Pick over stale pool = %d, want -1", got)
	}
}

// TestPoolReuseBudgetExhaustion: each Pick charges the consulted sample
// one reuse; after ReuseBudget consultations the sample is dropped, so
// a slow prober cannot serve one flattering sample forever.
func TestPoolReuseBudgetExhaustion(t *testing.T) {
	p, _ := newTestPools(Config{ReuseBudget: 3, TTL: time.Hour})
	p.Observe("a", 1, time.Millisecond)
	rng := testRNG()

	for i := 0; i < 3; i++ {
		if got := p.Pick([]string{"a"}, rng); got != 0 {
			t.Fatalf("Pick #%d = %d, want 0", i, got)
		}
	}
	// Budget spent: the sample is gone.
	if got := p.Depth("a"); got != 0 {
		t.Fatalf("Depth after budget exhaustion = %d, want 0", got)
	}
	if got := p.Pick([]string{"a"}, rng); got != -1 {
		t.Fatalf("Pick after budget exhaustion = %d, want -1", got)
	}
}

// TestPoolRemoveWorstOrdering: pool overflow evicts the sample
// reporting the heaviest backend state — highest in-flight, ties broken
// toward highest latency — never the freshest arrival.
func TestPoolRemoveWorstOrdering(t *testing.T) {
	p, _ := newTestPools(Config{PoolSize: 3, TTL: time.Hour})
	p.Observe("a", 5, time.Millisecond)
	p.Observe("a", 9, time.Millisecond)
	p.Observe("a", 1, time.Millisecond)
	p.Observe("a", 2, time.Millisecond) // overflow: 9 must go

	inflights := func() []float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		e := p.entries["a"]
		out := make([]float64, 0, len(e.samples))
		for _, s := range e.samples {
			out = append(out, s.inFlight)
		}
		return out
	}
	got := inflights()
	want := []float64{5, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("pool = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pool = %v, want %v", got, want)
		}
	}

	// Ties on in-flight: the higher-latency sample goes first.
	p2, _ := newTestPools(Config{PoolSize: 2, TTL: time.Hour})
	p2.Observe("b", 4, 9*time.Millisecond)
	p2.Observe("b", 4, 2*time.Millisecond)
	p2.Observe("b", 1, time.Millisecond) // overflow: the 9 ms sample goes
	p2.mu.Lock()
	e := p2.entries["b"]
	for _, s := range e.samples {
		if s.latency == 9*time.Millisecond {
			p2.mu.Unlock()
			t.Fatal("tie-break kept the higher-latency sample")
		}
	}
	p2.mu.Unlock()
}

// TestPickHotColdSelection: cold backends (probed in-flight at or below
// the quantile threshold) win by lowest latency; when every sampled
// backend is hot the lowest in-flight wins.
func TestPickHotColdSelection(t *testing.T) {
	// Three backends, D covers all of them, threshold at the median.
	p, _ := newTestPools(Config{D: 3, HotQuantile: 0.5, TTL: time.Hour, ReuseBudget: 1 << 30})
	p.Observe("slow-cold", 1, 80*time.Millisecond)
	p.Observe("fast-cold", 2, 5*time.Millisecond)
	p.Observe("hot", 50, time.Millisecond)
	names := []string{"slow-cold", "fast-cold", "hot"}
	rng := testRNG()

	// Threshold = median in-flight (2): both cold backends qualify and
	// the faster one must win every time, regardless of sampling order.
	for i := 0; i < 20; i++ {
		if got := p.Pick(names, rng); names[got] != "fast-cold" {
			t.Fatalf("Pick #%d = %s, want fast-cold", i, names[got])
		}
	}

	// All hot: lowest in-flight wins.
	p2, _ := newTestPools(Config{D: 2, HotQuantile: 0.5, TTL: time.Hour, ReuseBudget: 1 << 30})
	p2.Observe("busy", 40, time.Millisecond)
	p2.Observe("busier", 60, time.Millisecond)
	names2 := []string{"busy", "busier"}
	for i := 0; i < 20; i++ {
		if got := p2.Pick(names2, rng); names2[got] != "busy" {
			t.Fatalf("all-hot Pick #%d = %s, want busy", i, names2[got])
		}
	}
}

// TestPickNeverChoosesStaleBackend: a backend with only aged-out
// samples is skipped even when its last reading was the most
// flattering — the millibottleneck counter trap, inverted.
func TestPickNeverChoosesStaleBackend(t *testing.T) {
	p, clk := newTestPools(Config{D: 2, TTL: 100 * time.Millisecond, ReuseBudget: 1 << 30})
	p.Observe("frozen", 0, time.Microsecond) // perfect-looking, then silent
	clk.t = 150 * time.Millisecond
	p.Observe("live", 30, 10*time.Millisecond)
	names := []string{"frozen", "live"}
	rng := testRNG()
	for i := 0; i < 50; i++ {
		got := p.Pick(names, rng)
		if got == 0 {
			t.Fatalf("Pick #%d chose the frozen backend on stale data", i)
		}
		if got != 1 {
			t.Fatalf("Pick #%d = %d, want 1 (live)", i, got)
		}
	}
}

// TestObserveClearsOnClear: Clear drops every pooled sample, the
// reseeding step of a runtime policy swap.
func TestObserveClearsOnClear(t *testing.T) {
	p, _ := newTestPools(Config{TTL: time.Hour})
	p.Observe("a", 1, time.Millisecond)
	p.Observe("b", 2, time.Millisecond)
	p.Clear()
	if p.Depth("a") != 0 || p.Depth("b") != 0 {
		t.Fatal("Clear left samples behind")
	}
}

package probe

import (
	"millibalance/internal/netmodel"
	"millibalance/internal/sim"
)

// SimTarget is one probed backend in the simulated substrate. The
// wiring layer (internal/cluster) supplies the closures so this package
// stays ignorant of server internals.
type SimTarget struct {
	// Name keys the backend's pool.
	Name string
	// Link is the network hop the probe and its reply traverse.
	Link *netmodel.Link
	// InFlight reads the backend's requests-in-flight at the moment
	// the probe arrives.
	InFlight func() float64
	// Service runs the probe's (tiny) service demand through the
	// backend's CPU and calls done when it completes — which is what
	// makes a frozen backend hold the probe hostage until the stall
	// ends, exactly like the real endpoint would.
	Service func(done func())
}

// latencyEWMAAlpha smooths probe RTTs into the latency estimate; the
// wall substrate's servers keep the equivalent EWMA over real request
// latencies.
const latencyEWMAAlpha = 0.3

// SimProber probes every target on a recurring engine timer. Probe
// RTTs are ordinary scheduled events — two link traversals around a CPU
// burst — so runs remain bit-for-bit replayable. At most one probe per
// target is outstanding: a backend that sits on a probe (frozen CPU)
// suppresses further probes instead of queueing them, and its pool goes
// stale — the signal the prequal policy acts on.
type SimProber struct {
	eng     *sim.Engine
	pools   *Pools
	targets []SimTarget

	outstanding []bool
	ewma        []sim.Time // per-target latency estimate
	started     bool
}

// NewSimProber returns a prober over the targets; Start arms it.
func NewSimProber(eng *sim.Engine, pools *Pools, targets []SimTarget) *SimProber {
	if eng == nil || pools == nil {
		panic("probe: NewSimProber with nil engine or pools")
	}
	for _, t := range targets {
		if t.Link == nil || t.InFlight == nil || t.Service == nil {
			panic("probe: SimTarget with nil field")
		}
	}
	copied := make([]SimTarget, len(targets))
	copy(copied, targets)
	return &SimProber{
		eng:         eng,
		pools:       pools,
		targets:     copied,
		outstanding: make([]bool, len(copied)),
		ewma:        make([]sim.Time, len(copied)),
	}
}

// Start arms one recurring probe timer per target, staggered by a
// jittered interval so the probes do not arrive in lockstep.
func (p *SimProber) Start() {
	if p.started {
		panic("probe: SimProber.Start called twice")
	}
	p.started = true
	for i := range p.targets {
		i := i
		var tick func()
		tick = func() {
			p.probe(i)
			p.eng.Schedule(p.eng.Jitter(p.pools.cfg.Interval, 0.2), tick)
		}
		p.eng.Schedule(p.eng.Jitter(p.pools.cfg.Interval, 0.2), tick)
	}
}

// ProbeAll fires one immediate probe at every idle target — the
// reseeding round after a runtime policy swap cleared the pools.
func (p *SimProber) ProbeAll() {
	for i := range p.targets {
		p.probe(i)
	}
}

// probe sends one probe to target i unless one is already in flight.
func (p *SimProber) probe(i int) {
	if p.outstanding[i] {
		return
	}
	p.outstanding[i] = true
	t := p.targets[i]
	start := p.eng.Now()
	t.Link.Deliver(func() {
		inFlight := t.InFlight()
		t.Service(func() {
			t.Link.Deliver(func() {
				p.outstanding[i] = false
				rtt := p.eng.Now() - start
				if p.ewma[i] == 0 {
					p.ewma[i] = rtt
				} else {
					p.ewma[i] += sim.Time(latencyEWMAAlpha * float64(rtt-p.ewma[i]))
				}
				p.pools.Observe(t.Name, inFlight, p.ewma[i])
			})
		})
	})
}

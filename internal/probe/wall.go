package probe

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Report is the GET /admin/probe payload every backend serves: the
// wire format shared by the wall transport and the app servers.
type Report struct {
	// Backend names the reporting server.
	Backend string `json:"backend"`
	// InFlight is the server's requests currently being handled.
	InFlight int64 `json:"in_flight"`
	// EWMALatencyMs is the server's own exponentially weighted moving
	// average of request latencies, in milliseconds; zero until the
	// first request completes.
	EWMALatencyMs float64 `json:"ewma_latency_ms"`
}

// WallTarget is one probed backend in the wall-clock substrate.
type WallTarget struct {
	// Name keys the backend's pool.
	Name string
	// URL is the backend's base URL; the prober GETs URL+"/admin/probe".
	URL string
}

// WallProber polls each target's /admin/probe endpoint from its own
// goroutine pool, never blocking the dispatch path. The probe rate is
// coupled to the query rate: every tick issues one baseline probe plus
// Config.RateCoupling extra probes per query observed since the last
// tick (reading the queries counter the proxy supplies), so a busy
// proxy refreshes its pools faster — Prequal's r_probe coupling.
type WallProber struct {
	pools   *Pools
	targets []WallTarget
	client  *http.Client
	queries func() uint64

	mu          sync.Mutex
	rr          int
	lastQueries uint64
	outstanding map[int]bool

	start time.Time
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// NewWallProber returns a prober over the targets. queries reports the
// proxy's cumulative query count for rate coupling (nil pins the rate
// to one probe per tick per round-robin turn); transport, when non-nil,
// carries the probes — passing the proxy's fault-wrapped transport
// makes probes experience the same injected network degradation as
// requests do.
func NewWallProber(pools *Pools, targets []WallTarget, queries func() uint64, transport http.RoundTripper) *WallProber {
	if pools == nil {
		panic("probe: NewWallProber with nil pools")
	}
	copied := make([]WallTarget, len(targets))
	copy(copied, targets)
	timeout := pools.cfg.TTL
	if timeout <= 0 {
		timeout = 150 * time.Millisecond
	}
	return &WallProber{
		pools:   pools,
		targets: copied,
		client:  &http.Client{Transport: transport, Timeout: timeout},
		queries: queries,
		// The pools clock and the prober share one epoch so sample ages
		// are consistent.
		start:       time.Now(),
		outstanding: make(map[int]bool),
		stop:        make(chan struct{}),
	}
}

// Clock returns the monotonic reading NewPools wants as its clock when
// this prober feeds it; both must share the epoch.
func (w *WallProber) Clock() func() time.Duration {
	return func() time.Duration { return time.Since(w.start) }
}

// Start launches the probe loop.
func (w *WallProber) Start() {
	w.wg.Add(1)
	go w.loop()
}

// Stop halts the loop and waits for in-flight probes to land.
func (w *WallProber) Stop() {
	w.once.Do(func() { close(w.stop) })
	w.wg.Wait()
}

// Reseed clears every pool and fires an immediate full probe round —
// the runtime policy-swap hook: the incoming prequal policy starts
// from live data only.
func (w *WallProber) Reseed() {
	w.pools.Clear()
	for i := range w.targets {
		w.probe(i)
	}
}

func (w *WallProber) loop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.pools.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.tick()
		}
	}
}

// tick issues this round's probes round-robin over the targets.
func (w *WallProber) tick() {
	if len(w.targets) == 0 {
		return
	}
	n := 1
	if w.queries != nil {
		w.mu.Lock()
		q := w.queries()
		delta := q - w.lastQueries
		w.lastQueries = q
		w.mu.Unlock()
		n += int(float64(delta) * w.pools.cfg.RateCoupling)
		if limit := 2 * len(w.targets); n > limit {
			n = limit
		}
	}
	for ; n > 0; n-- {
		w.mu.Lock()
		i := w.rr % len(w.targets)
		w.rr++
		w.mu.Unlock()
		w.probe(i)
	}
}

// probe GETs one target's /admin/probe asynchronously; at most one
// probe per target is outstanding, so a hung backend suppresses its own
// probes and its pool goes stale rather than piling up goroutines.
func (w *WallProber) probe(i int) {
	w.mu.Lock()
	if w.outstanding[i] {
		w.mu.Unlock()
		return
	}
	w.outstanding[i] = true
	w.mu.Unlock()

	t := w.targets[i]
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer func() {
			w.mu.Lock()
			w.outstanding[i] = false
			w.mu.Unlock()
		}()
		start := time.Now()
		resp, err := w.client.Get(t.URL + "/admin/probe")
		if err != nil {
			return // stale-out is the signal; a failed probe adds nothing
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return
		}
		var rep Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			return
		}
		latency := time.Duration(rep.EWMALatencyMs * float64(time.Millisecond))
		if latency <= 0 {
			latency = time.Since(start) // RTT stands in until the EWMA warms up
		}
		w.pools.Observe(t.Name, float64(rep.InFlight), latency)
	}()
}

// Package probe implements the asynchronous probing subsystem behind
// the prequal policy (Wydrowski et al., "Load is not what you should
// balance", arXiv:2312.10172): backends are probed for their
// requests-in-flight count and an estimated latency *off* the dispatch
// path, and the replies feed per-backend bounded sample pools that the
// policy consults at selection time.
//
// The subsystem decouples signal acquisition from dispatch on purpose.
// The paper's passive policies fail under millibottlenecks precisely
// because the stalled backend stops generating the events they count;
// an asynchronous prober inverts that failure mode — a stalled backend
// stops producing *fresh probes*, its pooled samples age past the
// staleness TTL, and the policy simply stops seeing it as a choice.
//
// Two transports share the pools: SimProber schedules probe RTTs as
// deterministic engine events through internal/netmodel (fully
// replayable), and WallProber polls a GET /admin/probe endpoint over
// real sockets at a rate coupled to the observed query rate.
package probe

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the prober and the sample pools. The zero value is
// usable; withDefaults fills each field.
type Config struct {
	// Interval separates probes of the same backend (sim transport) or
	// prober ticks (wall transport). Default 25 ms — several probes per
	// millibottleneck lifetime, so freshness reacts within one stall.
	Interval time.Duration
	// PoolSize bounds the samples kept per backend; overflow removes
	// the worst sample first. Default 16 (the Prequal paper's pool).
	PoolSize int
	// TTL is the staleness horizon: samples older than this are
	// evicted and never consulted. It must sit below the
	// millibottleneck durations of interest (hundreds of ms) so a
	// frozen backend's last pre-stall samples expire mid-stall.
	// Default 150 ms.
	TTL time.Duration
	// ReuseBudget is how many selections may consult one sample before
	// it is dropped — Prequal's per-probe reuse bound, which keeps a
	// slow prober from serving one flattering sample forever.
	// Default 24.
	ReuseBudget int
	// D is how many backends one selection samples (power-of-d).
	// Default 3, clamped to the candidate count.
	D int
	// HotQuantile classifies backends: those whose probed in-flight
	// count sits at or below this quantile of the fresh samples are
	// "cold" (pick by latency); the rest are "hot" (pick by
	// in-flight). Default 0.75.
	HotQuantile float64
	// RateCoupling makes the wall prober's rate follow the query rate:
	// each tick issues one probe plus RateCoupling extra probes per
	// query observed since the previous tick. Default 0.05.
	RateCoupling float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 16
	}
	if c.TTL <= 0 {
		c.TTL = 150 * time.Millisecond
	}
	if c.ReuseBudget <= 0 {
		c.ReuseBudget = 24
	}
	if c.D <= 0 {
		c.D = 3
	}
	if c.HotQuantile <= 0 || c.HotQuantile > 1 {
		c.HotQuantile = 0.75
	}
	if c.RateCoupling <= 0 {
		c.RateCoupling = 0.05
	}
	return c
}

// Sample is one probe observation as the policy sees it.
type Sample struct {
	// InFlight is the backend's reported requests-in-flight.
	InFlight float64
	// Latency is the backend's estimated latency (its self-reported
	// EWMA when available, otherwise the probe RTT).
	Latency time.Duration
	// Age is how long ago the probe completed.
	Age time.Duration
}

// sample is the pooled representation; at is the observation clock
// reading and uses counts selections that consulted it.
type sample struct {
	inFlight float64
	latency  time.Duration
	at       time.Duration
	uses     int
}

// pubSample is the lock-free published form of a backend's freshest
// observation: immutable except for the atomic reuse counter, shared by
// pointer so readers never hold the pools mutex.
type pubSample struct {
	inFlight float64
	latency  time.Duration
	at       time.Duration
	uses     atomic.Int32
}

// entry is one backend's bounded pool, samples in arrival order
// (freshest last). pub mirrors the newest observation for the lock-free
// PickHandles path; the pooled samples remain the source of truth for
// Pick.
type entry struct {
	samples []sample
	pub     atomic.Pointer[pubSample]
}

// Pools holds every backend's probe samples behind one mutex. The sim
// transport calls Observe from the engine thread and the policy reads
// on the same thread; the wall transport's prober goroutines and the
// proxy's dispatch path contend for real — hence the lock even though
// the sim never needs it.
type Pools struct {
	mu      sync.Mutex
	cfg     Config
	now     func() time.Duration
	entries map[string]*entry

	// scratch buffers keep Pick allocation-free on the dispatch hot
	// path (guarded by mu like everything else).
	vals []float64
	idx  []int
}

// NewPools returns pools reading the given clock — the sim engine's
// virtual now or a wall-clock monotonic reading; the subsystem never
// consults time.Now itself, which is what keeps the sim transport
// replayable.
func NewPools(cfg Config, now func() time.Duration) *Pools {
	if now == nil {
		panic("probe: NewPools with nil clock")
	}
	return &Pools{cfg: cfg.withDefaults(), now: now, entries: make(map[string]*entry)}
}

// Config returns the effective (default-filled) configuration.
func (p *Pools) Config() Config { return p.cfg }

// Observe records one probe reply for the backend, evicting stale
// samples and — when the pool is full — the worst remaining sample
// (highest in-flight, ties toward highest latency).
func (p *Pools) Observe(name string, inFlight float64, latency time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[name]
	if e == nil {
		e = &entry{samples: make([]sample, 0, p.cfg.PoolSize+1)}
		p.entries[name] = e
	}
	now := p.now()
	e.evictStale(now, p.cfg.TTL)
	e.samples = append(e.samples, sample{inFlight: inFlight, latency: latency, at: now})
	for len(e.samples) > p.cfg.PoolSize {
		e.removeWorst()
	}
	// Publish the new observation for the lock-free consult path. The
	// allocation is fine here: Observe runs at probe cadence, not
	// dispatch cadence.
	ps := &pubSample{inFlight: inFlight, latency: latency, at: now}
	e.pub.Store(ps)
}

// evictStale drops samples older than ttl. Samples arrive in time
// order, so the stale prefix is contiguous.
func (e *entry) evictStale(now, ttl time.Duration) {
	i := 0
	for i < len(e.samples) && now-e.samples[i].at > ttl {
		i++
	}
	if i > 0 {
		e.samples = e.samples[:copy(e.samples, e.samples[i:])]
	}
}

// removeWorst drops the sample reporting the heaviest backend state.
func (e *entry) removeWorst() {
	worst := 0
	for i := 1; i < len(e.samples); i++ {
		s, w := e.samples[i], e.samples[worst]
		if s.inFlight > w.inFlight || (s.inFlight == w.inFlight && s.latency > w.latency) {
			worst = i
		}
	}
	e.samples = append(e.samples[:worst], e.samples[worst+1:]...)
}

// freshest returns the newest non-stale sample, or nil.
func (e *entry) freshest(now, ttl time.Duration) *sample {
	e.evictStale(now, ttl)
	if len(e.samples) == 0 {
		return nil
	}
	return &e.samples[len(e.samples)-1]
}

// consume charges one use to the sample and drops it once the reuse
// budget is spent.
func (e *entry) consume(s *sample, budget int) {
	s.uses++
	if s.uses < budget {
		return
	}
	for i := range e.samples {
		if &e.samples[i] == s {
			e.samples = append(e.samples[:i], e.samples[i+1:]...)
			return
		}
	}
}

// Pick implements the hot/cold selection over the candidate names:
// sample d of them, classify each sampled backend hot or cold against
// the HotQuantile of the fresh in-flight readings, and return the index
// of the cold backend with the lowest estimated latency — or, when
// every sampled backend is hot, the one with the lowest in-flight.
// Backends without a fresh sample are never chosen; -1 means no sampled
// backend had fresh data and the caller must fall back to its own
// ranking. Consulted samples are charged one reuse each.
//
// Pick never reads cumulative counters — the selection depends only on
// pooled probe replies, so a backend that stops answering probes ages
// out of consideration instead of freezing at a flattering rank.
func (p *Pools) Pick(names []string, rng *rand.Rand) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()

	// Hot/cold threshold over the fresh in-flight readings.
	vals := p.vals[:0]
	for _, n := range names {
		if e := p.entries[n]; e != nil {
			if s := e.freshest(now, p.cfg.TTL); s != nil {
				vals = append(vals, s.inFlight)
			}
		}
	}
	p.vals = vals
	if len(vals) == 0 {
		return -1
	}
	threshold := quantile(vals, p.cfg.HotQuantile)

	d := p.cfg.D
	if d > len(names) {
		d = len(names)
	}
	idx := p.idx[:0]
	for i := range names {
		idx = append(idx, i)
	}
	p.idx = idx

	best := -1
	bestCold := false
	var bestLat time.Duration
	var bestIF float64
	for k := 0; k < d; k++ {
		// Partial Fisher–Yates: position k gets a uniform draw from the
		// not-yet-sampled suffix.
		j := k + rng.IntN(len(idx)-k)
		idx[k], idx[j] = idx[j], idx[k]
		i := idx[k]
		e := p.entries[names[i]]
		if e == nil {
			continue
		}
		s := e.freshest(now, p.cfg.TTL)
		if s == nil {
			continue
		}
		inF, lat := s.inFlight, s.latency
		e.consume(s, p.cfg.ReuseBudget)
		cold := inF <= threshold
		better := false
		switch {
		case best == -1:
			better = true
		case cold && !bestCold:
			better = true
		case cold == bestCold && cold:
			better = lat < bestLat
		case cold == bestCold:
			better = inF < bestIF
		}
		if better {
			best, bestCold, bestLat, bestIF = i, cold, lat, inF
		}
	}
	return best
}

// quantile returns the nearest-rank q-quantile, sorting vals in place
// (insertion sort: the slice is at most the backend count).
func quantile(vals []float64, q float64) float64 {
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	r := int(q * float64(len(vals)-1))
	return vals[r]
}

// Peek returns the backend's freshest non-stale sample without charging
// reuse — the read used by decision-log enrichment and gauges.
func (p *Pools) Peek(name string) (Sample, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[name]
	if e == nil {
		return Sample{}, false
	}
	now := p.now()
	s := e.freshest(now, p.cfg.TTL)
	if s == nil {
		return Sample{}, false
	}
	return Sample{InFlight: s.inFlight, Latency: s.latency, Age: now - s.at}, true
}

// Depth reports how many non-stale samples the backend's pool holds.
func (p *Pools) Depth(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[name]
	if e == nil {
		return 0
	}
	e.evictStale(p.now(), p.cfg.TTL)
	return len(e.samples)
}

// Staleness reports the age of the backend's freshest sample; ok is
// false when the pool holds no fresh sample at all.
func (p *Pools) Staleness(name string) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[name]
	if e == nil {
		return 0, false
	}
	now := p.now()
	s := e.freshest(now, p.cfg.TTL)
	if s == nil {
		return 0, false
	}
	return now - s.at, true
}

// Handle is a pre-resolved reference to one backend's sample pool. A
// dispatch-path caller resolves its handles once (at wiring time) and
// consults them through PickHandles, skipping both the per-name map
// lookups and the pools mutex Pick pays on every selection. Handles
// remain valid for the lifetime of the Pools — Clear truncates pools
// but never discards their entries.
type Handle struct{ e *entry }

// Handle resolves (creating if needed) the backend's pool entry.
func (p *Pools) Handle(name string) Handle {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[name]
	if e == nil {
		e = &entry{samples: make([]sample, 0, p.cfg.PoolSize+1)}
		p.entries[name] = e
	}
	return Handle{e: e}
}

// Now reads the pools' clock — the reading PickHandles expects as its
// at argument. Callers that already hold a wall-clock timestamp can
// read this once at wiring time and convert with an offset instead of
// paying a second clock read per selection.
func (p *Pools) Now() time.Duration { return p.now() }

// handleFast sizes PickHandles' stack scratch: candidate sets at or
// below it (every realistic dispatch tier — the paper's testbed has
// four backends) run with zero allocations and sub-duffzero clearing
// cost; larger sets up to the 64-bit mask width fall back to
// allocated scratch.
const handleFast = 8

// reuseUnbounded marks a ReuseBudget so large it can never bind: the
// published sample's 32-bit use counter would wrap before reaching it,
// so PickHandles skips the per-consult charge entirely. Fixtures that
// isolate selection cost from probe refresh (TTL of an hour, budget of
// 1<<30) sit here by design.
const reuseUnbounded = 1 << 30

// PickHandles is Pick over pre-resolved handles: a bitmask chooses the
// eligible candidates (bit i gates hs[i]) and at is the caller's
// reading of the pools clock (see Now). It returns an index into hs or
// -1 exactly as Pick returns over names. The selection logic is the
// same — hot/cold threshold over the fresh in-flight readings, partial
// Fisher–Yates d-way sampling, per-sample reuse charging — but the
// whole consult is lock-free: each backend's freshest observation is
// published through an atomic pointer by Observe, reuse is charged on
// an atomic counter, and a spent or stale publication simply reads as
// "no fresh probe". (The pooled older samples behind Pick are a
// refinement this path forgoes: a backend whose freshest sample ages or
// spends out abstains until the next probe lands, which at probe
// cadence is exactly the freshness contract prequal wants.)
func (p *Pools) PickHandles(hs []Handle, mask uint64, rng *rand.Rand, at time.Duration) int {
	var idxA [handleFast]int16
	var smpA [handleFast]*pubSample
	idx, smp := idxA[:], smpA[:]
	if len(hs) > handleFast {
		if len(hs) > 64 {
			return -1
		}
		idx = make([]int16, len(hs))
		smp = make([]*pubSample, len(hs))
	}
	n, nv := 0, 0
	var lo, hi float64
	ttl := p.cfg.TTL
	for i := range hs {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		var s *pubSample
		if e := hs[i].e; e != nil {
			if ps := e.pub.Load(); ps != nil && at-ps.at <= ttl {
				s = ps
			}
		}
		idx[n] = int16(i)
		smp[n] = s
		n++
		if s != nil {
			v := s.inFlight
			if nv == 0 {
				lo, hi = v, v
			} else {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			nv++
		}
	}
	if nv == 0 {
		return -1
	}
	var threshold float64
	switch {
	case nv == 1:
		threshold = lo
	case nv == 2:
		// Nearest-rank over two values is just min or max — the
		// two-backend dispatch tier never needs the sort below.
		if int(p.cfg.HotQuantile) >= 1 {
			threshold = hi
		} else {
			threshold = lo
		}
	default:
		// Materialize the value set only when the rank statistic
		// actually needs a sort; min/max scalars covered it above.
		var valsA [handleFast]float64
		vals := valsA[:0]
		if n > handleFast {
			vals = make([]float64, 0, n)
		}
		for k := 0; k < n; k++ {
			if s := smp[k]; s != nil {
				vals = append(vals, s.inFlight)
			}
		}
		threshold = quantile(vals, p.cfg.HotQuantile)
	}

	d := p.cfg.D
	if d >= n {
		// Every eligible candidate gets consulted: sampling order is
		// irrelevant (ties break by index instead of draw order, which
		// the randomized sampling never promised anyway), so skip the
		// shuffle and its rng draws entirely.
		d = n
	}
	best := -1
	bestCold := false
	var bestLat time.Duration
	var bestIF float64
	budget := p.cfg.ReuseBudget
	for k := 0; k < d; k++ {
		if d < n && n-k > 1 {
			// Partial Fisher–Yates over the eligible candidates; the
			// sample pointers swap in lockstep so smp[k] stays idx[k]'s.
			j := k + rng.IntN(n-k)
			idx[k], idx[j] = idx[j], idx[k]
			smp[k], smp[j] = smp[j], smp[k]
		}
		s := smp[k]
		if s == nil {
			continue
		}
		i := int(idx[k])
		inF, lat := s.inFlight, s.latency
		if budget < reuseUnbounded {
			if uses := s.uses.Add(1); int(uses) >= budget {
				// Budget spent: unpublish, unless a fresher probe
				// already replaced the publication.
				hs[i].e.pub.CompareAndSwap(s, nil)
			}
		}
		cold := inF <= threshold
		better := false
		switch {
		case best == -1:
			better = true
		case cold && !bestCold:
			better = true
		case cold == bestCold && cold:
			better = lat < bestLat
		case cold == bestCold:
			better = inF < bestIF
		}
		if better {
			best, bestCold, bestLat, bestIF = i, cold, lat, inF
		}
	}
	return best
}

// Clear drops every pooled sample — the reseeding step of a runtime
// policy swap, after which the prober's next round repopulates from
// live probes only.
func (p *Pools) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		e.samples = e.samples[:0]
		e.pub.Store(nil)
	}
}

//go:build checkyield

package httpcluster

import "sync/atomic"

// yieldHook is the installed schedule-exploration hook; nil means pass
// through. Stored as a pointer-to-func so installation is atomic with
// respect to concurrent dispatchers.
var yieldHook atomic.Pointer[func(site string)]

// SetYieldHook installs (or with nil, removes) the scheduling hook the
// interleaving explorer uses to serialize goroutines at the chkYield
// sites. Only compiled under -tags checkyield; production builds have
// neither this function nor any hook indirection (yield_off.go).
func SetYieldHook(h func(site string)) {
	if h == nil {
		yieldHook.Store(nil)
		return
	}
	yieldHook.Store(&h)
}

// chkYield invokes the installed hook, if any. See yield_off.go for the
// placement rule (never under a mutex).
func chkYield(site string) {
	if h := yieldHook.Load(); h != nil {
		(*h)(site)
	}
}

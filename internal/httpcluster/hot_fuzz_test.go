package httpcluster

import (
	"math"
	"testing"
	"time"
)

// Fuzz and property tests for the two pure kernels of the lock-free
// dispatch path: the packed hot-word encode/decode and the atomicFloat
// CAS arithmetic. Both are compared against straight-line reference
// math — the same differential discipline internal/check applies to the
// whole balancer, shrunk to the primitive level where go test -fuzz can
// drive billions of inputs through them.

// hotWordFlags enumerates the flag-bit combinations.
var hotWordFlags = []uint64{
	0,
	hotQuarantined,
	hotProbeArmed,
	hotProbing,
	hotQuarantined | hotProbeArmed,
	hotQuarantined | hotProbing,
	hotQuarantined | hotProbeArmed | hotProbing,
}

// FuzzHotWordRoundTrip checks the packed-word encode/decode round trip:
// for any state, flag set and deadline, decoding returns the encoded
// state and flags exactly, and the decoded deadline equals the encoded
// one clamped into [0, hotRecoverMax] — saturating, never wrapping.
// The pre-clamp encoder wrapped deadlines beyond 2^59 ns; see
// internal/check/testdata/recover-overflow.script for the divergence
// that surfaced as.
func FuzzHotWordRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(0), int64(0))
	f.Add(uint8(2), uint8(1), int64(12345))
	f.Add(uint8(3), uint8(6), hotRecoverMax)
	f.Add(uint8(2), uint8(2), hotRecoverMax+1)      // overflow: must clamp
	f.Add(uint8(3), uint8(3), int64(1<<59)+1000)    // the shape the harness found
	f.Add(uint8(1), uint8(4), int64(math.MaxInt64)) // extreme future
	f.Add(uint8(2), uint8(5), int64(-1))            // negative: must clamp to 0
	f.Fuzz(func(t *testing.T, stateIn, flagIn uint8, nanos int64) {
		state := BackendState(1 + int(stateIn)%3)
		flags := hotWordFlags[int(flagIn)%len(hotWordFlags)]
		w := withRecover(withState(flags, state), nanos)

		if got := hotState(w); got != state {
			t.Fatalf("state %v decoded as %v", state, got)
		}
		if got := w &^ (hotStateMask | uint64(hotRecoverMax)<<hotRecoverOff); got != flags {
			t.Fatalf("flags %#x decoded as %#x", flags, got)
		}
		want := nanos
		if want < 0 {
			want = 0
		}
		if want > hotRecoverMax {
			want = hotRecoverMax
		}
		if got := hotRecover(w); got != want {
			t.Fatalf("recover(%d) decoded as %d, want clamp to %d", nanos, got, want)
		}
		// Clearing the deadline must preserve state and flags bit-exactly.
		cleared := withRecover(w, 0)
		if hotState(cleared) != state || hotRecover(cleared) != 0 {
			t.Fatalf("clear broke the word: %#x", cleared)
		}
	})
}

// refFloatOp mirrors ReferenceBalancer's plain-float bookkeeping: the
// clamped subtraction from noteComplete, the straight addition from
// noteDispatch, and max-seeding from SetQuarantine re-admission.
type refFloat struct{ v float64 }

func (r *refFloat) add(d float64) {
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return
	}
	if s := r.v + d; !math.IsNaN(s) && !math.IsInf(s, 0) {
		r.v = s
	}
}

func (r *refFloat) subClamp(u float64) {
	if math.IsNaN(u) || math.IsInf(u, 0) {
		return
	}
	if r.v >= u {
		if d := r.v - u; !math.IsNaN(d) && !math.IsInf(d, 0) {
			r.v = d
		}
	} else {
		r.v = 0
	}
}

func (r *refFloat) storeMax(m float64) {
	if math.IsNaN(m) || math.IsInf(m, 0) {
		return
	}
	if m > r.v {
		r.v = m
	}
}

// FuzzAtomicFloatMath drives an atomicFloat and the reference
// plain-float bookkeeping through the same op sequence and requires
// bit-identical results, plus the finiteness invariant the write-site
// guards enforce: starting finite, the value stays finite no matter
// what inputs arrive.
func FuzzAtomicFloatMath(f *testing.F) {
	f.Add(uint64(0x3ff0000000000000), []byte{0, 1, 2, 3}) // 1.0, one op of each kind
	f.Add(uint64(0), []byte{1, 1, 1})
	f.Add(uint64(0x7ff8000000000000), []byte{0}) // NaN operand stream
	f.Add(uint64(0x7ff0000000000000), []byte{2}) // +Inf operand
	// Found by this target: SubClamp of a hugely negative finite unit is
	// an addition in disguise and overflowed the difference to +Inf.
	f.Add(math.Float64bits(-1.8613679314570166e+297), []byte{3, 1})
	f.Fuzz(func(t *testing.T, opBits uint64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		var af atomicFloat
		var rf refFloat
		af.Store(1)
		rf.v = 1
		// Derive a deterministic operand stream from opBits: the raw bit
		// pattern first (so NaN/Inf payloads are reachable), then
		// splitmix successors folded to modest magnitudes.
		seed := opBits
		operand := func() float64 {
			v := math.Float64frombits(seed)
			seed = seed*0x9e3779b97f4a7c15 + 1
			return v
		}
		for _, op := range ops {
			v := operand()
			switch op % 4 {
			case 0:
				af.Add(v)
				rf.add(v)
			case 1:
				af.SubClamp(v)
				rf.subClamp(v)
			case 2:
				af.StoreMax(v)
				rf.storeMax(v)
			case 3:
				af.Store(v)
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					rf.v = v
				}
			}
			got := af.Load()
			if math.Float64bits(got) != math.Float64bits(rf.v) {
				t.Fatalf("op %d operand %g: atomicFloat %g, reference %g", op%4, v, got, rf.v)
			}
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("op %d operand %g poisoned the value to %g", op%4, v, got)
			}
		}
	})
}

// TestAtomicFloatRejectsNonFinite is the direct regression for the
// poisoning bug: before the write-site guards, one NaN folded into an
// atomicFloat propagated through every subsequent CAS update.
func TestAtomicFloatRejectsNonFinite(t *testing.T) {
	var af atomicFloat
	af.Store(5)
	af.Add(math.NaN())
	af.Add(math.Inf(1))
	af.SubClamp(math.NaN())
	af.StoreMax(math.NaN())
	af.StoreMax(math.Inf(1))
	af.Store(math.NaN())
	af.Store(math.Inf(-1))
	if got := af.Load(); got != 5 {
		t.Fatalf("value %g after non-finite writes, want 5 untouched", got)
	}
	// Finite math still works.
	af.Add(2)
	af.SubClamp(3)
	if got := af.Load(); got != 4 {
		t.Fatalf("value %g after finite math, want 4", got)
	}
}

// TestSetWeightRejectsNonFinite pins the SetWeight guard on both
// implementations: NaN slipped through the old `w <= 0` check (NaN
// compares false) and ±Inf passed it outright.
func TestSetWeightRejectsNonFinite(t *testing.T) {
	be := NewBackend("a", "http://unused", 1)
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0} {
		be.SetWeight(w)
		if got := be.Weight(); got != 1 {
			t.Fatalf("SetWeight(%g): weight %g, want 1", w, got)
		}
	}
	be.SetWeight(2.5)
	if got := be.Weight(); got != 2.5 {
		t.Fatalf("finite weight: %g, want 2.5", got)
	}

	rb := NewReferenceBalancer(PolicyCurrentLoad, []string{"a"}, 1, Config{})
	rb.SetWeight("a", math.NaN())
	rb.SetWeight("a", math.Inf(1))
	if got := rb.backends[0].weightLocked(); got != 1 {
		t.Fatalf("reference SetWeight(non-finite): weight %g, want 1", got)
	}
}

// TestWithRecoverClampRoundTrip is the encode/decode property test the
// fuzz target reuses, kept as a deterministic unit test so the clamp is
// exercised on every plain `go test` run too.
func TestWithRecoverClampRoundTrip(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 0},
		{1, 1},
		{hotRecoverMax, hotRecoverMax},
		{hotRecoverMax + 1, hotRecoverMax},
		{1 << 59, hotRecoverMax},
		{(1 << 59) + 1000, hotRecoverMax},
		{math.MaxInt64, hotRecoverMax},
		{-1, 0},
		{math.MinInt64, 0},
	}
	for _, c := range cases {
		w := withRecover(withState(hotQuarantined, BackendBusy), c.in)
		if got := hotRecover(w); got != c.want {
			t.Errorf("withRecover(%d): decoded %d, want %d", c.in, got, c.want)
		}
		if hotState(w) != BackendBusy || w&hotQuarantined == 0 {
			t.Errorf("withRecover(%d) corrupted state/flag bits: %#x", c.in, w)
		}
	}
}

// TestRecordLatencyReseedsPoisonedEWMA pins the ewmaLat guard: before
// it, a non-finite EWMA state folded into every subsequent CAS update
// (NaN arithmetic is absorbing), permanently poisoning the latency
// estimate the probe endpoint serves. The guarded fold reseeds from the
// next sample instead.
func TestRecordLatencyReseedsPoisonedEWMA(t *testing.T) {
	a := &AppServer{}
	a.recordLatency(10 * time.Millisecond)
	if got := a.EWMALatency(); got != 10*time.Millisecond {
		t.Fatalf("first sample seeded %v, want 10ms", got)
	}
	a.ewmaLat.Store(math.Float64bits(math.NaN()))
	a.recordLatency(20 * time.Millisecond)
	if got := a.EWMALatency(); got != 20*time.Millisecond {
		t.Fatalf("poisoned EWMA reseeded to %v, want 20ms", got)
	}
	// A negative sample (stepped clock) clamps to zero, pulling the
	// EWMA down by one alpha step rather than corrupting it.
	a.recordLatency(-time.Second)
	if got := a.EWMALatency(); got != 16*time.Millisecond {
		t.Fatalf("negative sample folded to %v, want 16ms", got)
	}
}

package httpcluster

import (
	"sync"
	"time"
)

// Resilience configures the proxy's graceful-degradation path. When nil
// the proxy keeps the paper's baseline behavior — workers block
// indefinitely for a slot, one upstream attempt per request, no
// deadline beyond the client timeout — which is exactly the behavior
// the millibottleneck amplification chain exploits. With Resilience
// set, the proxy bounds every stage instead: a shed budget on the
// worker-pool wait (fast-fail 503 instead of goroutine pile-up), a
// per-attempt deadline on backend calls, and bounded
// retry-on-next-backend gated by a global retry budget so a stalled
// backend cannot convert into a retry storm (the paper's TCP
// retransmission cluster, in HTTP form).
type Resilience struct {
	// AttemptTimeout bounds one upstream round trip. Zero means 2s.
	AttemptTimeout time.Duration
	// MaxRetries bounds additional attempts after the first (each on a
	// freshly selected backend, skipping stickiness). Zero means 2;
	// negative disables retries.
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff between
	// attempts (backoff << (attempt-1)). Zero means 5ms.
	RetryBackoff time.Duration
	// RetryBudget is the token-bucket refill ratio: every first attempt
	// deposits RetryBudget tokens and every retry withdraws one, so
	// sustained retry volume is capped at this fraction of request
	// volume. Zero means 0.2; negative disables the budget (retries
	// bounded only by MaxRetries).
	RetryBudget float64
	// RetryBudgetCap bounds banked tokens, limiting the retry burst a
	// quiet period can save up. Zero means 50.
	RetryBudgetCap float64
	// ShedAfter bounds the wait for a proxy worker slot; requests
	// exceeding it are shed with 503. Zero means 1s. The bound is
	// enforced by the admission plane: when ProxyConfig.Admission is
	// nil, StartProxy arms admission.FixedShed(ShedAfter) — a static
	// gate sized to the worker pool with the same bounded wait. An
	// explicit Admission config takes precedence over ShedAfter.
	ShedAfter time.Duration
}

func (r Resilience) withDefaults() Resilience {
	if r.AttemptTimeout == 0 {
		r.AttemptTimeout = 2 * time.Second
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = 2
	}
	if r.MaxRetries < 0 {
		r.MaxRetries = 0
	}
	if r.RetryBackoff == 0 {
		r.RetryBackoff = 5 * time.Millisecond
	}
	if r.RetryBudget == 0 {
		r.RetryBudget = 0.2
	}
	if r.RetryBudgetCap == 0 {
		r.RetryBudgetCap = 50
	}
	if r.ShedAfter == 0 {
		r.ShedAfter = time.Second
	}
	return r
}

// retryBudget is a token bucket refilled as a fraction of first-attempt
// volume (the Finagle retry-budget shape). It starts full so isolated
// failures always get their retries; only a sustained failure rate
// drains it, at which point retries are bounded to the refill ratio of
// ongoing traffic.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	refill float64
	cap    float64
}

func newRetryBudget(refill, cap float64) *retryBudget {
	if refill < 0 {
		return nil // budget disabled
	}
	return &retryBudget{tokens: cap, refill: refill, cap: cap}
}

// deposit credits one first attempt. Nil-safe.
func (rb *retryBudget) deposit() {
	if rb == nil {
		return
	}
	rb.mu.Lock()
	rb.tokens += rb.refill
	if rb.tokens > rb.cap {
		rb.tokens = rb.cap
	}
	rb.mu.Unlock()
}

// withdraw spends one retry token, reporting whether the retry is
// allowed. A nil budget always allows.
func (rb *retryBudget) withdraw() bool {
	if rb == nil {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

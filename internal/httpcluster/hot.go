package httpcluster

import (
	"math"
	"sync/atomic"
	"time"
)

// Lock-free primitives for the dispatch hot path. The balancer's
// ranking sweeps read every backend on every dispatch; under the
// original design each read took the backend's mutex, so N concurrent
// proxy workers serialized on N×backends lock acquisitions per request
// — exactly the kind of hidden serialization point the paper shows
// turning sub-millisecond work into very long response times once cores
// contend. The hot fields now live in atomics:
//
//   - the 3-state machine state, the Busy/Error recovery deadline and
//     the quarantine/probe flags are packed into one uint64 ("hot
//     word"), so a single atomic load yields a consistent snapshot of
//     everything a ranking sweep needs;
//   - lb_value and weight are float64 bit patterns updated by CAS;
//   - dispatched / completed / traffic are plain atomic counters;
//   - the endpoint pool is an atomic token count (the old buffered
//     channel took the channel lock on every acquire and release).
//
// Writers of the hot word (state transitions, quarantine, probe
// arming) still hold the backend mutex, which makes their
// load-modify-store sequences race-free without CAS; readers never
// take any lock. DESIGN.md §12 documents the full memory model.

// Hot word layout: | recoverAt nanos since base : 59 | probing : 1 |
// probeArmed : 1 | quarantined : 1 | state : 2 |. 2^59 ns ≈ 18 years,
// far beyond any proxy lifetime; recover bits of zero mean "no
// deadline".
const (
	hotStateMask   = 0b11
	hotQuarantined = 1 << 2
	hotProbeArmed  = 1 << 3
	hotProbing     = 1 << 4
	hotRecoverOff  = 5
)

// hotRecoverMax is the largest encodable recovery deadline
// (nanos since base), ≈ 18 years. Deadlines beyond it are clamped to
// the field maximum on encode: a clamped backend stays excluded "for
// 18 years" — indistinguishable in any real run from the configured
// longer interval — whereas letting the shift truncate produced a
// wrapped deadline that either read as already-passed (un-quarantining
// the backend instantly) or as zero (wedging it with no deadline at
// all). Found by internal/check's overflow arm: see
// testdata/recover-overflow*.script.
const hotRecoverMax = int64(1<<(64-hotRecoverOff)) - 1

// hotAvailable is the steady-state hot word: Available, no flags, no
// recovery deadline. A backend whose word equals this (and whose
// failure streak is zero) takes the entirely lock-free bookkeeping
// path on dispatch and completion.
const hotAvailable = uint64(BackendAvailable)

// hotState extracts the 3-state machine state.
func hotState(w uint64) BackendState { return BackendState(w & hotStateMask) }

// hotRecover extracts the recovery deadline as nanoseconds since the
// backend's base time; zero means no deadline is set.
func hotRecover(w uint64) int64 { return int64(w >> hotRecoverOff) }

// withState returns w with the state replaced.
func withState(w uint64, s BackendState) uint64 {
	return (w &^ hotStateMask) | uint64(s)
}

// withRecover returns w with the recovery deadline replaced (nanos
// since base; zero clears it). Out-of-range deadlines are clamped to
// the field bounds — negative to zero, beyond hotRecoverMax to
// hotRecoverMax — so the encode↔decode round trip is exact for every
// in-range value and saturating (never wrapping) outside it.
func withRecover(w uint64, nanos int64) uint64 {
	if nanos < 0 {
		nanos = 0
	}
	if nanos > hotRecoverMax {
		nanos = hotRecoverMax
	}
	return (w & (hotStateMask | hotQuarantined | hotProbeArmed | hotProbing)) |
		uint64(nanos)<<hotRecoverOff
}

// effectiveState resolves the state a ranking sweep should see at
// sinceBase (= now relative to the backend's base time): a Busy or
// Error backend whose recovery deadline has passed reads as Available
// even though the stored word has not been rewritten yet. due reports
// whether a real (stored) transition is pending; the next slow-path
// touch applies it.
func effectiveState(w uint64, sinceBase int64) (st BackendState, due bool) {
	st = hotState(w)
	if st == BackendAvailable {
		return st, false
	}
	if rec := hotRecover(w); rec != 0 && sinceBase > rec {
		return BackendAvailable, true
	}
	return st, false
}

// atomicFloat is a float64 published through atomic uint64 bit
// patterns, with the CAS update loops the lb_value bookkeeping needs.
//
// Every write site rejects non-finite inputs: a single NaN folded into
// an lb_value propagates through every subsequent CAS-EWMA and ranking
// comparison (NaN compares false against everything, so the poisoned
// backend permanently wins or permanently loses ties), and unlike the
// mutex era there is no slow-path reconciliation to flush it out.
// Found by internal/check: see testdata/weight-nan.script.
type atomicFloat struct{ bits atomic.Uint64 }

// isFinite reports whether v is a usable float (not NaN, not ±Inf).
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Load reads the current value.
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Store publishes v; non-finite values are dropped.
func (f *atomicFloat) Store(v float64) {
	if !isFinite(v) {
		return
	}
	f.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop; a non-finite delta (or a sum that
// overflows to ±Inf) leaves the value unchanged.
func (f *atomicFloat) Add(delta float64) {
	if !isFinite(delta) {
		return
	}
	for {
		old := f.bits.Load()
		sum := math.Float64frombits(old) + delta
		if !isFinite(sum) {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// SubClamp subtracts unit, clamping at zero — the decrement the
// in-flight policies apply on completion. A non-finite unit, or a
// difference that overflows to +Inf (a hugely negative unit is an
// addition in disguise), is dropped.
func (f *atomicFloat) SubClamp(unit float64) {
	if !isFinite(unit) {
		return
	}
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		next := 0.0
		if cur >= unit {
			next = cur - unit
			if !isFinite(next) {
				return
			}
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// StoreMax raises the value to at least v — quarantine re-admission's
// recovery seeding, which must not clobber a concurrent decrement with
// a stale read. A non-finite v is dropped (NaN compares false against
// the current value, so without the guard it would always store).
func (f *atomicFloat) StoreMax(v float64) {
	if !isFinite(v) {
		return
	}
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// splitmixSource is a goroutine-safe rand/v2 source: each draw hashes
// the next value of an atomic counter through the splitmix64 finalizer.
// Concurrent dispatchers share one *rand.Rand over it without a lock
// (rand/v2's Rand keeps no state outside its source), and a
// single-goroutine caller still gets a deterministic sequence.
type splitmixSource struct {
	seed uint64
	ctr  atomic.Uint64
}

// Uint64 implements rand.Source.
func (s *splitmixSource) Uint64() uint64 {
	z := s.seed + s.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nanosSince converts now to the packed-word time base.
func nanosSince(base time.Time, now time.Time) int64 {
	d := now.Sub(base)
	if d < 0 {
		return 0
	}
	return int64(d)
}

package httpcluster

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/admission"
	"millibalance/internal/obs"
	"millibalance/internal/probe"
	"millibalance/internal/telemetry"
)

// AppServerConfig sizes a loopback application server.
type AppServerConfig struct {
	// Name identifies the server.
	Name string
	// Workers bounds concurrently served requests (Tomcat maxThreads).
	Workers int
	// ServiceTime is the nominal per-request service time.
	ServiceTime time.Duration
	// DBURL, when non-empty, makes each request issue DBQueries round
	// trips to the database stub.
	DBURL     string
	DBQueries int
	// ResponseBytes sizes the response payload.
	ResponseBytes int
}

// AppServer is a real HTTP application server whose progress can be
// frozen by Stall — the loopback equivalent of a dirty-page-flush
// millibottleneck. Service time is consumed in slices with a stall gate
// between them, so an open stall window freezes in-flight requests too,
// matching the simulated CPU model.
type AppServer struct {
	cfg      AppServerConfig
	addr     string
	mux      *http.ServeMux
	workers  chan struct{}
	stallMu  sync.RWMutex
	served   atomic.Uint64
	inflight atomic.Int64
	client   *http.Client
	payload  []byte
	wg       sync.WaitGroup

	// extraDelay is fault-injected additional service time per request
	// (nanoseconds), the slow-response degradation shape.
	extraDelay atomic.Int64

	// ewmaLat is the request-latency EWMA served at GET /admin/probe,
	// stored as float64 bits so readers and the CAS update loop stay
	// lock-free.
	ewmaLat atomic.Uint64

	// srvMu guards the listener/server pair across Crash/Restart/Close.
	srvMu  sync.Mutex
	ln     net.Listener
	srv    *http.Server
	down   bool
	closed bool
}

// StartAppServer launches the server on an ephemeral loopback port.
func StartAppServer(cfg AppServerConfig) (*AppServer, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 2 * time.Millisecond
	}
	if cfg.ResponseBytes <= 0 {
		cfg.ResponseBytes = 2048
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpcluster: listen: %w", err)
	}
	a := &AppServer{
		cfg:     cfg,
		addr:    ln.Addr().String(),
		ln:      ln,
		workers: make(chan struct{}, cfg.Workers),
		client:  &http.Client{Timeout: 5 * time.Second},
		payload: []byte(strings.Repeat("x", cfg.ResponseBytes)),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", a.handle)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	a.adminMux(mux)
	a.mux = mux
	a.srv = &http.Server{Handler: mux}
	a.wg.Add(1)
	go func(srv *http.Server, ln net.Listener) {
		defer a.wg.Done()
		// ErrServerClosed is the normal shutdown path.
		_ = srv.Serve(ln)
	}(a.srv, ln)
	return a, nil
}

// URL returns the server's base URL. The address is stable across
// Crash/Restart cycles.
func (a *AppServer) URL() string { return "http://" + a.addr }

// Name returns the configured name.
func (a *AppServer) Name() string { return a.cfg.Name }

// Served reports completed requests.
func (a *AppServer) Served() uint64 { return a.served.Load() }

// InFlight reports requests currently inside the server.
func (a *AppServer) InFlight() int { return int(a.inflight.Load()) }

// Stall freezes request progress for d: in-flight requests pause at the
// next stall gate and new requests block at the first. It returns
// immediately.
func (a *AppServer) Stall(d time.Duration) {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.stallMu.Lock()
		time.Sleep(d)
		a.stallMu.Unlock()
	}()
}

// SetExtraDelay injects (or, with zero, clears) additional per-request
// service time — the slow-response degradation fault shape. The delay
// applies to requests in flight as well, spread over their remaining
// service slices.
func (a *AppServer) SetExtraDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	a.extraDelay.Store(int64(d))
}

// ExtraDelay reads the currently injected additional service time.
func (a *AppServer) ExtraDelay() time.Duration {
	return time.Duration(a.extraDelay.Load())
}

// Crash closes the server abruptly — the listener stops accepting and
// every open connection (including the proxy's pooled keep-alives) is
// torn down, so in-flight requests fail the way a process crash fails
// them. The bound address is retained for Restart. A no-op while
// already down or closed.
func (a *AppServer) Crash() {
	a.srvMu.Lock()
	defer a.srvMu.Unlock()
	if a.down || a.closed {
		return
	}
	a.down = true
	_ = a.srv.Close()
}

// Restart re-listens on the original address and serves again — the
// delayed-restart half of the crash fault. A no-op when the server is
// up; an error when the address cannot be rebound or the server was
// Closed for good.
func (a *AppServer) Restart() error {
	a.srvMu.Lock()
	defer a.srvMu.Unlock()
	if a.closed {
		return fmt.Errorf("httpcluster: %s closed", a.cfg.Name)
	}
	if !a.down {
		return nil
	}
	ln, err := net.Listen("tcp", a.addr)
	if err != nil {
		return fmt.Errorf("httpcluster: restart %s: %w", a.cfg.Name, err)
	}
	a.ln = ln
	a.srv = &http.Server{Handler: a.mux}
	a.down = false
	a.wg.Add(1)
	go func(srv *http.Server, ln net.Listener) {
		defer a.wg.Done()
		_ = srv.Serve(ln)
	}(a.srv, ln)
	return nil
}

// Down reports whether the server is crashed (between Crash and a
// successful Restart).
func (a *AppServer) Down() bool {
	a.srvMu.Lock()
	defer a.srvMu.Unlock()
	return a.down
}

// Close shuts the server down permanently.
func (a *AppServer) Close() error {
	a.srvMu.Lock()
	a.closed = true
	var err error
	if !a.down {
		err = a.srv.Close()
		a.down = true
	}
	a.srvMu.Unlock()
	a.wg.Wait()
	return err
}

// stallGate blocks while a stall window is open.
func (a *AppServer) stallGate() {
	a.stallMu.RLock()
	//lint:ignore SA2001 the lock is a pure gate: acquiring it at all is the wait
	a.stallMu.RUnlock()
}

const serviceSlices = 8

func (a *AppServer) handle(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	a.inflight.Add(1)
	defer a.inflight.Add(-1)
	a.workers <- struct{}{}
	defer func() { <-a.workers }()

	slice := (a.cfg.ServiceTime + a.ExtraDelay()) / serviceSlices
	for i := 0; i < serviceSlices; i++ {
		a.stallGate()
		time.Sleep(slice)
	}
	for i := 0; i < a.cfg.DBQueries && a.cfg.DBURL != ""; i++ {
		resp, err := a.client.Get(a.cfg.DBURL + "/query")
		if err != nil {
			http.Error(w, "db error: "+err.Error(), http.StatusBadGateway)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	a.stallGate()
	a.served.Add(1)
	a.recordLatency(time.Since(start))
	w.Header().Set("X-App-Server", a.cfg.Name)
	_, _ = w.Write(a.payload)
}

// appEWMAAlpha weights the latest request latency in the server's EWMA.
const appEWMAAlpha = 0.2

// recordLatency folds one completed request's latency into the EWMA
// with a lock-free CAS loop; the first observation seeds it directly.
// Negative samples (a stepped clock) are clamped to zero, and a
// non-finite EWMA state — which would otherwise propagate through every
// subsequent CAS fold, the same poisoning mode atomicFloat guards
// against — is reseeded from the sample instead of folded.
func (a *AppServer) recordLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	for {
		old := a.ewmaLat.Load()
		cur := math.Float64frombits(old)
		next := float64(d)
		if old != 0 && isFinite(cur) {
			next = cur + appEWMAAlpha*(float64(d)-cur)
		}
		if a.ewmaLat.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// EWMALatency reads the request-latency estimate served at
// GET /admin/probe (zero until the first request completes).
func (a *AppServer) EWMALatency() time.Duration {
	return time.Duration(math.Float64frombits(a.ewmaLat.Load()))
}

// DBServer is the database stub: each query burns a fixed service time
// and returns a small payload.
type DBServer struct {
	ln      net.Listener
	srv     *http.Server
	queries atomic.Uint64
	wg      sync.WaitGroup
}

// StartDBServer launches the stub on an ephemeral loopback port.
// queryTime is the per-query service time.
func StartDBServer(queryTime time.Duration) (*DBServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpcluster: listen: %w", err)
	}
	d := &DBServer{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(queryTime)
		d.queries.Add(1)
		fmt.Fprintln(w, `{"rows":1}`)
	})
	d.srv = &http.Server{Handler: mux}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// URL returns the stub's base URL.
func (d *DBServer) URL() string { return "http://" + d.ln.Addr().String() }

// Queries reports served queries.
func (d *DBServer) Queries() uint64 { return d.queries.Load() }

// Close shuts the stub down.
func (d *DBServer) Close() error {
	err := d.srv.Close()
	d.wg.Wait()
	return err
}

// ProxyConfig sizes the web-tier reverse proxy.
type ProxyConfig struct {
	// Workers bounds concurrently proxied requests (Apache
	// MaxClients); excess requests queue on the semaphore like
	// connections in an accept backlog.
	Workers int
	// Policy, Mechanism and LB configure the balancer.
	Policy    Policy
	Mechanism Mechanism
	LB        Config
	// SpanCapacity, when positive, traces every proxied request into a
	// bounded ring of lifecycle spans served at GET /admin/trace.
	SpanCapacity int
	// EventCapacity, when positive, records balancer decisions, state
	// transitions and rejects into a bounded event log served at
	// GET /admin/events.
	EventCapacity int
	// Adapt, when non-nil, arms the millibottleneck-aware adaptive
	// control plane (internal/adapt): a controller goroutine watches
	// the balancer for stalled backends, quarantines them, hot-swaps
	// policy/mechanism under sustained VLRT or reject pressure, and
	// serves its state at GET /admin/adapt and its decision log at
	// GET /admin/adapt/decisions.
	Adapt *adapt.Config
	// Probe, when non-nil, tunes the asynchronous probing subsystem
	// (internal/probe) behind the prequal policy. Probing also arms
	// implicitly — with defaults — whenever prequal is the configured
	// Policy or appears among the adaptive ladder's swap targets;
	// otherwise the prober, its goroutines and the /admin/probe polling
	// never exist.
	Probe *probe.Config
	// Transport, when non-nil, replaces the upstream client's transport
	// — the injection point for internal/faults' network latency/loss
	// RoundTripper.
	Transport http.RoundTripper
	// Resilience, when non-nil, arms the graceful-degradation path:
	// per-attempt deadlines, bounded budgeted retries and fast-fail
	// load shedding. Nil preserves the paper's baseline blocking
	// behavior. Its bounded-wait shed is implemented by the admission
	// plane: when Admission is nil, a Resilience config arms an
	// admission.FixedShed gate with the same ShedAfter bound.
	Resilience *Resilience
	// Admission, when non-nil, arms the overload-control plane
	// (internal/admission) in front of the worker pool: an adaptive
	// concurrency limiter (static/aimd/gradient), optional CoDel
	// discipline on the pre-dispatch wait, and two-class priority
	// shedding (X-Priority: background requests only get the limit's
	// headroom and never queue). The gate's state streams at
	// GET /admin/admission. Nil together with a nil Resilience keeps
	// the paper's baseline unbounded blocking wait.
	Admission *admission.Config
	// Telemetry, when non-nil, arms the fine-grained resource timeline
	// sampler (internal/telemetry): a background goroutine records
	// proxy worker saturation, accept-queue wait, per-backend
	// in-flight/pool/completion gauges and Go runtime signals at the
	// configured sub-second interval (default 50 ms). The timeline is
	// exported as Prometheus text at GET /metrics and as JSON Lines at
	// GET /admin/timeline. Nil keeps the dispatch hot path free of any
	// sampling work.
	Telemetry *telemetry.Config
}

// Proxy is the web tier: an HTTP server that forwards each request to
// the backend its balancer picks, holding a worker slot for the full
// request lifetime (including any time the original get_endpoint spends
// polling a stalled backend).
type Proxy struct {
	cfg     ProxyConfig
	bal     *Balancer
	ln      net.Listener
	srv     *http.Server
	workers chan struct{}
	client  *http.Client
	served  atomic.Uint64
	errors  atomic.Uint64
	wg      sync.WaitGroup

	epoch  time.Time
	tracer *obs.Tracer
	events *obs.EventLog
	reqID  atomic.Uint64
	adaptC *adapt.Controller
	adaptR *adaptRunner

	resil   *Resilience
	budget  *retryBudget
	shed    atomic.Uint64
	retries atomic.Uint64

	adm      *admission.Gate
	admPlane *admissionPlane

	sampler *telemetry.WallSampler
	waiting atomic.Int64 // requests blocked on a worker slot

	pools  *probe.Pools
	prober *probe.WallProber
}

// StartProxy launches the proxy over the given backends.
func StartProxy(cfg ProxyConfig, backends []*Backend) (*Proxy, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 64
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpcluster: listen: %w", err)
	}
	p := &Proxy{
		cfg:     cfg,
		bal:     NewBalancer(cfg.Policy, cfg.Mechanism, backends, cfg.LB),
		ln:      ln,
		workers: make(chan struct{}, cfg.Workers),
		client:  &http.Client{Timeout: 10 * time.Second, Transport: cfg.Transport},
		epoch:   time.Now(),
	}
	if cfg.Resilience != nil {
		r := cfg.Resilience.withDefaults()
		p.resil = &r
		p.budget = newRetryBudget(r.RetryBudget, r.RetryBudgetCap)
	}
	if cfg.SpanCapacity > 0 {
		p.tracer = obs.NewTracer(cfg.SpanCapacity)
	}
	if cfg.EventCapacity > 0 {
		p.events = obs.NewEventLog(cfg.EventCapacity)
		p.bal.SetEventLog(p.events, "proxy", p.epoch)
	}
	acfg := cfg.Admission
	if acfg == nil && p.resil != nil {
		// The historical fixed bounded-wait shed is an admission preset:
		// a static gate sized to the worker pool with a ShedAfter wait.
		acfg = admission.FixedShed(p.resil.ShedAfter)
	}
	if acfg != nil {
		p.armAdmission(*acfg)
	}
	p.armProbing(backends)
	if cfg.Adapt != nil {
		p.armAdapt(*cfg.Adapt)
	}
	if cfg.Telemetry != nil {
		p.armTelemetry(*cfg.Telemetry)
	}
	p.srv = &http.Server{Handler: p.adminHandler(p.handle)}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_ = p.srv.Serve(ln)
	}()
	return p, nil
}

// URL returns the proxy's base URL.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Balancer exposes the proxy's balancer for inspection.
func (p *Proxy) Balancer() *Balancer { return p.bal }

// Served and Errors report response counters.
func (p *Proxy) Served() uint64 { return p.served.Load() }

// Errors reports requests answered with an error.
func (p *Proxy) Errors() uint64 { return p.errors.Load() }

// Shed reports requests fast-failed at the worker-pool door.
func (p *Proxy) Shed() uint64 { return p.shed.Load() }

// Retries reports resilience-layer retry hops.
func (p *Proxy) Retries() uint64 { return p.retries.Load() }

// WorkersInFlight reports occupied proxy worker slots.
func (p *Proxy) WorkersInFlight() int { return len(p.workers) }

// Epoch returns the proxy's start time (the zero point of its span and
// event timestamps).
func (p *Proxy) Epoch() time.Time { return p.epoch }

// Tracer exposes the span ring (nil when tracing is disabled).
func (p *Proxy) Tracer() *obs.Tracer { return p.tracer }

// Events exposes the event log (nil when events are disabled).
func (p *Proxy) Events() *obs.EventLog { return p.events }

// now returns the span/event timestamp: wall time since the proxy
// started.
func (p *Proxy) now() time.Duration { return time.Since(p.epoch) }

// Close shuts the proxy down.
func (p *Proxy) Close() error {
	err := p.srv.Close()
	p.wg.Wait()
	if p.adaptR != nil {
		p.adaptR.close()
	}
	if p.prober != nil {
		p.prober.Stop()
	}
	p.sampler.Stop()
	return err
}

// armAdmission builds the gate and its goroutine wait plane. Limits are
// clamped to the worker pool — the gate must never promise concurrency
// the pool cannot run, or admitted requests would block on the worker
// channel and re-create the pile-up the plane exists to prevent. Called
// from StartProxy before the listener serves traffic.
func (p *Proxy) armAdmission(acfg admission.Config) {
	if acfg.Limit > p.cfg.Workers {
		acfg.Limit = p.cfg.Workers
	}
	if acfg.MaxLimit > p.cfg.Workers {
		acfg.MaxLimit = p.cfg.Workers
	}
	g := admission.NewGate(acfg, p.cfg.Workers)
	g.SetClock(p.now)
	g.SetDropHook(func(now time.Duration, cls admission.Class, r admission.Reason) {
		if p.events != nil {
			p.events.Append(obs.Event{
				T: now, Kind: obs.KindAdmissionDrop, Source: "proxy",
				Reason: r.String(), Class: cls.String(),
			})
		}
	})
	p.adm = g
	p.admPlane = newAdmissionPlane(g, p.now, &p.waiting)
}

// Admission exposes the admission gate (nil unless ProxyConfig.Admission
// or ProxyConfig.Resilience armed it).
func (p *Proxy) Admission() *admission.Gate { return p.adm }

// armProbing builds the probe pools, wires them into the balancer and
// starts the wall prober when this proxy can dispatch through prequal:
// an explicit ProxyConfig.Probe, prequal as the configured policy, or
// prequal anywhere in the adaptive ladder's swap targets. Called from
// StartProxy before armAdapt so a controller-driven swap to prequal
// finds the reseed hook already in place.
func (p *Proxy) armProbing(backends []*Backend) {
	need := p.cfg.Probe != nil || p.cfg.Policy == PolicyPrequal
	if ac := p.cfg.Adapt; ac != nil && (ac.PolicyTarget == "prequal" || ac.FallbackPolicy == "prequal") {
		need = true
	}
	if !need {
		return
	}
	var pcfg probe.Config
	if p.cfg.Probe != nil {
		pcfg = *p.cfg.Probe
	}
	// The pools share the proxy's epoch so probe sample ages line up
	// with span and event timestamps.
	p.pools = probe.NewPools(pcfg, p.now)
	targets := make([]probe.WallTarget, 0, len(backends))
	for _, be := range backends {
		targets = append(targets, probe.WallTarget{Name: be.Name(), URL: be.URL()})
	}
	// Rate-couple the probe loop to the proxy's served counter and carry
	// probes over the same (possibly fault-wrapped) transport as
	// requests, so probes see the network the traffic sees.
	p.prober = probe.NewWallProber(p.pools, targets, p.served.Load, p.cfg.Transport)
	p.bal.SetProbePools(p.pools, p.prober.Reseed)
	p.prober.Start()
}

// ProbePools exposes the probing subsystem's pools (nil when probing is
// not armed).
func (p *Proxy) ProbePools() *probe.Pools { return p.pools }

// armTelemetry builds the wall sampler over the proxy's own gauges and
// the balancer's per-backend counters. Called from StartProxy before
// the listener serves traffic.
func (p *Proxy) armTelemetry(tcfg telemetry.Config) {
	s := telemetry.NewWallSampler("proxy", tcfg)
	s.Register("proxy", telemetry.SignalWorkersBusy, func() float64 {
		return float64(len(p.workers))
	})
	s.Register("proxy", telemetry.SignalAcceptWait, func() float64 {
		return float64(p.waiting.Load())
	})
	if p.adm != nil {
		s.Register("proxy", telemetry.SignalAdmitLimit, func() float64 {
			return float64(p.adm.Limit())
		})
		s.Register("proxy", telemetry.SignalAdmitInFlight, func() float64 {
			return float64(p.adm.InFlight())
		})
		s.Register("proxy", telemetry.SignalAdmitQueue, func() float64 {
			return float64(p.adm.Queued())
		})
		s.Register("proxy", telemetry.SignalAdmitDropRate, func() float64 {
			return p.adm.DropRate(p.now())
		})
	}
	for _, be := range p.bal.Backends() {
		be := be
		s.Register(be.Name(), telemetry.SignalInFlight, func() float64 {
			return float64(be.InFlight())
		})
		s.Register(be.Name(), telemetry.SignalPoolFree, func() float64 {
			return float64(be.FreeEndpoints())
		})
		s.Register(be.Name(), telemetry.SignalCompleted, func() float64 {
			return float64(be.Completed())
		})
		if p.pools != nil {
			name := be.Name()
			s.Register(name, telemetry.SignalProbePoolDepth, func() float64 {
				return float64(p.pools.Depth(name))
			})
			s.Register(name, telemetry.SignalProbeStalenessMs, func() float64 {
				age, ok := p.pools.Staleness(name)
				if !ok {
					return -1
				}
				return float64(age) / float64(time.Millisecond)
			})
		}
	}
	p.sampler = s
	s.Start()
}

// Timeline exposes the telemetry timeline (nil when telemetry is
// disabled).
func (p *Proxy) Timeline() *telemetry.Timeline { return p.sampler.Timeline() }

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	// All span calls are nil-safe no-ops when tracing is disabled. The
	// wall-clock stage mapping mirrors the simulation's: worker wait →
	// web accept-queue, worker occupancy → web thread, AcquireSession →
	// get_endpoint, upstream round trip → app thread.
	start := p.now()
	sp := p.tracer.Start(p.reqID.Add(1), start)
	sp.Enter(obs.StageWebAcceptQueue, start)
	if !p.acquireWorker(classify(r)) {
		sp.Exit(obs.StageWebAcceptQueue, p.now())
		p.shed.Add(1)
		p.errors.Add(1)
		if p.events != nil {
			p.events.Append(obs.Event{T: p.now(), Kind: obs.KindShed, Source: "proxy"})
		}
		p.tracer.Finish(sp, p.now(), false)
		p.adaptOutcome(start, false)
		http.Error(w, "proxy saturated", http.StatusServiceUnavailable)
		return
	}
	// Defer order matters: the worker slot (registered second, released
	// first) must be free before the gate release wakes a waiter, so the
	// woken request's worker acquisition never blocks.
	admOK := false
	if p.adm != nil {
		admitAt := p.now()
		defer func() { p.adm.Release(p.now(), p.now()-admitAt, admOK) }()
	}
	defer func() { <-p.workers }()
	sp.Exit(obs.StageWebAcceptQueue, p.now())
	sp.Enter(obs.StageWebThread, p.now())

	reqBytes := r.ContentLength
	if reqBytes < 0 {
		reqBytes = 0
	}
	session := ""
	if cookie, err := r.Cookie("JSESSIONID"); err == nil {
		session = cookie.Value
	}

	p.budget.deposit()
	maxAttempts := 1
	if p.resil != nil {
		maxAttempts = 1 + p.resil.MaxRetries
	}
	failStatus := http.StatusServiceUnavailable
	failMsg := ErrNoBackend.Error()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if !p.budget.withdraw() {
				break
			}
			p.retries.Add(1)
			if p.events != nil {
				p.events.Append(obs.Event{T: p.now(), Kind: obs.KindRetry, Source: "proxy"})
			}
			time.Sleep(p.resil.RetryBackoff << (attempt - 1))
		}

		sp.Enter(obs.StageGetEndpoint, p.now())
		var be *Backend
		var rel Release
		var err error
		if attempt == 0 {
			be, rel, err = p.bal.AcquireSession(session, reqBytes)
		} else {
			// Retries skip stickiness: the pinned backend just failed,
			// so the hop must be free to land elsewhere.
			be, rel, err = p.bal.Acquire(reqBytes)
		}
		sp.Exit(obs.StageGetEndpoint, p.now())
		if err != nil {
			failStatus = http.StatusServiceUnavailable
			failMsg = err.Error()
			continue
		}

		sp.Enter(obs.StageAppThread, p.now())
		resp, err := p.roundTrip(r, be)
		if err != nil {
			sp.Exit(obs.StageAppThread, p.now())
			rel.Fail()
			failStatus = http.StatusBadGateway
			failMsg = "upstream: " + err.Error()
			continue
		}
		if resp.StatusCode >= 500 && p.resil != nil && attempt < maxAttempts-1 {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			sp.Exit(obs.StageAppThread, p.now())
			rel.Fail()
			failStatus = resp.StatusCode
			failMsg = "upstream status " + resp.Status
			continue
		}

		w.Header().Set("X-Backend", be.Name())
		w.WriteHeader(resp.StatusCode)
		n, _ := io.Copy(w, resp.Body)
		_ = resp.Body.Close()
		sp.Exit(obs.StageAppThread, p.now())
		rel.Done(n)
		p.served.Add(1)
		admOK = resp.StatusCode < 500
		p.tracer.Finish(sp, p.now(), resp.StatusCode < 500)
		p.adaptOutcome(start, resp.StatusCode < 500)
		return
	}
	p.errors.Add(1)
	p.tracer.Finish(sp, p.now(), false)
	p.adaptOutcome(start, false)
	http.Error(w, failMsg, failStatus)
}

// acquireWorker claims a proxy worker slot. With the admission plane
// armed (explicitly, or via the Resilience fixed-shed delegation) the
// gate decides: its limit never exceeds the pool, so the worker send
// after admission cannot be the blocking wait the plane just bounded.
// Without any plane it blocks indefinitely — the paper's pile-up
// behavior, where every blocked goroutine is a consumed web-tier thread.
func (p *Proxy) acquireWorker(cls admission.Class) bool {
	if p.adm != nil {
		if !p.admPlane.admit(cls) {
			return false
		}
		p.workers <- struct{}{}
		return true
	}
	select {
	case p.workers <- struct{}{}:
		return true
	default:
	}
	// Contended: count the wait so the telemetry accept_wait gauge sees
	// queued requests the way the simulator's accept queue does.
	p.waiting.Add(1)
	defer p.waiting.Add(-1)
	p.workers <- struct{}{}
	return true
}

// roundTrip performs one upstream attempt. With resilience armed the
// attempt carries a deadline; the response body keeps the context alive
// until closed.
func (p *Proxy) roundTrip(r *http.Request, be *Backend) (*http.Response, error) {
	url := be.URL() + r.URL.Path
	if p.resil == nil {
		return p.client.Get(url)
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.resil.AttemptTimeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases the attempt context when the response body is
// closed, so the deadline governs the full body read.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// adaptOutcome streams one client-observed outcome into the adaptive
// controller; a no-op when the control plane is off.
func (p *Proxy) adaptOutcome(start time.Duration, ok bool) {
	if p.adaptC == nil {
		return
	}
	now := p.now()
	p.adaptC.OnOutcome(now, now-start, ok)
}

// ParseBackendList parses "name=url,name=url" into backends with the
// given endpoint pool size, for CLI use.
func ParseBackendList(spec string, endpoints int) ([]*Backend, error) {
	if spec == "" {
		return nil, fmt.Errorf("httpcluster: empty backend list")
	}
	var out []*Backend
	for _, part := range strings.Split(spec, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("httpcluster: bad backend %q (want name=url)", part)
		}
		out = append(out, NewBackend(name, url, endpoints))
	}
	return out, nil
}

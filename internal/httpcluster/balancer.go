// Package httpcluster runs the paper's n-tier scenario over real
// loopback HTTP: application servers with bounded worker pools and
// injectable stalls, a web-tier reverse proxy implementing the same
// load-balancing policies and get_endpoint mechanisms as internal/lb —
// but in wall-clock time with goroutine concurrency — a database stub,
// and a closed-loop load generator.
//
// internal/lb is the reference implementation used by the deterministic
// simulation; this package is the deployment-shaped twin that
// demonstrates the identical algorithms and failure modes over real
// sockets.
package httpcluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"millibalance/internal/obs"
	"millibalance/internal/probe"
)

// Policy selects the lb_value bookkeeping (Algorithms 2–4).
type Policy int

const (
	// PolicyTotalRequest ranks by cumulative dispatched requests.
	PolicyTotalRequest Policy = iota + 1
	// PolicyTotalTraffic ranks by cumulative bytes exchanged.
	PolicyTotalTraffic
	// PolicyCurrentLoad ranks by in-flight requests (the remedy).
	PolicyCurrentLoad
	// PolicyRoundRobin rotates through non-excluded backends — the
	// adaptive control plane's fallback when every backend looks
	// stalled and lb_values carry no signal.
	PolicyRoundRobin
	// PolicyPrequal ranks by asynchronous probe replies (internal/probe):
	// sample d backends, classify hot/cold by probed in-flight quantile,
	// pick the cold one with the lowest estimated latency. Requires probe
	// pools (ProxyConfig.Probe or StartProxy's implicit arming); a
	// detached prequal falls back to in-flight ranking.
	PolicyPrequal
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyTotalRequest:
		return "total_request"
	case PolicyTotalTraffic:
		return "total_traffic"
	case PolicyCurrentLoad:
		return "current_load"
	case PolicyRoundRobin:
		return "round_robin"
	case PolicyPrequal:
		return "prequal"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PolicyNames lists the accepted policy names, in enum order — for CLI
// usage strings and ParsePolicy's error.
func PolicyNames() []string {
	return []string{"total_request", "total_traffic", "current_load", "round_robin", "prequal"}
}

// ParsePolicy resolves a policy name.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "total_request":
		return PolicyTotalRequest, nil
	case "total_traffic":
		return PolicyTotalTraffic, nil
	case "current_load":
		return PolicyCurrentLoad, nil
	case "round_robin":
		return PolicyRoundRobin, nil
	case "prequal":
		return PolicyPrequal, nil
	default:
		return 0, fmt.Errorf("httpcluster: unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
	}
}

// Mechanism selects the endpoint-acquisition strategy (Algorithm 1 or
// the remedy).
type Mechanism int

const (
	// MechanismOriginal polls a stalled backend's pool with 100 ms
	// sleeps for up to 300 ms while holding the caller.
	MechanismOriginal Mechanism = iota + 1
	// MechanismModified fails fast and marks the backend Busy.
	MechanismModified
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechanismOriginal:
		return "original_get_endpoint"
	case MechanismModified:
		return "modified_get_endpoint"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// ParseMechanism resolves a mechanism name.
func ParseMechanism(name string) (Mechanism, error) {
	switch name {
	case "original", "original_get_endpoint":
		return MechanismOriginal, nil
	case "modified", "modified_get_endpoint":
		return MechanismModified, nil
	default:
		return 0, fmt.Errorf("httpcluster: unknown mechanism %q", name)
	}
}

// BackendState is the 3-state machine state.
type BackendState int

const (
	// BackendAvailable accepts requests.
	BackendAvailable BackendState = iota + 1
	// BackendBusy recently failed to return an endpoint.
	BackendBusy
	// BackendError is excluded until the recovery interval passes.
	BackendError
)

// Backend is one application server as the proxy's balancer sees it.
type Backend struct {
	name string
	url  string

	endpoints chan struct{} // endpoint pool tokens

	mu          sync.Mutex
	lbValue     float64
	weight      float64
	state       BackendState
	recoverAt   time.Time
	consecFails int
	firstFail   time.Time
	dispatched  uint64
	completed   uint64
	traffic     int64
	quarantined bool
	probeArmed  bool
	probing     bool
	probeStart  time.Time
	events      *obs.EventLog
	epoch       time.Time
}

// NewBackend returns a backend with the given endpoint pool size.
func NewBackend(name, url string, endpoints int) *Backend {
	if endpoints < 1 {
		endpoints = 1
	}
	b := &Backend{
		name:      name,
		url:       url,
		endpoints: make(chan struct{}, endpoints),
		state:     BackendAvailable,
	}
	for i := 0; i < endpoints; i++ {
		b.endpoints <- struct{}{}
	}
	return b
}

// Name returns the backend name.
func (b *Backend) Name() string { return b.name }

// URL returns the backend base URL.
func (b *Backend) URL() string { return b.url }

// LBValue reads the current lb_value.
func (b *Backend) LBValue() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lbValue
}

// State reads the current state, applying lazy Busy/Error recovery.
func (b *Backend) State() BackendState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lazyRecover(time.Now())
	return b.state
}

// lazyRecover applies the Busy/Error recovery deadline; the caller
// holds b.mu.
func (b *Backend) lazyRecover(now time.Time) {
	if b.state != BackendAvailable && !b.recoverAt.IsZero() && now.After(b.recoverAt) {
		if b.state == BackendError {
			b.consecFails = 0
		}
		b.setStateLocked(BackendAvailable)
		b.recoverAt = time.Time{}
	}
}

// attachEvents wires the backend's state transitions into an event log.
// epoch is the time base events are stamped against.
func (b *Backend) attachEvents(log *obs.EventLog, epoch time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = log
	b.epoch = epoch
}

// setStateLocked transitions the 3-state machine, emitting a state
// event when an event log is attached. The caller holds b.mu; the event
// log has its own lock and never calls back into the backend, so
// appending under b.mu cannot deadlock.
func (b *Backend) setStateLocked(to BackendState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.events != nil {
		b.events.Append(obs.Event{
			T:       time.Since(b.epoch),
			Kind:    obs.KindState,
			Backend: b.name,
			From:    stateName(from),
			To:      stateName(to),
		})
	}
}

// Dispatched reads the cumulative dispatch count.
func (b *Backend) Dispatched() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dispatched
}

// Completed reads the cumulative completion count.
func (b *Backend) Completed() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.completed
}

// InFlight reads dispatched-but-uncompleted requests.
func (b *Backend) InFlight() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.dispatched - b.completed)
}

// FreeEndpoints reads the idle endpoint-pool tokens.
func (b *Backend) FreeEndpoints() int { return len(b.endpoints) }

// Config tunes the balancer; zero values use mod_jk-equivalent
// defaults.
type Config struct {
	// AcquireSleep and AcquireTimeout drive the original mechanism
	// (defaults 100 ms / 300 ms).
	AcquireSleep   time.Duration
	AcquireTimeout time.Duration
	// BusyRecovery re-admits a Busy backend (default 100 ms).
	BusyRecovery time.Duration
	// ErrorThreshold and ErrorAfter gate Error escalation (defaults 3
	// failures spanning 2 s).
	ErrorThreshold int
	ErrorAfter     time.Duration
	// ErrorRecovery re-admits an Error backend (default 10 s).
	ErrorRecovery time.Duration
	// Sweeps and SweepPause bound full re-sweeps per dispatch
	// (defaults 3 / 100 ms).
	Sweeps     int
	SweepPause time.Duration
	// StickySessions enables mod_jk session affinity through
	// AcquireSession.
	StickySessions bool
}

func (c Config) withDefaults() Config {
	if c.AcquireSleep <= 0 {
		c.AcquireSleep = 100 * time.Millisecond
	}
	if c.AcquireTimeout <= 0 {
		c.AcquireTimeout = 300 * time.Millisecond
	}
	if c.BusyRecovery <= 0 {
		c.BusyRecovery = 100 * time.Millisecond
	}
	if c.ErrorThreshold <= 0 {
		c.ErrorThreshold = 3
	}
	if c.ErrorAfter <= 0 {
		c.ErrorAfter = 2 * time.Second
	}
	if c.ErrorRecovery <= 0 {
		c.ErrorRecovery = 10 * time.Second
	}
	if c.Sweeps <= 0 {
		c.Sweeps = 3
	}
	if c.SweepPause <= 0 {
		c.SweepPause = 100 * time.Millisecond
	}
	return c
}

// ErrNoBackend is returned when every sweep failed to acquire an
// endpoint from any backend.
var ErrNoBackend = errors.New("httpcluster: no backend available")

// Balancer is the wall-clock twin of lb.Balancer: same two-level
// scheduler, same 3-state machine, safe for concurrent use. policy and
// mech are guarded by mu so the adaptive control plane can hot-swap
// them at runtime (see runtime.go); the dispatch path reads them
// through the accessors before taking any backend lock.
type Balancer struct {
	cfg      Config
	backends []*Backend

	mu       sync.Mutex
	policy   Policy
	mech     Mechanism
	rejects  uint64
	sessions sessionTable
	onAssign func(*Backend)
	onProbe  func(*Backend, time.Duration, bool)
	events   *obs.EventLog
	epoch    time.Time
	source   string
	rr       uint64
	// wake is closed and replaced whenever the mechanism is swapped or
	// a backend is quarantined, so workers sleeping inside the original
	// mechanism's poll loop re-check their abort conditions immediately
	// instead of after the full acquire window.
	wake chan struct{}

	// Prequal state (all guarded by mu): the probe pools the policy
	// consults, a hook firing an immediate reseed probe round after a
	// runtime swap to prequal, the sampling source, and scratch slices
	// keeping the dispatch hot path allocation-free.
	pools        *probe.Pools
	reseedProbes func()
	prng         *rand.Rand
	prEligible   []*Backend
	prNames      []string
}

// NewBalancer builds a balancer over the backends.
func NewBalancer(policy Policy, mech Mechanism, backends []*Backend, cfg Config) *Balancer {
	if len(backends) == 0 {
		panic("httpcluster: NewBalancer with no backends")
	}
	copied := make([]*Backend, len(backends))
	copy(copied, backends)
	return &Balancer{policy: policy, mech: mech, cfg: cfg.withDefaults(), backends: copied, wake: make(chan struct{})}
}

// Backends returns the backend list (shared; do not mutate).
func (b *Balancer) Backends() []*Backend { return b.backends }

// SetProbePools wires the prequal policy's probe pools and the reseed
// hook fired after a runtime swap to prequal (typically WallProber's
// Reseed: clear the pools, fire an immediate probe round). Call before
// serving traffic. Without pools a prequal balancer degrades to
// in-flight ranking.
func (b *Balancer) SetProbePools(pools *probe.Pools, reseed func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pools = pools
	b.reseedProbes = reseed
	if b.prng == nil {
		// The wall-clock substrate makes no determinism promise; a fixed
		// seed just keeps the sampling source self-contained.
		b.prng = rand.New(rand.NewPCG(0x7072657175616c, uint64(len(b.backends))))
	}
}

// ProbePools exposes the wired pools (nil when probing is off).
func (b *Balancer) ProbePools() *probe.Pools {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pools
}

// Rejects reports dispatches that failed on every sweep.
func (b *Balancer) Rejects() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejects
}

// SetAssignHook registers a hook invoked (without locks held) whenever
// a backend is chosen by the scheduler.
func (b *Balancer) SetAssignHook(hook func(*Backend)) { b.onAssign = hook }

// SetEventLog wires the balancer and every backend into an event log:
// each dispatch decision is recorded with the full candidate table
// (lb_value, state, in-flight, free endpoints) and each 3-state-machine
// transition becomes a state event. source names the emitter; epoch is
// the time base events are stamped against. Call before serving
// traffic.
func (b *Balancer) SetEventLog(log *obs.EventLog, source string, epoch time.Time) {
	b.events = log
	b.epoch = epoch
	b.source = source
	for _, be := range b.backends {
		be.attachEvents(log, epoch)
	}
}

// emitDecision records one dispatch decision with a snapshot of every
// candidate, taken backend by backend (the same way mod_jk's scheduler
// reads the worker table).
func (b *Balancer) emitDecision(chosen *Backend) {
	if b.events == nil {
		return
	}
	pools := b.ProbePools()
	views := make([]obs.CandidateView, 0, len(b.backends))
	for _, be := range b.backends {
		be.mu.Lock()
		v := obs.CandidateView{
			Name:          be.name,
			LBValue:       be.lbValue,
			State:         stateName(be.state),
			InFlight:      int(be.dispatched - be.completed),
			FreeEndpoints: len(be.endpoints),
		}
		be.mu.Unlock()
		if pools != nil {
			if smp, ok := pools.Peek(be.name); ok {
				v.ProbeInFlight = smp.InFlight
				v.ProbeLatencyMs = float64(smp.Latency) / float64(time.Millisecond)
				v.ProbeAgeMs = float64(smp.Age) / float64(time.Millisecond)
				v.ProbeFresh = true
			}
		}
		views = append(views, v)
	}
	b.events.Append(obs.Event{
		T:          time.Since(b.epoch),
		Kind:       obs.KindDecision,
		Source:     b.source,
		Chosen:     chosen.name,
		Candidates: views,
	})
}

// triedSet tracks the backends a dispatch already failed on. Backend
// sets are tiny (the paper's testbed has four application servers), so
// a slice with a linear scan beats a map and costs at most one
// allocation per failing dispatch instead of one per map insert — the
// same fix internal/lb carries.
type triedSet []*Backend

func (t triedSet) has(be *Backend) bool {
	for _, x := range t {
		if x == be {
			return true
		}
	}
	return false
}

// Release finishes an acquired dispatch. Done records a completed
// response with its size and returns the endpoint; Fail also returns
// the endpoint but records an upstream failure, feeding the Busy/Error
// ladder instead of proving the backend responsive. The zero Release
// is inert. Passed by value so the proxy hot path allocates nothing.
type Release struct {
	bal          *Balancer
	be           *Backend
	requestBytes int64
}

// Done completes the dispatch with the response size.
func (r Release) Done(responseBytes int64) {
	if r.bal == nil {
		return
	}
	r.bal.noteComplete(r.be, r.requestBytes, responseBytes)
	r.be.endpoints <- struct{}{}
}

// Fail unwinds the dispatch after an upstream failure.
func (r Release) Fail() {
	if r.bal == nil {
		return
	}
	r.bal.noteUpstreamFailure(r.be)
	r.be.endpoints <- struct{}{}
}

// Backend returns the acquired backend (nil for the zero Release).
func (r Release) Backend() *Backend { return r.be }

// Acquire picks a backend and obtains an endpoint, blocking the calling
// goroutine exactly as mod_jk blocks its worker thread. On success it
// returns the backend and a Release the caller must finish exactly once
// (Done with the response size, or Fail on upstream failure).
func (b *Balancer) Acquire(requestBytes int64) (*Backend, Release, error) {
	// tried is allocated lazily on the first acquisition failure, so
	// the happy path — first choice has a free endpoint — allocates
	// nothing at all.
	var tried triedSet
	for sweep := 0; sweep < b.cfg.Sweeps; sweep++ {
		if sweep > 0 {
			time.Sleep(b.cfg.SweepPause)
			tried = tried[:0]
		}
		for len(tried) < len(b.backends) {
			be := b.choose(tried)
			if be == nil {
				break
			}
			if b.onAssign != nil {
				b.onAssign(be)
			}
			b.emitDecision(be)
			if b.acquireEndpoint(be) {
				b.noteDispatch(be)
				return be, Release{bal: b, be: be, requestBytes: requestBytes}, nil
			}
			b.noteFailure(be)
			if tried == nil {
				tried = make(triedSet, 0, len(b.backends))
			}
			tried = append(tried, be)
		}
	}
	b.mu.Lock()
	b.rejects++
	b.mu.Unlock()
	if b.events != nil {
		b.events.Append(obs.Event{T: time.Since(b.epoch), Kind: obs.KindReject, Source: b.source})
	}
	return nil, Release{}, ErrNoBackend
}

// acquireEndpoint runs the configured mechanism against one backend.
func (b *Balancer) acquireEndpoint(be *Backend) bool {
	select {
	case <-be.endpoints:
		return true
	default:
	}
	if b.CurrentMechanism() == MechanismModified {
		return false
	}
	// Algorithm 1: poll while retry*sleep < timeout, holding the
	// caller. The backend's state is deliberately left untouched for
	// the whole window — the mechanism-level limitation. With the
	// defaults this checks at 0, 100 and 200 ms and gives up at 300 ms,
	// matching the simulation-time mechanism in internal/lb. Unlike
	// the paper's mod_jk, the abort conditions (a runtime
	// original→modified swap, a quarantine of this backend) are
	// re-checked every iteration and mid-sleep, so the adaptive control
	// plane's remediation frees blocked workers immediately instead of
	// after the rest of the window — the same fix internal/lb shipped
	// for quarantine-aborted polls.
	for retry := 1; time.Duration(retry)*b.cfg.AcquireSleep < b.cfg.AcquireTimeout; retry++ {
		if !b.sleepPoll(be, b.cfg.AcquireSleep) {
			return false
		}
		select {
		case <-be.endpoints:
			return true
		default:
		}
	}
	b.sleepPoll(be, b.cfg.AcquireSleep) // the final sleep before the guard fails
	return false
}

// sleepPoll sleeps one poll interval, returning false early when the
// mechanism is swapped away from original or the backend is drained by
// the control plane (armed probes keep polling — measuring the drained
// backend is their whole purpose).
func (b *Balancer) sleepPoll(be *Backend, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		if b.CurrentMechanism() != MechanismOriginal {
			return false
		}
		be.mu.Lock()
		drained := be.quarantined && !be.probeArmed
		be.mu.Unlock()
		if drained {
			return false
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return true
		}
		wake := b.wakeCh()
		t := time.NewTimer(remain)
		select {
		case <-t.C:
		case <-wake:
		}
		t.Stop()
	}
}

// wakeCh reads the current wake channel.
func (b *Balancer) wakeCh() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wake
}

// bumpWakeLocked signals every sleeping poller to re-check its abort
// conditions. The caller holds b.mu.
func (b *Balancer) bumpWakeLocked() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// choose picks the lowest-lb_value backend: Available first, then Busy;
// Error, already-tried and quarantined backends (unless probe-armed)
// are excluded. Under round_robin the lb_values are ignored and the
// non-excluded backends are rotated through instead.
func (b *Balancer) choose(tried triedSet) *Backend {
	now := time.Now()
	policy := b.CurrentPolicy()
	if policy == PolicyRoundRobin {
		if be := b.rotate(BackendAvailable, tried, now); be != nil {
			return be
		}
		return b.rotate(BackendBusy, tried, now)
	}
	if policy == PolicyPrequal {
		if be := b.choosePrequal(tried, now); be != nil {
			return be
		}
		// No sampled backend had fresh probe data (or pools are
		// detached): fall through to the lb_value scan, which under
		// prequal bookkeeping ranks by in-flight — the stalled backend
		// with requests piled on it still loses.
	}
	pick := func(state BackendState) *Backend {
		var best *Backend
		bestVal := 0.0
		for _, be := range b.backends {
			if tried.has(be) {
				continue
			}
			be.mu.Lock()
			be.lazyRecover(now)
			st, val := be.state, be.lbValue
			skip := be.quarantined && !be.probeArmed
			be.mu.Unlock()
			if st != state || skip {
				continue
			}
			if best == nil || val < bestVal {
				best, bestVal = be, val
			}
		}
		return best
	}
	if be := pick(BackendAvailable); be != nil {
		return be
	}
	return pick(BackendBusy)
}

// choosePrequal runs the hot/cold probe selection over the eligible
// backends (Available first, then Busy — the same two-level order as
// the lb_value scan). Returns nil when the pools are detached or no
// sampled backend holds a fresh probe, leaving the caller to fall back.
// Holds b.mu for the pools consultation; the scratch slices make the
// happy path allocation-free.
func (b *Balancer) choosePrequal(tried triedSet, now time.Time) *Backend {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pools == nil {
		return nil
	}
	pick := func(state BackendState) *Backend {
		b.prEligible = b.prEligible[:0]
		b.prNames = b.prNames[:0]
		for _, be := range b.backends {
			if tried.has(be) {
				continue
			}
			be.mu.Lock()
			be.lazyRecover(now)
			ok := be.state == state && !(be.quarantined && !be.probeArmed)
			be.mu.Unlock()
			if !ok {
				continue
			}
			b.prEligible = append(b.prEligible, be)
			b.prNames = append(b.prNames, be.name)
		}
		if len(b.prEligible) == 0 {
			return nil
		}
		if i := b.pools.Pick(b.prNames, b.prng); i >= 0 {
			return b.prEligible[i]
		}
		return nil
	}
	if be := pick(BackendAvailable); be != nil {
		return be
	}
	return pick(BackendBusy)
}

// rotate implements round_robin over the stable backend list: the scan
// starts at the cursor and the cursor advances to just past the chosen
// backend, so ineligible entries (Busy flicker, a quarantine) are
// skipped without skewing the rotation. Indexing a per-call eligible
// slice with a shared counter — the previous implementation — let
// membership churn re-align the counter and hand consecutive
// dispatches to the same backend.
func (b *Balancer) rotate(state BackendState, tried triedSet, now time.Time) *Backend {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := uint64(len(b.backends))
	for i := uint64(0); i < n; i++ {
		be := b.backends[(b.rr+i)%n]
		if tried.has(be) {
			continue
		}
		be.mu.Lock()
		be.lazyRecover(now)
		ok := be.state == state && !(be.quarantined && !be.probeArmed)
		be.mu.Unlock()
		if ok {
			b.rr = (b.rr + i + 1) % n
			return be
		}
	}
	return nil
}

func (b *Balancer) noteDispatch(be *Backend) {
	policy := b.CurrentPolicy()
	be.mu.Lock()
	defer be.mu.Unlock()
	be.consecFails = 0
	if be.state != BackendAvailable {
		be.setStateLocked(BackendAvailable)
		be.recoverAt = time.Time{}
	}
	be.dispatched++
	if be.probeArmed {
		be.probeArmed = false
		be.probing = true
		be.probeStart = time.Now()
	}
	switch policy {
	case PolicyTotalRequest, PolicyCurrentLoad, PolicyPrequal:
		// Prequal keeps current_load's in-flight bookkeeping so its
		// fallback ranking (and a later swap away from it) has sane
		// lb_values — the probe pools, not lb_value, drive its choices.
		be.lbValue += 1 / be.weightLocked()
	case PolicyRoundRobin:
		be.lbValue++
	case PolicyTotalTraffic:
		// Accounted on completion, per Algorithm 3.
	}
}

func (b *Balancer) noteComplete(be *Backend, requestBytes, responseBytes int64) {
	policy := b.CurrentPolicy()
	be.mu.Lock()
	be.completed++
	be.traffic += requestBytes + responseBytes
	be.consecFails = 0
	if be.state != BackendAvailable {
		be.setStateLocked(BackendAvailable)
		be.recoverAt = time.Time{}
	}
	switch policy {
	case PolicyTotalTraffic:
		be.lbValue += float64(requestBytes+responseBytes) / be.weightLocked()
	case PolicyCurrentLoad, PolicyPrequal:
		if unit := 1 / be.weightLocked(); be.lbValue >= unit {
			be.lbValue -= unit
		} else {
			be.lbValue = 0
		}
	case PolicyRoundRobin:
		if be.lbValue >= 1 {
			be.lbValue--
		} else {
			be.lbValue = 0
		}
	}
	probed := be.probing
	var rt time.Duration
	if probed {
		be.probing = false
		rt = time.Since(be.probeStart)
	}
	be.mu.Unlock()
	if probed && b.onProbe != nil {
		b.onProbe(be, rt, true)
	}
}

func (b *Balancer) noteFailure(be *Backend) {
	now := time.Now()
	be.mu.Lock()
	probeFailed := be.probeArmed
	be.probeArmed = false
	if be.consecFails == 0 {
		be.firstFail = now
	}
	be.consecFails++
	escalated := false
	if be.consecFails >= b.cfg.ErrorThreshold && now.Sub(be.firstFail) >= b.cfg.ErrorAfter {
		be.setStateLocked(BackendError)
		be.recoverAt = now.Add(b.cfg.ErrorRecovery)
		escalated = true
	}
	if !escalated && be.state == BackendAvailable {
		be.setStateLocked(BackendBusy)
		be.recoverAt = now.Add(b.cfg.BusyRecovery)
	}
	be.mu.Unlock()
	if probeFailed && b.onProbe != nil {
		b.onProbe(be, 0, false)
	}
}

// noteUpstreamFailure unwinds a dispatched request whose upstream round
// trip failed (crash, timeout, injected loss): the request is no longer
// in flight — completed counts it and the in-flight policies decrement —
// but unlike noteComplete it does not prove the backend responsive. The
// failure feeds the Busy/Error ladder so the scheduler routes around the
// backend, and an in-flight probe reports failure.
func (b *Balancer) noteUpstreamFailure(be *Backend) {
	policy := b.CurrentPolicy()
	be.mu.Lock()
	be.completed++
	switch policy {
	case PolicyCurrentLoad, PolicyPrequal:
		if unit := 1 / be.weightLocked(); be.lbValue >= unit {
			be.lbValue -= unit
		} else {
			be.lbValue = 0
		}
	case PolicyRoundRobin:
		if be.lbValue >= 1 {
			be.lbValue--
		} else {
			be.lbValue = 0
		}
	}
	probeFailed := be.probing
	be.probing = false
	be.mu.Unlock()
	if probeFailed && b.onProbe != nil {
		b.onProbe(be, 0, false)
	}
	b.noteFailure(be)
}

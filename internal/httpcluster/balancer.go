// Package httpcluster runs the paper's n-tier scenario over real
// loopback HTTP: application servers with bounded worker pools and
// injectable stalls, a web-tier reverse proxy implementing the same
// load-balancing policies and get_endpoint mechanisms as internal/lb —
// but in wall-clock time with goroutine concurrency — a database stub,
// and a closed-loop load generator.
//
// internal/lb is the reference implementation used by the deterministic
// simulation; this package is the deployment-shaped twin that
// demonstrates the identical algorithms and failure modes over real
// sockets. Unlike the simulator, its dispatch path runs concurrently on
// every proxy worker, so the hot path is built contention-free: backend
// hot fields are atomics (hot.go), the balancer configuration is an
// atomically-swapped immutable snapshot, and a full ranking sweep takes
// no lock at all (DESIGN.md §12).
package httpcluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"millibalance/internal/obs"
	"millibalance/internal/probe"
)

// Policy selects the lb_value bookkeeping (Algorithms 2–4).
type Policy int

const (
	// PolicyTotalRequest ranks by cumulative dispatched requests.
	PolicyTotalRequest Policy = iota + 1
	// PolicyTotalTraffic ranks by cumulative bytes exchanged.
	PolicyTotalTraffic
	// PolicyCurrentLoad ranks by in-flight requests (the remedy).
	PolicyCurrentLoad
	// PolicyRoundRobin rotates through non-excluded backends — the
	// adaptive control plane's fallback when every backend looks
	// stalled and lb_values carry no signal.
	PolicyRoundRobin
	// PolicyPrequal ranks by asynchronous probe replies (internal/probe):
	// sample d backends, classify hot/cold by probed in-flight quantile,
	// pick the cold one with the lowest estimated latency. Requires probe
	// pools (ProxyConfig.Probe or StartProxy's implicit arming); a
	// detached prequal falls back to in-flight ranking.
	PolicyPrequal
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyTotalRequest:
		return "total_request"
	case PolicyTotalTraffic:
		return "total_traffic"
	case PolicyCurrentLoad:
		return "current_load"
	case PolicyRoundRobin:
		return "round_robin"
	case PolicyPrequal:
		return "prequal"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PolicyNames lists the accepted policy names, in enum order — for CLI
// usage strings and ParsePolicy's error.
func PolicyNames() []string {
	return []string{"total_request", "total_traffic", "current_load", "round_robin", "prequal"}
}

// ParsePolicy resolves a policy name.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "total_request":
		return PolicyTotalRequest, nil
	case "total_traffic":
		return PolicyTotalTraffic, nil
	case "current_load":
		return PolicyCurrentLoad, nil
	case "round_robin":
		return PolicyRoundRobin, nil
	case "prequal":
		return PolicyPrequal, nil
	default:
		return 0, fmt.Errorf("httpcluster: unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
	}
}

// Mechanism selects the endpoint-acquisition strategy (Algorithm 1 or
// the remedy).
type Mechanism int

const (
	// MechanismOriginal polls a stalled backend's pool with 100 ms
	// sleeps for up to 300 ms while holding the caller.
	MechanismOriginal Mechanism = iota + 1
	// MechanismModified fails fast and marks the backend Busy.
	MechanismModified
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechanismOriginal:
		return "original_get_endpoint"
	case MechanismModified:
		return "modified_get_endpoint"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// ParseMechanism resolves a mechanism name.
func ParseMechanism(name string) (Mechanism, error) {
	switch name {
	case "original", "original_get_endpoint":
		return MechanismOriginal, nil
	case "modified", "modified_get_endpoint":
		return MechanismModified, nil
	default:
		return 0, fmt.Errorf("httpcluster: unknown mechanism %q", name)
	}
}

// BackendState is the 3-state machine state.
type BackendState int

const (
	// BackendAvailable accepts requests.
	BackendAvailable BackendState = iota + 1
	// BackendBusy recently failed to return an endpoint.
	BackendBusy
	// BackendError is excluded until the recovery interval passes.
	BackendError
)

// Backend is one application server as the proxy's balancer sees it.
// The fields every dispatch touches — the packed state word, lb_value,
// weight, the dispatch/completion/traffic counters and the endpoint
// token count — are atomics read and (on the happy path) written
// without any lock; the mutex guards only the slow paths: state
// transitions with their event emission, the failure-streak window,
// and the quarantine-probe lifecycle.
type Backend struct {
	name string
	url  string
	base time.Time // time base the packed recovery deadline is encoded against

	free        atomic.Int64  // idle endpoint-pool tokens
	capacity    int           // endpoint pool size
	word        atomic.Uint64 // packed state | quarantined | probeArmed | probing | recoverAt (hot.go)
	lbValue     atomicFloat
	weight      atomicFloat // 0 bits read as weight 1
	dispatched  atomic.Uint64
	completed   atomic.Uint64
	traffic     atomic.Int64
	consecFails atomic.Int32

	mu         sync.Mutex // slow path: transitions, probe lifecycle, events
	firstFail  time.Time
	probeStart time.Time
	events     *obs.EventLog
	epoch      time.Time
}

// NewBackend returns a backend with the given endpoint pool size.
func NewBackend(name, url string, endpoints int) *Backend {
	if endpoints < 1 {
		endpoints = 1
	}
	b := &Backend{
		name:     name,
		url:      url,
		base:     time.Now(),
		capacity: endpoints,
	}
	b.free.Store(int64(endpoints))
	b.word.Store(hotAvailable)
	return b
}

// Name returns the backend name.
func (b *Backend) Name() string { return b.name }

// URL returns the backend base URL.
func (b *Backend) URL() string { return b.url }

// LBValue reads the current lb_value (lock-free).
func (b *Backend) LBValue() float64 { return b.lbValue.Load() }

// State reads the current state, applying lazy Busy/Error recovery.
// When no recovery is due this is a single atomic load; a due recovery
// takes the slow path so the stored word and the event log advance.
func (b *Backend) State() BackendState {
	now := time.Now()
	st, due := effectiveState(b.word.Load(), nanosSince(b.base, now))
	if !due {
		return st
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lazyRecoverLocked(now)
	return hotState(b.word.Load())
}

// lazyRecoverLocked applies a due Busy/Error recovery deadline: the
// stored word transitions to Available (emitting the state event) and
// an Error recovery clears the failure streak. The caller holds b.mu.
func (b *Backend) lazyRecoverLocked(now time.Time) {
	w := b.word.Load()
	if _, due := effectiveState(w, nanosSince(b.base, now)); !due {
		return
	}
	if hotState(w) == BackendError {
		b.consecFails.Store(0)
	}
	b.applyLocked(w, withRecover(withState(w, BackendAvailable), 0))
}

// attachEvents wires the backend's state transitions into an event log.
// epoch is the time base events are stamped against.
func (b *Backend) attachEvents(log *obs.EventLog, epoch time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = log
	b.epoch = epoch
}

// applyLocked publishes a new hot word, emitting a state event when the
// packed state changed and an event log is attached. The caller holds
// b.mu — the only writers of the word — so load-modify-store sequences
// built on it are race-free without CAS. The event log has its own lock
// and never calls back into the backend, so appending under b.mu cannot
// deadlock.
func (b *Backend) applyLocked(old, new uint64) {
	if old == new {
		return
	}
	b.word.Store(new)
	from, to := hotState(old), hotState(new)
	if from != to && b.events != nil {
		b.events.Append(obs.Event{
			T:       time.Since(b.epoch),
			Kind:    obs.KindState,
			Backend: b.name,
			From:    stateName(from),
			To:      stateName(to),
		})
	}
}

// Dispatched reads the cumulative dispatch count (lock-free).
func (b *Backend) Dispatched() uint64 { return b.dispatched.Load() }

// Completed reads the cumulative completion count (lock-free).
func (b *Backend) Completed() uint64 { return b.completed.Load() }

// InFlight reads dispatched-but-uncompleted requests (lock-free; the
// two counters are read completion-first so a concurrent dispatch can
// only under-count, never produce a negative in-flight).
func (b *Backend) InFlight() int {
	completed := b.completed.Load()
	dispatched := b.dispatched.Load()
	if dispatched < completed {
		return 0
	}
	return int(dispatched - completed)
}

// FreeEndpoints reads the idle endpoint-pool tokens.
func (b *Backend) FreeEndpoints() int { return int(b.free.Load()) }

// acquireToken claims one endpoint-pool token; false when the pool is
// exhausted. The pool is an atomic count, not a channel — nothing ever
// blocks on it (the original mechanism polls with sleeps), and the
// channel lock was the last per-dispatch lock on the happy path.
func (b *Backend) acquireToken() bool {
	for {
		chkYield("acquireToken")
		f := b.free.Load()
		if f <= 0 {
			return false
		}
		if b.free.CompareAndSwap(f, f-1) {
			return true
		}
	}
}

// releaseToken returns one endpoint-pool token.
func (b *Backend) releaseToken() {
	chkYield("releaseToken")
	b.free.Add(1)
}

// weightVal reads the backend's lbfactor (zero bits read as 1).
func (b *Backend) weightVal() float64 {
	if bits := b.weight.bits.Load(); bits != 0 {
		return b.weight.Load()
	}
	return 1
}

// Config tunes the balancer; zero values use mod_jk-equivalent
// defaults.
type Config struct {
	// AcquireSleep and AcquireTimeout drive the original mechanism
	// (defaults 100 ms / 300 ms).
	AcquireSleep   time.Duration
	AcquireTimeout time.Duration
	// BusyRecovery re-admits a Busy backend (default 100 ms).
	BusyRecovery time.Duration
	// ErrorThreshold and ErrorAfter gate Error escalation (defaults 3
	// failures spanning 2 s).
	ErrorThreshold int
	ErrorAfter     time.Duration
	// ErrorRecovery re-admits an Error backend (default 10 s).
	ErrorRecovery time.Duration
	// Sweeps and SweepPause bound full re-sweeps per dispatch
	// (defaults 3 / 100 ms).
	Sweeps     int
	SweepPause time.Duration
	// StickySessions enables mod_jk session affinity through
	// AcquireSession.
	StickySessions bool
}

func (c Config) withDefaults() Config {
	if c.AcquireSleep <= 0 {
		c.AcquireSleep = 100 * time.Millisecond
	}
	if c.AcquireTimeout <= 0 {
		c.AcquireTimeout = 300 * time.Millisecond
	}
	if c.BusyRecovery <= 0 {
		c.BusyRecovery = 100 * time.Millisecond
	}
	if c.ErrorThreshold <= 0 {
		c.ErrorThreshold = 3
	}
	if c.ErrorAfter <= 0 {
		c.ErrorAfter = 2 * time.Second
	}
	if c.ErrorRecovery <= 0 {
		c.ErrorRecovery = 10 * time.Second
	}
	if c.Sweeps <= 0 {
		c.Sweeps = 3
	}
	if c.SweepPause <= 0 {
		c.SweepPause = 100 * time.Millisecond
	}
	return c
}

// ErrNoBackend is returned when every sweep failed to acquire an
// endpoint from any backend.
var ErrNoBackend = errors.New("httpcluster: no backend available")

// balSnapshot is the balancer's immutable hot-swap surface: everything
// a dispatch reads that the adaptive control plane can change at
// runtime. Swaps publish a fresh snapshot through an atomic pointer
// (never mutate one in place), so a dispatch sees one coherent
// {policy, mechanism, pools, wake} generation with a single load.
type balSnapshot struct {
	policy    Policy
	mech      Mechanism
	pools     *probe.Pools
	prHandles []probe.Handle // pre-resolved pool handles, aligned with Balancer.backends
	// poolEpoch converts a wall timestamp into the pools' clock
	// (at = now.Sub(poolEpoch)), so a prequal consult reuses the
	// dispatch path's single time.Now reading instead of paying a
	// second clock read inside the pools.
	poolEpoch time.Time
	reseed    func()
	// wake is closed (and a successor published) whenever the mechanism
	// is swapped or a backend is quarantined, so workers sleeping inside
	// the original mechanism's poll loop re-check their abort conditions
	// immediately instead of after the full acquire window.
	wake chan struct{}
}

// Balancer is the wall-clock twin of lb.Balancer: same two-level
// scheduler, same 3-state machine, safe for concurrent use. The
// dispatch path is contention-free: it loads the config snapshot once,
// ranks backends over their atomic hot fields, and claims an endpoint
// token by CAS — no mutex anywhere on the happy path. The writer mutex
// serializes only control-plane reconfiguration (runtime.go).
type Balancer struct {
	cfg      Config
	backends []*Backend

	snap    atomic.Pointer[balSnapshot]
	rejects atomic.Uint64
	// rr is the round_robin cursor. The cursor always holds a value in
	// [0, len(backends)) — it is reduced modulo n on every advance, never
	// free-running, so the skip/repeat bias a raw counter develops at the
	// 2^64 wrap (whenever n does not divide 2^64) cannot arise. Advances
	// are CAS: two racing workers may still pick the same backend (the
	// loser's advance is simply discarded), but a racing pair can no
	// longer rewind the cursor by overwriting a fresher advance with a
	// staler one, which re-served the same backend to later dispatches.
	rr sync_rrCursor

	// prng backs prequal's power-of-d sampling: a shared rand over a
	// lock-free counter-hash source (hot.go), so concurrent dispatchers
	// never serialize on it.
	prng *rand.Rand

	writerMu sync.Mutex // serializes snapshot swaps and multi-backend writer paths
	sessions sessionTable
	onAssign func(*Backend)
	onProbe  func(*Backend, time.Duration, bool)
	events   *obs.EventLog
	epoch    time.Time
	source   string
}

// sync_rrCursor wraps the round-robin cursor so its semantics —
// modulo-reduced, CAS-advanced, duplicate picks under contention
// tolerated but rewinds not — are documented in one place (the rr
// field comment above rotate).
type sync_rrCursor struct{ v atomic.Uint64 }

// NewBalancer builds a balancer over the backends.
func NewBalancer(policy Policy, mech Mechanism, backends []*Backend, cfg Config) *Balancer {
	if len(backends) == 0 {
		panic("httpcluster: NewBalancer with no backends")
	}
	copied := make([]*Backend, len(backends))
	copy(copied, backends)
	b := &Balancer{cfg: cfg.withDefaults(), backends: copied}
	b.prng = rand.New(&splitmixSource{seed: 0x7072657175616c + uint64(len(copied))})
	b.snap.Store(&balSnapshot{policy: policy, mech: mech, wake: make(chan struct{})})
	return b
}

// Backends returns the backend list (shared; do not mutate).
func (b *Balancer) Backends() []*Backend { return b.backends }

// SetProbePools wires the prequal policy's probe pools and the reseed
// hook fired after a runtime swap to prequal (typically WallProber's
// Reseed: clear the pools, fire an immediate probe round). Call before
// serving traffic. Without pools a prequal balancer degrades to
// in-flight ranking. Pool handles are resolved here, once, so the
// dispatch path never pays the per-name map lookups again.
func (b *Balancer) SetProbePools(pools *probe.Pools, reseed func()) {
	b.writerMu.Lock()
	defer b.writerMu.Unlock()
	next := *b.snap.Load()
	next.pools = pools
	next.reseed = reseed
	next.prHandles = nil
	next.poolEpoch = time.Time{}
	if pools != nil {
		next.prHandles = make([]probe.Handle, len(b.backends))
		for i, be := range b.backends {
			next.prHandles[i] = pools.Handle(be.name)
		}
		// The wall pools' clock is monotonic wall time, so one offset
		// measured here converts every later timestamp exactly.
		next.poolEpoch = time.Now().Add(-pools.Now())
	}
	b.snap.Store(&next)
}

// ProbePools exposes the wired pools (nil when probing is off).
func (b *Balancer) ProbePools() *probe.Pools { return b.snap.Load().pools }

// Rejects reports dispatches that failed on every sweep (lock-free).
func (b *Balancer) Rejects() uint64 { return b.rejects.Load() }

// SetAssignHook registers a hook invoked (without locks held) whenever
// a backend is chosen by the scheduler.
func (b *Balancer) SetAssignHook(hook func(*Backend)) { b.onAssign = hook }

// SetEventLog wires the balancer and every backend into an event log:
// each dispatch decision is recorded with the full candidate table
// (lb_value, state, in-flight, free endpoints) and each 3-state-machine
// transition becomes a state event. source names the emitter; epoch is
// the time base events are stamped against. Call before serving
// traffic.
func (b *Balancer) SetEventLog(log *obs.EventLog, source string, epoch time.Time) {
	b.events = log
	b.epoch = epoch
	b.source = source
	for _, be := range b.backends {
		be.attachEvents(log, epoch)
	}
}

// emitDecision records one dispatch decision with a snapshot of every
// candidate, read lock-free from the backends' atomic hot fields (the
// same way mod_jk's scheduler reads the worker table).
func (b *Balancer) emitDecision(snap *balSnapshot, chosen *Backend) {
	if b.events == nil {
		return
	}
	views := make([]obs.CandidateView, 0, len(b.backends))
	for _, be := range b.backends {
		v := obs.CandidateView{
			Name:          be.name,
			LBValue:       be.lbValue.Load(),
			State:         stateName(hotState(be.word.Load())),
			InFlight:      be.InFlight(),
			FreeEndpoints: be.FreeEndpoints(),
		}
		if snap.pools != nil {
			if smp, ok := snap.pools.Peek(be.name); ok {
				v.ProbeInFlight = smp.InFlight
				v.ProbeLatencyMs = float64(smp.Latency) / float64(time.Millisecond)
				v.ProbeAgeMs = float64(smp.Age) / float64(time.Millisecond)
				v.ProbeFresh = true
			}
		}
		views = append(views, v)
	}
	b.events.Append(obs.Event{
		T:          time.Since(b.epoch),
		Kind:       obs.KindDecision,
		Source:     b.source,
		Chosen:     chosen.name,
		Candidates: views,
	})
}

// triedSet tracks the backends a dispatch already failed on. Backend
// sets are tiny (the paper's testbed has four application servers), so
// a slice with a linear scan beats a map and costs at most one
// allocation per failing dispatch instead of one per map insert — the
// same fix internal/lb carries.
type triedSet []*Backend

func (t triedSet) has(be *Backend) bool {
	for _, x := range t {
		if x == be {
			return true
		}
	}
	return false
}

// Release finishes an acquired dispatch. Done records a completed
// response with its size and returns the endpoint; Fail also returns
// the endpoint but records an upstream failure, feeding the Busy/Error
// ladder instead of proving the backend responsive. The zero Release
// is inert. Passed by value so the proxy hot path allocates nothing.
type Release struct {
	bal          *Balancer
	be           *Backend
	requestBytes int64
}

// Done completes the dispatch with the response size.
func (r Release) Done(responseBytes int64) {
	if r.bal == nil {
		return
	}
	r.bal.noteComplete(r.be, r.requestBytes, responseBytes)
	r.be.releaseToken()
}

// Fail unwinds the dispatch after an upstream failure.
func (r Release) Fail() {
	if r.bal == nil {
		return
	}
	r.bal.noteUpstreamFailure(r.be)
	r.be.releaseToken()
}

// Backend returns the acquired backend (nil for the zero Release).
func (r Release) Backend() *Backend { return r.be }

// Acquire picks a backend and obtains an endpoint, blocking the calling
// goroutine exactly as mod_jk blocks its worker thread. On success it
// returns the backend and a Release the caller must finish exactly once
// (Done with the response size, or Fail on upstream failure).
func (b *Balancer) Acquire(requestBytes int64) (*Backend, Release, error) {
	// tried is allocated lazily on the first acquisition failure, so
	// the happy path — first choice has a free endpoint — allocates
	// nothing at all.
	var tried triedSet
	for sweep := 0; sweep < b.cfg.Sweeps; sweep++ {
		if sweep > 0 {
			time.Sleep(b.cfg.SweepPause)
			tried = tried[:0]
		}
		for len(tried) < len(b.backends) {
			// One snapshot load per choice: the whole selection sees a
			// coherent {policy, pools} generation, re-read between
			// choices so a runtime swap lands mid-dispatch exactly as
			// it did when the accessors took the balancer lock.
			chkYield("acquire.snap")
			snap := b.snap.Load()
			be := b.choose(snap, tried)
			if be == nil {
				break
			}
			if b.onAssign != nil {
				b.onAssign(be)
			}
			b.emitDecision(snap, be)
			chkYield("acquire.claim")
			if b.acquireEndpoint(be) {
				b.noteDispatch(be, snap.policy)
				return be, Release{bal: b, be: be, requestBytes: requestBytes}, nil
			}
			b.noteFailure(be)
			if tried == nil {
				tried = make(triedSet, 0, len(b.backends))
			}
			tried = append(tried, be)
		}
	}
	b.rejects.Add(1)
	if b.events != nil {
		b.events.Append(obs.Event{T: time.Since(b.epoch), Kind: obs.KindReject, Source: b.source})
	}
	return nil, Release{}, ErrNoBackend
}

// acquireEndpoint runs the configured mechanism against one backend.
func (b *Balancer) acquireEndpoint(be *Backend) bool {
	if be.acquireToken() {
		return true
	}
	if b.CurrentMechanism() == MechanismModified {
		return false
	}
	// Algorithm 1: poll while retry*sleep < timeout, holding the
	// caller. The backend's state is deliberately left untouched for
	// the whole window — the mechanism-level limitation. With the
	// defaults this checks at 0, 100 and 200 ms and gives up at 300 ms,
	// matching the simulation-time mechanism in internal/lb. Unlike
	// the paper's mod_jk, the abort conditions (a runtime
	// original→modified swap, a quarantine of this backend) are
	// re-checked every iteration and mid-sleep, so the adaptive control
	// plane's remediation frees blocked workers immediately instead of
	// after the rest of the window — the same fix internal/lb shipped
	// for quarantine-aborted polls.
	for retry := 1; time.Duration(retry)*b.cfg.AcquireSleep < b.cfg.AcquireTimeout; retry++ {
		if !b.sleepPoll(be, b.cfg.AcquireSleep) {
			return false
		}
		if be.acquireToken() {
			return true
		}
	}
	b.sleepPoll(be, b.cfg.AcquireSleep) // the final sleep before the guard fails
	return false
}

// sleepPoll sleeps one poll interval, returning false early when the
// mechanism is swapped away from original or the backend is drained by
// the control plane (armed probes keep polling — measuring the drained
// backend is their whole purpose). Each iteration loads a fresh
// snapshot: the live mechanism and the live wake channel.
func (b *Balancer) sleepPoll(be *Backend, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		snap := b.snap.Load()
		if snap.mech != MechanismOriginal {
			return false
		}
		w := be.word.Load()
		if w&hotQuarantined != 0 && w&hotProbeArmed == 0 {
			return false
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return true
		}
		t := time.NewTimer(remain)
		select {
		case <-t.C:
		case <-snap.wake:
		}
		t.Stop()
	}
}

// choose picks the lowest-lb_value backend: Available first, then Busy;
// Error, already-tried and quarantined backends (unless probe-armed)
// are excluded. Under round_robin the lb_values are ignored and the
// non-excluded backends are rotated through instead. The whole sweep is
// lock-free: per backend it is one atomic word load plus one lb_value
// load. A due Busy/Error recovery is *read* as Available here without
// being stored — the next slow-path touch of that backend (dispatch,
// failure, State) applies the transition and emits its event.
func (b *Balancer) choose(snap *balSnapshot, tried triedSet) *Backend {
	now := time.Now()
	policy := snap.policy
	if policy == PolicyRoundRobin {
		if be := b.rotate(BackendAvailable, tried, now); be != nil {
			return be
		}
		return b.rotate(BackendBusy, tried, now)
	}
	if policy == PolicyPrequal {
		if be := b.choosePrequal(snap, tried, now); be != nil {
			return be
		}
		// No sampled backend had fresh probe data (or pools are
		// detached): fall through to the lb_value scan, which under
		// prequal bookkeeping ranks by in-flight — the stalled backend
		// with requests piled on it still loses.
	}
	pick := func(state BackendState) *Backend {
		var best *Backend
		bestVal := 0.0
		for _, be := range b.backends {
			if tried.has(be) {
				continue
			}
			w := be.word.Load()
			st, _ := effectiveState(w, nanosSince(be.base, now))
			if st != state || (w&hotQuarantined != 0 && w&hotProbeArmed == 0) {
				continue
			}
			val := be.lbValue.Load()
			if best == nil || val < bestVal {
				best, bestVal = be, val
			}
		}
		return best
	}
	if be := pick(BackendAvailable); be != nil {
		return be
	}
	return pick(BackendBusy)
}

// prequalMaskCap bounds the bitmask eligibility encoding; clusters
// beyond it fall back to the lb_value scan (the paper's testbed has
// four backends; Prequal's own deployments sample from tens).
const prequalMaskCap = 64

// choosePrequal runs the hot/cold probe selection over the eligible
// backends (Available first, then Busy — the same two-level order as
// the lb_value scan). Returns nil when the pools are detached or no
// sampled backend holds a fresh probe, leaving the caller to fall back.
// Eligibility is encoded as a bitmask over the stable backend list and
// handed to the pools with pre-resolved handles, so one sweep costs a
// single pools consultation — no per-name map lookups, no scratch
// slices, no balancer lock.
func (b *Balancer) choosePrequal(snap *balSnapshot, tried triedSet, now time.Time) *Backend {
	if snap.pools == nil || len(b.backends) > prequalMaskCap {
		return nil
	}
	pick := func(state BackendState) *Backend {
		var mask uint64
		for i, be := range b.backends {
			if tried.has(be) {
				continue
			}
			w := be.word.Load()
			st, _ := effectiveState(w, nanosSince(be.base, now))
			if st != state || (w&hotQuarantined != 0 && w&hotProbeArmed == 0) {
				continue
			}
			mask |= 1 << i
		}
		if mask == 0 {
			return nil
		}
		if i := snap.pools.PickHandles(snap.prHandles, mask, b.prng, now.Sub(snap.poolEpoch)); i >= 0 {
			return b.backends[i]
		}
		return nil
	}
	if be := pick(BackendAvailable); be != nil {
		return be
	}
	return pick(BackendBusy)
}

// rotate implements round_robin over the stable backend list: the scan
// starts at the cursor and the cursor advances to just past the chosen
// backend, so ineligible entries (Busy flicker, a quarantine) are
// skipped without skewing the rotation. Indexing a per-call eligible
// slice with a shared counter — the pre-PR 4 implementation — let
// membership churn re-align the counter and hand consecutive
// dispatches to the same backend. The advance is a modulo-reduced CAS
// (see the rr field comment): a failed CAS means a concurrent rotation
// already moved the cursor, and overwriting its fresher position with
// ours would hand the next dispatch an already-served backend.
func (b *Balancer) rotate(state BackendState, tried triedSet, now time.Time) *Backend {
	chkYield("rotate")
	n := uint64(len(b.backends))
	raw := b.rr.v.Load()
	start := raw % n
	for i := uint64(0); i < n; i++ {
		be := b.backends[(start+i)%n]
		if tried.has(be) {
			continue
		}
		w := be.word.Load()
		st, _ := effectiveState(w, nanosSince(be.base, now))
		if st == state && !(w&hotQuarantined != 0 && w&hotProbeArmed == 0) {
			b.rr.v.CompareAndSwap(raw, (start+i+1)%n)
			return be
		}
	}
	return nil
}

// noteDispatch records a successful endpoint acquisition. The fast path
// — backend Available with no flags, no pending recovery, no failure
// streak — is three atomic operations; anything else (a state
// transition to emit, an armed probe to start, a streak to clear) takes
// the mutex-guarded slow path.
func (b *Balancer) noteDispatch(be *Backend, policy Policy) {
	chkYield("noteDispatch")
	if be.word.Load() == hotAvailable && be.consecFails.Load() == 0 {
		be.dispatched.Add(1)
		b.lbOnDispatch(be, policy)
		return
	}
	b.noteDispatchSlow(be, policy)
}

// lbOnDispatch applies the policy's dispatch-side lb_value bookkeeping.
func (b *Balancer) lbOnDispatch(be *Backend, policy Policy) {
	switch policy {
	case PolicyTotalRequest, PolicyCurrentLoad, PolicyPrequal:
		// Prequal keeps current_load's in-flight bookkeeping so its
		// fallback ranking (and a later swap away from it) has sane
		// lb_values — the probe pools, not lb_value, drive its choices.
		be.lbValue.Add(1 / be.weightVal())
	case PolicyRoundRobin:
		be.lbValue.Add(1)
	case PolicyTotalTraffic:
		// Accounted on completion, per Algorithm 3.
	}
}

func (b *Balancer) noteDispatchSlow(be *Backend, policy Policy) {
	now := time.Now()
	be.mu.Lock()
	be.lazyRecoverLocked(now)
	be.consecFails.Store(0)
	w := be.word.Load()
	next := w
	if hotState(w) != BackendAvailable {
		next = withRecover(withState(next, BackendAvailable), 0)
	}
	if next&hotProbeArmed != 0 {
		next = (next &^ hotProbeArmed) | hotProbing
		be.probeStart = now
	}
	be.applyLocked(w, next)
	be.dispatched.Add(1)
	b.lbOnDispatch(be, policy)
	be.mu.Unlock()
}

// noteComplete records a completed response. Fast path as noteDispatch;
// the slow path additionally resolves an in-flight quarantine probe.
func (b *Balancer) noteComplete(be *Backend, requestBytes, responseBytes int64) {
	chkYield("noteComplete")
	policy := b.snap.Load().policy
	if be.word.Load() == hotAvailable && be.consecFails.Load() == 0 {
		be.completed.Add(1)
		be.traffic.Add(requestBytes + responseBytes)
		b.lbOnComplete(be, policy, requestBytes+responseBytes)
		return
	}
	b.noteCompleteSlow(be, policy, requestBytes, responseBytes)
}

// lbOnComplete applies the policy's completion-side lb_value
// bookkeeping.
func (b *Balancer) lbOnComplete(be *Backend, policy Policy, bytes int64) {
	switch policy {
	case PolicyTotalTraffic:
		be.lbValue.Add(float64(bytes) / be.weightVal())
	case PolicyCurrentLoad, PolicyPrequal:
		be.lbValue.SubClamp(1 / be.weightVal())
	case PolicyRoundRobin:
		be.lbValue.SubClamp(1)
	}
}

func (b *Balancer) noteCompleteSlow(be *Backend, policy Policy, requestBytes, responseBytes int64) {
	now := time.Now()
	be.mu.Lock()
	be.lazyRecoverLocked(now)
	be.completed.Add(1)
	be.traffic.Add(requestBytes + responseBytes)
	be.consecFails.Store(0)
	w := be.word.Load()
	next := w
	if hotState(w) != BackendAvailable {
		next = withRecover(withState(next, BackendAvailable), 0)
	}
	probed := next&hotProbing != 0
	next &^= hotProbing
	be.applyLocked(w, next)
	var rt time.Duration
	if probed {
		rt = now.Sub(be.probeStart)
	}
	b.lbOnComplete(be, policy, requestBytes+responseBytes)
	be.mu.Unlock()
	if probed && b.onProbe != nil {
		b.onProbe(be, rt, true)
	}
}

// noteFailure feeds the Busy/Error ladder after a failed endpoint
// acquisition. Always the mutex-guarded slow path: failures are off the
// happy path by definition.
func (b *Balancer) noteFailure(be *Backend) {
	now := time.Now()
	be.mu.Lock()
	be.lazyRecoverLocked(now)
	w := be.word.Load()
	probeFailed := w&hotProbeArmed != 0
	next := w &^ hotProbeArmed
	if be.consecFails.Load() == 0 {
		be.firstFail = now
	}
	fails := be.consecFails.Add(1)
	escalated := false
	if int(fails) >= b.cfg.ErrorThreshold && now.Sub(be.firstFail) >= b.cfg.ErrorAfter {
		next = withRecover(withState(next, BackendError), nanosSince(be.base, now.Add(b.cfg.ErrorRecovery)))
		escalated = true
	}
	if !escalated && hotState(next) == BackendAvailable {
		next = withRecover(withState(next, BackendBusy), nanosSince(be.base, now.Add(b.cfg.BusyRecovery)))
	}
	be.applyLocked(w, next)
	be.mu.Unlock()
	if probeFailed && b.onProbe != nil {
		b.onProbe(be, 0, false)
	}
}

// noteUpstreamFailure unwinds a dispatched request whose upstream round
// trip failed (crash, timeout, injected loss): the request is no longer
// in flight — completed counts it and the in-flight policies decrement —
// but unlike noteComplete it does not prove the backend responsive. The
// failure feeds the Busy/Error ladder so the scheduler routes around the
// backend, and an in-flight probe reports failure.
func (b *Balancer) noteUpstreamFailure(be *Backend) {
	policy := b.snap.Load().policy
	be.mu.Lock()
	be.completed.Add(1)
	switch policy {
	case PolicyCurrentLoad, PolicyPrequal:
		be.lbValue.SubClamp(1 / be.weightVal())
	case PolicyRoundRobin:
		be.lbValue.SubClamp(1)
	}
	w := be.word.Load()
	probeFailed := w&hotProbing != 0
	be.applyLocked(w, w&^hotProbing)
	be.mu.Unlock()
	if probeFailed && b.onProbe != nil {
		b.onProbe(be, 0, false)
	}
	b.noteFailure(be)
}

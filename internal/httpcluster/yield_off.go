//go:build !checkyield

package httpcluster

// chkYield marks a schedule-exploration point on the lock-free dispatch
// path. In normal builds it is this empty function, which the compiler
// inlines away — the hot path pays nothing. Under -tags checkyield the
// variant in yield_on.go calls an installable hook, letting
// internal/check's interleaving explorer serialize worker goroutines at
// these points and drive chosen step orderings through the packed-word
// and token CAS operations (DESIGN.md §13).
//
// Placement rule: a yield site must never execute while holding any
// mutex — the explorer runs exactly one worker at a time, so a worker
// parked at a yield inside a critical section would deadlock every
// other worker against the lock it holds. Sites therefore live only on
// the lock-free fast paths; slow paths (noteDispatchSlow, noteFailure,
// the probe lifecycle) yield before taking be.mu, not inside it.
func chkYield(string) {}

package httpcluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The parity suite proves the lock-free rewrite changed the cost of
// the dispatch algorithm and not the algorithm: a Balancer (atomic
// snapshots) and a ReferenceBalancer (the frozen mutex path) consume
// byte-identical deterministic op scripts and must emit byte-identical
// decision sequences. Prequal is excluded — its power-of-d sampling is
// random by design and makes no such promise.
//
// Two timing arms pin down the only wall-clock-dependent behavior, the
// Busy/Error recovery deadlines:
//
//   - sticky: recovery intervals of an hour, so no recovery ever fires
//     inside a test run — transitions latch;
//   - instant: recovery intervals of a nanosecond, so every recovery is
//     due by the next touch — transitions always heal.
//
// Either way both implementations resolve each deadline identically on
// every step, with no race against the clock.

// parityRNG is a tiny deterministic generator for op scripts.
type parityRNG struct{ s uint64 }

func (r *parityRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *parityRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func parityConfig(instant bool) Config {
	cfg := Config{Sweeps: 1, ErrorThreshold: 2}
	if instant {
		cfg.BusyRecovery = time.Nanosecond
		cfg.ErrorRecovery = time.Nanosecond
		cfg.ErrorAfter = time.Nanosecond
	} else {
		cfg.BusyRecovery = time.Hour
		cfg.ErrorRecovery = time.Hour
		cfg.ErrorAfter = time.Hour
	}
	return cfg
}

func TestDispatchParity(t *testing.T) {
	policies := []Policy{PolicyTotalRequest, PolicyTotalTraffic, PolicyCurrentLoad, PolicyRoundRobin}
	names := []string{"a", "b", "c", "d"}
	const endpoints = 2
	const steps = 4000

	for _, start := range policies {
		for _, instant := range []bool{false, true} {
			arm := "sticky"
			if instant {
				arm = "instant"
			}
			t.Run(fmt.Sprintf("%s/%s", start, arm), func(t *testing.T) {
				cfg := parityConfig(instant)
				backends := make([]*Backend, len(names))
				for i, n := range names {
					backends[i] = NewBackend(n, "http://unused", endpoints)
				}
				bal := NewBalancer(start, MechanismModified, backends, cfg)
				ref := NewReferenceBalancer(start, names, endpoints, cfg)

				type outstanding struct {
					rel  Release
					rrel ReferenceRelease
				}
				var open []outstanding
				rng := &parityRNG{s: uint64(start)*7919 + 17}
				if instant {
					rng.s ^= 0xabcdef
				}

				for step := 0; step < steps; step++ {
					switch op := rng.intn(100); {
					case op < 55: // acquire
						reqBytes := int64(rng.intn(4096))
						be, rel, err := bal.Acquire(reqBytes)
						rname, rrel, rerr := ref.Acquire(reqBytes)
						if (err != nil) != (rerr != nil) {
							t.Fatalf("step %d: acquire err %v vs reference %v", step, err, rerr)
						}
						if err != nil {
							continue
						}
						if be.Name() != rname {
							t.Fatalf("step %d: chose %s, reference chose %s", step, be.Name(), rname)
						}
						open = append(open, outstanding{rel: rel, rrel: rrel})
					case op < 75: // complete one outstanding pair
						if len(open) == 0 {
							continue
						}
						i := rng.intn(len(open))
						respBytes := int64(rng.intn(8192))
						open[i].rel.Done(respBytes)
						open[i].rrel.Done(respBytes)
						open = append(open[:i], open[i+1:]...)
					case op < 82: // upstream failure on one outstanding pair
						if len(open) == 0 {
							continue
						}
						i := rng.intn(len(open))
						open[i].rel.Fail()
						open[i].rrel.Fail()
						open = append(open[:i], open[i+1:]...)
					case op < 90: // policy swap
						p := policies[rng.intn(len(policies))]
						bal.SetPolicy(p)
						ref.SetPolicy(p)
					case op < 96: // quarantine flip
						n := names[rng.intn(len(names))]
						on := rng.intn(2) == 0
						bal.SetQuarantine(n, on)
						ref.SetQuarantine(n, on)
					default: // weight change
						i := rng.intn(len(names))
						w := float64(1 + rng.intn(3))
						backends[i].SetWeight(w)
						ref.SetWeight(names[i], w)
					}
				}
				for _, o := range open {
					o.rel.Done(0)
					o.rrel.Done(0)
				}

				// The sequences matched step by step; the accumulated
				// bookkeeping must agree too.
				if bal.Rejects() != ref.Rejects() {
					t.Fatalf("rejects %d vs reference %d", bal.Rejects(), ref.Rejects())
				}
				for i, be := range backends {
					rbe := ref.backends[i]
					rbe.mu.Lock()
					rd, rc, rt, rlb := rbe.dispatched, rbe.completed, rbe.traffic, rbe.lbValue
					rbe.mu.Unlock()
					if be.Dispatched() != rd || be.Completed() != rc || be.Traffic() != rt {
						t.Fatalf("%s counters (%d,%d,%d) vs reference (%d,%d,%d)",
							be.Name(), be.Dispatched(), be.Completed(), be.Traffic(), rd, rc, rt)
					}
					if lb := be.LBValue(); lb != rlb {
						t.Fatalf("%s lb_value %g vs reference %g", be.Name(), lb, rlb)
					}
				}
			})
		}
	}
}

// TestDispatchSwapStress hammers the snapshot path from every angle at
// once — dispatch workers, policy swaps, mechanism swaps, quarantine
// flips, weight changes — and is most valuable under -race, where any
// unsynchronized access to the old mutex-era fields would surface.
// Stays on in -short (CI's race leg runs short mode).
func TestDispatchSwapStress(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	backends := make([]*Backend, len(names))
	for i, n := range names {
		backends[i] = NewBackend(n, "http://unused", 64)
	}
	cfg := Config{
		Sweeps:       1,
		AcquireSleep: time.Millisecond, AcquireTimeout: 3 * time.Millisecond,
		BusyRecovery: time.Millisecond, ErrorRecovery: 2 * time.Millisecond,
	}
	bal := NewBalancer(PolicyCurrentLoad, MechanismModified, backends, cfg)

	const workers = 8
	const iters = 3000
	var dispatched, completed atomic.Uint64
	var workerWG, mutatorWG sync.WaitGroup
	stop := make(chan struct{})

	mutatorWG.Add(1)
	go func() { // control plane: swap everything continuously
		defer mutatorWG.Done()
		policies := []Policy{PolicyTotalRequest, PolicyTotalTraffic, PolicyCurrentLoad, PolicyRoundRobin, PolicyPrequal}
		mechs := []Mechanism{MechanismModified, MechanismOriginal}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			bal.SetPolicy(policies[i%len(policies)])
			bal.SetMechanism(mechs[i%len(mechs)])
			bal.SetQuarantine(names[i%len(names)], i%3 == 0)
			backends[i%len(backends)].SetWeight(float64(1 + i%4))
			if i%7 == 0 {
				bal.ArmProbe(names[i%len(names)])
			}
			i++
			time.Sleep(50 * time.Microsecond)
		}
	}()

	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			for i := 0; i < iters; i++ {
				be, rel, err := bal.Acquire(int64(i % 512))
				if err != nil {
					continue
				}
				if be == nil {
					t.Error("nil backend with nil error")
					return
				}
				dispatched.Add(1)
				if i%13 == 0 {
					rel.Fail()
				} else {
					rel.Done(int64(i % 2048))
				}
				completed.Add(1)
			}
		}(w)
	}

	workerWG.Wait()
	close(stop)
	mutatorWG.Wait()
	// Re-admit everything so the conservation check below is not
	// confused by a final quarantine left in place.
	for _, n := range names {
		bal.SetQuarantine(n, false)
	}

	// Conservation: every successful Acquire was released exactly once,
	// so nothing is left in flight and every pool token is home.
	var totalDispatched, totalCompleted uint64
	for _, be := range backends {
		totalDispatched += be.Dispatched()
		totalCompleted += be.Completed()
		if inF := be.InFlight(); inF != 0 {
			t.Errorf("%s: %d in flight after drain", be.Name(), inF)
		}
		if free := be.FreeEndpoints(); free != 64 {
			t.Errorf("%s: %d/64 endpoint tokens after drain", be.Name(), free)
		}
	}
	if totalDispatched != totalCompleted {
		t.Errorf("dispatched %d != completed %d", totalDispatched, totalCompleted)
	}
	if totalDispatched != dispatched.Load() {
		t.Errorf("backend dispatch sum %d != successful acquires %d", totalDispatched, dispatched.Load())
	}
}

package httpcluster

import (
	"math"
	"sync"
	"time"
)

// ReferenceBalancer is the pre-atomic-snapshot dispatch path — global
// balancer mutex, per-backend mutex taken on every read, buffered
// channel as the endpoint pool — preserved verbatim from the mutex
// implementation it replaced. It exists for two jobs:
//
//   - parity oracle: the test suite feeds identical deterministic op
//     scripts to a Balancer and a ReferenceBalancer and asserts the
//     decision sequences are byte-identical, proving the lock-free
//     rewrite changed the cost of the algorithm and not the algorithm;
//   - regression baseline: cmd/perfbench -pr8 benchmarks both paths in
//     the same process on the same hardware, so the "≥20% faster than
//     the mutex path" gate holds on any machine instead of comparing
//     against another host's recorded nanoseconds.
//
// It implements the four deterministic policies (prequal's probe
// sampling is intentionally random and so has no byte-parity promise)
// and the modified (fail-fast) mechanism; the original mechanism's poll
// loop sleeps on wall time and is exercised through the real Balancer's
// own tests instead.
type ReferenceBalancer struct {
	cfg      Config
	backends []*refBackend

	mu      sync.Mutex
	policy  Policy
	rejects uint64
	rr      uint64
}

// refBackend mirrors the old Backend layout: one mutex over every hot
// field, endpoints as a buffered channel.
type refBackend struct {
	name      string
	endpoints chan struct{}

	mu          sync.Mutex
	lbValue     float64
	weight      float64
	state       BackendState
	recoverAt   time.Time
	consecFails int
	firstFail   time.Time
	dispatched  uint64
	completed   uint64
	traffic     int64
	quarantined bool
}

// NewReferenceBalancer builds the frozen mutex balancer over named
// backends, each with the given endpoint pool size.
func NewReferenceBalancer(policy Policy, names []string, endpoints int, cfg Config) *ReferenceBalancer {
	if endpoints < 1 {
		endpoints = 1
	}
	rb := &ReferenceBalancer{cfg: cfg.withDefaults(), policy: policy}
	for _, n := range names {
		be := &refBackend{name: n, endpoints: make(chan struct{}, endpoints), state: BackendAvailable}
		for i := 0; i < endpoints; i++ {
			be.endpoints <- struct{}{}
		}
		rb.backends = append(rb.backends, be)
	}
	return rb
}

// ReferenceRelease finishes a ReferenceBalancer acquisition; the zero
// value is inert.
type ReferenceRelease struct {
	rb           *ReferenceBalancer
	be           *refBackend
	requestBytes int64
}

// Done completes the dispatch with the response size.
func (r ReferenceRelease) Done(responseBytes int64) {
	if r.rb == nil {
		return
	}
	r.rb.noteComplete(r.be, r.requestBytes, responseBytes)
	r.be.endpoints <- struct{}{}
}

// Fail unwinds the dispatch after an upstream failure.
func (r ReferenceRelease) Fail() {
	if r.rb == nil {
		return
	}
	r.rb.noteUpstreamFailure(r.be)
	r.be.endpoints <- struct{}{}
}

// Rejects reports dispatches that failed on every backend.
func (rb *ReferenceBalancer) Rejects() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.rejects
}

// SetPolicy swaps the policy, reseeding lb_values from the preserved
// counters exactly as Balancer.SetPolicy does.
func (rb *ReferenceBalancer) SetPolicy(p Policy) {
	rb.mu.Lock()
	rb.policy = p
	for _, be := range rb.backends {
		be.mu.Lock()
		switch p {
		case PolicyTotalRequest:
			be.lbValue = float64(be.dispatched) / be.weightLocked()
		case PolicyTotalTraffic:
			be.lbValue = float64(be.traffic) / be.weightLocked()
		case PolicyCurrentLoad, PolicyPrequal:
			be.lbValue = float64(be.dispatched-be.completed) / be.weightLocked()
		case PolicyRoundRobin:
			be.lbValue = float64(be.dispatched - be.completed)
		}
		be.mu.Unlock()
	}
	rb.mu.Unlock()
}

// SetQuarantine drains or re-admits a backend by name, with mod_jk
// recovery seeding on re-admission under cumulative policies.
func (rb *ReferenceBalancer) SetQuarantine(name string, on bool) bool {
	rb.mu.Lock()
	policy := rb.policy
	rb.mu.Unlock()
	for _, be := range rb.backends {
		if be.name != name {
			continue
		}
		be.mu.Lock()
		be.quarantined = on
		if !on && (policy == PolicyTotalRequest || policy == PolicyTotalTraffic) {
			seed := be.lbValue
			be.mu.Unlock()
			for _, o := range rb.backends {
				if o == be {
					continue
				}
				o.mu.Lock()
				if o.lbValue > seed {
					seed = o.lbValue
				}
				o.mu.Unlock()
			}
			be.mu.Lock()
			if seed > be.lbValue {
				be.lbValue = seed
			}
		}
		be.mu.Unlock()
		return true
	}
	return false
}

// SetWeight assigns the named backend's lbfactor. Non-finite values
// mean 1, matching Backend.SetWeight — the one post-freeze fix applied
// to this file, because the parity oracle requires both implementations
// to sanitize inputs identically (internal/check
// testdata/weight-nan.script).
func (rb *ReferenceBalancer) SetWeight(name string, w float64) {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		w = 1
	}
	for _, be := range rb.backends {
		if be.name == name {
			be.mu.Lock()
			be.weight = w
			be.mu.Unlock()
			return
		}
	}
}

func (be *refBackend) weightLocked() float64 {
	if be.weight == 0 {
		return 1
	}
	return be.weight
}

func (be *refBackend) lazyRecover(now time.Time) {
	if be.state != BackendAvailable && !be.recoverAt.IsZero() && now.After(be.recoverAt) {
		if be.state == BackendError {
			be.consecFails = 0
		}
		be.state = BackendAvailable
		be.recoverAt = time.Time{}
	}
}

func (rb *ReferenceBalancer) currentPolicy() Policy {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.policy
}

// Acquire picks a backend and claims an endpoint with the fail-fast
// mechanism, sweeping like Balancer.Acquire but without the inter-sweep
// sleeps (the parity scripts and benchmarks never want wall-clock
// pauses; a full failed sweep is a reject).
func (rb *ReferenceBalancer) Acquire(requestBytes int64) (string, ReferenceRelease, error) {
	var tried []*refBackend
	for len(tried) < len(rb.backends) {
		be := rb.choose(tried)
		if be == nil {
			break
		}
		select {
		case <-be.endpoints:
			rb.noteDispatch(be)
			return be.name, ReferenceRelease{rb: rb, be: be, requestBytes: requestBytes}, nil
		default:
		}
		rb.noteFailure(be)
		if tried == nil {
			tried = make([]*refBackend, 0, len(rb.backends))
		}
		tried = append(tried, be)
	}
	rb.mu.Lock()
	rb.rejects++
	rb.mu.Unlock()
	return "", ReferenceRelease{}, ErrNoBackend
}

func refTried(tried []*refBackend, be *refBackend) bool {
	for _, x := range tried {
		if x == be {
			return true
		}
	}
	return false
}

func (rb *ReferenceBalancer) choose(tried []*refBackend) *refBackend {
	now := time.Now()
	policy := rb.currentPolicy()
	if policy == PolicyRoundRobin {
		if be := rb.rotate(BackendAvailable, tried, now); be != nil {
			return be
		}
		return rb.rotate(BackendBusy, tried, now)
	}
	pick := func(state BackendState) *refBackend {
		var best *refBackend
		bestVal := 0.0
		for _, be := range rb.backends {
			if refTried(tried, be) {
				continue
			}
			be.mu.Lock()
			be.lazyRecover(now)
			st, val := be.state, be.lbValue
			skip := be.quarantined
			be.mu.Unlock()
			if st != state || skip {
				continue
			}
			if best == nil || val < bestVal {
				best, bestVal = be, val
			}
		}
		return best
	}
	if be := pick(BackendAvailable); be != nil {
		return be
	}
	return pick(BackendBusy)
}

func (rb *ReferenceBalancer) rotate(state BackendState, tried []*refBackend, now time.Time) *refBackend {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	n := uint64(len(rb.backends))
	for i := uint64(0); i < n; i++ {
		be := rb.backends[(rb.rr+i)%n]
		if refTried(tried, be) {
			continue
		}
		be.mu.Lock()
		be.lazyRecover(now)
		ok := be.state == state && !be.quarantined
		be.mu.Unlock()
		if ok {
			rb.rr = (rb.rr + i + 1) % n
			return be
		}
	}
	return nil
}

func (rb *ReferenceBalancer) noteDispatch(be *refBackend) {
	policy := rb.currentPolicy()
	be.mu.Lock()
	defer be.mu.Unlock()
	be.consecFails = 0
	if be.state != BackendAvailable {
		be.state = BackendAvailable
		be.recoverAt = time.Time{}
	}
	be.dispatched++
	switch policy {
	case PolicyTotalRequest, PolicyCurrentLoad, PolicyPrequal:
		be.lbValue += 1 / be.weightLocked()
	case PolicyRoundRobin:
		be.lbValue++
	case PolicyTotalTraffic:
	}
}

func (rb *ReferenceBalancer) noteComplete(be *refBackend, requestBytes, responseBytes int64) {
	policy := rb.currentPolicy()
	be.mu.Lock()
	be.completed++
	be.traffic += requestBytes + responseBytes
	be.consecFails = 0
	if be.state != BackendAvailable {
		be.state = BackendAvailable
		be.recoverAt = time.Time{}
	}
	switch policy {
	case PolicyTotalTraffic:
		be.lbValue += float64(requestBytes+responseBytes) / be.weightLocked()
	case PolicyCurrentLoad, PolicyPrequal:
		if unit := 1 / be.weightLocked(); be.lbValue >= unit {
			be.lbValue -= unit
		} else {
			be.lbValue = 0
		}
	case PolicyRoundRobin:
		if be.lbValue >= 1 {
			be.lbValue--
		} else {
			be.lbValue = 0
		}
	}
	be.mu.Unlock()
}

func (rb *ReferenceBalancer) noteFailure(be *refBackend) {
	now := time.Now()
	be.mu.Lock()
	if be.consecFails == 0 {
		be.firstFail = now
	}
	be.consecFails++
	escalated := false
	if be.consecFails >= rb.cfg.ErrorThreshold && now.Sub(be.firstFail) >= rb.cfg.ErrorAfter {
		be.state = BackendError
		be.recoverAt = now.Add(rb.cfg.ErrorRecovery)
		escalated = true
	}
	if !escalated && be.state == BackendAvailable {
		be.state = BackendBusy
		be.recoverAt = now.Add(rb.cfg.BusyRecovery)
	}
	be.mu.Unlock()
}

// RefView is a read-only copy of one refBackend's bookkeeping. The
// differential harness (internal/check) compares it field-by-field
// against the lock-free Balancer's accessors after replaying the same
// op script through both implementations.
type RefView struct {
	Name          string
	Dispatched    uint64
	Completed     uint64
	Traffic       int64
	LBValue       float64
	State         BackendState
	Quarantined   bool
	FreeEndpoints int
}

// Views snapshots every backend's bookkeeping at now, applying due
// Busy/Error recoveries first — the same lazy resolution choose()
// performs — so the states compare against Balancer.State(), which
// also resolves due recoveries on read.
func (rb *ReferenceBalancer) Views(now time.Time) []RefView {
	out := make([]RefView, 0, len(rb.backends))
	for _, be := range rb.backends {
		be.mu.Lock()
		be.lazyRecover(now)
		out = append(out, RefView{
			Name:          be.name,
			Dispatched:    be.dispatched,
			Completed:     be.completed,
			Traffic:       be.traffic,
			LBValue:       be.lbValue,
			State:         be.state,
			Quarantined:   be.quarantined,
			FreeEndpoints: len(be.endpoints),
		})
		be.mu.Unlock()
	}
	return out
}

func (rb *ReferenceBalancer) noteUpstreamFailure(be *refBackend) {
	policy := rb.currentPolicy()
	be.mu.Lock()
	be.completed++
	switch policy {
	case PolicyCurrentLoad, PolicyPrequal:
		if unit := 1 / be.weightLocked(); be.lbValue >= unit {
			be.lbValue -= unit
		} else {
			be.lbValue = 0
		}
	case PolicyRoundRobin:
		if be.lbValue >= 1 {
			be.lbValue--
		} else {
			be.lbValue = 0
		}
	}
	be.mu.Unlock()
	rb.noteFailure(be)
}

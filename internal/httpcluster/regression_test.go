package httpcluster

import (
	"testing"
	"time"
)

// Regression tests for the sim↔proxy parity bugfixes: the wall-clock
// balancer previously read the mechanism once per dispatch (so blocked
// pollers never noticed remediation), rotated round_robin over a
// churning eligible slice, and allocated a tried map per sweep.

// TestSwapMidPollAborts: a worker polling a stalled backend under the
// original mechanism must be freed as soon as the control plane swaps
// to the modified mechanism, not after the full acquire window.
func TestSwapMidPollAborts(t *testing.T) {
	a := NewBackend("a", "u", 1)
	bal := NewBalancer(PolicyCurrentLoad, MechanismOriginal, []*Backend{a},
		Config{AcquireSleep: 100 * time.Millisecond, AcquireTimeout: 300 * time.Millisecond, Sweeps: 1})
	if _, _, err := bal.Acquire(0); err != nil { // hold the only endpoint
		t.Fatal(err)
	}

	done := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		_, _, _ = bal.Acquire(0) // blocks polling the exhausted pool
		done <- time.Since(start)
	}()

	time.Sleep(30 * time.Millisecond) // let the poller enter its sleep
	bal.SetMechanism(MechanismModified)

	select {
	case elapsed := <-done:
		if elapsed > 150*time.Millisecond {
			t.Fatalf("poller freed after %v, want well before the 300ms window", elapsed)
		}
	case <-time.After(time.Second):
		t.Fatal("poller still blocked 1s after mechanism swap")
	}
}

// TestQuarantineMidPollAborts: quarantining the polled backend must
// abort the poll the same way — no endpoint is coming from a drained
// backend.
func TestQuarantineMidPollAborts(t *testing.T) {
	a := NewBackend("a", "u", 1)
	b := NewBackend("b", "u", 4)
	bal := NewBalancer(PolicyTotalRequest, MechanismOriginal, []*Backend{a, b},
		Config{AcquireSleep: 100 * time.Millisecond, AcquireTimeout: 300 * time.Millisecond, Sweeps: 1})
	if _, _, err := bal.Acquire(0); err != nil { // a wins the tie-break, pool exhausted
		t.Fatal(err)
	}
	if be, rel, err := bal.Acquire(0); err != nil || be.Name() != "b" {
		t.Fatalf("second acquire: %v %v", be, err)
	} else {
		rel.Done(0) // total_request keeps b's lb_value at 1: tied with a
	}

	done := make(chan struct{})
	start := time.Now()
	go func() {
		// a has the lower lb_value, so the poller lands on a and blocks.
		be, rel, err := bal.Acquire(0)
		if err == nil {
			if be.Name() != "b" {
				t.Errorf("post-abort dispatch on %s, want b", be.Name())
			}
			rel.Done(0)
		}
		close(done)
	}()

	time.Sleep(30 * time.Millisecond)
	bal.SetQuarantine("a", true)

	select {
	case <-done:
		if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
			t.Fatalf("poller freed after %v, want well before the 300ms window", elapsed)
		}
	case <-time.After(time.Second):
		t.Fatal("poller still blocked 1s after quarantine")
	}
}

// TestRoundRobinStableRotation: round_robin must rotate over the stable
// backend list, so eligibility churn (a quarantine opening and closing)
// cannot re-align the cursor and hand consecutive dispatches to the
// same backend.
func TestRoundRobinStableRotation(t *testing.T) {
	a := NewBackend("a", "u", 10)
	b := NewBackend("b", "u", 10)
	bal := NewBalancer(PolicyRoundRobin, MechanismModified, []*Backend{a, b}, Config{Sweeps: 1})

	dispatch := func(n int) map[string]int {
		t.Helper()
		counts := map[string]int{}
		prev := ""
		for i := 0; i < n; i++ {
			be, rel, err := bal.Acquire(0)
			if err != nil {
				t.Fatal(err)
			}
			counts[be.Name()]++
			if len(counts) == 2 && be.Name() == prev {
				t.Fatalf("round_robin chose %s twice in a row with both eligible", prev)
			}
			prev = be.Name()
			rel.Done(0)
		}
		return counts
	}

	if got := dispatch(6); got["a"] != 3 || got["b"] != 3 {
		t.Fatalf("healthy rotation %v, want 3/3", got)
	}

	// Churn eligibility: with b drained the cursor keeps advancing over
	// the stable list, and after re-admission rotation resumes fairly.
	bal.SetQuarantine("b", true)
	if got := dispatch(3); got["b"] != 0 {
		t.Fatalf("quarantined backend dispatched: %v", got)
	}
	bal.SetQuarantine("b", false)
	if got := dispatch(6); got["a"] != 3 || got["b"] != 3 {
		t.Fatalf("post-churn rotation %v, want 3/3", got)
	}
}

// TestAcquireZeroAlloc guards the proxy hot path: a successful
// dispatch-and-complete cycle must not allocate (parity with the
// internal/lb triedSet fix).
func TestAcquireZeroAlloc(t *testing.T) {
	a := NewBackend("a", "u", 4)
	b := NewBackend("b", "u", 4)
	bal := NewBalancer(PolicyCurrentLoad, MechanismModified, []*Backend{a, b}, Config{Sweeps: 1})
	allocs := testing.AllocsPerRun(200, func() {
		_, rel, err := bal.Acquire(128)
		if err != nil {
			t.Fatal(err)
		}
		rel.Done(256)
	})
	if allocs != 0 {
		t.Fatalf("Acquire+Done allocates %.1f objects per op, want 0", allocs)
	}
}

func BenchmarkAcquireAllocs(b *testing.B) {
	backends := []*Backend{
		NewBackend("a", "u", 64),
		NewBackend("b", "u", 64),
		NewBackend("c", "u", 64),
		NewBackend("d", "u", 64),
	}
	bal := NewBalancer(PolicyCurrentLoad, MechanismModified, backends, Config{Sweeps: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rel, err := bal.Acquire(128)
		if err != nil {
			b.Fatal(err)
		}
		rel.Done(256)
	}
}

package httpcluster

import (
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"millibalance/internal/probe"
)

// startPrequalTier boots n app servers behind a prequal proxy with a
// fast probe loop, no database.
func startPrequalTier(t *testing.T, n int, pcfg *probe.Config) (*Proxy, []*AppServer, func()) {
	t.Helper()
	var apps []*AppServer
	var backends []*Backend
	for i := 0; i < n; i++ {
		app, err := StartAppServer(AppServerConfig{
			Name:        "app" + string(rune('1'+i)),
			Workers:     64,
			ServiceTime: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
		backends = append(backends, NewBackend(app.Name(), app.URL(), 16))
	}
	proxy, err := StartProxy(ProxyConfig{
		Workers:   64,
		Policy:    PolicyPrequal,
		Mechanism: MechanismModified,
		Probe:     pcfg,
		LB:        Config{SweepPause: 10 * time.Millisecond},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	return proxy, apps, func() {
		_ = proxy.Close()
		for _, a := range apps {
			_ = a.Close()
		}
	}
}

// TestPrequalEndToEnd drives traffic through a prequal proxy and checks
// the probing subsystem is live: requests succeed, both backends serve,
// and the pools hold fresh samples for every backend.
func TestPrequalEndToEnd(t *testing.T) {
	proxy, apps, shutdown := startPrequalTier(t, 2, &probe.Config{Interval: 5 * time.Millisecond})
	defer shutdown()

	time.Sleep(30 * time.Millisecond) // a few probe rounds
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 40; i++ {
		resp, err := client.Get(proxy.URL() + "/story")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if proxy.Served() != 40 {
		t.Fatalf("served %d, want 40", proxy.Served())
	}
	pools := proxy.ProbePools()
	if pools == nil {
		t.Fatal("prequal proxy has no probe pools")
	}
	for _, app := range apps {
		if pools.Depth(app.Name()) == 0 {
			t.Fatalf("%s: empty probe pool after traffic", app.Name())
		}
	}
}

// TestPrequalAvoidsStalledBackend is the headline behavior: a stalled
// backend stops answering probes, its pool ages past the TTL, and
// prequal stops routing to it — without consulting any counter and
// without any control-plane remediation.
func TestPrequalAvoidsStalledBackend(t *testing.T) {
	proxy, apps, shutdown := startPrequalTier(t, 2, &probe.Config{
		Interval: 5 * time.Millisecond,
		TTL:      60 * time.Millisecond,
	})
	defer shutdown()
	client := &http.Client{Timeout: 5 * time.Second}

	// Warm both pools.
	time.Sleep(30 * time.Millisecond)
	doRequestN(t, client, proxy.URL()+"/x", 10)

	// Freeze app1 well past the TTL and let its samples age out.
	apps[0].Stall(900 * time.Millisecond)
	time.Sleep(150 * time.Millisecond)

	pools := proxy.ProbePools()
	if d := pools.Depth(apps[0].Name()); d != 0 {
		t.Fatalf("stalled backend still has %d fresh samples", d)
	}
	if pools.Depth(apps[1].Name()) == 0 {
		t.Fatal("healthy backend's pool went empty")
	}

	// Mid-stall traffic must all land on the healthy backend.
	for i := 0; i < 20; i++ {
		resp, err := client.Get(proxy.URL() + "/x")
		if err != nil {
			t.Fatal(err)
		}
		backend := resp.Header.Get("X-Backend")
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if backend != apps[1].Name() {
			t.Fatalf("request %d routed to %q during stall, want %s", i, backend, apps[1].Name())
		}
	}
}

func doRequestN(t *testing.T, client *http.Client, url string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
}

// TestPrequalSetPolicyReseed: a runtime swap to prequal clears the
// pools and fires an immediate probe round, so the incoming policy
// starts from live evidence.
func TestPrequalSetPolicyReseed(t *testing.T) {
	var apps []*AppServer
	var backends []*Backend
	for i := 0; i < 2; i++ {
		app, err := StartAppServer(AppServerConfig{
			Name: "app" + string(rune('1'+i)), Workers: 8, ServiceTime: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
		backends = append(backends, NewBackend(app.Name(), app.URL(), 8))
	}
	defer func() {
		for _, a := range apps {
			_ = a.Close()
		}
	}()
	// Probing armed explicitly while the static policy is current_load —
	// the swap-target scenario.
	proxy, err := StartProxy(ProxyConfig{
		Workers: 8, Policy: PolicyCurrentLoad, Mechanism: MechanismModified,
		Probe: &probe.Config{Interval: 5 * time.Millisecond},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	pools := proxy.ProbePools()
	// A poisoned sample that Clear must drop.
	pools.Observe("ghost", 999, time.Second)

	proxy.Balancer().SetPolicy(PolicyPrequal)
	if d := pools.Depth("ghost"); d != 0 {
		t.Fatalf("reseed left %d stale samples behind", d)
	}
	// The immediate probe round repopulates the real backends.
	deadline := time.Now().Add(2 * time.Second)
	for pools.Depth("app1") == 0 || pools.Depth("app2") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reseed probe round never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := proxy.Balancer().CurrentPolicy(); got != PolicyPrequal {
		t.Fatalf("policy after swap = %v", got)
	}
}

// TestPrequalSwapStress races the async probe loop, live dispatch and
// concurrent SetPolicy swaps — the -race regression net for the probing
// subsystem's locking. Deliberately kept on in -short: it runs ~300 ms
// and is exactly the kind of interleaving CI must cover.
func TestPrequalSwapStress(t *testing.T) {
	proxy, apps, shutdown := startPrequalTier(t, 2, &probe.Config{
		Interval: 2 * time.Millisecond,
		TTL:      30 * time.Millisecond,
	})
	defer shutdown()
	client := &http.Client{Timeout: 5 * time.Second}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Swapper: prequal <-> current_load as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []Policy{PolicyCurrentLoad, PolicyPrequal, PolicyRoundRobin, PolicyPrequal}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			proxy.Balancer().SetPolicy(policies[i%len(policies)])
			time.Sleep(time.Millisecond)
		}
	}()
	// Stall injector: keeps pools aging out mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			apps[0].Stall(20 * time.Millisecond)
			time.Sleep(50 * time.Millisecond)
		}
	}()
	// Traffic.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(proxy.URL() + "/x")
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if proxy.Served() == 0 {
		t.Fatal("no requests served under swap stress")
	}
}

// TestPrequalDispatchZeroAlloc is the deterministic guard CI runs by
// name: the prequal dispatch hot path — eligibility scan, pools.Pick,
// bookkeeping — must not allocate.
func TestPrequalDispatchZeroAlloc(t *testing.T) {
	bal, _ := benchPrequalBalancer()
	allocs := testing.AllocsPerRun(1000, func() {
		_, rel, err := bal.Acquire(128)
		if err != nil {
			t.Fatal(err)
		}
		rel.Done(256)
	})
	if allocs != 0 {
		t.Fatalf("prequal dispatch allocates %.1f/op, want 0", allocs)
	}
}

// benchPrequalBalancer builds a prequal balancer over two in-memory
// backends whose pools hold non-expiring samples, isolating the
// dispatch path from probing I/O.
func benchPrequalBalancer() (*Balancer, *probe.Pools) {
	backends := []*Backend{NewBackend("a", "u", 64), NewBackend("b", "u", 64)}
	bal := NewBalancer(PolicyPrequal, MechanismModified, backends, Config{Sweeps: 1})
	start := time.Now()
	pools := probe.NewPools(probe.Config{TTL: time.Hour, ReuseBudget: 1 << 30},
		func() time.Duration { return time.Since(start) })
	pools.Observe("a", 1, time.Millisecond)
	pools.Observe("b", 2, 2*time.Millisecond)
	bal.SetProbePools(pools, nil)
	return bal, pools
}

// BenchmarkPrequalDispatchOverhead measures the prequal dispatch hot
// path against the current_load baseline; CI gates on 0 allocs/op for
// the prequal arm via cmd/perfbench -pr7.
func BenchmarkPrequalDispatchOverhead(b *testing.B) {
	run := func(b *testing.B, bal *Balancer) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rel, err := bal.Acquire(128)
			if err != nil {
				b.Fatal(err)
			}
			rel.Done(256)
		}
	}
	b.Run("prequal", func(b *testing.B) {
		bal, _ := benchPrequalBalancer()
		run(b, bal)
	})
	b.Run("current_load", func(b *testing.B) {
		backends := []*Backend{NewBackend("a", "u", 64), NewBackend("b", "u", 64)}
		run(b, NewBalancer(PolicyCurrentLoad, MechanismModified, backends, Config{Sweeps: 1}))
	})
}

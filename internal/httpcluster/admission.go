package httpcluster

import (
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"millibalance/internal/admission"
)

// Wall-clock wiring for the overload-control plane (internal/admission).
// The simulator queues admission waiters as engine events; here each
// waiter is a parked goroutine holding a buffered channel. The plane
// owns the wait queue; the Gate owns the lock-free limit word, the
// limiter and the CoDel judge, so the control laws are byte-for-byte the
// same code on both substrates.

// classify maps a request to its priority class. Background work marks
// itself with the X-Priority header; everything else is interactive.
func classify(r *http.Request) admission.Class {
	if strings.EqualFold(r.Header.Get("X-Priority"), "background") {
		return admission.Background
	}
	return admission.Interactive
}

// wallWaiter is one parked request. ch is buffered so handoff never
// blocks on a waiter that timed out between being popped and receiving.
type wallWaiter struct {
	ch  chan bool
	enq time.Duration
	out bool // popped by handoff; the timeout path must honor ch
}

// admissionPlane bridges the gate to goroutine-per-request reality:
// admit parks over-limit interactive requests, handoff (the gate's
// release hook) pops them — newest-first under overload — and runs the
// CoDel judgment on their sojourn.
type admissionPlane struct {
	g       *admission.Gate
	now     func() time.Duration
	waiting *atomic.Int64 // the proxy's accept_wait gauge

	mu      sync.Mutex
	waiters []*wallWaiter
}

func newAdmissionPlane(g *admission.Gate, now func() time.Duration, waiting *atomic.Int64) *admissionPlane {
	pl := &admissionPlane{g: g, now: now, waiting: waiting}
	g.SetReleaseHook(pl.handoff)
	return pl
}

// admit gates one request: lock-free fast path when a slot is free,
// immediate shed for background requests without headroom, bounded
// parked wait for interactive ones. Returns whether the request holds a
// gate slot.
func (pl *admissionPlane) admit(cls admission.Class) bool {
	if pl.g.TryAcquire(cls) {
		return true
	}
	if cls == admission.Background {
		pl.g.Drop(pl.now(), cls, admission.ReasonPriority)
		return false
	}
	w := &wallWaiter{ch: make(chan bool, 1), enq: pl.now()}
	pl.mu.Lock()
	if len(pl.waiters) >= pl.g.MaxQueue() {
		pl.mu.Unlock()
		pl.g.Drop(pl.now(), cls, admission.ReasonQueueFull)
		return false
	}
	// Re-check under the mutex. A release between the fast-path failure
	// and the lock would otherwise be a lost wakeup: handoff holds this
	// mutex too, so once we are queued every freed slot sees us.
	if pl.g.TryAcquire(cls) {
		pl.mu.Unlock()
		return true
	}
	pl.waiters = append(pl.waiters, w)
	pl.g.EnterQueue()
	pl.mu.Unlock()

	pl.waiting.Add(1)
	defer pl.waiting.Add(-1)
	t := time.NewTimer(pl.g.MaxWait())
	defer t.Stop()
	select {
	case ok := <-w.ch:
		return ok
	case <-t.C:
	}
	pl.mu.Lock()
	if w.out {
		// Handoff popped us concurrently with the timeout; the slot (or
		// CoDel verdict) is already committed, so honor it.
		pl.mu.Unlock()
		return <-w.ch
	}
	pl.remove(w)
	pl.mu.Unlock()
	pl.g.LeaveQueue()
	pl.g.Drop(pl.now(), admission.Interactive, admission.ReasonMaxWait)
	return false
}

// remove unlinks a timed-out waiter. Caller holds pl.mu.
func (pl *admissionPlane) remove(w *wallWaiter) {
	for i, q := range pl.waiters {
		if q == w {
			pl.waiters = append(pl.waiters[:i], pl.waiters[i+1:]...)
			return
		}
	}
}

// AdmitRoundTrip performs one worker acquire/release round trip through
// whatever admission path the proxy is configured with — the hot-path
// probe perfbench -pr10 measures against the pre-admission reference.
// The release order mirrors handle's defers: worker slot first, then the
// gate, so a handed-off waiter never blocks on the worker pool.
func (p *Proxy) AdmitRoundTrip() bool {
	if !p.acquireWorker(admission.Interactive) {
		return false
	}
	if p.adm != nil {
		admitAt := p.now()
		<-p.workers
		p.adm.Release(p.now(), p.now()-admitAt, true)
		return true
	}
	<-p.workers
	return true
}

// handoff runs as the gate's release hook: while slots and waiters
// remain, pop one (LIFO when overloaded), judge its sojourn, and either
// wake it admitted or drop it and keep going. The popped waiter's slot
// is claimed before unlinking it, so a waiter is woken admitted exactly
// when it holds a slot.
func (pl *admissionPlane) handoff() {
	if pl.g.Queued() == 0 {
		return
	}
	for {
		pl.mu.Lock()
		if len(pl.waiters) == 0 {
			pl.mu.Unlock()
			return
		}
		if !pl.g.TryAcquire(admission.Interactive) {
			pl.mu.Unlock()
			return
		}
		var w *wallWaiter
		if pl.g.LIFOActive() {
			w = pl.waiters[len(pl.waiters)-1]
			pl.waiters = pl.waiters[:len(pl.waiters)-1]
		} else {
			w = pl.waiters[0]
			pl.waiters = pl.waiters[1:]
		}
		w.out = true
		pl.mu.Unlock()
		pl.g.LeaveQueue()
		now := pl.now()
		if pl.g.JudgeSojourn(now, now-w.enq) {
			pl.g.Cancel()
			pl.g.Drop(now, admission.Interactive, admission.ReasonCoDel)
			w.ch <- false
			continue
		}
		w.ch <- true
		return
	}
}

package httpcluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"millibalance/internal/stats"
)

// LoadGenConfig sizes a closed-loop client population.
type LoadGenConfig struct {
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// ThinkTime is the fixed think time between a response and the
	// next request.
	ThinkTime time.Duration
	// Path is the request path.
	Path string
}

// timelineWindow buckets the wall-clock latency timeline.
const timelineWindow = 100 * time.Millisecond

// LoadStats collects client-observed outcomes, safe for concurrent use.
type LoadStats struct {
	mu       sync.Mutex
	start    time.Time
	hist     stats.Histogram
	timeline *stats.Series
	failures uint64
	over     map[time.Duration]uint64
}

// newLoadStats tracks the given latency thresholds.
func newLoadStats(thresholds ...time.Duration) *LoadStats {
	over := make(map[time.Duration]uint64, len(thresholds))
	for _, th := range thresholds {
		over[th] = 0
	}
	return &LoadStats{
		start:    time.Now(),
		timeline: stats.NewSeries(timelineWindow),
		over:     over,
	}
}

func (s *LoadStats) record(d time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hist.Record(d)
	s.timeline.Add(time.Since(s.start), stats.DurationToMillis(d))
	if !ok {
		s.failures++
	}
	for th := range s.over {
		if d >= th {
			s.over[th]++
		}
	}
}

// Timeline returns the per-100ms-wall-window latency series in
// milliseconds, for plotting the stall's effect over the run. Call it
// after RunLoad returns; the series is not safe for use concurrently
// with recording.
func (s *LoadStats) Timeline() *stats.Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timeline
}

// Total reports the number of completed requests.
func (s *LoadStats) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist.Count()
}

// Failures reports non-2xx or transport-failed requests.
func (s *LoadStats) Failures() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// Mean reports the mean latency.
func (s *LoadStats) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist.Mean()
}

// Quantile reports a latency quantile.
func (s *LoadStats) Quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist.Quantile(q)
}

// Max reports the largest latency.
func (s *LoadStats) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist.Max()
}

// CountOver reports how many requests met or exceeded a tracked
// threshold.
func (s *LoadStats) CountOver(th time.Duration) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.over[th]
}

// RunLoad drives closed-loop clients against baseURL until the context
// is cancelled, tracking the given latency thresholds.
func RunLoad(ctx context.Context, baseURL string, cfg LoadGenConfig, thresholds ...time.Duration) *LoadStats {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.Path == "" {
		cfg.Path = "/"
	}
	out := newLoadStats(thresholds...)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for ctx.Err() == nil {
				start := time.Now()
				ok := doRequest(ctx, client, baseURL+cfg.Path)
				out.record(time.Since(start), ok)
				select {
				case <-ctx.Done():
					return
				case <-time.After(cfg.ThinkTime):
				}
			}
		}()
	}
	wg.Wait()
	return out
}

func doRequest(ctx context.Context, client *http.Client, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode < 400
}

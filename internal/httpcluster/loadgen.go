package httpcluster

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"millibalance/internal/stats"
)

// LoadGenConfig sizes a closed-loop client population.
type LoadGenConfig struct {
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// ThinkTime is the fixed think time between a response and the
	// next request.
	ThinkTime time.Duration
	// Path is the request path.
	Path string
}

// timelineWindow buckets the wall-clock latency timeline.
const timelineWindow = 100 * time.Millisecond

// loadStatsShards fixes the recording shard count — a power of two so
// the client index folds with a modulo the compiler reduces to a mask.
// Eight shards keep even a large closed-loop population off each
// other's locks; each shard carries its own histogram (≈30 KB), so the
// shards never share cache lines either.
const loadStatsShards = 8

// LoadStats collects client-observed outcomes, safe for concurrent use.
// Recording is sharded by client index — every client records into its
// own shard (lock, histogram, timeline, threshold counters) and the
// read-side accessors merge the shards on demand. A merged reading is
// exactly what a single shared recorder would have produced; the only
// change is that concurrent clients stop serializing per request.
type LoadStats struct {
	start time.Time
	// thresholds is sorted ascending; each shard's over counters align
	// with it by index. A sorted slice with an early break replaces the
	// previous per-record map walk: thresholds at or below the observed
	// latency form a prefix.
	thresholds []time.Duration
	shards     [loadStatsShards]loadShard
}

type loadShard struct {
	mu       sync.Mutex
	hist     stats.Histogram
	timeline *stats.Series
	failures uint64
	over     []uint64
}

// NewLoadStats returns an empty collector tracking the given latency
// thresholds, its run clock starting now. RunLoad builds its own; the
// export exists for benchmarks and external drivers that record
// directly.
func NewLoadStats(thresholds ...time.Duration) *LoadStats {
	sorted := make([]time.Duration, len(thresholds))
	copy(sorted, thresholds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := &LoadStats{start: time.Now(), thresholds: sorted}
	for i := range s.shards {
		s.shards[i].timeline = stats.NewSeries(timelineWindow)
		s.shards[i].over = make([]uint64, len(sorted))
	}
	return s
}

// Record notes one request outcome observed by the given client index
// (any non-negative integer; RunLoad passes each goroutine's index).
// Only the client's own shard lock is taken.
func (s *LoadStats) Record(client int, d time.Duration, ok bool) {
	sh := &s.shards[uint(client)%loadStatsShards]
	sh.mu.Lock()
	sh.hist.Record(d)
	sh.timeline.Add(time.Since(s.start), stats.DurationToMillis(d))
	if !ok {
		sh.failures++
	}
	for i, th := range s.thresholds {
		if d < th {
			break
		}
		sh.over[i]++
	}
	sh.mu.Unlock()
}

// mergedHist folds every shard's histogram into out.
func (s *LoadStats) mergedHist(out *stats.Histogram) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Merge(&sh.hist)
		sh.mu.Unlock()
	}
}

// Timeline returns the per-100ms-wall-window latency series in
// milliseconds, for plotting the stall's effect over the run. Call it
// after RunLoad returns; the series is not safe for use concurrently
// with recording.
func (s *LoadStats) Timeline() *stats.Series {
	merged := stats.NewSeries(timelineWindow)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		merged.Merge(sh.timeline)
		sh.mu.Unlock()
	}
	return merged
}

// Total reports the number of completed requests.
func (s *LoadStats) Total() uint64 {
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.hist.Count()
		sh.mu.Unlock()
	}
	return n
}

// Failures reports non-2xx or transport-failed requests.
func (s *LoadStats) Failures() uint64 {
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.failures
		sh.mu.Unlock()
	}
	return n
}

// Mean reports the mean latency.
func (s *LoadStats) Mean() time.Duration {
	var h stats.Histogram
	s.mergedHist(&h)
	return h.Mean()
}

// Quantile reports a latency quantile.
func (s *LoadStats) Quantile(q float64) time.Duration {
	var h stats.Histogram
	s.mergedHist(&h)
	return h.Quantile(q)
}

// Max reports the largest latency.
func (s *LoadStats) Max() time.Duration {
	var h stats.Histogram
	s.mergedHist(&h)
	return h.Max()
}

// CountOver reports how many requests met or exceeded a tracked
// threshold (zero for thresholds the collector was not built with,
// matching the previous map semantics).
func (s *LoadStats) CountOver(th time.Duration) uint64 {
	idx := -1
	for i, t := range s.thresholds {
		if t == th {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.over[idx]
		sh.mu.Unlock()
	}
	return n
}

// RunLoad drives closed-loop clients against baseURL until the context
// is cancelled, tracking the given latency thresholds.
func RunLoad(ctx context.Context, baseURL string, cfg LoadGenConfig, thresholds ...time.Duration) *LoadStats {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.Path == "" {
		cfg.Path = "/"
	}
	out := NewLoadStats(thresholds...)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			client = client % loadStatsShards
			httpClient := &http.Client{Timeout: 10 * time.Second}
			for ctx.Err() == nil {
				start := time.Now()
				ok := doRequest(ctx, httpClient, baseURL+cfg.Path)
				out.Record(client, time.Since(start), ok)
				select {
				case <-ctx.Done():
					return
				case <-time.After(cfg.ThinkTime):
				}
			}
		}(i)
	}
	wg.Wait()
	return out
}

func doRequest(ctx context.Context, client *http.Client, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode < 400
}

package httpcluster

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"millibalance/internal/adapt"
	"millibalance/internal/admission"
	"millibalance/internal/telemetry"
)

// startTelemetryTier brings up a one-backend tier with every admin
// surface armed: spans, events, the adaptive controller and the
// telemetry sampler. The app server is returned too so tests can hit
// its own admin surface (/admin/probe).
func startTelemetryTier(t *testing.T) (*Proxy, *AppServer, func()) {
	t.Helper()
	app, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 16, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := StartProxy(ProxyConfig{
		Workers:       16,
		Policy:        PolicyCurrentLoad,
		Mechanism:     MechanismModified,
		SpanCapacity:  1024,
		EventCapacity: 1024,
		Adapt:         &adapt.Config{},
		Admission:     &admission.Config{Limiter: admission.LimiterGradient, CoDel: true},
		Telemetry:     &telemetry.Config{Interval: 5 * time.Millisecond},
	}, []*Backend{NewBackend("app1", app.URL(), 8)})
	if err != nil {
		_ = app.Close()
		t.Fatal(err)
	}
	return proxy, app, func() {
		_ = proxy.Close()
		_ = app.Close()
	}
}

// TestAdminStreamHeaders locks down the content-type contract of the
// streaming admin endpoints: JSONL streams declare x-ndjson and every
// stream forbids content sniffing, because they echo request-derived
// strings and must never be interpreted as HTML.
func TestAdminStreamHeaders(t *testing.T) {
	proxy, app, shutdown := startTelemetryTier(t)
	defer shutdown()
	client := &http.Client{Timeout: 5 * time.Second}
	doRequest(context.Background(), client, proxy.URL()+"/x")

	cases := []struct {
		base        string
		path        string
		contentType string
	}{
		{proxy.URL(), "/admin/trace", "application/x-ndjson"},
		{proxy.URL(), "/admin/events", "application/x-ndjson"},
		{proxy.URL(), "/admin/adapt/decisions", "application/x-ndjson"},
		{proxy.URL(), "/admin/admission", "application/x-ndjson"},
		{proxy.URL(), "/admin/timeline", "application/x-ndjson"},
		{proxy.URL(), "/metrics", promContentType},
		// The app server's probe endpoint follows the same convention:
		// it echoes a configured backend name into the stream, so it
		// must never be sniffed into HTML either.
		{app.URL(), "/admin/probe", "application/x-ndjson"},
	}
	for _, tc := range cases {
		resp, err := client.Get(tc.base + tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.contentType {
			t.Fatalf("%s: Content-Type %q, want %q", tc.path, got, tc.contentType)
		}
		if got := resp.Header.Get("X-Content-Type-Options"); got != "nosniff" {
			t.Fatalf("%s: X-Content-Type-Options %q, want nosniff", tc.path, got)
		}
	}
}

// TestProxyTelemetryExport drives traffic through a telemetry-armed
// proxy and checks both export formats carry the expected tracks.
func TestProxyTelemetryExport(t *testing.T) {
	proxy, _, shutdown := startTelemetryTier(t)
	defer shutdown()
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 10; i++ {
		doRequest(context.Background(), client, proxy.URL()+"/x")
	}
	time.Sleep(25 * time.Millisecond) // a few sampler ticks

	get := func(path string) string {
		t.Helper()
		resp, err := client.Get(proxy.URL() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE millibalance_goroutines gauge",
		"# TYPE millibalance_completed_total counter",
		`millibalance_in_flight{source="app1"}`,
		`millibalance_workers_busy{source="proxy"}`,
		`millibalance_accept_wait{source="proxy"}`,
		`millibalance_admission_limit{source="proxy"}`,
		`millibalance_admission_drop_rate{source="proxy"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	timeline := get("/admin/timeline")
	for _, want := range []string{
		`"source":"proxy","signal":"goroutines"`,
		`"source":"app1","signal":"pool_free"`,
		`"source":"app1","signal":"completed_total"`,
	} {
		if !strings.Contains(timeline, want) {
			t.Fatalf("/admin/timeline missing %q", want)
		}
	}

	// The completed counter must have caught up with the traffic.
	tr := proxy.Timeline().Lookup("app1", telemetry.SignalCompleted)
	if tr == nil {
		t.Fatal("no completed_total track")
	}
	if p, ok := tr.Latest(); !ok || p.V < 10 {
		t.Fatalf("completed_total latest = %+v, want >= 10", p)
	}
}

// TestProxyTelemetryDisabled404 keeps the pay-for-what-you-use
// contract visible at the HTTP surface.
func TestProxyTelemetryDisabled404(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "a", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	proxy, err := StartProxy(ProxyConfig{
		Workers: 4, Policy: PolicyCurrentLoad, Mechanism: MechanismModified,
	}, []*Backend{NewBackend("a", app.URL(), 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()
	if proxy.Timeline() != nil {
		t.Fatal("Timeline non-nil without ProxyConfig.Telemetry")
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/metrics", "/admin/timeline"} {
		resp, err := client.Get(proxy.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s with telemetry off: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestTelemetryDisabledDispatchZeroAlloc is the deterministic guard CI
// runs by name: with no telemetry armed, the balancer dispatch hot path
// must not allocate, so arming the sampler is genuinely opt-in cost.
func TestTelemetryDisabledDispatchZeroAlloc(t *testing.T) {
	backends := []*Backend{NewBackend("a", "u", 64), NewBackend("b", "u", 64)}
	bal := NewBalancer(PolicyCurrentLoad, MechanismModified, backends, Config{Sweeps: 1})
	allocs := testing.AllocsPerRun(1000, func() {
		_, rel, err := bal.Acquire(128)
		if err != nil {
			t.Fatal(err)
		}
		rel.Done(256)
	})
	if allocs != 0 {
		t.Fatalf("dispatch with telemetry disabled allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkTelemetryDisabledOverhead measures the dispatch hot path
// with telemetry off (must be 0 allocs/op) and with a live 50 ms wall
// sampler reading the same backends' gauges, so the sampler's cost to
// the foreground path is directly visible.
func BenchmarkTelemetryDisabledOverhead(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		backends := []*Backend{NewBackend("a", "u", 64), NewBackend("b", "u", 64)}
		bal := NewBalancer(PolicyCurrentLoad, MechanismModified, backends, Config{Sweeps: 1})
		if enabled {
			s := telemetry.NewWallSampler("bench", telemetry.Config{})
			for _, be := range backends {
				be := be
				s.Register(be.Name(), telemetry.SignalInFlight, func() float64 { return float64(be.InFlight()) })
				s.Register(be.Name(), telemetry.SignalCompleted, func() float64 { return float64(be.Completed()) })
			}
			s.Start()
			defer s.Stop()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rel, err := bal.Acquire(128)
			if err != nil {
				b.Fatal(err)
			}
			rel.Done(256)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

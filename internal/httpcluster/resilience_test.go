package httpcluster

import (
	"io"
	"net/http"
	"testing"
	"time"
)

func TestRetryBudget(t *testing.T) {
	rb := newRetryBudget(0.5, 3)
	// Starts full: isolated failures get their retries immediately.
	for i := 0; i < 3; i++ {
		if !rb.withdraw() {
			t.Fatalf("withdraw %d refused with full bucket", i)
		}
	}
	if rb.withdraw() {
		t.Fatal("withdraw succeeded with empty bucket")
	}
	// Two first attempts deposit 2×0.5 = 1 token.
	rb.deposit()
	rb.deposit()
	if !rb.withdraw() {
		t.Fatal("withdraw refused after refill")
	}
	if rb.withdraw() {
		t.Fatal("second withdraw succeeded on one token")
	}
	// The cap bounds banked tokens.
	for i := 0; i < 100; i++ {
		rb.deposit()
	}
	for i := 0; i < 3; i++ {
		if !rb.withdraw() {
			t.Fatalf("withdraw %d refused at cap", i)
		}
	}
	if rb.withdraw() {
		t.Fatal("bucket held more than its cap")
	}
	// Disabled and nil budgets always allow.
	if newRetryBudget(-1, 10) != nil {
		t.Fatal("negative refill should disable the budget")
	}
	var off *retryBudget
	off.deposit()
	if !off.withdraw() {
		t.Fatal("nil budget refused a retry")
	}
}

func TestResilienceDefaults(t *testing.T) {
	r := Resilience{}.withDefaults()
	if r.AttemptTimeout != 2*time.Second || r.MaxRetries != 2 || r.ShedAfter != time.Second {
		t.Fatalf("unexpected defaults: %+v", r)
	}
	if r.RetryBudget != 0.2 || r.RetryBudgetCap != 50 || r.RetryBackoff != 5*time.Millisecond {
		t.Fatalf("unexpected defaults: %+v", r)
	}
	if d := (Resilience{MaxRetries: -1}).withDefaults(); d.MaxRetries != 0 {
		t.Fatalf("MaxRetries -1 → %d, want 0 (disabled)", d.MaxRetries)
	}
}

// TestRetryOnCrashedBackend: with resilience armed, a request whose
// first attempt lands on a dead backend must be retried onto the
// healthy one and succeed.
func TestRetryOnCrashedBackend(t *testing.T) {
	app1, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app1.Close() }()
	app2, err := StartAppServer(AppServerConfig{Name: "app2", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app2.Close() }()

	backends := []*Backend{
		NewBackend("app1", app1.URL(), 4),
		NewBackend("app2", app2.URL(), 4),
	}
	proxy, err := StartProxy(ProxyConfig{
		Workers:    8,
		Policy:     PolicyTotalRequest, // deterministic: lowest lb_value, scan order
		Mechanism:  MechanismModified,
		LB:         Config{Sweeps: 1},
		Resilience: &Resilience{AttemptTimeout: time.Second, MaxRetries: 2, RetryBackoff: time.Millisecond},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	app1.Crash()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(proxy.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %q, want 200 via retry", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Backend"); got != "app2" {
		t.Fatalf("served by %s, want app2", got)
	}
	if proxy.Retries() == 0 {
		t.Fatal("no retry recorded")
	}
	// The crashed backend took the upstream failure on its ladder.
	if st := backends[0].State(); st == BackendAvailable {
		t.Fatalf("crashed backend still Available after failed attempt")
	}

	// After restart the backend serves again.
	if err := app1.Restart(); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(app1.URL() + "/healthz")
	if err != nil {
		t.Fatalf("restarted backend unreachable: %v", err)
	}
	_ = resp.Body.Close()
}

// TestRetryBudgetExhaustion: with every backend dead, retries stop once
// the budget is spent instead of amplifying into a retry storm.
func TestRetryBudgetExhaustion(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	backends := []*Backend{NewBackend("app1", app.URL(), 4)}
	proxy, err := StartProxy(ProxyConfig{
		Workers:   8,
		Policy:    PolicyCurrentLoad,
		Mechanism: MechanismModified,
		LB:        Config{Sweeps: 1},
		Resilience: &Resilience{
			AttemptTimeout: time.Second,
			MaxRetries:     3,
			RetryBackoff:   time.Millisecond,
			RetryBudget:    0.1,
			RetryBudgetCap: 2,
		},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	app.Crash()
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 10; i++ {
		resp, err := client.Get(proxy.URL() + "/x")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("request succeeded against a crashed tier")
		}
	}
	// Budget: cap 2 banked + 10×0.1 deposited = at most 3 retries for
	// 10 failing requests; without the budget it would be 30.
	if got := proxy.Retries(); got > 3 {
		t.Fatalf("retries = %d, want ≤ 3 under the budget", got)
	}
}

// TestLoadShedding: with resilience armed and the worker pool pinned,
// excess requests shed with 503 after ShedAfter instead of queueing
// indefinitely.
func TestLoadShedding(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 4, ServiceTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	backends := []*Backend{NewBackend("app1", app.URL(), 4)}
	proxy, err := StartProxy(ProxyConfig{
		Workers:    2,
		Policy:     PolicyCurrentLoad,
		Mechanism:  MechanismModified,
		LB:         Config{Sweeps: 1},
		Resilience: &Resilience{ShedAfter: 50 * time.Millisecond, MaxRetries: -1},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	// Pin both worker slots with requests frozen inside the app tier.
	app.Stall(time.Second)
	time.Sleep(5 * time.Millisecond)
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := client.Get(proxy.URL() + "/x")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	resp, err := client.Get(proxy.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("shed took %v, want fast-fail near the 50ms budget", elapsed)
	}
	if proxy.Shed() == 0 {
		t.Fatal("no shed recorded")
	}
}

// TestAttemptDeadline: a stalled backend must not hold a request past
// AttemptTimeout when resilience is armed.
func TestAttemptDeadline(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	backends := []*Backend{NewBackend("app1", app.URL(), 4)}
	proxy, err := StartProxy(ProxyConfig{
		Workers:    8,
		Policy:     PolicyCurrentLoad,
		Mechanism:  MechanismModified,
		LB:         Config{Sweeps: 1},
		Resilience: &Resilience{AttemptTimeout: 100 * time.Millisecond, MaxRetries: -1},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	app.Stall(2 * time.Second)
	time.Sleep(5 * time.Millisecond)
	client := &http.Client{Timeout: 5 * time.Second}
	start := time.Now()
	resp, err := client.Get(proxy.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 after attempt deadline", resp.StatusCode)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline answered after %v, want near the 100ms attempt budget", elapsed)
	}
}

// TestBaselineStillBlocks: without resilience the proxy keeps the
// paper's baseline behavior — no shedding, workers block.
func TestBaselineStillBlocks(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	backends := []*Backend{NewBackend("app1", app.URL(), 4)}
	proxy, err := StartProxy(ProxyConfig{
		Workers:   4,
		Policy:    PolicyCurrentLoad,
		Mechanism: MechanismModified,
		LB:        Config{Sweeps: 1},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(proxy.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if proxy.Shed() != 0 || proxy.Retries() != 0 {
		t.Fatalf("resilience counters moved without resilience: shed=%d retries=%d", proxy.Shed(), proxy.Retries())
	}
}

package httpcluster

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"millibalance/internal/admission"
	"millibalance/internal/obs"
)

// TestResilienceDelegatesToAdmission pins the satellite refactor: a
// Resilience config with no explicit Admission arms a FixedShed gate —
// static limiter sized to the worker pool, MaxWait = ShedAfter — so the
// historical bounded-wait shed and the new plane are one code path.
func TestResilienceDelegatesToAdmission(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	proxy, err := StartProxy(ProxyConfig{
		Workers:    3,
		Policy:     PolicyCurrentLoad,
		Mechanism:  MechanismModified,
		LB:         Config{Sweeps: 1},
		Resilience: &Resilience{ShedAfter: 80 * time.Millisecond, MaxRetries: -1},
	}, []*Backend{NewBackend("app1", app.URL(), 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	g := proxy.Admission()
	if g == nil {
		t.Fatal("Resilience armed but no admission gate")
	}
	st := g.Stats()
	if st.Limiter != admission.LimiterStatic || st.CoDel || st.Limit != 3 {
		t.Fatalf("delegated gate = %+v, want static limiter at the pool size without CoDel", st)
	}
	if g.MaxWait() != 80*time.Millisecond {
		t.Fatalf("MaxWait %v, want ShedAfter 80ms", g.MaxWait())
	}

	// Without either config there must be no gate — the paper's
	// baseline blocking behavior stays byte-identical.
	base, err := StartProxy(ProxyConfig{
		Workers: 2, Policy: PolicyCurrentLoad, Mechanism: MechanismModified,
	}, []*Backend{NewBackend("app1", app.URL(), 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = base.Close() }()
	if base.Admission() != nil {
		t.Fatal("admission gate armed without Admission or Resilience config")
	}
}

// TestProxyAdmissionShedsUnderStall stalls the only backend under an
// explicitly armed codel+gradient plane and checks requests shed with
// 503 within the MaxWait bound, with gate drops and admission_drop
// events to show for it.
func TestProxyAdmissionShedsUnderStall(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	proxy, err := StartProxy(ProxyConfig{
		Workers:       2,
		Policy:        PolicyCurrentLoad,
		Mechanism:     MechanismModified,
		LB:            Config{Sweeps: 1},
		EventCapacity: 1024,
		Admission: &admission.Config{
			Limiter: admission.LimiterGradient,
			CoDel:   true,
			LIFO:    true,
			MaxWait: 60 * time.Millisecond,
		},
	}, []*Backend{NewBackend("app1", app.URL(), 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	// Pin both admitted slots inside the stalled app tier, then overfill.
	app.Stall(time.Second)
	time.Sleep(5 * time.Millisecond)
	client := &http.Client{Timeout: 5 * time.Second}
	var wg sync.WaitGroup
	var sheds atomic.Uint64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(proxy.URL() + "/x")
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				sheds.Add(1)
			}
		}()
	}
	wg.Wait()

	if sheds.Load() == 0 || proxy.Shed() == 0 {
		t.Fatalf("no sheds against a stalled tier (503s=%d, proxy.Shed=%d)", sheds.Load(), proxy.Shed())
	}
	if proxy.Admission().Dropped() == 0 {
		t.Fatal("gate recorded no drops")
	}
	drops := proxy.Events().Kind(obs.KindAdmissionDrop)
	if len(drops) == 0 {
		t.Fatal("no admission_drop events")
	}
	for _, ev := range drops {
		if ev.Reason == "" || ev.Class == "" || ev.Source != "proxy" {
			t.Fatalf("admission_drop event missing fields: %+v", ev)
		}
	}
}

// TestProxyAdmissionBackgroundPriority: background-class requests
// (X-Priority header) are confined to the limit's headroom and shed
// immediately — never queued — while interactive traffic still waits.
func TestProxyAdmissionBackgroundPriority(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "app1", Workers: 8, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	proxy, err := StartProxy(ProxyConfig{
		Workers:   4,
		Policy:    PolicyCurrentLoad,
		Mechanism: MechanismModified,
		LB:        Config{Sweeps: 1},
		// Headroom 0.5 on a limit of 4: background admits stop at 2.
		Admission: &admission.Config{BackgroundHeadroom: 0.5, MaxWait: 50 * time.Millisecond},
	}, []*Backend{NewBackend("app1", app.URL(), 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	// Fill the background share by hand at the gate, then check a
	// background request sheds instantly while an interactive one lands.
	g := proxy.Admission()
	if !g.TryAcquire(admission.Background) || !g.TryAcquire(admission.Background) {
		t.Fatal("background headroom not available on an idle gate")
	}
	if g.TryAcquire(admission.Background) {
		t.Fatal("third background admit above 0.5 headroom of limit 4")
	}
	client := &http.Client{Timeout: 5 * time.Second}
	req, _ := http.NewRequest(http.MethodGet, proxy.URL()+"/x", nil)
	req.Header.Set("X-Priority", "background")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("background over headroom: status %d, want 503", resp.StatusCode)
	}
	if time.Since(start) > 25*time.Millisecond {
		t.Fatalf("background shed waited %v, want immediate", time.Since(start))
	}
	if g.Stats().DropsPriority == 0 {
		t.Fatal("no priority drop recorded")
	}

	resp, err = client.Get(proxy.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive within the limit: status %d, want 200", resp.StatusCode)
	}
	g.Release(0, time.Millisecond, true)
	g.Release(0, time.Millisecond, true)
}

// TestAdmissionPlaneFastPathZeroAlloc: the uncontended wall-clock admit
// path — the one every request takes when the tier is healthy — must
// not allocate, same bar as the simulator gate.
func TestAdmissionPlaneFastPathZeroAlloc(t *testing.T) {
	g := admission.NewGate(admission.Config{Limiter: admission.LimiterGradient, CoDel: true}, 64)
	epoch := time.Now()
	now := func() time.Duration { return time.Since(epoch) }
	g.SetClock(now)
	pl := newAdmissionPlane(g, now, new(atomic.Int64))
	allocs := testing.AllocsPerRun(1000, func() {
		if !pl.admit(admission.Interactive) {
			t.Fatal("uncontended admit refused")
		}
		g.Release(now(), time.Millisecond, true)
	})
	if allocs != 0 {
		t.Fatalf("uncontended plane admit allocates %.1f/op, want 0", allocs)
	}
}

// TestAdmissionPlaneHandoff drives the parked-waiter path directly: a
// full gate, a queued waiter, and a release must hand the freed slot to
// the waiter rather than dropping it on the floor.
func TestAdmissionPlaneHandoff(t *testing.T) {
	g := admission.NewGate(admission.Config{Limiter: admission.LimiterStatic, Limit: 1, MaxWait: time.Second}, 1)
	epoch := time.Now()
	now := func() time.Duration { return time.Since(epoch) }
	g.SetClock(now)
	pl := newAdmissionPlane(g, now, new(atomic.Int64))

	if !pl.admit(admission.Interactive) {
		t.Fatal("first admit refused")
	}
	got := make(chan bool, 1)
	go func() { got <- pl.admit(admission.Interactive) }()
	// Wait until the second request is parked, then free the slot.
	deadline := time.Now().Add(time.Second)
	for g.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	g.Release(now(), time.Millisecond, true)
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("handed-off waiter reported shed")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke after release")
	}
	if g.InFlight() != 1 || g.Queued() != 0 {
		t.Fatalf("in-flight %d queued %d after handoff, want 1/0", g.InFlight(), g.Queued())
	}
	g.Release(now(), time.Millisecond, true)
}

package httpcluster

import (
	"time"
)

// Runtime reconfiguration — the wall-clock twin of internal/lb's
// actuation surface. The adaptive control plane (internal/adapt)
// hot-swaps the policy or mechanism and drains/re-admits individual
// backends while worker goroutines keep dispatching. Counters survive a
// swap and each backend's lb_value is reseeded from them, so
// current_load's invariant lb_value == in-flight holds immediately
// after swapping in.
//
// Concurrency model (DESIGN.md §12): every swap builds a fresh
// balSnapshot and publishes it with one atomic store; dispatches load
// the snapshot once per choice and never observe a half-applied swap.
// writerMu serializes the writers against each other only — no reader
// ever takes it, so the control plane can reconfigure under full
// dispatch load without stalling a single request.

// CurrentPolicy reads the live policy (it may differ from the
// construction-time one after an adaptive hot-swap). Lock-free.
func (b *Balancer) CurrentPolicy() Policy { return b.snap.Load().policy }

// CurrentMechanism reads the live mechanism. Lock-free.
func (b *Balancer) CurrentMechanism() Mechanism { return b.snap.Load().mech }

// bumpWakeLocked publishes snapshot next with a fresh wake channel and
// closes the previous one, releasing every worker sleeping in an
// original-mechanism poll so it re-checks its abort conditions
// immediately. Caller holds writerMu; next.wake is overwritten.
func (b *Balancer) bumpWakeLocked(next balSnapshot) {
	old := b.snap.Load()
	next.wake = make(chan struct{})
	b.snap.Store(&next)
	close(old.wake)
}

// SetPolicy swaps the lb_value bookkeeping at runtime, reseeding every
// backend's lb_value from its preserved counters — exactly the value
// the incoming policy would have accumulated itself. Swapping to
// prequal additionally reseeds the probe pools (clear plus an
// immediate probe round), so the incoming policy starts from live
// evidence rather than samples gathered under the previous regime.
func (b *Balancer) SetPolicy(p Policy) {
	b.writerMu.Lock()
	next := *b.snap.Load()
	next.policy = p
	b.snap.Store(&next)
	for _, be := range b.backends {
		// Atomic counter reads + atomic store: a dispatch racing the
		// reseed lands an increment that is folded into (or follows)
		// the reseeded value — the same point-in-time approximation the
		// mutex version made, since dispatches never held the balancer
		// lock across their backend bookkeeping.
		switch p {
		case PolicyTotalRequest:
			be.lbValue.Store(float64(be.dispatched.Load()) / be.weightVal())
		case PolicyTotalTraffic:
			be.lbValue.Store(float64(be.traffic.Load()) / be.weightVal())
		case PolicyCurrentLoad, PolicyPrequal:
			be.lbValue.Store(float64(be.InFlight()) / be.weightVal())
		case PolicyRoundRobin:
			// Unscaled in-flight bookkeeping, matching lb.RoundRobin.
			be.lbValue.Store(float64(be.InFlight()))
		}
	}
	reseed := next.reseed
	b.writerMu.Unlock()
	// The reseed hook fires probes over real sockets; run it outside
	// every balancer lock.
	if p == PolicyPrequal && reseed != nil {
		reseed()
	}
}

// SetMechanism swaps the endpoint-acquisition mechanism at runtime.
// Acquisitions already polling under the original mechanism re-check
// the live mechanism every iteration and are woken mid-sleep, so an
// original→modified swap frees blocked workers immediately instead of
// holding them for the rest of the acquire window.
func (b *Balancer) SetMechanism(m Mechanism) {
	b.writerMu.Lock()
	defer b.writerMu.Unlock()
	next := *b.snap.Load()
	next.mech = m
	b.bumpWakeLocked(next)
}

// SetQuarantine drains (or re-admits) a backend by name: while
// quarantined it is skipped by the scheduler and by sticky sessions
// except for explicitly armed probe requests. In-flight requests finish
// normally. Re-admission under a cumulative policy (total_request,
// total_traffic) applies mod_jk recovery seeding — the backend
// re-enters at the tier's maximum lb_value, so its frozen, now-minimal
// value cannot attract the entire tier's traffic in one wave. Reports
// whether the backend was found.
func (b *Balancer) SetQuarantine(name string, on bool) bool {
	policy := b.CurrentPolicy()
	if on {
		// Wake workers polling the drained backend inside the original
		// mechanism: quarantine means no endpoint is coming, and every
		// blocked worker is one less goroutine emptying the accept
		// queue (the paper's amplification path).
		b.writerMu.Lock()
		b.bumpWakeLocked(*b.snap.Load())
		b.writerMu.Unlock()
	}
	for _, be := range b.backends {
		if be.name != name {
			continue
		}
		be.mu.Lock()
		w := be.word.Load()
		if on {
			be.applyLocked(w, w|hotQuarantined)
			be.mu.Unlock()
			return true
		}
		be.applyLocked(w, w&^(hotQuarantined|hotProbeArmed))
		be.mu.Unlock()
		if policy == PolicyTotalRequest || policy == PolicyTotalTraffic {
			seed := 0.0
			for _, o := range b.backends {
				if o == be {
					continue
				}
				if v := o.lbValue.Load(); v > seed {
					seed = v
				}
			}
			// StoreMax, not Store: a concurrent bookkeeping update must
			// not be clobbered by a stale read-modify-write.
			be.lbValue.StoreMax(seed)
		}
		return true
	}
	return false
}

// ArmProbe allows exactly one request through a quarantined backend so
// the probe hook can measure whether it has recovered. A no-op when the
// backend is not quarantined or a probe is already in flight. Reports
// whether a probe was armed.
func (b *Balancer) ArmProbe(name string) bool {
	for _, be := range b.backends {
		if be.name != name {
			continue
		}
		be.mu.Lock()
		w := be.word.Load()
		armed := false
		if w&hotQuarantined != 0 && w&hotProbing == 0 {
			be.applyLocked(w, w|hotProbeArmed)
			armed = true
		}
		be.mu.Unlock()
		return armed
	}
	return false
}

// SetProbeHook registers the probe-outcome callback: rt is the measured
// response time for a completed probe; ok is false when the probe's
// endpoint acquisition failed. Invoked without any lock held. Call
// before serving traffic.
func (b *Balancer) SetProbeHook(hook func(be *Backend, rt time.Duration, ok bool)) {
	b.onProbe = hook
}

// Quarantined reads the backend's quarantine flag (lock-free).
func (b *Backend) Quarantined() bool {
	return b.word.Load()&hotQuarantined != 0
}

// Traffic reads the cumulative bytes exchanged (lock-free).
func (b *Backend) Traffic() int64 { return b.traffic.Load() }

package httpcluster

import (
	"time"
)

// Runtime reconfiguration — the wall-clock twin of internal/lb's
// actuation surface. The adaptive control plane (internal/adapt)
// hot-swaps the policy or mechanism and drains/re-admits individual
// backends while worker goroutines keep dispatching. Counters survive a
// swap and each backend's lb_value is reseeded from them, so
// current_load's invariant lb_value == in-flight holds immediately
// after swapping in.
//
// Lock ordering: SetPolicy holds b.mu and then each be.mu. The dispatch
// path therefore always reads the policy/mechanism via the b.mu-guarded
// accessors BEFORE taking any backend lock, never the other way around.

// CurrentPolicy reads the live policy (it may differ from the
// construction-time one after an adaptive hot-swap).
func (b *Balancer) CurrentPolicy() Policy {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.policy
}

// CurrentMechanism reads the live mechanism.
func (b *Balancer) CurrentMechanism() Mechanism {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mech
}

// SetPolicy swaps the lb_value bookkeeping at runtime, reseeding every
// backend's lb_value from its preserved counters — exactly the value
// the incoming policy would have accumulated itself. Swapping to
// prequal additionally reseeds the probe pools (clear plus an
// immediate probe round), so the incoming policy starts from live
// evidence rather than samples gathered under the previous regime.
func (b *Balancer) SetPolicy(p Policy) {
	b.mu.Lock()
	b.policy = p
	reseed := b.reseedProbes
	for _, be := range b.backends {
		be.mu.Lock()
		switch p {
		case PolicyTotalRequest:
			be.lbValue = float64(be.dispatched) / be.weightLocked()
		case PolicyTotalTraffic:
			be.lbValue = float64(be.traffic) / be.weightLocked()
		case PolicyCurrentLoad, PolicyPrequal:
			be.lbValue = float64(be.dispatched-be.completed) / be.weightLocked()
		case PolicyRoundRobin:
			// Unscaled in-flight bookkeeping, matching lb.RoundRobin.
			be.lbValue = float64(be.dispatched - be.completed)
		}
		be.mu.Unlock()
	}
	b.mu.Unlock()
	// The reseed hook fires probes over real sockets; run it outside
	// every balancer lock.
	if p == PolicyPrequal && reseed != nil {
		reseed()
	}
}

// SetMechanism swaps the endpoint-acquisition mechanism at runtime.
// Acquisitions already polling under the original mechanism re-check
// the live mechanism every iteration and are woken mid-sleep, so an
// original→modified swap frees blocked workers immediately instead of
// holding them for the rest of the acquire window.
func (b *Balancer) SetMechanism(m Mechanism) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mech = m
	b.bumpWakeLocked()
}

// SetQuarantine drains (or re-admits) a backend by name: while
// quarantined it is skipped by the scheduler and by sticky sessions
// except for explicitly armed probe requests. In-flight requests finish
// normally. Re-admission under a cumulative policy (total_request,
// total_traffic) applies mod_jk recovery seeding — the backend
// re-enters at the tier's maximum lb_value, so its frozen, now-minimal
// value cannot attract the entire tier's traffic in one wave. Reports
// whether the backend was found.
func (b *Balancer) SetQuarantine(name string, on bool) bool {
	policy := b.CurrentPolicy()
	if on {
		// Wake workers polling the drained backend inside the original
		// mechanism: quarantine means no endpoint is coming, and every
		// blocked worker is one less goroutine emptying the accept
		// queue (the paper's amplification path).
		b.mu.Lock()
		b.bumpWakeLocked()
		b.mu.Unlock()
	}
	for _, be := range b.backends {
		if be.name != name {
			continue
		}
		be.mu.Lock()
		be.quarantined = on
		if !on {
			be.probeArmed = false
			if policy == PolicyTotalRequest || policy == PolicyTotalTraffic {
				seed := be.lbValue
				be.mu.Unlock()
				for _, o := range b.backends {
					if o == be {
						continue
					}
					o.mu.Lock()
					if o.lbValue > seed {
						seed = o.lbValue
					}
					o.mu.Unlock()
				}
				be.mu.Lock()
				if seed > be.lbValue {
					be.lbValue = seed
				}
			}
		}
		be.mu.Unlock()
		return true
	}
	return false
}

// ArmProbe allows exactly one request through a quarantined backend so
// the probe hook can measure whether it has recovered. A no-op when the
// backend is not quarantined or a probe is already in flight. Reports
// whether a probe was armed.
func (b *Balancer) ArmProbe(name string) bool {
	for _, be := range b.backends {
		if be.name != name {
			continue
		}
		be.mu.Lock()
		armed := false
		if be.quarantined && !be.probing {
			be.probeArmed = true
			armed = true
		}
		be.mu.Unlock()
		return armed
	}
	return false
}

// SetProbeHook registers the probe-outcome callback: rt is the measured
// response time for a completed probe; ok is false when the probe's
// endpoint acquisition failed. Invoked without any lock held. Call
// before serving traffic.
func (b *Balancer) SetProbeHook(hook func(be *Backend, rt time.Duration, ok bool)) {
	b.onProbe = hook
}

// Quarantined reads the backend's quarantine flag.
func (b *Backend) Quarantined() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.quarantined
}

// Traffic reads the cumulative bytes exchanged.
func (b *Backend) Traffic() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.traffic
}

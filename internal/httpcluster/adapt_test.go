package httpcluster

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"millibalance/internal/adapt"
)

// TestBalancerRuntimeSwapReseeds covers the wall-clock swap surface at
// the unit level: counters survive, and current_load's invariant
// lb_value == in-flight holds immediately after swapping in.
func TestBalancerRuntimeSwapReseeds(t *testing.T) {
	backends := []*Backend{
		NewBackend("a", "http://a", 8),
		NewBackend("b", "http://b", 8),
	}
	bal := NewBalancer(PolicyTotalRequest, MechanismModified, backends, Config{})

	var releases []Release
	for i := 0; i < 5; i++ {
		be, release, err := bal.Acquire(100)
		if err != nil {
			t.Fatal(err)
		}
		_ = be
		releases = append(releases, release)
	}
	releases[0].Done(200) // one completion: 4 in flight, 5 dispatched

	bal.SetPolicy(PolicyCurrentLoad)
	if got, want := bal.CurrentPolicy(), PolicyCurrentLoad; got != want {
		t.Fatalf("policy = %v, want %v", got, want)
	}
	for _, be := range backends {
		if got, want := be.LBValue(), float64(be.Dispatched()-be.Completed()); got != want {
			t.Fatalf("%s: lb_value %v != in-flight %v after swap", be.Name(), got, want)
		}
	}
	for _, r := range releases[1:] {
		r.Done(200)
	}
	for _, be := range backends {
		if be.LBValue() != 0 {
			t.Fatalf("%s: lb_value %v after drain, want 0", be.Name(), be.LBValue())
		}
	}

	bal.SetMechanism(MechanismOriginal)
	if got := bal.CurrentMechanism(); got != MechanismOriginal {
		t.Fatalf("mechanism = %v after swap", got)
	}

	// round_robin rotates strictly through the backends.
	bal.SetPolicy(PolicyRoundRobin)
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		be, release, err := bal.Acquire(0)
		if err != nil {
			t.Fatal(err)
		}
		seen[be.Name()]++
		release.Done(0)
	}
	if seen["a"] != 3 || seen["b"] != 3 {
		t.Fatalf("round_robin distribution %v, want 3/3", seen)
	}
}

// TestBalancerQuarantineAndProbe covers drain and probe re-admission on
// the wall-clock balancer.
func TestBalancerQuarantineAndProbe(t *testing.T) {
	backends := []*Backend{
		NewBackend("a", "http://a", 8),
		NewBackend("b", "http://b", 8),
	}
	bal := NewBalancer(PolicyTotalRequest, MechanismModified, backends, Config{})

	var mu sync.Mutex
	var probes []bool
	bal.SetProbeHook(func(be *Backend, rt time.Duration, ok bool) {
		mu.Lock()
		probes = append(probes, ok)
		mu.Unlock()
	})

	if !bal.SetQuarantine("a", true) {
		t.Fatal("backend a not found")
	}
	for i := 0; i < 6; i++ {
		be, release, err := bal.Acquire(0)
		if err != nil {
			t.Fatal(err)
		}
		if be.Name() == "a" {
			t.Fatal("quarantined backend dispatched")
		}
		release.Done(0)
	}

	if !bal.ArmProbe("a") {
		t.Fatal("probe not armed")
	}
	be, release, err := bal.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != "a" {
		t.Fatalf("probe dispatched to %s, want a", be.Name())
	}
	release.Done(0)
	mu.Lock()
	defer mu.Unlock()
	if len(probes) != 1 || !probes[0] {
		t.Fatalf("probes = %v, want one successful probe", probes)
	}
}

// TestHTTPAdaptiveQuarantineAndAdmin drives the full wall-clock loop: a
// stalled app server is detected from the balancer counters,
// quarantined, probed back in after the stall, and the whole story is
// served over /admin/adapt and /admin/adapt/decisions.
func TestHTTPAdaptiveQuarantineAndAdmin(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock adaptive loop")
	}
	db, err := StartDBServer(200 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = db.Close() }()
	var apps []*AppServer
	var backends []*Backend
	for _, name := range []string{"app1", "app2"} {
		app, err := StartAppServer(AppServerConfig{
			Name:        name,
			Workers:     32,
			ServiceTime: 2 * time.Millisecond,
			DBURL:       db.URL(),
			DBQueries:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = app.Close() }()
		apps = append(apps, app)
		backends = append(backends, NewBackend(name, app.URL(), 4))
	}
	proxy, err := StartProxy(ProxyConfig{
		Workers:   64,
		Policy:    PolicyTotalRequest,
		Mechanism: MechanismModified,
		LB:        Config{SweepPause: 10 * time.Millisecond},
		Adapt: &adapt.Config{
			Tick:          20 * time.Millisecond,
			ProbeInterval: 60 * time.Millisecond,
			ProbeRTBudget: time.Second,
			MaxQuarantine: 3 * time.Second,
		},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	// Background load: enough concurrency to fill app1's 4-endpoint
	// pool when it stalls.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(proxy.URL() + "/story")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	time.Sleep(200 * time.Millisecond)
	apps[0].Stall(500 * time.Millisecond)

	waitFor := func(what string, deadline time.Duration, cond func() bool) {
		t.Helper()
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if cond() {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s; decisions: %v", what, proxy.Adapt().Log().Decisions())
	}
	ctrl := proxy.Adapt()
	waitFor("quarantine", 3*time.Second, func() bool {
		return ctrl.Log().Count(adapt.ActionQuarantine) > 0
	})
	waitFor("re-admission", 5*time.Second, func() bool {
		return ctrl.Log().Count(adapt.ActionReadmit) > 0
	})

	// Admin surfaces: state JSON and the decision log as JSONL,
	// round-tripping through adapt.ReadJSONL.
	resp, err := client.Get(proxy.URL() + "/admin/adapt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/adapt status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "\"policy\"") {
		t.Fatalf("/admin/adapt payload missing policy: %s", body)
	}

	resp, err = client.Get(proxy.URL() + "/admin/adapt/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/adapt/decisions status %d", resp.StatusCode)
	}
	decisions, err := adapt.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sawQuarantine, sawReadmit bool
	for _, d := range decisions {
		switch d.Action {
		case adapt.ActionQuarantine:
			sawQuarantine = true
		case adapt.ActionReadmit:
			sawReadmit = true
		}
	}
	if !sawQuarantine || !sawReadmit {
		t.Fatalf("exported decisions missing quarantine/readmit: %v", decisions)
	}
}

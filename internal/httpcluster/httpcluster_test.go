package httpcluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"millibalance/internal/obs"
)

func TestParsePolicyAndMechanism(t *testing.T) {
	for _, name := range []string{"total_request", "total_traffic", "current_load"} {
		p, err := ParsePolicy(name)
		if err != nil || p.String() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	m, err := ParseMechanism("original")
	if err != nil || m != MechanismOriginal {
		t.Fatalf("ParseMechanism(original) = %v, %v", m, err)
	}
	if _, err := ParseMechanism("nope"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestBackendEndpointPool(t *testing.T) {
	be := NewBackend("a", "http://127.0.0.1:1", 2)
	bal := NewBalancer(PolicyCurrentLoad, MechanismModified, []*Backend{be}, Config{Sweeps: 1})
	_, rel1, err := bal.Acquire(100)
	if err != nil {
		t.Fatal(err)
	}
	_, rel2, err := bal.Acquire(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bal.Acquire(100); err == nil {
		t.Fatal("third acquire succeeded with pool of 2")
	}
	rel1.Done(10)
	rel2.Done(10)
	if _, rel, err := bal.Acquire(100); err != nil {
		t.Fatalf("acquire after release: %v", err)
	} else {
		rel.Done(0)
	}
}

func TestBalancerPolicyBookkeeping(t *testing.T) {
	a := NewBackend("a", "u", 10)
	b := NewBackend("b", "u", 10)
	bal := NewBalancer(PolicyCurrentLoad, MechanismModified, []*Backend{a, b}, Config{})
	be1, rel1, _ := bal.Acquire(0)
	be2, rel2, _ := bal.Acquire(0)
	if be1 == be2 {
		t.Fatalf("current_load sent both requests to %s", be1.Name())
	}
	if a.LBValue() != 1 || b.LBValue() != 1 {
		t.Fatalf("lb values %v/%v", a.LBValue(), b.LBValue())
	}
	rel1.Done(0)
	rel2.Done(0)
	if a.LBValue() != 0 || b.LBValue() != 0 {
		t.Fatalf("lb values after completion %v/%v", a.LBValue(), b.LBValue())
	}
}

func TestBalancerTotalTrafficBytes(t *testing.T) {
	a := NewBackend("a", "u", 10)
	bal := NewBalancer(PolicyTotalTraffic, MechanismModified, []*Backend{a}, Config{})
	_, rel, _ := bal.Acquire(300)
	if a.LBValue() != 0 {
		t.Fatalf("traffic lb before completion = %v", a.LBValue())
	}
	rel.Done(700)
	if a.LBValue() != 1000 {
		t.Fatalf("traffic lb = %v, want 1000", a.LBValue())
	}
}

func TestOriginalMechanismBlocksForWindow(t *testing.T) {
	a := NewBackend("a", "u", 1)
	bal := NewBalancer(PolicyTotalRequest, MechanismOriginal, []*Backend{a},
		Config{AcquireSleep: 20 * time.Millisecond, AcquireTimeout: 60 * time.Millisecond, Sweeps: 1})
	_, _, err := bal.Acquire(0) // hold the only endpoint
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = bal.Acquire(0)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("acquire succeeded with exhausted pool")
	}
	if elapsed < 50*time.Millisecond {
		t.Fatalf("original mechanism returned after %v, want ≥~60ms of polling", elapsed)
	}
	if a.State() != BackendBusy {
		t.Fatalf("state = %v after failure, want busy", a.State())
	}
}

func TestModifiedMechanismFailsFast(t *testing.T) {
	a := NewBackend("a", "u", 1)
	b := NewBackend("b", "u", 10)
	bal := NewBalancer(PolicyTotalRequest, MechanismModified, []*Backend{a, b}, Config{})
	_, _, err := bal.Acquire(0) // a (tie-break) holds its endpoint
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	be, rel, err := bal.Acquire(0) // b
	if err != nil {
		t.Fatal(err)
	}
	defer rel.Done(0)
	// Third: a has lb 1 = b lb 1, tie → a → instant fail → b.
	be3, rel3, err := bal.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel3.Done(0)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatalf("modified mechanism took %v", time.Since(start))
	}
	if be.Name() != "b" || be3.Name() != "b" {
		t.Fatalf("routed to %s/%s, want b/b", be.Name(), be3.Name())
	}
}

func TestBusyRecovery(t *testing.T) {
	a := NewBackend("a", "u", 1)
	bal := NewBalancer(PolicyTotalRequest, MechanismModified, []*Backend{a},
		Config{BusyRecovery: 30 * time.Millisecond, Sweeps: 1})
	_, _, _ = bal.Acquire(0)    // hold
	_, _, err := bal.Acquire(0) // fail → busy
	if err == nil || a.State() != BackendBusy {
		t.Fatalf("err=%v state=%v", err, a.State())
	}
	time.Sleep(40 * time.Millisecond)
	if a.State() != BackendAvailable {
		t.Fatalf("state = %v after recovery window", a.State())
	}
}

func TestParseBackendList(t *testing.T) {
	bes, err := ParseBackendList("a=http://x, b=http://y", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bes) != 2 || bes[0].Name() != "a" || bes[1].URL() != "http://y" {
		t.Fatalf("parsed %+v", bes)
	}
	for _, bad := range []string{"", "nourl", "=x", "a="} {
		if _, err := ParseBackendList(bad, 5); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// startTier boots a db, n app servers and a proxy; the caller must Close
// everything via the returned shutdown function.
func startTier(t *testing.T, n int, policy Policy, mech Mechanism, endpoints int) (*Proxy, []*AppServer, func()) {
	t.Helper()
	db, err := StartDBServer(200 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var apps []*AppServer
	var backends []*Backend
	for i := 0; i < n; i++ {
		app, err := StartAppServer(AppServerConfig{
			Name:        "app" + string(rune('1'+i)),
			Workers:     64,
			ServiceTime: 2 * time.Millisecond,
			DBURL:       db.URL(),
			DBQueries:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
		backends = append(backends, NewBackend(app.Name(), app.URL(), endpoints))
	}
	proxy, err := StartProxy(ProxyConfig{
		Workers:   128,
		Policy:    policy,
		Mechanism: mech,
		LB:        Config{SweepPause: 20 * time.Millisecond},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	return proxy, apps, func() {
		_ = proxy.Close()
		for _, a := range apps {
			_ = a.Close()
		}
		_ = db.Close()
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	// total_request round-robins even under sequential load;
	// current_load would legitimately keep picking the first idle
	// backend when nothing is in flight.
	proxy, apps, shutdown := startTier(t, 2, PolicyTotalRequest, MechanismModified, 16)
	defer shutdown()

	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 40; i++ {
		resp, err := client.Get(proxy.URL() + "/story")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatal("empty body")
		}
	}
	if proxy.Served() != 40 {
		t.Fatalf("proxy served %d", proxy.Served())
	}
	a, b := apps[0].Served(), apps[1].Served()
	if a == 0 || b == 0 {
		t.Fatalf("unbalanced: %d/%d", a, b)
	}
}

func TestHTTPConcurrentLoadBalances(t *testing.T) {
	proxy, apps, shutdown := startTier(t, 2, PolicyTotalRequest, MechanismModified, 32)
	defer shutdown()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for j := 0; j < 10; j++ {
				doRequest(context.Background(), client, proxy.URL()+"/x")
			}
		}()
	}
	wg.Wait()
	a, b := apps[0].Served(), apps[1].Served()
	total := a + b
	if total != 160 {
		t.Fatalf("served %d, want 160", total)
	}
	diff := int64(a) - int64(b)
	if diff < 0 {
		diff = -diff
	}
	if float64(diff)/float64(total) > 0.2 {
		t.Fatalf("distribution skew under concurrency: %d vs %d", a, b)
	}
}

// TestHTTPStallInstability demonstrates the paper's phenomenon over real
// sockets: with the original mechanism and total_request, a stalled
// backend captures the dispatch flow and the tail latency explodes; with
// current_load the stall barely registers.
func TestHTTPStallInstability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock run")
	}
	run := func(policy Policy, mech Mechanism) (*LoadStats, *Proxy, func(d time.Duration), func()) {
		proxy, apps, shutdown := startTier(t, 2, policy, mech, 4)
		return nil, proxy, apps[0].Stall, shutdown
	}

	measure := func(policy Policy, mech Mechanism) *LoadStats {
		_, proxy, stall, shutdown := run(policy, mech)
		defer shutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 2500*time.Millisecond)
		defer cancel()
		// One 400 ms stall mid-run.
		timer := time.AfterFunc(800*time.Millisecond, func() { stall(400 * time.Millisecond) })
		defer timer.Stop()
		return RunLoad(ctx, proxy.URL(), LoadGenConfig{Clients: 24, ThinkTime: 10 * time.Millisecond}, 300*time.Millisecond)
	}

	original := measure(PolicyTotalRequest, MechanismOriginal)
	remedy := measure(PolicyCurrentLoad, MechanismModified)

	if original.Total() < 100 || remedy.Total() < 100 {
		t.Fatalf("too few requests: %d / %d", original.Total(), remedy.Total())
	}
	origSlow := float64(original.CountOver(300*time.Millisecond)) / float64(original.Total())
	remedySlow := float64(remedy.CountOver(300*time.Millisecond)) / float64(remedy.Total())
	if origSlow == 0 {
		t.Fatalf("original run shows no slow requests (max=%v) — stall had no effect", original.Max())
	}
	if remedySlow > origSlow/2 {
		t.Fatalf("remedy slow share %.3f not clearly below original %.3f", remedySlow, origSlow)
	}
	if remedy.Quantile(0.9) > original.Quantile(0.9) {
		t.Fatalf("remedy p90 %v worse than original %v", remedy.Quantile(0.9), original.Quantile(0.9))
	}
}

func TestAppServerStallFreezesProgress(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "a", Workers: 8, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	app.Stall(300 * time.Millisecond)
	time.Sleep(10 * time.Millisecond) // let the stall goroutine take the lock
	client := &http.Client{Timeout: 5 * time.Second}
	start := time.Now()
	resp, err := client.Get(app.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("request finished in %v during a 300ms stall", elapsed)
	}
	if app.Served() != 1 {
		t.Fatalf("served = %d", app.Served())
	}
}

func TestDBServerQueryCount(t *testing.T) {
	db, err := StartDBServer(100 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = db.Close() }()
	client := &http.Client{Timeout: time.Second}
	for i := 0; i < 5; i++ {
		resp, err := client.Get(db.URL() + "/query")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	if db.Queries() != 5 {
		t.Fatalf("queries = %d", db.Queries())
	}
}

func TestProxyRejectsWhenAllBackendsExhausted(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "a", Workers: 4, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	app.Stall(2 * time.Second)
	time.Sleep(10 * time.Millisecond)

	backends := []*Backend{NewBackend("a", app.URL(), 1)}
	proxy, err := StartProxy(ProxyConfig{
		Workers: 8, Policy: PolicyTotalRequest, Mechanism: MechanismModified,
		LB: Config{Sweeps: 1},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	client := &http.Client{Timeout: 5 * time.Second}
	// First request occupies the single endpoint (stuck in the stall);
	// the second must be rejected with 503.
	go func() { _, _ = client.Get(proxy.URL() + "/x") }()
	time.Sleep(50 * time.Millisecond)
	resp, err := client.Get(proxy.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestAdminStallEndpoint(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "a", Workers: 8, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Post(app.URL()+"/admin/stall?d=200ms", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stall status %d", resp.StatusCode)
	}
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	resp, err = client.Get(app.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("request served in %v during admin-injected stall", elapsed)
	}
}

func TestAdminStallValidation(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "a", Workers: 8, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	client := &http.Client{Timeout: time.Second}

	resp, _ := client.Get(app.URL() + "/admin/stall?d=100ms") // GET not allowed
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	for _, q := range []string{"", "?d=nonsense", "?d=-5s", "?d=2h"} {
		resp, _ := client.Post(app.URL()+"/admin/stall"+q, "", nil)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%q status %d", q, resp.StatusCode)
		}
	}
}

func TestAdminStatsEndpoints(t *testing.T) {
	proxy, apps, shutdown := startTier(t, 2, PolicyCurrentLoad, MechanismModified, 8)
	defer shutdown()
	client := &http.Client{Timeout: 5 * time.Second}

	// Generate a little traffic first.
	for i := 0; i < 5; i++ {
		doRequest(context.Background(), client, proxy.URL()+"/x")
	}

	var ps ProxyStats
	resp, err := client.Get(proxy.URL() + "/admin/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&ps)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Policy != "current_load" || ps.Served != 5 || len(ps.Backends) != 2 {
		t.Fatalf("proxy stats = %+v", ps)
	}
	for _, be := range ps.Backends {
		if be.State != "available" {
			t.Fatalf("backend %s state %s", be.Name, be.State)
		}
	}

	var as AppStats
	resp, err = client.Get(apps[0].URL() + "/admin/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&as)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if as.Name != "app1" || as.Workers != 64 {
		t.Fatalf("app stats = %+v", as)
	}
}

func TestLoadStatsTimeline(t *testing.T) {
	app, err := StartAppServer(AppServerConfig{Name: "a", Workers: 16, ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = app.Close() }()
	proxy, err := StartProxy(ProxyConfig{
		Workers: 16, Policy: PolicyCurrentLoad, Mechanism: MechanismModified,
	}, []*Backend{NewBackend("a", app.URL(), 8)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proxy.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	st := RunLoad(ctx, proxy.URL(), LoadGenConfig{Clients: 4, ThinkTime: 5 * time.Millisecond})
	tl := st.Timeline()
	if tl.Len() < 3 {
		t.Fatalf("timeline has %d windows for a 600ms run", tl.Len())
	}
	var events uint64
	for i := 0; i < tl.Len(); i++ {
		events += tl.At(i).Count
	}
	if events != st.Total() {
		t.Fatalf("timeline events %d != total %d", events, st.Total())
	}
}

func TestHTTPStickySessions(t *testing.T) {
	a := NewBackend("a", "u", 10)
	b := NewBackend("b", "u", 10)
	bal := NewBalancer(PolicyTotalRequest, MechanismModified, []*Backend{a, b},
		Config{StickySessions: true, Sweeps: 1})
	// First request of session s1 binds; later requests stay put even
	// when the other backend has a lower lb_value.
	be, rel, err := bal.AcquireSession("s1", 0)
	if err != nil {
		t.Fatal(err)
	}
	first := be.Name()
	rel.Done(0)
	for i := 0; i < 5; i++ {
		be, rel, err := bal.AcquireSession("s1", 0)
		if err != nil {
			t.Fatal(err)
		}
		if be.Name() != first {
			t.Fatalf("session moved from %s to %s", first, be.Name())
		}
		rel.Done(0)
	}
	if bal.Sessions() != 1 {
		t.Fatalf("Sessions = %d", bal.Sessions())
	}
	// Empty session keys never bind.
	_, rel2, err := bal.AcquireSession("", 0)
	if err != nil {
		t.Fatal(err)
	}
	rel2.Done(0)
	if bal.Sessions() != 1 {
		t.Fatalf("empty key bound: %d", bal.Sessions())
	}
}

func TestHTTPStickyFallbackRebinds(t *testing.T) {
	a := NewBackend("a", "u", 1)
	b := NewBackend("b", "u", 10)
	bal := NewBalancer(PolicyTotalRequest, MechanismModified, []*Backend{a, b},
		Config{StickySessions: true, Sweeps: 1})
	be1, _, err := bal.AcquireSession("s1", 0) // binds a (tie-break), holds its endpoint
	if err != nil || be1.Name() != "a" {
		t.Fatalf("first acquire: %v %v", be1, err)
	}
	be2, rel2, err := bal.AcquireSession("s1", 0) // a exhausted → fallback + rebind
	if err != nil || be2.Name() != "b" {
		t.Fatalf("fallback acquire: %v %v", be2, err)
	}
	rel2.Done(0)
	be3, rel3, err := bal.AcquireSession("s1", 0)
	if err != nil || be3.Name() != "b" {
		t.Fatalf("rebind not applied: %v %v", be3, err)
	}
	rel3.Done(0)
}

func TestHTTPWeightedDistribution(t *testing.T) {
	heavy := NewBackend("heavy", "u", 100)
	light := NewBackend("light", "u", 100)
	heavy.SetWeight(3)
	bal := NewBalancer(PolicyTotalRequest, MechanismModified, []*Backend{heavy, light}, Config{})
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		be, rel, err := bal.Acquire(0)
		if err != nil {
			t.Fatal(err)
		}
		counts[be.Name()]++
		rel.Done(0)
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("heavy/light = %v (ratio %.2f), want ~3", counts, ratio)
	}
	if heavy.Weight() != 3 || light.Weight() != 1 {
		t.Fatalf("weights %v/%v", heavy.Weight(), light.Weight())
	}
}

// TestAdminTraceAndEventsEndpoints exercises the wall-clock
// observability surface: proxied requests produce lifecycle spans,
// dispatches produce decision events with the full candidate table, an
// exhausted endpoint pool drives the 3-state machine and a reject, and
// both logs stream as JSON Lines from the admin endpoints.
func TestAdminTraceAndEventsEndpoints(t *testing.T) {
	var apps []*AppServer
	var backends []*Backend
	for i := 0; i < 2; i++ {
		app, err := StartAppServer(AppServerConfig{
			Name:        "app" + string(rune('1'+i)),
			Workers:     8,
			ServiceTime: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
		backends = append(backends, NewBackend(app.Name(), app.URL(), 2))
	}
	proxy, err := StartProxy(ProxyConfig{
		Workers:       32,
		Policy:        PolicyTotalRequest,
		Mechanism:     MechanismModified,
		LB:            Config{SweepPause: 5 * time.Millisecond},
		SpanCapacity:  1 << 12,
		EventCapacity: 1 << 13,
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = proxy.Close()
		for _, a := range apps {
			_ = a.Close()
		}
	}()
	if proxy.Tracer() == nil || proxy.Events() == nil {
		t.Fatal("observability not enabled despite capacities")
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Get(proxy.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return resp, body
	}

	const okRequests = 20
	for i := 0; i < okRequests; i++ {
		if resp, body := get("/story"); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}

	// Exhaust every endpoint pool: the modified mechanism fails fast on
	// each sweep, marking both backends Busy and rejecting the dispatch.
	for _, be := range backends {
		if !be.acquireToken() || !be.acquireToken() {
			t.Fatal("endpoint pool not fully idle before exhaustion")
		}
	}
	if resp, _ := get("/story"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with exhausted pools, want 503", resp.StatusCode)
	}
	for _, be := range backends {
		be.releaseToken()
		be.releaseToken()
	}
	// Dispatching to a Busy backend re-admits it: busy → available.
	if resp, body := get("/story"); resp.StatusCode != http.StatusOK {
		t.Fatalf("status after pool restore %d: %s", resp.StatusCode, body)
	}

	// --- /admin/trace ---
	resp, body := get("/admin/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status %d", resp.StatusCode)
	}
	type spanLine struct {
		ID     uint64        `json:"id"`
		Start  time.Duration `json:"start"`
		End    time.Duration `json:"end"`
		OK     bool          `json:"ok"`
		Stages obs.Breakdown `json:"stages"`
	}
	var spans []spanLine
	failedSpans := 0
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var sl spanLine
		if err := json.Unmarshal([]byte(line), &sl); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if sl.End <= sl.Start {
			t.Fatalf("span %d: end %v <= start %v", sl.ID, sl.End, sl.Start)
		}
		if !sl.OK {
			failedSpans++
			if sl.Stages.GetEndpoint <= 0 {
				t.Fatalf("rejected span %d spent no time in get_endpoint: %+v", sl.ID, sl.Stages)
			}
		} else if sl.Stages.AppThread <= 0 || sl.Stages.WebThread <= 0 {
			t.Fatalf("span %d missing app/web stage time: %+v", sl.ID, sl.Stages)
		}
		spans = append(spans, sl)
	}
	if len(spans) != okRequests+2 {
		t.Fatalf("%d spans, want %d", len(spans), okRequests+2)
	}
	if failedSpans != 1 {
		t.Fatalf("%d failed spans, want 1", failedSpans)
	}

	// --- /admin/events ---
	resp, body = get("/admin/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events endpoint status %d", resp.StatusCode)
	}
	var decisions, rejects int
	transitions := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		switch ev.Kind {
		case obs.KindDecision:
			decisions++
			if ev.Chosen == "" || ev.Source != "proxy" {
				t.Fatalf("decision missing identity: %+v", ev)
			}
			if len(ev.Candidates) != 2 {
				t.Fatalf("decision has %d candidates: %+v", len(ev.Candidates), ev)
			}
			for _, cv := range ev.Candidates {
				if cv.Name == "" || cv.State == "" {
					t.Fatalf("incomplete candidate view: %+v", cv)
				}
			}
		case obs.KindState:
			transitions[ev.From+"->"+ev.To]++
			if ev.Backend == "" {
				t.Fatalf("state event without backend: %+v", ev)
			}
		case obs.KindReject:
			rejects++
		}
	}
	if decisions < okRequests+1 {
		t.Fatalf("%d decision events, want at least %d", decisions, okRequests+1)
	}
	if rejects != 1 {
		t.Fatalf("%d reject events, want 1", rejects)
	}
	if transitions["available->busy"] == 0 || transitions["busy->available"] == 0 {
		t.Fatalf("3-state transitions not recorded: %v", transitions)
	}

	// A proxy without capacities keeps the endpoints dark.
	plain, err := StartProxy(ProxyConfig{Workers: 4, Policy: PolicyTotalRequest, Mechanism: MechanismModified}, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = plain.Close() }()
	for _, path := range []string{"/admin/trace", "/admin/events"} {
		resp, err := client.Get(plain.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on plain proxy: status %d, want 404", path, resp.StatusCode)
		}
	}
}

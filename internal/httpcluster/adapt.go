package httpcluster

import (
	"sync"
	"time"

	"millibalance/internal/adapt"
)

// Adaptive control plane wiring for the wall-clock substrate: one
// adapt.Controller per proxy, driven by a goroutine ticker instead of
// virtual-time events. The simulator feeds the controller from its
// online millibottleneck detectors; here the runner synthesizes the
// same onset/recovery signals from the balancer's own counters — a
// backend whose endpoint pool is exhausted with requests in flight and
// zero completions over a tick is stalled in exactly the sense the
// paper's detectors flag. Outcomes stream in from the proxy's request
// handler and probe results from the balancer's probe hook, so the
// remediation ladder (quarantine → mechanism swap → policy swap →
// round_robin fallback) is identical across substrates.

// proxyActuator adapts the proxy's balancer (and, when armed, its
// admission gate) to adapt.Actuator.
type proxyActuator struct {
	p *Proxy
}

// Backends implements adapt.Actuator.
func (a proxyActuator) Backends() []string {
	out := make([]string, 0, len(a.p.bal.Backends()))
	for _, be := range a.p.bal.Backends() {
		out = append(out, be.Name())
	}
	return out
}

// SetPolicy implements adapt.Actuator.
func (a proxyActuator) SetPolicy(name string) {
	if pol, err := ParsePolicy(name); err == nil {
		a.p.bal.SetPolicy(pol)
	}
}

// SetMechanism implements adapt.Actuator.
func (a proxyActuator) SetMechanism(name string) {
	if m, err := ParseMechanism(name); err == nil {
		a.p.bal.SetMechanism(m)
	}
}

// SetQuarantine implements adapt.Actuator.
func (a proxyActuator) SetQuarantine(backend string, on bool) {
	a.p.bal.SetQuarantine(backend, on)
}

// ArmProbe implements adapt.Actuator.
func (a proxyActuator) ArmProbe(backend string) {
	a.p.bal.ArmProbe(backend)
}

// TightenLimit implements adapt.LimitActuator over the proxy's
// admission gate; false (no decision) when admission is not armed.
func (a proxyActuator) TightenLimit(on bool) bool {
	if a.p.adm == nil {
		return false
	}
	a.p.adm.Tighten(on)
	return true
}

// adaptRunner owns the controller goroutine.
type adaptRunner struct {
	p    *Proxy
	ctrl *adapt.Controller
	stop chan struct{}
	wg   sync.WaitGroup

	watch       *adapt.StallWatch
	lastRejects uint64
}

// armAdapt builds the controller and starts the runner. Called from
// StartProxy before the listener serves traffic.
func (p *Proxy) armAdapt(acfg adapt.Config) {
	if acfg.BasePolicy == "" {
		acfg.BasePolicy = p.cfg.Policy.String()
	}
	if acfg.BaseMechanism == "" {
		acfg.BaseMechanism = p.cfg.Mechanism.String()
	}
	ctrl := adapt.NewController(acfg, proxyActuator{p})
	p.adaptC = ctrl
	p.bal.SetProbeHook(func(be *Backend, rt time.Duration, ok bool) {
		ctrl.OnProbe(p.now(), be.Name(), rt, ok)
	})
	r := &adaptRunner{
		p:     p,
		ctrl:  ctrl,
		stop:  make(chan struct{}),
		watch: adapt.NewStallWatch(),
	}
	p.adaptR = r
	r.wg.Add(1)
	go r.run()
}

// Adapt exposes the proxy's adaptive controller (nil unless
// ProxyConfig.Adapt was set).
func (p *Proxy) Adapt() *adapt.Controller { return p.adaptC }

func (r *adaptRunner) run() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.ctrl.TickInterval())
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.step()
		}
	}
}

// step synthesizes detector signals from the balancer counters, then
// advances the controller clock.
func (r *adaptRunner) step() {
	now := r.p.now()

	if rejects := r.p.bal.Rejects(); rejects > r.lastRejects {
		r.ctrl.OnRejects(int(rejects - r.lastRejects))
		r.lastRejects = rejects
	}

	for _, be := range r.p.bal.Backends() {
		// Lock-free gauge reads off the backend's atomic hot fields —
		// the sampler never perturbs the dispatch path it is watching.
		s := adapt.BackendSample{
			Completed:     be.Completed(),
			InFlight:      be.InFlight(),
			FreeEndpoints: be.FreeEndpoints(),
		}
		if ev, fire := r.watch.Observe(now, be.Name(), s); fire {
			r.ctrl.OnEvent(ev)
		}
	}

	r.ctrl.Tick(now)
}

// close stops the runner goroutine.
func (r *adaptRunner) close() {
	close(r.stop)
	r.wg.Wait()
}

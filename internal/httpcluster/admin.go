package httpcluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"millibalance/internal/probe"
)

// Admin endpoints: the app server exposes POST /admin/stall?d=300ms for
// external millibottleneck injection (so demos and chaos tooling can
// drive it without holding a Go reference), plus GET /admin/stats; the
// proxy exposes GET /admin/stats with balancer state. Registered by
// StartAppServer and StartProxy.

// AppStats is the app server's /admin/stats payload.
type AppStats struct {
	Name     string `json:"name"`
	Served   uint64 `json:"served"`
	InFlight int    `json:"in_flight"`
	Workers  int    `json:"workers"`
}

// adminMux registers the app server's admin handlers.
func (a *AppServer) adminMux(mux *http.ServeMux) {
	mux.HandleFunc("/admin/stall", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		d, err := time.ParseDuration(r.URL.Query().Get("d"))
		if err != nil || d <= 0 || d > time.Minute {
			http.Error(w, "need ?d=<duration> in (0, 1m]", http.StatusBadRequest)
			return
		}
		a.Stall(d)
		fmt.Fprintf(w, "stalling %s for %v\n", a.cfg.Name, d)
	})
	mux.HandleFunc("/admin/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(AppStats{
			Name:     a.cfg.Name,
			Served:   a.served.Load(),
			InFlight: a.InFlight(),
			Workers:  cap(a.workers),
		})
	})
	mux.HandleFunc("/admin/probe", func(w http.ResponseWriter, _ *http.Request) {
		// One stall-gate pass before answering: a stall-frozen server
		// freezes its own probe replies with it, so the prober's pool
		// ages past the TTL — the exclusion signal prequal relies on.
		// Deliberately no worker slot: the probe measures load, it must
		// not queue behind it.
		a.stallGate()
		ndjsonHeaders(w)
		_ = json.NewEncoder(w).Encode(probe.Report{
			Backend:       a.cfg.Name,
			InFlight:      a.inflight.Load(),
			EWMALatencyMs: float64(a.EWMALatency()) / float64(time.Millisecond),
		})
	})
}

// BackendStats is one backend's entry in the proxy's /admin/stats
// payload.
type BackendStats struct {
	Name       string  `json:"name"`
	URL        string  `json:"url"`
	LBValue    float64 `json:"lb_value"`
	State      string  `json:"state"`
	Dispatched uint64  `json:"dispatched"`
	Completed  uint64  `json:"completed"`
}

// ProxyStats is the proxy's /admin/stats payload.
type ProxyStats struct {
	Policy    string         `json:"policy"`
	Mechanism string         `json:"mechanism"`
	Served    uint64         `json:"served"`
	Errors    uint64         `json:"errors"`
	Rejects   uint64         `json:"rejects"`
	Shed      uint64         `json:"shed"`
	Retries   uint64         `json:"retries"`
	Backends  []BackendStats `json:"backends"`
}

// stateName maps a BackendState to its JSON name.
func stateName(s BackendState) string {
	switch s {
	case BackendAvailable:
		return "available"
	case BackendBusy:
		return "busy"
	case BackendError:
		return "error"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Stats snapshots the proxy's balancer state.
func (p *Proxy) Stats() ProxyStats {
	out := ProxyStats{
		// Read from the balancer, not the construction config: the
		// adaptive control plane may have hot-swapped either.
		Policy:    p.bal.CurrentPolicy().String(),
		Mechanism: p.bal.CurrentMechanism().String(),
		Served:    p.served.Load(),
		Errors:    p.errors.Load(),
		Rejects:   p.bal.Rejects(),
		Shed:      p.shed.Load(),
		Retries:   p.retries.Load(),
	}
	for _, be := range p.bal.Backends() {
		out.Backends = append(out.Backends, BackendStats{
			Name:       be.Name(),
			URL:        be.URL(),
			LBValue:    be.LBValue(),
			State:      stateName(be.State()),
			Dispatched: be.Dispatched(),
			Completed:  be.Completed(),
		})
	}
	return out
}

// promContentType is the Prometheus text exposition format version the
// /metrics endpoint speaks.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// ndjsonHeaders marks a response as newline-delimited JSON. nosniff
// keeps browsers from content-sniffing the stream into something
// executable — these endpoints echo request-derived data (URLs, backend
// names), so they must never be interpreted as HTML.
func ndjsonHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
}

// adminHandler serves the proxy's admin surface; non-admin paths fall
// through to the forwarding handler. /admin/trace streams the recorded
// request-lifecycle spans, /admin/events the balancer decision / state
// / reject log and /admin/timeline the telemetry resource timeline,
// all as JSON Lines; /metrics serves the same timeline's latest points
// in Prometheus text format. Each answers 404 when the corresponding
// capacity or config was not set.
func (p *Proxy) adminHandler(forward http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/admin/stats":
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(p.Stats())
			return
		case "/admin/trace":
			if p.tracer == nil {
				http.Error(w, "span tracing disabled (ProxyConfig.SpanCapacity)", http.StatusNotFound)
				return
			}
			ndjsonHeaders(w)
			_ = p.tracer.WriteJSONL(w)
			return
		case "/admin/events":
			if p.events == nil {
				http.Error(w, "event log disabled (ProxyConfig.EventCapacity)", http.StatusNotFound)
				return
			}
			ndjsonHeaders(w)
			_ = p.events.WriteJSONL(w)
			return
		case "/admin/adapt":
			if p.adaptC == nil {
				http.Error(w, "adaptive control plane disabled (ProxyConfig.Adapt)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(p.adaptC.State())
			return
		case "/admin/adapt/decisions":
			if p.adaptC == nil {
				http.Error(w, "adaptive control plane disabled (ProxyConfig.Adapt)", http.StatusNotFound)
				return
			}
			ndjsonHeaders(w)
			_ = p.adaptC.Log().WriteJSONL(w)
			return
		case "/admin/admission":
			if p.adm == nil {
				http.Error(w, "admission control disabled (ProxyConfig.Admission)", http.StatusNotFound)
				return
			}
			ndjsonHeaders(w)
			enc := json.NewEncoder(w)
			_ = enc.Encode(p.adm.Stats())
			for _, a := range p.adm.Adjustments() {
				_ = enc.Encode(a)
			}
			return
		case "/admin/timeline":
			if p.sampler == nil {
				http.Error(w, "telemetry disabled (ProxyConfig.Telemetry)", http.StatusNotFound)
				return
			}
			ndjsonHeaders(w)
			_ = p.Timeline().WriteJSONL(w)
			return
		case "/metrics":
			if p.sampler == nil {
				http.Error(w, "telemetry disabled (ProxyConfig.Telemetry)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", promContentType)
			w.Header().Set("X-Content-Type-Options", "nosniff")
			_ = p.Timeline().WriteProm(w, "millibalance")
			return
		}
		forward(w, r)
	}
}

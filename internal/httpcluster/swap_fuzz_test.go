package httpcluster

import (
	"sync"
	"testing"
	"time"
)

// FuzzSnapshotSwapDispatch fuzzes the routing-snapshot swap path under
// real concurrency: a dispatcher goroutine acquires and releases while
// the fuzz input drives an arbitrary interleaved sequence of SetPolicy,
// SetMechanism, SetQuarantine, SetWeight and ArmProbe calls against the
// same balancer. The property is not parity (concurrent schedules are
// not deterministic) but conservation and sanity at quiesce: every
// successful acquire released exactly once, free tokens all home, no
// negative in-flight, finite lb_values. Run under -race in the
// fuzz-smoke CI job, this is the probabilistic complement to the
// deterministic interleaving explorer (internal/check, -tags
// checkyield).
func FuzzSnapshotSwapDispatch(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 254, 253})
	f.Add([]byte{10, 10, 10, 10})
	f.Fuzz(func(t *testing.T, swaps []byte) {
		if len(swaps) > 48 {
			swaps = swaps[:48]
		}
		names := []string{"a", "b", "c"}
		backends := make([]*Backend, len(names))
		for i, n := range names {
			backends[i] = NewBackend(n, "http://unused", 4)
		}
		cfg := Config{
			Sweeps:         1,
			AcquireSleep:   time.Microsecond,
			AcquireTimeout: 2 * time.Microsecond,
			BusyRecovery:   time.Nanosecond,
			ErrorRecovery:  time.Nanosecond,
			ErrorAfter:     time.Nanosecond,
		}
		bal := NewBalancer(PolicyCurrentLoad, MechanismModified, backends, cfg)

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() { // dispatcher
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, rel, err := bal.Acquire(int64(i % 256))
				if err != nil {
					continue
				}
				if i%7 == 0 {
					rel.Fail()
				} else {
					rel.Done(int64(i % 512))
				}
			}
		}()

		policies := []Policy{PolicyTotalRequest, PolicyTotalTraffic, PolicyCurrentLoad, PolicyRoundRobin}
		for _, b := range swaps {
			switch b % 5 {
			case 0:
				bal.SetPolicy(policies[int(b/5)%len(policies)])
			case 1:
				bal.SetMechanism(Mechanism(1 + int(b/5)%2))
			case 2:
				bal.SetQuarantine(names[int(b/5)%len(names)], b%2 == 0)
			case 3:
				backends[int(b/5)%len(backends)].SetWeight(float64(1 + b%4))
			case 4:
				bal.ArmProbe(names[int(b/5)%len(names)])
			}
		}
		close(stop)
		wg.Wait()
		for _, n := range names {
			bal.SetQuarantine(n, false)
		}

		for _, be := range backends {
			if inF := be.InFlight(); inF != 0 {
				t.Errorf("%s: %d in flight at quiesce", be.Name(), inF)
			}
			if free := be.FreeEndpoints(); free != 4 {
				t.Errorf("%s: %d/4 tokens at quiesce", be.Name(), free)
			}
			if lb := be.LBValue(); !isFinite(lb) || lb < 0 {
				t.Errorf("%s: lb_value %g at quiesce", be.Name(), lb)
			}
			if d, c := be.Dispatched(), be.Completed(); d != c {
				t.Errorf("%s: dispatched %d != completed %d at quiesce", be.Name(), d, c)
			}
		}
	})
}

package httpcluster

import (
	"sync"
)

// Sticky sessions and weights for the wall-clock balancer, mirroring
// internal/lb's mod_jk features. Sessions are identified by an opaque
// string (typically a cookie value); weights are mod_jk's lbfactor.

// SetWeight assigns the backend's lbfactor (values ≤ 0 mean 1): a
// weight-2 backend receives twice a weight-1 backend's traffic because
// its lb_value increments are halved.
func (b *Backend) SetWeight(w float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w <= 0 {
		w = 1
	}
	b.weight = w
}

// Weight returns the backend's lbfactor.
func (b *Backend) Weight() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.weightLocked()
}

func (b *Backend) weightLocked() float64 {
	if b.weight == 0 {
		return 1
	}
	return b.weight
}

// sessionTable maps session keys to their pinned backend.
type sessionTable struct {
	mu sync.Mutex
	m  map[string]*Backend
}

func (t *sessionTable) get(key string) *Backend {
	if key == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[key]
}

func (t *sessionTable) bind(key string, be *Backend) {
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[string]*Backend)
	}
	t.m[key] = be
}

func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Sessions reports the number of bound sessions.
func (b *Balancer) Sessions() int { return b.sessions.len() }

// AcquireSession is Acquire with mod_jk sticky-session semantics: when
// sticky sessions are enabled and the session key is non-empty, the
// request goes to the backend the session first landed on unless it is
// in Error or its endpoint acquisition fails — in which case the
// balancer falls back to normal selection and rebinds.
func (b *Balancer) AcquireSession(sessionKey string, requestBytes int64) (*Backend, Release, error) {
	if b.cfg.StickySessions && sessionKey != "" {
		if be := b.sessions.get(sessionKey); be != nil && be.State() != BackendError && !be.Quarantined() {
			if b.onAssign != nil {
				b.onAssign(be)
			}
			b.emitDecision(be)
			if b.acquireEndpoint(be) {
				b.noteDispatch(be)
				return be, Release{bal: b, be: be, requestBytes: requestBytes}, nil
			}
			b.noteFailure(be)
		}
	}
	be, release, err := b.Acquire(requestBytes)
	if err == nil && b.cfg.StickySessions {
		b.sessions.bind(sessionKey, be)
	}
	return be, release, err
}

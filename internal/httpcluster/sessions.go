package httpcluster

import (
	"math"
	"sync"
)

// Sticky sessions and weights for the wall-clock balancer, mirroring
// internal/lb's mod_jk features. Sessions are identified by an opaque
// string (typically a cookie value); weights are mod_jk's lbfactor.
// Both sit on the per-request path, so neither takes a global lock:
// weights are atomic floats and the session table is sharded by key
// hash — concurrent requests for different sessions proceed on
// different shard locks.

// SetWeight assigns the backend's lbfactor (values ≤ 0 or non-finite
// mean 1): a weight-2 backend receives twice a weight-1 backend's
// traffic because its lb_value increments are halved. NaN needs its
// own check — it compares false against 0, so it slipped through the
// `w <= 0` guard and poisoned every subsequent 1/weight lb_value
// update (internal/check testdata/weight-nan.script); ±Inf likewise
// passed and froze the increments at 1/Inf = 0.
func (b *Backend) SetWeight(w float64) {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		w = 1
	}
	b.weight.Store(w)
}

// Weight returns the backend's lbfactor (lock-free).
func (b *Backend) Weight() float64 { return b.weightVal() }

// sessionShards is the session-table shard count. A power of two so the
// hash folds with a mask; 16 shards keep the table effectively
// contention-free at any worker count the proxy runs.
const sessionShards = 16

// sessionTable maps session keys to their pinned backend, sharded by
// FNV-1a of the key. RWMutex per shard: the overwhelmingly common
// operation is a read of an existing binding.
type sessionTable struct {
	shards [sessionShards]sessionShard
}

type sessionShard struct {
	mu sync.RWMutex
	m  map[string]*Backend
}

// sessionHash is FNV-1a over the key — allocation-free, good spread on
// cookie-shaped strings.
func sessionHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (t *sessionTable) shard(key string) *sessionShard {
	return &t.shards[sessionHash(key)&(sessionShards-1)]
}

func (t *sessionTable) get(key string) *Backend {
	if key == "" {
		return nil
	}
	s := t.shard(key)
	s.mu.RLock()
	be := s.m[key]
	s.mu.RUnlock()
	return be
}

func (t *sessionTable) bind(key string, be *Backend) {
	if key == "" {
		return
	}
	s := t.shard(key)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]*Backend)
	}
	s.m[key] = be
	s.mu.Unlock()
}

func (t *sessionTable) len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Sessions reports the number of bound sessions.
func (b *Balancer) Sessions() int { return b.sessions.len() }

// AcquireSession is Acquire with mod_jk sticky-session semantics: when
// sticky sessions are enabled and the session key is non-empty, the
// request goes to the backend the session first landed on unless it is
// in Error or its endpoint acquisition fails — in which case the
// balancer falls back to normal selection and rebinds.
func (b *Balancer) AcquireSession(sessionKey string, requestBytes int64) (*Backend, Release, error) {
	if b.cfg.StickySessions && sessionKey != "" {
		if be := b.sessions.get(sessionKey); be != nil && be.State() != BackendError && !be.Quarantined() {
			snap := b.snap.Load()
			if b.onAssign != nil {
				b.onAssign(be)
			}
			b.emitDecision(snap, be)
			if b.acquireEndpoint(be) {
				b.noteDispatch(be, snap.policy)
				return be, Release{bal: b, be: be, requestBytes: requestBytes}, nil
			}
			b.noteFailure(be)
		}
	}
	be, release, err := b.Acquire(requestBytes)
	if err == nil && b.cfg.StickySessions {
		b.sessions.bind(sessionKey, be)
	}
	return be, release, err
}

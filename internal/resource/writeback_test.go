package resource

import (
	"testing"
	"time"

	"millibalance/internal/sim"
)

func TestDiskWriteDuration(t *testing.T) {
	d := Disk{WriteRate: 1 << 20} // 1 MiB/s
	if got := d.WriteDuration(1 << 20); got != time.Second {
		t.Fatalf("WriteDuration(1MiB) = %v, want 1s", got)
	}
	if got := d.WriteDuration(0); got != 0 {
		t.Fatalf("WriteDuration(0) = %v", got)
	}
	if got := d.WriteDuration(-5); got != 0 {
		t.Fatalf("WriteDuration(-5) = %v", got)
	}
	if got := (Disk{}).WriteDuration(100); got != 0 {
		t.Fatalf("zero-rate WriteDuration = %v", got)
	}
}

func newWriteback(cfg WritebackConfig) (*sim.Engine, *Writeback, *[]sim.Time) {
	eng := sim.NewEngine(1, 2)
	stalls := &[]sim.Time{}
	wb := NewWriteback(eng, cfg, func(d sim.Time) { *stalls = append(*stalls, d) })
	return eng, wb, stalls
}

func TestWritebackPeriodicFlushStalls(t *testing.T) {
	cfg := WritebackConfig{
		Interval: 5 * time.Second,
		Disk:     Disk{WriteRate: 10 << 20},
	}
	eng, wb, stalls := newWriteback(cfg)
	wb.Start()
	// Dirty 1 MiB before the first wake: flush takes 100ms.
	eng.Schedule(time.Second, func() { wb.AddDirty(1 << 20) })
	eng.Run(6 * time.Second)
	if len(*stalls) != 1 {
		t.Fatalf("stalls = %v, want one", *stalls)
	}
	if (*stalls)[0] != 100*time.Millisecond {
		t.Fatalf("stall duration = %v, want 100ms", (*stalls)[0])
	}
	if wb.Flushes() != 1 {
		t.Fatalf("Flushes = %d", wb.Flushes())
	}
}

func TestWritebackNoDirtyNoFlush(t *testing.T) {
	eng, wb, stalls := newWriteback(WritebackConfig{Interval: time.Second, Disk: Disk{WriteRate: 1 << 20}})
	wb.Start()
	eng.Run(10 * time.Second)
	if len(*stalls) != 0 || wb.Flushes() != 0 {
		t.Fatalf("flushed with nothing dirty: %v", *stalls)
	}
}

func TestWritebackThresholdTriggersEarly(t *testing.T) {
	cfg := WritebackConfig{
		Interval:       time.Hour,
		DirtyThreshold: 1 << 20,
		Disk:           Disk{WriteRate: 10 << 20},
	}
	eng, wb, stalls := newWriteback(cfg)
	wb.Start()
	eng.Schedule(time.Second, func() { wb.AddDirty(2 << 20) })
	eng.Run(2 * time.Second)
	if len(*stalls) != 1 {
		t.Fatalf("threshold did not trigger flush: %v", *stalls)
	}
}

func TestWritebackMaxStallCap(t *testing.T) {
	cfg := WritebackConfig{
		Interval: time.Second,
		Disk:     Disk{WriteRate: 1 << 20},
		MaxStall: 50 * time.Millisecond,
	}
	eng, wb, stalls := newWriteback(cfg)
	wb.Start()
	wb.AddDirty(100 << 20) // would be 100s uncapped
	eng.Run(2 * time.Second)
	if len(*stalls) == 0 || (*stalls)[0] != 50*time.Millisecond {
		t.Fatalf("stalls = %v, want capped 50ms", *stalls)
	}
}

func TestWritebackDirtyDuringFlushWaitsForNextWake(t *testing.T) {
	cfg := WritebackConfig{
		Interval: time.Second,
		Disk:     Disk{WriteRate: 1 << 20}, // 1 MiB -> 1s flush
	}
	eng, wb, stalls := newWriteback(cfg)
	wb.Start()
	wb.AddDirty(1 << 20)
	// Flush starts at 1s, runs until 2s; dirty more at 1.5s.
	eng.Schedule(1500*time.Millisecond, func() { wb.AddDirty(512 << 10) })
	eng.Run(3500 * time.Millisecond)
	if len(*stalls) != 2 {
		t.Fatalf("stalls = %v, want two flushes", *stalls)
	}
}

func TestWritebackDirtyBytesInterpolatesDrain(t *testing.T) {
	cfg := WritebackConfig{
		Interval: time.Second,
		Disk:     Disk{WriteRate: 1 << 20},
	}
	eng, wb, _ := newWriteback(cfg)
	wb.Start()
	wb.AddDirty(1 << 20)
	if wb.DirtyBytes() != 1<<20 {
		t.Fatalf("DirtyBytes before flush = %d", wb.DirtyBytes())
	}
	var midFlush, postFlush int64
	eng.Schedule(1500*time.Millisecond, func() { midFlush = wb.DirtyBytes() })
	eng.Schedule(2100*time.Millisecond, func() { postFlush = wb.DirtyBytes() })
	eng.Run(3 * time.Second)
	if midFlush <= 0 || midFlush >= 1<<20 {
		t.Fatalf("mid-flush DirtyBytes = %d, want strictly between 0 and 1MiB", midFlush)
	}
	if postFlush != 0 {
		t.Fatalf("post-flush DirtyBytes = %d, want 0", postFlush)
	}
}

func TestWritebackFlushingIndicator(t *testing.T) {
	cfg := WritebackConfig{Interval: time.Second, Disk: Disk{WriteRate: 1 << 20}}
	eng, wb, _ := newWriteback(cfg)
	wb.Start()
	wb.AddDirty(1 << 20)
	var during, after bool
	eng.Schedule(1500*time.Millisecond, func() { during = wb.Flushing() })
	eng.Schedule(2500*time.Millisecond, func() { after = wb.Flushing() })
	eng.Run(3 * time.Second)
	if !during {
		t.Fatal("Flushing() = false mid-flush")
	}
	if after {
		t.Fatal("Flushing() = true after flush end")
	}
}

func TestWritebackOnFlushHook(t *testing.T) {
	cfg := WritebackConfig{Interval: time.Second, Disk: Disk{WriteRate: 10 << 20}}
	eng, wb, _ := newWriteback(cfg)
	var gotStart, gotDur sim.Time
	var gotBytes int64
	wb.OnFlush(func(start, dur sim.Time, bytes int64) {
		gotStart, gotDur, gotBytes = start, dur, bytes
	})
	wb.Start()
	wb.AddDirty(1 << 20)
	eng.Run(2 * time.Second)
	if gotStart != time.Second || gotDur != 100*time.Millisecond || gotBytes != 1<<20 {
		t.Fatalf("hook got start=%v dur=%v bytes=%d", gotStart, gotDur, gotBytes)
	}
}

func TestWritebackStop(t *testing.T) {
	cfg := WritebackConfig{Interval: time.Second, Disk: Disk{WriteRate: 1 << 20}}
	eng, wb, stalls := newWriteback(cfg)
	wb.Start()
	wb.AddDirty(1 << 20)
	wb.Stop()
	eng.Run(10 * time.Second)
	if len(*stalls) != 0 {
		t.Fatalf("flush fired after Stop: %v", *stalls)
	}
}

func TestWritebackStartTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	_, wb, _ := newWriteback(WritebackConfig{Interval: time.Second})
	wb.Start()
	wb.Start()
}

func TestWritebackNilStallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil stall hook did not panic")
		}
	}()
	NewWriteback(sim.NewEngine(1, 2), WritebackConfig{}, nil)
}

func TestWritebackNegativeAddIgnored(t *testing.T) {
	_, wb, _ := newWriteback(WritebackConfig{Interval: time.Second, Disk: Disk{WriteRate: 1}})
	wb.AddDirty(-100)
	if wb.DirtyBytes() != 0 || wb.TotalDirtied() != 0 {
		t.Fatal("negative AddDirty recorded")
	}
}

func TestWritebackCounters(t *testing.T) {
	cfg := WritebackConfig{Interval: time.Second, Disk: Disk{WriteRate: 10 << 20}}
	eng, wb, _ := newWriteback(cfg)
	wb.Start()
	wb.AddDirty(1 << 20)
	eng.Schedule(2*time.Second, func() { wb.AddDirty(1 << 20) })
	eng.Run(5 * time.Second)
	if wb.Flushes() != 2 {
		t.Fatalf("Flushes = %d, want 2", wb.Flushes())
	}
	if wb.TotalDirtied() != 2<<20 {
		t.Fatalf("TotalDirtied = %d", wb.TotalDirtied())
	}
	if wb.TotalStall() != 200*time.Millisecond {
		t.Fatalf("TotalStall = %v, want 200ms", wb.TotalStall())
	}
}

func TestDisabledConfigProducesNoFlushInExperimentWindow(t *testing.T) {
	eng, wb, stalls := newWriteback(DisabledWritebackConfig())
	wb.Start()
	// Dirty continuously for a 3-minute experiment.
	for s := 0; s < 180; s++ {
		s := s
		eng.Schedule(sim.Time(s)*time.Second, func() { wb.AddDirty(1 << 20) })
	}
	eng.Run(180 * time.Second)
	if len(*stalls) != 0 {
		t.Fatalf("disabled writeback flushed: %v", *stalls)
	}
}

func TestDefaultConfigsAreSane(t *testing.T) {
	def := DefaultWritebackConfig()
	if def.Interval != 5*time.Second || def.Disk.WriteRate <= 0 {
		t.Fatalf("DefaultWritebackConfig = %+v", def)
	}
	dis := DisabledWritebackConfig()
	if dis.Interval <= def.Interval {
		t.Fatalf("DisabledWritebackConfig interval %v not longer than default %v", dis.Interval, def.Interval)
	}
}

func TestWritebackPhaseOffsetsFirstWake(t *testing.T) {
	cfg := WritebackConfig{
		Interval: time.Second,
		Phase:    300 * time.Millisecond,
		Disk:     Disk{WriteRate: 10 << 20},
	}
	eng, wb, stalls := newWriteback(cfg)
	wb.Start()
	wb.AddDirty(1 << 20)
	eng.Run(250 * time.Millisecond)
	if len(*stalls) != 0 {
		t.Fatal("flushed before the phase offset")
	}
	eng.Run(350 * time.Millisecond)
	if len(*stalls) != 1 {
		t.Fatalf("first wake not at phase: %v", *stalls)
	}
	// Subsequent wakes every Interval after the phase (next at 1.3s).
	eng.At(1200*time.Millisecond, func() { wb.AddDirty(1 << 20) })
	eng.Run(1400 * time.Millisecond)
	if len(*stalls) != 2 {
		t.Fatalf("second wake missing: %v", *stalls)
	}
}

package resource

import (
	"testing"
	"testing/quick"
	"time"

	"millibalance/internal/sim"
)

func newCPU(cores int) (*sim.Engine, *CPU) {
	eng := sim.NewEngine(1, 2)
	return eng, NewCPU(eng, cores)
}

func TestCPUSingleBurst(t *testing.T) {
	eng, cpu := newCPU(1)
	var doneAt sim.Time
	cpu.Submit(10*time.Millisecond, func() { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt != 10*time.Millisecond {
		t.Fatalf("burst completed at %v, want 10ms", doneAt)
	}
}

func TestCPUConcurrencyLimitedToCores(t *testing.T) {
	eng, cpu := newCPU(2)
	var done []sim.Time
	for i := 0; i < 4; i++ {
		cpu.Submit(10*time.Millisecond, func() { done = append(done, eng.Now()) })
	}
	if cpu.Running() != 2 || cpu.QueueLen() != 2 {
		t.Fatalf("Running=%d QueueLen=%d, want 2/2", cpu.Running(), cpu.QueueLen())
	}
	eng.Run(time.Second)
	want := []sim.Time{10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	if len(done) != 4 {
		t.Fatalf("completions: %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestCPUZeroDemand(t *testing.T) {
	eng, cpu := newCPU(1)
	fired := false
	cpu.Submit(0, func() { fired = true })
	eng.Run(0)
	if !fired {
		t.Fatal("zero-demand burst did not complete immediately")
	}
}

func TestCPUNegativeDemandClamped(t *testing.T) {
	eng, cpu := newCPU(1)
	var doneAt sim.Time = -1
	cpu.Submit(-time.Second, func() { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt != 0 {
		t.Fatalf("negative-demand burst completed at %v", doneAt)
	}
}

func TestCPUNilDonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Submit(nil) did not panic")
		}
	}()
	_, cpu := newCPU(1)
	cpu.Submit(time.Millisecond, nil)
}

func TestCPUMinimumOneCore(t *testing.T) {
	_, cpu := newCPU(0)
	if cpu.Cores() != 1 {
		t.Fatalf("Cores = %d, want 1", cpu.Cores())
	}
}

func TestStallDelaysRunningBurst(t *testing.T) {
	eng, cpu := newCPU(1)
	var doneAt sim.Time
	cpu.Submit(10*time.Millisecond, func() { doneAt = eng.Now() })
	eng.Schedule(5*time.Millisecond, func() { cpu.Stall(100 * time.Millisecond) })
	eng.Run(time.Second)
	if doneAt != 110*time.Millisecond {
		t.Fatalf("stalled burst completed at %v, want 110ms", doneAt)
	}
}

func TestStallDelaysBurstSubmittedDuringStall(t *testing.T) {
	eng, cpu := newCPU(1)
	var doneAt sim.Time
	eng.Schedule(0, func() { cpu.Stall(100 * time.Millisecond) })
	eng.Schedule(20*time.Millisecond, func() {
		cpu.Submit(10*time.Millisecond, func() { doneAt = eng.Now() })
	})
	eng.Run(time.Second)
	// Submitted at 20ms, stall ends at 100ms, then 10ms of work.
	if doneAt != 110*time.Millisecond {
		t.Fatalf("burst during stall completed at %v, want 110ms", doneAt)
	}
}

func TestOverlappingStallsAccumulate(t *testing.T) {
	eng, cpu := newCPU(1)
	var doneAt sim.Time
	cpu.Submit(10*time.Millisecond, func() { doneAt = eng.Now() })
	eng.Schedule(time.Millisecond, func() { cpu.Stall(50 * time.Millisecond) })
	eng.Schedule(2*time.Millisecond, func() { cpu.Stall(30 * time.Millisecond) })
	eng.Run(time.Second)
	if doneAt != 90*time.Millisecond {
		t.Fatalf("doubly stalled burst completed at %v, want 90ms", doneAt)
	}
	if cpu.Stalled() {
		t.Fatal("still stalled after window passed")
	}
}

func TestStallZeroOrNegativeIgnored(t *testing.T) {
	eng, cpu := newCPU(1)
	cpu.Stall(0)
	cpu.Stall(-time.Second)
	if cpu.Stalled() {
		t.Fatal("zero stall opened a window")
	}
	var doneAt sim.Time
	cpu.Submit(time.Millisecond, func() { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt != time.Millisecond {
		t.Fatalf("burst completed at %v", doneAt)
	}
}

func TestStalledAndStallEnd(t *testing.T) {
	eng, cpu := newCPU(1)
	eng.Schedule(10*time.Millisecond, func() {
		cpu.Stall(40 * time.Millisecond)
		if !cpu.Stalled() {
			t.Error("Stalled() = false during stall")
		}
		if cpu.StallEnd() != 50*time.Millisecond {
			t.Errorf("StallEnd = %v, want 50ms", cpu.StallEnd())
		}
	})
	eng.Run(time.Second)
	if cpu.Stalled() || cpu.StallEnd() != 0 {
		t.Fatal("stall window did not close")
	}
}

func TestBusyCoresDuringStall(t *testing.T) {
	eng, cpu := newCPU(4)
	eng.Schedule(0, func() {
		cpu.Submit(100*time.Millisecond, func() {})
		if cpu.BusyCores() != 1 {
			t.Errorf("BusyCores = %d, want 1", cpu.BusyCores())
		}
		cpu.Stall(10 * time.Millisecond)
		if cpu.BusyCores() != 4 {
			t.Errorf("BusyCores during stall = %d, want 4", cpu.BusyCores())
		}
	})
	eng.Run(time.Second)
}

func TestBusyCoreTimeIntegral(t *testing.T) {
	eng, cpu := newCPU(2)
	// One 10ms burst on a 2-core CPU: integral should be 10ms.
	cpu.Submit(10*time.Millisecond, func() {})
	eng.Run(20 * time.Millisecond)
	if got := cpu.BusyCoreTime(); got != 10*time.Millisecond {
		t.Fatalf("BusyCoreTime = %v, want 10ms", got)
	}
}

func TestBusyCoreTimeDuringStallCountsAllCores(t *testing.T) {
	eng, cpu := newCPU(4)
	eng.Schedule(0, func() { cpu.Stall(10 * time.Millisecond) })
	eng.Run(20 * time.Millisecond)
	if got := cpu.BusyCoreTime(); got != 40*time.Millisecond {
		t.Fatalf("BusyCoreTime = %v, want 40ms (4 cores × 10ms)", got)
	}
}

func TestQueuedBurstsRunAfterStall(t *testing.T) {
	eng, cpu := newCPU(1)
	var order []int
	cpu.Submit(10*time.Millisecond, func() { order = append(order, 1) })
	cpu.Submit(10*time.Millisecond, func() { order = append(order, 2) })
	eng.Schedule(5*time.Millisecond, func() { cpu.Stall(100 * time.Millisecond) })
	eng.Run(time.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestCompletionMaySubmitMore(t *testing.T) {
	eng, cpu := newCPU(1)
	var doneAt sim.Time
	cpu.Submit(5*time.Millisecond, func() {
		cpu.Submit(5*time.Millisecond, func() { doneAt = eng.Now() })
	})
	eng.Run(time.Second)
	if doneAt != 10*time.Millisecond {
		t.Fatalf("chained burst completed at %v", doneAt)
	}
}

// Property: total busy core time equals the sum of all burst demands plus
// the stall contribution, for any workload that fits entirely before the
// horizon (work conservation).
func TestQuickCPUWorkConservation(t *testing.T) {
	f := func(demandsRaw []uint8, coresRaw uint8) bool {
		cores := int(coresRaw%4) + 1
		eng := sim.NewEngine(9, 10)
		cpu := NewCPU(eng, cores)
		var totalDemand sim.Time
		completed := 0
		for _, d := range demandsRaw {
			demand := sim.Time(d) * time.Millisecond
			totalDemand += demand
			cpu.Submit(demand, func() { completed++ })
		}
		eng.Run(time.Hour)
		if completed != len(demandsRaw) {
			return false
		}
		return cpu.BusyCoreTime() == totalDemand
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package resource

import (
	"time"

	"millibalance/internal/sim"
)

// Disk models a storage device with a finite effective write rate. Only
// the write path matters for the paper's millibottlenecks (log flushing).
type Disk struct {
	// WriteRate is the effective sequential write rate in bytes per
	// second, including seek amortization.
	WriteRate float64
}

// WriteDuration returns how long writing the given number of bytes takes.
// A non-positive rate or byte count yields zero.
func (d Disk) WriteDuration(bytes int64) sim.Time {
	if bytes <= 0 || d.WriteRate <= 0 {
		return 0
	}
	return sim.Time(float64(bytes) / d.WriteRate * float64(time.Second))
}

// WritebackConfig configures the page-cache writeback daemon.
type WritebackConfig struct {
	// Interval is how often the daemon wakes to flush accumulated dirty
	// pages (kernel pdflush wakeup; paper environment ≈5 s). The
	// paper's millibottleneck-free baseline raises this to 600 s.
	Interval sim.Time
	// Phase offsets the first wakeup, desynchronizing the flush cycles
	// of servers that boot together (real flushers drift apart; in
	// lockstep the whole tier would stall at once).
	Phase sim.Time
	// DirtyThreshold triggers an immediate background flush when the
	// dirty byte count exceeds it, independent of the interval. Zero
	// disables threshold-triggered flushing.
	DirtyThreshold int64
	// Disk absorbs the flushed bytes; flush duration is
	// Disk.WriteDuration(dirtyBytes).
	Disk Disk
	// MaxStall caps the stall imposed by one flush. Zero means no cap.
	// It models the bounded write burst a real flusher issues.
	MaxStall sim.Time
	// SlowFlushProb is the probability that a flush hits a degraded
	// disk (seek storm, contending foreground I/O) and takes
	// SlowFlushFactor times longer — the heavy tail of real flush
	// durations. Zero disables it.
	SlowFlushProb   float64
	SlowFlushFactor float64
}

// DefaultWritebackConfig mirrors the paper's millibottleneck-prone
// environment: 5 s flush interval against a disk whose effective write
// rate turns a few seconds of accumulated logs into a 100–300 ms stall.
func DefaultWritebackConfig() WritebackConfig {
	return WritebackConfig{
		Interval: 5 * time.Second,
		Disk:     Disk{WriteRate: 50 << 20}, // 50 MiB/s effective
		MaxStall: 500 * time.Millisecond,
	}
}

// DisabledWritebackConfig mirrors the paper's remedy for its baseline:
// a large dirty-page allowance and a 600 s flush interval, so no flush
// (and hence no millibottleneck) occurs within an experiment.
func DisabledWritebackConfig() WritebackConfig {
	cfg := DefaultWritebackConfig()
	cfg.Interval = 600 * time.Second
	cfg.DirtyThreshold = 0
	return cfg
}

// Writeback is the per-server writeback daemon. Completed requests dirty
// pages (server access logs); at each interval wake — or earlier, past
// the dirty threshold — the daemon flushes them, saturating the disk and
// stalling the server's CPU for the flush duration. Flush events are the
// millibottleneck source reproduced from the paper (Fig. 2c–e).
type Writeback struct {
	eng   *sim.Engine
	cfg   WritebackConfig
	stall func(sim.Time)

	dirty      int64
	flushStart sim.Time
	flushEnd   sim.Time
	flushBytes int64
	flushing   bool

	flushes     int
	bytesEver   int64
	stallTotal  sim.Time
	wakeTimer   sim.Timer
	started     bool
	onFlushHook func(start, duration sim.Time, bytes int64)
}

// NewWriteback returns a daemon attached to the engine. stall is invoked
// at each flush start with the stall duration — typically CPU.Stall of
// the owning server. It must be non-nil.
func NewWriteback(eng *sim.Engine, cfg WritebackConfig, stall func(sim.Time)) *Writeback {
	if stall == nil {
		panic("resource: NewWriteback with nil stall hook")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultWritebackConfig().Interval
	}
	return &Writeback{eng: eng, cfg: cfg, stall: stall}
}

// Start arms the periodic wakeup: the first wake fires after Phase (or
// after Interval when Phase is zero), then every Interval. It may be
// called once.
func (w *Writeback) Start() {
	if w.started {
		panic("resource: Writeback.Start called twice")
	}
	w.started = true
	if w.cfg.Phase > 0 {
		w.wakeTimer = w.eng.Schedule(w.cfg.Phase, func() {
			w.Flush()
			w.scheduleWake()
		})
		return
	}
	w.scheduleWake()
}

// Stop disarms the periodic wakeup; an in-progress flush completes.
func (w *Writeback) Stop() {
	w.eng.Stop(w.wakeTimer)
	w.wakeTimer = sim.Timer{}
}

// OnFlush registers a hook called at each flush start with its start
// time, duration and byte count, used by the metrics layer.
func (w *Writeback) OnFlush(hook func(start, duration sim.Time, bytes int64)) {
	w.onFlushHook = hook
}

func (w *Writeback) scheduleWake() {
	w.wakeTimer = w.eng.Schedule(w.cfg.Interval, func() {
		w.Flush()
		w.scheduleWake()
	})
}

// AddDirty records newly dirtied bytes (e.g. one request's log lines).
// Crossing the dirty threshold triggers an immediate flush.
func (w *Writeback) AddDirty(bytes int64) {
	if bytes <= 0 {
		return
	}
	w.dirty += bytes
	w.bytesEver += bytes
	if w.cfg.DirtyThreshold > 0 && w.dirty >= w.cfg.DirtyThreshold && !w.flushing {
		w.Flush()
	}
}

// Flush writes out all currently dirty bytes, stalling the owning server
// for the write duration (capped at MaxStall). It is a no-op while a
// flush is in progress or when nothing is dirty.
func (w *Writeback) Flush() {
	if w.flushing || w.dirty == 0 {
		return
	}
	bytes := w.dirty
	w.dirty = 0
	dur := w.cfg.Disk.WriteDuration(bytes)
	if w.cfg.SlowFlushProb > 0 && w.cfg.SlowFlushFactor > 1 && w.eng.Bernoulli(w.cfg.SlowFlushProb) {
		dur = sim.Time(float64(dur) * w.cfg.SlowFlushFactor)
	}
	if w.cfg.MaxStall > 0 && dur > w.cfg.MaxStall {
		dur = w.cfg.MaxStall
	}
	if dur <= 0 {
		return
	}
	now := w.eng.Now()
	w.flushing = true
	w.flushStart = now
	w.flushEnd = now + dur
	w.flushBytes = bytes
	w.flushes++
	w.stallTotal += dur
	if w.onFlushHook != nil {
		w.onFlushHook(now, dur, bytes)
	}
	w.stall(dur)
	w.eng.Schedule(dur, func() {
		w.flushing = false
		w.flushBytes = 0
		// Bytes dirtied during the flush wait for the next wake unless
		// they already exceed the threshold.
		if w.cfg.DirtyThreshold > 0 && w.dirty >= w.cfg.DirtyThreshold {
			w.Flush()
		}
	})
}

// DirtyBytes reports the current dirty byte count, interpolating the
// drain of an in-progress flush so samplers see the paper's abrupt-drop
// signature (Fig. 2e).
func (w *Writeback) DirtyBytes() int64 {
	pending := w.dirty
	if w.flushing {
		total := w.flushEnd - w.flushStart
		if total > 0 {
			elapsed := w.eng.Now() - w.flushStart
			remainingFrac := 1 - float64(elapsed)/float64(total)
			if remainingFrac < 0 {
				remainingFrac = 0
			}
			pending += int64(float64(w.flushBytes) * remainingFrac)
		}
	}
	return pending
}

// Flushing reports whether a flush (and its iowait saturation) is in
// progress right now.
func (w *Writeback) Flushing() bool { return w.flushing && w.eng.Now() < w.flushEnd }

// Flushes reports how many flushes have started.
func (w *Writeback) Flushes() int { return w.flushes }

// TotalStall reports the cumulative stall time imposed by flushes.
func (w *Writeback) TotalStall() sim.Time { return w.stallTotal }

// TotalDirtied reports the cumulative bytes ever dirtied.
func (w *Writeback) TotalDirtied() int64 { return w.bytesEver }

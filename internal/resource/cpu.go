// Package resource models the physical resources whose transient
// saturation produces millibottlenecks: a multi-core CPU whose progress
// can be frozen by stall windows, a disk with a finite write rate, and a
// page cache whose dirty pages are flushed by a periodic writeback
// daemon (the paper's pdflush).
package resource

import (
	"millibalance/internal/sim"
)

// CPU models a multi-core processor executing fixed-demand bursts in
// virtual time. At most Cores bursts run concurrently; excess submissions
// queue FIFO. A stall window (Stall) freezes the progress of every
// running burst — the mechanism by which a dirty-page flush or another
// millibottleneck suspends foreground request processing — and counts all
// cores as busy for utilization accounting, matching the transient 100%
// saturation the paper measures.
type CPU struct {
	eng   *sim.Engine
	cores int

	running []sim.Timer // completion timers of executing bursts
	runq    sim.FIFO[queuedBurst]

	stallUntil sim.Time
	stallTimer sim.Timer

	// Busy-core integral for utilization accounting.
	busyIntegral sim.Time
	lastAccount  sim.Time
}

type queuedBurst struct {
	demand sim.Time
	done   func()
	// traced, when set, replaces done and additionally receives the
	// run-queue wait and the stall-frozen share of the burst's wall
	// time. at is the submission time (only stamped for traced bursts).
	traced func(queued, frozen sim.Time)
	at     sim.Time
}

// NewCPU returns a CPU with the given core count (minimum one) attached
// to the engine.
func NewCPU(eng *sim.Engine, cores int) *CPU {
	if cores < 1 {
		cores = 1
	}
	return &CPU{eng: eng, cores: cores}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return c.cores }

// Running reports how many bursts are executing right now.
func (c *CPU) Running() int { return len(c.running) }

// QueueLen reports how many bursts are waiting for a core.
func (c *CPU) QueueLen() int { return c.runq.Len() }

// Stalled reports whether a stall window is currently open.
func (c *CPU) Stalled() bool { return c.eng.Now() < c.stallUntil }

// StallEnd returns the end of the current stall window (zero if none).
func (c *CPU) StallEnd() sim.Time {
	if !c.Stalled() {
		return 0
	}
	return c.stallUntil
}

// Submit schedules a burst consuming demand of un-stalled CPU time and
// calls done when it completes. A zero demand completes as soon as a
// core is free (and any stall has passed).
func (c *CPU) Submit(demand sim.Time, done func()) {
	if done == nil {
		panic("resource: CPU.Submit with nil completion")
	}
	c.submit(queuedBurst{demand: demand, done: done})
}

// SubmitTraced is Submit for instrumented callers: done additionally
// receives how long the burst waited in the run queue and how much of
// its wall time was frozen by stall windows (wall − queued − demand),
// so request spans can attribute CPU time and stall-frozen time
// separately.
func (c *CPU) SubmitTraced(demand sim.Time, done func(queued, frozen sim.Time)) {
	if done == nil {
		panic("resource: CPU.SubmitTraced with nil completion")
	}
	c.submit(queuedBurst{demand: demand, traced: done, at: c.eng.Now()})
}

func (c *CPU) submit(b queuedBurst) {
	if b.demand < 0 {
		b.demand = 0
	}
	if len(c.running) >= c.cores {
		c.runq.Push(b)
		return
	}
	c.start(b)
}

func (c *CPU) start(b queuedBurst) {
	c.account()
	// The finish time bakes in whatever stall window is pending now;
	// stalls that open later extend the timer via Stall.
	finish := b.demand + c.pendingStall()
	runStart := c.eng.Now()
	var tm sim.Timer
	tm = c.eng.Schedule(finish, func() { c.complete(tm, b, runStart) })
	c.running = append(c.running, tm)
}

func (c *CPU) complete(tm sim.Timer, b queuedBurst, runStart sim.Time) {
	c.account()
	for i, r := range c.running {
		if r == tm {
			last := len(c.running) - 1
			c.running[i] = c.running[last]
			c.running[last] = sim.Timer{}
			c.running = c.running[:last]
			break
		}
	}
	if nb, ok := c.runq.Pop(); ok {
		c.start(nb)
	}
	if b.traced != nil {
		frozen := c.eng.Now() - runStart - b.demand
		if frozen < 0 {
			frozen = 0
		}
		b.traced(runStart-b.at, frozen)
		return
	}
	b.done()
}

// pendingStall returns how much of the current stall window remains.
func (c *CPU) pendingStall() sim.Time {
	if rem := c.stallUntil - c.eng.Now(); rem > 0 {
		return rem
	}
	return 0
}

// Stall freezes all burst progress for d. Overlapping stalls accumulate:
// a second call extends the window by its full duration, modelling
// serialized flushes against one disk. The completions of all running
// bursts are pushed out by d; since every running burst loses exactly the
// same span of time, delaying the completion events is equivalent to
// tracking per-burst progress.
func (c *CPU) Stall(d sim.Time) {
	if d <= 0 {
		return
	}
	c.account()
	now := c.eng.Now()
	if c.stallUntil < now {
		c.stallUntil = now
	}
	c.stallUntil += d
	for _, tm := range c.running {
		c.eng.Reschedule(tm, tm.When()-now+d)
	}
	// Re-arm the bookkeeping event that closes the busy-integral at the
	// end of the stall window.
	c.eng.Stop(c.stallTimer)
	c.stallTimer = c.eng.At(c.stallUntil, func() {
		c.account()
		c.stallTimer = sim.Timer{}
	})
}

// account integrates busy-core time up to now.
func (c *CPU) account() {
	now := c.eng.Now()
	if now <= c.lastAccount {
		return
	}
	span := now - c.lastAccount
	// During a stall every core is pinned (iowait in the paper's
	// measurements), so the part of the span overlapping the stall
	// counts as fully busy; the rest counts the running bursts.
	stallSpan := sim.Time(0)
	if c.stallUntil > c.lastAccount {
		stallSpan = c.stallUntil - c.lastAccount
		if stallSpan > span {
			stallSpan = span
		}
	}
	normalSpan := span - stallSpan
	c.busyIntegral += stallSpan*sim.Time(c.cores) + normalSpan*sim.Time(len(c.running))
	c.lastAccount = now
}

// BusyCoreTime returns the cumulative busy core-time integral up to the
// current virtual time. Utilization over an interval is the difference
// of two readings divided by (interval × Cores).
func (c *CPU) BusyCoreTime() sim.Time {
	c.account()
	return c.busyIntegral
}

// BusyCores returns the instantaneous busy-core count; during a stall it
// is the full core count.
func (c *CPU) BusyCores() int {
	if c.Stalled() {
		return c.cores
	}
	return len(c.running)
}
